file(REMOVE_RECURSE
  "CMakeFiles/bench_archival.dir/bench_archival.cc.o"
  "CMakeFiles/bench_archival.dir/bench_archival.cc.o.d"
  "bench_archival"
  "bench_archival.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_archival.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
