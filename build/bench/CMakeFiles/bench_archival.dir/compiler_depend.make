# Empty compiler generated dependencies file for bench_archival.
# This may be replaced when dependencies are built.
