file(REMOVE_RECURSE
  "CMakeFiles/bench_bitmap_filter.dir/bench_bitmap_filter.cc.o"
  "CMakeFiles/bench_bitmap_filter.dir/bench_bitmap_filter.cc.o.d"
  "bench_bitmap_filter"
  "bench_bitmap_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bitmap_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
