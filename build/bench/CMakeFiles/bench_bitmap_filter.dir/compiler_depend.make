# Empty compiler generated dependencies file for bench_bitmap_filter.
# This may be replaced when dependencies are built.
