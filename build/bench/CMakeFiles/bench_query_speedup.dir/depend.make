# Empty dependencies file for bench_query_speedup.
# This may be replaced when dependencies are built.
