file(REMOVE_RECURSE
  "CMakeFiles/bench_query_speedup.dir/bench_query_speedup.cc.o"
  "CMakeFiles/bench_query_speedup.dir/bench_query_speedup.cc.o.d"
  "bench_query_speedup"
  "bench_query_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_query_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
