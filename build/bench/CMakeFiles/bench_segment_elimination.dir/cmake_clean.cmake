file(REMOVE_RECURSE
  "CMakeFiles/bench_segment_elimination.dir/bench_segment_elimination.cc.o"
  "CMakeFiles/bench_segment_elimination.dir/bench_segment_elimination.cc.o.d"
  "bench_segment_elimination"
  "bench_segment_elimination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_segment_elimination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
