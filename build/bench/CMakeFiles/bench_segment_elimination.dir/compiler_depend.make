# Empty compiler generated dependencies file for bench_segment_elimination.
# This may be replaced when dependencies are built.
