file(REMOVE_RECURSE
  "CMakeFiles/bench_spilling.dir/bench_spilling.cc.o"
  "CMakeFiles/bench_spilling.dir/bench_spilling.cc.o.d"
  "bench_spilling"
  "bench_spilling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spilling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
