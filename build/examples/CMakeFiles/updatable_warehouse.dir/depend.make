# Empty dependencies file for updatable_warehouse.
# This may be replaced when dependencies are built.
