file(REMOVE_RECURSE
  "CMakeFiles/updatable_warehouse.dir/updatable_warehouse.cpp.o"
  "CMakeFiles/updatable_warehouse.dir/updatable_warehouse.cpp.o.d"
  "updatable_warehouse"
  "updatable_warehouse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updatable_warehouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
