file(REMOVE_RECURSE
  "CMakeFiles/compression_tour.dir/compression_tour.cpp.o"
  "CMakeFiles/compression_tour.dir/compression_tour.cpp.o.d"
  "compression_tour"
  "compression_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compression_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
