# Empty dependencies file for compression_tour.
# This may be replaced when dependencies are built.
