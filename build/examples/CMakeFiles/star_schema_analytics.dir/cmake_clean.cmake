file(REMOVE_RECURSE
  "CMakeFiles/star_schema_analytics.dir/star_schema_analytics.cpp.o"
  "CMakeFiles/star_schema_analytics.dir/star_schema_analytics.cpp.o.d"
  "star_schema_analytics"
  "star_schema_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/star_schema_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
