# Empty dependencies file for lzss_test.
# This may be replaced when dependencies are built.
