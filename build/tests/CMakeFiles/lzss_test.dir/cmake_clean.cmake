file(REMOVE_RECURSE
  "CMakeFiles/lzss_test.dir/lzss_test.cc.o"
  "CMakeFiles/lzss_test.dir/lzss_test.cc.o.d"
  "lzss_test"
  "lzss_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lzss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
