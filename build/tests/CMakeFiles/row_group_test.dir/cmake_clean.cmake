file(REMOVE_RECURSE
  "CMakeFiles/row_group_test.dir/row_group_test.cc.o"
  "CMakeFiles/row_group_test.dir/row_group_test.cc.o.d"
  "row_group_test"
  "row_group_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/row_group_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
