file(REMOVE_RECURSE
  "CMakeFiles/row_engine_test.dir/row_engine_test.cc.o"
  "CMakeFiles/row_engine_test.dir/row_engine_test.cc.o.d"
  "row_engine_test"
  "row_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/row_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
