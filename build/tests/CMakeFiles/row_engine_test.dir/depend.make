# Empty dependencies file for row_engine_test.
# This may be replaced when dependencies are built.
