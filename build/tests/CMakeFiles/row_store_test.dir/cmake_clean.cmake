file(REMOVE_RECURSE
  "CMakeFiles/row_store_test.dir/row_store_test.cc.o"
  "CMakeFiles/row_store_test.dir/row_store_test.cc.o.d"
  "row_store_test"
  "row_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/row_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
