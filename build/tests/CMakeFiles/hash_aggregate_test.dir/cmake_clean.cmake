file(REMOVE_RECURSE
  "CMakeFiles/hash_aggregate_test.dir/hash_aggregate_test.cc.o"
  "CMakeFiles/hash_aggregate_test.dir/hash_aggregate_test.cc.o.d"
  "hash_aggregate_test"
  "hash_aggregate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hash_aggregate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
