file(REMOVE_RECURSE
  "CMakeFiles/tuple_mover_test.dir/tuple_mover_test.cc.o"
  "CMakeFiles/tuple_mover_test.dir/tuple_mover_test.cc.o.d"
  "tuple_mover_test"
  "tuple_mover_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuple_mover_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
