# Empty dependencies file for tuple_mover_test.
# This may be replaced when dependencies are built.
