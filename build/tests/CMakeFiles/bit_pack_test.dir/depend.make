# Empty dependencies file for bit_pack_test.
# This may be replaced when dependencies are built.
