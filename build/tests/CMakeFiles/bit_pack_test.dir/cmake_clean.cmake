file(REMOVE_RECURSE
  "CMakeFiles/bit_pack_test.dir/bit_pack_test.cc.o"
  "CMakeFiles/bit_pack_test.dir/bit_pack_test.cc.o.d"
  "bit_pack_test"
  "bit_pack_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bit_pack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
