file(REMOVE_RECURSE
  "CMakeFiles/rle_test.dir/rle_test.cc.o"
  "CMakeFiles/rle_test.dir/rle_test.cc.o.d"
  "rle_test"
  "rle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
