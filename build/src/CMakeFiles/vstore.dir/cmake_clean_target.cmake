file(REMOVE_RECURSE
  "libvstore.a"
)
