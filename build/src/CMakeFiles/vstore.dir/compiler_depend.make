# Empty compiler generated dependencies file for vstore.
# This may be replaced when dependencies are built.
