
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/arena.cc" "src/CMakeFiles/vstore.dir/common/arena.cc.o" "gcc" "src/CMakeFiles/vstore.dir/common/arena.cc.o.d"
  "/root/repo/src/common/bit_util.cc" "src/CMakeFiles/vstore.dir/common/bit_util.cc.o" "gcc" "src/CMakeFiles/vstore.dir/common/bit_util.cc.o.d"
  "/root/repo/src/common/hash.cc" "src/CMakeFiles/vstore.dir/common/hash.cc.o" "gcc" "src/CMakeFiles/vstore.dir/common/hash.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/vstore.dir/common/status.cc.o" "gcc" "src/CMakeFiles/vstore.dir/common/status.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/vstore.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/vstore.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/exec/batch.cc" "src/CMakeFiles/vstore.dir/exec/batch.cc.o" "gcc" "src/CMakeFiles/vstore.dir/exec/batch.cc.o.d"
  "/root/repo/src/exec/bloom_filter.cc" "src/CMakeFiles/vstore.dir/exec/bloom_filter.cc.o" "gcc" "src/CMakeFiles/vstore.dir/exec/bloom_filter.cc.o.d"
  "/root/repo/src/exec/exchange.cc" "src/CMakeFiles/vstore.dir/exec/exchange.cc.o" "gcc" "src/CMakeFiles/vstore.dir/exec/exchange.cc.o.d"
  "/root/repo/src/exec/expression.cc" "src/CMakeFiles/vstore.dir/exec/expression.cc.o" "gcc" "src/CMakeFiles/vstore.dir/exec/expression.cc.o.d"
  "/root/repo/src/exec/hash_aggregate.cc" "src/CMakeFiles/vstore.dir/exec/hash_aggregate.cc.o" "gcc" "src/CMakeFiles/vstore.dir/exec/hash_aggregate.cc.o.d"
  "/root/repo/src/exec/hash_join.cc" "src/CMakeFiles/vstore.dir/exec/hash_join.cc.o" "gcc" "src/CMakeFiles/vstore.dir/exec/hash_join.cc.o.d"
  "/root/repo/src/exec/hash_table.cc" "src/CMakeFiles/vstore.dir/exec/hash_table.cc.o" "gcc" "src/CMakeFiles/vstore.dir/exec/hash_table.cc.o.d"
  "/root/repo/src/exec/operator.cc" "src/CMakeFiles/vstore.dir/exec/operator.cc.o" "gcc" "src/CMakeFiles/vstore.dir/exec/operator.cc.o.d"
  "/root/repo/src/exec/row/row_operator.cc" "src/CMakeFiles/vstore.dir/exec/row/row_operator.cc.o" "gcc" "src/CMakeFiles/vstore.dir/exec/row/row_operator.cc.o.d"
  "/root/repo/src/exec/scalar_aggregate.cc" "src/CMakeFiles/vstore.dir/exec/scalar_aggregate.cc.o" "gcc" "src/CMakeFiles/vstore.dir/exec/scalar_aggregate.cc.o.d"
  "/root/repo/src/exec/scan.cc" "src/CMakeFiles/vstore.dir/exec/scan.cc.o" "gcc" "src/CMakeFiles/vstore.dir/exec/scan.cc.o.d"
  "/root/repo/src/exec/sort.cc" "src/CMakeFiles/vstore.dir/exec/sort.cc.o" "gcc" "src/CMakeFiles/vstore.dir/exec/sort.cc.o.d"
  "/root/repo/src/exec/union_all.cc" "src/CMakeFiles/vstore.dir/exec/union_all.cc.o" "gcc" "src/CMakeFiles/vstore.dir/exec/union_all.cc.o.d"
  "/root/repo/src/query/catalog.cc" "src/CMakeFiles/vstore.dir/query/catalog.cc.o" "gcc" "src/CMakeFiles/vstore.dir/query/catalog.cc.o.d"
  "/root/repo/src/query/executor.cc" "src/CMakeFiles/vstore.dir/query/executor.cc.o" "gcc" "src/CMakeFiles/vstore.dir/query/executor.cc.o.d"
  "/root/repo/src/query/logical_plan.cc" "src/CMakeFiles/vstore.dir/query/logical_plan.cc.o" "gcc" "src/CMakeFiles/vstore.dir/query/logical_plan.cc.o.d"
  "/root/repo/src/query/optimizer.cc" "src/CMakeFiles/vstore.dir/query/optimizer.cc.o" "gcc" "src/CMakeFiles/vstore.dir/query/optimizer.cc.o.d"
  "/root/repo/src/query/physical_planner.cc" "src/CMakeFiles/vstore.dir/query/physical_planner.cc.o" "gcc" "src/CMakeFiles/vstore.dir/query/physical_planner.cc.o.d"
  "/root/repo/src/storage/bit_pack.cc" "src/CMakeFiles/vstore.dir/storage/bit_pack.cc.o" "gcc" "src/CMakeFiles/vstore.dir/storage/bit_pack.cc.o.d"
  "/root/repo/src/storage/column_store.cc" "src/CMakeFiles/vstore.dir/storage/column_store.cc.o" "gcc" "src/CMakeFiles/vstore.dir/storage/column_store.cc.o.d"
  "/root/repo/src/storage/delete_bitmap.cc" "src/CMakeFiles/vstore.dir/storage/delete_bitmap.cc.o" "gcc" "src/CMakeFiles/vstore.dir/storage/delete_bitmap.cc.o.d"
  "/root/repo/src/storage/delta_store.cc" "src/CMakeFiles/vstore.dir/storage/delta_store.cc.o" "gcc" "src/CMakeFiles/vstore.dir/storage/delta_store.cc.o.d"
  "/root/repo/src/storage/dictionary.cc" "src/CMakeFiles/vstore.dir/storage/dictionary.cc.o" "gcc" "src/CMakeFiles/vstore.dir/storage/dictionary.cc.o.d"
  "/root/repo/src/storage/encoding.cc" "src/CMakeFiles/vstore.dir/storage/encoding.cc.o" "gcc" "src/CMakeFiles/vstore.dir/storage/encoding.cc.o.d"
  "/root/repo/src/storage/lzss.cc" "src/CMakeFiles/vstore.dir/storage/lzss.cc.o" "gcc" "src/CMakeFiles/vstore.dir/storage/lzss.cc.o.d"
  "/root/repo/src/storage/reorder.cc" "src/CMakeFiles/vstore.dir/storage/reorder.cc.o" "gcc" "src/CMakeFiles/vstore.dir/storage/reorder.cc.o.d"
  "/root/repo/src/storage/rle.cc" "src/CMakeFiles/vstore.dir/storage/rle.cc.o" "gcc" "src/CMakeFiles/vstore.dir/storage/rle.cc.o.d"
  "/root/repo/src/storage/row_group.cc" "src/CMakeFiles/vstore.dir/storage/row_group.cc.o" "gcc" "src/CMakeFiles/vstore.dir/storage/row_group.cc.o.d"
  "/root/repo/src/storage/row_store.cc" "src/CMakeFiles/vstore.dir/storage/row_store.cc.o" "gcc" "src/CMakeFiles/vstore.dir/storage/row_store.cc.o.d"
  "/root/repo/src/storage/segment.cc" "src/CMakeFiles/vstore.dir/storage/segment.cc.o" "gcc" "src/CMakeFiles/vstore.dir/storage/segment.cc.o.d"
  "/root/repo/src/storage/tuple_mover.cc" "src/CMakeFiles/vstore.dir/storage/tuple_mover.cc.o" "gcc" "src/CMakeFiles/vstore.dir/storage/tuple_mover.cc.o.d"
  "/root/repo/src/tpch/dbgen.cc" "src/CMakeFiles/vstore.dir/tpch/dbgen.cc.o" "gcc" "src/CMakeFiles/vstore.dir/tpch/dbgen.cc.o.d"
  "/root/repo/src/tpch/queries.cc" "src/CMakeFiles/vstore.dir/tpch/queries.cc.o" "gcc" "src/CMakeFiles/vstore.dir/tpch/queries.cc.o.d"
  "/root/repo/src/types/data_type.cc" "src/CMakeFiles/vstore.dir/types/data_type.cc.o" "gcc" "src/CMakeFiles/vstore.dir/types/data_type.cc.o.d"
  "/root/repo/src/types/schema.cc" "src/CMakeFiles/vstore.dir/types/schema.cc.o" "gcc" "src/CMakeFiles/vstore.dir/types/schema.cc.o.d"
  "/root/repo/src/types/value.cc" "src/CMakeFiles/vstore.dir/types/value.cc.o" "gcc" "src/CMakeFiles/vstore.dir/types/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
