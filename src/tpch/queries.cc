#include <cstdio>
#include "tpch/queries.h"

#include "common/macros.h"
#include "types/data_type.h"

namespace vstore {
namespace tpch {

namespace {

Value DateLit(const std::string& iso) { return Value::Date(iso); }

Value DatePlusDays(const std::string& iso, int days) {
  return Value::Date32(ParseDate32(iso) + days);
}

Value DatePlusYears(const std::string& iso, int years) {
  int32_t base = ParseDate32(iso);
  // TPC-H interval '1 year' on the first of a month: 365/366-safe via civil
  // math — re-parse with the year bumped.
  int y, m, d;
  VSTORE_CHECK(std::sscanf(iso.c_str(), "%d-%d-%d", &y, &m, &d) == 3);
  (void)base;
  return Value::Date32(DaysFromCivil(y + years, m, d));
}

}  // namespace

PlanPtr Q1(const Catalog& catalog, int delta_days) {
  PlanBuilder b = PlanBuilder::Scan(catalog, "lineitem");
  const Schema& li = b.schema();
  b.Filter(expr::Le(expr::Column(li, "l_shipdate"),
                    expr::Lit(DatePlusDays("1998-12-01", -delta_days))));

  ExprPtr ext = expr::Column(b.schema(), "l_extendedprice");
  ExprPtr disc = expr::Column(b.schema(), "l_discount");
  ExprPtr tax = expr::Column(b.schema(), "l_tax");
  ExprPtr one = expr::Lit(Value::Double(1.0));
  ExprPtr disc_price = expr::Mul(ext, expr::Sub(one, disc));
  ExprPtr charge = expr::Mul(disc_price, expr::Add(one, tax));
  b.Project({expr::Column(b.schema(), "l_returnflag"),
             expr::Column(b.schema(), "l_linestatus"),
             expr::Column(b.schema(), "l_quantity"), ext, disc_price, charge,
             disc},
            {"l_returnflag", "l_linestatus", "l_quantity", "l_extendedprice",
             "disc_price", "charge", "l_discount"});

  b.Aggregate({"l_returnflag", "l_linestatus"},
              {{AggFn::kSum, "l_quantity", "sum_qty"},
               {AggFn::kSum, "l_extendedprice", "sum_base_price"},
               {AggFn::kSum, "disc_price", "sum_disc_price"},
               {AggFn::kSum, "charge", "sum_charge"},
               {AggFn::kAvg, "l_quantity", "avg_qty"},
               {AggFn::kAvg, "l_extendedprice", "avg_price"},
               {AggFn::kAvg, "l_discount", "avg_disc"},
               {AggFn::kCountStar, "", "count_order"}});
  b.OrderBy({{"l_returnflag", true}, {"l_linestatus", true}});
  return b.Build();
}

PlanPtr Q3(const Catalog& catalog, const std::string& segment,
           const std::string& date) {
  // Build sides.
  PlanBuilder orders = PlanBuilder::Scan(catalog, "orders");
  orders.Filter(expr::Lt(expr::Column(orders.schema(), "o_orderdate"),
                         expr::Lit(DateLit(date))));
  PlanBuilder customer = PlanBuilder::Scan(catalog, "customer");
  customer.Filter(expr::Eq(expr::Column(customer.schema(), "c_mktsegment"),
                           expr::Lit(Value::String(segment))));

  PlanBuilder b = PlanBuilder::Scan(catalog, "lineitem");
  b.Filter(expr::Gt(expr::Column(b.schema(), "l_shipdate"),
                    expr::Lit(DateLit(date))));
  b.Join(JoinType::kInner, orders.Build(), {"l_orderkey"}, {"o_orderkey"});
  b.Join(JoinType::kInner, customer.Build(), {"o_custkey"}, {"c_custkey"});

  ExprPtr revenue =
      expr::Mul(expr::Column(b.schema(), "l_extendedprice"),
                expr::Sub(expr::Lit(Value::Double(1.0)),
                          expr::Column(b.schema(), "l_discount")));
  b.Project({expr::Column(b.schema(), "l_orderkey"), revenue,
             expr::Column(b.schema(), "o_orderdate"),
             expr::Column(b.schema(), "o_shippriority")},
            {"l_orderkey", "revenue", "o_orderdate", "o_shippriority"});
  b.Aggregate({"l_orderkey", "o_orderdate", "o_shippriority"},
              {{AggFn::kSum, "revenue", "revenue"}});
  b.OrderBy({{"revenue", false}, {"o_orderdate", true}}, 10);
  return b.Build();
}

PlanPtr Q5(const Catalog& catalog, const std::string& region,
           const std::string& date_lo) {
  PlanBuilder orders = PlanBuilder::Scan(catalog, "orders");
  orders.Filter(expr::And(
      expr::Ge(expr::Column(orders.schema(), "o_orderdate"),
               expr::Lit(DateLit(date_lo))),
      expr::Lt(expr::Column(orders.schema(), "o_orderdate"),
               expr::Lit(DatePlusYears(date_lo, 1)))));

  PlanBuilder region_scan = PlanBuilder::Scan(catalog, "region");
  region_scan.Filter(expr::Eq(expr::Column(region_scan.schema(), "r_name"),
                              expr::Lit(Value::String(region))));
  PlanBuilder nation = PlanBuilder::Scan(catalog, "nation");
  nation.Join(JoinType::kInner, region_scan.Build(), {"n_regionkey"},
              {"r_regionkey"});

  PlanBuilder b = PlanBuilder::Scan(catalog, "lineitem");
  b.Join(JoinType::kInner, orders.Build(), {"l_orderkey"}, {"o_orderkey"});
  b.Join(JoinType::kInner,
         PlanBuilder::Scan(catalog, "customer").Build(), {"o_custkey"},
         {"c_custkey"});
  // The double key enforces TPC-H's "local supplier" condition
  // (c_nationkey = s_nationkey) together with the FK join.
  b.Join(JoinType::kInner,
         PlanBuilder::Scan(catalog, "supplier").Build(),
         {"l_suppkey", "c_nationkey"}, {"s_suppkey", "s_nationkey"});
  b.Join(JoinType::kInner, nation.Build(), {"s_nationkey"}, {"n_nationkey"});

  ExprPtr revenue =
      expr::Mul(expr::Column(b.schema(), "l_extendedprice"),
                expr::Sub(expr::Lit(Value::Double(1.0)),
                          expr::Column(b.schema(), "l_discount")));
  b.Project({expr::Column(b.schema(), "n_name"), revenue},
            {"n_name", "revenue"});
  b.Aggregate({"n_name"}, {{AggFn::kSum, "revenue", "revenue"}});
  b.OrderBy({{"revenue", false}});
  return b.Build();
}

PlanPtr Q6(const Catalog& catalog, const std::string& date_lo, double discount,
           double quantity) {
  PlanBuilder b = PlanBuilder::Scan(catalog, "lineitem");
  const Schema& li = b.schema();
  // Epsilon-widened discount band keeps the BETWEEN inclusive under
  // floating-point representation.
  ExprPtr pred = expr::And(
      expr::And(expr::Ge(expr::Column(li, "l_shipdate"),
                         expr::Lit(DateLit(date_lo))),
                expr::Lt(expr::Column(li, "l_shipdate"),
                         expr::Lit(DatePlusYears(date_lo, 1)))),
      expr::And(
          expr::And(expr::Ge(expr::Column(li, "l_discount"),
                             expr::Lit(Value::Double(discount - 0.0101))),
                    expr::Le(expr::Column(li, "l_discount"),
                             expr::Lit(Value::Double(discount + 0.0101)))),
          expr::Lt(expr::Column(li, "l_quantity"),
                   expr::Lit(Value::Double(quantity)))));
  b.Filter(pred);
  b.Project({expr::Mul(expr::Column(b.schema(), "l_extendedprice"),
                       expr::Column(b.schema(), "l_discount"))},
            {"revenue"});
  b.Aggregate({}, {{AggFn::kSum, "revenue", "revenue"}});
  return b.Build();
}

PlanPtr Q12(const Catalog& catalog, const std::vector<std::string>& modes,
            const std::string& date_lo) {
  PlanBuilder b = PlanBuilder::Scan(catalog, "lineitem");
  const Schema& li = b.schema();
  std::vector<Value> mode_values;
  for (const std::string& m : modes) mode_values.push_back(Value::String(m));
  ExprPtr pred = expr::And(
      expr::And(expr::In(expr::Column(li, "l_shipmode"),
                         std::move(mode_values)),
                expr::And(expr::Lt(expr::Column(li, "l_commitdate"),
                                   expr::Column(li, "l_receiptdate")),
                          expr::Lt(expr::Column(li, "l_shipdate"),
                                   expr::Column(li, "l_commitdate")))),
      expr::And(expr::Ge(expr::Column(li, "l_receiptdate"),
                         expr::Lit(DateLit(date_lo))),
                expr::Lt(expr::Column(li, "l_receiptdate"),
                         expr::Lit(DatePlusYears(date_lo, 1)))));
  b.Filter(pred);
  b.Join(JoinType::kInner, PlanBuilder::Scan(catalog, "orders").Build(),
         {"l_orderkey"}, {"o_orderkey"});

  ExprPtr high = expr::Or(
      expr::Eq(expr::Column(b.schema(), "o_orderpriority"),
               expr::Lit(Value::String("1-URGENT"))),
      expr::Eq(expr::Column(b.schema(), "o_orderpriority"),
               expr::Lit(Value::String("2-HIGH"))));
  b.Project({expr::Column(b.schema(), "l_shipmode"), high, expr::Not(high)},
            {"l_shipmode", "is_high", "is_low"});
  b.Aggregate({"l_shipmode"},
              {{AggFn::kSum, "is_high", "high_line_count"},
               {AggFn::kSum, "is_low", "low_line_count"}});
  b.OrderBy({{"l_shipmode", true}});
  return b.Build();
}

std::vector<NamedQuery> AllQueries(const Catalog& catalog) {
  return {
      {"Q1", Q1(catalog)},   {"Q3", Q3(catalog)}, {"Q5", Q5(catalog)},
      {"Q6", Q6(catalog)},   {"Q12", Q12(catalog)},
  };
}

}  // namespace tpch
}  // namespace vstore
