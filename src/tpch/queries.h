#ifndef VSTORE_TPCH_QUERIES_H_
#define VSTORE_TPCH_QUERIES_H_

#include <string>
#include <vector>

#include "query/logical_plan.h"

namespace vstore {
namespace tpch {

// Logical plans for a representative slice of the TPC-H query suite —
// the workload class the paper's evaluation uses (star-schema scans,
// selective date ranges, multi-way joins, grouped aggregation).
//
// Each plan is built against table names registered by LoadIntoCatalog.

// Q1: pricing summary report — scan + wide grouped aggregation.
PlanPtr Q1(const Catalog& catalog, int delta_days = 90);

// Q3: shipping priority — customer x orders x lineitem, Top-10 by revenue.
PlanPtr Q3(const Catalog& catalog, const std::string& segment = "BUILDING",
           const std::string& date = "1995-03-15");

// Q5: local supplier volume — 6-way join, grouped by nation.
PlanPtr Q5(const Catalog& catalog, const std::string& region = "ASIA",
           const std::string& date_lo = "1994-01-01");

// Q6: forecasting revenue change — highly selective scalar aggregation.
PlanPtr Q6(const Catalog& catalog, const std::string& date_lo = "1994-01-01",
           double discount = 0.06, double quantity = 24);

// Q12: shipping modes and order priority — join + conditional counts.
PlanPtr Q12(const Catalog& catalog,
            const std::vector<std::string>& modes = {"MAIL", "SHIP"},
            const std::string& date_lo = "1994-01-01");

// All of the above, keyed by name, for benchmark sweeps.
struct NamedQuery {
  std::string name;
  PlanPtr plan;
};
std::vector<NamedQuery> AllQueries(const Catalog& catalog);

}  // namespace tpch
}  // namespace vstore

#endif  // VSTORE_TPCH_QUERIES_H_
