#ifndef VSTORE_TPCH_DBGEN_H_
#define VSTORE_TPCH_DBGEN_H_

#include <string>

#include "query/catalog.h"
#include "types/table_data.h"

namespace vstore {
namespace tpch {

// From-scratch, deterministic equivalent of the TPC-H dbgen tool: all eight
// tables with the benchmark's schema, key structure (orders->lineitem 1:N,
// foreign keys into customer/part/supplier/nation/region), value ranges,
// and the date/returnflag/linestatus correlation rules the queries rely on.
// Text columns use a fixed vocabulary rather than dbgen's grammar — the
// substitution is documented in DESIGN.md.
struct Tables {
  TableData region;
  TableData nation;
  TableData supplier;
  TableData customer;
  TableData part;
  TableData partsupp;
  TableData orders;
  TableData lineitem;
};

// Row counts at scale factor 1 match the spec (6M lineitem, 1.5M orders...).
Tables Generate(double scale_factor, uint64_t seed = 19940601);

// The schema of one TPC-H table by name ("lineitem", "orders", ...).
Schema SchemaOf(const std::string& table);

// Registers every table in `catalog`. With `column_store` a column store
// representation is bulk-loaded using `cs_options`; with `row_store` a row
// store representation is appended. Either may be combined.
Status LoadIntoCatalog(Catalog* catalog, const Tables& tables,
                       bool column_store, bool row_store,
                       const ColumnStoreTable::Options& cs_options);

}  // namespace tpch
}  // namespace vstore

#endif  // VSTORE_TPCH_DBGEN_H_
