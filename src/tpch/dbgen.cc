#include "tpch/dbgen.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/random.h"

namespace vstore {
namespace tpch {

namespace {

const char* kRegionNames[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                              "MIDDLE EAST"};

struct NationDef {
  const char* name;
  int region;
};
const NationDef kNations[] = {
    {"ALGERIA", 0},      {"ARGENTINA", 1}, {"BRAZIL", 1},
    {"CANADA", 1},       {"EGYPT", 4},     {"ETHIOPIA", 0},
    {"FRANCE", 3},       {"GERMANY", 3},   {"INDIA", 2},
    {"INDONESIA", 2},    {"IRAN", 4},      {"IRAQ", 4},
    {"JAPAN", 2},        {"JORDAN", 4},    {"KENYA", 0},
    {"MOROCCO", 0},      {"MOZAMBIQUE", 0}, {"PERU", 1},
    {"CHINA", 2},        {"ROMANIA", 3},   {"SAUDI ARABIA", 4},
    {"VIETNAM", 2},      {"RUSSIA", 3},    {"UNITED KINGDOM", 3},
    {"UNITED STATES", 1}};

const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY",
                           "HOUSEHOLD"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};
const char* kShipModes[] = {"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK",
                            "MAIL", "FOB"};
const char* kInstructions[] = {"DELIVER IN PERSON", "COLLECT COD", "NONE",
                               "TAKE BACK RETURN"};
const char* kTypes1[] = {"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY",
                         "PROMO"};
const char* kTypes2[] = {"ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                         "BRUSHED"};
const char* kTypes3[] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};
const char* kContainers1[] = {"SM", "LG", "MED", "JUMBO", "WRAP"};
const char* kContainers2[] = {"CASE", "BOX", "BAG", "JAR", "PKG", "PACK",
                              "CAN", "DRUM"};
const char* kWords[] = {
    "furiously", "quickly",  "carefully", "express",  "pending",  "regular",
    "ironic",    "special",  "silent",    "final",    "bold",     "even",
    "deposits",  "requests", "accounts",  "packages", "theodolites",
    "instructions", "foxes", "pinto",     "beans",    "dependencies",
    "platelets", "sleep",    "haggle",    "nag",      "wake",     "cajole"};

template <size_t N>
const char* Pick(Random& rng, const char* (&arr)[N]) {
  return arr[static_cast<size_t>(rng.Uniform(0, static_cast<int64_t>(N) - 1))];
}

std::string Comment(Random& rng, int min_words, int max_words) {
  int n = static_cast<int>(rng.Uniform(min_words, max_words));
  std::string out;
  for (int i = 0; i < n; ++i) {
    if (i > 0) out += ' ';
    out += Pick(rng, kWords);
  }
  return out;
}

std::string Phone(Random& rng, int nation) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%02d-%03d-%03d-%04d", 10 + nation,
                static_cast<int>(rng.Uniform(100, 999)),
                static_cast<int>(rng.Uniform(100, 999)),
                static_cast<int>(rng.Uniform(1000, 9999)));
  return buf;
}

// Fixed-point money helper: dbgen uses cents internally.
double Money(int64_t cents) { return static_cast<double>(cents) / 100.0; }

Schema RegionSchema() {
  return Schema({{"r_regionkey", DataType::kInt64, false},
                 {"r_name", DataType::kString, false},
                 {"r_comment", DataType::kString, true}});
}
Schema NationSchema() {
  return Schema({{"n_nationkey", DataType::kInt64, false},
                 {"n_name", DataType::kString, false},
                 {"n_regionkey", DataType::kInt64, false},
                 {"n_comment", DataType::kString, true}});
}
Schema SupplierSchema() {
  return Schema({{"s_suppkey", DataType::kInt64, false},
                 {"s_name", DataType::kString, false},
                 {"s_address", DataType::kString, false},
                 {"s_nationkey", DataType::kInt64, false},
                 {"s_phone", DataType::kString, false},
                 {"s_acctbal", DataType::kDouble, false},
                 {"s_comment", DataType::kString, true}});
}
Schema CustomerSchema() {
  return Schema({{"c_custkey", DataType::kInt64, false},
                 {"c_name", DataType::kString, false},
                 {"c_address", DataType::kString, false},
                 {"c_nationkey", DataType::kInt64, false},
                 {"c_phone", DataType::kString, false},
                 {"c_acctbal", DataType::kDouble, false},
                 {"c_mktsegment", DataType::kString, false},
                 {"c_comment", DataType::kString, true}});
}
Schema PartSchema() {
  return Schema({{"p_partkey", DataType::kInt64, false},
                 {"p_name", DataType::kString, false},
                 {"p_mfgr", DataType::kString, false},
                 {"p_brand", DataType::kString, false},
                 {"p_type", DataType::kString, false},
                 {"p_size", DataType::kInt64, false},
                 {"p_container", DataType::kString, false},
                 {"p_retailprice", DataType::kDouble, false},
                 {"p_comment", DataType::kString, true}});
}
Schema PartsuppSchema() {
  return Schema({{"ps_partkey", DataType::kInt64, false},
                 {"ps_suppkey", DataType::kInt64, false},
                 {"ps_availqty", DataType::kInt64, false},
                 {"ps_supplycost", DataType::kDouble, false},
                 {"ps_comment", DataType::kString, true}});
}
Schema OrdersSchema() {
  return Schema({{"o_orderkey", DataType::kInt64, false},
                 {"o_custkey", DataType::kInt64, false},
                 {"o_orderstatus", DataType::kString, false},
                 {"o_totalprice", DataType::kDouble, false},
                 {"o_orderdate", DataType::kDate32, false},
                 {"o_orderpriority", DataType::kString, false},
                 {"o_clerk", DataType::kString, false},
                 {"o_shippriority", DataType::kInt64, false},
                 {"o_comment", DataType::kString, true}});
}
Schema LineitemSchema() {
  return Schema({{"l_orderkey", DataType::kInt64, false},
                 {"l_partkey", DataType::kInt64, false},
                 {"l_suppkey", DataType::kInt64, false},
                 {"l_linenumber", DataType::kInt64, false},
                 {"l_quantity", DataType::kDouble, false},
                 {"l_extendedprice", DataType::kDouble, false},
                 {"l_discount", DataType::kDouble, false},
                 {"l_tax", DataType::kDouble, false},
                 {"l_returnflag", DataType::kString, false},
                 {"l_linestatus", DataType::kString, false},
                 {"l_shipdate", DataType::kDate32, false},
                 {"l_commitdate", DataType::kDate32, false},
                 {"l_receiptdate", DataType::kDate32, false},
                 {"l_shipinstruct", DataType::kString, false},
                 {"l_shipmode", DataType::kString, false},
                 {"l_comment", DataType::kString, true}});
}

}  // namespace

Schema SchemaOf(const std::string& table) {
  if (table == "region") return RegionSchema();
  if (table == "nation") return NationSchema();
  if (table == "supplier") return SupplierSchema();
  if (table == "customer") return CustomerSchema();
  if (table == "part") return PartSchema();
  if (table == "partsupp") return PartsuppSchema();
  if (table == "orders") return OrdersSchema();
  if (table == "lineitem") return LineitemSchema();
  VSTORE_CHECK(false);
  return Schema();
}

Tables Generate(double scale_factor, uint64_t seed) {
  VSTORE_CHECK(scale_factor > 0);
  Tables t;
  const int64_t num_suppliers =
      std::max<int64_t>(1, static_cast<int64_t>(10000 * scale_factor));
  const int64_t num_customers =
      std::max<int64_t>(1, static_cast<int64_t>(150000 * scale_factor));
  const int64_t num_parts =
      std::max<int64_t>(1, static_cast<int64_t>(200000 * scale_factor));
  const int64_t num_orders =
      std::max<int64_t>(1, static_cast<int64_t>(1500000 * scale_factor));

  const int32_t kStartDate = DaysFromCivil(1992, 1, 1);
  const int32_t kEndDate = DaysFromCivil(1998, 8, 2);
  const int32_t kCurrentDate = DaysFromCivil(1995, 6, 17);

  // region / nation.
  t.region = TableData(RegionSchema());
  {
    Random rng(seed ^ 0x7265);
    for (int64_t r = 0; r < 5; ++r) {
      t.region.AppendRow({Value::Int64(r), Value::String(kRegionNames[r]),
                          Value::String(Comment(rng, 3, 8))});
    }
  }
  t.nation = TableData(NationSchema());
  {
    Random rng(seed ^ 0x6e61);
    for (int64_t n = 0; n < 25; ++n) {
      t.nation.AppendRow({Value::Int64(n), Value::String(kNations[n].name),
                          Value::Int64(kNations[n].region),
                          Value::String(Comment(rng, 3, 8))});
    }
  }

  // supplier.
  t.supplier = TableData(SupplierSchema());
  {
    Random rng(seed ^ 0x7375);
    char buf[32];
    for (int64_t s = 1; s <= num_suppliers; ++s) {
      int nation = static_cast<int>(rng.Uniform(0, 24));
      std::snprintf(buf, sizeof(buf), "Supplier#%09lld",
                    static_cast<long long>(s));
      t.supplier.AppendRow(
          {Value::Int64(s), Value::String(buf),
           Value::String(Comment(rng, 2, 4)), Value::Int64(nation),
           Value::String(Phone(rng, nation)),
           Value::Double(Money(rng.Uniform(-99999, 999999))),
           Value::String(Comment(rng, 5, 12))});
    }
  }

  // customer.
  t.customer = TableData(CustomerSchema());
  {
    Random rng(seed ^ 0x6375);
    char buf[32];
    for (int64_t c = 1; c <= num_customers; ++c) {
      int nation = static_cast<int>(rng.Uniform(0, 24));
      std::snprintf(buf, sizeof(buf), "Customer#%09lld",
                    static_cast<long long>(c));
      t.customer.AppendRow(
          {Value::Int64(c), Value::String(buf),
           Value::String(Comment(rng, 2, 4)), Value::Int64(nation),
           Value::String(Phone(rng, nation)),
           Value::Double(Money(rng.Uniform(-99999, 999999))),
           Value::String(Pick(rng, kSegments)),
           Value::String(Comment(rng, 5, 15))});
    }
  }

  // part. Retail price formula follows the spec:
  // 90000 + ((key/10) % 20001) + 100*(key % 1000), in cents.
  t.part = TableData(PartSchema());
  {
    Random rng(seed ^ 0x7061);
    char buf[48];
    for (int64_t p = 1; p <= num_parts; ++p) {
      std::snprintf(buf, sizeof(buf), "Brand#%d%d",
                    static_cast<int>(rng.Uniform(1, 5)),
                    static_cast<int>(rng.Uniform(1, 5)));
      std::string brand = buf;
      std::string type = std::string(Pick(rng, kTypes1)) + " " +
                         Pick(rng, kTypes2) + " " + Pick(rng, kTypes3);
      std::string container =
          std::string(Pick(rng, kContainers1)) + " " + Pick(rng, kContainers2);
      int64_t price_cents = 90000 + ((p / 10) % 20001) + 100 * (p % 1000);
      std::snprintf(buf, sizeof(buf), "Manufacturer#%d",
                    static_cast<int>(rng.Uniform(1, 5)));
      std::string name = std::string(Pick(rng, kWords)) + " " +
                         Pick(rng, kWords) + " " + Pick(rng, kWords);
      t.part.AppendRow({Value::Int64(p), Value::String(name),
                        Value::String(buf), Value::String(brand),
                        Value::String(type),
                        Value::Int64(rng.Uniform(1, 50)),
                        Value::String(container),
                        Value::Double(Money(price_cents)),
                        Value::String(Comment(rng, 2, 6))});
    }
  }

  // partsupp: 4 suppliers per part, spec's supplier spreading formula.
  t.partsupp = TableData(PartsuppSchema());
  {
    Random rng(seed ^ 0x7073);
    for (int64_t p = 1; p <= num_parts; ++p) {
      for (int64_t i = 0; i < 4; ++i) {
        int64_t s = 1 + (p + i * (num_suppliers / 4 +
                                  (p - 1) / num_suppliers)) %
                            num_suppliers;
        t.partsupp.AppendRow({Value::Int64(p), Value::Int64(s),
                              Value::Int64(rng.Uniform(1, 9999)),
                              Value::Double(Money(rng.Uniform(100, 100000))),
                              Value::String(Comment(rng, 4, 10))});
      }
    }
  }

  // orders + lineitem.
  t.orders = TableData(OrdersSchema());
  t.lineitem = TableData(LineitemSchema());
  {
    Random rng(seed ^ 0x6f72);
    char buf[32];
    // Part retail price lookup for extended price computation.
    auto retail_cents = [](int64_t p) {
      return 90000 + ((p / 10) % 20001) + 100 * (p % 1000);
    };
    for (int64_t o = 1; o <= num_orders; ++o) {
      // Spec spaces order keys (only 1/4 of the key space is used).
      int64_t orderkey = (o - 1) / 8 * 32 + (o - 1) % 8 + 1;
      int64_t custkey = rng.Uniform(1, num_customers);
      int32_t orderdate = static_cast<int32_t>(
          rng.Uniform(kStartDate, kEndDate - 151));
      int lines = static_cast<int>(rng.Uniform(1, 7));
      int64_t total_cents = 0;
      int filled = 0, open = 0;

      for (int ln = 1; ln <= lines; ++ln) {
        int64_t partkey = rng.Uniform(1, num_parts);
        int64_t suppkey = rng.Uniform(1, num_suppliers);
        int64_t quantity = rng.Uniform(1, 50);
        int64_t discount = rng.Uniform(0, 10);  // percent
        int64_t tax = rng.Uniform(0, 8);
        int64_t ext_cents = quantity * retail_cents(partkey);
        int32_t shipdate =
            orderdate + static_cast<int32_t>(rng.Uniform(1, 121));
        int32_t commitdate =
            orderdate + static_cast<int32_t>(rng.Uniform(30, 90));
        int32_t receiptdate =
            shipdate + static_cast<int32_t>(rng.Uniform(1, 30));

        const char* returnflag;
        if (receiptdate <= kCurrentDate) {
          returnflag = rng.NextBool(0.5) ? "R" : "A";
        } else {
          returnflag = "N";
        }
        const char* linestatus = shipdate > kCurrentDate ? "O" : "F";
        if (linestatus[0] == 'F') {
          ++filled;
        } else {
          ++open;
        }
        total_cents += ext_cents * (100 - discount) * (100 + tax) / 10000;

        t.lineitem.AppendRow(
            {Value::Int64(orderkey), Value::Int64(partkey),
             Value::Int64(suppkey), Value::Int64(ln),
             Value::Double(static_cast<double>(quantity)),
             Value::Double(Money(ext_cents)),
             Value::Double(static_cast<double>(discount) / 100.0),
             Value::Double(static_cast<double>(tax) / 100.0),
             Value::String(returnflag), Value::String(linestatus),
             Value::Date32(shipdate), Value::Date32(commitdate),
             Value::Date32(receiptdate),
             Value::String(Pick(rng, kInstructions)),
             Value::String(Pick(rng, kShipModes)),
             Value::String(Comment(rng, 2, 6))});
      }

      const char* status = open == 0 ? "F" : (filled == 0 ? "O" : "P");
      std::snprintf(buf, sizeof(buf), "Clerk#%09lld",
                    static_cast<long long>(rng.Uniform(
                        1, std::max<int64_t>(1, num_orders / 1000))));
      t.orders.AppendRow(
          {Value::Int64(orderkey), Value::Int64(custkey),
           Value::String(status), Value::Double(Money(total_cents)),
           Value::Date32(orderdate), Value::String(Pick(rng, kPriorities)),
           Value::String(buf), Value::Int64(0),
           Value::String(Comment(rng, 4, 12))});
    }
  }
  return t;
}

Status LoadIntoCatalog(Catalog* catalog, const Tables& tables,
                       bool column_store, bool row_store,
                       const ColumnStoreTable::Options& cs_options) {
  struct Item {
    const char* name;
    const TableData* data;
  };
  const Item items[] = {
      {"region", &tables.region},     {"nation", &tables.nation},
      {"supplier", &tables.supplier}, {"customer", &tables.customer},
      {"part", &tables.part},         {"partsupp", &tables.partsupp},
      {"orders", &tables.orders},     {"lineitem", &tables.lineitem}};
  for (const Item& item : items) {
    if (column_store) {
      auto table = std::make_unique<ColumnStoreTable>(
          item.name, item.data->schema(), cs_options);
      VSTORE_RETURN_IF_ERROR(table->BulkLoad(*item.data));
      // Compress undersized load tails so every row is columnar (the
      // equivalent of running REORGANIZE after a bulk load).
      VSTORE_RETURN_IF_ERROR(table->CompressDeltaStores(true).status());
      VSTORE_RETURN_IF_ERROR(catalog->AddColumnStore(std::move(table)));
    }
    if (row_store) {
      auto table =
          std::make_unique<RowStoreTable>(item.name, item.data->schema());
      VSTORE_RETURN_IF_ERROR(table->Append(*item.data));
      VSTORE_RETURN_IF_ERROR(catalog->AddRowStore(std::move(table)));
    }
  }
  return Status::OK();
}

}  // namespace tpch
}  // namespace vstore
