#ifndef VSTORE_COMMON_SERDE_H_
#define VSTORE_COMMON_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace vstore {

// Little bounded binary writer/reader used by the WAL record payloads and
// the checkpoint segment-file metadata. All multi-byte reads go through
// memcpy so decoding is alignment-safe on arbitrary (including mmap'd and
// odd-offset) buffers; every read is bounds-checked so hostile or truncated
// buffers yield a Status instead of UB.

class BufWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutRaw(&v, sizeof(v)); }
  void PutDouble(double v) { PutRaw(&v, sizeof(v)); }
  void PutBytes(std::string_view bytes) {
    PutU32(static_cast<uint32_t>(bytes.size()));
    PutRaw(bytes.data(), bytes.size());
  }
  void PutRaw(const void* data, size_t len) {
    if (len == 0) return;
    buf_.append(static_cast<const char*>(data), len);
  }

  const std::string& str() const { return buf_; }
  std::string Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

class BufReader {
 public:
  explicit BufReader(std::string_view data) : data_(data) {}
  BufReader(const void* data, size_t len)
      : data_(static_cast<const char*>(data), len) {}

  size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return remaining() == 0; }

  Status GetU8(uint8_t* v) { return GetRaw(v, sizeof(*v)); }
  Status GetU32(uint32_t* v) { return GetRaw(v, sizeof(*v)); }
  Status GetU64(uint64_t* v) { return GetRaw(v, sizeof(*v)); }
  Status GetI64(int64_t* v) { return GetRaw(v, sizeof(*v)); }
  Status GetDouble(double* v) { return GetRaw(v, sizeof(*v)); }
  // A length-prefixed byte string; the view aliases the underlying buffer.
  Status GetBytes(std::string_view* out) {
    uint32_t len;
    VSTORE_RETURN_IF_ERROR(GetU32(&len));
    if (len > remaining()) {
      return Status::Internal("serde: truncated byte string");
    }
    *out = data_.substr(pos_, len);
    pos_ += len;
    return Status::OK();
  }
  Status GetRaw(void* out, size_t len) {
    if (len > remaining()) {
      return Status::Internal("serde: truncated buffer");
    }
    std::memcpy(out, data_.data() + pos_, len);
    pos_ += len;
    return Status::OK();
  }
  Status Skip(size_t len) {
    if (len > remaining()) return Status::Internal("serde: truncated buffer");
    pos_ += len;
    return Status::OK();
  }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace vstore

#endif  // VSTORE_COMMON_SERDE_H_
