#include "common/memory_tracker.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "common/metrics.h"

namespace vstore {

namespace {

Counter* BudgetExceededCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("vstore_mem_budget_exceeded_total");
  return c;
}

Counter* SpillBytesCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("vstore_spill_bytes_total");
  return c;
}

}  // namespace

MemoryTracker::MemoryTracker(std::string name, std::string category,
                             MemoryTracker* parent, std::string table,
                             std::string shard)
    : name_(std::move(name)),
      category_(std::move(category)),
      table_(std::move(table)),
      shard_(std::move(shard)),
      parent_(parent) {
  if (parent_ != nullptr) {
    std::lock_guard<std::mutex> lock(parent_->children_mu_);
    parent_->children_.push_back(this);
  }
}

MemoryTracker::~MemoryTracker() {
  // Children must not outlive their parent; by this point current_ is the
  // residual this node still holds (== local_ when the invariant held).
  // Hand it back so a leaked charge (e.g. an arena destroyed without
  // Reset) never wedges the ancestors' totals.
  int64_t residual = current_.load(std::memory_order_relaxed);
  if (residual != 0) {
    for (MemoryTracker* node = parent_; node != nullptr;
         node = node->parent_) {
      node->current_.fetch_sub(residual, std::memory_order_relaxed);
    }
  }
  if (parent_ != nullptr) {
    std::lock_guard<std::mutex> lock(parent_->children_mu_);
    auto it =
        std::find(parent_->children_.begin(), parent_->children_.end(), this);
    if (it != parent_->children_.end()) parent_->children_.erase(it);
  }
}

MemoryTracker* MemoryTracker::Process() {
  static MemoryTracker* root =
      new MemoryTracker("process", "process", nullptr);
  return root;
}

void MemoryTracker::UpdatePeak(int64_t current) {
  int64_t observed = peak_.load(std::memory_order_relaxed);
  while (current > observed &&
         !peak_.compare_exchange_weak(observed, current,
                                      std::memory_order_relaxed)) {
  }
}

void MemoryTracker::CheckBudget(int64_t prev, int64_t bytes) {
  if (bytes <= 0) return;
  int64_t b = budget_.load(std::memory_order_relaxed);
  if (b <= 0) return;
  // Fire only on the charge that crosses the line, not on every charge
  // above it — listeners see one pressure edge per excursion.
  if (prev <= b && prev + bytes > b) {
    budget_exceeded_.fetch_add(1, std::memory_order_relaxed);
    BudgetExceededCounter()->Increment();
    std::lock_guard<std::mutex> lock(listeners_mu_);
    for (const auto& entry : listeners_) entry.second();
  }
}

void MemoryTracker::Charge(int64_t bytes) {
  if (bytes == 0) return;
  local_.fetch_add(bytes, std::memory_order_relaxed);
  for (MemoryTracker* node = this; node != nullptr; node = node->parent_) {
    int64_t prev = node->current_.fetch_add(bytes, std::memory_order_relaxed);
    if (bytes > 0) {
      node->UpdatePeak(prev + bytes);
      node->CheckBudget(prev, bytes);
    }
  }
}

void MemoryTracker::SyncLocal(int64_t bytes) {
  // Single-writer per node (storage refresh points run under the table
  // lock), so exchange-then-charge-the-delta is race-free here.
  int64_t prev = local_.load(std::memory_order_relaxed);
  Charge(bytes - prev);
}

MemoryTracker* MemoryTracker::BudgetScope() {
  for (MemoryTracker* node = this; node != nullptr; node = node->parent_) {
    if (node->budget_.load(std::memory_order_relaxed) > 0) return node;
  }
  return this;
}

int MemoryTracker::AddPressureListener(PressureListener listener) {
  MemoryTracker* scope = BudgetScope();
  std::lock_guard<std::mutex> lock(scope->listeners_mu_);
  int id = scope->next_listener_id_++;
  scope->listeners_.emplace_back(id, std::move(listener));
  return id;
}

void MemoryTracker::RemovePressureListener(int id) {
  MemoryTracker* scope = BudgetScope();
  std::lock_guard<std::mutex> lock(scope->listeners_mu_);
  for (auto it = scope->listeners_.begin(); it != scope->listeners_.end();
       ++it) {
    if (it->first == id) {
      scope->listeners_.erase(it);
      return;
    }
  }
}

void MemoryTracker::Collect(std::vector<NodeStats>* out, int depth) const {
  NodeStats stats;
  stats.name = name_;
  stats.category = category_;
  stats.table = table_;
  stats.shard = shard_;
  stats.depth = depth;
  stats.local_bytes = local();
  stats.current_bytes = current();
  stats.peak_bytes = peak();
  out->push_back(std::move(stats));
  std::lock_guard<std::mutex> lock(children_mu_);
  for (const MemoryTracker* child : children_) {
    child->Collect(out, depth + 1);
  }
}

void MemoryReservation::Reset(MemoryTracker* tracker) {
  if (tracker == tracker_) return;
  int64_t held = bytes_;
  Clear();
  tracker_ = tracker;
  Set(held);
}

void MemoryReservation::Set(int64_t bytes) {
  if (bytes < 0) bytes = 0;
  if (tracker_ != nullptr && bytes != bytes_) {
    tracker_->Charge(bytes - bytes_);
  }
  bytes_ = bytes;
}

MemoryTracker* MappedMemoryTracker() {
  static MemoryTracker* mapped =
      new MemoryTracker("mapped", "mapped", MemoryTracker::Process());
  return mapped;
}

void AddGlobalSpillBytes(int64_t bytes) {
  if (bytes > 0) SpillBytesCounter()->Increment(bytes);
}

int64_t GlobalSpillBytes() { return SpillBytesCounter()->Value(); }

int64_t ReadProcessRssBytes() {
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long long vm_pages = 0;
  long long rss_pages = 0;
  int matched = std::fscanf(f, "%lld %lld", &vm_pages, &rss_pages);
  std::fclose(f);
  if (matched != 2) return 0;
  return static_cast<int64_t>(rss_pages) * 4096;
}

void PublishMemoryGauges() {
  std::vector<MemoryTracker::NodeStats> nodes;
  MemoryTracker::Process()->Collect(&nodes);
  std::map<std::string, int64_t> by_category;
  for (const auto& node : nodes) {
    by_category[node.category] += node.local_bytes;
  }
  // Categories that vanish (all queries finished) must read 0, not their
  // last sampled value — remember every category ever published.
  static std::mutex mu;
  static std::set<std::string>* seen = new std::set<std::string>();
  std::lock_guard<std::mutex> lock(mu);
  for (const auto& entry : by_category) seen->insert(entry.first);
  MetricsRegistry& registry = MetricsRegistry::Global();
  for (const std::string& category : *seen) {
    auto it = by_category.find(category);
    registry.GetGauge("vstore_mem_bytes", "category", category)
        ->Set(it != by_category.end() ? it->second : 0);
  }
  registry.GetGauge("vstore_process_rss_bytes")->Set(ReadProcessRssBytes());
  registry.GetGauge("vstore_mapped_bytes")
      ->Set(MappedMemoryTracker()->current());
}

}  // namespace vstore
