#include "common/bit_util.h"

#include <bit>

namespace vstore {
namespace bit_util {

int64_t CountSetBits(const uint8_t* bits, int64_t num_bits) {
  int64_t count = 0;
  int64_t i = 0;
  // Whole 64-bit words first.
  for (; i + 64 <= num_bits; i += 64) {
    uint64_t word;
    std::memcpy(&word, bits + (i >> 3), sizeof(word));
    count += std::popcount(word);
  }
  for (; i < num_bits; ++i) {
    count += GetBit(bits, i);
  }
  return count;
}

}  // namespace bit_util
}  // namespace vstore
