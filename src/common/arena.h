#ifndef VSTORE_COMMON_ARENA_H_
#define VSTORE_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

#include "common/macros.h"

namespace vstore {

class MemoryTracker;

// Bump allocator for short-lived, variable-length data (string payloads in
// batches, hash-table build rows). Memory is freed all at once on Reset()
// or destruction. Not thread-safe; each operator owns its own arena.
//
// With a MemoryTracker attached, whole blocks are charged as they are
// malloc'd and released on Reset()/destruction — block granularity keeps
// the per-Allocate fast path free of accounting.
class Arena {
 public:
  explicit Arena(size_t initial_block_size = 64 * 1024)
      : next_block_size_(initial_block_size) {}
  ~Arena();

  VSTORE_DISALLOW_COPY_AND_ASSIGN(Arena);

  // Attaches (or detaches, with nullptr) the tracker charged for this
  // arena's blocks; bytes already held migrate to the new tracker. The
  // tracker must outlive the arena.
  void SetMemoryTracker(MemoryTracker* tracker);
  MemoryTracker* memory_tracker() const { return tracker_; }

  // Allocates `size` bytes aligned to `alignment` (power of two).
  uint8_t* Allocate(size_t size, size_t alignment = 8);

  // Copies `s` into the arena and returns a view over the stable copy.
  std::string_view CopyString(std::string_view s) {
    if (s.empty()) return std::string_view();
    uint8_t* dst = Allocate(s.size(), 1);
    std::memcpy(dst, s.data(), s.size());
    return std::string_view(reinterpret_cast<const char*>(dst), s.size());
  }

  // Frees all blocks except the first, which is recycled.
  void Reset();

  size_t bytes_allocated() const { return bytes_allocated_; }
  // Total malloc'd block bytes (what the tracker is charged).
  size_t bytes_reserved() const { return bytes_reserved_; }

 private:
  struct Block {
    std::unique_ptr<uint8_t[]> data;
    size_t size = 0;
    size_t used = 0;
  };

  std::vector<Block> blocks_;
  size_t next_block_size_;
  size_t bytes_allocated_ = 0;
  size_t bytes_reserved_ = 0;
  MemoryTracker* tracker_ = nullptr;
};

}  // namespace vstore

#endif  // VSTORE_COMMON_ARENA_H_
