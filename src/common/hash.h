#ifndef VSTORE_COMMON_HASH_H_
#define VSTORE_COMMON_HASH_H_

#include <cstdint>
#include <cstring>
#include <string_view>

namespace vstore {

// 64-bit hash of an arbitrary byte range (xxhash64-style mixing).
// Deterministic across runs; used for hash tables, Bloom filters, and the
// deterministic TPC-H generator.
uint64_t Hash64(const void* data, size_t len, uint64_t seed = 0);

inline uint64_t Hash64(std::string_view s, uint64_t seed = 0) {
  return Hash64(s.data(), s.size(), seed);
}

// Fast mix for already-integral keys (Murmur3 finalizer, a bijection).
inline uint64_t HashInt64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

// Combines two hashes (boost-style with 64-bit constant).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

}  // namespace vstore

#endif  // VSTORE_COMMON_HASH_H_
