#include "common/span_trace.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <thread>

#include "common/json_util.h"

namespace vstore {

namespace {

inline uint64_t HashedThreadId() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

void AppendInt(int64_t v, std::string* out) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  *out += buf;
}

thread_local QueryTraceContext tls_trace_context;

}  // namespace

// --- Wait points ---------------------------------------------------------

const char* WaitPointName(WaitPoint point) {
  switch (point) {
    case WaitPoint::kQueue:
      return "queue";
    case WaitPoint::kFsync:
      return "fsync";
    case WaitPoint::kLock:
      return "lock";
    case WaitPoint::kReorgConflict:
      return "reorg_conflict";
  }
  return "unknown";
}

WaitStats GetWaitStats(const std::string& table, WaitPoint point) {
  MetricsRegistry& r = MetricsRegistry::Global();
  WaitStats stats;
  stats.total = r.GetCounter("vstore_wait_total", "table", table, "point",
                             WaitPointName(point));
  stats.wait_ns = r.GetHistogram("vstore_wait_ns", "table", table, "point",
                                 WaitPointName(point));
  return stats;
}

// --- QuerySpanRecorder ---------------------------------------------------

struct QuerySpanRecorder::Chunk {
  std::array<TraceSpan, kChunkSpans> spans;
};

QuerySpanRecorder::QuerySpanRecorder(int64_t max_spans)
    : max_spans_(std::max<int64_t>(max_spans, 1)),
      chunks_(static_cast<size_t>((max_spans_ + kChunkSpans - 1) /
                                  kChunkSpans)) {
  root_ = StartSpan("query", "query", nullptr);
}

QuerySpanRecorder::~QuerySpanRecorder() {
  for (auto& slot : chunks_) {
    delete slot.load(std::memory_order_relaxed);
  }
}

TraceSpan* QuerySpanRecorder::Allocate() {
  int64_t slot = next_slot_.fetch_add(1, std::memory_order_relaxed);
  if (slot >= max_spans_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  size_t chunk_idx = static_cast<size_t>(slot / kChunkSpans);
  Chunk* chunk = chunks_[chunk_idx].load(std::memory_order_acquire);
  if (chunk == nullptr) {
    Chunk* fresh = new Chunk();
    if (chunks_[chunk_idx].compare_exchange_strong(
            chunk, fresh, std::memory_order_acq_rel,
            std::memory_order_acquire)) {
      chunk = fresh;
    } else {
      delete fresh;  // another thread installed the chunk first
    }
  }
  return &chunk->spans[static_cast<size_t>(slot % kChunkSpans)];
}

namespace {

// Lock-free sibling push: the child is fully written before the release
// CAS publishes it, so tree walkers that acquire-load first_child see a
// complete span.
void AppendChild(TraceSpan* parent, TraceSpan* child) {
  child->parent = parent;
  TraceSpan* head = parent->first_child.load(std::memory_order_relaxed);
  do {
    child->next_sibling = head;
  } while (!parent->first_child.compare_exchange_weak(
      head, child, std::memory_order_release, std::memory_order_relaxed));
}

}  // namespace

TraceSpan* QuerySpanRecorder::StartSpan(std::string name, std::string category,
                                        TraceSpan* parent,
                                        std::string detail) {
  TraceSpan* span = Allocate();
  if (span == nullptr) return nullptr;
  span->name = std::move(name);
  span->category = std::move(category);
  span->detail = std::move(detail);
  span->start_us = TraceRing::NowMicros();
  span->end_us = 0;
  span->thread_id = HashedThreadId();
  if (parent == nullptr) parent = root_;
  if (parent != nullptr) AppendChild(parent, span);
  return span;
}

void QuerySpanRecorder::EndSpan(TraceSpan* span) {
  if (span == nullptr) return;
  span->end_us = TraceRing::NowMicros();
}

TraceSpan* QuerySpanRecorder::AddCompleteSpan(std::string name,
                                              std::string category,
                                              TraceSpan* parent,
                                              std::string detail,
                                              int64_t start_us,
                                              int64_t end_us) {
  TraceSpan* span = Allocate();
  if (span == nullptr) return nullptr;
  span->name = std::move(name);
  span->category = std::move(category);
  span->detail = std::move(detail);
  span->start_us = start_us;
  span->end_us = end_us;
  span->thread_id = HashedThreadId();
  if (parent == nullptr) parent = root_;
  if (parent != nullptr) AppendChild(parent, span);
  return span;
}

namespace {

void CopySpanTree(const TraceSpan& src, int64_t now_us, QueryTraceSpan* dst) {
  dst->name = src.name;
  dst->category = src.category;
  dst->detail = src.detail;
  dst->start_us = src.start_us;
  int64_t end_us = src.end_us != 0 ? src.end_us : now_us;
  dst->duration_us = std::max<int64_t>(0, end_us - src.start_us);
  dst->thread_id = src.thread_id;

  // The child list is a LIFO push stack; reverse to append order, then
  // sort by start time so concurrent fragments interleave chronologically.
  std::vector<const TraceSpan*> children;
  for (const TraceSpan* child =
           src.first_child.load(std::memory_order_acquire);
       child != nullptr; child = child->next_sibling) {
    children.push_back(child);
  }
  std::reverse(children.begin(), children.end());
  std::stable_sort(children.begin(), children.end(),
                   [](const TraceSpan* a, const TraceSpan* b) {
                     return a->start_us < b->start_us;
                   });
  dst->children.reserve(children.size());
  for (const TraceSpan* child : children) {
    dst->children.emplace_back();
    CopySpanTree(*child, now_us, &dst->children.back());
  }
}

}  // namespace

QueryTrace QuerySpanRecorder::Snapshot() const {
  QueryTrace trace;
  trace.valid = true;
  trace.span_count = span_count();
  trace.dropped_spans = dropped_spans();
  for (int p = 0; p < kNumWaitPoints; ++p) {
    trace.wait_ns[static_cast<size_t>(p)] =
        wait_ns_[static_cast<size_t>(p)].load(std::memory_order_relaxed);
  }
  if (root_ != nullptr) {
    CopySpanTree(*root_, TraceRing::NowMicros(), &trace.root);
  }
  return trace;
}

int64_t QueryTraceSpan::TreeSize() const {
  int64_t n = 1;
  for (const QueryTraceSpan& child : children) n += child.TreeSize();
  return n;
}

int64_t QueryTraceSpan::CategoryTotalUs(const std::string& cat) const {
  int64_t total = category == cat ? duration_us : 0;
  for (const QueryTraceSpan& child : children) {
    total += child.CategoryTotalUs(cat);
  }
  return total;
}

// --- Chrome trace export -------------------------------------------------

namespace {

// Compact, stable thread-track numbering: first distinct thread seen gets
// tid 1, the next tid 2, ... Chrome renders each as its own row.
class TidMap {
 public:
  int64_t Get(uint64_t thread_id) {
    auto [it, inserted] = ids_.try_emplace(thread_id, next_);
    if (inserted) ++next_;
    return it->second;
  }

 private:
  std::map<uint64_t, int64_t> ids_;
  int64_t next_ = 1;
};

void AppendChromeEvent(const std::string& name, const std::string& category,
                       const std::string& detail, int64_t start_us,
                       int64_t duration_us, int64_t tid, bool* first,
                       std::string* out) {
  if (!*first) *out += ",";
  *first = false;
  *out += "{\"name\":";
  AppendJsonString(name, out);
  *out += ",\"cat\":";
  AppendJsonString(category.empty() ? std::string("span") : category, out);
  *out += ",\"ph\":\"X\",\"ts\":";
  AppendInt(start_us, out);
  *out += ",\"dur\":";
  AppendInt(duration_us, out);
  *out += ",\"pid\":1,\"tid\":";
  AppendInt(tid, out);
  if (!detail.empty()) {
    *out += ",\"args\":{\"detail\":";
    AppendJsonString(detail, out);
    *out += "}";
  }
  *out += "}";
}

void AppendSpanEvents(const QueryTraceSpan& span, TidMap* tids, bool* first,
                      std::string* out) {
  AppendChromeEvent(span.name, span.category, span.detail, span.start_us,
                    span.duration_us, tids->Get(span.thread_id), first, out);
  for (const QueryTraceSpan& child : span.children) {
    AppendSpanEvents(child, tids, first, out);
  }
}

}  // namespace

std::string TraceToChromeJson(const QueryTrace& trace,
                              bool include_trace_ring) {
  TidMap tids;
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  if (trace.valid) {
    AppendSpanEvents(trace.root, &tids, &first, &out);
  }
  if (include_trace_ring) {
    for (const TraceEvent& e : TraceRing::Global().Snapshot()) {
      AppendChromeEvent(e.name, e.category, "", e.start_us, e.duration_us,
                        tids.Get(e.thread_id), &first, &out);
    }
  }
  out += "]}";
  return out;
}

// --- Thread-local trace context ------------------------------------------

QueryTraceContext& CurrentQueryTraceContext() { return tls_trace_context; }

QueryTraceScope::QueryTraceScope(QuerySpanRecorder* recorder,
                                 TraceSpan* current,
                                 ActiveQuery* active_query)
    : saved_(tls_trace_context) {
  tls_trace_context.recorder = recorder;
  tls_trace_context.current = current;
  tls_trace_context.active_query = active_query;
}

QueryTraceScope::~QueryTraceScope() { tls_trace_context = saved_; }

SpanGuard::SpanGuard(TraceSpan* span) {
  if (span == nullptr || tls_trace_context.recorder == nullptr) return;
  saved_ = tls_trace_context.current;
  tls_trace_context.current = span;
  active_ = true;
}

SpanGuard::~SpanGuard() {
  if (active_) tls_trace_context.current = saved_;
}

// --- Wait recording ------------------------------------------------------

WaitEventScope::WaitEventScope(const WaitStats& stats, WaitPoint point,
                               std::string_view table)
    : stats_(stats),
      point_(point),
      table_(table),
      start_us_(TraceRing::NowMicros()),
      active_query_(tls_trace_context.active_query) {
  if (active_query_ != nullptr) {
    active_query_->current_wait.store(static_cast<int>(point_),
                                      std::memory_order_relaxed);
  }
}

void RecordWaitEvent(const WaitStats& stats, WaitPoint point,
                     std::string_view table, int64_t start_us,
                     int64_t end_us) {
  const int64_t wait_ns = std::max<int64_t>(0, end_us - start_us) * 1000;
  if (stats.total != nullptr) stats.total->Increment();
  if (stats.wait_ns != nullptr) stats.wait_ns->Observe(wait_ns);
  QueryTraceContext& tc = tls_trace_context;
  if (tc.recorder != nullptr) {
    tc.recorder->AddCompleteSpan(std::string("wait:") + WaitPointName(point),
                                 "wait", tc.current, std::string(table),
                                 start_us, end_us);
    tc.recorder->AddWaitNs(point, wait_ns);
  }
  if (tc.active_query != nullptr) {
    tc.active_query->wait_ns[static_cast<size_t>(point)].fetch_add(
        wait_ns, std::memory_order_relaxed);
  }
}

WaitEventScope::~WaitEventScope() {
  const int64_t end_us = TraceRing::NowMicros();
  RecordWaitEvent(stats_, point_, table_, start_us_, end_us);
  if (active_query_ != nullptr) {
    active_query_->current_wait.store(-1, std::memory_order_relaxed);
  }
}

// --- Active query registry -----------------------------------------------

const char* QueryPhaseName(QueryPhase phase) {
  switch (phase) {
    case QueryPhase::kOptimize:
      return "optimize";
    case QueryPhase::kCompile:
      return "compile";
    case QueryPhase::kExecute:
      return "execute";
    case QueryPhase::kDone:
      return "done";
  }
  return "unknown";
}

ActiveQueryRegistry& ActiveQueryRegistry::Global() {
  static ActiveQueryRegistry* registry = new ActiveQueryRegistry();
  return *registry;
}

std::shared_ptr<ActiveQuery> ActiveQueryRegistry::Register() {
  auto query = std::make_shared<ActiveQuery>();
  query->query_id = next_id_.fetch_add(1, std::memory_order_relaxed);
  query->start_us = TraceRing::NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  active_[query->query_id] = query;
  return query;
}

void ActiveQueryRegistry::Unregister(uint64_t query_id) {
  std::lock_guard<std::mutex> lock(mu_);
  active_.erase(query_id);
}

std::vector<ActiveQueryRegistry::Snapshot> ActiveQueryRegistry::List() const {
  std::vector<Snapshot> out;
  const int64_t now_us = TraceRing::NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(active_.size());
  for (const auto& [id, query] : active_) {
    Snapshot s;
    s.query_id = id;
    s.fingerprint = query->fingerprint.load(std::memory_order_relaxed);
    s.phase = QueryPhaseName(static_cast<QueryPhase>(
        query->phase.load(std::memory_order_relaxed)));
    s.plan_summary = query->plan_summary();
    int wait = query->current_wait.load(std::memory_order_relaxed);
    if (wait >= 0 && wait < kNumWaitPoints) {
      s.wait_point = WaitPointName(static_cast<WaitPoint>(wait));
    }
    s.elapsed_us = std::max<int64_t>(0, now_us - query->start_us);
    s.rows_produced = query->rows_produced.load(std::memory_order_relaxed);
    s.rows_scanned = query->rows_scanned.load(std::memory_order_relaxed);
    s.mem_current_bytes =
        query->mem_current_bytes.load(std::memory_order_relaxed);
    s.mem_peak_bytes = query->mem_peak_bytes.load(std::memory_order_relaxed);
    s.mem_budget_bytes =
        query->mem_budget_bytes.load(std::memory_order_relaxed);
    for (int p = 0; p < kNumWaitPoints; ++p) {
      s.wait_us[static_cast<size_t>(p)] =
          query->wait_ns[static_cast<size_t>(p)].load(
              std::memory_order_relaxed) /
          1000;
    }
    out.push_back(std::move(s));
  }
  return out;
}

// --- Slow-query log ------------------------------------------------------

SlowQueryLog::SlowQueryLog(int64_t capacity)
    : capacity_(std::max<int64_t>(capacity, 1)) {}

SlowQueryLog& SlowQueryLog::Global() {
  static SlowQueryLog* log = new SlowQueryLog();
  return *log;
}

void SlowQueryLog::Record(Entry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(std::move(entry));
  while (static_cast<int64_t>(ring_.size()) > capacity_) {
    ring_.pop_front();
    ++dropped_;
  }
}

std::vector<SlowQueryLog::Entry> SlowQueryLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<Entry>(ring_.begin(), ring_.end());
}

int64_t SlowQueryLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void SlowQueryLog::ResetForTesting() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  dropped_ = 0;
}

}  // namespace vstore
