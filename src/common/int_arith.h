#ifndef VSTORE_COMMON_INT_ARITH_H_
#define VSTORE_COMMON_INT_ARITH_H_

#include <cstdint>

namespace vstore {

// Two's-complement wrapping int64 arithmetic. This is the engine-wide
// contract for integer expressions: the interpreter, the row engine, the
// bytecode VM and the SIMD kernels all wrap on overflow, so every engine
// produces bit-identical results (and none of them trips UBSan). Division
// guards the one remaining trap: INT64_MIN / -1 wraps to INT64_MIN, and
// callers are responsible for null-ing out division by zero.
inline int64_t WrapAdd(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) +
                              static_cast<uint64_t>(b));
}

inline int64_t WrapSub(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) -
                              static_cast<uint64_t>(b));
}

inline int64_t WrapMul(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) *
                              static_cast<uint64_t>(b));
}

// Caller must ensure b != 0 (the expression engines null out b == 0 lanes
// and pass a dummy divisor instead).
inline int64_t WrapDiv(int64_t a, int64_t b) {
  if (b == -1) return WrapSub(0, a);  // INT64_MIN / -1 wraps, others exact
  return a / b;
}

// Extracts the civil year from a days-since-epoch value (Howard Hinnant's
// civil_from_days). Wrapping ops keep absurd inputs (dates produced by
// arithmetic on date columns) defined and identical across engines.
inline int64_t YearFromDays(int64_t days) {
  int64_t z = WrapAdd(days, 719468);
  const int64_t era = (z >= 0 ? z : WrapSub(z, 146096)) / 146097;
  const uint64_t doe = static_cast<uint64_t>(WrapSub(z, WrapMul(era, 146097)));
  const uint64_t yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = WrapAdd(static_cast<int64_t>(yoe), WrapMul(era, 400));
  const uint64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const uint64_t mp = (5 * doy + 2) / 153;
  const uint64_t m = mp + (mp < 10 ? 3 : static_cast<uint64_t>(-9));
  return WrapAdd(y, m <= 2 ? 1 : 0);
}

}  // namespace vstore

#endif  // VSTORE_COMMON_INT_ARITH_H_
