#include "common/io.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/memory_tracker.h"
#include <mutex>

namespace vstore {

namespace {

std::mutex g_fault_mu;

Status Errno(const std::string& op, const std::string& path) {
  return Status::Internal(op + " failed for " + path + ": " +
                          std::strerror(errno));
}

}  // namespace

// --- IoFaultInjector ------------------------------------------------------

IoFaultInjector& IoFaultInjector::Global() {
  static IoFaultInjector* injector = new IoFaultInjector();
  return *injector;
}

void IoFaultInjector::Arm(const std::string& path_substring, IoFault fault) {
  std::lock_guard<std::mutex> lock(g_fault_mu);
  armed_.push_back({path_substring, fault});
}

void IoFaultInjector::Clear() {
  std::lock_guard<std::mutex> lock(g_fault_mu);
  armed_.clear();
}

IoFault IoFaultInjector::Take(const std::string& path, IoFault::Kind kind) {
  std::lock_guard<std::mutex> lock(g_fault_mu);
  for (size_t i = 0; i < armed_.size(); ++i) {
    if (armed_[i].fault.kind != kind) continue;
    if (path.find(armed_[i].substring) == std::string::npos) continue;
    IoFault fault = armed_[i].fault;
    if (fault.once) armed_.erase(armed_.begin() + static_cast<long>(i));
    return fault;
  }
  return IoFault{};
}

// --- File -----------------------------------------------------------------

File::~File() { (void)Close(); }

Result<std::unique_ptr<File>> File::Create(const std::string& path) {
  int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) return Errno("create", path);
  auto file = std::unique_ptr<File>(new File());
  file->fd_ = fd;
  file->path_ = path;
  return file;
}

Result<std::unique_ptr<File>> File::OpenAppend(const std::string& path) {
  int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd < 0) return Errno("open-append", path);
  auto file = std::unique_ptr<File>(new File());
  file->fd_ = fd;
  file->path_ = path;
  return file;
}

Result<std::unique_ptr<File>> File::OpenRead(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Errno("open-read", path);
  auto file = std::unique_ptr<File>(new File());
  file->fd_ = fd;
  file->path_ = path;
  return file;
}

Status File::Append(const void* data, size_t len) {
  if (fd_ < 0) return Status::Internal("append on closed file " + path_);
  const uint8_t* p = static_cast<const uint8_t*>(data);
  std::vector<uint8_t> flipped;

  IoFault flip = IoFaultInjector::Global().Take(path_, IoFault::Kind::kBitFlip);
  if (flip.kind == IoFault::Kind::kBitFlip && len > 0) {
    flipped.assign(p, p + len);
    int64_t bit = flip.bit_index % (static_cast<int64_t>(len) * 8);
    flipped[static_cast<size_t>(bit / 8)] ^=
        static_cast<uint8_t>(1u << (bit % 8));
    p = flipped.data();
  }

  IoFault torn = IoFaultInjector::Global().Take(path_, IoFault::Kind::kTornWrite);
  size_t to_write = len;
  bool injected_tear = false;
  if (torn.kind == IoFault::Kind::kTornWrite) {
    to_write = static_cast<size_t>(
        std::min<int64_t>(torn.fail_after_bytes, static_cast<int64_t>(len)));
    injected_tear = true;
  }

  size_t written = 0;
  while (written < to_write) {
    ssize_t n = ::write(fd_, p + written, to_write - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write", path_);
    }
    written += static_cast<size_t>(n);
  }
  if (injected_tear) {
    return Status::Internal("injected torn write on " + path_);
  }
  return Status::OK();
}

Status File::ReadAt(int64_t offset, void* out, size_t len,
                    size_t* read) const {
  if (fd_ < 0) return Status::Internal("read on closed file " + path_);
  size_t want = len;
  IoFault fault =
      IoFaultInjector::Global().Take(path_, IoFault::Kind::kShortRead);
  if (fault.kind == IoFault::Kind::kShortRead) {
    want = static_cast<size_t>(std::min<int64_t>(
        fault.fail_after_bytes, static_cast<int64_t>(len)));
  }
  uint8_t* p = static_cast<uint8_t*>(out);
  size_t got = 0;
  while (got < want) {
    ssize_t n = ::pread(fd_, p + got, want - got,
                        static_cast<off_t>(offset + static_cast<int64_t>(got)));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("pread", path_);
    }
    if (n == 0) break;  // EOF
    got += static_cast<size_t>(n);
  }
  *read = got;
  return Status::OK();
}

Status File::Sync() {
  if (fd_ < 0) return Status::Internal("sync on closed file " + path_);
  IoFault fault =
      IoFaultInjector::Global().Take(path_, IoFault::Kind::kFailSync);
  if (fault.kind == IoFault::Kind::kFailSync) {
    return Status::Internal("injected fsync failure on " + path_);
  }
  if (::fsync(fd_) != 0) return Errno("fsync", path_);
  return Status::OK();
}

Result<int64_t> File::Size() const {
  struct stat st;
  if (::fstat(fd_, &st) != 0) return Errno("fstat", path_);
  return static_cast<int64_t>(st.st_size);
}

Status File::Truncate(int64_t size) {
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return Errno("ftruncate", path_);
  }
  return Status::OK();
}

Status File::Close() {
  if (fd_ < 0) return Status::OK();
  int fd = fd_;
  fd_ = -1;
  if (::close(fd) != 0) return Errno("close", path_);
  return Status::OK();
}

// --- MappedFile -----------------------------------------------------------

MappedFile::~MappedFile() {
  if (data_ != nullptr && size_ > 0) {
    ::munmap(const_cast<uint8_t*>(data_), static_cast<size_t>(size_));
    MappedMemoryTracker()->Release(size_);
  }
}

Result<std::shared_ptr<MappedFile>> MappedFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Errno("open-mmap", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status err = Errno("fstat", path);
    ::close(fd);
    return err;
  }
  auto mapped = std::shared_ptr<MappedFile>(new MappedFile());
  mapped->path_ = path;
  mapped->size_ = static_cast<int64_t>(st.st_size);
  if (mapped->size_ > 0) {
    void* addr = ::mmap(nullptr, static_cast<size_t>(mapped->size_), PROT_READ,
                        MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      Status err = Errno("mmap", path);
      ::close(fd);
      return err;
    }
    mapped->data_ = static_cast<const uint8_t*>(addr);
    // Mapped checkpoint bytes are a distinct accounting class: resident at
    // the kernel's discretion, not heap, so they get their own tracker
    // node rather than a table/operator charge.
    MappedMemoryTracker()->Charge(mapped->size_);
  }
  ::close(fd);  // the mapping keeps the file contents pinned
  return mapped;
}

// --- Directory helpers ----------------------------------------------------

Status CreateDirs(const std::string& path) {
  std::string partial;
  size_t pos = 0;
  while (pos <= path.size()) {
    size_t next = path.find('/', pos);
    if (next == std::string::npos) next = path.size();
    partial = path.substr(0, next);
    pos = next + 1;
    if (partial.empty()) continue;
    if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
      return Errno("mkdir", partial);
    }
  }
  return Status::OK();
}

Result<std::vector<std::string>> ListDir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return Errno("opendir", dir);
  std::vector<std::string> names;
  while (struct dirent* entry = ::readdir(d)) {
    std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(std::move(name));
  }
  ::closedir(d);
  return names;
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Errno("unlink", path);
  }
  return Status::OK();
}

Status RenameFile(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return Errno("rename", from + " -> " + to);
  }
  return Status::OK();
}

Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("open-dir", dir);
  Status st = Status::OK();
  if (::fsync(fd) != 0) st = Errno("fsync-dir", dir);
  ::close(fd);
  return st;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace vstore
