#ifndef VSTORE_COMMON_MEMORY_TRACKER_H_
#define VSTORE_COMMON_MEMORY_TRACKER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/macros.h"

namespace vstore {

// Hierarchical memory accounting: process root -> per-query tracker ->
// per-operator / per-fragment children, with a parallel storage subtree
// (one node per table, component children for delta stores, dictionaries,
// delete bitmaps, and mmap'd checkpoint segments as a separate "mapped"
// class). PR 9 attributed every query's *time* (spans + wait points); this
// is the same story for *bytes*.
//
// Counters and the reconciliation invariant: every node keeps
//
//   local    — bytes charged directly at this node,
//   current  — inclusive total: local plus every descendant's current,
//   peak     — high-water mark of current (CAS-max),
//
// all relaxed atomics. Charge(n) adds to local here and to current on this
// node and every ancestor, so at every level
//
//   current == local + sum(children.current)
//
// holds whenever no charge is in flight (the quiescent reconciliation the
// tests assert). Reads taken mid-charge are never torn but may be mutually
// inconsistent — the standard relaxed-metrics contract.
//
// Budgets and pressure: a node may carry a soft budget. The charge that
// crosses it (upward) increments vstore_mem_budget_exceeded_total and
// fires the node's pressure listeners on the charging thread. Listeners
// must be trivial — set a flag, never allocate tracked memory. Spilling
// operators register a listener on the query tracker and poll the flag at
// their existing spill decision points, so memory pressure turns into
// *policy-driven* spill with bit-identical results (only spill placement
// changes). over_budget() is also directly pollable.
//
// Lifetime: children unregister from their parent on destruction and must
// not outlive it. The process root is a never-destroyed singleton; query
// trackers are shared_ptrs owned by the executor frame (operators, which
// hold child trackers, are destroyed first).
class MemoryTracker {
 public:
  using PressureListener = std::function<void()>;

  // Creates a node under `parent` (nullptr for detached roots in tests).
  // `category` groups sys.memory rows ("query", "operator", "delta",
  // "dictionary", "bitmap", "segments", "mapped", ...); table/shard label
  // storage nodes.
  MemoryTracker(std::string name, std::string category, MemoryTracker* parent,
                std::string table = std::string(),
                std::string shard = std::string());
  ~MemoryTracker();
  VSTORE_DISALLOW_COPY_AND_ASSIGN(MemoryTracker);

  // The process-wide root every other tracker descends from.
  static MemoryTracker* Process();

  // Adds `bytes` (may be negative) to this node's local count and to the
  // inclusive count of this node and every ancestor.
  void Charge(int64_t bytes);
  void Release(int64_t bytes) { Charge(-bytes); }

  // Reconciliation-style update: makes this node's local count exactly
  // `bytes`, charging or releasing the difference. Storage components call
  // this from their existing MemoryBytes() refresh points.
  void SyncLocal(int64_t bytes);

  int64_t current() const {
    return current_.load(std::memory_order_relaxed);
  }
  int64_t local() const { return local_.load(std::memory_order_relaxed); }
  int64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  void ResetPeak() {
    peak_.store(current_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  }

  const std::string& name() const { return name_; }
  const std::string& category() const { return category_; }
  const std::string& table() const { return table_; }
  const std::string& shard() const { return shard_; }
  MemoryTracker* parent() const { return parent_; }

  // --- Soft budget ---------------------------------------------------------

  // <= 0 means unlimited (the default).
  void SetBudget(int64_t bytes) {
    budget_.store(bytes, std::memory_order_relaxed);
  }
  int64_t budget() const { return budget_.load(std::memory_order_relaxed); }
  // True when this node or any ancestor is over its budget — fragment and
  // operator trackers therefore observe the query-level budget too.
  bool over_budget() const {
    for (const MemoryTracker* node = this; node != nullptr;
         node = node->parent_) {
      int64_t b = node->budget_.load(std::memory_order_relaxed);
      if (b > 0 && node->current_.load(std::memory_order_relaxed) > b) {
        return true;
      }
    }
    return false;
  }
  // Number of upward budget crossings observed at this node.
  int64_t budget_exceeded_count() const {
    return budget_exceeded_.load(std::memory_order_relaxed);
  }

  // Listeners fire on the charging thread at every upward budget crossing.
  // They must be cheap and must not charge tracked memory. Registration is
  // delegated to BudgetScope() — the nearest budgeted self-or-ancestor,
  // where crossings actually fire — so operators under a per-fragment
  // tracker still hear the query budget. Returns an id for
  // RemovePressureListener (same delegation); listeners must be removed
  // before anything they capture dies, and budgets must not move between a
  // listener's add and remove.
  int AddPressureListener(PressureListener listener);
  void RemovePressureListener(int id);
  // Nearest self-or-ancestor with a budget set; `this` when none is.
  MemoryTracker* BudgetScope();

  // --- Tree walk (sys.memory) ----------------------------------------------

  struct NodeStats {
    std::string name;
    std::string category;
    std::string table;
    std::string shard;
    int depth = 0;
    int64_t local_bytes = 0;    // exclusive: SUM over all rows == root total
    int64_t current_bytes = 0;  // inclusive subtree total
    int64_t peak_bytes = 0;
  };
  // Preorder snapshot of this subtree. Rows report both local (exclusive)
  // and current (inclusive) bytes; summing local over every row of a
  // subtree yields that subtree root's current — the sys.memory
  // reconciliation check.
  void Collect(std::vector<NodeStats>* out, int depth = 0) const;

 private:
  void UpdatePeak(int64_t current);
  void CheckBudget(int64_t prev, int64_t bytes);

  const std::string name_;
  const std::string category_;
  const std::string table_;
  const std::string shard_;
  MemoryTracker* const parent_;

  std::atomic<int64_t> local_{0};
  std::atomic<int64_t> current_{0};
  std::atomic<int64_t> peak_{0};
  std::atomic<int64_t> budget_{0};
  std::atomic<int64_t> budget_exceeded_{0};

  mutable std::mutex children_mu_;  // guards children_ shape only
  std::vector<MemoryTracker*> children_;

  std::mutex listeners_mu_;
  std::vector<std::pair<int, PressureListener>> listeners_;
  int next_listener_id_ = 1;
};

// RAII charge against one tracker: Set()/Add() adjust the held amount, the
// destructor releases whatever remains. A default-constructed or
// null-tracker reservation is a no-op throughout, which is the cheap
// "tracking disabled" path.
class MemoryReservation {
 public:
  MemoryReservation() = default;
  explicit MemoryReservation(MemoryTracker* tracker) : tracker_(tracker) {}
  ~MemoryReservation() { Clear(); }

  MemoryReservation(MemoryReservation&& other) noexcept
      : tracker_(other.tracker_), bytes_(other.bytes_) {
    other.tracker_ = nullptr;
    other.bytes_ = 0;
  }
  MemoryReservation& operator=(MemoryReservation&& other) noexcept {
    if (this != &other) {
      Clear();
      tracker_ = other.tracker_;
      bytes_ = other.bytes_;
      other.tracker_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }
  VSTORE_DISALLOW_COPY_AND_ASSIGN(MemoryReservation);

  // Points the reservation at `tracker`, migrating any held bytes.
  void Reset(MemoryTracker* tracker);

  void Set(int64_t bytes);
  void Add(int64_t delta) { Set(bytes_ + delta); }
  void Clear() { Set(0); }

  int64_t bytes() const { return bytes_; }
  MemoryTracker* tracker() const { return tracker_; }

 private:
  MemoryTracker* tracker_ = nullptr;
  int64_t bytes_ = 0;
};

// --- Process-level accounting helpers --------------------------------------

// The "mapped" memory class: mmap'd checkpoint segments, charged by
// MappedFile. A lazily-created child of the process root.
MemoryTracker* MappedMemoryTracker();

// Process-wide spill-byte accounting (vstore_spill_bytes_total). Operators
// add the payload bytes they write to spill partition files.
void AddGlobalSpillBytes(int64_t bytes);
int64_t GlobalSpillBytes();

// Resident-set size from /proc/self/statm (0 where unavailable).
int64_t ReadProcessRssBytes();

// Samples the tracker tree into the metrics registry:
// vstore_mem_bytes{category=...} (exclusive per-category sums),
// vstore_process_rss_bytes, vstore_mapped_bytes. Called at
// Catalog::StatsReport() and when sys.memory materializes — scrape-time
// sampling, same cadence as the storage gauges.
void PublishMemoryGauges();

}  // namespace vstore

#endif  // VSTORE_COMMON_MEMORY_TRACKER_H_
