#include "common/json_util.h"

#include <cctype>
#include <cstdio>
#include <string>

namespace vstore {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default: {
        // Promote through unsigned char: a negative char must not sign-
        // extend into an eight-hex-digit escape.
        unsigned char byte = static_cast<unsigned char>(ch);
        if (byte < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", byte);
          out += buf;
        } else {
          out.push_back(ch);
        }
      }
    }
  }
  return out;
}

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  *out += JsonEscape(s);
  out->push_back('"');
}

namespace {

// Recursive-descent JSON checker. Tracks position only; values are never
// materialized. Depth-limited so hostile nesting cannot overflow the
// stack.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool Validate(std::string* error) {
    SkipWs();
    if (!Value(0)) {
      if (error != nullptr) *error = error_;
      return false;
    }
    SkipWs();
    if (pos_ != s_.size()) {
      Fail("trailing garbage after document");
      if (error != nullptr) *error = error_;
      return false;
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 256;

  bool Fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Peek(char* ch) {
    if (pos_ >= s_.size()) return false;
    *ch = s_[pos_];
    return true;
  }

  bool Literal(const char* lit) {
    size_t n = std::char_traits<char>::length(lit);
    if (s_.compare(pos_, n, lit) != 0) return Fail("invalid literal");
    pos_ += n;
    return true;
  }

  bool String() {
    // s_[pos_] == '"' on entry.
    ++pos_;
    while (pos_ < s_.size()) {
      unsigned char ch = static_cast<unsigned char>(s_[pos_]);
      if (ch == '"') {
        ++pos_;
        return true;
      }
      if (ch < 0x20) return Fail("unescaped control character in string");
      if (ch == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return Fail("truncated escape");
        char esc = s_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(static_cast<unsigned char>(
                                         s_[pos_]))) {
              return Fail("invalid \\u escape");
            }
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return Fail("invalid escape character");
        }
        ++pos_;
        continue;
      }
      ++pos_;
    }
    return Fail("unterminated string");
  }

  bool Number() {
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    if (pos_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[pos_])))
      return Fail("invalid number");
    if (s_[pos_] == '0' && pos_ + 1 < s_.size() &&
        std::isdigit(static_cast<unsigned char>(s_[pos_ + 1]))) {
      return Fail("leading zero in number");
    }
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      if (pos_ >= s_.size() ||
          !std::isdigit(static_cast<unsigned char>(s_[pos_])))
        return Fail("digit required after decimal point");
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_])))
        ++pos_;
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (pos_ >= s_.size() ||
          !std::isdigit(static_cast<unsigned char>(s_[pos_])))
        return Fail("digit required in exponent");
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_])))
        ++pos_;
    }
    return true;
  }

  bool Value(int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    char ch;
    if (!Peek(&ch)) return Fail("unexpected end of document");
    switch (ch) {
      case '{': {
        ++pos_;
        SkipWs();
        if (Peek(&ch) && ch == '}') {
          ++pos_;
          return true;
        }
        for (;;) {
          SkipWs();
          if (!Peek(&ch) || ch != '"') return Fail("object key must be a string");
          if (!String()) return false;
          SkipWs();
          if (!Peek(&ch) || ch != ':') return Fail("':' expected in object");
          ++pos_;
          SkipWs();
          if (!Value(depth + 1)) return false;
          SkipWs();
          if (!Peek(&ch)) return Fail("unterminated object");
          if (ch == ',') {
            ++pos_;
            continue;  // a '}' after this comma fails the key check above
          }
          if (ch == '}') {
            ++pos_;
            return true;
          }
          return Fail("',' or '}' expected in object");
        }
      }
      case '[': {
        ++pos_;
        SkipWs();
        if (Peek(&ch) && ch == ']') {
          ++pos_;
          return true;
        }
        for (;;) {
          SkipWs();
          if (Peek(&ch) && (ch == ']' || ch == ',')) {
            return Fail("missing array element");  // trailing/double comma
          }
          if (!Value(depth + 1)) return false;
          SkipWs();
          if (!Peek(&ch)) return Fail("unterminated array");
          if (ch == ',') {
            ++pos_;
            continue;
          }
          if (ch == ']') {
            ++pos_;
            return true;
          }
          return Fail("',' or ']' expected in array");
        }
      }
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace

bool JsonValidate(const std::string& s, std::string* error) {
  return JsonChecker(s).Validate(error);
}

std::string PromLabelEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(ch);
    }
  }
  return out;
}

}  // namespace vstore
