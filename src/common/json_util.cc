#include "common/json_util.h"

#include <cstdio>

namespace vstore {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default: {
        // Promote through unsigned char: a negative char must not sign-
        // extend into an eight-hex-digit escape.
        unsigned char byte = static_cast<unsigned char>(ch);
        if (byte < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", byte);
          out += buf;
        } else {
          out.push_back(ch);
        }
      }
    }
  }
  return out;
}

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  *out += JsonEscape(s);
  out->push_back('"');
}

std::string PromLabelEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(ch);
    }
  }
  return out;
}

}  // namespace vstore
