#ifndef VSTORE_COMMON_THREAD_POOL_H_
#define VSTORE_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/macros.h"

namespace vstore {

// Fixed-size worker pool used by the exchange operator for parallel scans
// and by the tuple mover for background row-group compression.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  VSTORE_DISALLOW_COPY_AND_ASSIGN(ThreadPool);

  // Enqueues a task; tasks may run in any order across workers.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished executing.
  void WaitIdle();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Runs fn(i) for i in [0, n) across the pool and waits for completion.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  int64_t pending_ = 0;  // queued + running tasks
  bool shutdown_ = false;
};

}  // namespace vstore

#endif  // VSTORE_COMMON_THREAD_POOL_H_
