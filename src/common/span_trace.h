#ifndef VSTORE_COMMON_SPAN_TRACE_H_
#define VSTORE_COMMON_SPAN_TRACE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/macros.h"
#include "common/metrics.h"

namespace vstore {

// Per-query structured span tracing and engine-wide wait attribution.
//
// Three cooperating pieces live here:
//
//  1. QuerySpanRecorder — an arena-allocated span tree recording where one
//     query's time went: optimize -> compile -> per-fragment execute ->
//     per-operator open/next/close, plus explicit *wait* spans at the
//     engine's four contention points (exchange queue, WAL fsync, table
//     lock, reorg-install conflict). Span append is lock-free (atomic
//     child-list push), so exchange fragments on worker threads record
//     into the same tree without coordination.
//
//  2. ActiveQueryRegistry — process-global list of in-flight queries with
//     relaxed-atomic progress counters, exposed as sys.active_queries. A
//     concurrent reader sees phase, rows produced so far, and the wait
//     point a query is currently blocked on.
//
//  3. SlowQueryLog — bounded ring of queries that exceeded a latency
//     threshold, each carrying its full span tree (Chrome-trace JSON) and
//     EXPLAIN ANALYZE profile, exposed as sys.slow_queries and keyed to
//     Query Store fingerprints.
//
// The glue between storage-layer wait sites and the current query is a
// thread-local QueryTraceContext: the executor (and each exchange fragment
// thread) installs {recorder, current span, active query} via
// QueryTraceScope; WaitEventScope at a contention point reads it back.
// Every wait always feeds the global vstore_wait_* metrics with
// {table=,point=} labels — wait attribution works even when no query is on
// the stack (mover reorg conflicts, WAL syncs from background commits).

// --- Wait points ---------------------------------------------------------

// The four instrumented contention points.
enum class WaitPoint {
  kQueue = 0,          // exchange bounded-queue push/pop blocking
  kFsync = 1,          // WAL group-commit fsync waits
  kLock = 2,           // ColumnStoreTable/shard mutex acquisition
  kReorgConflict = 3,  // TupleMover reorg-install conflict (wasted build)
};
inline constexpr int kNumWaitPoints = 4;

// Stable label value for the metrics registry and sys.* views:
// "queue" | "fsync" | "lock" | "reorg_conflict".
const char* WaitPointName(WaitPoint point);

// Cached handles for one (table, point) pair of the two wait metric
// families: vstore_wait_total (counter) and vstore_wait_ns (log2
// histogram), both labeled {table=,point=}. Resolve once (constructor
// time) and keep — registry lookups take a mutex, these handles don't.
struct WaitStats {
  Counter* total = nullptr;
  Histogram* wait_ns = nullptr;
};
WaitStats GetWaitStats(const std::string& table, WaitPoint point);

// --- Span tree -----------------------------------------------------------

// One node of a query's span tree. Allocated from the recorder's chunked
// arena; never freed individually. `first_child` is a lock-free LIFO list
// head — siblings link through `next_sibling` and are re-sorted by start
// time when the tree is snapshotted.
struct TraceSpan {
  std::string name;      // "optimize", "HashJoin", "wait:lock", ...
  std::string category;  // "phase" | "operator" | "fragment" | "wait" | ...
  std::string detail;    // wait spans carry the table name here
  int64_t start_us = 0;  // TraceRing::NowMicros epoch (composes with ring)
  int64_t end_us = 0;    // 0 while the span is still open
  uint64_t thread_id = 0;  // hashed std::thread::id of the recording thread
  TraceSpan* parent = nullptr;
  std::atomic<TraceSpan*> first_child{nullptr};
  TraceSpan* next_sibling = nullptr;
};

// Value-type snapshot of a span (what QueryResult::trace carries; no
// pointers into the dead recorder).
struct QueryTraceSpan {
  std::string name;
  std::string category;
  std::string detail;
  int64_t start_us = 0;
  int64_t duration_us = 0;
  uint64_t thread_id = 0;
  std::vector<QueryTraceSpan> children;

  // Depth-first count of nodes in this subtree (including this one).
  int64_t TreeSize() const;
  // Sum of `duration_us` over spans matching `category` in this subtree.
  int64_t CategoryTotalUs(const std::string& category) const;
};

// A finished query's trace: the span tree plus exact per-point wait
// totals. The totals come from relaxed accumulators, not from summing
// spans — they stay exact even when span capacity is exhausted.
struct QueryTrace {
  bool valid = false;  // tracing was enabled for this query
  uint64_t query_id = 0;
  uint64_t fingerprint = 0;
  int64_t span_count = 0;
  int64_t dropped_spans = 0;  // spans lost to the recorder's capacity cap
  std::array<int64_t, kNumWaitPoints> wait_ns{};
  QueryTraceSpan root;

  int64_t TotalWaitNs() const {
    int64_t total = 0;
    for (int64_t ns : wait_ns) total += ns;
    return total;
  }
};

// Renders the trace in chrome://tracing "trace event format". Spans from
// different threads (exchange fragments) land on distinct `tid` tracks,
// compactly renumbered by first appearance. With `include_trace_ring`,
// the global TraceRing's events (mover passes, reorgs, checkpoints) are
// merged onto the same timeline — both sources share the
// TraceRing::NowMicros epoch, so a mover pass lines up against the query
// that it stalled.
std::string TraceToChromeJson(const QueryTrace& trace,
                              bool include_trace_ring = false);

// --- QuerySpanRecorder ---------------------------------------------------

// Span arena + tree for one query. Thread-safe for concurrent StartSpan/
// AddCompleteSpan from exchange fragment threads; allocation is a relaxed
// fetch_add into chunked storage (a mutex is taken only to install a new
// chunk). Capacity-bounded: past `max_spans`, spans are counted as dropped
// rather than allocated, and the exact wait accumulators keep the totals
// honest.
class QuerySpanRecorder {
 public:
  static constexpr int64_t kChunkSpans = 256;

  explicit QuerySpanRecorder(int64_t max_spans = 8192);
  ~QuerySpanRecorder();
  VSTORE_DISALLOW_COPY_AND_ASSIGN(QuerySpanRecorder);

  // The implicit "query" span every other span descends from.
  TraceSpan* root() { return root_; }

  // Opens a span under `parent` (nullptr -> under root). Returns nullptr
  // when capacity is exhausted — callers must tolerate it.
  TraceSpan* StartSpan(std::string name, std::string category,
                       TraceSpan* parent, std::string detail = "");
  // Closes an open span (no-op on nullptr).
  void EndSpan(TraceSpan* span);
  // Records an already-finished interval (wait spans measure first, then
  // attach).
  TraceSpan* AddCompleteSpan(std::string name, std::string category,
                             TraceSpan* parent, std::string detail,
                             int64_t start_us, int64_t end_us);

  // Exact wait accounting, independent of span capacity.
  void AddWaitNs(WaitPoint point, int64_t ns) {
    wait_ns_[static_cast<size_t>(point)].fetch_add(ns,
                                                   std::memory_order_relaxed);
  }
  int64_t wait_ns(WaitPoint point) const {
    return wait_ns_[static_cast<size_t>(point)].load(
        std::memory_order_relaxed);
  }

  int64_t span_count() const {
    return std::min(next_slot_.load(std::memory_order_relaxed), max_spans_);
  }
  int64_t dropped_spans() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  // Deep-copies the tree into a value-type QueryTrace (sibling lists are
  // reversed back to append order and sorted by start time). Call after
  // all recording threads have finished or joined.
  QueryTrace Snapshot() const;

 private:
  struct Chunk;

  TraceSpan* Allocate();

  const int64_t max_spans_;
  std::atomic<int64_t> next_slot_{0};
  std::atomic<int64_t> dropped_{0};
  std::vector<std::atomic<Chunk*>> chunks_;
  std::array<std::atomic<int64_t>, kNumWaitPoints> wait_ns_{};
  TraceSpan* root_ = nullptr;
};

// --- Thread-local trace context ------------------------------------------

struct ActiveQuery;

// What the current thread is recording into. Installed by the executor for
// the driving thread and by the exchange for each fragment worker; storage
// wait sites read it to attribute waits to the running query.
struct QueryTraceContext {
  QuerySpanRecorder* recorder = nullptr;
  TraceSpan* current = nullptr;  // parent for newly opened spans
  ActiveQuery* active_query = nullptr;
};

// The calling thread's context (all-null when no traced query is on the
// stack).
QueryTraceContext& CurrentQueryTraceContext();

// RAII install/restore of the full thread-local context. Nests: a system
// view materialized inside planning runs its own traced query and restores
// the outer one on exit.
class QueryTraceScope {
 public:
  QueryTraceScope(QuerySpanRecorder* recorder, TraceSpan* current,
                  ActiveQuery* active_query);
  ~QueryTraceScope();
  VSTORE_DISALLOW_COPY_AND_ASSIGN(QueryTraceScope);

 private:
  QueryTraceContext saved_;
};

// RAII re-point of the *current span* only (recorder and active query
// unchanged). Operators push their own span around OpenImpl/NextImpl/
// CloseImpl so child operators and wait sites nest correctly. No-op when
// `span` is null or no recorder is installed.
class SpanGuard {
 public:
  explicit SpanGuard(TraceSpan* span);
  ~SpanGuard();
  VSTORE_DISALLOW_COPY_AND_ASSIGN(SpanGuard);

 private:
  TraceSpan* saved_ = nullptr;
  bool active_ = false;
};

// --- Wait recording ------------------------------------------------------

// Records an already-measured wait interval: global metrics always, plus
// the calling thread's traced query (wait span + accumulators) when one is
// installed. WaitEventScope funnels through this; call it directly for
// retroactive attribution (e.g. a reorg build discovered to be wasted only
// at install time).
void RecordWaitEvent(const WaitStats& stats, WaitPoint point,
                     std::string_view table, int64_t start_us,
                     int64_t end_us);

// RAII measurement of one *blocked* wait. Construct only after deciding
// the fast path failed (queue full, try_lock lost, fsync needed) — the
// uncontended path must stay free of clock reads. On destruction:
//   - always: stats.total +1, stats.wait_ns += duration (global metrics);
//   - if a traced query is on this thread: a "wait:<point>" span under the
//     current span, the recorder's exact per-point accumulator, and the
//     active query's current-wait marker + wait totals.
class WaitEventScope {
 public:
  WaitEventScope(const WaitStats& stats, WaitPoint point,
                 std::string_view table);
  ~WaitEventScope();
  VSTORE_DISALLOW_COPY_AND_ASSIGN(WaitEventScope);

 private:
  WaitStats stats_;
  WaitPoint point_;
  std::string_view table_;
  int64_t start_us_;
  ActiveQuery* active_query_ = nullptr;
};

// --- Active query registry -----------------------------------------------

enum class QueryPhase {
  kOptimize = 0,
  kCompile = 1,  // physical planning + expression compilation
  kExecute = 2,
  kDone = 3,
};
const char* QueryPhaseName(QueryPhase phase);

// Live, shared state of one in-flight query. The executor owns the writes;
// sys.active_queries readers see a relaxed-atomic snapshot (counters may
// be mutually inconsistent mid-flight; each value is never torn).
struct ActiveQuery {
  uint64_t query_id = 0;
  int64_t start_us = 0;  // TraceRing::NowMicros at registration

  std::atomic<int> phase{static_cast<int>(QueryPhase::kOptimize)};
  std::atomic<uint64_t> fingerprint{0};
  std::atomic<int64_t> rows_produced{0};  // rows out of the plan root
  std::atomic<int64_t> rows_scanned{0};   // rows decoded by scans
  std::atomic<int> current_wait{-1};      // WaitPoint, -1 when running
  std::array<std::atomic<int64_t>, kNumWaitPoints> wait_ns{};
  // Live memory attribution (0 when the query runs without tracking):
  // refreshed from the query's MemoryTracker as batches flow.
  std::atomic<int64_t> mem_current_bytes{0};
  std::atomic<int64_t> mem_peak_bytes{0};
  std::atomic<int64_t> mem_budget_bytes{0};  // 0 = unlimited

  void SetPlanSummary(std::string summary) {
    std::lock_guard<std::mutex> lock(mu_);
    plan_summary_ = std::move(summary);
  }
  std::string plan_summary() const {
    std::lock_guard<std::mutex> lock(mu_);
    return plan_summary_;
  }

 private:
  mutable std::mutex mu_;  // guards plan_summary_ only
  std::string plan_summary_;
};

// Process-global registry of in-flight queries (sys.active_queries).
// Entries are shared_ptrs so a List() racing query completion reads a
// still-live ActiveQuery.
class ActiveQueryRegistry {
 public:
  ActiveQueryRegistry() = default;
  VSTORE_DISALLOW_COPY_AND_ASSIGN(ActiveQueryRegistry);

  static ActiveQueryRegistry& Global();

  // Registers a new query and assigns it a process-unique id.
  std::shared_ptr<ActiveQuery> Register();
  void Unregister(uint64_t query_id);

  // Flat snapshot of one live query (sys.active_queries row shape).
  struct Snapshot {
    uint64_t query_id = 0;
    uint64_t fingerprint = 0;
    std::string phase;
    std::string plan_summary;
    std::string wait_point;  // "" when not currently blocked
    int64_t elapsed_us = 0;
    int64_t rows_produced = 0;
    int64_t rows_scanned = 0;
    int64_t mem_current_bytes = 0;
    int64_t mem_peak_bytes = 0;
    int64_t mem_budget_bytes = 0;
    std::array<int64_t, kNumWaitPoints> wait_us{};
  };
  // All live queries, ordered by query id (registration order).
  std::vector<Snapshot> List() const;

 private:
  mutable std::mutex mu_;
  std::map<uint64_t, std::shared_ptr<ActiveQuery>> active_;
  std::atomic<uint64_t> next_id_{1};
};

// --- Slow-query log ------------------------------------------------------

// Bounded ring of queries that exceeded the latency threshold, each with
// its full span tree and EXPLAIN ANALYZE JSON (sys.slow_queries). Query
// Store fingerprints key entries back to per-shape aggregates.
class SlowQueryLog {
 public:
  explicit SlowQueryLog(int64_t capacity = 128);
  VSTORE_DISALLOW_COPY_AND_ASSIGN(SlowQueryLog);

  static SlowQueryLog& Global();

  struct Entry {
    uint64_t query_id = 0;
    uint64_t fingerprint = 0;
    std::string plan_summary;
    int64_t start_us = 0;
    int64_t elapsed_us = 0;
    int64_t rows_returned = 0;
    std::array<int64_t, kNumWaitPoints> wait_us{};
    std::string trace_json;    // TraceToChromeJson of the span tree
    std::string profile_json;  // ProfileToJson (EXPLAIN ANALYZE)
  };

  // Queries at or above this many microseconds get captured; negative
  // disables capture entirely. Default 100ms.
  void set_threshold_us(int64_t us) {
    threshold_us_.store(us, std::memory_order_relaxed);
  }
  int64_t threshold_us() const {
    return threshold_us_.load(std::memory_order_relaxed);
  }

  void Record(Entry entry);

  // Buffered entries, oldest first.
  std::vector<Entry> Snapshot() const;
  // Entries overwritten by ring wraparound.
  int64_t dropped() const;

  void ResetForTesting();

 private:
  const int64_t capacity_;
  std::atomic<int64_t> threshold_us_{100 * 1000};
  mutable std::mutex mu_;
  std::deque<Entry> ring_;
  int64_t dropped_ = 0;
};

}  // namespace vstore

#endif  // VSTORE_COMMON_SPAN_TRACE_H_
