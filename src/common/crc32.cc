#include "common/crc32.h"

#include <array>
#include <cstring>

namespace vstore {

namespace {

constexpr uint32_t kPoly = 0x82f63b78u;  // CRC-32C, reflected

struct Crc32Tables {
  std::array<std::array<uint32_t, 256>, 4> t;
  Crc32Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc >> 1) ^ (crc & 1 ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFF];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFF];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFF];
    }
  }
};

const Crc32Tables& Tables() {
  static const Crc32Tables tables;
  return tables;
}

}  // namespace

uint32_t Crc32(const void* data, size_t len, uint32_t seed) {
  const Crc32Tables& tb = Tables();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  while (len >= 4) {
    uint32_t w;
    std::memcpy(&w, p, sizeof(w));
    crc ^= w;
    crc = tb.t[3][crc & 0xFF] ^ tb.t[2][(crc >> 8) & 0xFF] ^
          tb.t[1][(crc >> 16) & 0xFF] ^ tb.t[0][crc >> 24];
    p += 4;
    len -= 4;
  }
  while (len-- > 0) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *p++) & 0xFF];
  }
  return ~crc;
}

}  // namespace vstore
