#ifndef VSTORE_COMMON_RANDOM_H_
#define VSTORE_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace vstore {

// Deterministic splitmix64/xoshiro-style PRNG. We avoid <random> engines so
// generated datasets are bit-identical across standard libraries — the
// TPC-H substrate depends on this for reproducible benchmarks.
class Random {
 public:
  explicit Random(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {
    // Warm up so small seeds diverge quickly.
    Next();
    Next();
  }

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t Uniform(int64_t lo, int64_t hi) {
    VSTORE_DCHECK(lo <= hi);
    uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(Next() % range);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool NextBool(double p_true) { return NextDouble() < p_true; }

 private:
  uint64_t state_;
};

// Zipf-distributed generator over [0, n) with skew parameter `s`.
// Precomputes the CDF; sampling is a binary search. Used for skewed
// compression-archetype datasets (DESIGN.md experiment E1).
class ZipfGenerator {
 public:
  ZipfGenerator(int64_t n, double s, uint64_t seed) : rng_(seed), cdf_(n) {
    VSTORE_CHECK(n > 0);
    double sum = 0;
    for (int64_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[static_cast<size_t>(i)] = sum;
    }
    for (auto& v : cdf_) v /= sum;
  }

  int64_t Next() {
    double u = rng_.NextDouble();
    // First index with cdf >= u.
    int64_t lo = 0, hi = static_cast<int64_t>(cdf_.size()) - 1;
    while (lo < hi) {
      int64_t mid = (lo + hi) / 2;
      if (cdf_[static_cast<size_t>(mid)] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  Random rng_;
  std::vector<double> cdf_;
};

}  // namespace vstore

#endif  // VSTORE_COMMON_RANDOM_H_
