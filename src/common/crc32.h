#ifndef VSTORE_COMMON_CRC32_H_
#define VSTORE_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace vstore {

// CRC-32C (Castagnoli polynomial, as used by iSCSI/ext4/LevelDB) over a byte
// buffer. Software slice-by-4 implementation — fast enough for checkpoint
// and WAL block checksums, no ISA dependency. `seed` allows incremental
// computation: Crc32(b, n2, Crc32(a, n1)) == Crc32(concat(a,b), n1+n2).
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

// Masked CRC stored on disk (LevelDB-style rotation + constant) so that a
// CRC of bytes that themselves contain an unmasked CRC does not degenerate.
inline uint32_t MaskCrc32(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}
inline uint32_t UnmaskCrc32(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8u;
  return (rot << 15) | (rot >> 17);
}

}  // namespace vstore

#endif  // VSTORE_COMMON_CRC32_H_
