#ifndef VSTORE_COMMON_SIMD_H_
#define VSTORE_COMMON_SIMD_H_

namespace vstore {
namespace simd {

// Instruction-set tiers the batch kernels can dispatch to. Kernels are
// compiled per-tier with function-level target attributes, so the binary
// runs on any x86-64 and upgrades itself at runtime.
enum class Level {
  kScalar = 0,
  kAVX2 = 1,
};

// Highest tier supported by the hardware (cpuid probe, cached).
Level Detected();

// Tier the kernels should use right now: min(Detected(), forced ceiling).
// The ceiling comes from ForceLevelForTesting() or, at startup, from the
// VSTORE_SIMD environment variable ("scalar" | "avx2").
Level Active();

// Caps the active tier so tests can cover the scalar fallback on AVX2
// machines (and assert AVX2 codepaths are exercised when available).
// Passing Detected() (or higher) removes the cap.
void ForceLevelForTesting(Level level);

inline const char* LevelName(Level level) {
  return level == Level::kAVX2 ? "avx2" : "scalar";
}

}  // namespace simd
}  // namespace vstore

#endif  // VSTORE_COMMON_SIMD_H_
