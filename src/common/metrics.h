#ifndef VSTORE_COMMON_METRICS_H_
#define VSTORE_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/macros.h"

namespace vstore {

// Engine-wide metrics: process-global registry of named counters, gauges
// and histograms, plus a fixed-size trace-event ring for background-task
// spans. Every layer of the engine publishes here — storage (per-table DML
// rates, delta-store growth, size breakdowns), background work (tuple-mover
// pass latencies, reorg conflicts), query (end-to-end latency, cumulative
// per-operator roll-ups) — and the exposition renderers (MetricsToText,
// MetricsToJson, Catalog::StatsReport) read it back out.
//
// Concurrency and read semantics: all metric values are std::atomic<int64_t>
// updated and read with relaxed ordering. Updates on hot paths are a single
// uncontended fetch_add; reads taken while writers are running are never
// torn (each load is atomic) but are not mutually consistent — a histogram
// snapshot may observe a sum without its count, a counter pair may be read
// at different instants. Exposition output is therefore a statistical view,
// exact only at quiescence; this is the standard Prometheus contract and
// the price of zero-synchronization instrumentation. Metric objects are
// allocated once and never freed or moved, so cached Counter*/Gauge*/
// Histogram* handles stay valid for the life of the process (including
// across ResetForTesting, which zeroes values but deallocates nothing).

// Monotonically increasing event count.
class Counter {
 public:
  Counter() = default;
  VSTORE_DISALLOW_COPY_AND_ASSIGN(Counter);

  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

  void ResetForTesting() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Point-in-time level (may go up and down).
class Gauge {
 public:
  Gauge() = default;
  VSTORE_DISALLOW_COPY_AND_ASSIGN(Gauge);

  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

  void ResetForTesting() { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

// Fixed-bucket log2 histogram for latencies and sizes. Bucket 0 holds
// values <= 0; bucket i (i >= 1) holds values whose bit width is i, i.e.
// the range [2^(i-1), 2^i - 1]; the last bucket absorbs everything above.
// Observe() is two relaxed fetch_adds plus a bit_width — cheap enough for
// per-query and per-pass recording on hot paths.
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;

  Histogram() = default;
  VSTORE_DISALLOW_COPY_AND_ASSIGN(Histogram);

  void Observe(int64_t value);

  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  int64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t BucketCount(int bucket) const {
    return buckets_[static_cast<size_t>(bucket)].load(
        std::memory_order_relaxed);
  }

  // Approximate q-quantile (q in [0, 1]) from the log2 buckets: finds the
  // bucket holding the target rank, then interpolates linearly between its
  // bounds — log-linear overall, so the error is bounded by one bucket's
  // width (a factor of 2 in the value). The overflow bucket reports its
  // lower bound. Reads a relaxed snapshot of the buckets; see the
  // concurrency contract above. Returns 0 on an empty histogram.
  int64_t ApproxQuantile(double q) const;

  // Bucket index a value lands in.
  static int BucketFor(int64_t value);
  // Inclusive upper bound of bucket i: 0 for bucket 0, 2^i - 1 otherwise
  // (INT64_MAX for the final bucket).
  static int64_t BucketUpperBound(int bucket);

  void ResetForTesting();

 private:
  std::array<std::atomic<int64_t>, kNumBuckets> buckets_{};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
};

// Name -> metric map with optional label families of up to two levels
// (e.g. per-table metrics carry {table="<name>"}; per-shard metrics carry
// {table="<name>",shard="<id>"}). Get* registers on first use and returns
// the same stable pointer ever after; callers resolve handles once
// (constructor time) and update them lock-free. Exposition iterates the
// sorted maps, so rendered output has deterministic metric and label
// order. Most code uses the process-global instance; tests may construct
// private registries for isolation.
//
// A family's label keys are fixed by its first registration; later Get*
// calls for the same name select an instance by label values only.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  VSTORE_DISALLOW_COPY_AND_ASSIGN(MetricsRegistry);

  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name) {
    return GetCounter(name, "", "");
  }
  Counter* GetCounter(const std::string& name, const std::string& label_key,
                      const std::string& label_value) {
    return GetCounter(name, label_key, label_value, "", "");
  }
  Counter* GetCounter(const std::string& name, const std::string& label_key,
                      const std::string& label_value,
                      const std::string& label_key2,
                      const std::string& label_value2);
  Gauge* GetGauge(const std::string& name) { return GetGauge(name, "", ""); }
  Gauge* GetGauge(const std::string& name, const std::string& label_key,
                  const std::string& label_value) {
    return GetGauge(name, label_key, label_value, "", "");
  }
  Gauge* GetGauge(const std::string& name, const std::string& label_key,
                  const std::string& label_value,
                  const std::string& label_key2,
                  const std::string& label_value2);
  Histogram* GetHistogram(const std::string& name) {
    return GetHistogram(name, "", "");
  }
  Histogram* GetHistogram(const std::string& name,
                          const std::string& label_key,
                          const std::string& label_value) {
    return GetHistogram(name, label_key, label_value, "", "");
  }
  Histogram* GetHistogram(const std::string& name,
                          const std::string& label_key,
                          const std::string& label_value,
                          const std::string& label_key2,
                          const std::string& label_value2);

  // Prometheus-style text exposition: one `name{label="value"} value` line
  // per counter/gauge, `_bucket`/`_sum`/`_count` lines per histogram
  // (cumulative le counts, non-empty buckets plus +Inf). Metric names and
  // labels render in sorted order, so output is byte-stable for a given
  // set of values.
  std::string ToText() const;
  // The same data as one JSON object:
  // {"counters":[...],"gauges":[...],"histograms":[...]}, sorted like
  // ToText().
  std::string ToJson() const;

  // One flattened metric reading (the sys.metrics system view's row shape).
  struct Sample {
    std::string name;
    std::string label_key;     // "" for unlabeled metrics
    std::string label_value;   // "" for unlabeled metrics
    std::string label_key2;    // "" unless the family has two label levels
    std::string label_value2;  // "" unless the family has two label levels
    std::string kind;          // "counter" | "gauge" | "histogram"
    int64_t value = 0;         // counter/gauge value; histogram observation count
    int64_t sum = 0;           // histogram sum; 0 otherwise
    bool has_sum = false;      // true only for histograms
  };
  // Every registered metric as a flat list, in the same deterministic
  // (name, label) order as the text exposition.
  std::vector<Sample> Samples() const;

  // Zeroes every registered value. Never removes or frees a metric: cached
  // handles stay valid.
  void ResetForTesting();

 private:
  template <typename T>
  struct Family {
    std::string label_key;   // "" for unlabeled
    std::string label_key2;  // "" for zero- and one-level families
    // Instances keyed by (first label value, second label value); the
    // second element is "" below two levels. std::map keeps exposition in
    // deterministic sorted order.
    std::map<std::pair<std::string, std::string>, std::unique_ptr<T>>
        by_label;
  };

  template <typename T>
  T* GetMetric(std::map<std::string, Family<T>>* families,
               const std::string& name, const std::string& label_key,
               const std::string& label_value, const std::string& label_key2,
               const std::string& label_value2);

  mutable std::mutex mu_;  // guards family map shape only, never values
  std::map<std::string, Family<Counter>> counters_;
  std::map<std::string, Family<Gauge>> gauges_;
  std::map<std::string, Family<Histogram>> histograms_;
};

// Convenience renderers over the global registry.
std::string MetricsToText();
std::string MetricsToJson();

// --- Trace events --------------------------------------------------------

// One completed span of background work (a tuple-mover pass, a reorg
// operation, a spill), timestamped in microseconds since process start.
struct TraceEvent {
  std::string name;      // e.g. "mover_pass"
  std::string category;  // e.g. "mover", "reorg", "spill"
  int64_t start_us = 0;
  int64_t duration_us = 0;
  uint64_t thread_id = 0;  // hashed std::thread::id
};

// Fixed-size, lock-striped ring of recent trace events. Each recording
// thread hashes to one of kStripes independently-locked rings, so
// concurrent background tasks never contend on a single mutex; when a
// stripe fills, the oldest events in that stripe are overwritten. Dump
// with ToChromeJson() and load the result into chrome://tracing or
// https://ui.perfetto.dev.
class TraceRing {
 public:
  static constexpr int kStripes = 8;

  explicit TraceRing(int64_t capacity_per_stripe = 1024);
  VSTORE_DISALLOW_COPY_AND_ASSIGN(TraceRing);

  static TraceRing& Global();

  void Record(TraceEvent event);

  // Spans overwritten by ring wraparound since construction (or the last
  // Clear). Without this a full ring is indistinguishable from an idle one:
  // the oldest events silently vanish. The global ring additionally mirrors
  // every drop into the vstore_trace_ring_dropped_total counter.
  int64_t dropped_total() const;

  // All buffered events, sorted by start time.
  std::vector<TraceEvent> Snapshot() const;

  // chrome://tracing "trace event format" JSON: complete ("ph":"X") events
  // with microsecond timestamps.
  std::string ToChromeJson() const;

  void Clear();

  // Microseconds since the process trace epoch (first use).
  static int64_t NowMicros();

 private:
  struct Stripe {
    mutable std::mutex mu;
    std::vector<TraceEvent> events;  // ring storage, <= capacity_
    size_t next = 0;                 // overwrite cursor once full
    int64_t dropped = 0;             // events overwritten by wraparound
  };

  int64_t capacity_;
  std::array<Stripe, kStripes> stripes_;
  // Set on the global instance only; every overwrite increments it.
  Counter* dropped_counter_ = nullptr;
};

// RAII span: records a TraceEvent covering its own lifetime into the ring
// on destruction. The thread id is captured at construction, so a span
// handed across threads still lands on the track that started it.
class ScopedTrace {
 public:
  ScopedTrace(std::string name, std::string category,
              TraceRing* ring = &TraceRing::Global());
  ~ScopedTrace();
  VSTORE_DISALLOW_COPY_AND_ASSIGN(ScopedTrace);

 private:
  TraceRing* ring_;
  std::string name_;
  std::string category_;
  int64_t start_us_;
  uint64_t thread_id_;
};

}  // namespace vstore

#endif  // VSTORE_COMMON_METRICS_H_
