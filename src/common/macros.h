#ifndef VSTORE_COMMON_MACROS_H_
#define VSTORE_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

// Invariant check that is active in all build modes. Database code paths
// guarded by VSTORE_CHECK are ones where continuing would corrupt data.
#define VSTORE_CHECK(cond)                                                  \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,         \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#ifndef NDEBUG
#define VSTORE_DCHECK(cond) VSTORE_CHECK(cond)
#else
#define VSTORE_DCHECK(cond) \
  do {                      \
  } while (0)
#endif

#define VSTORE_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;             \
  TypeName& operator=(const TypeName&) = delete

#endif  // VSTORE_COMMON_MACROS_H_
