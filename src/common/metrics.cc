#include "common/metrics.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <functional>
#include <limits>
#include <thread>

#include "common/json_util.h"

namespace vstore {

// --- Histogram -----------------------------------------------------------

void Histogram::Observe(int64_t value) {
  buckets_[static_cast<size_t>(BucketFor(value))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

int Histogram::BucketFor(int64_t value) {
  if (value <= 0) return 0;
  int width = std::bit_width(static_cast<uint64_t>(value));
  return std::min(width, kNumBuckets - 1);
}

int64_t Histogram::BucketUpperBound(int bucket) {
  if (bucket <= 0) return 0;
  if (bucket >= kNumBuckets - 1) return std::numeric_limits<int64_t>::max();
  return (int64_t{1} << bucket) - 1;
}

int64_t Histogram::ApproxQuantile(double q) const {
  // Snapshot the buckets before walking: each load is atomic, and working
  // from one local copy keeps the rank math internally consistent even if
  // writers race the walk.
  std::array<int64_t, kNumBuckets> counts;
  int64_t total = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    counts[static_cast<size_t>(b)] = BucketCount(b);
    total += counts[static_cast<size_t>(b)];
  }
  if (total <= 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation, 1-based: q=0 -> first, q=1 -> last.
  double target = q * static_cast<double>(total);
  if (target < 1.0) target = 1.0;
  int64_t cumulative = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    int64_t in_bucket = counts[static_cast<size_t>(b)];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) < target) {
      cumulative += in_bucket;
      continue;
    }
    if (b == 0) return 0;  // bucket 0 holds values <= 0
    int64_t lo = BucketUpperBound(b - 1) + 1;  // inclusive lower bound, 2^(b-1)
    if (b >= kNumBuckets - 1) return lo;       // overflow bucket: no upper bound
    int64_t hi = BucketUpperBound(b);
    // Fraction of the way through this bucket's observations at the target
    // rank, assuming values spread uniformly across [lo, hi].
    double frac = (target - static_cast<double>(cumulative)) /
                  static_cast<double>(in_bucket);
    return lo + static_cast<int64_t>(frac * static_cast<double>(hi - lo));
  }
  return BucketUpperBound(kNumBuckets - 2) + 1;  // unreachable in practice
}

void Histogram::ResetForTesting() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

// --- MetricsRegistry -----------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

template <typename T>
T* MetricsRegistry::GetMetric(std::map<std::string, Family<T>>* families,
                              const std::string& name,
                              const std::string& label_key,
                              const std::string& label_value,
                              const std::string& label_key2,
                              const std::string& label_value2) {
  std::lock_guard<std::mutex> lock(mu_);
  Family<T>& family = (*families)[name];
  if (family.by_label.empty()) {
    family.label_key = label_key;
    family.label_key2 = label_key2;
  }
  std::unique_ptr<T>& slot = family.by_label[{label_value, label_value2}];
  if (slot == nullptr) slot = std::make_unique<T>();
  return slot.get();
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& label_key,
                                     const std::string& label_value,
                                     const std::string& label_key2,
                                     const std::string& label_value2) {
  return GetMetric(&counters_, name, label_key, label_value, label_key2,
                   label_value2);
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& label_key,
                                 const std::string& label_value,
                                 const std::string& label_key2,
                                 const std::string& label_value2) {
  return GetMetric(&gauges_, name, label_key, label_value, label_key2,
                   label_value2);
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& label_key,
                                         const std::string& label_value,
                                         const std::string& label_key2,
                                         const std::string& label_value2) {
  return GetMetric(&histograms_, name, label_key, label_value, label_key2,
                   label_value2);
}

namespace {

using LabelValues = std::pair<std::string, std::string>;

// `key="value"` pairs without braces, e.g. `table="t",shard="3"`; empty for
// unlabeled metrics. Label values escape quotes/backslashes/newlines so
// exposition stays parseable. An empty second value means the member was
// registered through the one-level API of a family that also has two-level
// members; per Prometheus semantics (empty label == absent label) it
// renders without the second pair.
std::string LabelPairs(const std::string& label_key,
                       const std::string& label_key2,
                       const LabelValues& values) {
  if (label_key.empty()) return "";
  std::string out = label_key + "=\"" + PromLabelEscape(values.first) + "\"";
  if (!label_key2.empty() && !values.second.empty()) {
    out += "," + label_key2 + "=\"" + PromLabelEscape(values.second) + "\"";
  }
  return out;
}

// `{table="t",shard="3"}` (text) selector, empty for unlabeled metrics.
std::string TextSelector(const std::string& label_key,
                         const std::string& label_key2,
                         const LabelValues& values) {
  if (label_key.empty()) return "";
  return "{" + LabelPairs(label_key, label_key2, values) + "}";
}

void AppendInt(int64_t v, std::string* out) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  *out += buf;
}

}  // namespace

std::string MetricsRegistry::ToText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, family] : counters_) {
    out += "# TYPE " + name + " counter\n";
    for (const auto& [label, counter] : family.by_label) {
      out += name + TextSelector(family.label_key, family.label_key2, label) +
             " ";
      AppendInt(counter->Value(), &out);
      out += "\n";
    }
  }
  for (const auto& [name, family] : gauges_) {
    out += "# TYPE " + name + " gauge\n";
    for (const auto& [label, gauge] : family.by_label) {
      out += name + TextSelector(family.label_key, family.label_key2, label) +
             " ";
      AppendInt(gauge->Value(), &out);
      out += "\n";
    }
  }
  for (const auto& [name, family] : histograms_) {
    out += "# TYPE " + name + " histogram\n";
    for (const auto& [label, hist] : family.by_label) {
      std::string pairs = LabelPairs(family.label_key, family.label_key2, label);
      if (!pairs.empty()) pairs += ",";
      // Cumulative counts at each non-empty bucket boundary, plus +Inf.
      // (A concurrent writer can make the +Inf line differ from the
      // bucket sum by in-flight observations; see the header contract.)
      int64_t cumulative = 0;
      for (int b = 0; b < Histogram::kNumBuckets; ++b) {
        int64_t in_bucket = hist->BucketCount(b);
        if (in_bucket == 0) continue;
        cumulative += in_bucket;
        std::string selector = "{" + pairs + "le=\"";
        AppendInt(Histogram::BucketUpperBound(b), &selector);
        selector += "\"}";
        out += name + "_bucket" + selector + " ";
        AppendInt(cumulative, &out);
        out += "\n";
      }
      out += name + "_bucket{" + pairs + "le=\"+Inf\"} ";
      AppendInt(hist->Count(), &out);
      out += "\n";
      out += name + "_sum" +
             TextSelector(family.label_key, family.label_key2, label) + " ";
      AppendInt(hist->Sum(), &out);
      out += "\n";
      out += name + "_count" +
             TextSelector(family.label_key, family.label_key2, label) + " ";
      AppendInt(hist->Count(), &out);
      out += "\n";
    }
  }
  return out;
}

namespace {

void AppendJsonLabels(const std::string& label_key,
                      const std::string& label_key2, const LabelValues& label,
                      std::string* out) {
  *out += ",\"labels\":{";
  if (!label_key.empty()) {
    AppendJsonString(label_key, out);
    *out += ":";
    AppendJsonString(label.first, out);
    // Empty second value == one-level member of a mixed family (see
    // LabelPairs); omit the pair.
    if (!label_key2.empty() && !label.second.empty()) {
      *out += ",";
      AppendJsonString(label_key2, out);
      *out += ":";
      AppendJsonString(label.second, out);
    }
  }
  *out += "}";
}

}  // namespace

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":[";
  bool first = true;
  for (const auto& [name, family] : counters_) {
    for (const auto& [label, counter] : family.by_label) {
      if (!first) out += ",";
      first = false;
      out += "{\"name\":";
      AppendJsonString(name, &out);
      AppendJsonLabels(family.label_key, family.label_key2, label, &out);
      out += ",\"value\":";
      AppendInt(counter->Value(), &out);
      out += "}";
    }
  }
  out += "],\"gauges\":[";
  first = true;
  for (const auto& [name, family] : gauges_) {
    for (const auto& [label, gauge] : family.by_label) {
      if (!first) out += ",";
      first = false;
      out += "{\"name\":";
      AppendJsonString(name, &out);
      AppendJsonLabels(family.label_key, family.label_key2, label, &out);
      out += ",\"value\":";
      AppendInt(gauge->Value(), &out);
      out += "}";
    }
  }
  out += "],\"histograms\":[";
  first = true;
  for (const auto& [name, family] : histograms_) {
    for (const auto& [label, hist] : family.by_label) {
      if (!first) out += ",";
      first = false;
      out += "{\"name\":";
      AppendJsonString(name, &out);
      AppendJsonLabels(family.label_key, family.label_key2, label, &out);
      out += ",\"count\":";
      AppendInt(hist->Count(), &out);
      out += ",\"sum\":";
      AppendInt(hist->Sum(), &out);
      out += ",\"buckets\":[";
      bool first_bucket = true;
      for (int b = 0; b < Histogram::kNumBuckets; ++b) {
        int64_t in_bucket = hist->BucketCount(b);
        if (in_bucket == 0) continue;
        if (!first_bucket) out += ",";
        first_bucket = false;
        out += "{\"le\":";
        AppendInt(Histogram::BucketUpperBound(b), &out);
        out += ",\"count\":";
        AppendInt(in_bucket, &out);
        out += "}";
      }
      out += "]}";
    }
  }
  out += "]}";
  return out;
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::Samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Sample> out;
  for (const auto& [name, family] : counters_) {
    for (const auto& [label, counter] : family.by_label) {
      Sample s;
      s.name = name;
      s.label_key = family.label_key;
      s.label_value = label.first;
      s.label_key2 = family.label_key2;
      s.label_value2 = label.second;
      s.kind = "counter";
      s.value = counter->Value();
      out.push_back(std::move(s));
    }
  }
  for (const auto& [name, family] : gauges_) {
    for (const auto& [label, gauge] : family.by_label) {
      Sample s;
      s.name = name;
      s.label_key = family.label_key;
      s.label_value = label.first;
      s.label_key2 = family.label_key2;
      s.label_value2 = label.second;
      s.kind = "gauge";
      s.value = gauge->Value();
      out.push_back(std::move(s));
    }
  }
  for (const auto& [name, family] : histograms_) {
    for (const auto& [label, hist] : family.by_label) {
      Sample s;
      s.name = name;
      s.label_key = family.label_key;
      s.label_value = label.first;
      s.label_key2 = family.label_key2;
      s.label_value2 = label.second;
      s.kind = "histogram";
      s.value = hist->Count();
      s.sum = hist->Sum();
      s.has_sum = true;
      out.push_back(std::move(s));
    }
  }
  return out;
}

void MetricsRegistry::ResetForTesting() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, family] : counters_) {
    for (auto& [label, counter] : family.by_label) counter->ResetForTesting();
  }
  for (auto& [name, family] : gauges_) {
    for (auto& [label, gauge] : family.by_label) gauge->ResetForTesting();
  }
  for (auto& [name, family] : histograms_) {
    for (auto& [label, hist] : family.by_label) hist->ResetForTesting();
  }
}

std::string MetricsToText() { return MetricsRegistry::Global().ToText(); }
std::string MetricsToJson() { return MetricsRegistry::Global().ToJson(); }

// --- TraceRing -----------------------------------------------------------

TraceRing::TraceRing(int64_t capacity_per_stripe)
    : capacity_(std::max<int64_t>(capacity_per_stripe, 1)) {}

TraceRing& TraceRing::Global() {
  static TraceRing* ring = [] {
    TraceRing* r = new TraceRing();
    r->dropped_counter_ =
        MetricsRegistry::Global().GetCounter("vstore_trace_ring_dropped_total");
    return r;
  }();
  return *ring;
}

int64_t TraceRing::NowMicros() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

void TraceRing::Record(TraceEvent event) {
  uint64_t tid = std::hash<std::thread::id>{}(std::this_thread::get_id());
  if (event.thread_id == 0) event.thread_id = tid;
  Stripe& stripe = stripes_[tid % kStripes];
  std::lock_guard<std::mutex> lock(stripe.mu);
  if (static_cast<int64_t>(stripe.events.size()) < capacity_) {
    stripe.events.push_back(std::move(event));
  } else {
    stripe.events[stripe.next] = std::move(event);
    stripe.next = (stripe.next + 1) % stripe.events.size();
    ++stripe.dropped;
    if (dropped_counter_ != nullptr) dropped_counter_->Increment();
  }
}

int64_t TraceRing::dropped_total() const {
  int64_t total = 0;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    total += stripe.dropped;
  }
  return total;
}

std::vector<TraceEvent> TraceRing::Snapshot() const {
  std::vector<TraceEvent> out;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    out.insert(out.end(), stripe.events.begin(), stripe.events.end());
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_us < b.start_us;
            });
  return out;
}

std::string TraceRing::ToChromeJson() const {
  std::vector<TraceEvent> events = Snapshot();
  // Chrome expects small integer thread ids. Renumber the hashed ids
  // compactly by first appearance so every recording thread gets its own
  // track (folding the hash modulo a constant can collide distinct
  // threads onto one row).
  std::map<uint64_t, int64_t> tids;
  int64_t next_tid = 1;
  std::string out = "{\"traceEvents\":[";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    auto [it, inserted] = tids.try_emplace(e.thread_id, next_tid);
    if (inserted) ++next_tid;
    if (i > 0) out += ",";
    out += "{\"name\":";
    AppendJsonString(e.name, &out);
    out += ",\"cat\":";
    AppendJsonString(e.category, &out);
    out += ",\"ph\":\"X\",\"ts\":";
    AppendInt(e.start_us, &out);
    out += ",\"dur\":";
    AppendInt(e.duration_us, &out);
    out += ",\"pid\":1,\"tid\":";
    AppendInt(it->second, &out);
    out += "}";
  }
  out += "]}";
  return out;
}

void TraceRing::Clear() {
  for (Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    stripe.events.clear();
    stripe.next = 0;
    stripe.dropped = 0;
  }
}

ScopedTrace::ScopedTrace(std::string name, std::string category,
                         TraceRing* ring)
    : ring_(ring),
      name_(std::move(name)),
      category_(std::move(category)),
      start_us_(TraceRing::NowMicros()),
      thread_id_(std::hash<std::thread::id>{}(std::this_thread::get_id())) {}

ScopedTrace::~ScopedTrace() {
  TraceEvent event;
  event.name = std::move(name_);
  event.category = std::move(category_);
  event.start_us = start_us_;
  event.duration_us = TraceRing::NowMicros() - start_us_;
  event.thread_id = thread_id_;
  ring_->Record(std::move(event));
}

}  // namespace vstore
