#ifndef VSTORE_COMMON_STATUS_H_
#define VSTORE_COMMON_STATUS_H_

#include <cstdlib>
#include <iosfwd>
#include <string>
#include <utility>
#include <variant>

namespace vstore {

// Error categories used across the library. Mirrors the usual database
// taxonomy: user-visible errors (InvalidArgument, NotFound), resource errors
// (ResourceExhausted used by spilling operators when a memory budget is hit),
// and internal invariant violations.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kUnimplemented,
  kInternal,
  kAborted,
};

// Status carries success/failure without exceptions. All fallible public
// APIs in vertistore return Status or Result<T>.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  std::string ToString() const;

  // Aborts the process if this status is not OK. Used in tests, examples,
  // and benchmark drivers where an error is a programming bug.
  void CheckOK() const;

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Result<T> holds either a value or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status)                         // NOLINT(runtime/explicit)
      : data_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(data_);
  }

  T& value() & { return std::get<T>(data_); }
  const T& value() const& { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  T ValueOrDie() && {
    if (!ok()) {
      std::get<Status>(data_).CheckOK();
      std::abort();
    }
    return std::get<T>(std::move(data_));
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace vstore

// Propagates a non-OK Status from an expression to the caller.
#define VSTORE_RETURN_IF_ERROR(expr)                \
  do {                                              \
    ::vstore::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                      \
  } while (0)

#define VSTORE_CONCAT_IMPL(a, b) a##b
#define VSTORE_CONCAT(a, b) VSTORE_CONCAT_IMPL(a, b)

// Evaluates a Result<T> expression; on success binds the value to `lhs`,
// on failure returns the Status to the caller.
#define VSTORE_ASSIGN_OR_RETURN(lhs, expr)                      \
  auto VSTORE_CONCAT(_result_, __LINE__) = (expr);              \
  if (!VSTORE_CONCAT(_result_, __LINE__).ok())                  \
    return VSTORE_CONCAT(_result_, __LINE__).status();          \
  lhs = std::move(VSTORE_CONCAT(_result_, __LINE__)).value()

#endif  // VSTORE_COMMON_STATUS_H_
