#include "common/arena.h"

#include <algorithm>

#include "common/memory_tracker.h"

namespace vstore {

Arena::~Arena() {
  if (tracker_ != nullptr && bytes_reserved_ > 0) {
    tracker_->Release(static_cast<int64_t>(bytes_reserved_));
  }
}

void Arena::SetMemoryTracker(MemoryTracker* tracker) {
  if (tracker == tracker_) return;
  if (tracker_ != nullptr && bytes_reserved_ > 0) {
    tracker_->Release(static_cast<int64_t>(bytes_reserved_));
  }
  tracker_ = tracker;
  if (tracker_ != nullptr && bytes_reserved_ > 0) {
    tracker_->Charge(static_cast<int64_t>(bytes_reserved_));
  }
}

uint8_t* Arena::Allocate(size_t size, size_t alignment) {
  VSTORE_DCHECK((alignment & (alignment - 1)) == 0);
  if (size == 0) size = 1;
  if (!blocks_.empty()) {
    Block& block = blocks_.back();
    size_t aligned = (block.used + alignment - 1) & ~(alignment - 1);
    if (aligned + size <= block.size) {
      block.used = aligned + size;
      bytes_allocated_ += size;
      return block.data.get() + aligned;
    }
  }
  // Start a new block; oversized requests get a dedicated block.
  size_t block_size = std::max(next_block_size_, size + alignment);
  next_block_size_ = std::min<size_t>(next_block_size_ * 2, 8 * 1024 * 1024);
  Block block;
  block.data = std::make_unique<uint8_t[]>(block_size);
  block.size = block_size;
  uintptr_t base = reinterpret_cast<uintptr_t>(block.data.get());
  size_t offset = (alignment - (base & (alignment - 1))) & (alignment - 1);
  block.used = offset + size;
  bytes_allocated_ += size;
  bytes_reserved_ += block_size;
  if (tracker_ != nullptr) {
    tracker_->Charge(static_cast<int64_t>(block_size));
  }
  uint8_t* out = block.data.get() + offset;
  blocks_.push_back(std::move(block));
  return out;
}

void Arena::Reset() {
  size_t kept = blocks_.empty() ? 0 : blocks_.front().size;
  if (blocks_.size() > 1) {
    Block first = std::move(blocks_.front());
    blocks_.clear();
    blocks_.push_back(std::move(first));
  }
  if (!blocks_.empty()) blocks_.front().used = 0;
  if (tracker_ != nullptr && bytes_reserved_ > kept) {
    tracker_->Release(static_cast<int64_t>(bytes_reserved_ - kept));
  }
  bytes_reserved_ = kept;
  bytes_allocated_ = 0;
}

}  // namespace vstore
