#ifndef VSTORE_COMMON_BIT_UTIL_H_
#define VSTORE_COMMON_BIT_UTIL_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

namespace vstore {
namespace bit_util {

// Number of bits needed to represent `value` (0 needs 0 bits).
inline int BitsRequired(uint64_t value) {
  return value == 0 ? 0 : 64 - std::countl_zero(value);
}

inline int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

inline bool GetBit(const uint8_t* bits, int64_t i) {
  return (bits[i >> 3] >> (i & 7)) & 1;
}

inline void SetBit(uint8_t* bits, int64_t i) { bits[i >> 3] |= 1u << (i & 7); }

inline void ClearBit(uint8_t* bits, int64_t i) {
  bits[i >> 3] &= static_cast<uint8_t>(~(1u << (i & 7)));
}

inline void SetBitTo(uint8_t* bits, int64_t i, bool value) {
  if (value) {
    SetBit(bits, i);
  } else {
    ClearBit(bits, i);
  }
}

// Number of bytes needed to store a bitmap of `bits` bits.
inline int64_t BytesForBits(int64_t bits) { return CeilDiv(bits, 8); }

// Counts set bits in bitmap[0, num_bits).
int64_t CountSetBits(const uint8_t* bits, int64_t num_bits);

// A growable bitmap used for delete bitmaps and qualifying-row vectors.
class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(int64_t num_bits, bool initial_value = false) {
    Resize(num_bits, initial_value);
  }

  void Resize(int64_t num_bits, bool initial_value = false) {
    num_bits_ = num_bits;
    bytes_.assign(static_cast<size_t>(BytesForBits(num_bits)),
                  initial_value ? 0xFF : 0x00);
    TrimTail();
  }

  int64_t size() const { return num_bits_; }
  bool Get(int64_t i) const { return GetBit(bytes_.data(), i); }
  void Set(int64_t i) { SetBit(bytes_.data(), i); }
  void Clear(int64_t i) { ClearBit(bytes_.data(), i); }
  void SetTo(int64_t i, bool v) { SetBitTo(bytes_.data(), i, v); }

  int64_t CountSet() const { return CountSetBits(bytes_.data(), num_bits_); }

  const uint8_t* data() const { return bytes_.data(); }
  uint8_t* mutable_data() { return bytes_.data(); }

 private:
  // Keeps bits past num_bits_ zero so CountSet stays exact.
  void TrimTail() {
    int64_t tail = num_bits_ & 7;
    if (tail != 0 && !bytes_.empty()) {
      bytes_.back() &= static_cast<uint8_t>((1u << tail) - 1);
    }
  }

  int64_t num_bits_ = 0;
  std::vector<uint8_t> bytes_;
};

}  // namespace bit_util
}  // namespace vstore

#endif  // VSTORE_COMMON_BIT_UTIL_H_
