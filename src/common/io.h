#ifndef VSTORE_COMMON_IO_H_
#define VSTORE_COMMON_IO_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status.h"

namespace vstore {

// Thin file-system layer used by the durability code (WAL, checkpoint
// segment files). All disk writes and reads in the storage engine funnel
// through File/MappedFile so that (a) every path is covered by the fault
// injector below and (b) platform quirks live in one translation unit.

// --- Fault injection -----------------------------------------------------
// Testing seam modelling the disk failures crash recovery must survive:
// torn writes (a crash mid-write persists only a prefix), short reads, and
// bit flips. A fault is armed against a path substring and triggers on the
// matching operation; torn writes persist `fail_after_bytes` of the payload
// and then report an injected error (the caller treats it like a crash).
// Process-global, not thread-safe against concurrent arming — tests arm
// faults while the storage layer is quiescent.
struct IoFault {
  enum class Kind {
    kNone = 0,
    kTornWrite,   // persist only fail_after_bytes of the next write, then fail
    kShortRead,   // return fewer bytes than requested once
    kBitFlip,     // flip one bit of the next write's payload (silent)
    kFailSync,    // fail the next Sync() call
  };
  Kind kind = Kind::kNone;
  int64_t fail_after_bytes = 0;  // kTornWrite: bytes of the write to keep
  int64_t bit_index = 0;         // kBitFlip: which bit of the payload
  bool once = true;              // disarm after first trigger
};

class IoFaultInjector {
 public:
  static IoFaultInjector& Global();

  // Arms `fault` for operations on paths containing `path_substring`.
  void Arm(const std::string& path_substring, IoFault fault);
  void Clear();

  // Internal: consumes a matching fault, if armed. Returns kNone otherwise.
  IoFault Take(const std::string& path, IoFault::Kind kind);

 private:
  struct Armed {
    std::string substring;
    IoFault fault;
  };
  std::vector<Armed> armed_;
};

// --- File ----------------------------------------------------------------
// RAII fd wrapper with the small operation set durability needs. Append and
// Sync are not internally synchronized; callers serialize per file.
class File {
 public:
  File() = default;
  ~File();
  VSTORE_DISALLOW_COPY_AND_ASSIGN(File);

  // Creates (truncating any existing file) or opens for append.
  static Result<std::unique_ptr<File>> Create(const std::string& path);
  static Result<std::unique_ptr<File>> OpenAppend(const std::string& path);
  static Result<std::unique_ptr<File>> OpenRead(const std::string& path);

  // Appends `len` bytes at the end of the file. On an injected torn write a
  // prefix is persisted and an Internal status is returned.
  Status Append(const void* data, size_t len);
  // Reads up to `len` bytes at `offset`; *read receives the byte count
  // (short at EOF or under an injected short read).
  Status ReadAt(int64_t offset, void* out, size_t len, size_t* read) const;
  Status Sync();
  Result<int64_t> Size() const;
  Status Truncate(int64_t size);
  Status Close();

  const std::string& path() const { return path_; }

 private:
  int fd_ = -1;
  std::string path_;
};

// --- MappedFile ----------------------------------------------------------
// Read-only memory mapping of a whole file. The mapping (and thus every
// pointer handed out) stays valid until the MappedFile is destroyed;
// checkpoint readers hand a shared_ptr<MappedFile> to each segment as a
// keepalive so scans can decode directly from the mapping.
class MappedFile {
 public:
  ~MappedFile();
  VSTORE_DISALLOW_COPY_AND_ASSIGN(MappedFile);

  static Result<std::shared_ptr<MappedFile>> Open(const std::string& path);

  const uint8_t* data() const { return data_; }
  int64_t size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  MappedFile() = default;
  const uint8_t* data_ = nullptr;
  int64_t size_ = 0;
  std::string path_;
};

// --- Directory helpers ---------------------------------------------------
Status CreateDirs(const std::string& path);
// File names (not full paths) in `dir`; missing directory is an error.
Result<std::vector<std::string>> ListDir(const std::string& dir);
Status RemoveFile(const std::string& path);
// Atomic rename; used for publish-by-rename of checkpoint files.
Status RenameFile(const std::string& from, const std::string& to);
// fsyncs the directory so renames/creates within it are durable.
Status SyncDir(const std::string& dir);
bool FileExists(const std::string& path);

}  // namespace vstore

#endif  // VSTORE_COMMON_IO_H_
