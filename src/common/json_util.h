#ifndef VSTORE_COMMON_JSON_UTIL_H_
#define VSTORE_COMMON_JSON_UTIL_H_

#include <string>

namespace vstore {

// Returns the body of a JSON string literal for `s` (no surrounding
// quotes): quotes, backslashes and the named control characters become
// their two-character escapes, any other byte below 0x20 becomes \u00XX.
// Shared by every JSON renderer in the tree (ProfileToJson, MetricsToJson,
// trace dumps, bench exports) so none of them can disagree on escaping.
std::string JsonEscape(const std::string& s);

// Appends `s` to `*out` as a complete JSON string literal, quotes included.
void AppendJsonString(const std::string& s, std::string* out);

// Escapes a Prometheus text-format label value: backslash -> \\,
// double-quote -> \", line feed -> \n. Unlike JsonEscape, other control
// characters pass through unchanged — the Prometheus exposition format
// defines exactly these three escapes, and \u sequences would be rendered
// literally by its parsers. Shared by every label-value renderer
// (MetricsToText and anything else emitting `name{key="value"}` lines).
std::string PromLabelEscape(const std::string& s);

// Strict RFC 8259 validity check over a complete JSON document. Rejects
// trailing commas, unquoted keys, bare control characters inside strings,
// invalid escapes, leading zeros, and trailing garbage — everything a
// sloppy hand-rolled renderer tends to emit. On failure returns false and,
// when `error` is non-null, describes the first problem with its byte
// offset. Tests and CI use this to gate every renderer in the tree
// (EXPLAIN ANALYZE, metrics, Chrome traces, slow-query capture).
bool JsonValidate(const std::string& s, std::string* error = nullptr);

}  // namespace vstore

#endif  // VSTORE_COMMON_JSON_UTIL_H_
