#include "common/status.h"

#include <cstdio>
#include <ostream>

namespace vstore {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kAborted:
      return "Aborted";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

void Status::CheckOK() const {
  if (ok()) return;
  std::fprintf(stderr, "Status not OK: %s\n", ToString().c_str());
  std::abort();
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace vstore
