#include "common/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#include <cpuid.h>
#define VSTORE_X86_64 1
#endif

namespace vstore {
namespace simd {

namespace {

Level Probe() {
#ifdef VSTORE_X86_64
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  // AVX2 is leaf 7 subleaf 0, EBX bit 5. Also require OS support for YMM
  // state (OSXSAVE + XGETBV checking XMM|YMM), otherwise ymm registers are
  // not preserved across context switches.
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return Level::kScalar;
  const bool osxsave = (ecx & (1u << 27)) != 0;
  const bool avx = (ecx & (1u << 28)) != 0;
  if (!osxsave || !avx) return Level::kScalar;
  unsigned xcr0_lo, xcr0_hi;
  __asm__("xgetbv" : "=a"(xcr0_lo), "=d"(xcr0_hi) : "c"(0));
  if ((xcr0_lo & 0x6) != 0x6) return Level::kScalar;  // XMM+YMM saved
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) &&
      (ebx & (1u << 5)) != 0) {
    return Level::kAVX2;
  }
#endif
  return Level::kScalar;
}

Level InitialCeiling() {
  const char* env = std::getenv("VSTORE_SIMD");
  if (env != nullptr && std::strcmp(env, "scalar") == 0) {
    return Level::kScalar;
  }
  return Level::kAVX2;
}

std::atomic<Level>& Ceiling() {
  static std::atomic<Level> ceiling{InitialCeiling()};
  return ceiling;
}

}  // namespace

Level Detected() {
  static const Level detected = Probe();
  return detected;
}

Level Active() {
  Level cap = Ceiling().load(std::memory_order_relaxed);
  Level hw = Detected();
  return static_cast<int>(cap) < static_cast<int>(hw) ? cap : hw;
}

void ForceLevelForTesting(Level level) {
  Ceiling().store(level, std::memory_order_relaxed);
}

}  // namespace simd
}  // namespace vstore
