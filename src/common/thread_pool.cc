#include "common/thread_pool.h"

#include <algorithm>

namespace vstore {

ThreadPool::ThreadPool(int num_threads) {
  VSTORE_CHECK(num_threads > 0);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_ready_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    VSTORE_CHECK(!shutdown_);
    tasks_.push(std::move(task));
    ++pending_;
  }
  task_ready_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPool::ParallelFor(int64_t n, const std::function<void(int64_t)>& fn) {
  if (n <= 0) return;
  // Chunk indices so each worker grabs contiguous ranges; avoids one task
  // object per index for large n.
  std::atomic<int64_t> next{0};
  int64_t chunk = std::max<int64_t>(1, n / (num_threads() * 8));
  int tasks = num_threads();
  for (int t = 0; t < tasks; ++t) {
    Submit([&next, n, chunk, &fn] {
      for (;;) {
        int64_t begin = next.fetch_add(chunk);
        if (begin >= n) return;
        int64_t end = std::min(begin + chunk, n);
        for (int64_t i = begin; i < end; ++i) fn(i);
      }
    });
  }
  WaitIdle();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace vstore
