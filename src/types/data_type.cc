#include "types/data_type.h"

#include <cstdio>
#include <cstdlib>
#include <limits>

namespace vstore {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kBool:
      return "BOOL";
    case DataType::kInt32:
      return "INT32";
    case DataType::kInt64:
      return "INT64";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
    case DataType::kDate32:
      return "DATE32";
  }
  return "UNKNOWN";
}

bool IsNumeric(DataType type) {
  switch (type) {
    case DataType::kInt32:
    case DataType::kInt64:
    case DataType::kDouble:
    case DataType::kDate32:
    case DataType::kBool:
      return true;
    case DataType::kString:
      return false;
  }
  return false;
}

// Howard Hinnant's civil-days algorithm.
int32_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      (153 * static_cast<unsigned>(m + (m > 2 ? -3 : 9)) + 2) / 5 +
      static_cast<unsigned>(d) - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return static_cast<int32_t>(era * 146097 + static_cast<int>(doe) - 719468);
}

std::string Date32ToString(int32_t days) {
  int64_t z = days + 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : static_cast<unsigned>(-9));
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04lld-%02u-%02u",
                static_cast<long long>(y + (m <= 2)), m, d);
  return buf;
}

int32_t ParseDate32(const std::string& iso) {
  int y, m, d;
  if (std::sscanf(iso.c_str(), "%d-%d-%d", &y, &m, &d) != 3) {
    return std::numeric_limits<int32_t>::min();
  }
  if (m < 1 || m > 12 || d < 1 || d > 31) {
    return std::numeric_limits<int32_t>::min();
  }
  return DaysFromCivil(y, m, d);
}

}  // namespace vstore
