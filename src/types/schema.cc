#include "types/schema.h"

namespace vstore {

int Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Schema Schema::Project(const std::vector<int>& indices) const {
  std::vector<Field> out;
  out.reserve(indices.size());
  for (int i : indices) out.push_back(fields_[static_cast<size_t>(i)]);
  return Schema(std::move(out));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ": ";
    out += DataTypeName(fields_[i].type);
    if (!fields_[i].nullable) out += " NOT NULL";
  }
  out += ")";
  return out;
}

bool Schema::Equals(const Schema& other) const {
  if (fields_.size() != other.fields_.size()) return false;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name != other.fields_[i].name ||
        fields_[i].type != other.fields_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace vstore
