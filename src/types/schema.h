#ifndef VSTORE_TYPES_SCHEMA_H_
#define VSTORE_TYPES_SCHEMA_H_

#include <string>
#include <vector>

#include "types/data_type.h"

namespace vstore {

struct Field {
  std::string name;
  DataType type;
  bool nullable = true;
};

// Ordered list of named, typed columns. Immutable once constructed.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  int num_columns() const { return static_cast<int>(fields_.size()); }
  const Field& field(int i) const { return fields_[static_cast<size_t>(i)]; }
  const std::vector<Field>& fields() const { return fields_; }

  // Returns the index of the named column, or -1.
  int IndexOf(const std::string& name) const;

  // Schema containing only the given column indices, in order.
  Schema Project(const std::vector<int>& indices) const;

  std::string ToString() const;

  bool Equals(const Schema& other) const;

 private:
  std::vector<Field> fields_;
};

}  // namespace vstore

#endif  // VSTORE_TYPES_SCHEMA_H_
