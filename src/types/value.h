#ifndef VSTORE_TYPES_VALUE_H_
#define VSTORE_TYPES_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/macros.h"
#include "types/data_type.h"

namespace vstore {

// A single nullable scalar. Values appear at API boundaries (literals in
// expressions, row ingestion, query results); inner loops operate on raw
// vectors instead.
class Value {
 public:
  Value() : type_(DataType::kInt64), is_null_(true) {}

  static Value Null(DataType type) {
    Value v;
    v.type_ = type;
    v.is_null_ = true;
    return v;
  }
  static Value Bool(bool b) { return Value(DataType::kBool, b ? 1 : 0); }
  static Value Int32(int32_t i) { return Value(DataType::kInt32, i); }
  static Value Int64(int64_t i) { return Value(DataType::kInt64, i); }
  static Value Date32(int32_t days) { return Value(DataType::kDate32, days); }
  static Value Double(double d) {
    Value v;
    v.type_ = DataType::kDouble;
    v.is_null_ = false;
    v.double_ = d;
    return v;
  }
  static Value String(std::string s) {
    Value v;
    v.type_ = DataType::kString;
    v.is_null_ = false;
    v.string_ = std::move(s);
    return v;
  }
  // Parses "YYYY-MM-DD"; aborts on malformed input (test/ingest helper).
  static Value Date(const std::string& iso);

  DataType type() const { return type_; }
  bool is_null() const { return is_null_; }

  int64_t int64() const {
    VSTORE_DCHECK(!is_null_ && PhysicalTypeOf(type_) == PhysicalType::kInt64);
    return int64_;
  }
  double dbl() const {
    VSTORE_DCHECK(!is_null_ && type_ == DataType::kDouble);
    return double_;
  }
  const std::string& str() const {
    VSTORE_DCHECK(!is_null_ && type_ == DataType::kString);
    return string_;
  }

  // Numeric view usable for any physical-int64 or double value.
  double AsDouble() const {
    VSTORE_DCHECK(!is_null_);
    return type_ == DataType::kDouble ? double_
                                      : static_cast<double>(int64_);
  }

  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  std::string ToString() const;

 private:
  Value(DataType type, int64_t v) : type_(type), is_null_(false), int64_(v) {}

  DataType type_;
  bool is_null_;
  int64_t int64_ = 0;
  double double_ = 0;
  std::string string_;
};

}  // namespace vstore

#endif  // VSTORE_TYPES_VALUE_H_
