#ifndef VSTORE_TYPES_DATA_TYPE_H_
#define VSTORE_TYPES_DATA_TYPE_H_

#include <cstdint>
#include <string>

namespace vstore {

// Logical column types supported by the engine.
//
// Physical representation during execution is deliberately narrow, matching
// the paper's batch layout: BOOL/INT32/INT64/DATE32 all travel as int64
// vectors, DOUBLE/DECIMAL as double vectors, STRING as string views backed
// by segment or arena memory. Storage chooses a compact encoding per
// segment regardless of logical width.
enum class DataType : uint8_t {
  kBool = 0,
  kInt32,
  kInt64,
  kDouble,
  kString,
  kDate32,  // days since 1970-01-01
};

// Physical families used by vectors and segments.
enum class PhysicalType : uint8_t {
  kInt64 = 0,
  kDouble,
  kString,
};

// Hot in every inner loop; inline.
inline PhysicalType PhysicalTypeOf(DataType type) {
  switch (type) {
    case DataType::kDouble:
      return PhysicalType::kDouble;
    case DataType::kString:
      return PhysicalType::kString;
    default:
      return PhysicalType::kInt64;
  }
}

const char* DataTypeName(DataType type);
bool IsNumeric(DataType type);

// Parses/prints DATE32 values as ISO "YYYY-MM-DD". Proleptic Gregorian.
int32_t DaysFromCivil(int year, int month, int day);
std::string Date32ToString(int32_t days);
// Returns INT32_MIN on parse failure.
int32_t ParseDate32(const std::string& iso);

}  // namespace vstore

#endif  // VSTORE_TYPES_DATA_TYPE_H_
