#ifndef VSTORE_TYPES_COMPARE_OP_H_
#define VSTORE_TYPES_COMPARE_OP_H_

namespace vstore {

enum class CompareOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
};

// Applies `op` to an ordering result (-1, 0, +1).
inline bool ApplyCompare(CompareOp op, int cmp) {
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

inline const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

}  // namespace vstore

#endif  // VSTORE_TYPES_COMPARE_OP_H_
