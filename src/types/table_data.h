#ifndef VSTORE_TYPES_TABLE_DATA_H_
#define VSTORE_TYPES_TABLE_DATA_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/bit_util.h"
#include "common/macros.h"
#include "types/schema.h"
#include "types/value.h"

namespace vstore {

// Uncompressed, column-oriented staging area for rows entering or leaving
// the engine: bulk loads, query results, and the TPC-H generator all speak
// TableData. Physical representation follows PhysicalTypeOf(): integers,
// dates, and bools are widened to int64.
class ColumnData {
 public:
  ColumnData() : type_(DataType::kInt64) {}
  explicit ColumnData(DataType type) : type_(type) {}

  DataType type() const { return type_; }
  int64_t size() const { return size_; }
  bool has_nulls() const { return null_count_ > 0; }
  int64_t null_count() const { return null_count_; }

  void AppendInt64(int64_t v) {
    VSTORE_DCHECK(PhysicalTypeOf(type_) == PhysicalType::kInt64);
    ints_.push_back(v);
    validity_.push_back(1);
    ++size_;
  }
  void AppendDouble(double v) {
    VSTORE_DCHECK(PhysicalTypeOf(type_) == PhysicalType::kDouble);
    doubles_.push_back(v);
    validity_.push_back(1);
    ++size_;
  }
  void AppendString(std::string v) {
    VSTORE_DCHECK(PhysicalTypeOf(type_) == PhysicalType::kString);
    strings_.push_back(std::move(v));
    validity_.push_back(1);
    ++size_;
  }
  void AppendNull() {
    switch (PhysicalTypeOf(type_)) {
      case PhysicalType::kInt64:
        ints_.push_back(0);
        break;
      case PhysicalType::kDouble:
        doubles_.push_back(0);
        break;
      case PhysicalType::kString:
        strings_.emplace_back();
        break;
    }
    validity_.push_back(0);
    ++null_count_;
    ++size_;
  }
  void AppendValue(const Value& v) {
    VSTORE_DCHECK(v.is_null() || v.type() == type_ ||
                  PhysicalTypeOf(v.type()) == PhysicalTypeOf(type_));
    if (v.is_null()) {
      AppendNull();
      return;
    }
    switch (PhysicalTypeOf(type_)) {
      case PhysicalType::kInt64:
        AppendInt64(v.int64());
        break;
      case PhysicalType::kDouble:
        AppendDouble(v.dbl());
        break;
      case PhysicalType::kString:
        AppendString(v.str());
        break;
    }
  }

  bool IsNull(int64_t i) const { return validity_[static_cast<size_t>(i)] == 0; }
  int64_t GetInt64(int64_t i) const { return ints_[static_cast<size_t>(i)]; }
  double GetDouble(int64_t i) const { return doubles_[static_cast<size_t>(i)]; }
  const std::string& GetString(int64_t i) const {
    return strings_[static_cast<size_t>(i)];
  }

  Value GetValue(int64_t i) const {
    if (IsNull(i)) return Value::Null(type_);
    switch (type_) {
      case DataType::kBool:
        return Value::Bool(GetInt64(i) != 0);
      case DataType::kInt32:
        return Value::Int32(static_cast<int32_t>(GetInt64(i)));
      case DataType::kInt64:
        return Value::Int64(GetInt64(i));
      case DataType::kDate32:
        return Value::Date32(static_cast<int32_t>(GetInt64(i)));
      case DataType::kDouble:
        return Value::Double(GetDouble(i));
      case DataType::kString:
        return Value::String(GetString(i));
    }
    return Value::Null(type_);
  }

  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<std::string>& strings() const { return strings_; }

 private:
  DataType type_;
  int64_t size_ = 0;
  int64_t null_count_ = 0;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
  std::vector<uint8_t> validity_;  // byte-per-row for cheap append
};

class TableData {
 public:
  TableData() = default;
  explicit TableData(Schema schema) : schema_(std::move(schema)) {
    columns_.reserve(static_cast<size_t>(schema_.num_columns()));
    for (const Field& f : schema_.fields()) columns_.emplace_back(f.type);
  }

  const Schema& schema() const { return schema_; }
  int64_t num_rows() const {
    return columns_.empty() ? 0 : columns_[0].size();
  }
  int num_columns() const { return static_cast<int>(columns_.size()); }

  ColumnData& column(int i) { return columns_[static_cast<size_t>(i)]; }
  const ColumnData& column(int i) const {
    return columns_[static_cast<size_t>(i)];
  }

  void AppendRow(const std::vector<Value>& row) {
    VSTORE_DCHECK(static_cast<int>(row.size()) == num_columns());
    for (size_t i = 0; i < row.size(); ++i) columns_[i].AppendValue(row[i]);
  }

  std::vector<Value> GetRow(int64_t i) const {
    std::vector<Value> row;
    row.reserve(columns_.size());
    for (const auto& c : columns_) row.push_back(c.GetValue(i));
    return row;
  }

 private:
  Schema schema_;
  std::vector<ColumnData> columns_;
};

}  // namespace vstore

#endif  // VSTORE_TYPES_TABLE_DATA_H_
