#include "types/value.h"

#include <limits>

namespace vstore {

Value Value::Date(const std::string& iso) {
  int32_t days = ParseDate32(iso);
  VSTORE_CHECK(days != std::numeric_limits<int32_t>::min());
  return Value::Date32(days);
}

bool Value::operator==(const Value& other) const {
  if (type_ != other.type_) return false;
  if (is_null_ || other.is_null_) return is_null_ == other.is_null_;
  switch (PhysicalTypeOf(type_)) {
    case PhysicalType::kInt64:
      return int64_ == other.int64_;
    case PhysicalType::kDouble:
      return double_ == other.double_;
    case PhysicalType::kString:
      return string_ == other.string_;
  }
  return false;
}

std::string Value::ToString() const {
  if (is_null_) return "NULL";
  switch (type_) {
    case DataType::kBool:
      return int64_ ? "true" : "false";
    case DataType::kInt32:
    case DataType::kInt64:
      return std::to_string(int64_);
    case DataType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", double_);
      return buf;
    }
    case DataType::kString:
      return string_;
    case DataType::kDate32:
      return Date32ToString(static_cast<int32_t>(int64_));
  }
  return "?";
}

}  // namespace vstore
