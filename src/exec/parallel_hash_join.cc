#include "exec/parallel_hash_join.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/macros.h"
#include "common/metrics.h"
#include "common/span_trace.h"
#include "exec/spill.h"

namespace vstore {

namespace {

inline std::chrono::steady_clock::time_point Now() {
  return std::chrono::steady_clock::now();
}

inline int64_t ElapsedNs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Now() - start)
      .count();
}

}  // namespace

SharedHashJoinBuild::SharedHashJoinBuild(Schema build_schema,
                                         Schema probe_schema, Options options,
                                         BuildFactory factory, int build_dop,
                                         int expected_probe_fragments,
                                         int64_t memory_budget)
    : build_schema_(std::move(build_schema)),
      probe_schema_(std::move(probe_schema)),
      options_(std::move(options)),
      factory_(std::move(factory)),
      build_dop_(build_dop),
      memory_budget_(memory_budget),
      build_format_(build_schema_),
      partition_shift_(
          64 - std::countr_zero(static_cast<unsigned>(options_.num_partitions))),
      active_probe_fragments_(expected_probe_fragments) {
  VSTORE_CHECK(build_dop_ >= 1 && expected_probe_fragments >= 1);
  VSTORE_CHECK(!options_.probe_keys.empty() &&
               options_.probe_keys.size() == options_.build_keys.size());
  VSTORE_CHECK(
      std::has_single_bit(static_cast<unsigned>(options_.num_partitions)));
  if (options_.bloom_target != nullptr) {
    VSTORE_CHECK(options_.join_type == JoinType::kInner ||
                 options_.join_type == JoinType::kLeftSemi);
  }
}

SharedHashJoinBuild::~SharedHashJoinBuild() {
  if (pressure_listener_ != 0) {
    query_tracker_->RemovePressureListener(pressure_listener_);
  }
  for (auto& part : partitions_) {
    if (part->build_file != nullptr) std::fclose(part->build_file);
    if (part->probe_file != nullptr) std::fclose(part->probe_file);
  }
}

bool SharedHashJoinBuild::QueryMemoryPressure() const {
  if (pressure_.exchange(false, std::memory_order_relaxed)) return true;
  return query_tracker_ != nullptr && query_tracker_->over_budget();
}

Status SharedHashJoinBuild::SpillRowLocked(std::FILE* f, const Schema& schema,
                                           const std::vector<Value>& row) {
  int64_t bytes = 0;
  VSTORE_RETURN_IF_ERROR(WriteSpillRow(f, schema, row, &bytes));
  spill_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  AddGlobalSpillBytes(bytes);
  return Status::OK();
}

Status SharedHashJoinBuild::EnsureBuilt(ExecContext* caller_ctx) {
  // The mutex doubles as the happens-before edge: every fragment passes
  // through it once, after which the built state is read without locks.
  std::lock_guard<std::mutex> lock(build_mu_);
  if (built_) return build_status_;
  build_status_ = RunBuild(caller_ctx);
  built_ = true;
  return build_status_;
}

Status SharedHashJoinBuild::RunBuild(ExecContext* caller_ctx) {
  auto build_start = Now();
  if (caller_ctx->memory_tracker != nullptr && mem_ == nullptr) {
    query_tracker_ = caller_ctx->memory_tracker;
    mem_ = std::make_unique<MemoryTracker>("SharedHashJoinBuild", "operator",
                                           query_tracker_);
    pressure_listener_ = query_tracker_->AddPressureListener(
        [this] { pressure_.store(true, std::memory_order_relaxed); });
  }
  partitions_.clear();
  partitions_.reserve(static_cast<size_t>(options_.num_partitions));
  for (int p = 0; p < options_.num_partitions; ++p) {
    auto part = std::make_unique<Partition>();
    part->arena = std::make_unique<Arena>();
    part->arena->SetMemoryTracker(mem_.get());
    partitions_.push_back(std::move(part));
  }
  fragment_build_rows_.assign(static_cast<size_t>(build_dop_), 0);

  // Phase 1: every build fragment drains its operator tree into the shared
  // partitions. Fragment contexts keep stats thread-local; they are merged
  // into the calling fragment's context after the join barrier (the
  // exchange then rolls them up like any other fragment stats).
  std::vector<std::unique_ptr<ExecContext>> fctxs;
  for (int f = 0; f < build_dop_; ++f) {
    auto fctx = std::make_unique<ExecContext>();
    fctx->batch_size = caller_ctx->batch_size;
    fctx->operator_memory_budget = caller_ctx->operator_memory_budget;
    fctx->memory_tracker = caller_ctx->memory_tracker;
    fctxs.push_back(std::move(fctx));
  }
  std::vector<Status> statuses(static_cast<size_t>(build_dop_));
  // Build threads are raw std::threads: re-install the first-arriving
  // fragment's trace context on each so build-side operator spans (and any
  // waits the build scans hit) still attribute to the query, parented to a
  // per-fragment "build_fragment:<f>" span. The barrier below means every
  // span is closed before EnsureBuilt returns.
  QueryTraceContext parent_tc = CurrentQueryTraceContext();
  auto run_build_fragment = [this, &fctxs, &statuses, &parent_tc](int f) {
    TraceSpan* span =
        parent_tc.recorder != nullptr
            ? parent_tc.recorder->StartSpan("build_fragment:" +
                                                std::to_string(f),
                                            "fragment", parent_tc.current)
            : nullptr;
    QueryTraceScope trace_scope(parent_tc.recorder,
                                span != nullptr ? span : parent_tc.current,
                                parent_tc.active_query);
    statuses[static_cast<size_t>(f)] =
        BuildFragment(f, fctxs[static_cast<size_t>(f)].get());
    if (span != nullptr) parent_tc.recorder->EndSpan(span);
  };
  if (build_dop_ == 1) {
    run_build_fragment(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(build_dop_));
    for (int f = 0; f < build_dop_; ++f) {
      threads.emplace_back([&run_build_fragment, f] { run_build_fragment(f); });
    }
    for (std::thread& t : threads) t.join();  // build barrier
  }
  for (auto& fctx : fctxs) caller_ctx->stats.MergeFrom(fctx->stats);
  for (const Status& s : statuses) {
    VSTORE_RETURN_IF_ERROR(s);
  }
  build_ns_ = ElapsedNs(build_start);

  // Phase 2: chained tables + Bloom filter, partitions striped across the
  // same dop. The shared filter is Init()ed once from the total row count;
  // each stripe fills a private identically-sized filter and OR-merges it.
  auto finalize_start = Now();
  int64_t total_rows = 0;
  for (int64_t rows : fragment_build_rows_) total_rows += rows;
  if (options_.bloom_target != nullptr) {
    options_.bloom_target->Init(std::max<int64_t>(total_rows, 1));
  }
  if (build_dop_ == 1) {
    VSTORE_RETURN_IF_ERROR(FinalizeStripe(0, total_rows));
  } else {
    std::vector<Status> fin(static_cast<size_t>(build_dop_));
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(build_dop_));
    for (int f = 0; f < build_dop_; ++f) {
      threads.emplace_back([this, f, total_rows, &fin] {
        fin[static_cast<size_t>(f)] = FinalizeStripe(f, total_rows);
      });
    }
    for (std::thread& t : threads) t.join();
    for (const Status& s : fin) {
      VSTORE_RETURN_IF_ERROR(s);
    }
  }
  table_build_ns_ = ElapsedNs(finalize_start);
  return Status::OK();
}

Status SharedHashJoinBuild::BuildFragment(int fragment, ExecContext* fctx) {
  std::shared_ptr<void> resources;
  BatchOperatorPtr op;
  {
    Result<BatchOperatorPtr> op_result = factory_(fragment, fctx, &resources);
    if (!op_result.ok()) return op_result.status();
    op = std::move(op_result).value();
  }
  const size_t entry_size =
      SerializedRowHashTable::kHeaderSize + build_format_.row_size();
  int64_t frag_rows = 0;
  int64_t lock_wait_ns = 0;

  Status status = op->Open();
  while (status.ok()) {
    Result<Batch*> batch_result = op->Next();
    if (!batch_result.ok()) {
      status = batch_result.status();
      break;
    }
    Batch* batch = batch_result.value();
    if (batch == nullptr) break;
    const int64_t n = batch->num_rows();
    const uint8_t* active = batch->active();
    for (int64_t i = 0; i < n && status.ok(); ++i) {
      if (!active[i]) continue;
      // Rows with a null key can never join: drop them at build time.
      bool null_key = false;
      for (int k : options_.build_keys) {
        if (!batch->column(k).validity()[i]) {
          null_key = true;
          break;
        }
      }
      if (null_key) continue;

      ++frag_rows;
      uint64_t hash =
          build_format_.HashKeysFromBatch(*batch, i, options_.build_keys);
      Partition& part = *partitions_[static_cast<size_t>(PartitionOf(hash))];
      bool over_budget = false;
      bool query_pressure = false;
      {
        // try_lock first so only contended acquisitions pay for (and show
        // up in) the lock-wait timer.
        std::unique_lock<std::mutex> lock(part.mu, std::try_to_lock);
        if (!lock.owns_lock()) {
          auto wait_start = Now();
          lock.lock();
          lock_wait_ns += ElapsedNs(wait_start);
        }
        if (part.spilled) {
          status = SpillRowLocked(part.build_file, build_schema_,
                                  batch->GetActiveRow(i));
          if (status.ok()) {
            ++part.build_rows_on_disk;
            ++fctx->stats.build_rows_spilled;
          }
        } else {
          uint8_t* entry = part.arena->Allocate(entry_size);
          build_format_.Write(entry + SerializedRowHashTable::kHeaderSize,
                              *batch, i, part.arena.get());
          std::memcpy(entry + 8, &hash, sizeof(hash));
          part.rows.push_back(entry);
          int64_t arena_bytes =
              static_cast<int64_t>(part.arena->bytes_allocated());
          int64_t grew =
              arena_bytes - part.bytes.load(std::memory_order_relaxed);
          part.bytes.store(arena_bytes, std::memory_order_relaxed);
          int64_t total =
              total_bytes_.fetch_add(grew, std::memory_order_relaxed) + grew;
          int64_t peak = peak_bytes_.load(std::memory_order_relaxed);
          while (total > peak && !peak_bytes_.compare_exchange_weak(
                                     peak, total, std::memory_order_relaxed)) {
          }
          over_budget = memory_budget_ > 0 && total > memory_budget_;
          if (!over_budget) {
            query_pressure = QueryMemoryPressure();
            over_budget = query_pressure;
          }
        }
      }
      // Spill outside the partition lock: MaybeSpill acquires spill_mu_
      // first and then a victim partition's lock, so holding a partition
      // lock here would invert the order.
      if (status.ok() && over_budget) {
        status = MaybeSpill(fctx, query_pressure);
      }
    }
  }
  op->Close();

  OperatorProfile profile = op->BuildProfile();
  {
    std::lock_guard<std::mutex> lock(merge_mu_);
    if (profile_fragments_ == 0) {
      build_profile_ = std::move(profile);
    } else {
      build_profile_.MergeFrom(profile);
    }
    ++profile_fragments_;
    fragment_build_rows_[static_cast<size_t>(fragment)] = frag_rows;
    build_rows_ += frag_rows;
    lock_wait_ns_ += lock_wait_ns;
  }
  return status;
}

Status SharedHashJoinBuild::MaybeSpill(ExecContext* fctx,
                                       bool query_pressure) {
  std::lock_guard<std::mutex> spill_lock(spill_mu_);
  // Another thread may have flushed a partition while we waited. A query
  // budget crossing always sheds one victim — the build cannot observe
  // whether an unrelated release has since taken the query back under.
  if (!query_pressure &&
      total_bytes_.load(std::memory_order_relaxed) <= memory_budget_) {
    return Status::OK();
  }
  // `spilled` only flips under spill_mu_ (plus the partition lock), so this
  // scan needs no partition locks; `bytes` is an atomic mirror.
  int victim = -1;
  int64_t victim_bytes = -1;
  for (int q = 0; q < options_.num_partitions; ++q) {
    const Partition& cand = *partitions_[static_cast<size_t>(q)];
    int64_t bytes = cand.bytes.load(std::memory_order_relaxed);
    if (!cand.spilled && bytes > victim_bytes) {
      victim = q;
      victim_bytes = bytes;
    }
  }
  if (victim < 0) return Status::OK();  // everything is already on disk
  Partition& part = *partitions_[static_cast<size_t>(victim)];
  std::lock_guard<std::mutex> part_lock(part.mu);
  return SpillPartitionLocked(&part, fctx);
}

Status SharedHashJoinBuild::SpillPartitionLocked(Partition* part,
                                                 ExecContext* fctx) {
  ScopedTrace trace("parallel_join_spill_partition", "spill");
  VSTORE_DCHECK(!part->spilled);
  part->build_file = std::tmpfile();
  part->probe_file = std::tmpfile();
  if (part->build_file == nullptr || part->probe_file == nullptr) {
    return Status::Internal("cannot create spill files");
  }
  std::vector<Value> row(static_cast<size_t>(build_schema_.num_columns()));
  for (uint8_t* entry : part->rows) {
    const uint8_t* payload = SerializedRowHashTable::EntryPayload(entry);
    for (int c = 0; c < build_schema_.num_columns(); ++c) {
      row[static_cast<size_t>(c)] = build_format_.GetValue(payload, c);
    }
    VSTORE_RETURN_IF_ERROR(
        SpillRowLocked(part->build_file, build_schema_, row));
    ++part->build_rows_on_disk;
    ++fctx->stats.build_rows_spilled;
  }
  total_bytes_.fetch_sub(part->bytes.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  part->rows.clear();
  part->rows.shrink_to_fit();
  part->arena = std::make_unique<Arena>();
  part->arena->SetMemoryTracker(mem_.get());
  part->bytes.store(0, std::memory_order_relaxed);
  part->spilled = true;
  ++fctx->stats.spill_partitions;
  {
    std::lock_guard<std::mutex> lock(merge_mu_);
    ++spill_partitions_;
  }
  return Status::OK();
}

Status SharedHashJoinBuild::FinalizeStripe(int stripe, int64_t total_rows) {
  BloomFilter local_bloom;
  const bool blooming = options_.bloom_target != nullptr;
  if (blooming) local_bloom.Init(std::max<int64_t>(total_rows, 1));

  for (int p = stripe; p < options_.num_partitions; p += build_dop_) {
    Partition& part = *partitions_[static_cast<size_t>(p)];
    if (!part.spilled) {
      part.table = std::make_unique<SerializedRowHashTable>(
          static_cast<int64_t>(part.rows.size()));
      part.table->SetMemoryTracker(mem_.get());
      for (uint8_t* entry : part.rows) {
        uint64_t hash = SerializedRowHashTable::EntryHash(entry);
        part.table->Insert(entry, hash);
        if (blooming) local_bloom.Insert(hash);
      }
    } else if (blooming) {
      // Spilled build rows still participate in the filter (the filter
      // reflects the whole build side, resident or not).
      std::rewind(part.build_file);
      std::vector<Value> row;
      std::vector<uint8_t> buf(build_format_.row_size());
      Arena scratch;
      for (;;) {
        VSTORE_ASSIGN_OR_RETURN(
            bool more, ReadSpillRow(part.build_file, build_schema_, &row));
        if (!more) break;
        build_format_.WriteValues(buf.data(), row, &scratch);
        local_bloom.Insert(
            build_format_.HashKeys(buf.data(), options_.build_keys));
        scratch.Reset();
      }
    }
  }

  if (blooming) {
    auto merge_start = Now();
    std::lock_guard<std::mutex> lock(merge_mu_);
    options_.bloom_target->MergeFrom(local_bloom);
    bloom_merge_ns_ += ElapsedNs(merge_start);
  }
  return Status::OK();
}

Status SharedHashJoinBuild::SpillProbeRow(int p, const std::vector<Value>& row,
                                          ExecContext* fctx) {
  Partition& part = *partitions_[static_cast<size_t>(p)];
  std::lock_guard<std::mutex> lock(part.mu);
  VSTORE_RETURN_IF_ERROR(SpillRowLocked(part.probe_file, probe_schema_, row));
  ++part.probe_rows_on_disk;
  ++fctx->stats.probe_rows_spilled;
  return Status::OK();
}

bool SharedHashJoinBuild::FinishProbeFragment() {
  std::lock_guard<std::mutex> lock(merge_mu_);
  VSTORE_DCHECK(active_probe_fragments_ > 0);
  return --active_probe_fragments_ == 0;
}

void SharedHashJoinBuild::AppendBuildProfile(OperatorProfile* node) const {
  node->counters.push_back({"build_rows", build_rows_});
  node->counters.push_back({"build_fragments", build_dop_});
  for (size_t f = 0; f < fragment_build_rows_.size(); ++f) {
    node->counters.push_back(
        {"build_rows_f" + std::to_string(f), fragment_build_rows_[f]});
  }
  node->counters.push_back({"build_ns", build_ns_});
  node->counters.push_back({"table_build_ns", table_build_ns_});
  node->counters.push_back({"build_lock_wait_ns", lock_wait_ns_});
  if (options_.bloom_target != nullptr) {
    node->counters.push_back({"bloom_published", 1});
    node->counters.push_back({"bloom_merge_ns", bloom_merge_ns_});
  }
  if (spill_partitions_ > 0) {
    node->counters.push_back({"spill_partitions", spill_partitions_});
  }
  if (profile_fragments_ > 0) {
    OperatorProfile child = build_profile_;
    child.fragments = profile_fragments_;
    node->children.push_back(std::move(child));
  }
}

HashJoinProbeOperator::HashJoinProbeOperator(
    BatchOperatorPtr probe, std::shared_ptr<SharedHashJoinBuild> shared,
    int fragment, ExecContext* ctx)
    : probe_(std::move(probe)),
      shared_(std::move(shared)),
      fragment_(fragment),
      ctx_(ctx),
      output_schema_(HashJoinOutputSchema(probe_->output_schema(),
                                          shared_->build_schema(),
                                          shared_->options().join_type)),
      probe_format_(probe_->output_schema()),
      emitter_(&probe_format_, &shared_->build_format(),
               JoinEmitsBuildColumns(shared_->options().join_type)) {}

HashJoinProbeOperator::~HashJoinProbeOperator() { Close(); }

std::string HashJoinProbeOperator::name() const {
  return std::string("HashJoinProbe(") +
         JoinTypeName(shared_->options().join_type) + ")";
}

void HashJoinProbeOperator::AppendProfileCounters(
    OperatorProfile* node) const {
  node->counters.push_back({"probe_rows", probe_rows_});
  if (probe_rows_spilled_ > 0) {
    node->counters.push_back({"probe_rows_spilled", probe_rows_spilled_});
  }
}

void HashJoinProbeOperator::AppendProfileChildren(
    OperatorProfile* node) const {
  BatchOperator::AppendProfileChildren(node);
  // Exactly one fragment reports the shared build: the exchange merge sums
  // counters by name across fragments, so dop copies would multiply them.
  if (fragment_ == 0) shared_->AppendBuildProfile(node);
}

Status HashJoinProbeOperator::OpenImpl() {
  probe_rows_ = 0;
  probe_rows_spilled_ = 0;
  out_rows_ = 0;
  phase_ = Phase::kInit;
  finish_reported_ = false;
  VSTORE_RETURN_IF_ERROR(shared_->EnsureBuilt(ctx_));
  // The build is the memory-heavy half; attribute its high-water mark to
  // one fragment so the exchange's max-merge reports it once.
  if (fragment_ == 0) RecordPeakMemory(shared_->peak_bytes());
  // Spill-drain arenas charge the shared build tracker: the drain reloads
  // spilled build partitions, which is build-side memory.
  drain_build_arena_.SetMemoryTracker(shared_->memory_tracker());
  drain_arena_.SetMemoryTracker(shared_->memory_tracker());
  // Open the probe chain only now: a pushed Bloom filter is populated by
  // the build above and the probe-side scan reads it during Open().
  VSTORE_RETURN_IF_ERROR(probe_->Open());
  output_ = std::make_unique<Batch>(output_schema_, ctx_->batch_size);
  phase_ = Phase::kProbe;
  probe_batch_ = nullptr;
  probe_row_ = 0;
  chain_ = nullptr;
  row_matched_ = false;
  drain_partition_ = 0;
  drain_loaded_ = false;
  drain_row_pending_ = false;
  return Status::OK();
}

void HashJoinProbeOperator::CloseImpl() {
  // One fragment reports the shared build's tracker + spill bytes so the
  // exchange merge (sum across fragments) counts them once.
  if (fragment_ == 0) {
    RecordMemoryTracker(shared_->memory_tracker());
    RecordSpillBytes(shared_->spill_bytes());
  }
  output_.reset();
  drain_table_.reset();
  if (phase_ != Phase::kInit) probe_->Close();
  probe_batch_ = nullptr;
}

Result<Batch*> HashJoinProbeOperator::NextImpl() {
  output_->Reset();
  out_rows_ = 0;
  bool ready = false;
  if (phase_ == Phase::kProbe) {
    VSTORE_ASSIGN_OR_RETURN(ready, PumpProbe());
  }
  if (!ready && phase_ == Phase::kSpillDrain) {
    VSTORE_ASSIGN_OR_RETURN(ready, PumpSpill());
  }
  if (out_rows_ == 0) return static_cast<Batch*>(nullptr);
  output_->set_num_rows(out_rows_);
  output_->ActivateAll();
  return output_.get();
}

Result<bool> HashJoinProbeOperator::PumpProbe() {
  const JoinType jt = shared_->options().join_type;
  const RowFormat& build_format = shared_->build_format();
  const std::vector<int>& build_keys = shared_->options().build_keys;
  const std::vector<int>& probe_keys = shared_->options().probe_keys;
  for (;;) {
    if (probe_batch_ == nullptr) {
      VSTORE_ASSIGN_OR_RETURN(Batch * batch, probe_->Next());
      if (batch == nullptr) {
        if (!finish_reported_) {
          finish_reported_ = true;
          // The last fragment to exhaust its probe input owns the drain of
          // the spilled partition pairs — by then no fragment can append
          // another probe row to the shared spill files.
          bool last = shared_->FinishProbeFragment();
          phase_ = last && shared_->has_spilled_partitions()
                       ? Phase::kSpillDrain
                       : Phase::kDone;
        }
        return out_rows_ > 0;
      }
      probe_batch_ = batch;
      probe_row_ = 0;
      chain_ = nullptr;
      row_matched_ = false;
      const int64_t n = batch->num_rows();
      probe_hashes_.resize(static_cast<size_t>(n));
      HashKeysBatch(*batch, probe_keys, batch->active(),
                    probe_hashes_.data());
    }

    const uint8_t* active = probe_batch_->active();
    while (probe_row_ < probe_batch_->num_rows()) {
      if (!active[probe_row_]) {
        ++probe_row_;
        continue;
      }
      uint64_t hash = probe_hashes_[static_cast<size_t>(probe_row_)];
      int p = shared_->PartitionOf(hash);
      SharedHashJoinBuild::Partition& part = shared_->partition(p);

      if (part.spilled) {
        VSTORE_RETURN_IF_ERROR(shared_->SpillProbeRow(
            p, probe_batch_->GetActiveRow(probe_row_), ctx_));
        ++probe_rows_spilled_;
        ++probe_rows_;
        ++probe_row_;
        continue;
      }

      if (chain_ == nullptr && !row_matched_) {
        chain_ = part.table->ChainHead(hash);
      }
      while (chain_ != nullptr) {
        if (out_rows_ == output_->capacity()) return true;
        const uint8_t* entry = chain_;
        const uint8_t* payload = SerializedRowHashTable::EntryPayload(entry);
        if (SerializedRowHashTable::EntryHash(entry) == hash &&
            build_format.KeysEqualBatch(payload, build_keys, *probe_batch_,
                                        probe_row_, probe_keys)) {
          row_matched_ = true;
          if (jt == JoinType::kInner || jt == JoinType::kLeftOuter) {
            emitter_.EmitFromBatch(output_.get(), *probe_batch_, probe_row_,
                                   payload, out_rows_++);
          } else {
            chain_ = nullptr;  // semi/anti need only existence
            break;
          }
        }
        if (chain_ != nullptr) {
          chain_ = SerializedRowHashTable::ChainNext(entry);
        }
      }

      bool emit_probe_only = (jt == JoinType::kLeftSemi && row_matched_) ||
                             (jt == JoinType::kLeftAnti && !row_matched_);
      bool emit_null_extended = jt == JoinType::kLeftOuter && !row_matched_;
      if (emit_probe_only || emit_null_extended) {
        if (out_rows_ == output_->capacity()) return true;
        emitter_.EmitFromBatch(output_.get(), *probe_batch_, probe_row_,
                               nullptr, out_rows_++);
      }
      ++probe_rows_;
      ++probe_row_;
      chain_ = nullptr;
      row_matched_ = false;
    }
    probe_batch_ = nullptr;
  }
}

Result<bool> HashJoinProbeOperator::PumpSpill() {
  const JoinType jt = shared_->options().join_type;
  const RowFormat& build_format = shared_->build_format();
  const std::vector<int>& build_keys = shared_->options().build_keys;
  const std::vector<int>& probe_keys = shared_->options().probe_keys;
  for (;;) {
    if (drain_partition_ >= shared_->num_partitions()) {
      phase_ = Phase::kDone;
      return out_rows_ > 0;
    }
    SharedHashJoinBuild::Partition& part =
        shared_->partition(drain_partition_);
    if (!part.spilled) {
      ++drain_partition_;
      continue;
    }

    if (!drain_loaded_) {
      // Rebuild this partition's build side into operator-local storage;
      // the shared partitions stay strictly read-only after the build.
      std::rewind(part.build_file);
      drain_build_arena_.Reset();
      drain_table_ = std::make_unique<SerializedRowHashTable>(
          std::max<int64_t>(part.build_rows_on_disk, 1));
      drain_table_->SetMemoryTracker(shared_->memory_tracker());
      const size_t entry_size =
          SerializedRowHashTable::kHeaderSize + build_format.row_size();
      std::vector<Value> row;
      for (;;) {
        VSTORE_ASSIGN_OR_RETURN(
            bool more,
            ReadSpillRow(part.build_file, shared_->build_schema(), &row));
        if (!more) break;
        uint8_t* entry = drain_build_arena_.Allocate(entry_size);
        build_format.WriteValues(entry + SerializedRowHashTable::kHeaderSize,
                                 row, &drain_build_arena_);
        uint64_t hash = build_format.HashKeys(
            entry + SerializedRowHashTable::kHeaderSize, build_keys);
        drain_table_->Insert(entry, hash);
      }
      std::rewind(part.probe_file);
      drain_probe_row_.resize(probe_format_.row_size());
      drain_loaded_ = true;
      drain_row_pending_ = false;
    }

    for (;;) {
      if (!drain_row_pending_) {
        std::vector<Value> row;
        VSTORE_ASSIGN_OR_RETURN(
            bool more,
            ReadSpillRow(part.probe_file, shared_->probe_schema(), &row));
        if (!more) {
          drain_loaded_ = false;
          ++drain_partition_;
          break;  // next partition
        }
        drain_arena_.Reset();
        probe_format_.WriteValues(drain_probe_row_.data(), row, &drain_arena_);
        uint64_t hash =
            probe_format_.HashKeys(drain_probe_row_.data(), probe_keys);
        chain_ = drain_table_->ChainHead(hash);
        row_matched_ = false;
        drain_row_pending_ = true;
      }

      while (chain_ != nullptr) {
        if (out_rows_ == output_->capacity()) return true;
        const uint8_t* entry = chain_;
        const uint8_t* payload = SerializedRowHashTable::EntryPayload(entry);
        if (CrossFormatKeysEqual(build_format, payload, build_keys,
                                 probe_format_, drain_probe_row_.data(),
                                 probe_keys)) {
          row_matched_ = true;
          if (jt == JoinType::kInner || jt == JoinType::kLeftOuter) {
            emitter_.EmitFromSerialized(output_.get(), drain_probe_row_.data(),
                                        payload, out_rows_++);
          } else {
            chain_ = nullptr;
            break;
          }
        }
        if (chain_ != nullptr) {
          chain_ = SerializedRowHashTable::ChainNext(entry);
        }
      }

      bool emit_probe_only = (jt == JoinType::kLeftSemi && row_matched_) ||
                             (jt == JoinType::kLeftAnti && !row_matched_);
      bool emit_null_extended = jt == JoinType::kLeftOuter && !row_matched_;
      if (emit_probe_only || emit_null_extended) {
        if (out_rows_ == output_->capacity()) return true;
        emitter_.EmitFromSerialized(output_.get(), drain_probe_row_.data(),
                                    nullptr, out_rows_++);
      }
      drain_row_pending_ = false;
    }
  }
}

}  // namespace vstore
