#include "exec/hash_aggregate.h"

#include <algorithm>
#include <cstring>

#include "common/macros.h"
#include "exec/spill.h"

namespace vstore {

namespace {

// Internal accumulator representation chosen per aggregate.
enum class StateKind { kSumInt, kSumDouble, kMinMaxInt, kMinMaxDouble,
                       kMinMaxString, kCountOnly };

StateKind StateKindFor(AggFn fn, DataType input) {
  switch (fn) {
    case AggFn::kCount:
    case AggFn::kCountStar:
      return StateKind::kCountOnly;
    case AggFn::kAvg:
      return StateKind::kSumDouble;
    case AggFn::kSum:
      return input == DataType::kDouble ? StateKind::kSumDouble
                                        : StateKind::kSumInt;
    case AggFn::kMin:
    case AggFn::kMax:
      switch (PhysicalTypeOf(input)) {
        case PhysicalType::kString:
          return StateKind::kMinMaxString;
        case PhysicalType::kDouble:
          return StateKind::kMinMaxDouble;
        case PhysicalType::kInt64:
          return StateKind::kMinMaxInt;
      }
  }
  return StateKind::kCountOnly;
}

// The typed $value column for a partial aggregate. Min/max keep the
// original logical type so the final stage preserves it (e.g. DATE32).
DataType PartialValueType(AggFn fn, DataType input) {
  switch (StateKindFor(fn, input)) {
    case StateKind::kSumDouble:
    case StateKind::kMinMaxDouble:
      return DataType::kDouble;
    case StateKind::kMinMaxString:
      return DataType::kString;
    case StateKind::kMinMaxInt:
      return input;
    default:
      return DataType::kInt64;
  }
}

struct StateRef {
  uint8_t* base;
  int64_t& acc_i() { return *reinterpret_cast<int64_t*>(base); }
  double& acc_d() { return *reinterpret_cast<double*>(base); }
  uint64_t& aux() { return *reinterpret_cast<uint64_t*>(base + 8); }
  int64_t& count() { return *reinterpret_cast<int64_t*>(base + 16); }
};

}  // namespace

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kSum:
      return "SUM";
    case AggFn::kCount:
      return "COUNT";
    case AggFn::kCountStar:
      return "COUNT(*)";
    case AggFn::kMin:
      return "MIN";
    case AggFn::kMax:
      return "MAX";
    case AggFn::kAvg:
      return "AVG";
  }
  return "?";
}

DataType AggOutputType(AggFn fn, DataType input) {
  switch (fn) {
    case AggFn::kCount:
    case AggFn::kCountStar:
      return DataType::kInt64;
    case AggFn::kAvg:
      return DataType::kDouble;
    case AggFn::kSum:
      return input == DataType::kDouble ? DataType::kDouble
                                        : DataType::kInt64;
    case AggFn::kMin:
    case AggFn::kMax:
      return input;
  }
  return DataType::kInt64;
}

Schema HashAggregateOperator::PartialSchema(
    const Schema& input, const std::vector<int>& group_by,
    const std::vector<AggSpec>& aggregates) {
  std::vector<Field> fields;
  for (int k : group_by) fields.push_back(input.field(k));
  for (const AggSpec& spec : aggregates) {
    DataType input_type = spec.column >= 0 ? input.field(spec.column).type
                                           : DataType::kInt64;
    fields.push_back(
        Field{spec.name + "$value", PartialValueType(spec.fn, input_type),
              true});
    fields.push_back(Field{spec.name + "$count", DataType::kInt64, false});
  }
  return Schema(std::move(fields));
}

HashAggregateOperator::HashAggregateOperator(BatchOperatorPtr input,
                                             Options options, ExecContext* ctx)
    : input_(std::move(input)), options_(std::move(options)), ctx_(ctx) {
  const Schema& in = input_->output_schema();
  const size_t num_keys = options_.group_by.size();
  const size_t num_aggs = options_.aggregates.size();

  std::vector<Field> key_fields, out_fields;
  for (int k : options_.group_by) {
    key_fields.push_back(in.field(k));
    out_fields.push_back(in.field(k));
    key_indices_.push_back(static_cast<int>(key_indices_.size()));
  }

  if (options_.phase == AggPhase::kFinal) {
    // Input is a partial schema: keys at 0..k-1, (value, count) pairs after.
    for (size_t a = 0; a < num_aggs; ++a) {
      const AggSpec& spec = options_.aggregates[a];
      int value_col = static_cast<int>(num_keys + 2 * a);
      VSTORE_CHECK(spec.column == value_col);
      DataType value_type = in.field(value_col).type;
      out_fields.push_back(
          Field{spec.name, AggOutputType(spec.fn, value_type), true});
      state_kinds_.push_back(
          static_cast<uint8_t>(StateKindFor(spec.fn, value_type)));
    }
    partial_schema_ = in;  // spills reuse the incoming layout
  } else {
    for (const AggSpec& spec : options_.aggregates) {
      DataType input_type = spec.column >= 0 ? in.field(spec.column).type
                                             : DataType::kInt64;
      out_fields.push_back(
          Field{spec.name, AggOutputType(spec.fn, input_type), true});
      state_kinds_.push_back(
          static_cast<uint8_t>(StateKindFor(spec.fn, input_type)));
    }
    partial_schema_ =
        PartialSchema(in, options_.group_by, options_.aggregates);
  }

  key_schema_ = Schema(std::move(key_fields));
  output_schema_ = options_.phase == AggPhase::kPartial
                       ? partial_schema_
                       : Schema(std::move(out_fields));
  key_format_ = std::make_unique<RowFormat>(key_schema_);
  if (ctx_ != nullptr && ctx_->memory_tracker != nullptr) {
    mem_ = std::make_unique<MemoryTracker>(name(), "operator",
                                           ctx_->memory_tracker);
    pressure_listener_ = ctx_->memory_tracker->AddPressureListener(
        [this] { pressure_.store(true, std::memory_order_relaxed); });
  }
}

HashAggregateOperator::~HashAggregateOperator() {
  Close();
  if (pressure_listener_ != 0) {
    ctx_->memory_tracker->RemovePressureListener(pressure_listener_);
  }
}

void HashAggregateOperator::ResetAggState(int64_t expected_rows) {
  entries_.clear();
  arena_ = std::make_unique<Arena>();
  arena_->SetMemoryTracker(mem_.get());
  table_ = std::make_unique<SerializedRowHashTable>(expected_rows);
  table_->SetMemoryTracker(mem_.get());
}

bool HashAggregateOperator::UnderMemoryPressure(int64_t local_budget) const {
  if (local_budget > 0 &&
      static_cast<int64_t>(arena_->bytes_allocated()) > local_budget) {
    return true;
  }
  MemoryTracker* query = ctx_ != nullptr ? ctx_->memory_tracker : nullptr;
  if (query == nullptr) return false;
  if (pressure_.exchange(false, std::memory_order_relaxed)) return true;
  return query->over_budget();
}

std::string HashAggregateOperator::name() const {
  switch (options_.phase) {
    case AggPhase::kComplete:
      return "HashAggregate";
    case AggPhase::kPartial:
      return "HashAggregate(partial)";
    case AggPhase::kFinal:
      return "HashAggregate(final)";
  }
  return "HashAggregate";
}

void HashAggregateOperator::AppendProfileCounters(
    OperatorProfile* node) const {
  node->counters.push_back({"rows_aggregated", rows_aggregated_});
  node->counters.push_back({"groups", groups_});
  if (spill_flushes_ > 0) {
    node->counters.push_back({"spill_flushes", spill_flushes_});
    node->counters.push_back({"rows_spilled", rows_spilled_});
  }
}

void HashAggregateOperator::InitState(uint8_t* state) const {
  std::memset(state, 0, kStateSlot * options_.aggregates.size());
}

void HashAggregateOperator::UpdateStateFromBatch(uint8_t* state,
                                                 const Batch& batch,
                                                 int64_t i) {
  for (size_t a = 0; a < options_.aggregates.size(); ++a) {
    const AggSpec& spec = options_.aggregates[a];
    StateRef s{state + a * kStateSlot};
    if (spec.fn == AggFn::kCountStar) {
      ++s.count();
      continue;
    }
    const ColumnVector& cv = batch.column(spec.column);
    if (!cv.validity()[i]) continue;
    switch (static_cast<StateKind>(state_kinds_[a])) {
      case StateKind::kCountOnly:
        ++s.count();
        break;
      case StateKind::kSumInt:
        s.acc_i() += cv.ints()[i];
        ++s.count();
        break;
      case StateKind::kSumDouble:
        s.acc_d() += cv.physical_type() == PhysicalType::kDouble
                         ? cv.doubles()[i]
                         : static_cast<double>(cv.ints()[i]);
        ++s.count();
        break;
      case StateKind::kMinMaxInt: {
        int64_t v = cv.ints()[i];
        if (s.count() == 0 || (spec.fn == AggFn::kMin ? v < s.acc_i()
                                                      : v > s.acc_i())) {
          s.acc_i() = v;
        }
        ++s.count();
        break;
      }
      case StateKind::kMinMaxDouble: {
        double v = cv.doubles()[i];
        if (s.count() == 0 || (spec.fn == AggFn::kMin ? v < s.acc_d()
                                                      : v > s.acc_d())) {
          s.acc_d() = v;
        }
        ++s.count();
        break;
      }
      case StateKind::kMinMaxString: {
        std::string_view v = cv.strings()[i];
        std::string_view cur(reinterpret_cast<const char*>(s.acc_i()),
                             s.aux());
        if (s.count() == 0 ||
            (spec.fn == AggFn::kMin ? v < cur : v > cur)) {
          std::string_view stable = arena_->CopyString(v);
          s.acc_i() = reinterpret_cast<int64_t>(stable.data());
          s.aux() = stable.size();
        }
        ++s.count();
        break;
      }
    }
  }
}

void HashAggregateOperator::UpdateStateFromPartialBatch(uint8_t* state,
                                                        const Batch& batch,
                                                        int64_t i) {
  const size_t num_keys = key_indices_.size();
  for (size_t a = 0; a < options_.aggregates.size(); ++a) {
    const AggSpec& spec = options_.aggregates[a];
    StateRef s{state + a * kStateSlot};
    const ColumnVector& value_cv =
        batch.column(static_cast<int>(num_keys + 2 * a));
    const ColumnVector& count_cv =
        batch.column(static_cast<int>(num_keys + 2 * a + 1));
    int64_t count = count_cv.ints()[i];
    if (count == 0) continue;
    switch (static_cast<StateKind>(state_kinds_[a])) {
      case StateKind::kCountOnly:
        break;
      case StateKind::kSumInt:
        s.acc_i() += value_cv.ints()[i];
        break;
      case StateKind::kSumDouble:
        s.acc_d() += value_cv.doubles()[i];
        break;
      case StateKind::kMinMaxInt: {
        int64_t v = value_cv.ints()[i];
        if (s.count() == 0 || (spec.fn == AggFn::kMin ? v < s.acc_i()
                                                      : v > s.acc_i())) {
          s.acc_i() = v;
        }
        break;
      }
      case StateKind::kMinMaxDouble: {
        double v = value_cv.doubles()[i];
        if (s.count() == 0 || (spec.fn == AggFn::kMin ? v < s.acc_d()
                                                      : v > s.acc_d())) {
          s.acc_d() = v;
        }
        break;
      }
      case StateKind::kMinMaxString: {
        std::string_view v = value_cv.strings()[i];
        std::string_view cur(reinterpret_cast<const char*>(s.acc_i()),
                             s.aux());
        if (s.count() == 0 ||
            (spec.fn == AggFn::kMin ? v < cur : v > cur)) {
          std::string_view stable = arena_->CopyString(v);
          s.acc_i() = reinterpret_cast<int64_t>(stable.data());
          s.aux() = stable.size();
        }
        break;
      }
    }
    s.count() += count;
  }
}

namespace {

// GROUP BY key equality: nulls compare equal (one null group).
bool GroupKeysEqual(const RowFormat& fmt, const uint8_t* a, const uint8_t* b,
                    const std::vector<int>& keys) {
  for (int k : keys) {
    bool na = fmt.IsNull(a, k), nb = fmt.IsNull(b, k);
    if (na != nb) return false;
    if (na) continue;
    switch (PhysicalTypeOf(fmt.column_type(k))) {
      case PhysicalType::kInt64:
        if (fmt.GetInt64(a, k) != fmt.GetInt64(b, k)) return false;
        break;
      case PhysicalType::kDouble:
        if (fmt.GetDouble(a, k) != fmt.GetDouble(b, k)) return false;
        break;
      case PhysicalType::kString:
        if (fmt.GetString(a, k) != fmt.GetString(b, k)) return false;
        break;
    }
  }
  return true;
}

bool GroupKeysEqualBatch(const RowFormat& fmt, const uint8_t* row,
                         const std::vector<int>& row_keys, const Batch& batch,
                         int64_t i, const std::vector<int>& batch_cols) {
  for (size_t k = 0; k < row_keys.size(); ++k) {
    const ColumnVector& cv = batch.column(batch_cols[k]);
    bool na = fmt.IsNull(row, row_keys[k]);
    bool nb = cv.validity()[i] == 0;
    if (na != nb) return false;
    if (na) continue;
    switch (cv.physical_type()) {
      case PhysicalType::kInt64:
        if (fmt.GetInt64(row, row_keys[k]) != cv.ints()[i]) return false;
        break;
      case PhysicalType::kDouble:
        if (fmt.GetDouble(row, row_keys[k]) != cv.doubles()[i]) return false;
        break;
      case PhysicalType::kString:
        if (fmt.GetString(row, row_keys[k]) != cv.strings()[i]) return false;
        break;
    }
  }
  return true;
}

}  // namespace

Result<uint8_t*> HashAggregateOperator::GroupEntryFromBatch(const Batch& batch,
                                                            int64_t i,
                                                            uint64_t hash) {
  uint8_t* found = nullptr;
  table_->ForEachCandidate(hash, [&](const uint8_t* payload) {
    if (GroupKeysEqualBatch(*key_format_, payload, key_indices_, batch, i,
                            options_.group_by)) {
      found = const_cast<uint8_t*>(payload);
      return false;
    }
    return true;
  });
  if (found != nullptr) return found;

  uint8_t* entry = arena_->Allocate(entry_size());
  uint8_t* payload = entry + SerializedRowHashTable::kHeaderSize;
  key_format_->WriteKeysFromBatch(payload, batch, i, options_.group_by,
                                  arena_.get());
  InitState(entry_state(entry));
  table_->Insert(entry, hash);
  entries_.push_back(entry);
  return payload;
}

void HashAggregateOperator::AppendPartialValues(const uint8_t* state,
                                                std::vector<Value>* row) const {
  for (size_t a = 0; a < options_.aggregates.size(); ++a) {
    StateRef s{const_cast<uint8_t*>(state) + a * kStateSlot};
    const DataType value_type =
        partial_schema_
            .field(static_cast<int>(key_indices_.size() + 2 * a))
            .type;
    if (s.count() == 0) {
      row->push_back(Value::Null(value_type));
      row->push_back(Value::Int64(0));
      continue;
    }
    switch (static_cast<StateKind>(state_kinds_[a])) {
      case StateKind::kCountOnly:
        row->push_back(Value::Null(value_type));
        break;
      case StateKind::kSumInt:
        row->push_back(Value::Int64(s.acc_i()));
        break;
      case StateKind::kSumDouble:
        row->push_back(Value::Double(s.acc_d()));
        break;
      case StateKind::kMinMaxInt:
        switch (value_type) {
          case DataType::kBool:
            row->push_back(Value::Bool(s.acc_i() != 0));
            break;
          case DataType::kInt32:
            row->push_back(Value::Int32(static_cast<int32_t>(s.acc_i())));
            break;
          case DataType::kDate32:
            row->push_back(Value::Date32(static_cast<int32_t>(s.acc_i())));
            break;
          default:
            row->push_back(Value::Int64(s.acc_i()));
        }
        break;
      case StateKind::kMinMaxDouble:
        row->push_back(Value::Double(s.acc_d()));
        break;
      case StateKind::kMinMaxString:
        row->push_back(Value::String(std::string(
            reinterpret_cast<const char*>(s.acc_i()), s.aux())));
        break;
    }
    row->push_back(Value::Int64(s.count()));
  }
}

Status HashAggregateOperator::FlushToPartitions() {
  if (partition_files_.empty()) {
    partition_files_.resize(static_cast<size_t>(options_.num_partitions),
                            nullptr);
    for (auto& f : partition_files_) {
      f = std::tmpfile();
      if (f == nullptr) return Status::Internal("cannot create spill file");
    }
    ctx_->stats.spill_partitions += options_.num_partitions;
  }
  ++spill_flushes_;
  const int shift =
      64 - std::countr_zero(static_cast<unsigned>(options_.num_partitions));

  for (uint8_t* entry : entries_) {
    const uint8_t* payload = SerializedRowHashTable::EntryPayload(entry);
    uint64_t hash = SerializedRowHashTable::EntryHash(entry);
    std::vector<Value> row;
    for (size_t k = 0; k < key_indices_.size(); ++k) {
      row.push_back(key_format_->GetValue(payload, key_indices_[k]));
    }
    AppendPartialValues(entry_state(entry), &row);
    int p = static_cast<int>(hash >> shift);
    int64_t bytes = 0;
    VSTORE_RETURN_IF_ERROR(
        WriteSpillRow(partition_files_[static_cast<size_t>(p)],
                      partial_schema_, row, &bytes));
    RecordSpillBytes(bytes);
    AddGlobalSpillBytes(bytes);
    ++ctx_->stats.build_rows_spilled;
    ++rows_spilled_;
  }
  ResetAggState(1024);
  spilled_ = true;
  return Status::OK();
}

Status HashAggregateOperator::ConsumeInput() {
  VSTORE_RETURN_IF_ERROR(input_->Open());
  const int64_t budget = ctx_->operator_memory_budget;
  const bool partial_input = options_.phase == AggPhase::kFinal;
  std::vector<uint64_t> hashes;
  for (;;) {
    VSTORE_ASSIGN_OR_RETURN(Batch * batch, input_->Next());
    if (batch == nullptr) break;
    const uint8_t* active = batch->active();
    hashes.resize(static_cast<size_t>(batch->num_rows()));
    HashKeysBatch(*batch, options_.group_by, active, hashes.data());
    for (int64_t i = 0; i < batch->num_rows(); ++i) {
      if (!active[i]) continue;
      VSTORE_ASSIGN_OR_RETURN(
          uint8_t * payload,
          GroupEntryFromBatch(*batch, i, hashes[static_cast<size_t>(i)]));
      uint8_t* entry = payload - SerializedRowHashTable::kHeaderSize;
      ++rows_aggregated_;
      if (partial_input) {
        UpdateStateFromPartialBatch(entry_state(entry), *batch, i);
      } else {
        UpdateStateFromBatch(entry_state(entry), *batch, i);
      }
      RecordPeakMemory(static_cast<int64_t>(arena_->bytes_allocated()));
      if (!entries_.empty() && UnderMemoryPressure(budget)) {
        VSTORE_RETURN_IF_ERROR(FlushToPartitions());
      }
    }
  }
  input_->Close();
  if (spilled_ && !entries_.empty()) {
    VSTORE_RETURN_IF_ERROR(FlushToPartitions());
  }
  return Status::OK();
}

Status HashAggregateOperator::LoadPartition(int p) {
  std::FILE* f = partition_files_[static_cast<size_t>(p)];
  std::rewind(f);
  std::vector<Value> row;
  std::vector<uint8_t> scratch(key_format_->row_size());
  Arena scratch_arena;

  for (;;) {
    VSTORE_ASSIGN_OR_RETURN(bool more,
                            ReadSpillRow(f, partial_schema_, &row));
    if (!more) break;
    scratch_arena.Reset();
    std::vector<Value> key_values(row.begin(),
                                  row.begin() + static_cast<long>(
                                                    key_indices_.size()));
    key_format_->WriteValues(scratch.data(), key_values, &scratch_arena);
    uint64_t hash = key_format_->HashKeys(scratch.data(), key_indices_);
    uint8_t* found = nullptr;
    table_->ForEachCandidate(hash, [&](const uint8_t* payload) {
      if (GroupKeysEqual(*key_format_, payload, scratch.data(),
                         key_indices_)) {
        found = const_cast<uint8_t*>(payload);
        return false;
      }
      return true;
    });
    uint8_t* entry;
    if (found == nullptr) {
      entry = arena_->Allocate(entry_size());
      key_format_->WriteValues(entry + SerializedRowHashTable::kHeaderSize,
                               key_values, arena_.get());
      InitState(entry_state(entry));
      table_->Insert(entry, hash);
      entries_.push_back(entry);
    } else {
      entry = found - SerializedRowHashTable::kHeaderSize;
    }

    // Merge the partials.
    uint8_t* state = entry_state(entry);
    size_t v = key_indices_.size();
    for (size_t a = 0; a < options_.aggregates.size(); ++a, v += 2) {
      const AggSpec& spec = options_.aggregates[a];
      StateRef s{state + a * kStateSlot};
      const Value& value = row[v];
      int64_t count = row[v + 1].int64();
      if (count == 0) continue;
      switch (static_cast<StateKind>(state_kinds_[a])) {
        case StateKind::kCountOnly:
          break;
        case StateKind::kSumInt:
          s.acc_i() += value.int64();
          break;
        case StateKind::kSumDouble:
          s.acc_d() += value.dbl();
          break;
        case StateKind::kMinMaxInt: {
          int64_t x = value.int64();
          if (s.count() == 0 || (spec.fn == AggFn::kMin ? x < s.acc_i()
                                                        : x > s.acc_i())) {
            s.acc_i() = x;
          }
          break;
        }
        case StateKind::kMinMaxDouble: {
          double x = value.dbl();
          if (s.count() == 0 || (spec.fn == AggFn::kMin ? x < s.acc_d()
                                                        : x > s.acc_d())) {
            s.acc_d() = x;
          }
          break;
        }
        case StateKind::kMinMaxString: {
          std::string_view x = value.str();
          std::string_view cur(reinterpret_cast<const char*>(s.acc_i()),
                               s.aux());
          if (s.count() == 0 ||
              (spec.fn == AggFn::kMin ? x < cur : x > cur)) {
            std::string_view stable = arena_->CopyString(x);
            s.acc_i() = reinterpret_cast<int64_t>(stable.data());
            s.aux() = stable.size();
          }
          break;
        }
      }
      s.count() += count;
    }
  }
  return Status::OK();
}

Status HashAggregateOperator::EmitEntries() {
  output_->Reset();
  const int num_keys = static_cast<int>(key_indices_.size());
  const bool emit_partial = options_.phase == AggPhase::kPartial;
  int64_t out_row = 0;
  while (emit_pos_ < entries_.size() && out_row < output_->capacity()) {
    uint8_t* entry = entries_[emit_pos_++];
    ++groups_;
    const uint8_t* payload = SerializedRowHashTable::EntryPayload(entry);
    for (int k = 0; k < num_keys; ++k) {
      key_format_->CopyToVector(payload, k, &output_->column(k), out_row,
                                output_->arena());
    }
    uint8_t* state = entry_state(entry);

    if (emit_partial) {
      std::vector<Value> values;
      AppendPartialValues(state, &values);
      for (size_t c = 0; c < values.size(); ++c) {
        output_->column(num_keys + static_cast<int>(c))
            .SetValue(out_row, values[c], output_->arena());
      }
      ++out_row;
      continue;
    }

    for (size_t a = 0; a < options_.aggregates.size(); ++a) {
      const AggSpec& spec = options_.aggregates[a];
      StateRef s{state + a * kStateSlot};
      ColumnVector& dst = output_->column(num_keys + static_cast<int>(a));
      StateKind kind = static_cast<StateKind>(state_kinds_[a]);

      if (spec.fn == AggFn::kCount || spec.fn == AggFn::kCountStar) {
        dst.mutable_validity()[out_row] = 1;
        dst.mutable_ints()[out_row] = s.count();
        continue;
      }
      if (s.count() == 0) {  // aggregate over all-null input
        dst.mutable_validity()[out_row] = 0;
        continue;
      }
      dst.mutable_validity()[out_row] = 1;
      switch (spec.fn) {
        case AggFn::kAvg:
          dst.mutable_doubles()[out_row] =
              s.acc_d() / static_cast<double>(s.count());
          break;
        case AggFn::kSum:
          if (kind == StateKind::kSumDouble) {
            dst.mutable_doubles()[out_row] = s.acc_d();
          } else {
            dst.mutable_ints()[out_row] = s.acc_i();
          }
          break;
        case AggFn::kMin:
        case AggFn::kMax:
          switch (kind) {
            case StateKind::kMinMaxInt:
              dst.mutable_ints()[out_row] = s.acc_i();
              break;
            case StateKind::kMinMaxDouble:
              dst.mutable_doubles()[out_row] = s.acc_d();
              break;
            case StateKind::kMinMaxString:
              dst.mutable_strings()[out_row] = output_->arena()->CopyString(
                  std::string_view(reinterpret_cast<const char*>(s.acc_i()),
                                   s.aux()));
              break;
            default:
              break;
          }
          break;
        default:
          break;
      }
    }
    ++out_row;
  }
  output_->set_num_rows(out_row);
  output_->ActivateAll();
  return Status::OK();
}

Status HashAggregateOperator::OpenImpl() {
  ResetAggState(1024);
  if (mem_ != nullptr) mem_->ResetPeak();
  pressure_.store(false, std::memory_order_relaxed);
  spilled_ = false;
  rows_aggregated_ = 0;
  groups_ = 0;
  spill_flushes_ = 0;
  rows_spilled_ = 0;
  emit_pos_ = 0;
  drain_partition_ = 0;
  done_ = false;
  output_ = std::make_unique<Batch>(output_schema_, ctx_->batch_size);
  VSTORE_RETURN_IF_ERROR(ConsumeInput());
  if (spilled_) {
    entries_.clear();
  } else if (options_.phase == AggPhase::kFinal && key_indices_.empty() &&
             entries_.empty()) {
    // Scalar aggregation over zero partial rows still yields one row
    // (COUNT = 0, other aggregates null).
    uint8_t* entry = arena_->Allocate(entry_size());
    key_format_->WriteValues(entry + SerializedRowHashTable::kHeaderSize, {},
                             arena_.get());
    InitState(entry_state(entry));
    entries_.push_back(entry);
  }
  return Status::OK();
}

Result<Batch*> HashAggregateOperator::NextImpl() {
  if (done_) return static_cast<Batch*>(nullptr);
  for (;;) {
    if (emit_pos_ < entries_.size()) {
      VSTORE_RETURN_IF_ERROR(EmitEntries());
      if (output_->num_rows() > 0) return output_.get();
    }
    if (!spilled_) {
      done_ = true;
      return static_cast<Batch*>(nullptr);
    }
    if (drain_partition_ >= options_.num_partitions) {
      done_ = true;
      return static_cast<Batch*>(nullptr);
    }
    // Merge the next spilled partition and emit it.
    ResetAggState(1024);
    emit_pos_ = 0;
    VSTORE_RETURN_IF_ERROR(LoadPartition(drain_partition_));
    ++drain_partition_;
  }
}

void HashAggregateOperator::CloseImpl() {
  RecordMemoryTracker(mem_.get());
  for (std::FILE* f : partition_files_) {
    if (f != nullptr) std::fclose(f);
  }
  partition_files_.clear();
  entries_.clear();
  table_.reset();
  arena_.reset();
  output_.reset();
}

}  // namespace vstore
