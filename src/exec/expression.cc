#include "exec/expression.h"

#include <algorithm>
#include <cstring>

#include "common/int_arith.h"
#include "common/macros.h"

namespace vstore {

namespace {

// Evaluates a child into a freshly sized vector.
Status EvalChild(const Expr& child, const Batch& in, Arena* arena,
                 std::unique_ptr<ColumnVector>* out) {
  *out = std::make_unique<ColumnVector>(child.output_type(),
                                        std::max<int64_t>(in.num_rows(), 1));
  return child.EvalBatch(in, arena, out->get());
}

int CompareValuesSameFamily(const Value& a, const Value& b) {
  switch (PhysicalTypeOf(a.type())) {
    case PhysicalType::kString: {
      int c = a.str().compare(b.str());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case PhysicalType::kDouble:
    case PhysicalType::kInt64: {
      if (a.type() == DataType::kDouble || b.type() == DataType::kDouble) {
        double x = a.AsDouble(), y = b.AsDouble();
        return x < y ? -1 : (x > y ? 1 : 0);
      }
      int64_t x = a.int64(), y = b.int64();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
  }
  return 0;
}

}  // namespace

// --- ColumnRefExpr --------------------------------------------------------

Status ColumnRefExpr::EvalBatch(const Batch& in, Arena* arena,
                                ColumnVector* out) const {
  const ColumnVector& src = in.column(index_);
  const int64_t n = in.num_rows();
  std::memcpy(out->mutable_validity(), src.validity(),
              static_cast<size_t>(n));
  switch (src.physical_type()) {
    case PhysicalType::kInt64:
      std::memcpy(out->mutable_ints(), src.ints(),
                  static_cast<size_t>(n) * sizeof(int64_t));
      break;
    case PhysicalType::kDouble:
      std::memcpy(out->mutable_doubles(), src.doubles(),
                  static_cast<size_t>(n) * sizeof(double));
      break;
    case PhysicalType::kString:
      std::copy(src.strings(), src.strings() + n, out->mutable_strings());
      break;
  }
  return Status::OK();
}

Status ColumnRefExpr::EvalRow(const std::vector<Value>& row,
                              Value* out) const {
  *out = row[static_cast<size_t>(index_)];
  return Status::OK();
}

// --- LiteralExpr ------------------------------------------------------------

Status LiteralExpr::EvalBatch(const Batch& in, Arena* arena,
                              ColumnVector* out) const {
  const int64_t n = in.num_rows();
  if (value_.is_null()) {
    std::fill(out->mutable_validity(), out->mutable_validity() + n, uint8_t{0});
    return Status::OK();
  }
  out->SetAllValid(n);
  switch (PhysicalTypeOf(value_.type())) {
    case PhysicalType::kInt64:
      std::fill(out->mutable_ints(), out->mutable_ints() + n, value_.int64());
      break;
    case PhysicalType::kDouble:
      std::fill(out->mutable_doubles(), out->mutable_doubles() + n,
                value_.dbl());
      break;
    case PhysicalType::kString: {
      std::string_view sv = arena->CopyString(value_.str());
      std::fill(out->mutable_strings(), out->mutable_strings() + n, sv);
      break;
    }
  }
  return Status::OK();
}

Status LiteralExpr::EvalRow(const std::vector<Value>& row, Value* out) const {
  *out = value_;
  return Status::OK();
}

// --- CompareExpr ------------------------------------------------------------

Status CompareExpr::EvalBatch(const Batch& in, Arena* arena,
                              ColumnVector* out) const {
  std::unique_ptr<ColumnVector> lv, rv;
  VSTORE_RETURN_IF_ERROR(EvalChild(*left_, in, arena, &lv));
  VSTORE_RETURN_IF_ERROR(EvalChild(*right_, in, arena, &rv));
  const int64_t n = in.num_rows();
  int64_t* res = out->mutable_ints();
  uint8_t* valid = out->mutable_validity();
  const uint8_t* va = lv->validity();
  const uint8_t* vb = rv->validity();

  PhysicalType pl = lv->physical_type();
  PhysicalType pr = rv->physical_type();
  const CompareOp op = op_;

  if (pl == PhysicalType::kString) {
    const std::string_view* a = lv->strings();
    const std::string_view* b = rv->strings();
    for (int64_t i = 0; i < n; ++i) {
      valid[i] = va[i] & vb[i];
      int c = a[i].compare(b[i]);
      res[i] = ApplyCompare(op, c < 0 ? -1 : (c > 0 ? 1 : 0));
    }
  } else if (pl == PhysicalType::kDouble || pr == PhysicalType::kDouble) {
    // Promote mixed int/double comparisons to double.
    auto load = [n](const ColumnVector& v, std::vector<double>* buf) {
      if (v.physical_type() == PhysicalType::kDouble) return v.doubles();
      buf->resize(static_cast<size_t>(n));
      const int64_t* src = v.ints();
      for (int64_t i = 0; i < n; ++i) {
        (*buf)[static_cast<size_t>(i)] = static_cast<double>(src[i]);
      }
      return const_cast<const double*>(buf->data());
    };
    std::vector<double> abuf, bbuf;
    const double* a = load(*lv, &abuf);
    const double* b = load(*rv, &bbuf);
    for (int64_t i = 0; i < n; ++i) {
      valid[i] = va[i] & vb[i];
      res[i] = ApplyCompare(op, a[i] < b[i] ? -1 : (a[i] > b[i] ? 1 : 0));
    }
  } else {
    const int64_t* a = lv->ints();
    const int64_t* b = rv->ints();
    for (int64_t i = 0; i < n; ++i) {
      valid[i] = va[i] & vb[i];
      res[i] = ApplyCompare(op, a[i] < b[i] ? -1 : (a[i] > b[i] ? 1 : 0));
    }
  }
  return Status::OK();
}

Status CompareExpr::EvalRow(const std::vector<Value>& row, Value* out) const {
  Value a, b;
  VSTORE_RETURN_IF_ERROR(left_->EvalRow(row, &a));
  VSTORE_RETURN_IF_ERROR(right_->EvalRow(row, &b));
  if (a.is_null() || b.is_null()) {
    *out = Value::Null(DataType::kBool);
    return Status::OK();
  }
  *out = Value::Bool(ApplyCompare(op_, CompareValuesSameFamily(a, b)));
  return Status::OK();
}

std::string CompareExpr::ToString() const {
  return "(" + left_->ToString() + " " + CompareOpName(op_) + " " +
         right_->ToString() + ")";
}

// --- ArithExpr ---------------------------------------------------------------

Status ArithExpr::EvalBatch(const Batch& in, Arena* arena,
                            ColumnVector* out) const {
  std::unique_ptr<ColumnVector> lv, rv;
  VSTORE_RETURN_IF_ERROR(EvalChild(*left_, in, arena, &lv));
  VSTORE_RETURN_IF_ERROR(EvalChild(*right_, in, arena, &rv));
  const int64_t n = in.num_rows();
  uint8_t* valid = out->mutable_validity();
  const uint8_t* va = lv->validity();
  const uint8_t* vb = rv->validity();

  if (output_type() == DataType::kDouble) {
    auto load = [n](const ColumnVector& v, std::vector<double>* buf) {
      if (v.physical_type() == PhysicalType::kDouble) return v.doubles();
      buf->resize(static_cast<size_t>(n));
      const int64_t* src = v.ints();
      for (int64_t i = 0; i < n; ++i) {
        (*buf)[static_cast<size_t>(i)] = static_cast<double>(src[i]);
      }
      return const_cast<const double*>(buf->data());
    };
    std::vector<double> abuf, bbuf;
    const double* a = load(*lv, &abuf);
    const double* b = load(*rv, &bbuf);
    double* res = out->mutable_doubles();
    switch (op_) {
      case ArithOp::kAdd:
        for (int64_t i = 0; i < n; ++i) {
          valid[i] = va[i] & vb[i];
          res[i] = a[i] + b[i];
        }
        break;
      case ArithOp::kSub:
        for (int64_t i = 0; i < n; ++i) {
          valid[i] = va[i] & vb[i];
          res[i] = a[i] - b[i];
        }
        break;
      case ArithOp::kMul:
        for (int64_t i = 0; i < n; ++i) {
          valid[i] = va[i] & vb[i];
          res[i] = a[i] * b[i];
        }
        break;
      case ArithOp::kDiv:
        for (int64_t i = 0; i < n; ++i) {
          valid[i] = va[i] & vb[i] & (b[i] != 0.0 ? 1 : 0);
          res[i] = b[i] != 0.0 ? a[i] / b[i] : 0.0;
        }
        break;
    }
  } else {
    const int64_t* a = lv->ints();
    const int64_t* b = rv->ints();
    int64_t* res = out->mutable_ints();
    // Integer ops wrap on overflow (common/int_arith.h) — the engine-wide
    // contract shared with the row engine and the bytecode/SIMD kernels.
    switch (op_) {
      case ArithOp::kAdd:
        for (int64_t i = 0; i < n; ++i) {
          valid[i] = va[i] & vb[i];
          res[i] = WrapAdd(a[i], b[i]);
        }
        break;
      case ArithOp::kSub:
        for (int64_t i = 0; i < n; ++i) {
          valid[i] = va[i] & vb[i];
          res[i] = WrapSub(a[i], b[i]);
        }
        break;
      case ArithOp::kMul:
        for (int64_t i = 0; i < n; ++i) {
          valid[i] = va[i] & vb[i];
          res[i] = WrapMul(a[i], b[i]);
        }
        break;
      case ArithOp::kDiv:
        for (int64_t i = 0; i < n; ++i) {
          valid[i] = va[i] & vb[i] & (b[i] != 0 ? 1 : 0);
          res[i] = b[i] != 0 ? WrapDiv(a[i], b[i]) : 0;
        }
        break;
    }
  }
  return Status::OK();
}

Status ArithExpr::EvalRow(const std::vector<Value>& row, Value* out) const {
  Value a, b;
  VSTORE_RETURN_IF_ERROR(left_->EvalRow(row, &a));
  VSTORE_RETURN_IF_ERROR(right_->EvalRow(row, &b));
  if (a.is_null() || b.is_null()) {
    *out = Value::Null(output_type());
    return Status::OK();
  }
  if (output_type() == DataType::kDouble) {
    double x = a.AsDouble(), y = b.AsDouble();
    switch (op_) {
      case ArithOp::kAdd:
        *out = Value::Double(x + y);
        break;
      case ArithOp::kSub:
        *out = Value::Double(x - y);
        break;
      case ArithOp::kMul:
        *out = Value::Double(x * y);
        break;
      case ArithOp::kDiv:
        *out = y != 0.0 ? Value::Double(x / y)
                        : Value::Null(DataType::kDouble);
        break;
    }
  } else {
    int64_t x = a.int64(), y = b.int64();
    switch (op_) {
      case ArithOp::kAdd:
        *out = Value::Int64(WrapAdd(x, y));
        break;
      case ArithOp::kSub:
        *out = Value::Int64(WrapSub(x, y));
        break;
      case ArithOp::kMul:
        *out = Value::Int64(WrapMul(x, y));
        break;
      case ArithOp::kDiv:
        *out = y != 0 ? Value::Int64(WrapDiv(x, y))
                      : Value::Null(DataType::kInt64);
        break;
    }
  }
  return Status::OK();
}

std::string ArithExpr::ToString() const {
  const char* op = op_ == ArithOp::kAdd   ? "+"
                   : op_ == ArithOp::kSub ? "-"
                   : op_ == ArithOp::kMul ? "*"
                                          : "/";
  return "(" + left_->ToString() + " " + op + " " + right_->ToString() + ")";
}

// --- BoolExpr -----------------------------------------------------------------

Status BoolExpr::EvalBatch(const Batch& in, Arena* arena,
                           ColumnVector* out) const {
  std::unique_ptr<ColumnVector> lv, rv;
  VSTORE_RETURN_IF_ERROR(EvalChild(*left_, in, arena, &lv));
  VSTORE_RETURN_IF_ERROR(EvalChild(*right_, in, arena, &rv));
  const int64_t n = in.num_rows();
  int64_t* res = out->mutable_ints();
  uint8_t* valid = out->mutable_validity();
  const int64_t* a = lv->ints();
  const int64_t* b = rv->ints();
  const uint8_t* va = lv->validity();
  const uint8_t* vb = rv->validity();
  if (op_ == BoolOp::kAnd) {
    for (int64_t i = 0; i < n; ++i) {
      valid[i] = va[i] & vb[i];
      res[i] = (a[i] != 0) & (b[i] != 0);
    }
  } else {
    for (int64_t i = 0; i < n; ++i) {
      valid[i] = va[i] & vb[i];
      res[i] = (a[i] != 0) | (b[i] != 0);
    }
  }
  return Status::OK();
}

Status BoolExpr::EvalRow(const std::vector<Value>& row, Value* out) const {
  Value a, b;
  VSTORE_RETURN_IF_ERROR(left_->EvalRow(row, &a));
  VSTORE_RETURN_IF_ERROR(right_->EvalRow(row, &b));
  if (a.is_null() || b.is_null()) {
    *out = Value::Null(DataType::kBool);
    return Status::OK();
  }
  bool x = a.int64() != 0, y = b.int64() != 0;
  *out = Value::Bool(op_ == BoolOp::kAnd ? (x && y) : (x || y));
  return Status::OK();
}

std::string BoolExpr::ToString() const {
  return "(" + left_->ToString() +
         (op_ == BoolOp::kAnd ? " AND " : " OR ") + right_->ToString() + ")";
}

// --- NotExpr -------------------------------------------------------------------

Status NotExpr::EvalBatch(const Batch& in, Arena* arena,
                          ColumnVector* out) const {
  std::unique_ptr<ColumnVector> cv;
  VSTORE_RETURN_IF_ERROR(EvalChild(*input_, in, arena, &cv));
  const int64_t n = in.num_rows();
  int64_t* res = out->mutable_ints();
  const int64_t* a = cv->ints();
  std::memcpy(out->mutable_validity(), cv->validity(), static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) res[i] = a[i] == 0;
  return Status::OK();
}

Status NotExpr::EvalRow(const std::vector<Value>& row, Value* out) const {
  Value v;
  VSTORE_RETURN_IF_ERROR(input_->EvalRow(row, &v));
  *out = v.is_null() ? Value::Null(DataType::kBool)
                     : Value::Bool(v.int64() == 0);
  return Status::OK();
}

// --- IsNullExpr ------------------------------------------------------------------

Status IsNullExpr::EvalBatch(const Batch& in, Arena* arena,
                             ColumnVector* out) const {
  std::unique_ptr<ColumnVector> cv;
  VSTORE_RETURN_IF_ERROR(EvalChild(*input_, in, arena, &cv));
  const int64_t n = in.num_rows();
  int64_t* res = out->mutable_ints();
  const uint8_t* va = cv->validity();
  out->SetAllValid(n);
  for (int64_t i = 0; i < n; ++i) res[i] = va[i] == 0;
  return Status::OK();
}

Status IsNullExpr::EvalRow(const std::vector<Value>& row, Value* out) const {
  Value v;
  VSTORE_RETURN_IF_ERROR(input_->EvalRow(row, &v));
  *out = Value::Bool(v.is_null());
  return Status::OK();
}

// --- YearExpr ---------------------------------------------------------------------

Status YearExpr::EvalBatch(const Batch& in, Arena* arena,
                           ColumnVector* out) const {
  std::unique_ptr<ColumnVector> cv;
  VSTORE_RETURN_IF_ERROR(EvalChild(*input_, in, arena, &cv));
  const int64_t n = in.num_rows();
  int64_t* res = out->mutable_ints();
  const int64_t* a = cv->ints();
  std::memcpy(out->mutable_validity(), cv->validity(), static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) res[i] = YearFromDays(a[i]);
  return Status::OK();
}

Status YearExpr::EvalRow(const std::vector<Value>& row, Value* out) const {
  Value v;
  VSTORE_RETURN_IF_ERROR(input_->EvalRow(row, &v));
  *out = v.is_null() ? Value::Null(DataType::kInt64)
                     : Value::Int64(YearFromDays(v.int64()));
  return Status::OK();
}

// --- StartsWithExpr ----------------------------------------------------------------

Status StartsWithExpr::EvalBatch(const Batch& in, Arena* arena,
                                 ColumnVector* out) const {
  std::unique_ptr<ColumnVector> cv;
  VSTORE_RETURN_IF_ERROR(EvalChild(*input_, in, arena, &cv));
  const int64_t n = in.num_rows();
  int64_t* res = out->mutable_ints();
  const std::string_view* a = cv->strings();
  std::memcpy(out->mutable_validity(), cv->validity(), static_cast<size_t>(n));
  const std::string_view prefix(prefix_);
  for (int64_t i = 0; i < n; ++i) {
    res[i] = a[i].substr(0, prefix.size()) == prefix;
  }
  return Status::OK();
}

Status StartsWithExpr::EvalRow(const std::vector<Value>& row,
                               Value* out) const {
  Value v;
  VSTORE_RETURN_IF_ERROR(input_->EvalRow(row, &v));
  if (v.is_null()) {
    *out = Value::Null(DataType::kBool);
    return Status::OK();
  }
  *out = Value::Bool(std::string_view(v.str()).substr(0, prefix_.size()) ==
                     prefix_);
  return Status::OK();
}

// --- InExpr -------------------------------------------------------------------------

Status InExpr::EvalBatch(const Batch& in, Arena* arena,
                         ColumnVector* out) const {
  std::unique_ptr<ColumnVector> cv;
  VSTORE_RETURN_IF_ERROR(EvalChild(*input_, in, arena, &cv));
  const int64_t n = in.num_rows();
  int64_t* res = out->mutable_ints();
  std::memcpy(out->mutable_validity(), cv->validity(), static_cast<size_t>(n));
  if (cv->physical_type() == PhysicalType::kString) {
    const std::string_view* a = cv->strings();
    for (int64_t i = 0; i < n; ++i) {
      bool hit = false;
      for (const Value& v : values_) {
        if (!v.is_null() && a[i] == v.str()) {
          hit = true;
          break;
        }
      }
      res[i] = hit;
    }
  } else if (cv->physical_type() == PhysicalType::kInt64) {
    const int64_t* a = cv->ints();
    for (int64_t i = 0; i < n; ++i) {
      bool hit = false;
      for (const Value& v : values_) {
        if (!v.is_null() && a[i] == v.int64()) {
          hit = true;
          break;
        }
      }
      res[i] = hit;
    }
  } else {
    const double* a = cv->doubles();
    for (int64_t i = 0; i < n; ++i) {
      bool hit = false;
      for (const Value& v : values_) {
        if (!v.is_null() && a[i] == v.AsDouble()) {
          hit = true;
          break;
        }
      }
      res[i] = hit;
    }
  }
  return Status::OK();
}

Status InExpr::EvalRow(const std::vector<Value>& row, Value* out) const {
  Value v;
  VSTORE_RETURN_IF_ERROR(input_->EvalRow(row, &v));
  if (v.is_null()) {
    *out = Value::Null(DataType::kBool);
    return Status::OK();
  }
  for (const Value& candidate : values_) {
    if (!candidate.is_null() && v == candidate) {
      *out = Value::Bool(true);
      return Status::OK();
    }
  }
  *out = Value::Bool(false);
  return Status::OK();
}

std::string InExpr::ToString() const {
  std::string out = input_->ToString() + " IN (";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  return out + ")";
}

// --- Builders ------------------------------------------------------------------------

namespace expr {

ExprPtr Column(const Schema& schema, const std::string& name) {
  int index = schema.IndexOf(name);
  VSTORE_CHECK(index >= 0);
  return std::make_shared<ColumnRefExpr>(index, schema.field(index).type,
                                         name);
}

ExprPtr ColumnAt(const Schema& schema, int index) {
  VSTORE_CHECK(index >= 0 && index < schema.num_columns());
  return std::make_shared<ColumnRefExpr>(index, schema.field(index).type,
                                         schema.field(index).name);
}

ExprPtr Lit(Value value) { return std::make_shared<LiteralExpr>(std::move(value)); }

ExprPtr Cmp(CompareOp op, ExprPtr left, ExprPtr right) {
  bool ls = PhysicalTypeOf(left->output_type()) == PhysicalType::kString;
  bool rs = PhysicalTypeOf(right->output_type()) == PhysicalType::kString;
  VSTORE_CHECK(ls == rs);
  return std::make_shared<CompareExpr>(op, std::move(left), std::move(right));
}

ExprPtr Arith(ArithOp op, ExprPtr left, ExprPtr right) {
  VSTORE_CHECK(IsNumeric(left->output_type()) &&
               IsNumeric(right->output_type()));
  DataType out = (left->output_type() == DataType::kDouble ||
                  right->output_type() == DataType::kDouble)
                     ? DataType::kDouble
                     : DataType::kInt64;
  return std::make_shared<ArithExpr>(op, std::move(left), std::move(right),
                                     out);
}

ExprPtr And(ExprPtr left, ExprPtr right) {
  return std::make_shared<BoolExpr>(BoolOp::kAnd, std::move(left),
                                    std::move(right));
}

ExprPtr Or(ExprPtr left, ExprPtr right) {
  return std::make_shared<BoolExpr>(BoolOp::kOr, std::move(left),
                                    std::move(right));
}

ExprPtr Not(ExprPtr input) { return std::make_shared<NotExpr>(std::move(input)); }

ExprPtr IsNull(ExprPtr input) {
  return std::make_shared<IsNullExpr>(std::move(input));
}

ExprPtr Year(ExprPtr input) {
  VSTORE_CHECK(PhysicalTypeOf(input->output_type()) == PhysicalType::kInt64);
  return std::make_shared<YearExpr>(std::move(input));
}

ExprPtr StartsWith(ExprPtr input, std::string prefix) {
  VSTORE_CHECK(input->output_type() == DataType::kString);
  return std::make_shared<StartsWithExpr>(std::move(input), std::move(prefix));
}

ExprPtr In(ExprPtr input, std::vector<Value> values) {
  return std::make_shared<InExpr>(std::move(input), std::move(values));
}

ExprPtr Between(ExprPtr input, Value lo, Value hi) {
  return And(Ge(input, Lit(std::move(lo))), Le(input, Lit(std::move(hi))));
}

void CollectConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  if (expr->kind() == ExprKind::kBool) {
    const auto* b = static_cast<const BoolExpr*>(expr.get());
    if (b->op() == BoolOp::kAnd) {
      CollectConjuncts(b->left(), out);
      CollectConjuncts(b->right(), out);
      return;
    }
  }
  out->push_back(expr);
}

}  // namespace expr

}  // namespace vstore
