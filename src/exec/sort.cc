#include "exec/sort.h"

#include <algorithm>

namespace vstore {

int CompareRowsOnKeys(const std::vector<Value>& a, const std::vector<Value>& b,
                      const std::vector<SortKey>& keys) {
  for (const SortKey& key : keys) {
    const Value& va = a[static_cast<size_t>(key.column)];
    const Value& vb = b[static_cast<size_t>(key.column)];
    int cmp = 0;
    if (va.is_null() || vb.is_null()) {
      cmp = static_cast<int>(vb.is_null()) - static_cast<int>(va.is_null());
    } else {
      switch (PhysicalTypeOf(va.type())) {
        case PhysicalType::kString: {
          int c = va.str().compare(vb.str());
          cmp = c < 0 ? -1 : (c > 0 ? 1 : 0);
          break;
        }
        case PhysicalType::kDouble: {
          double x = va.AsDouble(), y = vb.AsDouble();
          cmp = x < y ? -1 : (x > y ? 1 : 0);
          break;
        }
        case PhysicalType::kInt64: {
          int64_t x = va.int64(), y = vb.int64();
          cmp = x < y ? -1 : (x > y ? 1 : 0);
          break;
        }
      }
    }
    if (cmp != 0) return key.ascending ? cmp : -cmp;
  }
  return 0;
}

int64_t SortOperator::MaterializedBytes() const {
  return static_cast<int64_t>(
      rows_.size() * sizeof(std::vector<Value>) +
      rows_.size() *
          static_cast<size_t>(input_->output_schema().num_columns()) *
          sizeof(Value));
}

Status SortOperator::OpenImpl() {
  rows_.clear();
  rows_sorted_ = 0;
  emit_pos_ = 0;
  if (mem_ == nullptr && ctx_->memory_tracker != nullptr) {
    mem_ = std::make_unique<MemoryTracker>(name(), "operator",
                                           ctx_->memory_tracker);
  }
  reservation_.Reset(mem_.get());
  output_ = std::make_unique<Batch>(input_->output_schema(), ctx_->batch_size);
  VSTORE_RETURN_IF_ERROR(input_->Open());

  auto less = [this](const std::vector<Value>& a,
                     const std::vector<Value>& b) {
    return CompareRowsOnKeys(a, b, keys_) < 0;
  };

  for (;;) {
    VSTORE_ASSIGN_OR_RETURN(Batch * batch, input_->Next());
    if (batch == nullptr) break;
    const uint8_t* active = batch->active();
    for (int64_t i = 0; i < batch->num_rows(); ++i) {
      if (!active[i]) continue;
      ++rows_sorted_;
      rows_.push_back(batch->GetActiveRow(i));
      // Top-N: keep a bounded working set — push-down heap semantics via
      // periodic shrink keeps memory at O(2 * limit).
      if (limit_ >= 0 &&
          static_cast<int64_t>(rows_.size()) >= 2 * std::max<int64_t>(limit_, 1)) {
        std::nth_element(rows_.begin(),
                         rows_.begin() + static_cast<long>(limit_),
                         rows_.end(), less);
        rows_.resize(static_cast<size_t>(limit_));
      }
    }
    reservation_.Set(MaterializedBytes());
  }

  RecordPeakMemory(MaterializedBytes());
  std::sort(rows_.begin(), rows_.end(), less);
  if (limit_ >= 0 && static_cast<int64_t>(rows_.size()) > limit_) {
    rows_.resize(static_cast<size_t>(limit_));
  }
  reservation_.Set(MaterializedBytes());
  return Status::OK();
}

void SortOperator::CloseImpl() {
  RecordMemoryTracker(mem_.get());
  rows_.clear();
  rows_.shrink_to_fit();
  reservation_.Clear();
  output_.reset();
  input_->Close();
}

Result<Batch*> SortOperator::NextImpl() {
  if (emit_pos_ >= rows_.size()) return static_cast<Batch*>(nullptr);
  output_->Reset();
  int64_t out_row = 0;
  while (emit_pos_ < rows_.size() && out_row < output_->capacity()) {
    const std::vector<Value>& row = rows_[emit_pos_++];
    for (int c = 0; c < output_->num_columns(); ++c) {
      output_->column(c).SetValue(out_row, row[static_cast<size_t>(c)],
                                  output_->arena());
    }
    ++out_row;
  }
  output_->set_num_rows(out_row);
  output_->ActivateAll();
  return output_.get();
}

}  // namespace vstore
