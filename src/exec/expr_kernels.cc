#include "exec/expr_kernels.h"

#include <algorithm>
#include <cstring>

#include "common/hash.h"
#include "common/int_arith.h"
#include "common/metrics.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define VSTORE_KERNELS_X86 1
#endif

namespace vstore {
namespace kernels {

namespace {

// Counts kernel dispatches per tier so benchmarks and sys.metrics can show
// how often the AVX2 bodies actually run.
simd::Level DispatchLevel() {
  static Counter* scalar = MetricsRegistry::Global().GetCounter(
      "vstore_simd_dispatch_total", "level", "scalar");
  static Counter* avx2 = MetricsRegistry::Global().GetCounter(
      "vstore_simd_dispatch_total", "level", "avx2");
  simd::Level level = simd::Active();
  (level == simd::Level::kAVX2 ? avx2 : scalar)->Increment();
  return level;
}

// --- Scalar bodies --------------------------------------------------------
// The scalar forms are the semantic reference: each comparison spells out
// ApplyCompare(op, three_way(a, b)) so the double forms keep the engine's
// NaN behaviour (unordered compares as "equal").

void CmpI64Scalar(CompareOp op, const int64_t* a, const int64_t* b, int64_t n,
                  int64_t* res) {
  switch (op) {
    case CompareOp::kEq:
      for (int64_t i = 0; i < n; ++i) res[i] = a[i] == b[i];
      break;
    case CompareOp::kNe:
      for (int64_t i = 0; i < n; ++i) res[i] = a[i] != b[i];
      break;
    case CompareOp::kLt:
      for (int64_t i = 0; i < n; ++i) res[i] = a[i] < b[i];
      break;
    case CompareOp::kLe:
      for (int64_t i = 0; i < n; ++i) res[i] = a[i] <= b[i];
      break;
    case CompareOp::kGt:
      for (int64_t i = 0; i < n; ++i) res[i] = a[i] > b[i];
      break;
    case CompareOp::kGe:
      for (int64_t i = 0; i < n; ++i) res[i] = a[i] >= b[i];
      break;
  }
}

void CmpF64Scalar(CompareOp op, const double* a, const double* b, int64_t n,
                  int64_t* res) {
  switch (op) {
    case CompareOp::kEq:
      for (int64_t i = 0; i < n; ++i) res[i] = !(a[i] < b[i]) & !(a[i] > b[i]);
      break;
    case CompareOp::kNe:
      for (int64_t i = 0; i < n; ++i) res[i] = (a[i] < b[i]) | (a[i] > b[i]);
      break;
    case CompareOp::kLt:
      for (int64_t i = 0; i < n; ++i) res[i] = a[i] < b[i];
      break;
    case CompareOp::kLe:
      for (int64_t i = 0; i < n; ++i) res[i] = !(a[i] > b[i]);
      break;
    case CompareOp::kGt:
      for (int64_t i = 0; i < n; ++i) res[i] = a[i] > b[i];
      break;
    case CompareOp::kGe:
      for (int64_t i = 0; i < n; ++i) res[i] = !(a[i] < b[i]);
      break;
  }
}

void ArithI64Scalar(ArithOp op, const int64_t* a, const int64_t* b, int64_t n,
                    int64_t* res, uint8_t* valid) {
  switch (op) {
    case ArithOp::kAdd:
      for (int64_t i = 0; i < n; ++i) res[i] = WrapAdd(a[i], b[i]);
      break;
    case ArithOp::kSub:
      for (int64_t i = 0; i < n; ++i) res[i] = WrapSub(a[i], b[i]);
      break;
    case ArithOp::kMul:
      for (int64_t i = 0; i < n; ++i) res[i] = WrapMul(a[i], b[i]);
      break;
    case ArithOp::kDiv:
      for (int64_t i = 0; i < n; ++i) {
        valid[i] &= b[i] != 0 ? 1 : 0;
        res[i] = b[i] != 0 ? WrapDiv(a[i], b[i]) : 0;
      }
      break;
  }
}

void ArithF64Scalar(ArithOp op, const double* a, const double* b, int64_t n,
                    double* res, uint8_t* valid) {
  switch (op) {
    case ArithOp::kAdd:
      for (int64_t i = 0; i < n; ++i) res[i] = a[i] + b[i];
      break;
    case ArithOp::kSub:
      for (int64_t i = 0; i < n; ++i) res[i] = a[i] - b[i];
      break;
    case ArithOp::kMul:
      for (int64_t i = 0; i < n; ++i) res[i] = a[i] * b[i];
      break;
    case ArithOp::kDiv:
      for (int64_t i = 0; i < n; ++i) {
        valid[i] &= b[i] != 0.0 ? 1 : 0;
        res[i] = b[i] != 0.0 ? a[i] / b[i] : 0.0;
      }
      break;
  }
}

void BoolAndOrScalar(BoolOp op, const int64_t* a, const int64_t* b, int64_t n,
                     int64_t* res) {
  if (op == BoolOp::kAnd) {
    for (int64_t i = 0; i < n; ++i) res[i] = (a[i] != 0) & (b[i] != 0);
  } else {
    for (int64_t i = 0; i < n; ++i) res[i] = (a[i] != 0) | (b[i] != 0);
  }
}

void BoolNotScalar(const int64_t* a, int64_t n, int64_t* res) {
  for (int64_t i = 0; i < n; ++i) res[i] = a[i] == 0;
}

void CmpI64ConstMaskScalar(CompareOp op, const int64_t* a, int64_t b,
                           int64_t n, uint8_t* verdict) {
  switch (op) {
    case CompareOp::kEq:
      for (int64_t i = 0; i < n; ++i) verdict[i] = a[i] == b;
      break;
    case CompareOp::kNe:
      for (int64_t i = 0; i < n; ++i) verdict[i] = a[i] != b;
      break;
    case CompareOp::kLt:
      for (int64_t i = 0; i < n; ++i) verdict[i] = a[i] < b;
      break;
    case CompareOp::kLe:
      for (int64_t i = 0; i < n; ++i) verdict[i] = a[i] <= b;
      break;
    case CompareOp::kGt:
      for (int64_t i = 0; i < n; ++i) verdict[i] = a[i] > b;
      break;
    case CompareOp::kGe:
      for (int64_t i = 0; i < n; ++i) verdict[i] = a[i] >= b;
      break;
  }
}

void CmpF64ConstMaskScalar(CompareOp op, const double* a, double b, int64_t n,
                           uint8_t* verdict) {
  switch (op) {
    case CompareOp::kEq:
      for (int64_t i = 0; i < n; ++i) verdict[i] = !(a[i] < b) & !(a[i] > b);
      break;
    case CompareOp::kNe:
      for (int64_t i = 0; i < n; ++i) verdict[i] = (a[i] < b) | (a[i] > b);
      break;
    case CompareOp::kLt:
      for (int64_t i = 0; i < n; ++i) verdict[i] = a[i] < b;
      break;
    case CompareOp::kLe:
      for (int64_t i = 0; i < n; ++i) verdict[i] = !(a[i] > b);
      break;
    case CompareOp::kGt:
      for (int64_t i = 0; i < n; ++i) verdict[i] = a[i] > b;
      break;
    case CompareOp::kGe:
      for (int64_t i = 0; i < n; ++i) verdict[i] = !(a[i] < b);
      break;
  }
}

void HashCombineColumnScalar(const uint64_t* bits, const uint8_t* valid,
                             uint64_t null_tag, int64_t n, uint64_t* out) {
  for (int64_t i = 0; i < n; ++i) {
    uint64_t h = valid[i] ? HashInt64(bits[i]) : null_tag;
    out[i] = HashCombine(out[i], h);
  }
}

#ifdef VSTORE_KERNELS_X86

// --- AVX2 bodies ----------------------------------------------------------
// Each body processes 4 lanes per iteration and finishes the tail with the
// scalar formulas, so results are bit-identical to the scalar kernels.

__attribute__((target("avx2"))) inline __m256i Mul64(__m256i a, __m256i b) {
  // 64x64->64 multiply from 32-bit pieces (AVX2 has no vpmullq):
  // lo(a)*lo(b) + ((lo(a)*hi(b) + hi(a)*lo(b)) << 32).
  __m256i bswap = _mm256_shuffle_epi32(b, 0xB1);
  __m256i prodlh = _mm256_mullo_epi32(a, bswap);
  __m256i zero = _mm256_setzero_si256();
  __m256i prodlh2 = _mm256_hadd_epi32(prodlh, zero);
  __m256i prodlh3 = _mm256_shuffle_epi32(prodlh2, 0x73);
  __m256i prodll = _mm256_mul_epu32(a, b);
  return _mm256_add_epi64(prodll, prodlh3);
}

__attribute__((target("avx2"))) inline __m256i CmpMaskI64(CompareOp op,
                                                          __m256i va,
                                                          __m256i vb) {
  const __m256i ones = _mm256_set1_epi64x(-1);
  switch (op) {
    case CompareOp::kEq:
      return _mm256_cmpeq_epi64(va, vb);
    case CompareOp::kNe:
      return _mm256_xor_si256(_mm256_cmpeq_epi64(va, vb), ones);
    case CompareOp::kLt:
      return _mm256_cmpgt_epi64(vb, va);
    case CompareOp::kLe:
      return _mm256_xor_si256(_mm256_cmpgt_epi64(va, vb), ones);
    case CompareOp::kGt:
      return _mm256_cmpgt_epi64(va, vb);
    case CompareOp::kGe:
      return _mm256_xor_si256(_mm256_cmpgt_epi64(vb, va), ones);
  }
  return _mm256_setzero_si256();
}

__attribute__((target("avx2"))) inline __m256d CmpMaskF64(CompareOp op,
                                                          __m256d va,
                                                          __m256d vb) {
  // Mirrors ApplyCompare over the three-way ordering: unordered (NaN) pairs
  // have three-way 0, so kEq/kLe/kGe are true and kNe/kLt/kGt false.
  switch (op) {
    case CompareOp::kEq:
      return _mm256_cmp_pd(va, vb, _CMP_EQ_UQ);
    case CompareOp::kNe:
      return _mm256_cmp_pd(va, vb, _CMP_NEQ_OQ);
    case CompareOp::kLt:
      return _mm256_cmp_pd(va, vb, _CMP_LT_OQ);
    case CompareOp::kLe:
      return _mm256_cmp_pd(va, vb, _CMP_NGT_UQ);
    case CompareOp::kGt:
      return _mm256_cmp_pd(va, vb, _CMP_GT_OQ);
    case CompareOp::kGe:
      return _mm256_cmp_pd(va, vb, _CMP_NLT_UQ);
  }
  return _mm256_setzero_pd();
}

__attribute__((target("avx2"))) void CmpI64Avx2(CompareOp op, const int64_t* a,
                                                const int64_t* b, int64_t n,
                                                int64_t* res) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    __m256i m = CmpMaskI64(op, va, vb);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(res + i),
                        _mm256_srli_epi64(m, 63));
  }
  if (i < n) CmpI64Scalar(op, a + i, b + i, n - i, res + i);
}

__attribute__((target("avx2"))) void CmpF64Avx2(CompareOp op, const double* a,
                                                const double* b, int64_t n,
                                                int64_t* res) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d va = _mm256_loadu_pd(a + i);
    __m256d vb = _mm256_loadu_pd(b + i);
    __m256i m = _mm256_castpd_si256(CmpMaskF64(op, va, vb));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(res + i),
                        _mm256_srli_epi64(m, 63));
  }
  if (i < n) CmpF64Scalar(op, a + i, b + i, n - i, res + i);
}

__attribute__((target("avx2"))) void ArithI64Avx2(ArithOp op, const int64_t* a,
                                                  const int64_t* b, int64_t n,
                                                  int64_t* res,
                                                  uint8_t* valid) {
  if (op == ArithOp::kDiv) {  // division stays scalar (per-lane guards)
    ArithI64Scalar(op, a, b, n, res, valid);
    return;
  }
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    __m256i r = op == ArithOp::kAdd   ? _mm256_add_epi64(va, vb)
                : op == ArithOp::kSub ? _mm256_sub_epi64(va, vb)
                                      : Mul64(va, vb);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(res + i), r);
  }
  if (i < n) ArithI64Scalar(op, a + i, b + i, n - i, res + i, valid + i);
}

__attribute__((target("avx2"))) void ArithF64Avx2(ArithOp op, const double* a,
                                                  const double* b, int64_t n,
                                                  double* res,
                                                  uint8_t* valid) {
  int64_t i = 0;
  if (op == ArithOp::kDiv) {
    const __m256d zero = _mm256_setzero_pd();
    for (; i + 4 <= n; i += 4) {
      __m256d va = _mm256_loadu_pd(a + i);
      __m256d vb = _mm256_loadu_pd(b + i);
      __m256d nz = _mm256_cmp_pd(vb, zero, _CMP_NEQ_UQ);
      _mm256_storeu_pd(res + i, _mm256_and_pd(_mm256_div_pd(va, vb), nz));
      int m = _mm256_movemask_pd(nz);
      valid[i + 0] &= static_cast<uint8_t>(m & 1);
      valid[i + 1] &= static_cast<uint8_t>((m >> 1) & 1);
      valid[i + 2] &= static_cast<uint8_t>((m >> 2) & 1);
      valid[i + 3] &= static_cast<uint8_t>((m >> 3) & 1);
    }
  } else {
    for (; i + 4 <= n; i += 4) {
      __m256d va = _mm256_loadu_pd(a + i);
      __m256d vb = _mm256_loadu_pd(b + i);
      __m256d r = op == ArithOp::kAdd   ? _mm256_add_pd(va, vb)
                  : op == ArithOp::kSub ? _mm256_sub_pd(va, vb)
                                        : _mm256_mul_pd(va, vb);
      _mm256_storeu_pd(res + i, r);
    }
  }
  if (i < n) ArithF64Scalar(op, a + i, b + i, n - i, res + i, valid + i);
}

__attribute__((target("avx2"))) void BoolAndOrAvx2(BoolOp op, const int64_t* a,
                                                   const int64_t* b, int64_t n,
                                                   int64_t* res) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i ones = _mm256_set1_epi64x(-1);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i za = _mm256_cmpeq_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)), zero);
    __m256i zb = _mm256_cmpeq_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)), zero);
    __m256i m = op == BoolOp::kAnd
                    ? _mm256_andnot_si256(za, _mm256_andnot_si256(zb, ones))
                    : _mm256_xor_si256(_mm256_and_si256(za, zb), ones);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(res + i),
                        _mm256_srli_epi64(m, 63));
  }
  if (i < n) BoolAndOrScalar(op, a + i, b + i, n - i, res + i);
}

__attribute__((target("avx2"))) void BoolNotAvx2(const int64_t* a, int64_t n,
                                                 int64_t* res) {
  const __m256i zero = _mm256_setzero_si256();
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i m = _mm256_cmpeq_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)), zero);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(res + i),
                        _mm256_srli_epi64(m, 63));
  }
  if (i < n) BoolNotScalar(a + i, n - i, res + i);
}

// Expands the low 8 bits of `m` into 8 verdict bytes (0 or 1) written with a
// single unaligned store. spread puts bit i of m at bit position i of byte i;
// the byte-wise add of 0x7f moves any set bit into the byte's sign position
// (no cross-byte carry: max byte value is 0x80 + 0x7f = 0xff), and the final
// shift+mask normalizes each byte to 0/1.
inline void ExpandMask8(unsigned m, uint8_t* out) {
  uint64_t spread =
      (static_cast<uint64_t>(m) * 0x0101010101010101ULL) &
      0x8040201008040201ULL;
  uint64_t bytes =
      ((spread + 0x7f7f7f7f7f7f7f7fULL) >> 7) & 0x0101010101010101ULL;
  std::memcpy(out, &bytes, sizeof(bytes));
}

__attribute__((target("avx2"))) void CmpI64ConstMaskAvx2(CompareOp op,
                                                         const int64_t* a,
                                                         int64_t b, int64_t n,
                                                         uint8_t* verdict) {
  const __m256i vb = _mm256_set1_epi64x(b);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i lo =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i hi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i + 4));
    unsigned m =
        static_cast<unsigned>(
            _mm256_movemask_pd(_mm256_castsi256_pd(CmpMaskI64(op, lo, vb)))) |
        (static_cast<unsigned>(_mm256_movemask_pd(
             _mm256_castsi256_pd(CmpMaskI64(op, hi, vb))))
         << 4);
    ExpandMask8(m, verdict + i);
  }
  if (i < n) CmpI64ConstMaskScalar(op, a + i, b, n - i, verdict + i);
}

__attribute__((target("avx2"))) void CmpF64ConstMaskAvx2(CompareOp op,
                                                         const double* a,
                                                         double b, int64_t n,
                                                         uint8_t* verdict) {
  const __m256d vb = _mm256_set1_pd(b);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    unsigned m =
        static_cast<unsigned>(
            _mm256_movemask_pd(CmpMaskF64(op, _mm256_loadu_pd(a + i), vb))) |
        (static_cast<unsigned>(_mm256_movemask_pd(
             CmpMaskF64(op, _mm256_loadu_pd(a + i + 4), vb)))
         << 4);
    ExpandMask8(m, verdict + i);
  }
  if (i < n) CmpF64ConstMaskScalar(op, a + i, b, n - i, verdict + i);
}

__attribute__((target("avx2"))) void HashCombineColumnAvx2(
    const uint64_t* bits, const uint8_t* valid, uint64_t null_tag, int64_t n,
    uint64_t* out) {
  const __m256i c1 = _mm256_set1_epi64x(
      static_cast<int64_t>(0xff51afd7ed558ccdULL));
  const __m256i c2 = _mm256_set1_epi64x(
      static_cast<int64_t>(0xc4ceb9fe1a85ec53ULL));
  const __m256i tag = _mm256_set1_epi64x(static_cast<int64_t>(null_tag));
  const __m256i golden = _mm256_set1_epi64x(
      static_cast<int64_t>(0x9e3779b97f4a7c15ULL));
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bits + i));
    // Murmur3 finalizer.
    x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
    x = Mul64(x, c1);
    x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
    x = Mul64(x, c2);
    x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
    __m256i vm = _mm256_set_epi64x(valid[i + 3] ? -1 : 0, valid[i + 2] ? -1 : 0,
                                   valid[i + 1] ? -1 : 0,
                                   valid[i + 0] ? -1 : 0);
    x = _mm256_blendv_epi8(tag, x, vm);
    // HashCombine(h, x) = h ^ (x + golden + (h << 12) + (h >> 4)).
    __m256i h =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(out + i));
    __m256i t = _mm256_add_epi64(
        x, _mm256_add_epi64(golden, _mm256_add_epi64(_mm256_slli_epi64(h, 12),
                                                     _mm256_srli_epi64(h, 4))));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_xor_si256(h, t));
  }
  if (i < n) HashCombineColumnScalar(bits + i, valid + i, null_tag, n - i,
                                     out + i);
}

#endif  // VSTORE_KERNELS_X86

}  // namespace

// --- Dispatch entry points ------------------------------------------------

void ByteAnd(const uint8_t* a, const uint8_t* b, int64_t n, uint8_t* out) {
  for (int64_t i = 0; i < n; ++i) out[i] = a[i] & b[i];
}

void CmpI64(CompareOp op, const int64_t* a, const int64_t* b, int64_t n,
            int64_t* res) {
#ifdef VSTORE_KERNELS_X86
  if (DispatchLevel() == simd::Level::kAVX2) {
    CmpI64Avx2(op, a, b, n, res);
    return;
  }
#else
  DispatchLevel();
#endif
  CmpI64Scalar(op, a, b, n, res);
}

void CmpF64(CompareOp op, const double* a, const double* b, int64_t n,
            int64_t* res) {
#ifdef VSTORE_KERNELS_X86
  if (DispatchLevel() == simd::Level::kAVX2) {
    CmpF64Avx2(op, a, b, n, res);
    return;
  }
#else
  DispatchLevel();
#endif
  CmpF64Scalar(op, a, b, n, res);
}

void CmpStr(CompareOp op, const std::string_view* a, const std::string_view* b,
            int64_t n, int64_t* res) {
  for (int64_t i = 0; i < n; ++i) {
    int c = a[i].compare(b[i]);
    res[i] = ApplyCompare(op, c < 0 ? -1 : (c > 0 ? 1 : 0));
  }
}

void ArithI64(ArithOp op, const int64_t* a, const int64_t* b, int64_t n,
              int64_t* res, uint8_t* valid) {
#ifdef VSTORE_KERNELS_X86
  if (DispatchLevel() == simd::Level::kAVX2) {
    ArithI64Avx2(op, a, b, n, res, valid);
    return;
  }
#else
  DispatchLevel();
#endif
  ArithI64Scalar(op, a, b, n, res, valid);
}

void ArithF64(ArithOp op, const double* a, const double* b, int64_t n,
              double* res, uint8_t* valid) {
#ifdef VSTORE_KERNELS_X86
  if (DispatchLevel() == simd::Level::kAVX2) {
    ArithF64Avx2(op, a, b, n, res, valid);
    return;
  }
#else
  DispatchLevel();
#endif
  ArithF64Scalar(op, a, b, n, res, valid);
}

void BoolAndOr(BoolOp op, const int64_t* a, const int64_t* b, int64_t n,
               int64_t* res) {
#ifdef VSTORE_KERNELS_X86
  if (DispatchLevel() == simd::Level::kAVX2) {
    BoolAndOrAvx2(op, a, b, n, res);
    return;
  }
#else
  DispatchLevel();
#endif
  BoolAndOrScalar(op, a, b, n, res);
}

void BoolNot(const int64_t* a, int64_t n, int64_t* res) {
#ifdef VSTORE_KERNELS_X86
  if (DispatchLevel() == simd::Level::kAVX2) {
    BoolNotAvx2(a, n, res);
    return;
  }
#else
  DispatchLevel();
#endif
  BoolNotScalar(a, n, res);
}

void CastI64ToF64(const int64_t* a, int64_t n, double* res) {
  for (int64_t i = 0; i < n; ++i) res[i] = static_cast<double>(a[i]);
}

void YearFromDaysKernel(const int64_t* a, int64_t n, int64_t* res) {
  for (int64_t i = 0; i < n; ++i) res[i] = YearFromDays(a[i]);
}

void CmpI64ConstMask(CompareOp op, const int64_t* a, int64_t b, int64_t n,
                     uint8_t* verdict) {
#ifdef VSTORE_KERNELS_X86
  if (DispatchLevel() == simd::Level::kAVX2) {
    CmpI64ConstMaskAvx2(op, a, b, n, verdict);
    return;
  }
#else
  DispatchLevel();
#endif
  CmpI64ConstMaskScalar(op, a, b, n, verdict);
}

void CmpF64ConstMask(CompareOp op, const double* a, double b, int64_t n,
                     uint8_t* verdict) {
#ifdef VSTORE_KERNELS_X86
  if (DispatchLevel() == simd::Level::kAVX2) {
    CmpF64ConstMaskAvx2(op, a, b, n, verdict);
    return;
  }
#else
  DispatchLevel();
#endif
  CmpF64ConstMaskScalar(op, a, b, n, verdict);
}

void HashCombineColumn(const uint64_t* bits, const uint8_t* valid,
                       uint64_t null_tag, int64_t n, uint64_t* out) {
#ifdef VSTORE_KERNELS_X86
  if (DispatchLevel() == simd::Level::kAVX2) {
    HashCombineColumnAvx2(bits, valid, null_tag, n, out);
    return;
  }
#else
  DispatchLevel();
#endif
  HashCombineColumnScalar(bits, valid, null_tag, n, out);
}

void FillU64(uint64_t seed, int64_t n, uint64_t* out) {
  std::fill(out, out + n, seed);
}

}  // namespace kernels
}  // namespace vstore
