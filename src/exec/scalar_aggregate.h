#ifndef VSTORE_EXEC_SCALAR_AGGREGATE_H_
#define VSTORE_EXEC_SCALAR_AGGREGATE_H_

#include <memory>
#include <vector>

#include "exec/aggregate.h"
#include "exec/operator.h"

namespace vstore {

// Aggregation without GROUP BY (one of the paper's newly added batch
// operators). Always produces exactly one row, even for empty input
// (COUNT = 0, other aggregates null), matching SQL.
class ScalarAggregateOperator final : public BatchOperator {
 public:
  ScalarAggregateOperator(BatchOperatorPtr input, std::vector<AggSpec> aggs,
                          ExecContext* ctx);

  const Schema& output_schema() const override { return output_schema_; }
  std::string name() const override { return "ScalarAggregate"; }

 protected:
  Status OpenImpl() override;
  Result<Batch*> NextImpl() override;
  void CloseImpl() override { input_->Close(); }
  std::vector<const BatchOperator*> ProfileInputs() const override {
    return {input_.get()};
  }
  void AppendProfileCounters(OperatorProfile* node) const override {
    node->counters.push_back({"rows_aggregated", rows_aggregated_});
  }

 private:
  struct State {
    double sum_d = 0;
    int64_t sum_i = 0;
    int64_t count = 0;
    double minmax_d = 0;
    int64_t minmax_i = 0;
    std::string minmax_s;
  };

  BatchOperatorPtr input_;
  std::vector<AggSpec> aggs_;
  ExecContext* ctx_;
  Schema output_schema_;
  std::vector<State> states_;
  std::unique_ptr<Batch> output_;
  bool emitted_ = false;
  int64_t rows_aggregated_ = 0;
};

}  // namespace vstore

#endif  // VSTORE_EXEC_SCALAR_AGGREGATE_H_
