#ifndef VSTORE_EXEC_EXPR_PROGRAM_H_
#define VSTORE_EXEC_EXPR_PROGRAM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/memory_tracker.h"
#include "common/status.h"
#include "exec/batch.h"
#include "exec/expression.h"

namespace vstore {

// Plan-time bytecode compilation of expression trees (ROADMAP "bytecode
// compiler" item). An ExprProgram is a flat register-based program produced
// once at operator build time — constant folding, null-safe algebraic
// simplification and common-subexpression elimination happen here — and
// executed per batch by an ExprFrame's tight dispatch loop over the SIMD
// kernels in expr_kernels.h. The tree interpreter (Expr::EvalBatch) remains
// the fallback and the differential oracle: for every batch the program's
// validity bytes are identical to the interpreter's, and value lanes agree
// bit-for-bit wherever valid.
//
// Programs are immutable and shared (a global cache deduplicates by
// structural fingerprint, so repeated plans — e.g. Query Store replays of
// the same fingerprint — compile once); per-operator mutable state lives in
// the ExprFrame, which is what makes sharing safe across parallel exchange
// fragments.

enum class ExprOpCode : uint8_t {
  kCmpI64,     // aux = CompareOp
  kCmpF64,     // aux = CompareOp
  kCmpStr,     // aux = CompareOp
  kArithI64,   // aux = ArithOp (div clears validity on zero divisors)
  kArithF64,   // aux = ArithOp
  kBoolAndOr,  // aux = BoolOp
  kNot,
  kIsNull,
  kYear,
  kStartsWith,  // pool = index into string pool (prefix)
  kCastI64F64,  // int64 -> double promotion
  kIn,          // pool = index into IN-list pool
};

struct ExprInstr {
  ExprOpCode op;
  uint8_t aux = 0;
  uint16_t dst = 0;
  uint16_t a = 0;
  uint16_t b = 0;    // unused for unary ops
  int32_t pool = -1;
};

// A virtual register. Column registers alias the input batch (zero copy);
// const registers are literal splats filled once per frame; temps are
// scratch vectors owned by the frame.
struct ExprRegister {
  enum class Source : uint8_t { kColumn, kConst, kTemp };
  Source source;
  DataType type;
  int column = -1;  // source == kColumn: input batch column index
  Value constant;   // source == kConst
};

class ExprProgram {
 public:
  struct CompileStats {
    int tree_nodes = 0;    // nodes in the (already simplified) input trees
    int folded = 0;        // column-free subtrees folded to constants
    int simplified = 0;    // algebraic rewrites applied
    int cse_hits = 0;      // instructions elided by value numbering
  };

  // Typed IN-list payloads (null list entries are dropped at compile time,
  // matching the interpreter, which skips them per row).
  struct InList {
    std::vector<int64_t> i64;
    std::vector<double> f64;
    std::vector<std::string> str;
  };

  // Compiles `exprs` into one shared program with cross-expression CSE.
  // Returns InvalidArgument for shapes the VM does not support (callers
  // fall back to the interpreter).
  static Result<std::shared_ptr<const ExprProgram>> Compile(
      const std::vector<ExprPtr>& exprs);

  const std::vector<ExprInstr>& instrs() const { return instrs_; }
  const std::vector<ExprRegister>& regs() const { return regs_; }
  // Result register of the k-th compiled expression.
  uint16_t output_reg(size_t k) const { return outputs_[k]; }
  size_t num_outputs() const { return outputs_.size(); }
  const CompileStats& stats() const { return stats_; }

  const std::string& pool_string(int32_t i) const {
    return string_pool_[static_cast<size_t>(i)];
  }
  const InList& pool_in_list(int32_t i) const {
    return in_pool_[static_cast<size_t>(i)];
  }

  // Disassembly, e.g. "r4 <- cmp_i64(lt) r0, r2" — used by tests and
  // debugging.
  std::string ToString() const;

  // Structural fingerprint of an expression (kind, ops, column indices,
  // literal values) — the program cache key.
  static std::string Fingerprint(const std::vector<ExprPtr>& exprs);

 private:
  friend class ExprCompiler;
  ExprProgram() = default;

  std::vector<ExprInstr> instrs_;
  std::vector<ExprRegister> regs_;
  std::vector<uint16_t> outputs_;
  std::vector<std::string> string_pool_;
  std::vector<InList> in_pool_;
  CompileStats stats_;
};

// Per-operator execution state for one program: owns the temp and const
// scratch vectors and runs the dispatch loop. Not thread-safe; each
// operator instance (and thus each parallel fragment) gets its own frame.
class ExprFrame {
 public:
  explicit ExprFrame(std::shared_ptr<const ExprProgram> program);

  // Charges the frame's temp/const scratch vectors against `tracker`
  // (query or fragment tracker; must outlive the frame).
  void SetMemoryTracker(MemoryTracker* tracker);

  // Evaluates every row of `in` (active or not, like Expr::EvalBatch).
  Status Run(const Batch& in);

  // Result vector of the k-th expression after Run(); may alias an input
  // column of the batch passed to Run(). Valid until the next Run().
  const ColumnVector& result(size_t k) const {
    return *slots_[program_->output_reg(k)];
  }

 private:
  void EnsureCapacity(int64_t n);
  void FillConsts(int64_t n);

  std::shared_ptr<const ExprProgram> program_;
  MemoryReservation reservation_;  // scratch vector bytes
  int64_t capacity_ = 0;
  int64_t consts_filled_ = 0;
  // Indexed by register id; null where the register is a batch column.
  std::vector<std::unique_ptr<ColumnVector>> own_;
  // Resolved per Run(): register id -> vector to read (batch column, const
  // splat, or temp).
  std::vector<const ColumnVector*> slots_;
};

// Process-wide program cache keyed by structural fingerprint. Counters:
// vstore_expr_programs_compiled_total / vstore_expr_program_cache_hits_total.
class ExprProgramCache {
 public:
  static ExprProgramCache& Global();

  // Returns a cached or freshly compiled program, or null when compilation
  // is unsupported for these exprs (caller falls back to the interpreter).
  std::shared_ptr<const ExprProgram> GetOrCompile(
      const std::vector<ExprPtr>& exprs);

  int64_t size() const;

 private:
  ExprProgramCache() = default;
  struct Impl;
  Impl* impl() const;
};

}  // namespace vstore

#endif  // VSTORE_EXEC_EXPR_PROGRAM_H_
