#ifndef VSTORE_EXEC_EXPRESSION_H_
#define VSTORE_EXEC_EXPRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/batch.h"
#include "types/compare_op.h"
#include "types/schema.h"
#include "types/value.h"

namespace vstore {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

enum class ExprKind {
  kColumn,
  kLiteral,
  kCompare,
  kArith,
  kBool,  // AND / OR
  kNot,
  kIsNull,
  kYear,
  kStartsWith,
  kIn,
};

enum class ArithOp { kAdd, kSub, kMul, kDiv };
enum class BoolOp { kAnd, kOr };

// Bound scalar expression. Expressions are constructed against a specific
// input schema (column references are resolved to indices at build time)
// and can be evaluated either vectorized over a Batch (batch mode) or one
// row at a time over a std::vector<Value> (row mode) — the same tree drives
// both engines, mirroring how the paper's plans mix modes.
//
// NULL semantics: comparisons and arithmetic are null-strict (null in →
// null out); AND/OR are null-strict too (a simplification of SQL's
// three-valued logic — see README "SQL semantics" note). Filters treat a
// null predicate result as non-qualifying, which matches SQL.
class Expr {
 public:
  virtual ~Expr() = default;

  ExprKind kind() const { return kind_; }
  DataType output_type() const { return output_type_; }

  // Evaluates all in.num_rows() rows (active or not) into `out`, which must
  // have capacity >= in.num_rows(). Strings are allocated from `arena`.
  virtual Status EvalBatch(const Batch& in, Arena* arena,
                           ColumnVector* out) const = 0;

  // Row-at-a-time evaluation for the row-mode engine.
  virtual Status EvalRow(const std::vector<Value>& row, Value* out) const = 0;

  virtual std::string ToString() const = 0;

 protected:
  Expr(ExprKind kind, DataType output_type)
      : kind_(kind), output_type_(output_type) {}

 private:
  ExprKind kind_;
  DataType output_type_;
};

// --- Concrete nodes (exposed for optimizer introspection) ----------------

class ColumnRefExpr final : public Expr {
 public:
  ColumnRefExpr(int index, DataType type, std::string name)
      : Expr(ExprKind::kColumn, type), index_(index), name_(std::move(name)) {}
  int index() const { return index_; }
  const std::string& name() const { return name_; }
  Status EvalBatch(const Batch& in, Arena* arena,
                   ColumnVector* out) const override;
  Status EvalRow(const std::vector<Value>& row, Value* out) const override;
  std::string ToString() const override { return name_; }

 private:
  int index_;
  std::string name_;
};

class LiteralExpr final : public Expr {
 public:
  explicit LiteralExpr(Value value)
      : Expr(ExprKind::kLiteral, value.type()), value_(std::move(value)) {}
  const Value& value() const { return value_; }
  Status EvalBatch(const Batch& in, Arena* arena,
                   ColumnVector* out) const override;
  Status EvalRow(const std::vector<Value>& row, Value* out) const override;
  std::string ToString() const override { return value_.ToString(); }

 private:
  Value value_;
};

class CompareExpr final : public Expr {
 public:
  CompareExpr(CompareOp op, ExprPtr left, ExprPtr right)
      : Expr(ExprKind::kCompare, DataType::kBool),
        op_(op),
        left_(std::move(left)),
        right_(std::move(right)) {}
  CompareOp op() const { return op_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }
  Status EvalBatch(const Batch& in, Arena* arena,
                   ColumnVector* out) const override;
  Status EvalRow(const std::vector<Value>& row, Value* out) const override;
  std::string ToString() const override;

 private:
  CompareOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

class ArithExpr final : public Expr {
 public:
  ArithExpr(ArithOp op, ExprPtr left, ExprPtr right, DataType output_type)
      : Expr(ExprKind::kArith, output_type),
        op_(op),
        left_(std::move(left)),
        right_(std::move(right)) {}
  ArithOp op() const { return op_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }
  Status EvalBatch(const Batch& in, Arena* arena,
                   ColumnVector* out) const override;
  Status EvalRow(const std::vector<Value>& row, Value* out) const override;
  std::string ToString() const override;

 private:
  ArithOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

class BoolExpr final : public Expr {
 public:
  BoolExpr(BoolOp op, ExprPtr left, ExprPtr right)
      : Expr(ExprKind::kBool, DataType::kBool),
        op_(op),
        left_(std::move(left)),
        right_(std::move(right)) {}
  BoolOp op() const { return op_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }
  Status EvalBatch(const Batch& in, Arena* arena,
                   ColumnVector* out) const override;
  Status EvalRow(const std::vector<Value>& row, Value* out) const override;
  std::string ToString() const override;

 private:
  BoolOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

class NotExpr final : public Expr {
 public:
  explicit NotExpr(ExprPtr input)
      : Expr(ExprKind::kNot, DataType::kBool), input_(std::move(input)) {}
  const ExprPtr& input() const { return input_; }
  Status EvalBatch(const Batch& in, Arena* arena,
                   ColumnVector* out) const override;
  Status EvalRow(const std::vector<Value>& row, Value* out) const override;
  std::string ToString() const override { return "NOT " + input_->ToString(); }

 private:
  ExprPtr input_;
};

class IsNullExpr final : public Expr {
 public:
  explicit IsNullExpr(ExprPtr input)
      : Expr(ExprKind::kIsNull, DataType::kBool), input_(std::move(input)) {}
  const ExprPtr& input() const { return input_; }
  Status EvalBatch(const Batch& in, Arena* arena,
                   ColumnVector* out) const override;
  Status EvalRow(const std::vector<Value>& row, Value* out) const override;
  std::string ToString() const override {
    return input_->ToString() + " IS NULL";
  }

 private:
  ExprPtr input_;
};

// EXTRACT(YEAR FROM date_column).
class YearExpr final : public Expr {
 public:
  explicit YearExpr(ExprPtr input)
      : Expr(ExprKind::kYear, DataType::kInt64), input_(std::move(input)) {}
  const ExprPtr& input() const { return input_; }
  Status EvalBatch(const Batch& in, Arena* arena,
                   ColumnVector* out) const override;
  Status EvalRow(const std::vector<Value>& row, Value* out) const override;
  std::string ToString() const override {
    return "YEAR(" + input_->ToString() + ")";
  }

 private:
  ExprPtr input_;
};

// LIKE 'prefix%'.
class StartsWithExpr final : public Expr {
 public:
  StartsWithExpr(ExprPtr input, std::string prefix)
      : Expr(ExprKind::kStartsWith, DataType::kBool),
        input_(std::move(input)),
        prefix_(std::move(prefix)) {}
  const ExprPtr& input() const { return input_; }
  const std::string& prefix() const { return prefix_; }
  Status EvalBatch(const Batch& in, Arena* arena,
                   ColumnVector* out) const override;
  Status EvalRow(const std::vector<Value>& row, Value* out) const override;
  std::string ToString() const override {
    return input_->ToString() + " LIKE '" + prefix_ + "%'";
  }

 private:
  ExprPtr input_;
  std::string prefix_;
};

// expr IN (v1, v2, ...).
class InExpr final : public Expr {
 public:
  InExpr(ExprPtr input, std::vector<Value> values)
      : Expr(ExprKind::kIn, DataType::kBool),
        input_(std::move(input)),
        values_(std::move(values)) {}
  const ExprPtr& input() const { return input_; }
  const std::vector<Value>& values() const { return values_; }
  Status EvalBatch(const Batch& in, Arena* arena,
                   ColumnVector* out) const override;
  Status EvalRow(const std::vector<Value>& row, Value* out) const override;
  std::string ToString() const override;

 private:
  ExprPtr input_;
  std::vector<Value> values_;
};

// --- Builder functions ----------------------------------------------------
namespace expr {

// Resolves `name` in `schema`; aborts if absent (build-time error).
ExprPtr Column(const Schema& schema, const std::string& name);
ExprPtr ColumnAt(const Schema& schema, int index);
ExprPtr Lit(Value value);

ExprPtr Cmp(CompareOp op, ExprPtr left, ExprPtr right);
inline ExprPtr Eq(ExprPtr l, ExprPtr r) { return Cmp(CompareOp::kEq, l, r); }
inline ExprPtr Ne(ExprPtr l, ExprPtr r) { return Cmp(CompareOp::kNe, l, r); }
inline ExprPtr Lt(ExprPtr l, ExprPtr r) { return Cmp(CompareOp::kLt, l, r); }
inline ExprPtr Le(ExprPtr l, ExprPtr r) { return Cmp(CompareOp::kLe, l, r); }
inline ExprPtr Gt(ExprPtr l, ExprPtr r) { return Cmp(CompareOp::kGt, l, r); }
inline ExprPtr Ge(ExprPtr l, ExprPtr r) { return Cmp(CompareOp::kGe, l, r); }

ExprPtr Arith(ArithOp op, ExprPtr left, ExprPtr right);
inline ExprPtr Add(ExprPtr l, ExprPtr r) { return Arith(ArithOp::kAdd, l, r); }
inline ExprPtr Sub(ExprPtr l, ExprPtr r) { return Arith(ArithOp::kSub, l, r); }
inline ExprPtr Mul(ExprPtr l, ExprPtr r) { return Arith(ArithOp::kMul, l, r); }
inline ExprPtr Div(ExprPtr l, ExprPtr r) { return Arith(ArithOp::kDiv, l, r); }

ExprPtr And(ExprPtr left, ExprPtr right);
ExprPtr Or(ExprPtr left, ExprPtr right);
ExprPtr Not(ExprPtr input);
ExprPtr IsNull(ExprPtr input);
ExprPtr Year(ExprPtr input);
ExprPtr StartsWith(ExprPtr input, std::string prefix);
ExprPtr In(ExprPtr input, std::vector<Value> values);

// left >= lo AND left <= hi.
ExprPtr Between(ExprPtr input, Value lo, Value hi);

// Collects the conjuncts of a tree of ANDs.
void CollectConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out);

}  // namespace expr

}  // namespace vstore

#endif  // VSTORE_EXEC_EXPRESSION_H_
