#ifndef VSTORE_EXEC_SCAN_H_
#define VSTORE_EXEC_SCAN_H_

#include <memory>
#include <vector>

#include "exec/bloom_filter.h"
#include "exec/operator.h"
#include "storage/column_store.h"
#include "types/compare_op.h"

namespace vstore {

// A sargable predicate pushed into the scan: `column OP value` with the
// column given as an index into the table schema. Used both for segment
// elimination (min/max metadata) and for vectorized row filtering during
// decode.
struct ScanPredicate {
  int column;
  CompareOp op;
  Value value;
};

// A bitmap (Bloom) filter pushed from a hash join build side onto one of
// the scan's columns (paper §5.2). The filter outlives the scan.
struct BloomFilterSpec {
  int column;
  const BloomFilter* filter;
};

// Vectorized scan over a column store: iterates compressed row groups
// (skipping those eliminated by segment metadata), decodes only the needed
// columns batch by batch, masks deleted rows via the delete bitmap, applies
// pushed predicates and bitmap filters, then merges delta-store rows.
class ColumnStoreScanOperator final : public BatchOperator {
 public:
  struct Options {
    // Table column indices to output, in order. Empty = all columns.
    std::vector<int> projection;
    std::vector<ScanPredicate> predicates;
    std::vector<BloomFilterSpec> bloom_filters;
    // Scan delta stores after compressed groups (fragment 0 only under
    // exchange parallelism).
    bool include_deltas = true;
    // Bernoulli row sampling (paper: sampling support for statistics
    // creation): each row qualifies with this probability, decided by a
    // deterministic per-row hash so repeated scans see the same sample.
    double sample_fraction = 1.0;
    uint64_t sample_seed = 0x5eed;
    // Row-group range [group_begin, group_end) for parallel fragments;
    // group_end == -1 means all groups.
    int64_t group_begin = 0;
    int64_t group_end = -1;
    // Table version to scan. When null the operator takes its own snapshot
    // at Open. The planner sets this so every fragment of a parallel plan
    // (and the group striping it computed) sees one consistent version.
    TableSnapshot snapshot;
    // Display label for profiles, usually the table name.
    std::string label;
  };

  ColumnStoreScanOperator(const ColumnStoreTable* table, Options options,
                          ExecContext* ctx);

  const Schema& output_schema() const override { return output_schema_; }
  std::string name() const override {
    return options_.label.empty() ? "ColumnStoreScan"
                                  : "ColumnStoreScan(" + options_.label + ")";
  }

 protected:
  Status OpenImpl() override;
  Result<Batch*> NextImpl() override;
  void CloseImpl() override;
  void AppendProfileCounters(OperatorProfile* node) const override;

 private:
  // Advances to the next row group that survives segment elimination.
  // Returns false when compressed groups are exhausted.
  bool AdvanceGroup();
  // Fills output_ from the current group starting at offset_.
  Status FillFromGroup();
  // Fills output_ from delta stores. Returns rows produced.
  Result<int64_t> FillFromDeltas();
  // Applies `pred` against decoded vector `cv`, ANDing into the active mask.
  void ApplyPredicate(const ScanPredicate& pred, const ColumnVector& cv,
                      Batch* batch) const;
  // Applies a string equality predicate directly on dictionary codes
  // (paper §5: predicate evaluation on compressed data) — the strings are
  // never materialized. `target_valid` is false when the value provably
  // does not occur in this segment.
  void ApplyCodePredicate(const ScanPredicate& pred, const uint64_t* codes,
                          const uint8_t* validity, bool target_valid,
                          uint64_t target_code, Batch* batch) const;
  void ApplyBloom(const BloomFilterSpec& spec, const ColumnVector& cv,
                  Batch* batch) const;
  // True if this predicate slot can be evaluated on dictionary codes
  // without materializing strings.
  bool SlotUsesCodeEval(size_t slot) const;

  const ColumnStoreTable* table_;
  Options options_;
  ExecContext* ctx_;
  Schema output_schema_;

  // Column decode plan: all distinct table columns we must decode, and for
  // each, where it lands (output batch column or scratch slot).
  std::vector<int> decode_columns_;     // table column indices
  std::vector<int> decode_to_output_;   // >=0: output column; -1: scratch
  std::vector<int> pred_decode_slot_;   // per predicate: index into decode_columns_
  std::vector<int> bloom_decode_slot_;  // per bloom spec
  // Slots needed to evaluate predicates/blooms; the rest are decoded
  // lazily, only for surviving rows (lazy materialization).
  std::vector<bool> early_slot_;

  // Pinned table version: the scan reads it lock-free; concurrent DML and
  // tuple-mover passes install successor versions and never touch it.
  TableSnapshot snapshot_;
  std::unique_ptr<Batch> output_;
  std::vector<std::unique_ptr<ColumnVector>> scratch_;
  std::vector<uint64_t> code_scratch_;     // code-space predicate evaluation
  std::vector<uint8_t> validity_scratch_;
  // Per-row 0/1 verdicts from the SIMD compare-against-constant kernels,
  // ANDed into the active mask (mutable: ApplyPredicate is const).
  mutable std::vector<uint8_t> verdict_scratch_;

  int64_t group_ = 0;       // current row group
  int64_t group_limit_ = 0;
  int64_t offset_ = 0;      // row offset within current group
  bool in_group_ = false;   // currently positioned inside a surviving group
  int64_t delta_index_ = 0; // current delta store
  bool deltas_done_ = false;
  std::vector<std::vector<Value>> delta_rows_;  // staging for current store
  int64_t delta_row_pos_ = 0;
  bool delta_loaded_ = false;

  // Per-operator profile counters mirroring the query-global ExecStats.
  // Mutable: ApplyBloom/ApplyPredicate are const helpers.
  int64_t rows_scanned_ = 0;
  int64_t delta_rows_scanned_ = 0;
  int64_t groups_scanned_ = 0;
  int64_t groups_eliminated_ = 0;
  mutable int64_t bloom_rows_dropped_ = 0;
};

}  // namespace vstore

#endif  // VSTORE_EXEC_SCAN_H_
