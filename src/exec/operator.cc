#include "exec/operator.h"

#include <chrono>
#include <cstring>

#include "common/macros.h"
#include "common/memory_tracker.h"
#include "common/metrics.h"
#include "common/span_trace.h"

namespace vstore {

namespace {

inline int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Batches evaluated through the bytecode VM versus the tree interpreter
// (the compiled-vs-interpreted dispatch split, exported via sys.metrics).
Counter* ExprBatchCounter(bool compiled) {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "vstore_expr_batches_total", "engine", "compiled");
  static Counter* i = MetricsRegistry::Global().GetCounter(
      "vstore_expr_batches_total", "engine", "interpreted");
  return compiled ? c : i;
}

}  // namespace

Status BatchOperator::Open() {
  profile_open_ns_ = 0;
  profile_next_ns_ = 0;
  profile_close_ns_ = 0;
  profile_batches_ = 0;
  profile_rows_ = 0;
  profile_peak_memory_ = 0;
  profile_mem_current_ = 0;
  profile_spill_bytes_ = 0;
  // One trace span per execution, opened here and closed by Close(). The
  // SpanGuard makes it the thread's current span across each protocol
  // hook, so child operators opened inside OpenImpl and waits hit inside
  // NextImpl nest under it — the span tree mirrors the plan tree.
  QueryTraceContext& tc = CurrentQueryTraceContext();
  trace_span_ = tc.recorder != nullptr
                    ? tc.recorder->StartSpan(name(), "operator", tc.current)
                    : nullptr;
  // Mark opened before the hook so a failed Open still gets a Close (the
  // hooks may have acquired resources before erroring out).
  opened_ = true;
  int64_t start = NowNs();
  SpanGuard guard(trace_span_);
  Status status = OpenImpl();
  profile_open_ns_ += NowNs() - start;
  return status;
}

Result<Batch*> BatchOperator::Next() {
  int64_t start = NowNs();
  SpanGuard guard(trace_span_);
  Result<Batch*> result = NextImpl();
  profile_next_ns_ += NowNs() - start;
  if (result.ok() && result.value() != nullptr) {
    ++profile_batches_;
    profile_rows_ += result.value()->active_count();
  }
  return result;
}

void BatchOperator::Close() {
  if (!opened_) return;
  opened_ = false;
  int64_t start = NowNs();
  {
    SpanGuard guard(trace_span_);
    CloseImpl();
  }
  profile_close_ns_ += NowNs() - start;
  if (trace_span_ != nullptr) {
    QueryTraceContext& tc = CurrentQueryTraceContext();
    if (tc.recorder != nullptr) tc.recorder->EndSpan(trace_span_);
  }
}

void BatchOperator::RecordMemoryTracker(const MemoryTracker* tracker) {
  if (tracker == nullptr) return;
  RecordPeakMemory(tracker->peak());
  profile_mem_current_ = tracker->current();
}

void BatchOperator::AppendProfileChildren(OperatorProfile* node) const {
  for (const BatchOperator* input : ProfileInputs()) {
    node->children.push_back(input->BuildProfile());
  }
}

OperatorProfile BatchOperator::BuildProfile() const {
  OperatorProfile node;
  node.name = name();
  node.open_ns = profile_open_ns_;
  node.next_ns = profile_next_ns_;
  node.close_ns = profile_close_ns_;
  node.batches_produced = profile_batches_;
  node.rows_produced = profile_rows_;
  node.peak_memory_bytes = profile_peak_memory_;
  node.mem_current_bytes = profile_mem_current_;
  node.spill_bytes = profile_spill_bytes_;
  AppendProfileCounters(&node);
  AppendProfileChildren(&node);
  return node;
}

int64_t AppendActiveRows(const Batch& src, Batch* dst) {
  VSTORE_DCHECK(src.num_columns() == dst->num_columns());
  const int64_t n = src.num_rows();
  const uint8_t* active = src.active();
  int64_t out_row = dst->num_rows();
  int64_t copied = 0;

  // Build the compaction index once, then copy column by column.
  std::vector<int32_t> index;
  index.reserve(static_cast<size_t>(src.active_count()));
  for (int64_t i = 0; i < n; ++i) {
    if (active[i]) index.push_back(static_cast<int32_t>(i));
  }
  copied = static_cast<int64_t>(index.size());
  VSTORE_DCHECK(out_row + copied <= dst->capacity());

  for (int c = 0; c < src.num_columns(); ++c) {
    const ColumnVector& s = src.column(c);
    ColumnVector& d = dst->column(c);
    uint8_t* dv = d.mutable_validity();
    const uint8_t* sv = s.validity();
    switch (s.physical_type()) {
      case PhysicalType::kInt64: {
        const int64_t* in = s.ints();
        int64_t* out = d.mutable_ints();
        for (int64_t i = 0; i < copied; ++i) {
          out[out_row + i] = in[index[static_cast<size_t>(i)]];
          dv[out_row + i] = sv[index[static_cast<size_t>(i)]];
        }
        break;
      }
      case PhysicalType::kDouble: {
        const double* in = s.doubles();
        double* out = d.mutable_doubles();
        for (int64_t i = 0; i < copied; ++i) {
          out[out_row + i] = in[index[static_cast<size_t>(i)]];
          dv[out_row + i] = sv[index[static_cast<size_t>(i)]];
        }
        break;
      }
      case PhysicalType::kString: {
        const std::string_view* in = s.strings();
        std::string_view* out = d.mutable_strings();
        for (int64_t i = 0; i < copied; ++i) {
          // Re-anchor payloads: the source batch's arena is reused on its
          // next fill, so views must not escape it.
          out[out_row + i] =
              dst->arena()->CopyString(in[index[static_cast<size_t>(i)]]);
          dv[out_row + i] = sv[index[static_cast<size_t>(i)]];
        }
        break;
      }
    }
  }

  int64_t new_rows = out_row + copied;
  dst->set_num_rows(new_rows);
  std::fill(dst->mutable_active() + out_row, dst->mutable_active() + new_rows,
            uint8_t{1});
  dst->set_active_count(dst->active_count() + copied);
  return copied;
}

FilterOperator::FilterOperator(BatchOperatorPtr input, ExprPtr predicate,
                               ExecContext* ctx)
    : input_(std::move(input)), predicate_(std::move(predicate)), ctx_(ctx) {
  if (ctx_ == nullptr || ctx_->compile_expressions) {
    program_ = ExprProgramCache::Global().GetOrCompile({predicate_});
    if (program_ != nullptr) {
      frame_ = std::make_unique<ExprFrame>(program_);
      if (ctx_ != nullptr) frame_->SetMemoryTracker(ctx_->memory_tracker);
    }
  }
}

Result<Batch*> FilterOperator::NextImpl() {
  for (;;) {
    VSTORE_ASSIGN_OR_RETURN(Batch * batch, input_->Next());
    if (batch == nullptr) return static_cast<Batch*>(nullptr);
    if (batch->active_count() == 0) continue;
    rows_in_ += batch->active_count();

    const int64_t n = batch->num_rows();
    int64_t count = 0;
    auto apply = [&](const int64_t* values, const uint8_t* valid) {
      uint8_t* active = batch->mutable_active();
      for (int64_t i = 0; i < n; ++i) {
        active[i] &= valid[i] & (values[i] != 0 ? 1 : 0);
        count += active[i];
      }
    };
    if (program_ != nullptr) {
      VSTORE_RETURN_IF_ERROR(frame_->Run(*batch));
      const ColumnVector& result = frame_->result(0);
      apply(result.ints(), result.validity());
    } else {
      ColumnVector result(DataType::kBool, n);
      VSTORE_RETURN_IF_ERROR(
          predicate_->EvalBatch(*batch, batch->arena(), &result));
      apply(result.ints(), result.validity());
    }
    ExprBatchCounter(program_ != nullptr)->Increment();
    rows_dropped_ += batch->active_count() - count;
    batch->set_active_count(count);
    if (count > 0) return batch;
  }
}

ProjectOperator::ProjectOperator(BatchOperatorPtr input,
                                 std::vector<ExprPtr> exprs,
                                 std::vector<std::string> names,
                                 ExecContext* ctx)
    : input_(std::move(input)), exprs_(std::move(exprs)), ctx_(ctx) {
  VSTORE_CHECK(exprs_.size() == names.size());
  std::vector<Field> fields;
  fields.reserve(exprs_.size());
  for (size_t i = 0; i < exprs_.size(); ++i) {
    fields.push_back(Field{names[i], exprs_[i]->output_type(), true});
  }
  schema_ = Schema(std::move(fields));
  if (ctx_ == nullptr || ctx_->compile_expressions) {
    program_ = ExprProgramCache::Global().GetOrCompile(exprs_);
    if (program_ != nullptr) {
      frame_ = std::make_unique<ExprFrame>(program_);
      if (ctx_ != nullptr) frame_->SetMemoryTracker(ctx_->memory_tracker);
    }
  }
}

Result<Batch*> ProjectOperator::NextImpl() {
  for (;;) {
    VSTORE_ASSIGN_OR_RETURN(Batch * batch, input_->Next());
    if (batch == nullptr) return static_cast<Batch*>(nullptr);
    if (batch->active_count() == 0) continue;

    if (output_ == nullptr) {
      output_ = std::make_unique<Batch>(schema_, ctx_->batch_size);
    }
    output_->Reset();

    const int64_t n = batch->num_rows();
    // Evaluate into full-width vectors, then compact active rows. The
    // compiled path shares one program across all projection expressions
    // (CSE spans outputs) and aliases plain column references in place.
    std::vector<std::unique_ptr<ColumnVector>> computed;
    std::vector<const ColumnVector*> results(exprs_.size(), nullptr);
    if (program_ != nullptr) {
      VSTORE_RETURN_IF_ERROR(frame_->Run(*batch));
      for (size_t c = 0; c < exprs_.size(); ++c) {
        results[c] = &frame_->result(c);
      }
    } else {
      computed.reserve(exprs_.size());
      for (size_t c = 0; c < exprs_.size(); ++c) {
        auto cv = std::make_unique<ColumnVector>(exprs_[c]->output_type(),
                                                 std::max<int64_t>(n, 1));
        VSTORE_RETURN_IF_ERROR(
            exprs_[c]->EvalBatch(*batch, output_->arena(), cv.get()));
        results[c] = cv.get();
        computed.push_back(std::move(cv));
      }
    }
    ExprBatchCounter(program_ != nullptr)->Increment();

    const uint8_t* active = batch->active();
    int64_t out_row = 0;
    for (int64_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      for (size_t c = 0; c < results.size(); ++c) {
        ColumnVector& dst = output_->column(static_cast<int>(c));
        const ColumnVector& src = *results[c];
        dst.mutable_validity()[out_row] = src.validity()[i];
        switch (src.physical_type()) {
          case PhysicalType::kInt64:
            dst.mutable_ints()[out_row] = src.ints()[i];
            break;
          case PhysicalType::kDouble:
            dst.mutable_doubles()[out_row] = src.doubles()[i];
            break;
          case PhysicalType::kString:
            dst.mutable_strings()[out_row] = src.strings()[i];
            break;
        }
      }
      ++out_row;
    }
    output_->set_num_rows(out_row);
    output_->ActivateAll();
    if (out_row > 0) return output_.get();
  }
}

Result<Batch*> LimitOperator::NextImpl() {
  if (remaining_ <= 0) return static_cast<Batch*>(nullptr);
  for (;;) {
    VSTORE_ASSIGN_OR_RETURN(Batch * batch, input_->Next());
    if (batch == nullptr) return static_cast<Batch*>(nullptr);
    if (batch->active_count() == 0) continue;
    if (batch->active_count() <= remaining_) {
      remaining_ -= batch->active_count();
      return batch;
    }
    // Deactivate rows past the limit.
    uint8_t* active = batch->mutable_active();
    int64_t kept = 0;
    for (int64_t i = 0; i < batch->num_rows(); ++i) {
      if (!active[i]) continue;
      if (kept >= remaining_) {
        active[i] = 0;
      } else {
        ++kept;
      }
    }
    batch->set_active_count(kept);
    remaining_ = 0;
    return batch;
  }
}

}  // namespace vstore
