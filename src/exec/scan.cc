#include "exec/scan.h"

#include <algorithm>

#include "common/hash.h"
#include "common/span_trace.h"
#include "exec/expr_kernels.h"
#include "exec/hash_table.h"
#include "common/macros.h"

namespace vstore {

namespace {

// Three-way comparison used for delta rows (same physical family only).
int CompareValueTo(const Value& a, const Value& b) {
  switch (PhysicalTypeOf(a.type())) {
    case PhysicalType::kString: {
      int c = a.str().compare(b.str());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case PhysicalType::kDouble: {
      double x = a.AsDouble(), y = b.AsDouble();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case PhysicalType::kInt64: {
      if (b.type() == DataType::kDouble) {
        double x = a.AsDouble(), y = b.AsDouble();
        return x < y ? -1 : (x > y ? 1 : 0);
      }
      int64_t x = a.int64(), y = b.int64();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
  }
  return 0;
}

// Single-key hashes matching RowFormat::HashKeysFromBatch for a one-column
// key, so Bloom filters built by hash joins test positive here.
uint64_t HashVectorValue(const ColumnVector& cv, int64_t i) {
  switch (cv.physical_type()) {
    case PhysicalType::kInt64:
      return SingleKeyHash(HashInt64(static_cast<uint64_t>(cv.ints()[i])));
    case PhysicalType::kDouble:
      return SingleKeyHash(HashInt64(std::bit_cast<uint64_t>(cv.doubles()[i])));
    case PhysicalType::kString:
      return SingleKeyHash(Hash64(cv.strings()[i]));
  }
  return 0;
}

uint64_t HashValue(const Value& v) {
  switch (PhysicalTypeOf(v.type())) {
    case PhysicalType::kInt64:
      return SingleKeyHash(HashInt64(static_cast<uint64_t>(v.int64())));
    case PhysicalType::kDouble:
      return SingleKeyHash(HashInt64(std::bit_cast<uint64_t>(v.dbl())));
    case PhysicalType::kString:
      return SingleKeyHash(Hash64(v.str()));
  }
  return 0;
}

}  // namespace

ColumnStoreScanOperator::ColumnStoreScanOperator(const ColumnStoreTable* table,
                                                 Options options,
                                                 ExecContext* ctx)
    : table_(table), options_(std::move(options)), ctx_(ctx) {
  const Schema& schema = table_->schema();
  if (options_.projection.empty()) {
    for (int c = 0; c < schema.num_columns(); ++c) {
      options_.projection.push_back(c);
    }
  }
  output_schema_ = schema.Project(options_.projection);

  // Decode plan: projected columns first, then predicate/bloom-only ones.
  auto slot_for = [this](int table_column) {
    for (size_t i = 0; i < decode_columns_.size(); ++i) {
      if (decode_columns_[i] == table_column) return static_cast<int>(i);
    }
    decode_columns_.push_back(table_column);
    decode_to_output_.push_back(-1);
    return static_cast<int>(decode_columns_.size() - 1);
  };
  for (size_t p = 0; p < options_.projection.size(); ++p) {
    decode_columns_.push_back(options_.projection[p]);
    decode_to_output_.push_back(static_cast<int>(p));
  }
  for (const ScanPredicate& pred : options_.predicates) {
    pred_decode_slot_.push_back(slot_for(pred.column));
  }
  for (const BloomFilterSpec& spec : options_.bloom_filters) {
    bloom_decode_slot_.push_back(slot_for(spec.column));
  }
  early_slot_.assign(decode_columns_.size(), false);
  for (int s : pred_decode_slot_) early_slot_[static_cast<size_t>(s)] = true;
  for (int s : bloom_decode_slot_) early_slot_[static_cast<size_t>(s)] = true;
}

Status ColumnStoreScanOperator::OpenImpl() {
  snapshot_ =
      options_.snapshot != nullptr ? options_.snapshot : table_->Snapshot();
  output_ = std::make_unique<Batch>(output_schema_, ctx_->batch_size);
  // Scratch vectors for predicate-only columns.
  scratch_.clear();
  for (size_t i = 0; i < decode_columns_.size(); ++i) {
    if (decode_to_output_[i] < 0) {
      scratch_.push_back(std::make_unique<ColumnVector>(
          table_->schema().field(decode_columns_[i]).type, ctx_->batch_size));
    } else {
      scratch_.push_back(nullptr);
    }
  }
  group_ = options_.group_begin;
  group_limit_ = options_.group_end >= 0 ? options_.group_end
                                         : snapshot_->num_row_groups();
  group_limit_ = std::min(group_limit_, snapshot_->num_row_groups());
  offset_ = 0;
  in_group_ = false;
  delta_index_ = 0;
  deltas_done_ = !options_.include_deltas;
  delta_loaded_ = false;
  delta_row_pos_ = 0;
  rows_scanned_ = 0;
  delta_rows_scanned_ = 0;
  groups_scanned_ = 0;
  groups_eliminated_ = 0;
  bloom_rows_dropped_ = 0;
  return Status::OK();
}

void ColumnStoreScanOperator::CloseImpl() {
  output_.reset();
  scratch_.clear();
  snapshot_.reset();
}

void ColumnStoreScanOperator::AppendProfileCounters(
    OperatorProfile* node) const {
  node->counters.push_back({"rows_scanned", rows_scanned_});
  node->counters.push_back({"delta_rows", delta_rows_scanned_});
  node->counters.push_back({"groups_scanned", groups_scanned_});
  node->counters.push_back({"groups_eliminated", groups_eliminated_});
  if (!options_.bloom_filters.empty()) {
    node->counters.push_back({"bloom_rows_dropped", bloom_rows_dropped_});
  }
}

bool ColumnStoreScanOperator::AdvanceGroup() {
  while (group_ < group_limit_) {
    const RowGroup& rg = snapshot_->row_group(group_);
    // Segment elimination: any predicate whose segment cannot match kills
    // the whole group.
    bool eliminated = false;
    for (const ScanPredicate& pred : options_.predicates) {
      if (!rg.column(pred.column).MayMatch(pred.op, pred.value)) {
        eliminated = true;
        break;
      }
    }
    // A fully deleted group is also skipped.
    if (!eliminated &&
        snapshot_->delete_bitmap(group_).deleted_count() == rg.num_rows()) {
      eliminated = true;
    }
    if (eliminated) {
      ++ctx_->stats.row_groups_eliminated;
      ++groups_eliminated_;
      ++group_;
      continue;
    }
    ++ctx_->stats.row_groups_scanned;
    ++groups_scanned_;
    offset_ = 0;
    in_group_ = true;
    return true;
  }
  return false;
}

void ColumnStoreScanOperator::ApplyPredicate(const ScanPredicate& pred,
                                             const ColumnVector& cv,
                                             Batch* batch) const {
  // Branchless: every row is evaluated (FillFromGroup decoded all rows of
  // the predicate column, so inactive rows hold initialized values) and the
  // verdict is ANDed into the existing mask. The sign expressions map
  // NaN/unordered comparisons to 0, matching the ordered ternary they
  // replace, and the loops vectorize without the per-row mask branch.
  const int64_t n = batch->num_rows();
  uint8_t* active = batch->mutable_active();
  const uint8_t* valid = cv.validity();
  const CompareOp op = pred.op;
  switch (cv.physical_type()) {
    case PhysicalType::kString: {
      const std::string_view target(pred.value.str());
      const std::string_view* values = cv.strings();
      for (int64_t i = 0; i < n; ++i) {
        int c = values[i].compare(target);
        active[i] &= valid[i] & uint8_t{ApplyCompare(op, (c > 0) - (c < 0))};
      }
      break;
    }
    case PhysicalType::kDouble: {
      const double target = pred.value.AsDouble();
      verdict_scratch_.resize(static_cast<size_t>(n));
      kernels::CmpF64ConstMask(op, cv.doubles(), target, n,
                               verdict_scratch_.data());
      for (int64_t i = 0; i < n; ++i) {
        active[i] &= valid[i] & verdict_scratch_[i];
      }
      break;
    }
    case PhysicalType::kInt64: {
      verdict_scratch_.resize(static_cast<size_t>(n));
      // A double constant against an int column compares in double space.
      if (pred.value.type() == DataType::kDouble) {
        const double target = pred.value.AsDouble();
        const int64_t* values = cv.ints();
        for (int64_t i = 0; i < n; ++i) {
          double v = static_cast<double>(values[i]);
          verdict_scratch_[i] =
              uint8_t{ApplyCompare(op, (v > target) - (v < target))};
        }
      } else {
        kernels::CmpI64ConstMask(op, cv.ints(), pred.value.int64(), n,
                                 verdict_scratch_.data());
      }
      for (int64_t i = 0; i < n; ++i) {
        active[i] &= valid[i] & verdict_scratch_[i];
      }
      break;
    }
  }
}

bool ColumnStoreScanOperator::SlotUsesCodeEval(size_t slot) const {
  // Only worthwhile when the column is not projected (strings would need
  // materializing anyway) and not consumed by a bitmap filter (which
  // hashes raw values).
  if (decode_to_output_[slot] >= 0) return false;
  if (table_->schema().field(decode_columns_[slot]).type !=
      DataType::kString) {
    return false;
  }
  for (int s : bloom_decode_slot_) {
    if (s == static_cast<int>(slot)) return false;
  }
  // Every predicate on this slot must be an equality form.
  for (size_t p = 0; p < options_.predicates.size(); ++p) {
    if (pred_decode_slot_[p] != static_cast<int>(slot)) continue;
    CompareOp op = options_.predicates[p].op;
    if (op != CompareOp::kEq && op != CompareOp::kNe) return false;
  }
  return true;
}

void ColumnStoreScanOperator::ApplyCodePredicate(
    const ScanPredicate& pred, const uint64_t* codes, const uint8_t* validity,
    bool target_valid, uint64_t target_code, Batch* batch) const {
  const int64_t n = batch->num_rows();
  uint8_t* active = batch->mutable_active();
  if (pred.op == CompareOp::kEq) {
    if (!target_valid) {
      // Value not in this segment's dictionaries: nothing matches.
      std::fill(active, active + n, uint8_t{0});
      return;
    }
    for (int64_t i = 0; i < n; ++i) {
      active[i] &= validity[i] & (codes[i] == target_code ? 1 : 0);
    }
  } else {  // kNe
    if (!target_valid) {
      for (int64_t i = 0; i < n; ++i) active[i] &= validity[i];
      return;
    }
    for (int64_t i = 0; i < n; ++i) {
      active[i] &= validity[i] & (codes[i] != target_code ? 1 : 0);
    }
  }
}

void ColumnStoreScanOperator::ApplyBloom(const BloomFilterSpec& spec,
                                         const ColumnVector& cv,
                                         Batch* batch) const {
  const int64_t n = batch->num_rows();
  uint8_t* active = batch->mutable_active();
  const uint8_t* valid = cv.validity();
  int64_t dropped = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (!active[i]) continue;
    if (!valid[i] || !spec.filter->MayContain(HashVectorValue(cv, i))) {
      active[i] = 0;
      ++dropped;
    }
  }
  ctx_->stats.rows_bloom_filtered += dropped;
  bloom_rows_dropped_ += dropped;
}

Status ColumnStoreScanOperator::FillFromGroup() {
  const RowGroup& rg = snapshot_->row_group(group_);
  const int64_t n =
      std::min<int64_t>(ctx_->batch_size, rg.num_rows() - offset_);
  output_->Reset();
  output_->set_num_rows(n);

  // Liveness from the delete bitmap seeds the active mask.
  const DeleteBitmap& dm = snapshot_->delete_bitmap(group_);
  dm.DecodeLiveness(offset_, n, output_->mutable_active());

  if (options_.sample_fraction < 1.0) {
    // Deterministic Bernoulli sample keyed by (group, row).
    const uint64_t threshold = static_cast<uint64_t>(
        options_.sample_fraction * 18446744073709551615.0);
    uint8_t* active = output_->mutable_active();
    for (int64_t i = 0; i < n; ++i) {
      uint64_t h = HashInt64((static_cast<uint64_t>(group_) << 40) ^
                             static_cast<uint64_t>(offset_ + i) ^
                             options_.sample_seed);
      active[i] &= h <= threshold ? 1 : 0;
    }
  }

  // Phase 1: decode the columns predicates and bitmap filters need, apply
  // them, and only then materialize the remaining projected columns for
  // surviving rows (lazy materialization — the same trick that makes the
  // paper's pushed bitmap filters pay off in the scan).
  auto slot_dst = [&](size_t s) {
    return decode_to_output_[s] >= 0 ? &output_->column(decode_to_output_[s])
                                     : scratch_[s].get();
  };
  auto full_decode = [&](size_t s) {
    const ColumnSegment& seg = rg.column(decode_columns_[s]);
    ColumnVector* dst = slot_dst(s);
    switch (PhysicalTypeOf(seg.type())) {
      case PhysicalType::kInt64:
        seg.DecodeInt64(offset_, n, dst->mutable_ints());
        break;
      case PhysicalType::kDouble:
        seg.DecodeDouble(offset_, n, dst->mutable_doubles());
        break;
      case PhysicalType::kString:
        seg.DecodeString(offset_, n, dst->mutable_strings());
        break;
    }
    seg.DecodeValidity(offset_, n, dst->mutable_validity());
  };

  output_->RecountActive();
  std::vector<const ColumnVector*> decoded(decode_columns_.size(), nullptr);
  std::vector<bool> code_evaluated(decode_columns_.size(), false);
  auto is_bloom_slot = [&](size_t s) {
    for (int b : bloom_decode_slot_) {
      if (b == static_cast<int>(s)) return true;
    }
    return false;
  };
  for (size_t s = 0; s < decode_columns_.size(); ++s) {
    if (!early_slot_[s]) continue;
    if (SlotUsesCodeEval(s)) {
      // Equality predicates on non-projected string columns run directly
      // on dictionary codes; the strings are never materialized.
      const ColumnSegment& seg = rg.column(decode_columns_[s]);
      code_scratch_.resize(static_cast<size_t>(n));
      validity_scratch_.resize(static_cast<size_t>(n));
      seg.DecodeCodes(offset_, n, code_scratch_.data());
      seg.DecodeValidity(offset_, n, validity_scratch_.data());
      for (size_t p = 0; p < options_.predicates.size(); ++p) {
        if (pred_decode_slot_[p] != static_cast<int>(s)) continue;
        uint64_t target = 0;
        bool ok = seg.ValueToCode(options_.predicates[p].value, &target);
        ApplyCodePredicate(options_.predicates[p], code_scratch_.data(),
                           validity_scratch_.data(), ok, target,
                           output_.get());
      }
      code_evaluated[s] = true;
      continue;
    }
    // Predicate-only RLE slots: decide each predicate once per run and fan
    // the verdict over the run's row span — O(runs), never decoding the
    // run bodies into row-at-a-time values.
    const ColumnSegment& seg = rg.column(decode_columns_[s]);
    if (decode_to_output_[s] < 0 && !is_bloom_slot(s) &&
        seg.encoding() == EncodingKind::kRle) {
      validity_scratch_.resize(static_cast<size_t>(n));
      verdict_scratch_.resize(static_cast<size_t>(n));
      seg.DecodeValidity(offset_, n, validity_scratch_.data());
      uint8_t* active = output_->mutable_active();
      for (size_t p = 0; p < options_.predicates.size(); ++p) {
        if (pred_decode_slot_[p] != static_cast<int>(s)) continue;
        seg.EvalPredicateOnRuns(options_.predicates[p].op,
                                options_.predicates[p].value, offset_, n,
                                verdict_scratch_.data());
        for (int64_t i = 0; i < n; ++i) {
          active[i] &= validity_scratch_[i] & verdict_scratch_[i];
        }
      }
      code_evaluated[s] = true;
      continue;
    }
    full_decode(s);
    decoded[s] = slot_dst(s);
  }

  // Remaining predicates, then bitmap filters.
  for (size_t p = 0; p < options_.predicates.size(); ++p) {
    size_t slot = static_cast<size_t>(pred_decode_slot_[p]);
    if (code_evaluated[slot]) continue;
    ApplyPredicate(options_.predicates[p], *decoded[slot], output_.get());
  }
  for (size_t b = 0; b < options_.bloom_filters.size(); ++b) {
    ApplyBloom(options_.bloom_filters[b], *decoded[bloom_decode_slot_[b]],
               output_.get());
  }
  output_->RecountActive();

  // Phase 2: remaining projected columns.
  const int64_t active = output_->active_count();
  if (active == n || active > n - n / 4) {
    // Dense batch: bulk decode is cheaper than gathering.
    for (size_t s = 0; s < decode_columns_.size(); ++s) {
      if (!early_slot_[s]) full_decode(s);
    }
  } else if (active > 0) {
    // Sparse batch: fetch only surviving rows.
    std::vector<int64_t> rows;     // segment row indices (ascending)
    std::vector<int64_t> targets;  // batch positions
    rows.reserve(static_cast<size_t>(active));
    targets.reserve(static_cast<size_t>(active));
    const uint8_t* mask = output_->active();
    for (int64_t i = 0; i < n; ++i) {
      if (mask[i]) {
        rows.push_back(offset_ + i);
        targets.push_back(i);
      }
    }
    std::vector<uint8_t> validity(rows.size());
    for (size_t s = 0; s < decode_columns_.size(); ++s) {
      if (early_slot_[s]) continue;
      const ColumnSegment& seg = rg.column(decode_columns_[s]);
      ColumnVector* dst = slot_dst(s);
      int64_t count = static_cast<int64_t>(rows.size());
      switch (PhysicalTypeOf(seg.type())) {
        case PhysicalType::kInt64: {
          std::vector<int64_t> values(rows.size());
          seg.GatherInt64(rows.data(), count, values.data());
          for (size_t k = 0; k < rows.size(); ++k) {
            dst->mutable_ints()[targets[k]] = values[k];
          }
          break;
        }
        case PhysicalType::kDouble: {
          std::vector<double> values(rows.size());
          seg.GatherDouble(rows.data(), count, values.data());
          for (size_t k = 0; k < rows.size(); ++k) {
            dst->mutable_doubles()[targets[k]] = values[k];
          }
          break;
        }
        case PhysicalType::kString: {
          std::vector<std::string_view> values(rows.size());
          seg.GatherString(rows.data(), count, values.data());
          for (size_t k = 0; k < rows.size(); ++k) {
            dst->mutable_strings()[targets[k]] = values[k];
          }
          break;
        }
      }
      seg.GatherValidity(rows.data(), count, validity.data());
      for (size_t k = 0; k < rows.size(); ++k) {
        dst->mutable_validity()[targets[k]] = validity[k];
      }
    }
  }

  ctx_->stats.rows_scanned += n;
  rows_scanned_ += n;
  // Live progress for sys.active_queries readers.
  if (ctx_->active_query != nullptr) {
    ctx_->active_query->rows_scanned.fetch_add(n, std::memory_order_relaxed);
  }
  offset_ += n;
  if (offset_ >= rg.num_rows()) {
    in_group_ = false;
    ++group_;
  }
  return Status::OK();
}

Result<int64_t> ColumnStoreScanOperator::FillFromDeltas() {
  output_->Reset();
  int64_t out_row = 0;
  const Schema& table_schema = table_->schema();

  while (out_row < ctx_->batch_size) {
    if (!delta_loaded_) {
      if (delta_index_ >= snapshot_->num_delta_stores()) {
        deltas_done_ = true;
        break;
      }
      delta_rows_.clear();
      delta_row_pos_ = 0;
      const DeltaStore& store = snapshot_->delta_store(delta_index_);
      VSTORE_RETURN_IF_ERROR(store.ForEach(
          [this](uint64_t /*rowid*/, const std::vector<Value>& row) {
            delta_rows_.push_back(row);
          }));
      delta_loaded_ = true;
    }

    for (; delta_row_pos_ < static_cast<int64_t>(delta_rows_.size()) &&
           out_row < ctx_->batch_size;
         ++delta_row_pos_) {
      const std::vector<Value>& row =
          delta_rows_[static_cast<size_t>(delta_row_pos_)];
      ++ctx_->stats.delta_rows_scanned;
      ++delta_rows_scanned_;

      if (options_.sample_fraction < 1.0) {
        const uint64_t threshold = static_cast<uint64_t>(
            options_.sample_fraction * 18446744073709551615.0);
        uint64_t h = HashInt64((uint64_t{0xde17a} << 40) ^
                               static_cast<uint64_t>(delta_index_ * 1000003 +
                                                     delta_row_pos_) ^
                               options_.sample_seed);
        if (h > threshold) continue;
      }

      // Row-wise predicate and bloom evaluation for delta rows.
      bool pass = true;
      for (const ScanPredicate& pred : options_.predicates) {
        const Value& v = row[static_cast<size_t>(pred.column)];
        if (v.is_null() ||
            !ApplyCompare(pred.op, CompareValueTo(v, pred.value))) {
          pass = false;
          break;
        }
      }
      if (pass) {
        for (const BloomFilterSpec& spec : options_.bloom_filters) {
          const Value& v = row[static_cast<size_t>(spec.column)];
          if (v.is_null() || !spec.filter->MayContain(HashValue(v))) {
            pass = false;
            ++ctx_->stats.rows_bloom_filtered;
            ++bloom_rows_dropped_;
            break;
          }
        }
      }
      if (!pass) continue;

      for (size_t p = 0; p < options_.projection.size(); ++p) {
        output_->column(static_cast<int>(p))
            .SetValue(out_row, row[static_cast<size_t>(options_.projection[p])],
                      output_->arena());
      }
      ++out_row;
    }
    (void)table_schema;

    if (delta_row_pos_ >= static_cast<int64_t>(delta_rows_.size())) {
      delta_loaded_ = false;
      ++delta_index_;
    }
  }

  output_->set_num_rows(out_row);
  output_->ActivateAll();
  return out_row;
}

Result<Batch*> ColumnStoreScanOperator::NextImpl() {
  for (;;) {
    if (in_group_ || AdvanceGroup()) {
      VSTORE_RETURN_IF_ERROR(FillFromGroup());
      if (output_->active_count() > 0) return output_.get();
      continue;  // fully filtered batch; fetch more
    }
    if (deltas_done_) return static_cast<Batch*>(nullptr);
    VSTORE_ASSIGN_OR_RETURN(int64_t produced, FillFromDeltas());
    if (produced > 0) return output_.get();
    if (deltas_done_) return static_cast<Batch*>(nullptr);
  }
}

}  // namespace vstore
