#ifndef VSTORE_EXEC_BATCH_H_
#define VSTORE_EXEC_BATCH_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/arena.h"
#include "common/macros.h"
#include "types/schema.h"
#include "types/value.h"

namespace vstore {

// Rows per batch. The paper sizes batches so that one batch with a handful
// of columns fits in L2 (~900 rows in SQL Server); we use the same number.
constexpr int64_t kDefaultBatchSize = 900;

// A column of values within a batch: a fixed-capacity typed array plus a
// byte-per-row validity mask. Strings are views into stable memory (segment
// dictionaries or the batch's arena).
class ColumnVector {
 public:
  ColumnVector(DataType type, int64_t capacity);
  VSTORE_DISALLOW_COPY_AND_ASSIGN(ColumnVector);

  DataType type() const { return type_; }
  PhysicalType physical_type() const { return PhysicalTypeOf(type_); }
  int64_t capacity() const { return capacity_; }

  int64_t* mutable_ints() { return ints_.data(); }
  double* mutable_doubles() { return doubles_.data(); }
  std::string_view* mutable_strings() { return strings_.data(); }
  const int64_t* ints() const { return ints_.data(); }
  const double* doubles() const { return doubles_.data(); }
  const std::string_view* strings() const { return strings_.data(); }

  // validity()[i] == 1 when row i is non-null.
  uint8_t* mutable_validity() { return validity_.data(); }
  const uint8_t* validity() const { return validity_.data(); }
  void SetAllValid(int64_t n) {
    std::fill(validity_.begin(), validity_.begin() + n, uint8_t{1});
  }

  Value GetValue(int64_t i) const;
  void SetValue(int64_t i, const Value& v, Arena* arena);

  // Changes the logical type (physical family must match); used when an
  // adapter reuses vectors across schemas.
  void ResetType(DataType type);

  // Resident bytes of the typed array + validity mask (string payloads
  // live in the batch arena, accounted separately).
  int64_t MemoryBytes() const {
    return static_cast<int64_t>(ints_.capacity() * sizeof(int64_t) +
                                doubles_.capacity() * sizeof(double) +
                                strings_.capacity() *
                                    sizeof(std::string_view) +
                                validity_.capacity());
  }

 private:
  DataType type_;
  int64_t capacity_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string_view> strings_;
  std::vector<uint8_t> validity_;
};

// A batch of rows in columnar layout with a qualifying-rows mask: filters
// mark rows inactive rather than compacting the batch (paper §5.1).
class Batch {
 public:
  Batch(const Schema& schema, int64_t capacity);
  VSTORE_DISALLOW_COPY_AND_ASSIGN(Batch);

  const Schema& schema() const { return schema_; }
  int64_t capacity() const { return capacity_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }

  int64_t num_rows() const { return num_rows_; }
  void set_num_rows(int64_t n) {
    VSTORE_DCHECK(n <= capacity_);
    num_rows_ = n;
  }

  ColumnVector& column(int i) { return *columns_[static_cast<size_t>(i)]; }
  const ColumnVector& column(int i) const {
    return *columns_[static_cast<size_t>(i)];
  }

  // Qualifying-rows mask: active()[i] == 1 when row i is still logically
  // present. active_count() tracks the number of 1s.
  uint8_t* mutable_active() { return active_.data(); }
  const uint8_t* active() const { return active_.data(); }
  int64_t active_count() const { return active_count_; }
  void set_active_count(int64_t n) { active_count_ = n; }

  // Marks all num_rows_ rows active.
  void ActivateAll();
  // Recomputes active_count from the mask.
  void RecountActive();

  // Arena for strings computed during expression evaluation; reset by the
  // producing operator when it refills the batch.
  Arena* arena() { return &arena_; }

  // Clears row content for reuse (does not shrink allocations).
  void Reset();

  // Approximate resident bytes: column storage + active mask + the string
  // arena. Used by the exchange queue's memory reservation.
  int64_t MemoryBytes() const {
    int64_t total = static_cast<int64_t>(active_.capacity());
    for (const auto& col : columns_) total += col->MemoryBytes();
    total += static_cast<int64_t>(arena_.bytes_allocated());
    return total;
  }

  std::vector<Value> GetActiveRow(int64_t i) const;

 private:
  Schema schema_;
  int64_t capacity_;
  int64_t num_rows_ = 0;
  int64_t active_count_ = 0;
  std::vector<std::unique_ptr<ColumnVector>> columns_;
  std::vector<uint8_t> active_;
  Arena arena_;
};

}  // namespace vstore

#endif  // VSTORE_EXEC_BATCH_H_
