#ifndef VSTORE_EXEC_EXCHANGE_H_
#define VSTORE_EXEC_EXCHANGE_H_

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/memory_tracker.h"
#include "exec/operator.h"

namespace vstore {

// Exchange operator: runs `degree` plan fragments on worker threads and
// funnels their output batches through a bounded queue (the paper's batch
// exchange for parallel plans; fragments typically cover disjoint row-group
// ranges of a scan, often with partial aggregation on top).
//
// Each fragment gets its own ExecContext; their stats are merged into the
// parent context when the fragment finishes.
class ExchangeOperator final : public BatchOperator {
 public:
  // Builds the operator tree for fragment `i` against `fragment_ctx`.
  using FragmentFactory =
      std::function<Result<BatchOperatorPtr>(int fragment,
                                             ExecContext* fragment_ctx)>;

  // `label` names the parallelized region in EXPLAIN ANALYZE output, e.g.
  // "Exchange(HashJoin)"; empty keeps the plain "Exchange" name.
  ExchangeOperator(Schema output_schema, FragmentFactory factory, int degree,
                   ExecContext* ctx, std::string label = "");
  ~ExchangeOperator() override;

  // Plan-time facts to surface in EXPLAIN ANALYZE alongside the runtime
  // counters (the sharded scatter lowering records shards_total /
  // shards_pruned here). Appended after degree/rows_exchanged, in order.
  void AddStaticCounter(std::string name, int64_t value) {
    static_counters_.emplace_back(std::move(name), value);
  }

  const Schema& output_schema() const override { return output_schema_; }
  std::string name() const override {
    return label_.empty() ? "Exchange" : "Exchange(" + label_ + ")";
  }

 protected:
  Status OpenImpl() override;
  Result<Batch*> NextImpl() override;
  void CloseImpl() override;
  void AppendProfileCounters(OperatorProfile* node) const override;
  // Attaches the merged fragment profile as this node's single child.
  // Fragment profiles are summed node-wise as fragments finish (int64
  // additions commute, so the result is deterministic regardless of
  // completion order); `fragments` on the child records how many merged.
  void AppendProfileChildren(OperatorProfile* node) const override;

 private:
  void RunFragment(int fragment);
  void Push(std::unique_ptr<Batch> batch);

  Schema output_schema_;
  FragmentFactory factory_;
  int degree_;
  ExecContext* ctx_;
  std::string label_;
  std::vector<std::pair<std::string, int64_t>> static_counters_;

  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<ExecContext>> fragment_ctxs_;

  // Exchange-level tracker (null when tracking is off) with one child per
  // fragment: operators inside a fragment hang off the fragment tracker,
  // so the exchange's peak covers the queue plus every fragment subtree.
  // Declared before the fragment trackers and the queue reservation so
  // both release into a live parent on destruction.
  std::unique_ptr<MemoryTracker> mem_;
  std::vector<std::unique_ptr<MemoryTracker>> fragment_trackers_;
  MemoryReservation queue_reservation_;  // queued batch copies, under mu_
  int64_t queued_bytes_ = 0;             // guarded by mu_

  std::mutex mu_;
  std::condition_variable queue_ready_;   // consumer waits
  std::condition_variable queue_space_;   // producers wait
  std::queue<std::unique_ptr<Batch>> queue_;
  static constexpr size_t kQueueCapacity = 8;
  int active_producers_ = 0;
  bool cancelled_ = false;
  Status first_error_;

  // Node-wise sum of finished fragments' profiles, guarded by mu_ while
  // workers run; read from BuildProfile after Close() joined them.
  OperatorProfile fragment_profile_;
  int64_t fragments_merged_ = 0;
  int64_t rows_exchanged_ = 0;

  std::unique_ptr<Batch> current_;  // batch handed to the consumer
};

}  // namespace vstore

#endif  // VSTORE_EXEC_EXCHANGE_H_
