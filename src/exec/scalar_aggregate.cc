#include "exec/scalar_aggregate.h"

#include "common/macros.h"

namespace vstore {

ScalarAggregateOperator::ScalarAggregateOperator(BatchOperatorPtr input,
                                                 std::vector<AggSpec> aggs,
                                                 ExecContext* ctx)
    : input_(std::move(input)), aggs_(std::move(aggs)), ctx_(ctx) {
  std::vector<Field> fields;
  const Schema& in = input_->output_schema();
  for (const AggSpec& spec : aggs_) {
    DataType input_type = spec.column >= 0 ? in.field(spec.column).type
                                           : DataType::kInt64;
    fields.push_back(
        Field{spec.name, AggOutputType(spec.fn, input_type), true});
  }
  output_schema_ = Schema(std::move(fields));
}

Status ScalarAggregateOperator::OpenImpl() {
  emitted_ = false;
  rows_aggregated_ = 0;
  states_.assign(aggs_.size(), State());
  output_ = std::make_unique<Batch>(output_schema_, 1);
  VSTORE_RETURN_IF_ERROR(input_->Open());

  for (;;) {
    VSTORE_ASSIGN_OR_RETURN(Batch * batch, input_->Next());
    if (batch == nullptr) break;
    const uint8_t* active = batch->active();
    const int64_t n = batch->num_rows();
    rows_aggregated_ += batch->active_count();
    for (size_t a = 0; a < aggs_.size(); ++a) {
      const AggSpec& spec = aggs_[a];
      State& s = states_[a];
      if (spec.fn == AggFn::kCountStar) {
        s.count += batch->active_count();
        continue;
      }
      const ColumnVector& cv = batch->column(spec.column);
      const uint8_t* valid = cv.validity();
      switch (cv.physical_type()) {
        case PhysicalType::kInt64: {
          const int64_t* v = cv.ints();
          for (int64_t i = 0; i < n; ++i) {
            if (!active[i] || !valid[i]) continue;
            s.sum_i += v[i];
            s.sum_d += static_cast<double>(v[i]);
            if (s.count == 0 || (spec.fn == AggFn::kMin ? v[i] < s.minmax_i
                                                        : v[i] > s.minmax_i)) {
              s.minmax_i = v[i];
            }
            ++s.count;
          }
          break;
        }
        case PhysicalType::kDouble: {
          const double* v = cv.doubles();
          for (int64_t i = 0; i < n; ++i) {
            if (!active[i] || !valid[i]) continue;
            s.sum_d += v[i];
            if (s.count == 0 || (spec.fn == AggFn::kMin ? v[i] < s.minmax_d
                                                        : v[i] > s.minmax_d)) {
              s.minmax_d = v[i];
            }
            ++s.count;
          }
          break;
        }
        case PhysicalType::kString: {
          const std::string_view* v = cv.strings();
          for (int64_t i = 0; i < n; ++i) {
            if (!active[i] || !valid[i]) continue;
            if (s.count == 0 || (spec.fn == AggFn::kMin
                                     ? v[i] < s.minmax_s
                                     : v[i] > s.minmax_s)) {
              s.minmax_s = std::string(v[i]);
            }
            ++s.count;
          }
          break;
        }
      }
    }
  }
  return Status::OK();
}

Result<Batch*> ScalarAggregateOperator::NextImpl() {
  if (emitted_) return static_cast<Batch*>(nullptr);
  emitted_ = true;
  output_->Reset();
  const Schema& in = input_->output_schema();
  for (size_t a = 0; a < aggs_.size(); ++a) {
    const AggSpec& spec = aggs_[a];
    const State& s = states_[a];
    ColumnVector& dst = output_->column(static_cast<int>(a));
    if (spec.fn == AggFn::kCount || spec.fn == AggFn::kCountStar) {
      dst.mutable_validity()[0] = 1;
      dst.mutable_ints()[0] = s.count;
      continue;
    }
    if (s.count == 0) {
      dst.mutable_validity()[0] = 0;
      continue;
    }
    dst.mutable_validity()[0] = 1;
    DataType input_type = in.field(spec.column).type;
    switch (spec.fn) {
      case AggFn::kSum:
        if (input_type == DataType::kDouble) {
          dst.mutable_doubles()[0] = s.sum_d;
        } else {
          dst.mutable_ints()[0] = s.sum_i;
        }
        break;
      case AggFn::kAvg:
        dst.mutable_doubles()[0] = s.sum_d / static_cast<double>(s.count);
        break;
      case AggFn::kMin:
      case AggFn::kMax:
        switch (PhysicalTypeOf(input_type)) {
          case PhysicalType::kInt64:
            dst.mutable_ints()[0] = s.minmax_i;
            break;
          case PhysicalType::kDouble:
            dst.mutable_doubles()[0] = s.minmax_d;
            break;
          case PhysicalType::kString:
            dst.mutable_strings()[0] =
                output_->arena()->CopyString(s.minmax_s);
            break;
        }
        break;
      default:
        break;
    }
  }
  output_->set_num_rows(1);
  output_->ActivateAll();
  return output_.get();
}

}  // namespace vstore
