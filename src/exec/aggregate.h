#ifndef VSTORE_EXEC_AGGREGATE_H_
#define VSTORE_EXEC_AGGREGATE_H_

#include <string>
#include <vector>

#include "types/data_type.h"

namespace vstore {

enum class AggFn {
  kSum,
  kCount,      // COUNT(col): non-null rows
  kCountStar,  // COUNT(*)
  kMin,
  kMax,
  kAvg,
};

const char* AggFnName(AggFn fn);

// One aggregate to compute: fn over input column `column` (-1 for
// COUNT(*)), named `name` in the output schema.
struct AggSpec {
  AggFn fn;
  int column;
  std::string name;
};

// Output type of an aggregate over an input of type `input`.
DataType AggOutputType(AggFn fn, DataType input);

}  // namespace vstore

#endif  // VSTORE_EXEC_AGGREGATE_H_
