#include "exec/exchange.h"

#include "common/macros.h"
#include "common/span_trace.h"

namespace vstore {

namespace {

// All exchange queues share one {table="exchange",point="queue"} wait
// family: queue stalls are a property of the plan, not of a table.
const WaitStats& QueueWaitStats() {
  static const WaitStats stats = GetWaitStats("exchange", WaitPoint::kQueue);
  return stats;
}

}  // namespace

ExchangeOperator::ExchangeOperator(Schema output_schema,
                                   FragmentFactory factory, int degree,
                                   ExecContext* ctx, std::string label)
    : output_schema_(std::move(output_schema)),
      factory_(std::move(factory)),
      degree_(degree),
      ctx_(ctx),
      label_(std::move(label)) {
  VSTORE_CHECK(degree_ > 0);
}

ExchangeOperator::~ExchangeOperator() { Close(); }

Status ExchangeOperator::OpenImpl() {
  cancelled_ = false;
  fragment_profile_ = OperatorProfile();
  fragments_merged_ = 0;
  rows_exchanged_ = 0;
  first_error_ = Status::OK();
  active_producers_ = degree_;
  if (ctx_->memory_tracker != nullptr && mem_ == nullptr) {
    mem_ = std::make_unique<MemoryTracker>(name(), "operator",
                                           ctx_->memory_tracker);
  }
  queue_reservation_.Reset(mem_.get());
  queued_bytes_ = 0;
  fragment_ctxs_.clear();
  fragment_trackers_.clear();
  for (int i = 0; i < degree_; ++i) {
    auto fctx = std::make_unique<ExecContext>();
    fctx->batch_size = ctx_->batch_size;
    fctx->operator_memory_budget = ctx_->operator_memory_budget;
    fctx->compile_expressions = ctx_->compile_expressions;
    fctx->trace_recorder = ctx_->trace_recorder;
    fctx->active_query = ctx_->active_query;
    if (mem_ != nullptr) {
      fragment_trackers_.push_back(std::make_unique<MemoryTracker>(
          "fragment:" + std::to_string(i), "fragment", mem_.get()));
      fctx->memory_tracker = fragment_trackers_.back().get();
    }
    fragment_ctxs_.push_back(std::move(fctx));
  }
  workers_.reserve(static_cast<size_t>(degree_));
  for (int i = 0; i < degree_; ++i) {
    workers_.emplace_back([this, i] { RunFragment(i); });
  }
  return Status::OK();
}

void ExchangeOperator::Push(std::unique_ptr<Batch> batch) {
  std::unique_lock<std::mutex> lock(mu_);
  auto has_space = [this] {
    return cancelled_ || queue_.size() < kQueueCapacity;
  };
  if (!has_space()) {
    // Producer blocked on a full queue: the consumer (or a downstream
    // pipeline stage) is the bottleneck. Only a genuinely blocked wait
    // pays for the clock reads and the wait span.
    WaitEventScope wait(QueueWaitStats(), WaitPoint::kQueue, "exchange");
    queue_space_.wait(lock, has_space);
  }
  if (cancelled_) return;
  queued_bytes_ += batch->MemoryBytes();
  queue_reservation_.Set(queued_bytes_);
  queue_.push(std::move(batch));
  queue_ready_.notify_one();
}

void ExchangeOperator::RunFragment(int fragment) {
  ExecContext* fctx = fragment_ctxs_[static_cast<size_t>(fragment)].get();
  // Re-install the query's trace context on this worker thread: operator
  // spans below parent to a per-fragment span under the exchange's own
  // span, and wait sites hit by fragment code attribute to the query.
  TraceSpan* fragment_span =
      ctx_->trace_recorder != nullptr
          ? ctx_->trace_recorder->StartSpan(
                "fragment:" + std::to_string(fragment), "fragment",
                trace_span())
          : nullptr;
  QueryTraceScope trace_scope(
      ctx_->trace_recorder,
      fragment_span != nullptr ? fragment_span : trace_span(),
      ctx_->active_query);
  Status status;
  auto op_result = factory_(fragment, fctx);
  if (!op_result.ok()) {
    status = op_result.status();
  } else {
    BatchOperatorPtr op = std::move(op_result).value();
    status = op->Open();
    while (status.ok()) {
      auto batch_result = op->Next();
      if (!batch_result.ok()) {
        status = batch_result.status();
        break;
      }
      Batch* batch = batch_result.value();
      if (batch == nullptr) break;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (cancelled_) break;
      }
      // Deep-copy: the fragment reuses its batch storage immediately.
      auto copy = std::make_unique<Batch>(
          output_schema_, std::max<int64_t>(batch->num_rows(), 1));
      AppendActiveRows(*batch, copy.get());
      Push(std::move(copy));
    }
    op->Close();
    // Capture the fragment's profile after Close so close_ns is included.
    OperatorProfile profile = op->BuildProfile();
    std::lock_guard<std::mutex> lock(mu_);
    if (fragments_merged_ == 0) {
      fragment_profile_ = std::move(profile);
    } else {
      fragment_profile_.MergeFrom(profile);
    }
    ++fragments_merged_;
  }

  if (ctx_->trace_recorder != nullptr) {
    ctx_->trace_recorder->EndSpan(fragment_span);
  }
  std::lock_guard<std::mutex> lock(mu_);
  ctx_->stats.MergeFrom(fctx->stats);
  if (!status.ok() && first_error_.ok()) first_error_ = status;
  if (--active_producers_ == 0) queue_ready_.notify_all();
  else queue_ready_.notify_all();
}

Result<Batch*> ExchangeOperator::NextImpl() {
  std::unique_lock<std::mutex> lock(mu_);
  auto ready = [this] {
    return !queue_.empty() || active_producers_ == 0 || !first_error_.ok();
  };
  if (!ready()) {
    // Consumer starved: every producer fragment is still computing its
    // next batch. The wait span lands under this exchange's operator span
    // (the Next() wrapper made it current).
    WaitEventScope wait(QueueWaitStats(), WaitPoint::kQueue, "exchange");
    queue_ready_.wait(lock, ready);
  }
  if (!first_error_.ok()) return first_error_;
  if (queue_.empty()) return static_cast<Batch*>(nullptr);
  current_ = std::move(queue_.front());
  queue_.pop();
  queued_bytes_ -= current_->MemoryBytes();
  queue_reservation_.Set(queued_bytes_);
  rows_exchanged_ += current_->active_count();
  queue_space_.notify_one();
  return current_.get();
}

void ExchangeOperator::CloseImpl() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    cancelled_ = true;
  }
  queue_space_.notify_all();
  queue_ready_.notify_all();
  for (auto& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  std::queue<std::unique_ptr<Batch>>().swap(queue_);
  current_.reset();
  // Workers are joined: every fragment operator (and its child tracker) is
  // gone, so the exchange tracker now reflects only residuals.
  RecordMemoryTracker(mem_.get());
  queued_bytes_ = 0;
  queue_reservation_.Clear();
}

void ExchangeOperator::AppendProfileCounters(OperatorProfile* node) const {
  node->counters.push_back({"degree", degree_});
  node->counters.push_back({"rows_exchanged", rows_exchanged_});
  for (const auto& [name, value] : static_counters_) {
    node->counters.push_back({name, value});
  }
}

void ExchangeOperator::AppendProfileChildren(OperatorProfile* node) const {
  if (fragments_merged_ == 0) return;
  OperatorProfile child = fragment_profile_;
  child.fragments = fragments_merged_;
  node->children.push_back(std::move(child));
}

}  // namespace vstore
