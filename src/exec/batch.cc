#include "exec/batch.h"

#include <algorithm>

namespace vstore {

ColumnVector::ColumnVector(DataType type, int64_t capacity)
    : type_(type), capacity_(capacity) {
  switch (physical_type()) {
    case PhysicalType::kInt64:
      ints_.resize(static_cast<size_t>(capacity));
      break;
    case PhysicalType::kDouble:
      doubles_.resize(static_cast<size_t>(capacity));
      break;
    case PhysicalType::kString:
      strings_.resize(static_cast<size_t>(capacity));
      break;
  }
  validity_.assign(static_cast<size_t>(capacity), 1);
}

Value ColumnVector::GetValue(int64_t i) const {
  if (!validity_[static_cast<size_t>(i)]) return Value::Null(type_);
  switch (type_) {
    case DataType::kBool:
      return Value::Bool(ints_[static_cast<size_t>(i)] != 0);
    case DataType::kInt32:
      return Value::Int32(static_cast<int32_t>(ints_[static_cast<size_t>(i)]));
    case DataType::kInt64:
      return Value::Int64(ints_[static_cast<size_t>(i)]);
    case DataType::kDate32:
      return Value::Date32(static_cast<int32_t>(ints_[static_cast<size_t>(i)]));
    case DataType::kDouble:
      return Value::Double(doubles_[static_cast<size_t>(i)]);
    case DataType::kString:
      return Value::String(std::string(strings_[static_cast<size_t>(i)]));
  }
  return Value::Null(type_);
}

void ColumnVector::SetValue(int64_t i, const Value& v, Arena* arena) {
  if (v.is_null()) {
    validity_[static_cast<size_t>(i)] = 0;
    return;
  }
  validity_[static_cast<size_t>(i)] = 1;
  switch (physical_type()) {
    case PhysicalType::kInt64:
      ints_[static_cast<size_t>(i)] = v.int64();
      break;
    case PhysicalType::kDouble:
      doubles_[static_cast<size_t>(i)] = v.dbl();
      break;
    case PhysicalType::kString:
      strings_[static_cast<size_t>(i)] = arena->CopyString(v.str());
      break;
  }
}

void ColumnVector::ResetType(DataType type) {
  VSTORE_CHECK(PhysicalTypeOf(type) == physical_type());
  type_ = type;
}

Batch::Batch(const Schema& schema, int64_t capacity)
    : schema_(schema), capacity_(capacity) {
  columns_.reserve(static_cast<size_t>(schema.num_columns()));
  for (const Field& f : schema.fields()) {
    columns_.push_back(std::make_unique<ColumnVector>(f.type, capacity));
  }
  active_.assign(static_cast<size_t>(capacity), 0);
}

void Batch::ActivateAll() {
  std::fill(active_.begin(), active_.begin() + num_rows_, uint8_t{1});
  active_count_ = num_rows_;
}

void Batch::RecountActive() {
  int64_t count = 0;
  for (int64_t i = 0; i < num_rows_; ++i) count += active_[static_cast<size_t>(i)];
  active_count_ = count;
}

void Batch::Reset() {
  num_rows_ = 0;
  active_count_ = 0;
  arena_.Reset();
}

std::vector<Value> Batch::GetActiveRow(int64_t i) const {
  std::vector<Value> row;
  row.reserve(columns_.size());
  for (const auto& col : columns_) row.push_back(col->GetValue(i));
  return row;
}

}  // namespace vstore
