#ifndef VSTORE_EXEC_SPILL_H_
#define VSTORE_EXEC_SPILL_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/delta_store.h"  // row codec
#include "types/schema.h"
#include "types/value.h"

namespace vstore {

// Length-prefixed row records in temp files, used by spilling hash joins
// and hash aggregates. Files come from std::tmpfile() (unlinked on
// creation, reclaimed on fclose/exit).

// `bytes_written`, when non-null, accumulates the on-disk record size —
// callers feed it into per-operator spill_bytes accounting and the global
// vstore_spill_bytes_total counter.
inline Status WriteSpillRow(std::FILE* f, const Schema& schema,
                            const std::vector<Value>& row,
                            int64_t* bytes_written = nullptr) {
  std::string bytes = EncodeRow(schema, row);
  uint32_t len = static_cast<uint32_t>(bytes.size());
  if (std::fwrite(&len, sizeof(len), 1, f) != 1 ||
      (len > 0 && std::fwrite(bytes.data(), 1, len, f) != len)) {
    return Status::Internal("spill write failed");
  }
  if (bytes_written != nullptr) {
    *bytes_written += static_cast<int64_t>(sizeof(len)) + len;
  }
  return Status::OK();
}

// Reads the next record; returns false at clean EOF.
inline Result<bool> ReadSpillRow(std::FILE* f, const Schema& schema,
                                 std::vector<Value>* row) {
  uint32_t len;
  size_t got = std::fread(&len, sizeof(len), 1, f);
  if (got == 0) return false;  // EOF
  std::string bytes(len, '\0');
  if (len > 0 && std::fread(bytes.data(), 1, len, f) != len) {
    return Status::Internal("spill read failed: truncated record");
  }
  VSTORE_RETURN_IF_ERROR(DecodeRow(schema, bytes, row));
  return true;
}

}  // namespace vstore

#endif  // VSTORE_EXEC_SPILL_H_
