#include "exec/hash_table.h"

#include <bit>
#include <cstring>

#include "exec/expr_kernels.h"

namespace vstore {

RowFormat::RowFormat(const Schema& schema) {
  const int n = schema.num_columns();
  types_.reserve(static_cast<size_t>(n));
  offsets_.reserve(static_cast<size_t>(n));
  // Validity bytes first, padded to 8.
  size_t offset = (static_cast<size_t>(n) + 7) & ~size_t{7};
  for (int c = 0; c < n; ++c) {
    types_.push_back(schema.field(c).type);
    offsets_.push_back(offset);
    offset += PhysicalTypeOf(schema.field(c).type) == PhysicalType::kString
                  ? 16
                  : 8;
  }
  row_size_ = offset;
}

void RowFormat::Write(uint8_t* dst, const Batch& batch, int64_t row,
                      Arena* arena) const {
  for (int c = 0; c < num_columns(); ++c) {
    const ColumnVector& cv = batch.column(c);
    uint8_t valid = cv.validity()[row];
    dst[c] = valid;
    uint8_t* slot = dst + slot_offset(c);
    if (!valid) {
      std::memset(slot, 0, 8);
      continue;
    }
    switch (cv.physical_type()) {
      case PhysicalType::kInt64:
        std::memcpy(slot, cv.ints() + row, 8);
        break;
      case PhysicalType::kDouble:
        std::memcpy(slot, cv.doubles() + row, 8);
        break;
      case PhysicalType::kString: {
        std::string_view stable = arena->CopyString(cv.strings()[row]);
        const char* ptr = stable.data();
        uint64_t len = stable.size();
        std::memcpy(slot, &ptr, 8);
        std::memcpy(slot + 8, &len, 8);
        break;
      }
    }
  }
}

void RowFormat::WriteValues(uint8_t* dst, const std::vector<Value>& row,
                            Arena* arena) const {
  for (int c = 0; c < num_columns(); ++c) {
    const Value& v = row[static_cast<size_t>(c)];
    dst[c] = v.is_null() ? 0 : 1;
    uint8_t* slot = dst + slot_offset(c);
    if (v.is_null()) {
      std::memset(slot, 0, 8);
      continue;
    }
    switch (PhysicalTypeOf(types_[static_cast<size_t>(c)])) {
      case PhysicalType::kInt64: {
        int64_t x = v.int64();
        std::memcpy(slot, &x, 8);
        break;
      }
      case PhysicalType::kDouble: {
        double x = v.dbl();
        std::memcpy(slot, &x, 8);
        break;
      }
      case PhysicalType::kString: {
        std::string_view stable = arena->CopyString(v.str());
        const char* ptr = stable.data();
        uint64_t len = stable.size();
        std::memcpy(slot, &ptr, 8);
        std::memcpy(slot + 8, &len, 8);
        break;
      }
    }
  }
}

void RowFormat::WriteKeysFromBatch(uint8_t* dst, const Batch& batch,
                                   int64_t row,
                                   const std::vector<int>& batch_cols,
                                   Arena* arena) const {
  for (int c = 0; c < num_columns(); ++c) {
    const ColumnVector& cv = batch.column(batch_cols[static_cast<size_t>(c)]);
    uint8_t valid = cv.validity()[row];
    dst[c] = valid;
    uint8_t* slot = dst + slot_offset(c);
    if (!valid) {
      std::memset(slot, 0, 8);
      continue;
    }
    switch (cv.physical_type()) {
      case PhysicalType::kInt64:
        std::memcpy(slot, cv.ints() + row, 8);
        break;
      case PhysicalType::kDouble:
        std::memcpy(slot, cv.doubles() + row, 8);
        break;
      case PhysicalType::kString: {
        std::string_view stable = arena->CopyString(cv.strings()[row]);
        const char* ptr = stable.data();
        uint64_t len = stable.size();
        std::memcpy(slot, &ptr, 8);
        std::memcpy(slot + 8, &len, 8);
        break;
      }
    }
  }
}

bool CrossFormatKeysEqual(const RowFormat& af, const uint8_t* a,
                          const std::vector<int>& a_keys, const RowFormat& bf,
                          const uint8_t* b, const std::vector<int>& b_keys) {
  for (size_t i = 0; i < a_keys.size(); ++i) {
    int ka = a_keys[i], kb = b_keys[i];
    if (af.IsNull(a, ka) || bf.IsNull(b, kb)) return false;
    switch (PhysicalTypeOf(af.column_type(ka))) {
      case PhysicalType::kInt64:
        if (af.GetInt64(a, ka) != bf.GetInt64(b, kb)) return false;
        break;
      case PhysicalType::kDouble:
        if (af.GetDouble(a, ka) != bf.GetDouble(b, kb)) return false;
        break;
      case PhysicalType::kString:
        if (af.GetString(a, ka) != bf.GetString(b, kb)) return false;
        break;
    }
  }
  return true;
}

int64_t RowFormat::GetInt64(const uint8_t* row, int c) const {
  int64_t x;
  std::memcpy(&x, row + slot_offset(c), 8);
  return x;
}

double RowFormat::GetDouble(const uint8_t* row, int c) const {
  double x;
  std::memcpy(&x, row + slot_offset(c), 8);
  return x;
}

std::string_view RowFormat::GetString(const uint8_t* row, int c) const {
  const char* ptr;
  uint64_t len;
  std::memcpy(&ptr, row + slot_offset(c), 8);
  std::memcpy(&len, row + slot_offset(c) + 8, 8);
  return std::string_view(ptr, len);
}

Value RowFormat::GetValue(const uint8_t* row, int c) const {
  DataType type = types_[static_cast<size_t>(c)];
  if (IsNull(row, c)) return Value::Null(type);
  switch (type) {
    case DataType::kBool:
      return Value::Bool(GetInt64(row, c) != 0);
    case DataType::kInt32:
      return Value::Int32(static_cast<int32_t>(GetInt64(row, c)));
    case DataType::kInt64:
      return Value::Int64(GetInt64(row, c));
    case DataType::kDate32:
      return Value::Date32(static_cast<int32_t>(GetInt64(row, c)));
    case DataType::kDouble:
      return Value::Double(GetDouble(row, c));
    case DataType::kString:
      return Value::String(std::string(GetString(row, c)));
  }
  return Value::Null(type);
}

void RowFormat::CopyToVector(const uint8_t* row, int c, ColumnVector* dst,
                             int64_t out_i, Arena* dst_arena) const {
  bool valid = !IsNull(row, c);
  dst->mutable_validity()[out_i] = valid ? 1 : 0;
  if (!valid) return;
  switch (dst->physical_type()) {
    case PhysicalType::kInt64:
      dst->mutable_ints()[out_i] = GetInt64(row, c);
      break;
    case PhysicalType::kDouble:
      dst->mutable_doubles()[out_i] = GetDouble(row, c);
      break;
    case PhysicalType::kString:
      dst->mutable_strings()[out_i] = dst_arena->CopyString(GetString(row, c));
      break;
  }
}

namespace {

uint64_t HashSlot(DataType type, const uint8_t* row, const RowFormat& fmt,
                  int c) {
  if (fmt.IsNull(row, c)) return kNullKeyHashTag;
  switch (PhysicalTypeOf(type)) {
    case PhysicalType::kInt64:
      return HashInt64(static_cast<uint64_t>(fmt.GetInt64(row, c)));
    case PhysicalType::kDouble:
      return HashInt64(std::bit_cast<uint64_t>(fmt.GetDouble(row, c)));
    case PhysicalType::kString:
      return Hash64(fmt.GetString(row, c));
  }
  return 0;
}

uint64_t HashBatchSlot(const ColumnVector& cv, int64_t i) {
  if (!cv.validity()[i]) return kNullKeyHashTag;
  switch (cv.physical_type()) {
    case PhysicalType::kInt64:
      return HashInt64(static_cast<uint64_t>(cv.ints()[i]));
    case PhysicalType::kDouble:
      return HashInt64(std::bit_cast<uint64_t>(cv.doubles()[i]));
    case PhysicalType::kString:
      return Hash64(cv.strings()[i]);
  }
  return 0;
}

}  // namespace

uint64_t RowFormat::HashKeys(const uint8_t* row,
                             const std::vector<int>& keys) const {
  uint64_t h = kKeyHashSeed;
  for (int k : keys) {
    h = HashCombine(h, HashSlot(types_[static_cast<size_t>(k)], row, *this, k));
  }
  return h;
}

uint64_t RowFormat::HashKeysFromBatch(const Batch& batch, int64_t i,
                                      const std::vector<int>& keys) const {
  uint64_t h = kKeyHashSeed;
  for (int k : keys) {
    h = HashCombine(h, HashBatchSlot(batch.column(k), i));
  }
  return h;
}

void HashKeysBatch(const Batch& batch, const std::vector<int>& keys,
                   const uint8_t* active, uint64_t* out) {
  const int64_t n = batch.num_rows();
  kernels::FillU64(kKeyHashSeed, n, out);
  for (int k : keys) {
    const ColumnVector& cv = batch.column(k);
    switch (cv.physical_type()) {
      case PhysicalType::kInt64:
        kernels::HashCombineColumn(
            reinterpret_cast<const uint64_t*>(cv.ints()), cv.validity(),
            kNullKeyHashTag, n, out);
        break;
      case PhysicalType::kDouble:
        // Doubles hash their bit patterns, same as HashBatchSlot.
        kernels::HashCombineColumn(
            reinterpret_cast<const uint64_t*>(cv.doubles()), cv.validity(),
            kNullKeyHashTag, n, out);
        break;
      case PhysicalType::kString: {
        const std::string_view* sv = cv.strings();
        const uint8_t* valid = cv.validity();
        for (int64_t i = 0; i < n; ++i) {
          if (active != nullptr && !active[i]) continue;
          out[i] = HashCombine(out[i],
                               valid[i] ? Hash64(sv[i]) : kNullKeyHashTag);
        }
        break;
      }
    }
  }
}

bool RowFormat::KeysEqual(const uint8_t* a, const std::vector<int>& a_keys,
                          const uint8_t* b,
                          const std::vector<int>& b_keys) const {
  for (size_t i = 0; i < a_keys.size(); ++i) {
    int ka = a_keys[i], kb = b_keys[i];
    if (IsNull(a, ka) || IsNull(b, kb)) return false;
    switch (PhysicalTypeOf(types_[static_cast<size_t>(ka)])) {
      case PhysicalType::kInt64:
        if (GetInt64(a, ka) != GetInt64(b, kb)) return false;
        break;
      case PhysicalType::kDouble:
        if (GetDouble(a, ka) != GetDouble(b, kb)) return false;
        break;
      case PhysicalType::kString:
        if (GetString(a, ka) != GetString(b, kb)) return false;
        break;
    }
  }
  return true;
}

bool RowFormat::KeysEqualBatch(const uint8_t* row,
                               const std::vector<int>& row_keys,
                               const Batch& batch, int64_t i,
                               const std::vector<int>& batch_keys) const {
  for (size_t k = 0; k < row_keys.size(); ++k) {
    int rk = row_keys[k];
    const ColumnVector& cv = batch.column(batch_keys[k]);
    if (IsNull(row, rk) || !cv.validity()[i]) return false;
    switch (cv.physical_type()) {
      case PhysicalType::kInt64:
        if (GetInt64(row, rk) != cv.ints()[i]) return false;
        break;
      case PhysicalType::kDouble:
        if (GetDouble(row, rk) != cv.doubles()[i]) return false;
        break;
      case PhysicalType::kString:
        if (GetString(row, rk) != cv.strings()[i]) return false;
        break;
    }
  }
  return true;
}

SerializedRowHashTable::SerializedRowHashTable(int64_t expected_rows) {
  size_t buckets = std::bit_ceil(
      static_cast<size_t>(std::max<int64_t>(expected_rows * 2, 16)));
  buckets_.assign(buckets, nullptr);
}

void SerializedRowHashTable::Insert(uint8_t* entry, uint64_t hash) {
  if (num_entries_ >= static_cast<int64_t>(buckets_.size())) Grow();
  size_t b = static_cast<size_t>(hash) & (buckets_.size() - 1);
  uint8_t* head = buckets_[b];
  std::memcpy(entry, &head, sizeof(head));
  std::memcpy(entry + 8, &hash, sizeof(hash));
  buckets_[b] = entry;
  ++num_entries_;
}

void SerializedRowHashTable::Grow() {
  std::vector<uint8_t*> old = std::move(buckets_);
  buckets_.assign(old.size() * 2, nullptr);
  reservation_.Set(bucket_bytes());
  for (uint8_t* entry : old) {
    while (entry != nullptr) {
      uint8_t* next;
      uint64_t hash;
      std::memcpy(&next, entry, sizeof(next));
      std::memcpy(&hash, entry + 8, sizeof(hash));
      size_t b = static_cast<size_t>(hash) & (buckets_.size() - 1);
      uint8_t* head = buckets_[b];
      std::memcpy(entry, &head, sizeof(head));
      buckets_[b] = entry;
      entry = next;
    }
  }
}

}  // namespace vstore
