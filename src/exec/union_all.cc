#include "exec/union_all.h"

#include "common/macros.h"

namespace vstore {

UnionAllOperator::UnionAllOperator(std::vector<BatchOperatorPtr> children,
                                   ExecContext* ctx)
    : children_(std::move(children)), ctx_(ctx) {
  VSTORE_CHECK(!children_.empty());
  for (const auto& child : children_) {
    VSTORE_CHECK(
        child->output_schema().Equals(children_.front()->output_schema()));
  }
}

Status UnionAllOperator::OpenImpl() {
  current_ = 0;
  for (auto& child : children_) {
    VSTORE_RETURN_IF_ERROR(child->Open());
  }
  return Status::OK();
}

Result<Batch*> UnionAllOperator::NextImpl() {
  while (current_ < children_.size()) {
    VSTORE_ASSIGN_OR_RETURN(Batch * batch, children_[current_]->Next());
    if (batch != nullptr) return batch;
    ++current_;
  }
  return static_cast<Batch*>(nullptr);
}

void UnionAllOperator::CloseImpl() {
  for (auto& child : children_) child->Close();
}

}  // namespace vstore
