#ifndef VSTORE_EXEC_SORT_H_
#define VSTORE_EXEC_SORT_H_

#include <memory>
#include <vector>

#include "common/memory_tracker.h"
#include "exec/operator.h"

namespace vstore {

struct SortKey {
  int column;
  bool ascending = true;
};

// Materializing sort. The paper keeps sorting in row mode (batch plans
// switch to row mode for ORDER BY); this operator is the batch-boundary
// equivalent: it materializes its input as rows, sorts, and re-emits
// batches. With `limit` >= 0 it behaves as Top-N (partial sort).
class SortOperator final : public BatchOperator {
 public:
  SortOperator(BatchOperatorPtr input, std::vector<SortKey> keys,
               int64_t limit, ExecContext* ctx)
      : input_(std::move(input)), keys_(std::move(keys)), limit_(limit),
        ctx_(ctx) {}

  const Schema& output_schema() const override {
    return input_->output_schema();
  }
  std::string name() const override {
    return limit_ >= 0 ? "TopN" : "Sort";
  }

 protected:
  Status OpenImpl() override;
  Result<Batch*> NextImpl() override;
  void CloseImpl() override;
  std::vector<const BatchOperator*> ProfileInputs() const override {
    return {input_.get()};
  }
  void AppendProfileCounters(OperatorProfile* node) const override {
    node->counters.push_back({"rows_sorted", rows_sorted_});
  }

 private:
  // Estimated bytes held by the materialized rows (headers + Value slots;
  // string payloads are not itemized).
  int64_t MaterializedBytes() const;

  BatchOperatorPtr input_;
  std::vector<SortKey> keys_;
  int64_t limit_;
  ExecContext* ctx_;

  // Per-operator tracker (null when tracking is off); declared before the
  // reservation so the reservation releases into a live tracker.
  std::unique_ptr<MemoryTracker> mem_;
  MemoryReservation reservation_;

  std::vector<std::vector<Value>> rows_;
  size_t emit_pos_ = 0;
  std::unique_ptr<Batch> output_;
  int64_t rows_sorted_ = 0;
};

// Compares two rows on the given sort keys; nulls sort first.
int CompareRowsOnKeys(const std::vector<Value>& a, const std::vector<Value>& b,
                      const std::vector<SortKey>& keys);

}  // namespace vstore

#endif  // VSTORE_EXEC_SORT_H_
