#include "exec/profile.h"

#include <algorithm>
#include <cstdio>

#include "common/json_util.h"

namespace vstore {

namespace {

// Merges `src` counters into `dst` by name, preserving dst's order and
// appending counters dst has not seen.
void MergeCounters(std::vector<std::pair<std::string, int64_t>>* dst,
                   const std::vector<std::pair<std::string, int64_t>>& src) {
  for (const auto& [name, value] : src) {
    bool found = false;
    for (auto& entry : *dst) {
      if (entry.first == name) {
        entry.second += value;
        found = true;
        break;
      }
    }
    if (!found) dst->push_back({name, value});
  }
}

}  // namespace

void OperatorProfile::MergeFrom(const OperatorProfile& other) {
  open_ns += other.open_ns;
  next_ns += other.next_ns;
  close_ns += other.close_ns;
  batches_produced += other.batches_produced;
  rows_produced += other.rows_produced;
  peak_memory_bytes = std::max(peak_memory_bytes, other.peak_memory_bytes);
  mem_current_bytes += other.mem_current_bytes;
  spill_bytes += other.spill_bytes;
  fragments += other.fragments;
  MergeCounters(&counters, other.counters);
  size_t common = std::min(children.size(), other.children.size());
  for (size_t i = 0; i < common; ++i) {
    children[i].MergeFrom(other.children[i]);
  }
  for (size_t i = common; i < other.children.size(); ++i) {
    children.push_back(other.children[i]);
  }
}

int64_t OperatorProfile::Counter(const std::string& counter_name,
                                 int64_t fallback) const {
  for (const auto& [name, value] : counters) {
    if (name == counter_name) return value;
  }
  return fallback;
}

int64_t OperatorProfile::CounterDeep(const std::string& counter_name) const {
  int64_t total = Counter(counter_name);
  for (const OperatorProfile& child : children) {
    total += child.CounterDeep(counter_name);
  }
  return total;
}

int64_t OperatorProfile::SpillBytesDeep() const {
  int64_t total = spill_bytes;
  for (const OperatorProfile& child : children) {
    total += child.SpillBytesDeep();
  }
  return total;
}

namespace {

struct ProfileRow {
  std::string op;        // indented operator name
  std::string rows;
  std::string batches;
  std::string total_ms;
  std::string self_ms;
  std::string memory;    // peak (tracker-backed high-water mark)
  std::string mem_cur;   // tracker-resident bytes at profile time
  std::string spill;     // bytes written to spill files
  std::string detail;    // operator-specific counters
};

std::string FmtMs(int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e6);
  return buf;
}

std::string FmtMemory(int64_t bytes) {
  if (bytes <= 0) return "";
  char buf[32];
  if (bytes < 1024) {
    std::snprintf(buf, sizeof(buf), "%lldB", static_cast<long long>(bytes));
  } else if (bytes < 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1fKiB",
                  static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fMiB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
  }
  return buf;
}

void Flatten(const OperatorProfile& node, int depth,
             std::vector<ProfileRow>* rows) {
  ProfileRow row;
  row.op = std::string(static_cast<size_t>(depth) * 2, ' ');
  if (depth > 0) {
    row.op.resize(row.op.size() - 2);
    row.op += "└ ";  // └
  }
  row.op += node.name;
  if (node.fragments > 1) {
    row.op += " x" + std::to_string(node.fragments);
  }
  row.rows = std::to_string(node.rows_produced);
  row.batches = std::to_string(node.batches_produced);
  row.total_ms = FmtMs(node.TotalNs());
  // Self time: inclusive minus the children driven from this thread.
  // Fragment subtrees under an Exchange run on worker threads, so their
  // time is not nested inside the parent — keep the parent's total.
  int64_t child_ns = 0;
  if (node.fragments == 0) {
    for (const OperatorProfile& child : node.children) {
      if (child.fragments > 0) continue;
      child_ns += child.TotalNs();
    }
  }
  row.self_ms = FmtMs(std::max<int64_t>(node.TotalNs() - child_ns, 0));
  row.memory = FmtMemory(node.peak_memory_bytes);
  row.mem_cur = FmtMemory(node.mem_current_bytes);
  row.spill = FmtMemory(node.spill_bytes);
  for (const auto& [name, value] : node.counters) {
    if (!row.detail.empty()) row.detail += ' ';
    row.detail += name + "=" + std::to_string(value);
  }
  rows->push_back(std::move(row));
  for (const OperatorProfile& child : node.children) {
    // Mark merged fragment subtrees so the reader sees the thread boundary.
    Flatten(child, depth + 1, rows);
  }
}

}  // namespace

std::string FormatProfile(const OperatorProfile& root) {
  std::vector<ProfileRow> rows;
  Flatten(root, 0, &rows);

  const char* headers[] = {"operator", "rows",   "batches", "total_ms",
                           "self_ms",  "memory", "mem_cur", "spill"};
  size_t widths[8];
  for (int c = 0; c < 8; ++c) widths[c] = std::string(headers[c]).size();
  auto measure = [&](const ProfileRow& r) {
    // std::string_view-free width bookkeeping; op column counts the
    // UTF-8 tree glyph as one display cell.
    auto display = [](const std::string& s) {
      size_t n = 0;
      for (char ch : s) {
        if ((ch & 0xC0) != 0x80) ++n;  // skip UTF-8 continuation bytes
      }
      return n;
    };
    widths[0] = std::max(widths[0], display(r.op));
    widths[1] = std::max(widths[1], r.rows.size());
    widths[2] = std::max(widths[2], r.batches.size());
    widths[3] = std::max(widths[3], r.total_ms.size());
    widths[4] = std::max(widths[4], r.self_ms.size());
    widths[5] = std::max(widths[5], r.memory.size());
    widths[6] = std::max(widths[6], r.mem_cur.size());
    widths[7] = std::max(widths[7], r.spill.size());
  };
  for (const ProfileRow& r : rows) measure(r);

  std::string out;
  auto pad_left = [](const std::string& s, size_t w) {
    return std::string(w - std::min(w, s.size()), ' ') + s;
  };
  auto pad_right = [](const std::string& s, size_t w, size_t display) {
    return s + std::string(w - std::min(w, display), ' ');
  };
  auto display = [](const std::string& s) {
    size_t n = 0;
    for (char ch : s) {
      if ((ch & 0xC0) != 0x80) ++n;
    }
    return n;
  };

  out += pad_right(headers[0], widths[0], std::string(headers[0]).size());
  for (int c = 1; c < 8; ++c) {
    out += "  " + pad_left(headers[c], widths[c]);
  }
  out += "\n";
  for (const ProfileRow& r : rows) {
    out += pad_right(r.op, widths[0], display(r.op));
    out += "  " + pad_left(r.rows, widths[1]);
    out += "  " + pad_left(r.batches, widths[2]);
    out += "  " + pad_left(r.total_ms, widths[3]);
    out += "  " + pad_left(r.self_ms, widths[4]);
    out += "  " + pad_left(r.memory, widths[5]);
    out += "  " + pad_left(r.mem_cur, widths[6]);
    out += "  " + pad_left(r.spill, widths[7]);
    if (!r.detail.empty()) {
      out += "  [" + r.detail + "]";
    }
    out += "\n";
  }
  return out;
}

namespace {

// String escaping lives in common/json_util.h (shared with MetricsToJson
// and the trace dump) so operator/counter names with quotes, backslashes
// or control characters render as valid JSON everywhere.
void AppendJson(const OperatorProfile& node, std::string* out) {
  *out += "{\"name\":";
  AppendJsonString(node.name, out);
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                ",\"open_ms\":%.3f,\"next_ms\":%.3f,\"close_ms\":%.3f"
                ",\"rows\":%lld,\"batches\":%lld",
                static_cast<double>(node.open_ns) / 1e6,
                static_cast<double>(node.next_ns) / 1e6,
                static_cast<double>(node.close_ns) / 1e6,
                static_cast<long long>(node.rows_produced),
                static_cast<long long>(node.batches_produced));
  *out += buf;
  if (node.peak_memory_bytes > 0) {
    std::snprintf(buf, sizeof(buf), ",\"peak_memory_bytes\":%lld",
                  static_cast<long long>(node.peak_memory_bytes));
    *out += buf;
  }
  if (node.mem_current_bytes > 0) {
    std::snprintf(buf, sizeof(buf), ",\"mem_current_bytes\":%lld",
                  static_cast<long long>(node.mem_current_bytes));
    *out += buf;
  }
  if (node.spill_bytes > 0) {
    std::snprintf(buf, sizeof(buf), ",\"spill_bytes\":%lld",
                  static_cast<long long>(node.spill_bytes));
    *out += buf;
  }
  if (node.fragments > 0) {
    std::snprintf(buf, sizeof(buf), ",\"fragments\":%lld",
                  static_cast<long long>(node.fragments));
    *out += buf;
  }
  if (!node.counters.empty()) {
    *out += ",\"counters\":{";
    bool first = true;
    for (const auto& [name, value] : node.counters) {
      if (!first) *out += ",";
      first = false;
      AppendJsonString(name, out);
      std::snprintf(buf, sizeof(buf), ":%lld", static_cast<long long>(value));
      *out += buf;
    }
    *out += "}";
  }
  if (!node.children.empty()) {
    *out += ",\"children\":[";
    for (size_t i = 0; i < node.children.size(); ++i) {
      if (i > 0) *out += ",";
      AppendJson(node.children[i], out);
    }
    *out += "]";
  }
  *out += "}";
}

}  // namespace

std::string ProfileToJson(const OperatorProfile& root) {
  std::string out;
  AppendJson(root, &out);
  return out;
}

}  // namespace vstore
