#ifndef VSTORE_EXEC_BLOOM_FILTER_H_
#define VSTORE_EXEC_BLOOM_FILTER_H_

#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace vstore {

// Bitmap (Bloom) filter built by a hash join during its build phase and
// pushed down into the probe-side column store scan (paper §5.2). Keys are
// pre-hashed 64-bit values.
//
// Register-blocked layout: each key maps to one 64-byte block (a single
// cache line) and sets four bits inside it, so a probe costs one memory
// access — the property that makes pushing the filter into a scan cheap
// enough to pay off.
class BloomFilter {
 public:
  // An empty filter passes everything; call Init() to size it. Two-phase
  // construction lets a hash join hand the (not yet populated) filter to
  // the probe-side scan at plan time and fill it during its build phase.
  BloomFilter() = default;
  // Sized for a ~1% false-positive rate at `expected_keys` insertions.
  explicit BloomFilter(int64_t expected_keys) { Init(expected_keys); }
  VSTORE_DISALLOW_COPY_AND_ASSIGN(BloomFilter);

  void Init(int64_t expected_keys);

  // ORs `other`'s bits into this filter. Both filters must have been
  // Init()ed with the same expected key count (Init is deterministic, so
  // parallel join builds give each build thread a private filter sized from
  // the shared row count and fold them together here).
  void MergeFrom(const BloomFilter& other);

  void Insert(uint64_t hash) {
    Block& block = blocks_[BlockIndex(hash)];
    uint32_t h = static_cast<uint32_t>(hash);
    for (int i = 0; i < kProbes; ++i) {
      block.words[(h >> (i * 9)) & 7] |= uint64_t{1} << ((h >> (i * 9 + 3)) & 63);
    }
  }

  bool MayContain(uint64_t hash) const {
    if (blocks_.empty()) return true;  // uninitialized: pass-through
    const Block& block = blocks_[BlockIndex(hash)];
    uint32_t h = static_cast<uint32_t>(hash);
    for (int i = 0; i < kProbes; ++i) {
      if ((block.words[(h >> (i * 9)) & 7] &
           (uint64_t{1} << ((h >> (i * 9 + 3)) & 63))) == 0) {
        return false;
      }
    }
    return true;
  }

  int64_t SizeBytes() const {
    return static_cast<int64_t>(blocks_.size() * sizeof(Block));
  }

 private:
  static constexpr int kProbes = 3;

  struct alignas(64) Block {
    uint64_t words[8] = {};
  };

  size_t BlockIndex(uint64_t hash) const {
    return static_cast<size_t>(hash >> 32) & (blocks_.size() - 1);
  }

  std::vector<Block> blocks_;
};

}  // namespace vstore

#endif  // VSTORE_EXEC_BLOOM_FILTER_H_
