#ifndef VSTORE_EXEC_HASH_TABLE_H_
#define VSTORE_EXEC_HASH_TABLE_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/arena.h"
#include "common/hash.h"
#include "common/macros.h"
#include "common/memory_tracker.h"
#include "exec/batch.h"
#include "types/schema.h"
#include "types/value.h"

namespace vstore {

// Seed folded into every key hash, and the tag null keys hash to. These
// are shared between RowFormat::HashKeys* and the scan-side Bloom probe
// (ColumnStoreScanOperator) so a join-built filter and the scan agree on
// single-key hashes.
constexpr uint64_t kKeyHashSeed = 0x51ed270b;
constexpr uint64_t kNullKeyHashTag = 0x9ae16a3b2f90404fULL;

// Hash of a single raw key value as used by joins, aggregates, and Bloom
// filters (single-column keys only for Bloom pushdown).
inline uint64_t SingleKeyHash(uint64_t slot_hash) {
  return HashCombine(kKeyHashSeed, slot_hash);
}

// Fixed-offset serialized row format used by hash join build sides and
// hash aggregation state. Layout: a validity byte per column, padded to 8
// bytes, then one slot per column — 8 bytes for int64/double, 16 bytes for
// string (pointer + length into an arena).
class RowFormat {
 public:
  explicit RowFormat(const Schema& schema);

  int num_columns() const { return static_cast<int>(offsets_.size()); }
  size_t row_size() const { return row_size_; }
  DataType column_type(int c) const { return types_[static_cast<size_t>(c)]; }

  // Serializes row `row` of `batch` into `dst` (row_size() bytes). String
  // payloads are copied into `arena`.
  void Write(uint8_t* dst, const Batch& batch, int64_t row,
             Arena* arena) const;
  void WriteValues(uint8_t* dst, const std::vector<Value>& row,
                   Arena* arena) const;
  // Serializes a column subset of batch row `row` into `dst`: serialized
  // column k takes its value from batch column `batch_cols[k]`. Equivalent
  // to materializing the key Values and calling WriteValues, minus the
  // per-row temporaries (hash aggregation's new-group fast path).
  void WriteKeysFromBatch(uint8_t* dst, const Batch& batch, int64_t row,
                          const std::vector<int>& batch_cols,
                          Arena* arena) const;

  bool IsNull(const uint8_t* row, int c) const {
    return row[static_cast<size_t>(c)] == 0;
  }
  int64_t GetInt64(const uint8_t* row, int c) const;
  double GetDouble(const uint8_t* row, int c) const;
  std::string_view GetString(const uint8_t* row, int c) const;
  Value GetValue(const uint8_t* row, int c) const;

  // Copies column `c` of the serialized row into position `out_i` of `dst`.
  // Strings are re-anchored into `dst_arena`.
  void CopyToVector(const uint8_t* row, int c, ColumnVector* dst,
                    int64_t out_i, Arena* dst_arena) const;

  // Hash of the given key columns (nulls hash to a fixed tag; callers that
  // need SQL join semantics must skip null keys themselves).
  uint64_t HashKeys(const uint8_t* row, const std::vector<int>& keys) const;
  uint64_t HashKeysFromBatch(const Batch& batch, int64_t i,
                             const std::vector<int>& keys) const;

  // True if the key columns of `a` equal those of `b` (null keys never
  // compare equal).
  bool KeysEqual(const uint8_t* a, const std::vector<int>& a_keys,
                 const uint8_t* b, const std::vector<int>& b_keys) const;
  // Compares a serialized row's keys against a batch row's keys.
  bool KeysEqualBatch(const uint8_t* row, const std::vector<int>& row_keys,
                      const Batch& batch, int64_t i,
                      const std::vector<int>& batch_keys) const;

 private:
  size_t slot_offset(int c) const { return offsets_[static_cast<size_t>(c)]; }

  std::vector<size_t> offsets_;
  std::vector<DataType> types_;
  size_t row_size_ = 0;
};

// Batch-at-a-time variant of RowFormat::HashKeysFromBatch: hashes the key
// columns of every row of `batch` into out[0, num_rows). Numeric columns
// run through the SIMD hash kernels over all lanes (inactive lanes hold
// initialized values); string columns are hashed only where `active` is
// set, because string views in inactive lanes may dangle after a sparse
// gather. out[i] therefore matches HashKeysFromBatch exactly for active
// rows and is unspecified elsewhere. `active` may be null (= all rows).
void HashKeysBatch(const Batch& batch, const std::vector<int>& keys,
                   const uint8_t* active, uint64_t* out);

// Key equality between rows serialized under two different formats (spill
// drains compare a serialized probe row against serialized build rows).
bool CrossFormatKeysEqual(const RowFormat& af, const uint8_t* a,
                          const std::vector<int>& a_keys, const RowFormat& bf,
                          const uint8_t* b, const std::vector<int>& b_keys);

// Chained hash table over serialized rows. Each entry is a row prefixed by
// a 16-byte header: [next pointer : 8][hash : 8]. Rows live in an Arena
// owned by the caller; the table stores only bucket heads.
class SerializedRowHashTable {
 public:
  explicit SerializedRowHashTable(int64_t expected_rows = 1024);

  static constexpr size_t kHeaderSize = 16;

  // `entry` points at the 16-byte header followed by the row payload.
  void Insert(uint8_t* entry, uint64_t hash);

  // Walks the chain for `hash`; fn(payload) is called for entries with a
  // matching stored hash (caller verifies key equality). Return false from
  // fn to stop early.
  template <typename Fn>
  void ForEachCandidate(uint64_t hash, Fn fn) const {
    if (buckets_.empty()) return;
    const uint8_t* entry =
        buckets_[static_cast<size_t>(hash) & (buckets_.size() - 1)];
    while (entry != nullptr) {
      uint64_t entry_hash;
      std::memcpy(&entry_hash, entry + 8, sizeof(entry_hash));
      const uint8_t* next;
      std::memcpy(&next, entry, sizeof(next));
      if (entry_hash == hash) {
        if (!fn(entry + kHeaderSize)) return;
      }
      entry = next;
    }
  }

  // Raw chain access for resumable iteration (hash join emission can pause
  // mid-chain when its output batch fills).
  const uint8_t* ChainHead(uint64_t hash) const {
    if (buckets_.empty()) return nullptr;
    return buckets_[static_cast<size_t>(hash) & (buckets_.size() - 1)];
  }
  static const uint8_t* ChainNext(const uint8_t* entry) {
    const uint8_t* next;
    std::memcpy(&next, entry, sizeof(next));
    return next;
  }
  static uint64_t EntryHash(const uint8_t* entry) {
    uint64_t h;
    std::memcpy(&h, entry + 8, sizeof(h));
    return h;
  }
  static const uint8_t* EntryPayload(const uint8_t* entry) {
    return entry + kHeaderSize;
  }

  int64_t num_entries() const { return num_entries_; }

  // Charges the bucket array against `tracker` (rows are charged through
  // the caller's arena). Re-charged on Grow.
  void SetMemoryTracker(MemoryTracker* tracker) {
    reservation_.Reset(tracker);
    reservation_.Set(bucket_bytes());
  }

  int64_t bucket_bytes() const {
    return static_cast<int64_t>(buckets_.size() * sizeof(uint8_t*));
  }

 private:
  void Grow();

  std::vector<uint8_t*> buckets_;
  int64_t num_entries_ = 0;
  MemoryReservation reservation_;
};

}  // namespace vstore

#endif  // VSTORE_EXEC_HASH_TABLE_H_
