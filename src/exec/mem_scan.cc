#include "exec/mem_scan.h"

#include <algorithm>

namespace vstore {

Status MemTableScanOperator::OpenImpl() {
  pos_ = 0;
  if (output_ == nullptr) {
    output_ = std::make_unique<Batch>(data_->schema(), ctx_->batch_size);
  }
  return Status::OK();
}

Result<Batch*> MemTableScanOperator::NextImpl() {
  const int64_t total = data_->num_rows();
  if (pos_ >= total) return nullptr;
  const int64_t n = std::min(ctx_->batch_size, total - pos_);
  output_->Reset();
  for (int c = 0; c < data_->num_columns(); ++c) {
    const ColumnData& src = data_->column(c);
    ColumnVector& dst = output_->column(c);
    uint8_t* validity = dst.mutable_validity();
    switch (dst.physical_type()) {
      case PhysicalType::kInt64: {
        int64_t* out = dst.mutable_ints();
        for (int64_t i = 0; i < n; ++i) out[i] = src.GetInt64(pos_ + i);
        break;
      }
      case PhysicalType::kDouble: {
        double* out = dst.mutable_doubles();
        for (int64_t i = 0; i < n; ++i) out[i] = src.GetDouble(pos_ + i);
        break;
      }
      case PhysicalType::kString: {
        std::string_view* out = dst.mutable_strings();
        for (int64_t i = 0; i < n; ++i) out[i] = src.GetString(pos_ + i);
        break;
      }
    }
    for (int64_t i = 0; i < n; ++i) {
      validity[i] = src.IsNull(pos_ + i) ? uint8_t{0} : uint8_t{1};
    }
  }
  output_->set_num_rows(n);
  output_->ActivateAll();
  pos_ += n;
  return output_.get();
}

Result<bool> MemTableRowScanOperator::Next(std::vector<Value>* row) {
  if (pos_ >= data_->num_rows()) return false;
  *row = data_->GetRow(pos_++);
  return true;
}

}  // namespace vstore
