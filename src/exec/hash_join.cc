#include "exec/hash_join.h"

#include <algorithm>
#include <bit>

#include "common/macros.h"
#include "common/metrics.h"
#include "exec/spill.h"

namespace vstore {

const char* JoinTypeName(JoinType type) {
  switch (type) {
    case JoinType::kInner:
      return "Inner";
    case JoinType::kLeftOuter:
      return "LeftOuter";
    case JoinType::kLeftSemi:
      return "LeftSemi";
    case JoinType::kLeftAnti:
      return "LeftAnti";
  }
  return "?";
}

Schema HashJoinOutputSchema(const Schema& probe, const Schema& build,
                            JoinType type) {
  std::vector<Field> fields = probe.fields();
  if (JoinEmitsBuildColumns(type)) {
    for (const Field& f : build.fields()) {
      Field nf = f;
      nf.nullable = true;  // null-extended under outer joins
      fields.push_back(nf);
    }
  }
  return Schema(std::move(fields));
}

void JoinRowEmitter::EmitFromBatch(Batch* output, const Batch& probe,
                                   int64_t row, const uint8_t* build_row,
                                   int64_t out_row) const {
  const int probe_cols = probe.num_columns();
  for (int c = 0; c < probe_cols; ++c) {
    const ColumnVector& src = probe.column(c);
    ColumnVector& dst = output->column(c);
    dst.mutable_validity()[out_row] = src.validity()[row];
    switch (src.physical_type()) {
      case PhysicalType::kInt64:
        dst.mutable_ints()[out_row] = src.ints()[row];
        break;
      case PhysicalType::kDouble:
        dst.mutable_doubles()[out_row] = src.doubles()[row];
        break;
      case PhysicalType::kString:
        // Probe batch arenas are reused across batches while this output
        // accumulates rows from several of them — copy.
        dst.mutable_strings()[out_row] =
            output->arena()->CopyString(src.strings()[row]);
        break;
    }
  }
  if (!emit_build_columns_) return;
  const int build_cols = build_format_->num_columns();
  for (int c = 0; c < build_cols; ++c) {
    ColumnVector& dst = output->column(probe_cols + c);
    if (build_row == nullptr) {
      dst.mutable_validity()[out_row] = 0;
    } else {
      build_format_->CopyToVector(build_row, c, &dst, out_row,
                                  output->arena());
    }
  }
}

void JoinRowEmitter::EmitFromSerialized(Batch* output,
                                        const uint8_t* probe_row,
                                        const uint8_t* build_row,
                                        int64_t out_row) const {
  const int probe_cols = probe_format_->num_columns();
  for (int c = 0; c < probe_cols; ++c) {
    probe_format_->CopyToVector(probe_row, c, &output->column(c), out_row,
                                output->arena());
  }
  if (!emit_build_columns_) return;
  for (int c = 0; c < build_format_->num_columns(); ++c) {
    ColumnVector& dst = output->column(probe_cols + c);
    if (build_row == nullptr) {
      dst.mutable_validity()[out_row] = 0;
    } else {
      build_format_->CopyToVector(build_row, c, &dst, out_row,
                                  output->arena());
    }
  }
}

HashJoinOperator::HashJoinOperator(BatchOperatorPtr probe,
                                   BatchOperatorPtr build, Options options,
                                   ExecContext* ctx)
    : probe_(std::move(probe)),
      build_(std::move(build)),
      options_(std::move(options)),
      ctx_(ctx),
      build_format_(build_->output_schema()),
      probe_format_(probe_->output_schema()),
      emit_build_columns_(JoinEmitsBuildColumns(options_.join_type)),
      emitter_(&probe_format_, &build_format_, emit_build_columns_) {
  VSTORE_CHECK(!options_.probe_keys.empty() &&
               options_.probe_keys.size() == options_.build_keys.size());
  VSTORE_CHECK(std::has_single_bit(
      static_cast<unsigned>(options_.num_partitions)));
  // Bloom pushdown must not hide probe rows from outer/anti joins.
  if (options_.bloom_target != nullptr) {
    VSTORE_CHECK(options_.join_type == JoinType::kInner ||
                 options_.join_type == JoinType::kLeftSemi);
    bloom_ = options_.bloom_target;
  }
  output_schema_ = HashJoinOutputSchema(
      probe_->output_schema(), build_->output_schema(), options_.join_type);
  partition_shift_ =
      64 - std::countr_zero(static_cast<unsigned>(options_.num_partitions));
  if (ctx_ != nullptr && ctx_->memory_tracker != nullptr) {
    mem_ = std::make_unique<MemoryTracker>(name(), "operator",
                                           ctx_->memory_tracker);
    pressure_listener_ = ctx_->memory_tracker->AddPressureListener(
        [this] { pressure_.store(true, std::memory_order_relaxed); });
  }
}

HashJoinOperator::~HashJoinOperator() {
  Close();
  if (pressure_listener_ != 0) {
    ctx_->memory_tracker->RemovePressureListener(pressure_listener_);
  }
}

Status HashJoinOperator::SpillRow(std::FILE* f, const Schema& schema,
                                  const std::vector<Value>& row) {
  int64_t bytes = 0;
  VSTORE_RETURN_IF_ERROR(WriteSpillRow(f, schema, row, &bytes));
  RecordSpillBytes(bytes);
  AddGlobalSpillBytes(bytes);
  return Status::OK();
}

bool HashJoinOperator::UnderMemoryPressure(int64_t local_budget) const {
  if (local_budget > 0 && total_build_bytes_ > local_budget) return true;
  MemoryTracker* query = ctx_ != nullptr ? ctx_->memory_tracker : nullptr;
  if (query == nullptr) return false;
  if (pressure_.exchange(false, std::memory_order_relaxed)) return true;
  return query->over_budget();
}

std::string HashJoinOperator::name() const {
  return std::string("HashJoin(") + JoinTypeName(options_.join_type) + ")";
}

void HashJoinOperator::AppendProfileCounters(OperatorProfile* node) const {
  node->counters.push_back({"build_rows", build_rows_});
  node->counters.push_back({"probe_rows", probe_rows_});
  if (spill_partitions_ > 0) {
    node->counters.push_back({"spill_partitions", spill_partitions_});
    node->counters.push_back({"build_rows_spilled", build_rows_spilled_});
    node->counters.push_back({"probe_rows_spilled", probe_rows_spilled_});
  }
  if (bloom_ != nullptr) {
    node->counters.push_back({"bloom_published", 1});
  }
}

Status HashJoinOperator::SpillPartition(int p) {
  // Spill events are rare and expensive; record each as a trace span so
  // memory-pressure incidents are reconstructable from the ring buffer.
  ScopedTrace trace("hash_join_spill_partition", "spill");
  Partition& part = partitions_[static_cast<size_t>(p)];
  VSTORE_DCHECK(!part.spilled);
  part.build_file = std::tmpfile();
  part.probe_file = std::tmpfile();
  if (part.build_file == nullptr || part.probe_file == nullptr) {
    return Status::Internal("cannot create spill files");
  }
  const Schema& schema = build_->output_schema();
  std::vector<Value> row(static_cast<size_t>(schema.num_columns()));
  for (uint8_t* entry : part.rows) {
    const uint8_t* payload = SerializedRowHashTable::EntryPayload(entry);
    for (int c = 0; c < schema.num_columns(); ++c) {
      row[static_cast<size_t>(c)] = build_format_.GetValue(payload, c);
    }
    VSTORE_RETURN_IF_ERROR(SpillRow(part.build_file, schema, row));
    ++part.build_rows_on_disk;
    ++ctx_->stats.build_rows_spilled;
    ++build_rows_spilled_;
  }
  total_build_bytes_ -= part.bytes;
  part.rows.clear();
  part.rows.shrink_to_fit();
  part.arena = std::make_unique<Arena>();
  part.arena->SetMemoryTracker(mem_.get());
  part.bytes = 0;
  part.spilled = true;
  ++ctx_->stats.spill_partitions;
  ++spill_partitions_;
  return Status::OK();
}

Status HashJoinOperator::RunBuildPhase() {
  VSTORE_RETURN_IF_ERROR(build_->Open());
  const size_t entry_size =
      SerializedRowHashTable::kHeaderSize + build_format_.row_size();
  const int64_t budget = ctx_->operator_memory_budget;
  int64_t bloom_rows = 0;

  for (;;) {
    VSTORE_ASSIGN_OR_RETURN(Batch * batch, build_->Next());
    if (batch == nullptr) break;
    const int64_t n = batch->num_rows();
    const uint8_t* active = batch->active();
    for (int64_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      // Rows with a null key can never join: drop them at build time.
      bool null_key = false;
      for (int k : options_.build_keys) {
        if (!batch->column(k).validity()[i]) {
          null_key = true;
          break;
        }
      }
      if (null_key) continue;

      ++build_rows_;
      uint64_t hash =
          build_format_.HashKeysFromBatch(*batch, i, options_.build_keys);
      if (bloom_ != nullptr) {
        // Sized lazily below; collect hashes by inserting after Init. To
        // keep one pass, the filter is initialized pessimistically on first
        // use and re-populated only if this undershoots badly — in practice
        // we size from the running count by rebuilding at the end, so here
        // we just count.
        ++bloom_rows;
      }

      int p = PartitionOf(hash);
      Partition& part = partitions_[static_cast<size_t>(p)];
      if (part.spilled) {
        VSTORE_RETURN_IF_ERROR(SpillRow(
            part.build_file, build_->output_schema(), batch->GetActiveRow(i)));
        ++part.build_rows_on_disk;
        ++ctx_->stats.build_rows_spilled;
        ++build_rows_spilled_;
        continue;
      }
      uint8_t* entry = part.arena->Allocate(entry_size);
      build_format_.Write(entry + SerializedRowHashTable::kHeaderSize, *batch,
                          i, part.arena.get());
      std::memcpy(entry + 8, &hash, sizeof(hash));
      part.rows.push_back(entry);
      int64_t grew = static_cast<int64_t>(part.arena->bytes_allocated()) -
                     part.bytes;
      part.bytes += grew;
      total_build_bytes_ += grew;
      RecordPeakMemory(total_build_bytes_);

      if (UnderMemoryPressure(budget)) {
        // Spill the largest resident partition. Under query-level pressure
        // every resident partition may already be gone (other operators
        // hold the budget) — then there is nothing left to shed.
        int victim = -1;
        int64_t victim_bytes = 0;
        for (int q = 0; q < options_.num_partitions; ++q) {
          const Partition& cand = partitions_[static_cast<size_t>(q)];
          if (!cand.spilled && cand.bytes > victim_bytes) {
            victim = q;
            victim_bytes = cand.bytes;
          }
        }
        if (victim >= 0) {
          VSTORE_RETURN_IF_ERROR(SpillPartition(victim));
        }
      }
    }
  }
  build_->Close();

  // Populate the Bloom filter from all resident + spilled build rows.
  if (bloom_ != nullptr) {
    bloom_->Init(std::max<int64_t>(bloom_rows, 1));
    for (Partition& part : partitions_) {
      for (uint8_t* entry : part.rows) {
        bloom_->Insert(SerializedRowHashTable::EntryHash(entry));
      }
      if (part.spilled) {
        std::rewind(part.build_file);
        std::vector<Value> row;
        for (;;) {
          VSTORE_ASSIGN_OR_RETURN(
              bool more,
              ReadSpillRow(part.build_file, build_->output_schema(), &row));
          if (!more) break;
          // Recompute the key hash from values.
          Arena scratch;
          std::vector<uint8_t> buf(build_format_.row_size());
          build_format_.WriteValues(buf.data(), row, &scratch);
          bloom_->Insert(
              build_format_.HashKeys(buf.data(), options_.build_keys));
        }
      }
    }
  }
  return BuildInMemoryTables();
}

Status HashJoinOperator::BuildInMemoryTables() {
  for (Partition& part : partitions_) {
    if (part.spilled) continue;
    part.table = std::make_unique<SerializedRowHashTable>(
        static_cast<int64_t>(part.rows.size()));
    part.table->SetMemoryTracker(mem_.get());
    for (uint8_t* entry : part.rows) {
      part.table->Insert(entry, SerializedRowHashTable::EntryHash(entry));
    }
  }
  return Status::OK();
}

Status HashJoinOperator::OpenImpl() {
  partitions_.clear();
  partitions_.resize(static_cast<size_t>(options_.num_partitions));
  for (Partition& p : partitions_) {
    p.arena = std::make_unique<Arena>();
    p.arena->SetMemoryTracker(mem_.get());
  }
  drain_arena_.SetMemoryTracker(mem_.get());
  if (mem_ != nullptr) mem_->ResetPeak();
  pressure_.store(false, std::memory_order_relaxed);
  total_build_bytes_ = 0;
  build_rows_ = 0;
  probe_rows_ = 0;
  build_rows_spilled_ = 0;
  probe_rows_spilled_ = 0;
  spill_partitions_ = 0;
  output_ = std::make_unique<Batch>(output_schema_, ctx_->batch_size);
  out_rows_ = 0;
  phase_ = Phase::kBuild;

  VSTORE_RETURN_IF_ERROR(RunBuildPhase());
  phase_ = Phase::kProbe;
  // Open the probe side only after the build completed, so pushed Bloom
  // filters are populated before the probe scan starts.
  VSTORE_RETURN_IF_ERROR(probe_->Open());
  probe_batch_ = nullptr;
  probe_row_ = 0;
  chain_ = nullptr;
  row_matched_ = false;
  drain_partition_ = 0;
  drain_loaded_ = false;
  drain_row_pending_ = false;
  return Status::OK();
}

void HashJoinOperator::CloseImpl() {
  RecordMemoryTracker(mem_.get());
  for (Partition& part : partitions_) {
    if (part.build_file != nullptr) {
      std::fclose(part.build_file);
      part.build_file = nullptr;
    }
    if (part.probe_file != nullptr) {
      std::fclose(part.probe_file);
      part.probe_file = nullptr;
    }
  }
  partitions_.clear();
  output_.reset();
  if (probe_batch_ != nullptr || phase_ != Phase::kBuild) {
    probe_->Close();
  }
  probe_batch_ = nullptr;
}

Result<bool> HashJoinOperator::PumpProbe() {
  const JoinType jt = options_.join_type;
  for (;;) {
    if (probe_batch_ == nullptr) {
      VSTORE_ASSIGN_OR_RETURN(Batch * batch, probe_->Next());
      if (batch == nullptr) {
        phase_ = Phase::kSpillDrain;
        return out_rows_ > 0;
      }
      probe_batch_ = batch;
      probe_row_ = 0;
      chain_ = nullptr;
      row_matched_ = false;
      const int64_t n = batch->num_rows();
      probe_hashes_.resize(static_cast<size_t>(n));
      HashKeysBatch(*batch, options_.probe_keys, batch->active(),
                    probe_hashes_.data());
    }

    const uint8_t* active = probe_batch_->active();
    while (probe_row_ < probe_batch_->num_rows()) {
      if (!active[probe_row_]) {
        ++probe_row_;
        continue;
      }
      uint64_t hash = probe_hashes_[static_cast<size_t>(probe_row_)];
      Partition& part = partitions_[static_cast<size_t>(PartitionOf(hash))];

      if (part.spilled) {
        VSTORE_RETURN_IF_ERROR(
            SpillRow(part.probe_file, probe_->output_schema(),
                     probe_batch_->GetActiveRow(probe_row_)));
        ++part.probe_rows_on_disk;
        ++ctx_->stats.probe_rows_spilled;
        ++probe_rows_spilled_;
        ++probe_rows_;
        ++probe_row_;
        continue;
      }

      if (chain_ == nullptr && !row_matched_) {
        chain_ = part.table->ChainHead(hash);
      }
      while (chain_ != nullptr) {
        if (out_rows_ == output_->capacity()) return true;
        const uint8_t* entry = chain_;
        const uint8_t* payload = SerializedRowHashTable::EntryPayload(entry);
        if (SerializedRowHashTable::EntryHash(entry) == hash &&
            build_format_.KeysEqualBatch(payload, options_.build_keys,
                                         *probe_batch_, probe_row_,
                                         options_.probe_keys)) {
          row_matched_ = true;
          if (jt == JoinType::kInner || jt == JoinType::kLeftOuter) {
            emitter_.EmitFromBatch(output_.get(), *probe_batch_, probe_row_,
                                   payload, out_rows_++);
          } else {
            chain_ = nullptr;  // semi/anti need only existence
            break;
          }
        }
        if (chain_ != nullptr) {
          chain_ = SerializedRowHashTable::ChainNext(entry);
        }
      }

      // Chain exhausted: row epilogue.
      bool emit_probe_only =
          (jt == JoinType::kLeftSemi && row_matched_) ||
          (jt == JoinType::kLeftAnti && !row_matched_);
      bool emit_null_extended = jt == JoinType::kLeftOuter && !row_matched_;
      if (emit_probe_only || emit_null_extended) {
        if (out_rows_ == output_->capacity()) return true;
        emitter_.EmitFromBatch(output_.get(), *probe_batch_, probe_row_,
                               nullptr, out_rows_++);
      }
      ++probe_rows_;
      ++probe_row_;
      chain_ = nullptr;
      row_matched_ = false;
    }
    probe_batch_ = nullptr;
  }
}

Result<bool> HashJoinOperator::PumpSpill() {
  const JoinType jt = options_.join_type;
  const Schema& probe_schema = probe_->output_schema();
  for (;;) {
    if (drain_partition_ >= options_.num_partitions) {
      phase_ = Phase::kDone;
      return out_rows_ > 0;
    }
    Partition& part = partitions_[static_cast<size_t>(drain_partition_)];
    if (!part.spilled) {
      ++drain_partition_;
      continue;
    }

    if (!drain_loaded_) {
      // Load the build side of this partition and hash it.
      std::rewind(part.build_file);
      part.table = std::make_unique<SerializedRowHashTable>(
          std::max<int64_t>(part.build_rows_on_disk, 1));
      part.table->SetMemoryTracker(mem_.get());
      const size_t entry_size =
          SerializedRowHashTable::kHeaderSize + build_format_.row_size();
      std::vector<Value> row;
      for (;;) {
        VSTORE_ASSIGN_OR_RETURN(
            bool more,
            ReadSpillRow(part.build_file, build_->output_schema(), &row));
        if (!more) break;
        uint8_t* entry = part.arena->Allocate(entry_size);
        build_format_.WriteValues(entry + SerializedRowHashTable::kHeaderSize,
                                  row, part.arena.get());
        uint64_t hash = build_format_.HashKeys(
            entry + SerializedRowHashTable::kHeaderSize, options_.build_keys);
        part.table->Insert(entry, hash);
      }
      std::rewind(part.probe_file);
      drain_probe_row_.resize(probe_format_.row_size());
      drain_loaded_ = true;
      drain_row_pending_ = false;
    }

    for (;;) {
      if (!drain_row_pending_) {
        std::vector<Value> row;
        VSTORE_ASSIGN_OR_RETURN(bool more,
                                ReadSpillRow(part.probe_file, probe_schema,
                                             &row));
        if (!more) {
          drain_loaded_ = false;
          ++drain_partition_;
          break;  // next partition
        }
        drain_arena_.Reset();
        probe_format_.WriteValues(drain_probe_row_.data(), row, &drain_arena_);
        uint64_t hash =
            probe_format_.HashKeys(drain_probe_row_.data(), options_.probe_keys);
        chain_ = part.table->ChainHead(hash);
        row_matched_ = false;
        drain_row_pending_ = true;
      }

      while (chain_ != nullptr) {
        if (out_rows_ == output_->capacity()) return true;
        const uint8_t* entry = chain_;
        const uint8_t* payload = SerializedRowHashTable::EntryPayload(entry);
        if (CrossFormatKeysEqual(build_format_, payload, options_.build_keys,
                                 probe_format_, drain_probe_row_.data(),
                                 options_.probe_keys)) {
          row_matched_ = true;
          if (jt == JoinType::kInner || jt == JoinType::kLeftOuter) {
            emitter_.EmitFromSerialized(output_.get(), drain_probe_row_.data(),
                                        payload, out_rows_++);
          } else {
            chain_ = nullptr;
            break;
          }
        }
        if (chain_ != nullptr) {
          chain_ = SerializedRowHashTable::ChainNext(entry);
        }
      }

      bool emit_probe_only =
          (jt == JoinType::kLeftSemi && row_matched_) ||
          (jt == JoinType::kLeftAnti && !row_matched_);
      bool emit_null_extended = jt == JoinType::kLeftOuter && !row_matched_;
      if (emit_probe_only || emit_null_extended) {
        if (out_rows_ == output_->capacity()) return true;
        emitter_.EmitFromSerialized(output_.get(), drain_probe_row_.data(),
                                    nullptr, out_rows_++);
      }
      drain_row_pending_ = false;
    }
  }
}

Result<Batch*> HashJoinOperator::NextImpl() {
  output_->Reset();
  out_rows_ = 0;
  bool ready = false;
  if (phase_ == Phase::kProbe) {
    VSTORE_ASSIGN_OR_RETURN(ready, PumpProbe());
  }
  if (!ready && phase_ == Phase::kSpillDrain) {
    VSTORE_ASSIGN_OR_RETURN(ready, PumpSpill());
  }
  if (out_rows_ == 0) return static_cast<Batch*>(nullptr);
  output_->set_num_rows(out_rows_);
  output_->ActivateAll();
  return output_.get();
}

}  // namespace vstore
