#include "exec/expr_program.h"

#include <bit>
#include <cstring>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "common/macros.h"
#include "common/metrics.h"
#include "exec/expr_kernels.h"

namespace vstore {

namespace {

bool ContainsColumn(const Expr& e) {
  switch (e.kind()) {
    case ExprKind::kColumn:
      return true;
    case ExprKind::kLiteral:
      return false;
    case ExprKind::kCompare: {
      const auto& c = static_cast<const CompareExpr&>(e);
      return ContainsColumn(*c.left()) || ContainsColumn(*c.right());
    }
    case ExprKind::kArith: {
      const auto& a = static_cast<const ArithExpr&>(e);
      return ContainsColumn(*a.left()) || ContainsColumn(*a.right());
    }
    case ExprKind::kBool: {
      const auto& b = static_cast<const BoolExpr&>(e);
      return ContainsColumn(*b.left()) || ContainsColumn(*b.right());
    }
    case ExprKind::kNot:
      return ContainsColumn(*static_cast<const NotExpr&>(e).input());
    case ExprKind::kIsNull:
      return ContainsColumn(*static_cast<const IsNullExpr&>(e).input());
    case ExprKind::kYear:
      return ContainsColumn(*static_cast<const YearExpr&>(e).input());
    case ExprKind::kStartsWith:
      return ContainsColumn(*static_cast<const StartsWithExpr&>(e).input());
    case ExprKind::kIn:
      return ContainsColumn(*static_cast<const InExpr&>(e).input());
  }
  return true;
}

// True when the node can only ever produce 0/1 in its value lane — the
// precondition for the AND/OR identity rewrites (a bool-typed *column*
// could in principle hold other int payloads, so kinds are whitelisted
// rather than trusting output_type()).
bool IsCanonicalBool(const Expr& e) {
  switch (e.kind()) {
    case ExprKind::kCompare:
    case ExprKind::kBool:
    case ExprKind::kNot:
    case ExprKind::kIsNull:
    case ExprKind::kStartsWith:
    case ExprKind::kIn:
      return true;
    default:
      return false;
  }
}

CompareOp NegateCompare(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return CompareOp::kNe;
    case CompareOp::kNe:
      return CompareOp::kEq;
    case CompareOp::kLt:
      return CompareOp::kGe;
    case CompareOp::kLe:
      return CompareOp::kGt;
    case CompareOp::kGt:
      return CompareOp::kLe;
    case CompareOp::kGe:
      return CompareOp::kLt;
  }
  return op;
}

bool IsIntLiteral(const Expr& e, int64_t value) {
  if (e.kind() != ExprKind::kLiteral) return false;
  const Value& v = static_cast<const LiteralExpr&>(e).value();
  return !v.is_null() && PhysicalTypeOf(v.type()) == PhysicalType::kInt64 &&
         v.int64() == value;
}

// Non-null physical-int literal usable as a boolean truth value.
bool IsTruthLiteral(const Expr& e, bool truthy) {
  if (e.kind() != ExprKind::kLiteral) return false;
  const Value& v = static_cast<const LiteralExpr&>(e).value();
  if (v.is_null() || PhysicalTypeOf(v.type()) != PhysicalType::kInt64) {
    return false;
  }
  return (v.int64() != 0) == truthy;
}

int CountNodes(const Expr& e) {
  switch (e.kind()) {
    case ExprKind::kColumn:
    case ExprKind::kLiteral:
      return 1;
    case ExprKind::kCompare: {
      const auto& c = static_cast<const CompareExpr&>(e);
      return 1 + CountNodes(*c.left()) + CountNodes(*c.right());
    }
    case ExprKind::kArith: {
      const auto& a = static_cast<const ArithExpr&>(e);
      return 1 + CountNodes(*a.left()) + CountNodes(*a.right());
    }
    case ExprKind::kBool: {
      const auto& b = static_cast<const BoolExpr&>(e);
      return 1 + CountNodes(*b.left()) + CountNodes(*b.right());
    }
    case ExprKind::kNot:
      return 1 + CountNodes(*static_cast<const NotExpr&>(e).input());
    case ExprKind::kIsNull:
      return 1 + CountNodes(*static_cast<const IsNullExpr&>(e).input());
    case ExprKind::kYear:
      return 1 + CountNodes(*static_cast<const YearExpr&>(e).input());
    case ExprKind::kStartsWith:
      return 1 + CountNodes(*static_cast<const StartsWithExpr&>(e).input());
    case ExprKind::kIn:
      return 1 + CountNodes(*static_cast<const InExpr&>(e).input());
  }
  return 1;
}

// --- Constant folding + null-safe algebraic simplification ----------------
// Every rule here is vetted against the engine's null-strict semantics:
// rewrites like x*0 -> 0 or AND(x,false) -> false are rejected because they
// would lose null propagation, and double identities like x+0.0 are
// rejected because they are not bit-exact (-0.0).

ExprPtr Simplify(const ExprPtr& e, ExprProgram::CompileStats* stats);

ExprPtr TryFold(const ExprPtr& e, ExprProgram::CompileStats* stats) {
  if (e->kind() == ExprKind::kLiteral || e->kind() == ExprKind::kColumn) {
    return e;
  }
  if (ContainsColumn(*e)) return e;
  Value v;
  std::vector<Value> no_row;
  if (!e->EvalRow(no_row, &v).ok()) return e;
  ++stats->folded;
  // Preserve the static output type (EvalRow nulls carry it already; for
  // non-null results the value type matches by construction).
  return expr::Lit(std::move(v));
}

ExprPtr Simplify(const ExprPtr& e, ExprProgram::CompileStats* stats) {
  switch (e->kind()) {
    case ExprKind::kColumn:
    case ExprKind::kLiteral:
      return e;
    case ExprKind::kCompare: {
      const auto& c = static_cast<const CompareExpr&>(*e);
      ExprPtr l = Simplify(c.left(), stats);
      ExprPtr r = Simplify(c.right(), stats);
      ExprPtr out = (l == c.left() && r == c.right())
                        ? e
                        : std::make_shared<CompareExpr>(c.op(), l, r);
      return TryFold(out, stats);
    }
    case ExprKind::kArith: {
      const auto& a = static_cast<const ArithExpr&>(*e);
      ExprPtr l = Simplify(a.left(), stats);
      ExprPtr r = Simplify(a.right(), stats);
      // Integer-only identities (wrapping arithmetic makes these exact for
      // every operand; doubles are excluded because of -0.0 and NaN). The
      // surviving operand must already be kInt64 so the rewrite preserves
      // the node's static output type (a kDate32 + 0 stays an Arith node).
      if (e->output_type() == DataType::kInt64) {
        auto keep = [&](const ExprPtr& x) {
          return x->output_type() == DataType::kInt64;
        };
        switch (a.op()) {
          case ArithOp::kAdd:
            if (IsIntLiteral(*l, 0) && keep(r)) { ++stats->simplified; return r; }
            if (IsIntLiteral(*r, 0) && keep(l)) { ++stats->simplified; return l; }
            break;
          case ArithOp::kSub:
            if (IsIntLiteral(*r, 0) && keep(l)) { ++stats->simplified; return l; }
            break;
          case ArithOp::kMul:
            if (IsIntLiteral(*l, 1) && keep(r)) { ++stats->simplified; return r; }
            if (IsIntLiteral(*r, 1) && keep(l)) { ++stats->simplified; return l; }
            break;
          case ArithOp::kDiv:
            if (IsIntLiteral(*r, 1) && keep(l)) { ++stats->simplified; return l; }
            break;
        }
      }
      ExprPtr out =
          (l == a.left() && r == a.right())
              ? e
              : std::make_shared<ArithExpr>(a.op(), l, r, a.output_type());
      return TryFold(out, stats);
    }
    case ExprKind::kBool: {
      const auto& b = static_cast<const BoolExpr&>(*e);
      ExprPtr l = Simplify(b.left(), stats);
      ExprPtr r = Simplify(b.right(), stats);
      // AND(x, true) -> x and OR(x, false) -> x need x to be a canonical
      // 0/1 producer; AND(x, false) -> false is NOT valid (null-strict AND
      // must return null for null x).
      bool want = b.op() == BoolOp::kAnd;
      if (IsTruthLiteral(*l, want) && IsCanonicalBool(*r)) {
        ++stats->simplified;
        return r;
      }
      if (IsTruthLiteral(*r, want) && IsCanonicalBool(*l)) {
        ++stats->simplified;
        return l;
      }
      ExprPtr out = (l == b.left() && r == b.right())
                        ? e
                        : std::make_shared<BoolExpr>(b.op(), l, r);
      return TryFold(out, stats);
    }
    case ExprKind::kNot: {
      const auto& nt = static_cast<const NotExpr&>(*e);
      ExprPtr in = Simplify(nt.input(), stats);
      // NOT(cmp) -> negated cmp: null-safe because both sides propagate
      // the operand's validity unchanged.
      if (in->kind() == ExprKind::kCompare) {
        const auto& c = static_cast<const CompareExpr&>(*in);
        ++stats->simplified;
        return TryFold(std::make_shared<CompareExpr>(NegateCompare(c.op()),
                                                     c.left(), c.right()),
                       stats);
      }
      // NOT(NOT(x)) -> x for canonical bool x.
      if (in->kind() == ExprKind::kNot) {
        const auto& inner = static_cast<const NotExpr&>(*in);
        if (IsCanonicalBool(*inner.input())) {
          ++stats->simplified;
          return inner.input();
        }
      }
      ExprPtr out =
          in == nt.input() ? e : std::make_shared<NotExpr>(in);
      return TryFold(out, stats);
    }
    case ExprKind::kIsNull: {
      const auto& isn = static_cast<const IsNullExpr&>(*e);
      ExprPtr in = Simplify(isn.input(), stats);
      ExprPtr out =
          in == isn.input() ? e : std::make_shared<IsNullExpr>(in);
      return TryFold(out, stats);
    }
    case ExprKind::kYear: {
      const auto& y = static_cast<const YearExpr&>(*e);
      ExprPtr in = Simplify(y.input(), stats);
      ExprPtr out = in == y.input() ? e : std::make_shared<YearExpr>(in);
      return TryFold(out, stats);
    }
    case ExprKind::kStartsWith: {
      const auto& sw = static_cast<const StartsWithExpr&>(*e);
      ExprPtr in = Simplify(sw.input(), stats);
      ExprPtr out = in == sw.input()
                        ? e
                        : std::make_shared<StartsWithExpr>(in, sw.prefix());
      return TryFold(out, stats);
    }
    case ExprKind::kIn: {
      const auto& ine = static_cast<const InExpr&>(*e);
      ExprPtr in = Simplify(ine.input(), stats);
      ExprPtr out =
          in == ine.input() ? e : std::make_shared<InExpr>(in, ine.values());
      return TryFold(out, stats);
    }
  }
  return e;
}

std::string ValueKey(const Value& v) {
  std::string key = std::to_string(static_cast<int>(v.type()));
  if (v.is_null()) return key + ":null";
  switch (PhysicalTypeOf(v.type())) {
    case PhysicalType::kInt64:
      return key + ":i" + std::to_string(v.int64());
    case PhysicalType::kDouble:
      return key + ":d" + std::to_string(std::bit_cast<uint64_t>(v.dbl()));
    case PhysicalType::kString:
      return key + ":s" + std::to_string(v.str().size()) + ":" + v.str();
  }
  return key;
}

}  // namespace

// --- Compiler -------------------------------------------------------------

class ExprCompiler {
 public:
  ExprCompiler() : program_(new ExprProgram()) {}

  Result<std::shared_ptr<const ExprProgram>> Compile(
      const std::vector<ExprPtr>& exprs) {
    for (const ExprPtr& e : exprs) {
      ExprPtr simplified = Simplify(e, &program_->stats_);
      program_->stats_.tree_nodes += CountNodes(*simplified);
      VSTORE_ASSIGN_OR_RETURN(uint16_t reg, CompileNode(*simplified));
      program_->outputs_.push_back(reg);
    }
    return std::shared_ptr<const ExprProgram>(program_.release());
  }

 private:
  Result<uint16_t> NewReg(ExprRegister reg) {
    if (program_->regs_.size() >= 65535) {
      return Status::InvalidArgument("expression too large for bytecode");
    }
    program_->regs_.push_back(std::move(reg));
    return static_cast<uint16_t>(program_->regs_.size() - 1);
  }

  Result<uint16_t> ColumnReg(int index, DataType type) {
    auto it = column_regs_.find(index);
    if (it != column_regs_.end()) return it->second;
    ExprRegister reg;
    reg.source = ExprRegister::Source::kColumn;
    reg.type = type;
    reg.column = index;
    VSTORE_ASSIGN_OR_RETURN(uint16_t r, NewReg(std::move(reg)));
    column_regs_.emplace(index, r);
    return r;
  }

  Result<uint16_t> ConstReg(const Value& v) {
    std::string key = ValueKey(v);
    auto it = const_regs_.find(key);
    if (it != const_regs_.end()) return it->second;
    ExprRegister reg;
    reg.source = ExprRegister::Source::kConst;
    reg.type = v.type();
    reg.constant = v;
    VSTORE_ASSIGN_OR_RETURN(uint16_t r, NewReg(std::move(reg)));
    const_regs_.emplace(std::move(key), r);
    return r;
  }

  // Emits `instr` (dst unset) unless an identical instruction already
  // produced a register — value numbering over the flattened DAG.
  Result<uint16_t> Emit(ExprInstr instr, DataType dst_type) {
    std::string key = std::to_string(static_cast<int>(instr.op)) + "|" +
                      std::to_string(instr.aux) + "|" +
                      std::to_string(instr.a) + "|" +
                      std::to_string(instr.b) + "|" +
                      std::to_string(instr.pool);
    auto it = value_numbers_.find(key);
    if (it != value_numbers_.end()) {
      ++program_->stats_.cse_hits;
      return it->second;
    }
    ExprRegister reg;
    reg.source = ExprRegister::Source::kTemp;
    reg.type = dst_type;
    VSTORE_ASSIGN_OR_RETURN(uint16_t dst, NewReg(std::move(reg)));
    instr.dst = dst;
    program_->instrs_.push_back(instr);
    value_numbers_.emplace(std::move(key), dst);
    return dst;
  }

  Result<uint16_t> ToF64(uint16_t r) {
    if (PhysicalTypeOf(program_->regs_[r].type) == PhysicalType::kDouble) {
      return r;
    }
    ExprInstr instr;
    instr.op = ExprOpCode::kCastI64F64;
    instr.a = r;
    return Emit(instr, DataType::kDouble);
  }

  PhysicalType RegPhys(uint16_t r) const {
    return PhysicalTypeOf(program_->regs_[r].type);
  }

  int32_t PoolString(const std::string& s) {
    for (size_t i = 0; i < program_->string_pool_.size(); ++i) {
      if (program_->string_pool_[i] == s) return static_cast<int32_t>(i);
    }
    program_->string_pool_.push_back(s);
    return static_cast<int32_t>(program_->string_pool_.size() - 1);
  }

  Result<uint16_t> CompileNode(const Expr& e) {
    switch (e.kind()) {
      case ExprKind::kColumn: {
        const auto& c = static_cast<const ColumnRefExpr&>(e);
        return ColumnReg(c.index(), c.output_type());
      }
      case ExprKind::kLiteral:
        return ConstReg(static_cast<const LiteralExpr&>(e).value());
      case ExprKind::kCompare: {
        const auto& c = static_cast<const CompareExpr&>(e);
        VSTORE_ASSIGN_OR_RETURN(uint16_t l, CompileNode(*c.left()));
        VSTORE_ASSIGN_OR_RETURN(uint16_t r, CompileNode(*c.right()));
        ExprInstr instr;
        instr.aux = static_cast<uint8_t>(c.op());
        if (RegPhys(l) == PhysicalType::kString) {
          instr.op = ExprOpCode::kCmpStr;
        } else if (RegPhys(l) == PhysicalType::kDouble ||
                   RegPhys(r) == PhysicalType::kDouble) {
          VSTORE_ASSIGN_OR_RETURN(l, ToF64(l));
          VSTORE_ASSIGN_OR_RETURN(r, ToF64(r));
          instr.op = ExprOpCode::kCmpF64;
        } else {
          instr.op = ExprOpCode::kCmpI64;
        }
        instr.a = l;
        instr.b = r;
        return Emit(instr, DataType::kBool);
      }
      case ExprKind::kArith: {
        const auto& a = static_cast<const ArithExpr&>(e);
        VSTORE_ASSIGN_OR_RETURN(uint16_t l, CompileNode(*a.left()));
        VSTORE_ASSIGN_OR_RETURN(uint16_t r, CompileNode(*a.right()));
        ExprInstr instr;
        instr.aux = static_cast<uint8_t>(a.op());
        if (a.output_type() == DataType::kDouble) {
          VSTORE_ASSIGN_OR_RETURN(l, ToF64(l));
          VSTORE_ASSIGN_OR_RETURN(r, ToF64(r));
          instr.op = ExprOpCode::kArithF64;
        } else {
          instr.op = ExprOpCode::kArithI64;
        }
        instr.a = l;
        instr.b = r;
        return Emit(instr, a.output_type());
      }
      case ExprKind::kBool: {
        const auto& b = static_cast<const BoolExpr&>(e);
        VSTORE_ASSIGN_OR_RETURN(uint16_t l, CompileNode(*b.left()));
        VSTORE_ASSIGN_OR_RETURN(uint16_t r, CompileNode(*b.right()));
        ExprInstr instr;
        instr.op = ExprOpCode::kBoolAndOr;
        instr.aux = static_cast<uint8_t>(b.op());
        instr.a = l;
        instr.b = r;
        return Emit(instr, DataType::kBool);
      }
      case ExprKind::kNot: {
        VSTORE_ASSIGN_OR_RETURN(
            uint16_t in, CompileNode(*static_cast<const NotExpr&>(e).input()));
        ExprInstr instr;
        instr.op = ExprOpCode::kNot;
        instr.a = in;
        return Emit(instr, DataType::kBool);
      }
      case ExprKind::kIsNull: {
        VSTORE_ASSIGN_OR_RETURN(
            uint16_t in,
            CompileNode(*static_cast<const IsNullExpr&>(e).input()));
        ExprInstr instr;
        instr.op = ExprOpCode::kIsNull;
        instr.a = in;
        return Emit(instr, DataType::kBool);
      }
      case ExprKind::kYear: {
        VSTORE_ASSIGN_OR_RETURN(
            uint16_t in,
            CompileNode(*static_cast<const YearExpr&>(e).input()));
        ExprInstr instr;
        instr.op = ExprOpCode::kYear;
        instr.a = in;
        return Emit(instr, DataType::kInt64);
      }
      case ExprKind::kStartsWith: {
        const auto& sw = static_cast<const StartsWithExpr&>(e);
        VSTORE_ASSIGN_OR_RETURN(uint16_t in, CompileNode(*sw.input()));
        ExprInstr instr;
        instr.op = ExprOpCode::kStartsWith;
        instr.a = in;
        instr.pool = PoolString(sw.prefix());
        return Emit(instr, DataType::kBool);
      }
      case ExprKind::kIn: {
        const auto& ine = static_cast<const InExpr&>(e);
        VSTORE_ASSIGN_OR_RETURN(uint16_t in, CompileNode(*ine.input()));
        ExprProgram::InList list;
        PhysicalType phys = RegPhys(in);
        for (const Value& v : ine.values()) {
          if (v.is_null()) continue;  // interpreter skips null candidates
          PhysicalType vp = PhysicalTypeOf(v.type());
          switch (phys) {
            case PhysicalType::kInt64:
              if (vp != PhysicalType::kInt64) {
                return Status::InvalidArgument("IN list type mismatch");
              }
              list.i64.push_back(v.int64());
              break;
            case PhysicalType::kDouble:
              if (vp == PhysicalType::kString) {
                return Status::InvalidArgument("IN list type mismatch");
              }
              list.f64.push_back(v.AsDouble());
              break;
            case PhysicalType::kString:
              if (vp != PhysicalType::kString) {
                return Status::InvalidArgument("IN list type mismatch");
              }
              list.str.push_back(v.str());
              break;
          }
        }
        program_->in_pool_.push_back(std::move(list));
        ExprInstr instr;
        instr.op = ExprOpCode::kIn;
        instr.a = in;
        instr.pool = static_cast<int32_t>(program_->in_pool_.size() - 1);
        return Emit(instr, DataType::kBool);
      }
    }
    return Status::Unimplemented("unknown expression kind");
  }

  std::unique_ptr<ExprProgram> program_;
  std::unordered_map<int, uint16_t> column_regs_;
  std::unordered_map<std::string, uint16_t> const_regs_;
  std::unordered_map<std::string, uint16_t> value_numbers_;
};

Result<std::shared_ptr<const ExprProgram>> ExprProgram::Compile(
    const std::vector<ExprPtr>& exprs) {
  ExprCompiler compiler;
  return compiler.Compile(exprs);
}

namespace {

void FingerprintNode(const Expr& e, std::string* out) {
  switch (e.kind()) {
    case ExprKind::kColumn: {
      const auto& c = static_cast<const ColumnRefExpr&>(e);
      out->append("c#" + std::to_string(c.index()) + ":" +
                  std::to_string(static_cast<int>(c.output_type())));
      return;
    }
    case ExprKind::kLiteral:
      out->append("l[" + ValueKey(static_cast<const LiteralExpr&>(e).value()) +
                  "]");
      return;
    case ExprKind::kCompare: {
      const auto& c = static_cast<const CompareExpr&>(e);
      out->append("cmp" + std::to_string(static_cast<int>(c.op())) + "(");
      FingerprintNode(*c.left(), out);
      out->append(",");
      FingerprintNode(*c.right(), out);
      out->append(")");
      return;
    }
    case ExprKind::kArith: {
      const auto& a = static_cast<const ArithExpr&>(e);
      out->append("ar" + std::to_string(static_cast<int>(a.op())) + "(");
      FingerprintNode(*a.left(), out);
      out->append(",");
      FingerprintNode(*a.right(), out);
      out->append(")");
      return;
    }
    case ExprKind::kBool: {
      const auto& b = static_cast<const BoolExpr&>(e);
      out->append(b.op() == BoolOp::kAnd ? "and(" : "or(");
      FingerprintNode(*b.left(), out);
      out->append(",");
      FingerprintNode(*b.right(), out);
      out->append(")");
      return;
    }
    case ExprKind::kNot:
      out->append("not(");
      FingerprintNode(*static_cast<const NotExpr&>(e).input(), out);
      out->append(")");
      return;
    case ExprKind::kIsNull:
      out->append("isnull(");
      FingerprintNode(*static_cast<const IsNullExpr&>(e).input(), out);
      out->append(")");
      return;
    case ExprKind::kYear:
      out->append("year(");
      FingerprintNode(*static_cast<const YearExpr&>(e).input(), out);
      out->append(")");
      return;
    case ExprKind::kStartsWith: {
      const auto& sw = static_cast<const StartsWithExpr&>(e);
      out->append("sw" + std::to_string(sw.prefix().size()) + ":" +
                  sw.prefix() + "(");
      FingerprintNode(*sw.input(), out);
      out->append(")");
      return;
    }
    case ExprKind::kIn: {
      const auto& ine = static_cast<const InExpr&>(e);
      out->append("in(");
      FingerprintNode(*ine.input(), out);
      for (const Value& v : ine.values()) {
        out->append(";" + ValueKey(v));
      }
      out->append(")");
      return;
    }
  }
}

}  // namespace

std::string ExprProgram::Fingerprint(const std::vector<ExprPtr>& exprs) {
  std::string out;
  for (const ExprPtr& e : exprs) {
    FingerprintNode(*e, &out);
    out.append("|");
  }
  return out;
}

std::string ExprProgram::ToString() const {
  auto reg_name = [this](uint16_t r) {
    const ExprRegister& reg = regs_[r];
    switch (reg.source) {
      case ExprRegister::Source::kColumn:
        return "r" + std::to_string(r) + "=col#" + std::to_string(reg.column);
      case ExprRegister::Source::kConst:
        return "r" + std::to_string(r) + "=const(" +
               (reg.constant.is_null() ? "NULL" : reg.constant.ToString()) +
               ")";
      case ExprRegister::Source::kTemp:
        return "r" + std::to_string(r);
    }
    return std::string("r?");
  };
  static const char* kOpNames[] = {
      "cmp_i64", "cmp_f64",     "cmp_str", "arith_i64", "arith_f64",
      "bool",    "not",         "is_null", "year",      "starts_with",
      "cast_f64", "in"};
  std::string out;
  for (const ExprInstr& instr : instrs_) {
    out += "r" + std::to_string(instr.dst) + " <- " +
           kOpNames[static_cast<int>(instr.op)];
    switch (instr.op) {
      case ExprOpCode::kCmpI64:
      case ExprOpCode::kCmpF64:
      case ExprOpCode::kCmpStr:
        out += std::string("(") +
               CompareOpName(static_cast<CompareOp>(instr.aux)) + ")";
        break;
      case ExprOpCode::kArithI64:
      case ExprOpCode::kArithF64: {
        static const char* kArith[] = {"+", "-", "*", "/"};
        out += std::string("(") + kArith[instr.aux] + ")";
        break;
      }
      case ExprOpCode::kBoolAndOr:
        out += static_cast<BoolOp>(instr.aux) == BoolOp::kAnd ? "(and)"
                                                              : "(or)";
        break;
      case ExprOpCode::kStartsWith:
        out += "('" + string_pool_[static_cast<size_t>(instr.pool)] + "')";
        break;
      default:
        break;
    }
    out += " " + reg_name(instr.a);
    switch (instr.op) {
      case ExprOpCode::kCmpI64:
      case ExprOpCode::kCmpF64:
      case ExprOpCode::kCmpStr:
      case ExprOpCode::kArithI64:
      case ExprOpCode::kArithF64:
      case ExprOpCode::kBoolAndOr:
        out += ", " + reg_name(instr.b);
        break;
      default:
        break;
    }
    out += "\n";
  }
  for (size_t k = 0; k < outputs_.size(); ++k) {
    out += "out[" + std::to_string(k) + "] = " + reg_name(outputs_[k]) + "\n";
  }
  return out;
}

// --- ExprFrame ------------------------------------------------------------

ExprFrame::ExprFrame(std::shared_ptr<const ExprProgram> program)
    : program_(std::move(program)) {
  own_.resize(program_->regs().size());
  slots_.resize(program_->regs().size(), nullptr);
}

void ExprFrame::SetMemoryTracker(MemoryTracker* tracker) {
  reservation_.Reset(tracker);
}

void ExprFrame::EnsureCapacity(int64_t n) {
  if (n <= capacity_) return;
  const std::vector<ExprRegister>& regs = program_->regs();
  int64_t scratch_bytes = 0;
  for (size_t i = 0; i < regs.size(); ++i) {
    if (regs[i].source == ExprRegister::Source::kColumn) continue;
    own_[i] = std::make_unique<ColumnVector>(regs[i].type, n);
    scratch_bytes += own_[i]->MemoryBytes();
  }
  reservation_.Set(scratch_bytes);
  capacity_ = n;
  consts_filled_ = 0;
}

void ExprFrame::FillConsts(int64_t n) {
  if (n <= consts_filled_) return;
  const std::vector<ExprRegister>& regs = program_->regs();
  for (size_t i = 0; i < regs.size(); ++i) {
    if (regs[i].source != ExprRegister::Source::kConst) continue;
    ColumnVector* cv = own_[i].get();
    const Value& v = regs[i].constant;
    if (v.is_null()) {
      std::fill(cv->mutable_validity(), cv->mutable_validity() + n,
                uint8_t{0});
      continue;
    }
    cv->SetAllValid(n);
    switch (PhysicalTypeOf(v.type())) {
      case PhysicalType::kInt64:
        std::fill(cv->mutable_ints(), cv->mutable_ints() + n, v.int64());
        break;
      case PhysicalType::kDouble:
        std::fill(cv->mutable_doubles(), cv->mutable_doubles() + n, v.dbl());
        break;
      case PhysicalType::kString:
        // Views into the Value stored in the program's register table —
        // stable for the program's (and thus the frame's) lifetime.
        std::fill(cv->mutable_strings(), cv->mutable_strings() + n,
                  std::string_view(v.str()));
        break;
    }
  }
  consts_filled_ = n;
}

Status ExprFrame::Run(const Batch& in) {
  const int64_t n = in.num_rows();
  EnsureCapacity(std::max<int64_t>(n, 1));
  FillConsts(n);
  const std::vector<ExprRegister>& regs = program_->regs();
  for (size_t i = 0; i < regs.size(); ++i) {
    slots_[i] = regs[i].source == ExprRegister::Source::kColumn
                    ? &in.column(regs[i].column)
                    : own_[i].get();
  }

  for (const ExprInstr& instr : program_->instrs()) {
    const ColumnVector& a = *slots_[instr.a];
    ColumnVector* dst = own_[instr.dst].get();
    uint8_t* vd = dst->mutable_validity();
    switch (instr.op) {
      case ExprOpCode::kCmpI64: {
        const ColumnVector& b = *slots_[instr.b];
        kernels::ByteAnd(a.validity(), b.validity(), n, vd);
        kernels::CmpI64(static_cast<CompareOp>(instr.aux), a.ints(), b.ints(),
                        n, dst->mutable_ints());
        break;
      }
      case ExprOpCode::kCmpF64: {
        const ColumnVector& b = *slots_[instr.b];
        kernels::ByteAnd(a.validity(), b.validity(), n, vd);
        kernels::CmpF64(static_cast<CompareOp>(instr.aux), a.doubles(),
                        b.doubles(), n, dst->mutable_ints());
        break;
      }
      case ExprOpCode::kCmpStr: {
        const ColumnVector& b = *slots_[instr.b];
        kernels::ByteAnd(a.validity(), b.validity(), n, vd);
        kernels::CmpStr(static_cast<CompareOp>(instr.aux), a.strings(),
                        b.strings(), n, dst->mutable_ints());
        break;
      }
      case ExprOpCode::kArithI64: {
        const ColumnVector& b = *slots_[instr.b];
        kernels::ByteAnd(a.validity(), b.validity(), n, vd);
        kernels::ArithI64(static_cast<ArithOp>(instr.aux), a.ints(), b.ints(),
                          n, dst->mutable_ints(), vd);
        break;
      }
      case ExprOpCode::kArithF64: {
        const ColumnVector& b = *slots_[instr.b];
        kernels::ByteAnd(a.validity(), b.validity(), n, vd);
        kernels::ArithF64(static_cast<ArithOp>(instr.aux), a.doubles(),
                          b.doubles(), n, dst->mutable_doubles(), vd);
        break;
      }
      case ExprOpCode::kBoolAndOr: {
        const ColumnVector& b = *slots_[instr.b];
        kernels::ByteAnd(a.validity(), b.validity(), n, vd);
        kernels::BoolAndOr(static_cast<BoolOp>(instr.aux), a.ints(), b.ints(),
                           n, dst->mutable_ints());
        break;
      }
      case ExprOpCode::kNot:
        std::memcpy(vd, a.validity(), static_cast<size_t>(n));
        kernels::BoolNot(a.ints(), n, dst->mutable_ints());
        break;
      case ExprOpCode::kIsNull: {
        dst->SetAllValid(n);
        int64_t* res = dst->mutable_ints();
        const uint8_t* va = a.validity();
        for (int64_t i = 0; i < n; ++i) res[i] = va[i] == 0;
        break;
      }
      case ExprOpCode::kYear:
        std::memcpy(vd, a.validity(), static_cast<size_t>(n));
        kernels::YearFromDaysKernel(a.ints(), n, dst->mutable_ints());
        break;
      case ExprOpCode::kCastI64F64:
        std::memcpy(vd, a.validity(), static_cast<size_t>(n));
        kernels::CastI64ToF64(a.ints(), n, dst->mutable_doubles());
        break;
      case ExprOpCode::kStartsWith: {
        std::memcpy(vd, a.validity(), static_cast<size_t>(n));
        const std::string_view prefix(program_->pool_string(instr.pool));
        const std::string_view* s = a.strings();
        int64_t* res = dst->mutable_ints();
        for (int64_t i = 0; i < n; ++i) {
          res[i] = s[i].substr(0, prefix.size()) == prefix;
        }
        break;
      }
      case ExprOpCode::kIn: {
        std::memcpy(vd, a.validity(), static_cast<size_t>(n));
        const ExprProgram::InList& list = program_->pool_in_list(instr.pool);
        int64_t* res = dst->mutable_ints();
        switch (a.physical_type()) {
          case PhysicalType::kInt64: {
            const int64_t* s = a.ints();
            for (int64_t i = 0; i < n; ++i) {
              bool hit = false;
              for (int64_t v : list.i64) {
                if (s[i] == v) { hit = true; break; }
              }
              res[i] = hit;
            }
            break;
          }
          case PhysicalType::kDouble: {
            const double* s = a.doubles();
            for (int64_t i = 0; i < n; ++i) {
              bool hit = false;
              for (double v : list.f64) {
                if (s[i] == v) { hit = true; break; }
              }
              res[i] = hit;
            }
            break;
          }
          case PhysicalType::kString: {
            const std::string_view* s = a.strings();
            for (int64_t i = 0; i < n; ++i) {
              bool hit = false;
              for (const std::string& v : list.str) {
                if (s[i] == v) { hit = true; break; }
              }
              res[i] = hit;
            }
            break;
          }
        }
        break;
      }
    }
  }
  return Status::OK();
}

// --- ExprProgramCache -----------------------------------------------------

struct ExprProgramCache::Impl {
  std::mutex mu;
  std::unordered_map<std::string, std::shared_ptr<const ExprProgram>> map;
  Counter* compiled = MetricsRegistry::Global().GetCounter(
      "vstore_expr_programs_compiled_total");
  Counter* hits = MetricsRegistry::Global().GetCounter(
      "vstore_expr_program_cache_hits_total");
};

ExprProgramCache::Impl* ExprProgramCache::impl() const {
  static Impl instance;
  return &instance;
}

ExprProgramCache& ExprProgramCache::Global() {
  static ExprProgramCache cache;
  return cache;
}

std::shared_ptr<const ExprProgram> ExprProgramCache::GetOrCompile(
    const std::vector<ExprPtr>& exprs) {
  Impl* im = impl();
  std::string key = ExprProgram::Fingerprint(exprs);
  {
    std::lock_guard<std::mutex> lock(im->mu);
    auto it = im->map.find(key);
    if (it != im->map.end()) {
      im->hits->Increment();
      return it->second;
    }
  }
  auto compiled = ExprProgram::Compile(exprs);
  std::shared_ptr<const ExprProgram> program =
      compiled.ok() ? *compiled : nullptr;
  std::lock_guard<std::mutex> lock(im->mu);
  auto [it, inserted] = im->map.emplace(std::move(key), program);
  if (inserted && program != nullptr) im->compiled->Increment();
  return it->second;
}

int64_t ExprProgramCache::size() const {
  Impl* im = impl();
  std::lock_guard<std::mutex> lock(im->mu);
  return static_cast<int64_t>(im->map.size());
}

}  // namespace vstore
