#ifndef VSTORE_EXEC_HASH_AGGREGATE_H_
#define VSTORE_EXEC_HASH_AGGREGATE_H_

#include <atomic>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/memory_tracker.h"
#include "exec/aggregate.h"
#include "exec/hash_table.h"
#include "exec/operator.h"

namespace vstore {

// Aggregation phases for parallel plans (paper §5.4/§6: partial batch
// aggregation below an exchange, final aggregation above it):
//  - kComplete: raw rows in, finalized results out (single-threaded plans).
//  - kPartial:  raw rows in, partial rows out — group keys followed by a
//               (value, count) pair per aggregate; exact to merge.
//  - kFinal:    partial rows in, finalized results out.
enum class AggPhase { kComplete, kPartial, kFinal };

// Batch-mode hash aggregation (paper §5.4). Groups are kept in a hash
// table of serialized keys with fixed-size accumulator state appended to
// each entry. When the state exceeds the context's operator_memory_budget,
// the whole table is flushed as partial aggregates into hash-partitioned
// temp files and re-merged partition by partition at the end — merging
// partials is exact for every supported function (AVG carries sum+count).
//
// GROUP BY follows SQL semantics: null keys compare equal (one null group).
class HashAggregateOperator final : public BatchOperator {
 public:
  struct Options {
    std::vector<int> group_by;  // input column indices
    std::vector<AggSpec> aggregates;
    AggPhase phase = AggPhase::kComplete;
    int num_partitions = 16;  // spill fanout, power of two
  };

  // The partial-row schema produced by a kPartial instance over `input`
  // with the given groups/aggregates, and consumed by kFinal: group
  // columns, then per aggregate a typed $value column and an int64 $count.
  static Schema PartialSchema(const Schema& input,
                              const std::vector<int>& group_by,
                              const std::vector<AggSpec>& aggregates);

  // For kFinal, `input`'s schema must be the PartialSchema of the partial
  // stage; options.group_by must be {0..k-1} and each aggregate's column
  // must point at its $value column.
  HashAggregateOperator(BatchOperatorPtr input, Options options,
                        ExecContext* ctx);
  ~HashAggregateOperator() override;

  const Schema& output_schema() const override { return output_schema_; }
  std::string name() const override;

 protected:
  Status OpenImpl() override;
  Result<Batch*> NextImpl() override;
  void CloseImpl() override;
  std::vector<const BatchOperator*> ProfileInputs() const override {
    return {input_.get()};
  }
  void AppendProfileCounters(OperatorProfile* node) const override;

 private:
  // Per-aggregate accumulator: 24 bytes — [acc:8][aux:8][count:8].
  static constexpr size_t kStateSlot = 24;

  size_t entry_size() const {
    return SerializedRowHashTable::kHeaderSize + key_format_->row_size() +
           kStateSlot * options_.aggregates.size();
  }
  uint8_t* entry_state(uint8_t* entry) const {
    return entry + SerializedRowHashTable::kHeaderSize +
           key_format_->row_size();
  }

  Status ConsumeInput();
  // `hash` is the row's group-key hash, precomputed batch-at-a-time by
  // ConsumeInput via HashKeysBatch.
  Result<uint8_t*> GroupEntryFromBatch(const Batch& batch, int64_t i,
                                       uint64_t hash);
  void InitState(uint8_t* state) const;
  // Folds one raw input row into the group state.
  void UpdateStateFromBatch(uint8_t* state, const Batch& batch, int64_t i);
  // Folds one partial row ((value, count) pairs) into the group state.
  void UpdateStateFromPartialBatch(uint8_t* state, const Batch& batch,
                                   int64_t i);
  Status FlushToPartitions();
  Status LoadPartition(int p);
  Status EmitEntries();
  // Resets the state arena + group table, re-attaching the tracker.
  void ResetAggState(int64_t expected_rows);
  // Local operator budget exceeded, or query-level budget pressure.
  bool UnderMemoryPressure(int64_t local_budget) const;
  // Writes one aggregate's partial (value, count) into `row` (spill path).
  void AppendPartialValues(const uint8_t* state, std::vector<Value>* row) const;

  BatchOperatorPtr input_;
  Options options_;
  ExecContext* ctx_;

  Schema output_schema_;
  Schema key_schema_;
  Schema partial_schema_;
  std::unique_ptr<RowFormat> key_format_;
  std::vector<int> key_indices_;      // 0..k-1 within key rows
  std::vector<uint8_t> state_kinds_;  // precomputed per-aggregate StateKind

  std::unique_ptr<Arena> arena_;
  std::unique_ptr<SerializedRowHashTable> table_;
  std::vector<uint8_t*> entries_;

  // Per-operator tracker under the query tracker (null when tracking is
  // off); the state arena and group table charge here. The pressure flag
  // is set by the query tracker's budget-crossing listener and consumed at
  // the existing flush decision point.
  std::unique_ptr<MemoryTracker> mem_;
  mutable std::atomic<bool> pressure_{false};
  int pressure_listener_ = 0;

  bool spilled_ = false;
  std::vector<std::FILE*> partition_files_;

  // Emission state.
  std::unique_ptr<Batch> output_;
  size_t emit_pos_ = 0;
  int drain_partition_ = 0;
  bool done_ = false;

  // Per-operator profile counters mirroring the query-global ExecStats.
  int64_t rows_aggregated_ = 0;
  int64_t groups_ = 0;
  int64_t spill_flushes_ = 0;
  int64_t rows_spilled_ = 0;
};

}  // namespace vstore

#endif  // VSTORE_EXEC_HASH_AGGREGATE_H_
