#include "exec/row/row_operator.h"

#include <algorithm>

#include "common/macros.h"
#include "storage/delta_store.h"

namespace vstore {

// --- RowStoreScanOperator -------------------------------------------------

Result<bool> RowStoreScanOperator::Next(std::vector<Value>* row) {
  if (pos_ >= table_->num_rows()) return false;
  VSTORE_RETURN_IF_ERROR(table_->GetRow(pos_++, row));
  return true;
}

// --- ColumnStoreRowScanOperator ----------------------------------------------

Status ColumnStoreRowScanOperator::Open() {
  snapshot_ = table_->Snapshot();
  group_ = 0;
  offset_ = 0;
  delta_index_ = 0;
  delta_loaded_ = false;
  delta_pos_ = 0;
  return Status::OK();
}

Result<bool> ColumnStoreRowScanOperator::Next(std::vector<Value>* row) {
  // Compressed row groups: per-row point decode (deliberately slow; this is
  // the row-mode access path).
  while (group_ < snapshot_->num_row_groups()) {
    const RowGroup& rg = snapshot_->row_group(group_);
    if (offset_ >= rg.num_rows()) {
      ++group_;
      offset_ = 0;
      continue;
    }
    int64_t r = offset_++;
    if (snapshot_->delete_bitmap(group_).IsDeleted(r)) continue;
    row->clear();
    for (int c = 0; c < rg.num_columns(); ++c) {
      row->push_back(rg.column(c).GetValue(r));
    }
    return true;
  }
  // Delta stores.
  for (;;) {
    if (!delta_loaded_) {
      if (delta_index_ >= snapshot_->num_delta_stores()) return false;
      delta_rows_.clear();
      delta_pos_ = 0;
      VSTORE_RETURN_IF_ERROR(snapshot_->delta_store(delta_index_).ForEach(
          [this](uint64_t, const std::vector<Value>& r) {
            delta_rows_.push_back(r);
          }));
      delta_loaded_ = true;
    }
    if (delta_pos_ < static_cast<int64_t>(delta_rows_.size())) {
      *row = delta_rows_[static_cast<size_t>(delta_pos_++)];
      return true;
    }
    delta_loaded_ = false;
    ++delta_index_;
  }
}

// --- RowFilterOperator ---------------------------------------------------------

Result<bool> RowFilterOperator::Next(std::vector<Value>* row) {
  for (;;) {
    VSTORE_ASSIGN_OR_RETURN(bool more, input_->Next(row));
    if (!more) return false;
    Value v;
    VSTORE_RETURN_IF_ERROR(predicate_->EvalRow(*row, &v));
    if (!v.is_null() && v.int64() != 0) return true;
  }
}

// --- RowProjectOperator ----------------------------------------------------------

RowProjectOperator::RowProjectOperator(RowOperatorPtr input,
                                       std::vector<ExprPtr> exprs,
                                       std::vector<std::string> names)
    : input_(std::move(input)), exprs_(std::move(exprs)) {
  VSTORE_CHECK(exprs_.size() == names.size());
  std::vector<Field> fields;
  for (size_t i = 0; i < exprs_.size(); ++i) {
    fields.push_back(Field{names[i], exprs_[i]->output_type(), true});
  }
  schema_ = Schema(std::move(fields));
}

Result<bool> RowProjectOperator::Next(std::vector<Value>* row) {
  VSTORE_ASSIGN_OR_RETURN(bool more, input_->Next(&scratch_));
  if (!more) return false;
  row->clear();
  row->reserve(exprs_.size());
  for (const ExprPtr& e : exprs_) {
    Value v;
    VSTORE_RETURN_IF_ERROR(e->EvalRow(scratch_, &v));
    row->push_back(std::move(v));
  }
  return true;
}

// --- RowHashJoinOperator ------------------------------------------------------------

RowHashJoinOperator::RowHashJoinOperator(RowOperatorPtr probe,
                                         RowOperatorPtr build, Options options)
    : probe_(std::move(probe)),
      build_(std::move(build)),
      options_(std::move(options)),
      emit_build_columns_(options_.join_type == JoinType::kInner ||
                          options_.join_type == JoinType::kLeftOuter) {
  std::vector<Field> fields = probe_->output_schema().fields();
  if (emit_build_columns_) {
    for (const Field& f : build_->output_schema().fields()) {
      Field nf = f;
      nf.nullable = true;
      fields.push_back(nf);
    }
  }
  output_schema_ = Schema(std::move(fields));
}

std::string RowHashJoinOperator::KeyOf(const std::vector<Value>& row,
                                       const std::vector<int>& keys,
                                       bool* has_null) const {
  std::string key;
  *has_null = false;
  for (int k : keys) {
    const Value& v = row[static_cast<size_t>(k)];
    if (v.is_null()) {
      *has_null = true;
      return key;
    }
    // Normalize numerics so INT32/INT64/DATE32 compare by value.
    switch (PhysicalTypeOf(v.type())) {
      case PhysicalType::kInt64: {
        int64_t x = v.int64();
        key.append(reinterpret_cast<const char*>(&x), sizeof(x));
        break;
      }
      case PhysicalType::kDouble: {
        double x = v.dbl();
        key.append(reinterpret_cast<const char*>(&x), sizeof(x));
        break;
      }
      case PhysicalType::kString:
        key += v.str();
        key.push_back('\0');
        break;
    }
  }
  return key;
}

void RowHashJoinOperator::Emit(const std::vector<Value>& probe_row,
                               const std::vector<Value>* build_row,
                               std::vector<Value>* out) const {
  *out = probe_row;
  if (!emit_build_columns_) return;
  if (build_row != nullptr) {
    out->insert(out->end(), build_row->begin(), build_row->end());
  } else {
    for (const Field& f : build_->output_schema().fields()) {
      out->push_back(Value::Null(f.type));
    }
  }
}

Status RowHashJoinOperator::Open() {
  table_.clear();
  probe_valid_ = false;
  row_matched_ = false;
  VSTORE_RETURN_IF_ERROR(build_->Open());
  std::vector<Value> row;
  for (;;) {
    VSTORE_ASSIGN_OR_RETURN(bool more, build_->Next(&row));
    if (!more) break;
    bool has_null;
    std::string key = KeyOf(row, options_.build_keys, &has_null);
    if (has_null) continue;
    table_.emplace(std::move(key), row);
  }
  build_->Close();
  return probe_->Open();
}

Result<bool> RowHashJoinOperator::Next(std::vector<Value>* row) {
  const JoinType jt = options_.join_type;
  for (;;) {
    if (!probe_valid_) {
      VSTORE_ASSIGN_OR_RETURN(bool more, probe_->Next(&probe_row_));
      if (!more) return false;
      bool has_null;
      std::string key = KeyOf(probe_row_, options_.probe_keys, &has_null);
      if (has_null) {
        if (jt == JoinType::kLeftOuter || jt == JoinType::kLeftAnti) {
          Emit(probe_row_, nullptr, row);
          return true;
        }
        continue;
      }
      range_ = table_.equal_range(key);
      row_matched_ = range_.first != range_.second;
      probe_valid_ = true;

      if (jt == JoinType::kLeftSemi) {
        probe_valid_ = false;
        if (row_matched_) {
          Emit(probe_row_, nullptr, row);
          return true;
        }
        continue;
      }
      if (jt == JoinType::kLeftAnti) {
        probe_valid_ = false;
        if (!row_matched_) {
          Emit(probe_row_, nullptr, row);
          return true;
        }
        continue;
      }
      if (!row_matched_) {
        probe_valid_ = false;
        if (jt == JoinType::kLeftOuter) {
          Emit(probe_row_, nullptr, row);
          return true;
        }
        continue;
      }
    }
    if (range_.first != range_.second) {
      Emit(probe_row_, &range_.first->second, row);
      ++range_.first;
      if (range_.first == range_.second) probe_valid_ = false;
      return true;
    }
    probe_valid_ = false;
  }
}

void RowHashJoinOperator::Close() {
  probe_->Close();
  table_.clear();
}

// --- RowHashAggregateOperator -----------------------------------------------------------

RowHashAggregateOperator::RowHashAggregateOperator(RowOperatorPtr input,
                                                   Options options)
    : input_(std::move(input)), options_(std::move(options)) {
  const Schema& in = input_->output_schema();
  std::vector<Field> fields;
  for (int k : options_.group_by) fields.push_back(in.field(k));
  for (const AggSpec& spec : options_.aggregates) {
    DataType input_type = spec.column >= 0 ? in.field(spec.column).type
                                           : DataType::kInt64;
    fields.push_back(
        Field{spec.name, AggOutputType(spec.fn, input_type), true});
  }
  output_schema_ = Schema(std::move(fields));
}

Status RowHashAggregateOperator::Open() {
  groups_.clear();
  opened_ = false;
  VSTORE_RETURN_IF_ERROR(input_->Open());
  std::vector<Value> row;
  const size_t num_aggs = options_.aggregates.size();
  for (;;) {
    VSTORE_ASSIGN_OR_RETURN(bool more, input_->Next(&row));
    if (!more) break;
    // Key: ToString-based normalization with null marker.
    std::string key;
    for (int k : options_.group_by) {
      const Value& v = row[static_cast<size_t>(k)];
      key += v.is_null() ? std::string("\1N") : v.ToString();
      key.push_back('\0');
    }
    auto [it, inserted] = groups_.try_emplace(std::move(key));
    GroupState& state = it->second;
    if (inserted) {
      for (int k : options_.group_by) {
        state.keys.push_back(row[static_cast<size_t>(k)]);
      }
      state.sum_d.assign(num_aggs, 0);
      state.sum_i.assign(num_aggs, 0);
      state.count.assign(num_aggs, 0);
      state.minmax.assign(num_aggs, Value());
    }
    for (size_t a = 0; a < num_aggs; ++a) {
      const AggSpec& spec = options_.aggregates[a];
      if (spec.fn == AggFn::kCountStar) {
        ++state.count[a];
        continue;
      }
      const Value& v = row[static_cast<size_t>(spec.column)];
      if (v.is_null()) continue;
      switch (spec.fn) {
        case AggFn::kSum:
        case AggFn::kAvg:
          if (v.type() == DataType::kDouble) {
            state.sum_d[a] += v.dbl();
          } else {
            state.sum_i[a] += v.int64();
            state.sum_d[a] += static_cast<double>(v.int64());
          }
          break;
        case AggFn::kMin:
        case AggFn::kMax: {
          if (state.count[a] == 0) {
            state.minmax[a] = v;
          } else {
            const Value& cur = state.minmax[a];
            bool take;
            if (PhysicalTypeOf(v.type()) == PhysicalType::kString) {
              take = spec.fn == AggFn::kMin ? v.str() < cur.str()
                                            : v.str() > cur.str();
            } else {
              take = spec.fn == AggFn::kMin
                         ? v.AsDouble() < cur.AsDouble()
                         : v.AsDouble() > cur.AsDouble();
            }
            if (take) state.minmax[a] = v;
          }
          break;
        }
        default:
          break;
      }
      ++state.count[a];
    }
  }
  input_->Close();
  emit_it_ = groups_.begin();
  opened_ = true;
  return Status::OK();
}

Result<bool> RowHashAggregateOperator::Next(std::vector<Value>* row) {
  VSTORE_CHECK(opened_);
  if (emit_it_ == groups_.end()) return false;
  const GroupState& state = emit_it_->second;
  const Schema& in = input_->output_schema();
  row->clear();
  row->insert(row->end(), state.keys.begin(), state.keys.end());
  for (size_t a = 0; a < options_.aggregates.size(); ++a) {
    const AggSpec& spec = options_.aggregates[a];
    DataType input_type = spec.column >= 0 ? in.field(spec.column).type
                                           : DataType::kInt64;
    switch (spec.fn) {
      case AggFn::kCount:
      case AggFn::kCountStar:
        row->push_back(Value::Int64(state.count[a]));
        break;
      case AggFn::kSum:
        if (state.count[a] == 0) {
          row->push_back(Value::Null(AggOutputType(spec.fn, input_type)));
        } else if (input_type == DataType::kDouble) {
          row->push_back(Value::Double(state.sum_d[a]));
        } else {
          row->push_back(Value::Int64(state.sum_i[a]));
        }
        break;
      case AggFn::kAvg:
        row->push_back(state.count[a] == 0
                           ? Value::Null(DataType::kDouble)
                           : Value::Double(state.sum_d[a] /
                                           static_cast<double>(state.count[a])));
        break;
      case AggFn::kMin:
      case AggFn::kMax:
        row->push_back(state.count[a] == 0 ? Value::Null(input_type)
                                           : state.minmax[a]);
        break;
    }
  }
  ++emit_it_;
  return true;
}

// --- RowSortOperator -------------------------------------------------------------------

Status RowSortOperator::Open() {
  rows_.clear();
  pos_ = 0;
  VSTORE_RETURN_IF_ERROR(input_->Open());
  std::vector<Value> row;
  for (;;) {
    VSTORE_ASSIGN_OR_RETURN(bool more, input_->Next(&row));
    if (!more) break;
    rows_.push_back(row);
  }
  std::sort(rows_.begin(), rows_.end(),
            [this](const std::vector<Value>& a, const std::vector<Value>& b) {
              return CompareRowsOnKeys(a, b, keys_) < 0;
            });
  if (limit_ >= 0 && static_cast<int64_t>(rows_.size()) > limit_) {
    rows_.resize(static_cast<size_t>(limit_));
  }
  return Status::OK();
}

Result<bool> RowSortOperator::Next(std::vector<Value>* row) {
  if (pos_ >= rows_.size()) return false;
  *row = rows_[pos_++];
  return true;
}

// --- Adapters -----------------------------------------------------------------------------

Result<bool> BatchToRowAdapter::Next(std::vector<Value>* row) {
  for (;;) {
    if (batch_ != nullptr && pos_ < batch_->num_rows()) {
      if (!batch_->active()[pos_]) {
        ++pos_;
        continue;
      }
      *row = batch_->GetActiveRow(pos_++);
      return true;
    }
    VSTORE_ASSIGN_OR_RETURN(Batch * next, input_->Next());
    if (next == nullptr) return false;
    batch_ = next;
    pos_ = 0;
  }
}

Result<Batch*> RowToBatchAdapter::NextImpl() {
  output_->Reset();
  int64_t out_row = 0;
  std::vector<Value> row;
  while (out_row < output_->capacity()) {
    VSTORE_ASSIGN_OR_RETURN(bool more, input_->Next(&row));
    if (!more) break;
    for (int c = 0; c < output_->num_columns(); ++c) {
      output_->column(c).SetValue(out_row, row[static_cast<size_t>(c)],
                                  output_->arena());
    }
    ++out_row;
  }
  if (out_row == 0) return static_cast<Batch*>(nullptr);
  output_->set_num_rows(out_row);
  output_->ActivateAll();
  return output_.get();
}

}  // namespace vstore
