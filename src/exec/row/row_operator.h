#ifndef VSTORE_EXEC_ROW_ROW_OPERATOR_H_
#define VSTORE_EXEC_ROW_ROW_OPERATOR_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/aggregate.h"
#include "exec/expression.h"
#include "exec/hash_join.h"
#include "exec/operator.h"
#include "exec/sort.h"
#include "storage/column_store.h"
#include "storage/row_store.h"

namespace vstore {

// Classic tuple-at-a-time Volcano operator — the row-mode baseline the
// paper compares batch mode against, and the engine used above batch
// operators in mixed-mode plans. Next() produces one row per call.
class RowOperator {
 public:
  virtual ~RowOperator() = default;

  virtual Status Open() = 0;
  // Fills `row`; returns false at end of stream.
  virtual Result<bool> Next(std::vector<Value>* row) = 0;
  virtual void Close() {}

  virtual const Schema& output_schema() const = 0;
  virtual std::string name() const = 0;
};

using RowOperatorPtr = std::unique_ptr<RowOperator>;

// --- Scans -------------------------------------------------------------

class RowStoreScanOperator final : public RowOperator {
 public:
  explicit RowStoreScanOperator(const RowStoreTable* table) : table_(table) {}

  Status Open() override {
    pos_ = 0;
    return Status::OK();
  }
  Result<bool> Next(std::vector<Value>* row) override;
  const Schema& output_schema() const override { return table_->schema(); }
  std::string name() const override { return "RowStoreScan"; }

 private:
  const RowStoreTable* table_;
  int64_t pos_ = 0;
};

// Row-mode scan of a column store: decodes one row at a time via segment
// point lookups (the access path row-mode plans use when a table only has a
// columnstore — deliberately pays per-tuple decode cost).
class ColumnStoreRowScanOperator final : public RowOperator {
 public:
  explicit ColumnStoreRowScanOperator(const ColumnStoreTable* table)
      : table_(table) {}

  Status Open() override;
  Result<bool> Next(std::vector<Value>* row) override;
  void Close() override { snapshot_.reset(); }
  const Schema& output_schema() const override { return table_->schema(); }
  std::string name() const override { return "ColumnStoreRowScan"; }

 private:
  const ColumnStoreTable* table_;
  TableSnapshot snapshot_;  // pinned at Open; read lock-free
  int64_t group_ = 0;
  int64_t offset_ = 0;
  int64_t delta_index_ = 0;
  std::vector<std::vector<Value>> delta_rows_;
  int64_t delta_pos_ = 0;
  bool delta_loaded_ = false;
};

// --- Filter / Project -----------------------------------------------------

class RowFilterOperator final : public RowOperator {
 public:
  RowFilterOperator(RowOperatorPtr input, ExprPtr predicate)
      : input_(std::move(input)), predicate_(std::move(predicate)) {}

  Status Open() override { return input_->Open(); }
  Result<bool> Next(std::vector<Value>* row) override;
  void Close() override { input_->Close(); }
  const Schema& output_schema() const override {
    return input_->output_schema();
  }
  std::string name() const override { return "RowFilter"; }

 private:
  RowOperatorPtr input_;
  ExprPtr predicate_;
};

class RowProjectOperator final : public RowOperator {
 public:
  RowProjectOperator(RowOperatorPtr input, std::vector<ExprPtr> exprs,
                     std::vector<std::string> names);

  Status Open() override { return input_->Open(); }
  Result<bool> Next(std::vector<Value>* row) override;
  void Close() override { input_->Close(); }
  const Schema& output_schema() const override { return schema_; }
  std::string name() const override { return "RowProject"; }

 private:
  RowOperatorPtr input_;
  std::vector<ExprPtr> exprs_;
  Schema schema_;
  std::vector<Value> scratch_;
};

// --- Hash join --------------------------------------------------------------

class RowHashJoinOperator final : public RowOperator {
 public:
  struct Options {
    JoinType join_type;
    std::vector<int> probe_keys;
    std::vector<int> build_keys;
  };

  RowHashJoinOperator(RowOperatorPtr probe, RowOperatorPtr build,
                      Options options);

  Status Open() override;
  Result<bool> Next(std::vector<Value>* row) override;
  void Close() override;
  const Schema& output_schema() const override { return output_schema_; }
  std::string name() const override { return "RowHashJoin"; }

 private:
  std::string KeyOf(const std::vector<Value>& row,
                    const std::vector<int>& keys, bool* has_null) const;
  void Emit(const std::vector<Value>& probe_row,
            const std::vector<Value>* build_row, std::vector<Value>* out) const;

  RowOperatorPtr probe_;
  RowOperatorPtr build_;
  Options options_;
  Schema output_schema_;
  bool emit_build_columns_;

  std::unordered_multimap<std::string, std::vector<Value>> table_;
  std::vector<Value> probe_row_;
  bool probe_valid_ = false;
  std::pair<std::unordered_multimap<std::string, std::vector<Value>>::iterator,
            std::unordered_multimap<std::string, std::vector<Value>>::iterator>
      range_;
  bool row_matched_ = false;
};

// --- Hash aggregate -----------------------------------------------------------

class RowHashAggregateOperator final : public RowOperator {
 public:
  struct Options {
    std::vector<int> group_by;
    std::vector<AggSpec> aggregates;
  };

  RowHashAggregateOperator(RowOperatorPtr input, Options options);

  Status Open() override;
  Result<bool> Next(std::vector<Value>* row) override;
  void Close() override { input_->Close(); }
  const Schema& output_schema() const override { return output_schema_; }
  std::string name() const override { return "RowHashAggregate"; }

 private:
  struct GroupState {
    std::vector<Value> keys;
    std::vector<double> sum_d;
    std::vector<int64_t> sum_i;
    std::vector<int64_t> count;
    std::vector<Value> minmax;
  };

  RowOperatorPtr input_;
  Options options_;
  Schema output_schema_;
  std::unordered_map<std::string, GroupState> groups_;
  std::unordered_map<std::string, GroupState>::iterator emit_it_;
  bool opened_ = false;
};

// --- Sort ------------------------------------------------------------------------

class RowSortOperator final : public RowOperator {
 public:
  RowSortOperator(RowOperatorPtr input, std::vector<SortKey> keys,
                  int64_t limit)
      : input_(std::move(input)), keys_(std::move(keys)), limit_(limit) {}

  Status Open() override;
  Result<bool> Next(std::vector<Value>* row) override;
  void Close() override { input_->Close(); }
  const Schema& output_schema() const override {
    return input_->output_schema();
  }
  std::string name() const override { return "RowSort"; }

 private:
  RowOperatorPtr input_;
  std::vector<SortKey> keys_;
  int64_t limit_;
  std::vector<std::vector<Value>> rows_;
  size_t pos_ = 0;
};

// --- Mode adapters (mixed-mode plans, paper §6) --------------------------------

// Wraps a batch subtree so row-mode operators can sit on top.
class BatchToRowAdapter final : public RowOperator {
 public:
  explicit BatchToRowAdapter(BatchOperatorPtr input)
      : input_(std::move(input)) {}

  Status Open() override {
    batch_ = nullptr;
    pos_ = 0;
    return input_->Open();
  }
  Result<bool> Next(std::vector<Value>* row) override;
  void Close() override { input_->Close(); }
  const Schema& output_schema() const override {
    return input_->output_schema();
  }
  std::string name() const override { return "BatchToRow"; }

 private:
  BatchOperatorPtr input_;
  Batch* batch_ = nullptr;
  int64_t pos_ = 0;
};

// Wraps a row subtree so batch operators can sit on top.
class RowToBatchAdapter final : public BatchOperator {
 public:
  RowToBatchAdapter(RowOperatorPtr input, ExecContext* ctx)
      : input_(std::move(input)), ctx_(ctx) {}

  const Schema& output_schema() const override {
    return input_->output_schema();
  }
  std::string name() const override { return "RowToBatch"; }

 protected:
  Status OpenImpl() override {
    output_ = std::make_unique<Batch>(input_->output_schema(),
                                      ctx_->batch_size);
    return input_->Open();
  }
  Result<Batch*> NextImpl() override;
  void CloseImpl() override { input_->Close(); }

 private:
  RowOperatorPtr input_;
  ExecContext* ctx_;
  std::unique_ptr<Batch> output_;
};

}  // namespace vstore

#endif  // VSTORE_EXEC_ROW_ROW_OPERATOR_H_
