#ifndef VSTORE_EXEC_HASH_JOIN_H_
#define VSTORE_EXEC_HASH_JOIN_H_

#include <atomic>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/memory_tracker.h"
#include "exec/bloom_filter.h"
#include "exec/hash_table.h"
#include "exec/operator.h"

namespace vstore {

enum class JoinType {
  kInner,
  kLeftOuter,  // all probe rows; unmatched ones null-extended
  kLeftSemi,   // probe rows with at least one match (probe columns only)
  kLeftAnti,   // probe rows with no match (probe columns only)
};

const char* JoinTypeName(JoinType type);

// True when the join's output carries build-side columns (inner/outer).
inline bool JoinEmitsBuildColumns(JoinType type) {
  return type == JoinType::kInner || type == JoinType::kLeftOuter;
}

// Output schema of a batch hash join: probe columns, then (for inner/outer
// joins) the build columns marked nullable for null-extension.
Schema HashJoinOutputSchema(const Schema& probe, const Schema& build,
                            JoinType type);

// Row emission shared by the single-threaded hash join and the parallel
// probe fragments: writes one output row (probe side from a batch or a
// serialized row, build side from a serialized row or null-extended) into
// an accumulating output batch. Stateless apart from the formats.
class JoinRowEmitter {
 public:
  JoinRowEmitter(const RowFormat* probe_format, const RowFormat* build_format,
                 bool emit_build_columns)
      : probe_format_(probe_format),
        build_format_(build_format),
        emit_build_columns_(emit_build_columns) {}

  void EmitFromBatch(Batch* output, const Batch& probe, int64_t row,
                     const uint8_t* build_row, int64_t out_row) const;
  void EmitFromSerialized(Batch* output, const uint8_t* probe_row,
                          const uint8_t* build_row, int64_t out_row) const;

 private:
  const RowFormat* probe_format_;
  const RowFormat* build_format_;
  bool emit_build_columns_;
};

// Batch-mode hash join (paper §5.3): consumes the build side into a hash
// table of serialized rows, optionally publishing a Bloom filter for
// pushdown into the probe-side scan, then streams probe batches against it.
//
// Memory-bounded: build rows are hash-partitioned; when the in-memory size
// exceeds the context's operator_memory_budget, whole partitions spill to
// temp files and the matching probe rows are spilled too, then partition
// pairs are drained after the probe input is exhausted (grace hash join).
// One level of partitioning is applied; a spilled partition is assumed to
// fit in memory during its drain.
//
// Output schema: probe columns followed by build columns (probe columns
// only for semi/anti joins).
class HashJoinOperator final : public BatchOperator {
 public:
  struct Options {
    JoinType join_type = JoinType::kInner;
    std::vector<int> probe_keys;  // column indices in the probe schema
    std::vector<int> build_keys;  // column indices in the build schema
    // If non-null, the join Init()s and populates this externally-owned
    // Bloom filter over the build keys during its build phase. The planner
    // hands the same object to the probe-side scan (which only reads it
    // after Open(), i.e. after the build completed). Only valid for
    // inner/semi joins (outer/anti joins must see every probe row).
    BloomFilter* bloom_target = nullptr;
    int num_partitions = 16;  // power of two
  };

  HashJoinOperator(BatchOperatorPtr probe, BatchOperatorPtr build,
                   Options options, ExecContext* ctx);
  ~HashJoinOperator() override;

  // Non-null iff options.bloom_target was set; populated once Open() returns.
  const BloomFilter* bloom_filter() const { return bloom_; }

  const Schema& output_schema() const override { return output_schema_; }
  std::string name() const override;

 protected:
  Status OpenImpl() override;
  Result<Batch*> NextImpl() override;
  void CloseImpl() override;
  std::vector<const BatchOperator*> ProfileInputs() const override {
    return {probe_.get(), build_.get()};
  }
  void AppendProfileCounters(OperatorProfile* node) const override;

 private:
  struct Partition {
    std::unique_ptr<Arena> arena;
    std::vector<uint8_t*> rows;  // entry pointers (header + payload)
    int64_t bytes = 0;
    bool spilled = false;
    std::FILE* build_file = nullptr;
    std::FILE* probe_file = nullptr;
    int64_t build_rows_on_disk = 0;
    int64_t probe_rows_on_disk = 0;
    std::unique_ptr<SerializedRowHashTable> table;
  };

  int PartitionOf(uint64_t hash) const {
    return static_cast<int>(hash >> partition_shift_);
  }

  Status RunBuildPhase();
  Status SpillPartition(int p);
  Status BuildInMemoryTables();

  // WriteSpillRow plus per-operator and global spill-byte accounting.
  Status SpillRow(std::FILE* f, const Schema& schema,
                  const std::vector<Value>& row);
  // True when the build should shed a partition: local operator budget
  // exceeded, or the query-level tracker crossed its budget (pressure
  // listener edge or steady-state over_budget poll).
  bool UnderMemoryPressure(int64_t local_budget) const;

  // Probe-streaming phase; returns true when a full/final batch is ready.
  Result<bool> PumpProbe();
  // Spill-drain phase; returns true when a batch is ready, false at EOS.
  Result<bool> PumpSpill();

  BatchOperatorPtr probe_;
  BatchOperatorPtr build_;
  Options options_;
  ExecContext* ctx_;

  Schema output_schema_;
  RowFormat build_format_;
  RowFormat probe_format_;
  bool emit_build_columns_;
  JoinRowEmitter emitter_;

  BloomFilter* bloom_ = nullptr;  // not owned
  std::vector<Partition> partitions_;
  int partition_shift_ = 60;
  int64_t total_build_bytes_ = 0;

  // Per-operator tracker under the query tracker (null when tracking is
  // off); partition arenas and tables charge here. The pressure flag is
  // set by the query tracker's budget-crossing listener.
  std::unique_ptr<MemoryTracker> mem_;
  mutable std::atomic<bool> pressure_{false};
  int pressure_listener_ = 0;

  std::unique_ptr<Batch> output_;
  int64_t out_rows_ = 0;

  // Probe-streaming state.
  enum class Phase { kBuild, kProbe, kSpillDrain, kDone };
  Phase phase_ = Phase::kBuild;
  Batch* probe_batch_ = nullptr;
  int64_t probe_row_ = 0;
  std::vector<uint64_t> probe_hashes_;
  const uint8_t* chain_ = nullptr;  // resume point within a bucket chain
  bool row_matched_ = false;        // for outer/semi/anti bookkeeping

  // Spill-drain state.
  int drain_partition_ = 0;
  bool drain_loaded_ = false;
  std::vector<uint8_t> drain_probe_row_;  // serialized current probe row
  bool drain_row_pending_ = false;
  Arena drain_arena_;

  // Per-operator profile counters mirroring the query-global ExecStats.
  int64_t build_rows_ = 0;
  int64_t probe_rows_ = 0;
  int64_t build_rows_spilled_ = 0;
  int64_t probe_rows_spilled_ = 0;
  int64_t spill_partitions_ = 0;
};

}  // namespace vstore

#endif  // VSTORE_EXEC_HASH_JOIN_H_
