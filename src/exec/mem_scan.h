#ifndef VSTORE_EXEC_MEM_SCAN_H_
#define VSTORE_EXEC_MEM_SCAN_H_

#include <memory>
#include <string>
#include <utility>

#include "exec/operator.h"
#include "exec/row/row_operator.h"
#include "types/table_data.h"

namespace vstore {

// Batch-mode scan over an in-memory TableData — the leaf operator for
// virtual tables (system views) whose rows are materialized on demand
// rather than stored compressed. Shares ownership of the data, so a
// provider can hand out the same materialization to several operators; the
// data must not mutate while scans are live. String outputs are views into
// the TableData's own payloads (stable because the data is immutable and
// shared), so no per-batch copying happens.
class MemTableScanOperator final : public BatchOperator {
 public:
  MemTableScanOperator(std::shared_ptr<const TableData> data,
                       std::string label, ExecContext* ctx)
      : data_(std::move(data)), label_(std::move(label)), ctx_(ctx) {}

  const Schema& output_schema() const override { return data_->schema(); }
  std::string name() const override { return "MemTableScan(" + label_ + ")"; }

 protected:
  Status OpenImpl() override;
  Result<Batch*> NextImpl() override;
  void CloseImpl() override { output_.reset(); }

 private:
  std::shared_ptr<const TableData> data_;
  std::string label_;  // e.g. "sys.segments", shown in profiles
  ExecContext* ctx_;
  std::unique_ptr<Batch> output_;
  int64_t pos_ = 0;
};

// Tuple-at-a-time variant of the same scan, for row-mode plans over
// virtual tables.
class MemTableRowScanOperator final : public RowOperator {
 public:
  MemTableRowScanOperator(std::shared_ptr<const TableData> data,
                          std::string label)
      : data_(std::move(data)), label_(std::move(label)) {}

  Status Open() override {
    pos_ = 0;
    return Status::OK();
  }
  Result<bool> Next(std::vector<Value>* row) override;
  const Schema& output_schema() const override { return data_->schema(); }
  std::string name() const override {
    return "MemTableRowScan(" + label_ + ")";
  }

 private:
  std::shared_ptr<const TableData> data_;
  std::string label_;
  int64_t pos_ = 0;
};

}  // namespace vstore

#endif  // VSTORE_EXEC_MEM_SCAN_H_
