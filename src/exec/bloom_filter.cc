#include "exec/bloom_filter.h"

#include <algorithm>
#include <bit>

namespace vstore {

void BloomFilter::Init(int64_t expected_keys) {
  // ~12 bits per key spread over 512-bit blocks keeps false positives near
  // 1-2% with 3 in-block probes.
  uint64_t bits =
      static_cast<uint64_t>(std::max<int64_t>(expected_keys, 1)) * 12;
  uint64_t blocks = std::bit_ceil(std::max<uint64_t>(bits / 512, 1));
  blocks_.assign(blocks, Block{});
}

}  // namespace vstore
