#include "exec/bloom_filter.h"

#include <algorithm>
#include <bit>

namespace vstore {

void BloomFilter::Init(int64_t expected_keys) {
  // ~12 bits per key spread over 512-bit blocks keeps false positives near
  // 1-2% with 3 in-block probes.
  uint64_t bits =
      static_cast<uint64_t>(std::max<int64_t>(expected_keys, 1)) * 12;
  uint64_t blocks = std::bit_ceil(std::max<uint64_t>(bits / 512, 1));
  blocks_.assign(blocks, Block{});
}

void BloomFilter::MergeFrom(const BloomFilter& other) {
  VSTORE_CHECK(blocks_.size() == other.blocks_.size());
  for (size_t b = 0; b < blocks_.size(); ++b) {
    for (int w = 0; w < 8; ++w) {
      blocks_[b].words[w] |= other.blocks_[b].words[w];
    }
  }
}

}  // namespace vstore
