#ifndef VSTORE_EXEC_PROFILE_H_
#define VSTORE_EXEC_PROFILE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace vstore {

// Per-operator execution profile: one node per physical operator, mirroring
// the plan tree (EXPLAIN ANALYZE's unit of accounting). Wall time is split
// across the three protocol phases because blocking operators (hash build,
// sort, aggregation) do their work in Open() while streaming operators
// accumulate it in Next().
//
// Counters are operator-specific (name, value) pairs — segment elimination
// for scans, build/probe/spill accounting for joins, group counts for
// aggregates — appended by each operator.
//
// Exchange nodes merge the profiles of their finished plan fragments into a
// single child subtree (node-wise sums; `fragments` records how many were
// merged), so a parallel plan's profile has the same shape as the
// single-threaded one and its counters sum consistently.
struct OperatorProfile {
  std::string name;

  int64_t open_ns = 0;
  int64_t next_ns = 0;   // total across all Next() calls
  int64_t close_ns = 0;

  int64_t batches_produced = 0;
  int64_t rows_produced = 0;  // active rows in returned batches

  // High-water memory for stateful operators (hash join build side, hash
  // aggregation state, sort working set). 0 for streaming operators.
  // Tracker-backed when the query ran with memory tracking (the default);
  // operators without a tracker fall back to their local estimates.
  int64_t peak_memory_bytes = 0;
  // Tracker-resident bytes when the profile was built (non-zero only for
  // snapshots taken mid-flight or for state that outlives Close).
  int64_t mem_current_bytes = 0;
  // Bytes this operator wrote to spill partition files.
  int64_t spill_bytes = 0;

  // Number of parallel fragments merged into this node (> 0 only on the
  // fragment subtree below an Exchange).
  int64_t fragments = 0;

  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<OperatorProfile> children;

  // Inclusive wall time of this node (children overlap; see SelfNs).
  int64_t TotalNs() const { return open_ns + next_ns + close_ns; }
  double TotalMs() const { return static_cast<double>(TotalNs()) / 1e6; }

  // Node-wise merge used for parallel fragments: times, rows, batches and
  // counters add; peak memory takes the max. Trees must have the same
  // shape (same factory); extra children on either side are kept.
  void MergeFrom(const OperatorProfile& other);

  // Value of a counter by name, or `fallback` when absent.
  int64_t Counter(const std::string& name, int64_t fallback = 0) const;

  // Sum of `name` counters over this node and all descendants.
  int64_t CounterDeep(const std::string& name) const;

  // Sum of spill_bytes over this node and all descendants (the query's
  // total spill volume; fragments are merged node-wise so each byte counts
  // once).
  int64_t SpillBytesDeep() const;
};

// Renders the profile tree as an aligned text table (EXPLAIN ANALYZE
// style): one row per operator with timings, row/batch counts, self time
// (inclusive minus children, fragments excluded), memory, and the
// operator-specific counters.
std::string FormatProfile(const OperatorProfile& root);

// Renders the profile tree as a single-line JSON object (nested "children"
// arrays), for structured benchmark output and log scraping.
std::string ProfileToJson(const OperatorProfile& root);

}  // namespace vstore

#endif  // VSTORE_EXEC_PROFILE_H_
