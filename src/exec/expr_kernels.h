#ifndef VSTORE_EXEC_EXPR_KERNELS_H_
#define VSTORE_EXEC_EXPR_KERNELS_H_

#include <cstdint>
#include <string_view>

#include "common/simd.h"
#include "exec/expression.h"
#include "types/compare_op.h"

namespace vstore {
namespace kernels {

// Flat batch kernels behind the expression VM and the scan's predicate
// loops. Every kernel has a scalar and (where profitable) an AVX2 body
// compiled with a function-level target attribute; the public entry points
// dispatch on simd::Active() and bump the dispatch counters, so tests can
// force either path via simd::ForceLevelForTesting().
//
// Semantics contract (shared with the tree interpreter and the row engine):
//  - comparisons implement ApplyCompare over the three-way ordering, so for
//    doubles an unordered pair (NaN) compares as "equal";
//  - int64 arithmetic wraps (common/int_arith.h); division by zero yields
//    value 0 and clears the validity byte;
//  - all kernels process every lane, valid or not, with defined results.

// valid[i] &= (b[i] != 0) is folded into the div kernels; other kernels do
// not touch validity (callers AND child validities separately).
void ByteAnd(const uint8_t* a, const uint8_t* b, int64_t n, uint8_t* out);

void CmpI64(CompareOp op, const int64_t* a, const int64_t* b, int64_t n,
            int64_t* res);
void CmpF64(CompareOp op, const double* a, const double* b, int64_t n,
            int64_t* res);
void CmpStr(CompareOp op, const std::string_view* a, const std::string_view* b,
            int64_t n, int64_t* res);

void ArithI64(ArithOp op, const int64_t* a, const int64_t* b, int64_t n,
              int64_t* res, uint8_t* valid);
void ArithF64(ArithOp op, const double* a, const double* b, int64_t n,
              double* res, uint8_t* valid);

void BoolAndOr(BoolOp op, const int64_t* a, const int64_t* b, int64_t n,
               int64_t* res);
void BoolNot(const int64_t* a, int64_t n, int64_t* res);

void CastI64ToF64(const int64_t* a, int64_t n, double* res);
void YearFromDaysKernel(const int64_t* a, int64_t n, int64_t* res);

// Scan-facing forms: column versus one constant, producing a 0/1 byte
// verdict the scan ANDs into its qualifying-rows mask.
void CmpI64ConstMask(CompareOp op, const int64_t* a, int64_t b, int64_t n,
                     uint8_t* verdict);
void CmpF64ConstMask(CompareOp op, const double* a, double b, int64_t n,
                     uint8_t* verdict);

// Hash kernel for join/agg key hashing: folds one key column into the
// running row hashes, out[i] = HashCombine(out[i], valid[i] ?
// HashInt64(bits[i]) : null_tag). Doubles hash their raw bit pattern, so
// callers pass the column buffer reinterpreted as uint64.
void HashCombineColumn(const uint64_t* bits, const uint8_t* valid,
                       uint64_t null_tag, int64_t n, uint64_t* out);

// Fills out[0, n) with `seed` (hash loop initialisation).
void FillU64(uint64_t seed, int64_t n, uint64_t* out);

}  // namespace kernels
}  // namespace vstore

#endif  // VSTORE_EXEC_EXPR_KERNELS_H_
