#ifndef VSTORE_EXEC_UNION_ALL_H_
#define VSTORE_EXEC_UNION_ALL_H_

#include <memory>
#include <vector>

#include "exec/operator.h"

namespace vstore {

// Concatenates children with identical schemas (a batch operator added in
// the paper's expanded repertoire). Children are drained in order.
class UnionAllOperator final : public BatchOperator {
 public:
  UnionAllOperator(std::vector<BatchOperatorPtr> children, ExecContext* ctx);

  const Schema& output_schema() const override {
    return children_.front()->output_schema();
  }
  std::string name() const override { return "UnionAll"; }

 protected:
  Status OpenImpl() override;
  Result<Batch*> NextImpl() override;
  void CloseImpl() override;
  std::vector<const BatchOperator*> ProfileInputs() const override {
    std::vector<const BatchOperator*> inputs;
    for (const BatchOperatorPtr& child : children_) {
      inputs.push_back(child.get());
    }
    return inputs;
  }

 private:
  std::vector<BatchOperatorPtr> children_;
  ExecContext* ctx_;
  size_t current_ = 0;
};

}  // namespace vstore

#endif  // VSTORE_EXEC_UNION_ALL_H_
