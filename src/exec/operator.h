#ifndef VSTORE_EXEC_OPERATOR_H_
#define VSTORE_EXEC_OPERATOR_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/batch.h"
#include "exec/expr_program.h"
#include "exec/expression.h"
#include "exec/profile.h"
#include "types/schema.h"

namespace vstore {

// Counters surfaced to benchmarks and EXPLAIN-style output.
struct ExecStats {
  int64_t rows_scanned = 0;           // rows decoded from compressed groups
  int64_t delta_rows_scanned = 0;     // rows read from delta stores
  int64_t row_groups_scanned = 0;
  int64_t row_groups_eliminated = 0;  // skipped via segment elimination
  int64_t rows_bloom_filtered = 0;    // rows dropped by pushed bitmap filters
  int64_t build_rows_spilled = 0;     // hash join/agg rows written to spill
  int64_t probe_rows_spilled = 0;
  int64_t spill_partitions = 0;

  void MergeFrom(const ExecStats& other) {
    rows_scanned += other.rows_scanned;
    delta_rows_scanned += other.delta_rows_scanned;
    row_groups_scanned += other.row_groups_scanned;
    row_groups_eliminated += other.row_groups_eliminated;
    rows_bloom_filtered += other.rows_bloom_filtered;
    build_rows_spilled += other.build_rows_spilled;
    probe_rows_spilled += other.probe_rows_spilled;
    spill_partitions += other.spill_partitions;
  }
};

class ThreadPool;
class QuerySpanRecorder;
class MemoryTracker;
struct ActiveQuery;
struct TraceSpan;

// Shared execution state for one query. Not thread-safe; parallel fragments
// get their own contexts whose stats are merged by the exchange operator.
struct ExecContext {
  int64_t batch_size = kDefaultBatchSize;
  // Memory budget per stateful operator (hash join build side, hash
  // aggregation state) before spilling kicks in. <= 0 means unlimited.
  int64_t operator_memory_budget = 0;
  // Compile Filter/Project expressions to bytecode at build time; off
  // forces the tree-interpreter path (the differential oracle).
  bool compile_expressions = true;
  ThreadPool* thread_pool = nullptr;  // used by exchange operators
  // Query tracing hooks, null when the query runs untraced. Operators
  // reach the span tree through the thread-local QueryTraceContext; these
  // pointers exist so the exchange can re-install that context on its
  // fragment worker threads and so scans can bump the live progress
  // counters read by sys.active_queries.
  QuerySpanRecorder* trace_recorder = nullptr;
  ActiveQuery* active_query = nullptr;
  // This query's memory tracker (null when tracking is off). Stateful
  // operators hang per-operator child trackers off it and poll its budget
  // pressure at their spill decision points; the exchange threads it into
  // fragment contexts like the trace hooks above.
  MemoryTracker* memory_tracker = nullptr;
  ExecStats stats;
};

// Pull-based vectorized operator (paper §5: operators consume and produce
// batches). Protocol: Open() once, then Next() until it yields nullptr,
// then Close(). The returned batch is owned by the operator and valid until
// the following Next()/Close().
//
// The protocol entry points are non-virtual: they wrap the *Impl hooks with
// wall-clock and row accounting that feeds the per-operator profile
// (EXPLAIN ANALYZE). Open() resets the accounting, so a reopened operator
// profiles its latest execution.
class BatchOperator {
 public:
  virtual ~BatchOperator() = default;

  Status Open();
  Result<Batch*> Next();
  void Close();  // idempotent: repeated calls only close once

  virtual const Schema& output_schema() const = 0;
  virtual std::string name() const = 0;

  // Snapshot of the profile subtree rooted at this operator. Complete once
  // Close() has run; safe to call at any point for partial numbers.
  OperatorProfile BuildProfile() const;

 protected:
  virtual Status OpenImpl() = 0;
  virtual Result<Batch*> NextImpl() = 0;
  virtual void CloseImpl() {}

  // Inputs reported as children of this node's profile.
  virtual std::vector<const BatchOperator*> ProfileInputs() const {
    return {};
  }
  // Operator-specific counters appended to this node's profile.
  virtual void AppendProfileCounters(OperatorProfile* node) const {}
  // Default child collection from ProfileInputs(); Exchange overrides this
  // to attach its merged fragment subtree instead.
  virtual void AppendProfileChildren(OperatorProfile* node) const;

  // Stateful operators report their memory high-water mark here.
  void RecordPeakMemory(int64_t bytes) {
    profile_peak_memory_ = std::max(profile_peak_memory_, bytes);
  }

  // Folds a tracker snapshot into this node's profile: peak takes the max,
  // mem_current is the latest resident reading. No-op on nullptr.
  void RecordMemoryTracker(const MemoryTracker* tracker);

  // Bytes this operator wrote to spill files (profile spill_bytes column).
  void RecordSpillBytes(int64_t bytes) { profile_spill_bytes_ += bytes; }

  // This operator's span in the current query's trace (opened by Open(),
  // closed by Close(); null when the query runs untraced). The exchange
  // parents its fragment spans here from worker threads.
  TraceSpan* trace_span() const { return trace_span_; }

 private:
  TraceSpan* trace_span_ = nullptr;
  int64_t profile_open_ns_ = 0;
  int64_t profile_next_ns_ = 0;
  int64_t profile_close_ns_ = 0;
  int64_t profile_batches_ = 0;
  int64_t profile_rows_ = 0;
  int64_t profile_peak_memory_ = 0;
  int64_t profile_mem_current_ = 0;
  int64_t profile_spill_bytes_ = 0;
  bool opened_ = false;
};

using BatchOperatorPtr = std::unique_ptr<BatchOperator>;

// --- Filter ----------------------------------------------------------------
// Marks rows inactive when the predicate is false or null; never compacts
// (the paper's qualifying-rows-vector behaviour).
class FilterOperator final : public BatchOperator {
 public:
  // Compiles the predicate to bytecode at build time (= plan lowering);
  // falls back to the tree interpreter when compilation is unsupported or
  // disabled via ctx->compile_expressions.
  FilterOperator(BatchOperatorPtr input, ExprPtr predicate, ExecContext* ctx);

  const Schema& output_schema() const override {
    return input_->output_schema();
  }
  std::string name() const override { return "Filter"; }

 protected:
  Status OpenImpl() override {
    rows_in_ = 0;
    rows_dropped_ = 0;
    return input_->Open();
  }
  Result<Batch*> NextImpl() override;
  void CloseImpl() override { input_->Close(); }
  std::vector<const BatchOperator*> ProfileInputs() const override {
    return {input_.get()};
  }
  void AppendProfileCounters(OperatorProfile* node) const override {
    node->counters.push_back({"rows_in", rows_in_});
    node->counters.push_back({"rows_dropped", rows_dropped_});
    node->counters.push_back({"compiled", program_ != nullptr ? 1 : 0});
  }

 private:
  BatchOperatorPtr input_;
  ExprPtr predicate_;
  ExecContext* ctx_;
  std::shared_ptr<const ExprProgram> program_;  // null -> interpreter path
  std::unique_ptr<ExprFrame> frame_;
  int64_t rows_in_ = 0;
  int64_t rows_dropped_ = 0;
};

// --- Project ---------------------------------------------------------------
// Computes expressions over each input batch into a new batch. Compacts
// active rows (downstream operators after a projection see dense batches).
class ProjectOperator final : public BatchOperator {
 public:
  ProjectOperator(BatchOperatorPtr input, std::vector<ExprPtr> exprs,
                  std::vector<std::string> names, ExecContext* ctx);

  const Schema& output_schema() const override { return schema_; }
  std::string name() const override { return "Project"; }

 protected:
  Status OpenImpl() override { return input_->Open(); }
  Result<Batch*> NextImpl() override;
  void CloseImpl() override { input_->Close(); }
  std::vector<const BatchOperator*> ProfileInputs() const override {
    return {input_.get()};
  }

 protected:
  void AppendProfileCounters(OperatorProfile* node) const override {
    node->counters.push_back({"compiled", program_ != nullptr ? 1 : 0});
  }

 private:
  BatchOperatorPtr input_;
  std::vector<ExprPtr> exprs_;
  Schema schema_;
  ExecContext* ctx_;
  // One program for all projection expressions, so CSE spans outputs.
  std::shared_ptr<const ExprProgram> program_;
  std::unique_ptr<ExprFrame> frame_;
  std::unique_ptr<Batch> output_;
};

// --- Limit -------------------------------------------------------------------
class LimitOperator final : public BatchOperator {
 public:
  LimitOperator(BatchOperatorPtr input, int64_t limit, ExecContext* ctx)
      : input_(std::move(input)), limit_(limit), ctx_(ctx) {}

  const Schema& output_schema() const override {
    return input_->output_schema();
  }
  std::string name() const override { return "Limit"; }

 protected:
  Status OpenImpl() override {
    remaining_ = limit_;
    return input_->Open();
  }
  Result<Batch*> NextImpl() override;
  void CloseImpl() override { input_->Close(); }
  std::vector<const BatchOperator*> ProfileInputs() const override {
    return {input_.get()};
  }

 private:
  BatchOperatorPtr input_;
  int64_t limit_;
  int64_t remaining_ = 0;
  ExecContext* ctx_;
};

// Copies the active rows of `src` into `dst` starting at dst->num_rows(),
// compacting as it goes. Returns rows copied. Both batches must share a
// schema; string payloads are re-anchored in dst's arena.
int64_t AppendActiveRows(const Batch& src, Batch* dst);

}  // namespace vstore

#endif  // VSTORE_EXEC_OPERATOR_H_
