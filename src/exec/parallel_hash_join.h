#ifndef VSTORE_EXEC_PARALLEL_HASH_JOIN_H_
#define VSTORE_EXEC_PARALLEL_HASH_JOIN_H_

#include <atomic>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "exec/hash_join.h"

namespace vstore {

// Shared build side of a parallel batch-mode hash join (paper §5.3:
// multiple threads build one shared in-memory hash table, then all probe
// threads share the read-only result).
//
// Lifecycle: the physical planner creates one SharedHashJoinBuild per join
// in a parallelized plan region and hands it (via shared_ptr) to every
// probe fragment's HashJoinProbeOperator. The first fragment to Open()
// runs the build inside EnsureBuilt(): `build_dop` threads each lower one
// build-side fragment through `factory` (disjoint row-group stripes when
// the build side is a plain scan chain) and insert rows into
// hash-partitioned shared state under per-partition locks. Joining the
// build threads forms the barrier, after which the per-partition chained
// tables and the pushed-down Bloom filter are constructed in parallel —
// each finalize thread fills a private filter and the results are OR-merged.
// Fragments that call EnsureBuilt() while the build is running block until
// it finishes; afterwards every fragment probes the same tables with no
// synchronization.
//
// Spilling: when the resident build exceeds `memory_budget`, the inserting
// thread flushes the largest resident partition to a temp file (spill_mu_
// serializes victim selection so exactly one flush runs at a time). Probe
// fragments append probe rows of spilled partitions to a shared
// per-partition file under the partition lock; the last fragment to finish
// probing (FinishProbeFragment) drains the spilled partition pairs through
// the single-threaded grace-join path.
//
// A SharedHashJoinBuild supports one execution; the executor lowers a
// fresh physical plan per query, so operators over it are never reopened.
class SharedHashJoinBuild {
 public:
  using Options = HashJoinOperator::Options;

  // Creates the operator tree for build fragment `fragment` against the
  // fragment's own context. `resources` may receive an owner for plan
  // resources (nested Bloom filters of joins inside the build subtree)
  // that must stay alive while the returned operator runs.
  using BuildFactory = std::function<Result<BatchOperatorPtr>(
      int fragment, ExecContext* fragment_ctx,
      std::shared_ptr<void>* resources)>;

  struct Partition {
    std::mutex mu;  // guards all mutable fields during build + probe spill
    std::unique_ptr<Arena> arena;
    std::vector<uint8_t*> rows;  // entry pointers (header + payload)
    // Mirror of arena bytes, readable without the partition lock for spill
    // victim selection.
    std::atomic<int64_t> bytes{0};
    bool spilled = false;
    std::FILE* build_file = nullptr;
    std::FILE* probe_file = nullptr;
    int64_t build_rows_on_disk = 0;
    int64_t probe_rows_on_disk = 0;
    // Built at the finalize barrier; read-only once EnsureBuilt returns.
    std::unique_ptr<SerializedRowHashTable> table;
  };

  SharedHashJoinBuild(Schema build_schema, Schema probe_schema,
                      Options options, BuildFactory factory, int build_dop,
                      int expected_probe_fragments, int64_t memory_budget);
  ~SharedHashJoinBuild();
  VSTORE_DISALLOW_COPY_AND_ASSIGN(SharedHashJoinBuild);

  // Runs the parallel build on the first call; concurrent callers block
  // until it completes and all callers see its status. Build-side
  // ExecStats are merged into the first caller's context.
  Status EnsureBuilt(ExecContext* caller_ctx);

  const Schema& build_schema() const { return build_schema_; }
  const Schema& probe_schema() const { return probe_schema_; }
  const Options& options() const { return options_; }
  const RowFormat& build_format() const { return build_format_; }
  const BloomFilter* bloom_target() const { return options_.bloom_target; }

  int num_partitions() const { return options_.num_partitions; }
  int PartitionOf(uint64_t hash) const {
    return static_cast<int>(hash >> partition_shift_);
  }
  // Valid after EnsureBuilt(); partitions are read-only by then (the
  // drain additionally reads the spill files, single-threaded).
  Partition& partition(int p) { return *partitions_[static_cast<size_t>(p)]; }
  bool has_spilled_partitions() const { return spill_partitions_ > 0; }

  // Thread-safe append of a probe row belonging to spilled partition `p`.
  Status SpillProbeRow(int p, const std::vector<Value>& row,
                       ExecContext* fctx);

  // Each probe fragment calls this exactly once when its probe input is
  // exhausted; returns true for the last fragment, which then owns the
  // spill drain (all spill writers are finished by that point).
  bool FinishProbeFragment();

  // Profile attachment, called by fragment 0 only so the Exchange's
  // name-summing counter merge sees one contribution. Appends the merged
  // build-side operator profile as a child of `node` plus the parallel
  // build counters (per-fragment rows, lock/merge wait times).
  void AppendBuildProfile(OperatorProfile* node) const;

  int64_t peak_bytes() const {
    return peak_bytes_.load(std::memory_order_relaxed);
  }
  int64_t spill_bytes() const {
    return spill_bytes_.load(std::memory_order_relaxed);
  }
  // Non-null once RunBuild has started under a tracking query; fragment 0's
  // probe operator folds its peak into the profile, and the draining
  // fragment attaches its reload arenas here.
  MemoryTracker* memory_tracker() const { return mem_.get(); }

 private:
  Status RunBuild(ExecContext* caller_ctx);
  Status BuildFragment(int fragment, ExecContext* fctx);
  // Builds partition tables and a thread-private Bloom filter for the
  // partitions striped to finalize thread `stripe`.
  Status FinalizeStripe(int stripe, int64_t total_rows);
  // Flushes the largest resident partition if still over budget (always
  // when `query_pressure`: the query-level tracker crossed its budget, so
  // shed the largest partition regardless of the local budget).
  Status MaybeSpill(ExecContext* fctx, bool query_pressure);
  Status SpillPartitionLocked(Partition* part, ExecContext* fctx);
  // WriteSpillRow plus shared + global spill-byte accounting.
  Status SpillRowLocked(std::FILE* f, const Schema& schema,
                        const std::vector<Value>& row);
  // Consumes the budget-crossing edge / polls the query tracker.
  bool QueryMemoryPressure() const;

  Schema build_schema_;
  Schema probe_schema_;
  Options options_;
  BuildFactory factory_;
  int build_dop_;
  int64_t memory_budget_;
  RowFormat build_format_;
  int partition_shift_;

  // Shared build tracker under the query tracker (created in RunBuild when
  // the caller's context carries one); declared before partitions_ so the
  // partition arenas/tables release into a live tracker on destruction.
  std::unique_ptr<MemoryTracker> mem_;
  MemoryTracker* query_tracker_ = nullptr;
  mutable std::atomic<bool> pressure_{false};
  int pressure_listener_ = 0;
  std::atomic<int64_t> spill_bytes_{0};

  std::vector<std::unique_ptr<Partition>> partitions_;
  std::atomic<int64_t> total_bytes_{0};
  std::atomic<int64_t> peak_bytes_{0};
  std::mutex spill_mu_;  // serializes victim selection + flush

  // Build orchestration: first EnsureBuilt caller runs the build while the
  // mutex holds the others; the saved status is returned to all.
  std::mutex build_mu_;
  bool built_ = false;
  Status build_status_;

  // Per-fragment accounting, written under merge_mu_ as build fragments
  // finish; read-only after the build barrier.
  std::mutex merge_mu_;
  OperatorProfile build_profile_;
  int64_t profile_fragments_ = 0;
  std::vector<int64_t> fragment_build_rows_;
  int64_t lock_wait_ns_ = 0;
  int64_t bloom_merge_ns_ = 0;
  int64_t build_ns_ = 0;        // phase 1: parallel scan + insert
  int64_t table_build_ns_ = 0;  // phase 2: table + bloom finalize
  int64_t build_rows_ = 0;
  int64_t spill_partitions_ = 0;

  // Probe-side coordination (guarded by merge_mu_).
  int active_probe_fragments_;
};

// Probe-side operator of a parallel hash join: one per exchange fragment,
// all sharing one SharedHashJoinBuild. Open() triggers (or waits for) the
// shared build, then streams the fragment's probe chain against the shared
// read-only tables — the same grace-hash logic as HashJoinOperator, with
// spilled probe rows routed to the shared partition files and the spill
// drain executed by whichever fragment finishes probing last.
class HashJoinProbeOperator final : public BatchOperator {
 public:
  HashJoinProbeOperator(BatchOperatorPtr probe,
                        std::shared_ptr<SharedHashJoinBuild> shared,
                        int fragment, ExecContext* ctx);
  ~HashJoinProbeOperator() override;

  const Schema& output_schema() const override { return output_schema_; }
  std::string name() const override;

 protected:
  Status OpenImpl() override;
  Result<Batch*> NextImpl() override;
  void CloseImpl() override;
  std::vector<const BatchOperator*> ProfileInputs() const override {
    return {probe_.get()};
  }
  void AppendProfileCounters(OperatorProfile* node) const override;
  void AppendProfileChildren(OperatorProfile* node) const override;

 private:
  Result<bool> PumpProbe();
  Result<bool> PumpSpill();

  BatchOperatorPtr probe_;
  std::shared_ptr<SharedHashJoinBuild> shared_;
  int fragment_;
  ExecContext* ctx_;

  Schema output_schema_;
  RowFormat probe_format_;
  JoinRowEmitter emitter_;

  std::unique_ptr<Batch> output_;
  int64_t out_rows_ = 0;

  enum class Phase { kInit, kProbe, kSpillDrain, kDone };
  Phase phase_ = Phase::kInit;
  Batch* probe_batch_ = nullptr;
  int64_t probe_row_ = 0;
  std::vector<uint64_t> probe_hashes_;
  const uint8_t* chain_ = nullptr;
  bool row_matched_ = false;
  bool finish_reported_ = false;

  // Spill-drain state (only used by the draining fragment); the drained
  // build rows live in local storage so shared partitions stay read-only.
  int drain_partition_ = 0;
  bool drain_loaded_ = false;
  std::unique_ptr<SerializedRowHashTable> drain_table_;
  Arena drain_build_arena_;
  std::vector<uint8_t> drain_probe_row_;
  bool drain_row_pending_ = false;
  Arena drain_arena_;

  int64_t probe_rows_ = 0;
  int64_t probe_rows_spilled_ = 0;
};

}  // namespace vstore

#endif  // VSTORE_EXEC_PARALLEL_HASH_JOIN_H_
