#ifndef VSTORE_QUERY_PHYSICAL_PLANNER_H_
#define VSTORE_QUERY_PHYSICAL_PLANNER_H_

#include <memory>
#include <vector>

#include "exec/bloom_filter.h"
#include "exec/operator.h"
#include "query/logical_plan.h"

namespace vstore {

class SharedHashJoinBuild;

// How plans execute. kAuto picks batch mode when every scanned table has a
// column store (the paper's mode selection) and row mode otherwise.
enum class ExecutionMode { kAuto, kBatch, kRow };

struct PhysicalPlanOptions {
  ExecutionMode mode = ExecutionMode::kAuto;
  // Degree of parallelism for column store scans (exchange operator).
  int dop = 1;
  // Scan delta stores (disable to measure compressed-only paths).
  bool include_deltas = true;
};

// A lowered plan: the operator tree plus resources (Bloom filters, shared
// parallel-join build state) that must outlive execution.
struct PhysicalPlan {
  BatchOperatorPtr root;
  std::vector<std::unique_ptr<BloomFilter>> bloom_filters;
  // Shared build sides of parallelized hash joins; every probe fragment of
  // the owning exchange holds a reference, the plan keeps them rooted.
  std::vector<std::shared_ptr<SharedHashJoinBuild>> shared_builds;
};

// Lowers an optimized logical plan onto batch or row operators. Row-mode
// trees are wrapped in a RowToBatchAdapter so the executor drives one
// interface.
Result<PhysicalPlan> CreatePhysicalPlan(const Catalog& catalog,
                                        const PlanPtr& plan, ExecContext* ctx,
                                        const PhysicalPlanOptions& options);

}  // namespace vstore

#endif  // VSTORE_QUERY_PHYSICAL_PLANNER_H_
