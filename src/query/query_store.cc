#include "query/query_store.h"

#include <algorithm>
#include <cstdio>

#include "common/hash.h"
#include "common/json_util.h"
#include "query/system_views.h"

namespace vstore {

namespace {

uint64_t HashTag(uint64_t h, uint64_t tag) {
  return HashCombine(h, HashInt64(tag));
}

uint64_t HashStr(uint64_t h, const std::string& s) {
  return HashCombine(h, Hash64(s));
}

// Structural hash of an expression: node kinds, operators, and column
// names contribute; literal payloads (LiteralExpr values, IN lists, LIKE
// prefixes) do not — two filters differing only in constants hash equal.
uint64_t HashExprShape(const Expr& e) {
  uint64_t h = HashInt64(static_cast<uint64_t>(e.kind()) + 0x9100);
  switch (e.kind()) {
    case ExprKind::kColumn:
      return HashStr(h, static_cast<const ColumnRefExpr&>(e).name());
    case ExprKind::kLiteral:
      return h;  // value deliberately excluded
    case ExprKind::kCompare: {
      const auto& c = static_cast<const CompareExpr&>(e);
      h = HashTag(h, static_cast<uint64_t>(c.op()));
      h = HashCombine(h, HashExprShape(*c.left()));
      return HashCombine(h, HashExprShape(*c.right()));
    }
    case ExprKind::kArith: {
      const auto& a = static_cast<const ArithExpr&>(e);
      h = HashTag(h, static_cast<uint64_t>(a.op()));
      h = HashCombine(h, HashExprShape(*a.left()));
      return HashCombine(h, HashExprShape(*a.right()));
    }
    case ExprKind::kBool: {
      const auto& b = static_cast<const BoolExpr&>(e);
      h = HashTag(h, static_cast<uint64_t>(b.op()));
      h = HashCombine(h, HashExprShape(*b.left()));
      return HashCombine(h, HashExprShape(*b.right()));
    }
    case ExprKind::kNot:
      return HashCombine(h,
                         HashExprShape(*static_cast<const NotExpr&>(e).input()));
    case ExprKind::kIsNull:
      return HashCombine(
          h, HashExprShape(*static_cast<const IsNullExpr&>(e).input()));
    case ExprKind::kYear:
      return HashCombine(
          h, HashExprShape(*static_cast<const YearExpr&>(e).input()));
    case ExprKind::kStartsWith:
      // Prefix is a literal; only the shape (column LIKE '...%') counts.
      return HashCombine(
          h, HashExprShape(*static_cast<const StartsWithExpr&>(e).input()));
    case ExprKind::kIn:
      // IN-list values are literals; list length excluded too, so IN (1,2)
      // and IN (1,2,3) share a fingerprint like other literal variation.
      return HashCombine(h,
                         HashExprShape(*static_cast<const InExpr&>(e).input()));
  }
  return h;
}

}  // namespace

uint64_t PlanFingerprint(const LogicalPlan& plan) {
  uint64_t h = HashInt64(static_cast<uint64_t>(plan.kind) + 0x7600);
  switch (plan.kind) {
    case PlanKind::kScan:
      h = HashStr(h, plan.table);
      for (const NamedScanPredicate& p : plan.pushed_predicates) {
        h = HashStr(h, p.column);
        h = HashTag(h, static_cast<uint64_t>(p.op));
        // p.value deliberately excluded.
      }
      for (const std::string& c : plan.scan_columns) h = HashStr(h, c);
      break;
    case PlanKind::kFilter:
      if (plan.predicate != nullptr) {
        h = HashCombine(h, HashExprShape(*plan.predicate));
      }
      break;
    case PlanKind::kProject:
      for (const ExprPtr& e : plan.exprs) {
        h = HashCombine(h, HashExprShape(*e));
      }
      for (const std::string& n : plan.names) h = HashStr(h, n);
      break;
    case PlanKind::kJoin:
      h = HashTag(h, static_cast<uint64_t>(plan.join_type));
      for (const std::string& k : plan.left_keys) h = HashStr(h, k);
      for (const std::string& k : plan.right_keys) h = HashStr(h, k);
      // use_bloom is an optimizer artifact, not query shape.
      break;
    case PlanKind::kAggregate:
      for (const std::string& g : plan.group_by) h = HashStr(h, g);
      for (const NamedAggSpec& a : plan.aggregates) {
        h = HashTag(h, static_cast<uint64_t>(a.fn));
        h = HashStr(h, a.column);
        h = HashStr(h, a.name);
      }
      break;
    case PlanKind::kSort:
      for (const SortSpec& s : plan.sort_keys) {
        h = HashStr(h, s.column);
        h = HashTag(h, s.ascending ? 1 : 0);
      }
      break;
    case PlanKind::kLimit:
      // The limit count is a literal; the node kind alone contributes.
      break;
    case PlanKind::kUnionAll:
      break;
  }
  for (const PlanPtr& child : plan.children) {
    h = HashCombine(h, PlanFingerprint(*child));
  }
  return h;
}

std::string PlanShapeSummary(const LogicalPlan& plan) {
  const char* label = "?";
  switch (plan.kind) {
    case PlanKind::kScan:
      return "Scan(" + plan.table + ")";
    case PlanKind::kFilter:
      label = "Filter";
      break;
    case PlanKind::kProject:
      label = "Project";
      break;
    case PlanKind::kJoin:
      label = "Join";
      break;
    case PlanKind::kAggregate:
      label = "Aggregate";
      break;
    case PlanKind::kSort:
      label = "Sort";
      break;
    case PlanKind::kLimit:
      label = "Limit";
      break;
    case PlanKind::kUnionAll:
      label = "UnionAll";
      break;
  }
  std::string out = label;
  out += "(";
  for (size_t i = 0; i < plan.children.size(); ++i) {
    if (i > 0) out += ",";
    out += PlanShapeSummary(*plan.children[i]);
  }
  out += ")";
  return out;
}

bool PlanReferencesSystemView(const LogicalPlan& plan) {
  if (plan.kind == PlanKind::kScan && IsSystemViewName(plan.table)) {
    return true;
  }
  for (const PlanPtr& child : plan.children) {
    if (PlanReferencesSystemView(*child)) return true;
  }
  return false;
}

QueryStore::QueryStore(int64_t ring_capacity, int64_t max_fingerprints)
    : ring_capacity_(std::max<int64_t>(ring_capacity, 1)),
      max_fingerprints_(std::max<int64_t>(max_fingerprints, 1)) {}

QueryStore& QueryStore::Global() {
  static QueryStore* store = new QueryStore();
  return *store;
}

void QueryStore::Record(const LogicalPlan& plan, int64_t elapsed_us,
                        const ExecutionCounters& counters) {
  const uint64_t fingerprint = PlanFingerprint(plan);
  std::lock_guard<std::mutex> lock(mu_);

  auto it = entries_.find(fingerprint);
  if (it == entries_.end()) {
    if (static_cast<int64_t>(entries_.size()) >= max_fingerprints_) {
      ++dropped_fingerprints_;
      return;
    }
    Entry entry;
    entry.plan_summary = PlanShapeSummary(plan);
    entry.latency_us = std::make_unique<Histogram>();
    it = entries_.emplace(fingerprint, std::move(entry)).first;
  }
  Entry& e = it->second;
  if (e.executions == 0) {
    e.min_us = elapsed_us;
    e.max_us = elapsed_us;
  } else {
    e.min_us = std::min(e.min_us, elapsed_us);
    e.max_us = std::max(e.max_us, elapsed_us);
  }
  ++e.executions;
  e.total_us += elapsed_us;
  e.last_us = elapsed_us;
  e.latency_us->Observe(elapsed_us);
  e.counters.rows_returned += counters.rows_returned;
  e.counters.segments_scanned += counters.segments_scanned;
  e.counters.segments_eliminated += counters.segments_eliminated;
  e.counters.bloom_rows_dropped += counters.bloom_rows_dropped;
  e.counters.spill_partitions += counters.spill_partitions;
  e.counters.rows_spilled += counters.rows_spilled;
  e.counters.peak_mem_bytes =
      std::max(e.counters.peak_mem_bytes, counters.peak_mem_bytes);
  e.counters.spill_bytes += counters.spill_bytes;
  e.counters.wait_queue_us += counters.wait_queue_us;
  e.counters.wait_fsync_us += counters.wait_fsync_us;
  e.counters.wait_lock_us += counters.wait_lock_us;
  e.counters.wait_reorg_us += counters.wait_reorg_us;

  ring_.push_back(Execution{fingerprint, elapsed_us, counters.rows_returned});
  if (static_cast<int64_t>(ring_.size()) > ring_capacity_) ring_.pop_front();
}

std::vector<QueryStore::FingerprintStats> QueryStore::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FingerprintStats> out;
  out.reserve(entries_.size());
  for (const auto& [fingerprint, e] : entries_) {
    FingerprintStats fs;
    fs.fingerprint = fingerprint;
    fs.plan_summary = e.plan_summary;
    fs.executions = e.executions;
    fs.total_us = e.total_us;
    fs.min_us = e.min_us;
    fs.max_us = e.max_us;
    fs.last_us = e.last_us;
    fs.p50_us = e.latency_us->ApproxQuantile(0.50);
    fs.p95_us = e.latency_us->ApproxQuantile(0.95);
    fs.p99_us = e.latency_us->ApproxQuantile(0.99);
    fs.counters = e.counters;
    out.push_back(std::move(fs));
  }
  std::sort(out.begin(), out.end(),
            [](const FingerprintStats& a, const FingerprintStats& b) {
              if (a.total_us != b.total_us) return a.total_us > b.total_us;
              return a.fingerprint < b.fingerprint;  // deterministic ties
            });
  return out;
}

std::vector<QueryStore::Execution> QueryStore::RecentExecutions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<Execution>(ring_.begin(), ring_.end());
}

int64_t QueryStore::dropped_fingerprints() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_fingerprints_;
}

std::string QueryStore::TopQueriesReport(int64_t top_n) const {
  std::vector<FingerprintStats> stats = Snapshot();
  int64_t total_execs = 0;
  for (const FingerprintStats& fs : stats) total_execs += fs.executions;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "== query store (%lld fingerprints, %lld executions) ==\n",
                static_cast<long long>(stats.size()),
                static_cast<long long>(total_execs));
  std::string out = buf;
  int64_t shown = 0;
  for (const FingerprintStats& fs : stats) {
    if (shown++ >= top_n) break;
    std::snprintf(
        buf, sizeof(buf),
        "%016llx execs=%-5lld total_us=%-10lld p50=%-8lld p95=%-8lld "
        "p99=%-8lld rows=%-10lld %s\n",
        static_cast<unsigned long long>(fs.fingerprint),
        static_cast<long long>(fs.executions),
        static_cast<long long>(fs.total_us),
        static_cast<long long>(fs.p50_us), static_cast<long long>(fs.p95_us),
        static_cast<long long>(fs.p99_us),
        static_cast<long long>(fs.counters.rows_returned),
        fs.plan_summary.c_str());
    out += buf;
  }
  return out;
}

std::string QueryStore::TopFingerprintsJson(int64_t top_n) const {
  std::vector<FingerprintStats> stats = Snapshot();
  std::string out = "[";
  int64_t shown = 0;
  for (const FingerprintStats& fs : stats) {
    if (shown >= top_n) break;
    if (shown++ > 0) out += ",";
    char fp[24];
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(fs.fingerprint));
    out += "{\"fingerprint\":\"";
    out += fp;
    out += "\",\"plan\":";
    AppendJsonString(fs.plan_summary, &out);
    auto field = [&out](const char* key, int64_t v) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), ",\"%s\":%lld", key,
                    static_cast<long long>(v));
      out += buf;
    };
    field("executions", fs.executions);
    field("total_us", fs.total_us);
    field("min_us", fs.min_us);
    field("max_us", fs.max_us);
    field("p50_us", fs.p50_us);
    field("p95_us", fs.p95_us);
    field("p99_us", fs.p99_us);
    field("rows_returned", fs.counters.rows_returned);
    field("segments_scanned", fs.counters.segments_scanned);
    field("segments_eliminated", fs.counters.segments_eliminated);
    field("peak_mem_bytes", fs.counters.peak_mem_bytes);
    field("spill_bytes", fs.counters.spill_bytes);
    field("wait_queue_us", fs.counters.wait_queue_us);
    field("wait_fsync_us", fs.counters.wait_fsync_us);
    field("wait_lock_us", fs.counters.wait_lock_us);
    field("wait_reorg_us", fs.counters.wait_reorg_us);
    out += "}";
  }
  out += "]";
  return out;
}

void QueryStore::ResetForTesting() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  entries_.clear();
  dropped_fingerprints_ = 0;
}

}  // namespace vstore
