#include "query/logical_plan.h"

#include "common/macros.h"

namespace vstore {

namespace {

Schema JoinSchema(const Schema& probe, const Schema& build, JoinType type) {
  bool emit_build =
      type == JoinType::kInner || type == JoinType::kLeftOuter;
  std::vector<Field> fields = probe.fields();
  if (emit_build) {
    for (const Field& f : build.fields()) {
      Field nf = f;
      nf.nullable = true;
      fields.push_back(nf);
    }
  }
  return Schema(std::move(fields));
}

Schema AggregateSchema(const Schema& in,
                       const std::vector<std::string>& group_by,
                       const std::vector<NamedAggSpec>& aggs) {
  std::vector<Field> fields;
  for (const std::string& g : group_by) {
    int idx = in.IndexOf(g);
    VSTORE_CHECK(idx >= 0);
    fields.push_back(in.field(idx));
  }
  for (const NamedAggSpec& spec : aggs) {
    DataType input_type = DataType::kInt64;
    if (!spec.column.empty()) {
      int idx = in.IndexOf(spec.column);
      VSTORE_CHECK(idx >= 0);
      input_type = in.field(idx).type;
    }
    fields.push_back(
        Field{spec.name, AggOutputType(spec.fn, input_type), true});
  }
  return Schema(std::move(fields));
}

}  // namespace

std::string LogicalPlan::ToString(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string out = pad;
  switch (kind) {
    case PlanKind::kScan:
      out += "Scan(" + table + ")";
      for (const NamedScanPredicate& p : pushed_predicates) {
        out += " [" + p.column + " " + CompareOpName(p.op) + " " +
               p.value.ToString() + "]";
      }
      break;
    case PlanKind::kFilter:
      out += "Filter(" + predicate->ToString() + ")";
      break;
    case PlanKind::kProject:
      out += "Project";
      break;
    case PlanKind::kJoin:
      out += std::string("Join(") + JoinTypeName(join_type) +
             (use_bloom ? ", bloom" : "") + ")";
      break;
    case PlanKind::kAggregate:
      out += group_by.empty() ? "ScalarAggregate" : "HashAggregate";
      break;
    case PlanKind::kSort:
      out += limit >= 0 ? "TopN" : "Sort";
      break;
    case PlanKind::kLimit:
      out += "Limit(" + std::to_string(limit) + ")";
      break;
    case PlanKind::kUnionAll:
      out += "UnionAll";
      break;
  }
  out += "\n";
  for (const auto& child : children) {
    out += child->ToString(indent + 1);
  }
  return out;
}

PlanBuilder PlanBuilder::Scan(const Catalog& catalog,
                              const std::string& table) {
  const Catalog::Entry* entry = catalog.Find(table);
  VSTORE_CHECK(entry != nullptr);
  auto plan = std::make_shared<LogicalPlan>();
  plan->kind = PlanKind::kScan;
  plan->table = table;
  plan->schema = entry->schema();
  return PlanBuilder(std::move(plan));
}

PlanBuilder PlanBuilder::From(PlanPtr plan) {
  VSTORE_CHECK(plan != nullptr);
  return PlanBuilder(std::move(plan));
}

PlanBuilder& PlanBuilder::Filter(ExprPtr predicate) {
  auto node = std::make_shared<LogicalPlan>();
  node->kind = PlanKind::kFilter;
  node->schema = plan_->schema;
  node->predicate = std::move(predicate);
  node->children.push_back(plan_);
  plan_ = std::move(node);
  return *this;
}

PlanBuilder& PlanBuilder::Project(std::vector<ExprPtr> exprs,
                                  std::vector<std::string> names) {
  VSTORE_CHECK(exprs.size() == names.size());
  auto node = std::make_shared<LogicalPlan>();
  node->kind = PlanKind::kProject;
  std::vector<Field> fields;
  for (size_t i = 0; i < exprs.size(); ++i) {
    fields.push_back(Field{names[i], exprs[i]->output_type(), true});
  }
  node->schema = Schema(std::move(fields));
  node->exprs = std::move(exprs);
  node->names = std::move(names);
  node->children.push_back(plan_);
  plan_ = std::move(node);
  return *this;
}

PlanBuilder& PlanBuilder::Select(const std::vector<std::string>& columns) {
  std::vector<ExprPtr> exprs;
  std::vector<std::string> names;
  for (const std::string& name : columns) {
    exprs.push_back(expr::Column(plan_->schema, name));
    names.push_back(name);
  }
  return Project(std::move(exprs), std::move(names));
}

PlanBuilder& PlanBuilder::Join(JoinType type, PlanPtr build,
                               std::vector<std::string> left_keys,
                               std::vector<std::string> right_keys) {
  VSTORE_CHECK(!left_keys.empty() && left_keys.size() == right_keys.size());
  auto node = std::make_shared<LogicalPlan>();
  node->kind = PlanKind::kJoin;
  node->join_type = type;
  node->schema = JoinSchema(plan_->schema, build->schema, type);
  node->left_keys = std::move(left_keys);
  node->right_keys = std::move(right_keys);
  node->children.push_back(plan_);
  node->children.push_back(std::move(build));
  plan_ = std::move(node);
  return *this;
}

PlanBuilder& PlanBuilder::Aggregate(std::vector<std::string> group_by,
                                    std::vector<NamedAggSpec> aggregates) {
  auto node = std::make_shared<LogicalPlan>();
  node->kind = PlanKind::kAggregate;
  node->schema = AggregateSchema(plan_->schema, group_by, aggregates);
  node->group_by = std::move(group_by);
  node->aggregates = std::move(aggregates);
  node->children.push_back(plan_);
  plan_ = std::move(node);
  return *this;
}

PlanBuilder& PlanBuilder::OrderBy(std::vector<SortSpec> keys, int64_t limit) {
  auto node = std::make_shared<LogicalPlan>();
  node->kind = PlanKind::kSort;
  node->schema = plan_->schema;
  node->sort_keys = std::move(keys);
  node->limit = limit;
  node->children.push_back(plan_);
  plan_ = std::move(node);
  return *this;
}

PlanBuilder& PlanBuilder::Limit(int64_t n) {
  auto node = std::make_shared<LogicalPlan>();
  node->kind = PlanKind::kLimit;
  node->schema = plan_->schema;
  node->limit = n;
  node->children.push_back(plan_);
  plan_ = std::move(node);
  return *this;
}

PlanBuilder& PlanBuilder::UnionAll(PlanPtr other) {
  VSTORE_CHECK(other->schema.Equals(plan_->schema));
  auto node = std::make_shared<LogicalPlan>();
  node->kind = PlanKind::kUnionAll;
  node->schema = plan_->schema;
  node->children.push_back(plan_);
  node->children.push_back(std::move(other));
  plan_ = std::move(node);
  return *this;
}

}  // namespace vstore
