#include "query/executor.h"

#include <chrono>
#include <memory>
#include <utility>

#include "common/macros.h"
#include "common/memory_tracker.h"
#include "common/metrics.h"
#include "common/span_trace.h"
#include "exec/profile.h"
#include "query/query_store.h"

namespace vstore {

namespace {

// Engine-wide query metrics (unlabeled — they aggregate across tables).
// Handles are resolved once; the registry never frees them.
struct QueryMetrics {
  Counter* queries_total;
  Counter* query_failures_total;
  Counter* rows_returned_total;
  Counter* rows_scanned_total;
  Counter* delta_rows_scanned_total;
  Counter* segments_scanned_total;
  Counter* segments_eliminated_total;
  Counter* bloom_rows_dropped_total;
  Counter* spill_partitions_total;
  Counter* build_rows_spilled_total;
  Counter* probe_rows_spilled_total;
  Gauge* active_queries;
  Histogram* latency_ns;
};

QueryMetrics& GlobalQueryMetrics() {
  static QueryMetrics* m = [] {
    MetricsRegistry& r = MetricsRegistry::Global();
    auto* qm = new QueryMetrics();
    qm->queries_total = r.GetCounter("vstore_query_total");
    qm->query_failures_total = r.GetCounter("vstore_query_failures_total");
    qm->rows_returned_total = r.GetCounter("vstore_query_rows_returned_total");
    qm->rows_scanned_total = r.GetCounter("vstore_query_rows_scanned_total");
    qm->delta_rows_scanned_total =
        r.GetCounter("vstore_query_delta_rows_scanned_total");
    qm->segments_scanned_total =
        r.GetCounter("vstore_query_segments_scanned_total");
    qm->segments_eliminated_total =
        r.GetCounter("vstore_query_segments_eliminated_total");
    qm->bloom_rows_dropped_total =
        r.GetCounter("vstore_query_bloom_rows_dropped_total");
    qm->spill_partitions_total =
        r.GetCounter("vstore_query_spill_partitions_total");
    qm->build_rows_spilled_total =
        r.GetCounter("vstore_query_build_rows_spilled_total");
    qm->probe_rows_spilled_total =
        r.GetCounter("vstore_query_probe_rows_spilled_total");
    qm->active_queries = r.GetGauge("vstore_query_active");
    qm->latency_ns = r.GetHistogram("vstore_query_latency_ns");
    return qm;
  }();
  return *m;
}

// Marks a query in flight; counts it as a failure unless Succeeded() runs.
class QueryScope {
 public:
  QueryScope() { GlobalQueryMetrics().active_queries->Add(1); }
  ~QueryScope() {
    QueryMetrics& m = GlobalQueryMetrics();
    m.active_queries->Add(-1);
    m.queries_total->Increment();
    if (!succeeded_) m.query_failures_total->Increment();
  }
  void Succeeded() { succeeded_ = true; }

 private:
  bool succeeded_ = false;
};

// Removes the query from sys.active_queries on every exit path (success,
// error return, exception).
class ActiveQueryHandle {
 public:
  explicit ActiveQueryHandle(bool tracing) {
    if (tracing) query_ = ActiveQueryRegistry::Global().Register();
  }
  ~ActiveQueryHandle() {
    if (query_ != nullptr) {
      ActiveQueryRegistry::Global().Unregister(query_->query_id);
    }
  }
  ActiveQuery* get() const { return query_.get(); }
  void SetPhase(QueryPhase phase) {
    if (query_ != nullptr) {
      query_->phase.store(static_cast<int>(phase), std::memory_order_relaxed);
    }
  }

 private:
  std::shared_ptr<ActiveQuery> query_;
};

}  // namespace

Result<QueryResult> QueryExecutor::Execute(const PlanPtr& plan) const {
  QueryScope scope;
  QueryResult result;

  // Tracing setup: the recorder lives on this frame; the thread-local
  // scope hands it to every operator and wait site below (the exchange
  // re-installs it on fragment worker threads via ExecContext).
  const bool tracing = options_.trace;
  ActiveQueryHandle active(tracing);
  std::unique_ptr<QuerySpanRecorder> recorder;
  if (tracing) {
    recorder = std::make_unique<QuerySpanRecorder>();
    result.query_id = active.get()->query_id;
  }
  QueryTraceScope trace_scope(recorder.get(),
                              recorder != nullptr ? recorder->root() : nullptr,
                              active.get());

  TraceSpan* phase_span =
      recorder != nullptr ? recorder->StartSpan("optimize", "phase", nullptr)
                          : nullptr;
  result.optimized_plan =
      options_.optimize ? Optimize(*catalog_, plan, options_.optimizer)
                        : ClonePlan(plan);
  if (recorder != nullptr) recorder->EndSpan(phase_span);
  result.schema = result.optimized_plan->schema;
  if (options_.materialize) {
    result.data = TableData(result.schema);
  }

  uint64_t fingerprint = 0;
  if (tracing) {
    fingerprint = PlanFingerprint(*result.optimized_plan);
    active.get()->fingerprint.store(fingerprint, std::memory_order_relaxed);
    active.get()->SetPlanSummary(PlanShapeSummary(*result.optimized_plan));
  }

  // Per-query memory tracker under the process root. Declared before the
  // physical plan so every operator (whose child trackers and pressure
  // listeners point here) is destroyed first. The soft budget turns
  // crossings into pressure edges that spilling operators consume at their
  // existing spill decision points.
  std::unique_ptr<MemoryTracker> query_tracker;
  if (options_.track_memory) {
    query_tracker = std::make_unique<MemoryTracker>(
        "query:" + std::to_string(result.query_id), "query",
        MemoryTracker::Process());
    if (options_.query_memory_budget > 0) {
      query_tracker->SetBudget(options_.query_memory_budget);
    }
    if (active.get() != nullptr) {
      active.get()->mem_budget_bytes.store(options_.query_memory_budget,
                                           std::memory_order_relaxed);
    }
  }

  ExecContext ctx;
  ctx.batch_size = options_.batch_size;
  ctx.operator_memory_budget = options_.operator_memory_budget;
  ctx.compile_expressions = options_.compile_expressions;
  ctx.trace_recorder = recorder.get();
  ctx.active_query = active.get();
  ctx.memory_tracker = query_tracker.get();

  PhysicalPlanOptions planner_options;
  planner_options.mode = options_.mode;
  planner_options.dop = options_.dop;
  planner_options.include_deltas = options_.include_deltas;

  auto start = std::chrono::steady_clock::now();
  // The compile phase covers physical planning: snapshot pinning (a table
  // lock-wait site), expression bytecode compilation, operator tree
  // construction. Waits hit here land under the compile span.
  active.SetPhase(QueryPhase::kCompile);
  phase_span = recorder != nullptr
                   ? recorder->StartSpan("compile", "phase", nullptr)
                   : nullptr;
  Result<PhysicalPlan> physical_result = [&] {
    SpanGuard guard(phase_span);
    return CreatePhysicalPlan(*catalog_, result.optimized_plan, &ctx,
                              planner_options);
  }();
  if (recorder != nullptr) recorder->EndSpan(phase_span);
  if (!physical_result.ok()) return physical_result.status();
  PhysicalPlan physical = std::move(physical_result).value();

  active.SetPhase(QueryPhase::kExecute);
  phase_span = recorder != nullptr
                   ? recorder->StartSpan("execute", "phase", nullptr)
                   : nullptr;
  {
    SpanGuard guard(phase_span);
    VSTORE_RETURN_IF_ERROR(physical.root->Open());
    for (;;) {
      VSTORE_ASSIGN_OR_RETURN(Batch * batch, physical.root->Next());
      if (batch == nullptr) break;
      result.rows_returned += batch->active_count();
      if (active.get() != nullptr) {
        active.get()->rows_produced.fetch_add(batch->active_count(),
                                              std::memory_order_relaxed);
        if (query_tracker != nullptr) {
          // Live memory usage for sys.active_queries, refreshed per batch.
          active.get()->mem_current_bytes.store(query_tracker->current(),
                                                std::memory_order_relaxed);
          active.get()->mem_peak_bytes.store(query_tracker->peak(),
                                             std::memory_order_relaxed);
        }
      }
      if (options_.materialize) {
        const uint8_t* active_rows = batch->active();
        for (int64_t i = 0; i < batch->num_rows(); ++i) {
          if (active_rows[i]) result.data.AppendRow(batch->GetActiveRow(i));
        }
      }
    }
    physical.root->Close();
  }
  if (recorder != nullptr) recorder->EndSpan(phase_span);
  active.SetPhase(QueryPhase::kDone);
  result.profile = physical.root->BuildProfile();
  if (query_tracker != nullptr) {
    result.peak_memory_bytes = query_tracker->peak();
    if (active.get() != nullptr) {
      active.get()->mem_current_bytes.store(query_tracker->current(),
                                            std::memory_order_relaxed);
      active.get()->mem_peak_bytes.store(result.peak_memory_bytes,
                                         std::memory_order_relaxed);
    }
  }
  result.spill_bytes = result.profile.SpillBytesDeep();
  auto end = std::chrono::steady_clock::now();

  result.elapsed_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  result.stats = ctx.stats;

  // Fold this query into the cumulative engine counters: end-to-end
  // latency, rows out, and the per-operator roll-ups from the finished
  // profile tree (fragment subtrees are already merged node-wise by the
  // exchange, so CounterDeep sums each event exactly once).
  const int64_t segments_scanned = result.profile.CounterDeep("groups_scanned");
  const int64_t segments_eliminated =
      result.profile.CounterDeep("groups_eliminated");
  const int64_t bloom_rows_dropped =
      result.profile.CounterDeep("bloom_rows_dropped");
  const int64_t spill_partitions =
      result.profile.CounterDeep("spill_partitions");
  const int64_t build_rows_spilled =
      result.profile.CounterDeep("build_rows_spilled");
  const int64_t probe_rows_spilled =
      result.profile.CounterDeep("probe_rows_spilled");
  QueryMetrics& m = GlobalQueryMetrics();
  m.latency_ns->Observe(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
          .count());
  m.rows_returned_total->Increment(result.rows_returned);
  m.rows_scanned_total->Increment(result.profile.CounterDeep("rows_scanned"));
  m.delta_rows_scanned_total->Increment(
      result.profile.CounterDeep("delta_rows"));
  m.segments_scanned_total->Increment(segments_scanned);
  m.segments_eliminated_total->Increment(segments_eliminated);
  m.bloom_rows_dropped_total->Increment(bloom_rows_dropped);
  m.spill_partitions_total->Increment(spill_partitions);
  m.build_rows_spilled_total->Increment(build_rows_spilled);
  m.probe_rows_spilled_total->Increment(probe_rows_spilled);
  scope.Succeeded();

  // Seal the span tree into the result. The recorder dies with this
  // frame; Snapshot() deep-copies (all fragment threads joined in Close).
  if (recorder != nullptr) {
    recorder->EndSpan(recorder->root());
    result.trace = recorder->Snapshot();
    result.trace.query_id = result.query_id;
    result.trace.fingerprint = fingerprint;
  }

  const int64_t elapsed_us =
      std::chrono::duration_cast<std::chrono::microseconds>(end - start)
          .count();
  const bool references_system_view =
      PlanReferencesSystemView(*result.optimized_plan);

  // Fold the execution into the Query Store, keyed by plan shape. Queries
  // that read sys.* views are excluded: observing the store must not grow
  // the store.
  if (!references_system_view) {
    QueryStore::ExecutionCounters qc;
    qc.rows_returned = result.rows_returned;
    qc.segments_scanned = segments_scanned;
    qc.segments_eliminated = segments_eliminated;
    qc.bloom_rows_dropped = bloom_rows_dropped;
    qc.spill_partitions = spill_partitions;
    qc.rows_spilled = build_rows_spilled + probe_rows_spilled;
    qc.peak_mem_bytes = result.peak_memory_bytes;
    qc.spill_bytes = result.spill_bytes;
    if (result.trace.valid) {
      qc.wait_queue_us =
          result.trace.wait_ns[static_cast<size_t>(WaitPoint::kQueue)] / 1000;
      qc.wait_fsync_us =
          result.trace.wait_ns[static_cast<size_t>(WaitPoint::kFsync)] / 1000;
      qc.wait_lock_us =
          result.trace.wait_ns[static_cast<size_t>(WaitPoint::kLock)] / 1000;
      qc.wait_reorg_us =
          result.trace.wait_ns[static_cast<size_t>(WaitPoint::kReorgConflict)] /
          1000;
    }
    QueryStore::Global().Record(*result.optimized_plan, elapsed_us, qc);
  }

  // Slow-query capture: over-threshold queries keep their full span tree
  // and EXPLAIN ANALYZE JSON in the bounded ring behind sys.slow_queries.
  // sys.* readers are excluded for the same reason as above.
  if (result.trace.valid && !references_system_view) {
    SlowQueryLog& slow_log = SlowQueryLog::Global();
    const int64_t threshold_us = slow_log.threshold_us();
    if (threshold_us >= 0 && elapsed_us >= threshold_us) {
      SlowQueryLog::Entry entry;
      entry.query_id = result.query_id;
      entry.fingerprint = fingerprint;
      entry.plan_summary = PlanShapeSummary(*result.optimized_plan);
      entry.start_us = result.trace.root.start_us;
      entry.elapsed_us = elapsed_us;
      entry.rows_returned = result.rows_returned;
      for (int p = 0; p < kNumWaitPoints; ++p) {
        entry.wait_us[static_cast<size_t>(p)] =
            result.trace.wait_ns[static_cast<size_t>(p)] / 1000;
      }
      entry.trace_json = TraceToChromeJson(result.trace);
      entry.profile_json = ProfileToJson(result.profile);
      slow_log.Record(std::move(entry));
    }
  }
  return result;
}

std::string FormatResult(const QueryResult& result, int64_t max_rows) {
  std::string out;
  const Schema& schema = result.schema;
  std::vector<size_t> widths;
  for (const Field& f : schema.fields()) {
    widths.push_back(f.name.size());
  }
  int64_t rows = std::min<int64_t>(result.data.num_rows(), max_rows);
  std::vector<std::vector<std::string>> cells;
  for (int64_t r = 0; r < rows; ++r) {
    std::vector<std::string> row;
    for (int c = 0; c < schema.num_columns(); ++c) {
      std::string cell = result.data.column(c).GetValue(r).ToString();
      widths[static_cast<size_t>(c)] =
          std::max(widths[static_cast<size_t>(c)], cell.size());
      row.push_back(std::move(cell));
    }
    cells.push_back(std::move(row));
  }
  auto pad = [](const std::string& s, size_t w) {
    return s + std::string(w - s.size(), ' ');
  };
  for (int c = 0; c < schema.num_columns(); ++c) {
    out += pad(schema.field(c).name, widths[static_cast<size_t>(c)]) + "  ";
  }
  out += "\n";
  for (const auto& row : cells) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += pad(row[c], widths[c]) + "  ";
    }
    out += "\n";
  }
  if (result.data.num_rows() > rows) {
    out += "... (" + std::to_string(result.data.num_rows() - rows) +
           " more rows)\n";
  }
  return out;
}

}  // namespace vstore
