#include "query/executor.h"

#include <chrono>

#include "common/macros.h"

namespace vstore {

Result<QueryResult> QueryExecutor::Execute(const PlanPtr& plan) const {
  QueryResult result;
  result.optimized_plan =
      options_.optimize ? Optimize(*catalog_, plan, options_.optimizer)
                        : ClonePlan(plan);
  result.schema = result.optimized_plan->schema;
  if (options_.materialize) {
    result.data = TableData(result.schema);
  }

  ExecContext ctx;
  ctx.batch_size = options_.batch_size;
  ctx.operator_memory_budget = options_.operator_memory_budget;

  PhysicalPlanOptions planner_options;
  planner_options.mode = options_.mode;
  planner_options.dop = options_.dop;
  planner_options.include_deltas = options_.include_deltas;

  auto start = std::chrono::steady_clock::now();
  VSTORE_ASSIGN_OR_RETURN(
      PhysicalPlan physical,
      CreatePhysicalPlan(*catalog_, result.optimized_plan, &ctx,
                         planner_options));

  VSTORE_RETURN_IF_ERROR(physical.root->Open());
  for (;;) {
    VSTORE_ASSIGN_OR_RETURN(Batch * batch, physical.root->Next());
    if (batch == nullptr) break;
    result.rows_returned += batch->active_count();
    if (options_.materialize) {
      const uint8_t* active = batch->active();
      for (int64_t i = 0; i < batch->num_rows(); ++i) {
        if (active[i]) result.data.AppendRow(batch->GetActiveRow(i));
      }
    }
  }
  physical.root->Close();
  result.profile = physical.root->BuildProfile();
  auto end = std::chrono::steady_clock::now();

  result.elapsed_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  result.stats = ctx.stats;
  return result;
}

std::string FormatResult(const QueryResult& result, int64_t max_rows) {
  std::string out;
  const Schema& schema = result.schema;
  std::vector<size_t> widths;
  for (const Field& f : schema.fields()) {
    widths.push_back(f.name.size());
  }
  int64_t rows = std::min<int64_t>(result.data.num_rows(), max_rows);
  std::vector<std::vector<std::string>> cells;
  for (int64_t r = 0; r < rows; ++r) {
    std::vector<std::string> row;
    for (int c = 0; c < schema.num_columns(); ++c) {
      std::string cell = result.data.column(c).GetValue(r).ToString();
      widths[static_cast<size_t>(c)] =
          std::max(widths[static_cast<size_t>(c)], cell.size());
      row.push_back(std::move(cell));
    }
    cells.push_back(std::move(row));
  }
  auto pad = [](const std::string& s, size_t w) {
    return s + std::string(w - s.size(), ' ');
  };
  for (int c = 0; c < schema.num_columns(); ++c) {
    out += pad(schema.field(c).name, widths[static_cast<size_t>(c)]) + "  ";
  }
  out += "\n";
  for (const auto& row : cells) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += pad(row[c], widths[c]) + "  ";
    }
    out += "\n";
  }
  if (result.data.num_rows() > rows) {
    out += "... (" + std::to_string(result.data.num_rows() - rows) +
           " more rows)\n";
  }
  return out;
}

}  // namespace vstore
