#ifndef VSTORE_QUERY_SYSTEM_VIEWS_H_
#define VSTORE_QUERY_SYSTEM_VIEWS_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "types/schema.h"
#include "types/table_data.h"

namespace vstore {

class Catalog;

// Virtual system tables (DMVs), modeled on SQL Server's
// sys.column_store_row_groups / _segments / _dictionaries family plus the
// Query Store. A provider is registered in the catalog under the reserved
// "sys." namespace and resolves through Catalog::Find like any base table;
// the planner lowers a scan of one into an in-memory scan over a TableData
// the provider materializes on demand from live engine state. Predicates,
// projections, joins, and aggregates then run through the normal batch
// pipeline unchanged — the engine is its own analytics workload.
//
// Materialization walks pinned table snapshots (ColumnStoreTable::Snapshot),
// so a view never blocks writers or the tuple mover; it sees one consistent
// version per table, materialized at scan-lowering time.

inline constexpr char kSystemViewPrefix[] = "sys.";

// True when `name` lies in the reserved system namespace.
bool IsSystemViewName(const std::string& name);

class SystemViewProvider {
 public:
  virtual ~SystemViewProvider() = default;

  // Full name including the "sys." prefix, e.g. "sys.segments".
  virtual const std::string& name() const = 0;
  virtual const Schema& schema() const = 0;

  // Builds the view's current contents. Must be safe to call concurrently
  // with DML and background reorganization.
  virtual Result<TableData> Materialize(const Catalog& catalog) const = 0;
};

// Registers the built-in views (sys.tables, sys.row_groups, sys.segments,
// sys.dictionaries, sys.delta_stores, sys.storage_files, sys.shards,
// sys.metrics, sys.traces, sys.query_stats). Called by the Catalog
// constructor.
void RegisterBuiltinSystemViews(Catalog* catalog);

}  // namespace vstore

#endif  // VSTORE_QUERY_SYSTEM_VIEWS_H_
