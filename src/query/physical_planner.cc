#include "query/physical_planner.h"

#include <algorithm>
#include <map>

#include "common/macros.h"
#include "common/metrics.h"
#include "exec/exchange.h"
#include "exec/hash_aggregate.h"
#include "exec/hash_join.h"
#include "exec/mem_scan.h"
#include "exec/parallel_hash_join.h"
#include "exec/row/row_operator.h"
#include "exec/scalar_aggregate.h"
#include "exec/scan.h"
#include "exec/sort.h"
#include "exec/union_all.h"
#include "query/system_views.h"

namespace vstore {

namespace {

// A Bloom filter waiting to be attached to the probe-side scan column with
// this name (propagates through filters, limits, and join probe sides).
struct PendingBloom {
  std::string column;
  const BloomFilter* filter;
};

// Scan bounds injected into a fragment's lowering (parallel aggregation:
// each fragment scans a disjoint row-group range). Carries the table
// snapshot the striping was computed from, so every fragment scans the
// same version the planner saw.
struct ForcedScanRange {
  int64_t group_begin;
  int64_t group_end;
  bool include_deltas;
  TableSnapshot snapshot;
  // Scatter-gather over a sharded table: when set, the fragment scans this
  // physical shard (the snapshot above is that shard's pinned version)
  // instead of the catalog entry's column store.
  const ColumnStoreTable* shard = nullptr;
};

// Per-shard scan targets of one sharded-scan lowering, after partition
// pruning; each target travels with the pinned snapshot its fragment scans.
struct ShardFanout {
  struct Target {
    const ColumnStoreTable* shard;
    TableSnapshot snapshot;
  };
  std::vector<Target> targets;
  int64_t shards_total = 0;
  int64_t shards_pruned = 0;
};

// Computes which shards a scan must touch. Equality pushdowns and IN-list
// notes on the partition column each constrain the candidate set to the
// shards their literal(s) hash to; multiple constraints intersect. Pruned
// shards are never snapshotted or scanned. Conservative by construction:
// predicates on other columns (or none at all) keep every shard, and the
// originating filters always stay in the plan, so pruning can only skip
// shards the predicates prove empty of matches.
ShardFanout ComputeShardFanout(const ShardedTable& table,
                               const LogicalPlan& scan) {
  const int n = table.num_shards();
  std::vector<bool> candidate(static_cast<size_t>(n), true);
  auto intersect = [&](const std::vector<bool>& allowed) {
    for (int i = 0; i < n; ++i) {
      size_t s = static_cast<size_t>(i);
      candidate[s] = candidate[s] && allowed[s];
    }
  };
  const std::string& key = table.partition_key();
  for (const NamedScanPredicate& pred : scan.pushed_predicates) {
    if (pred.op != CompareOp::kEq || pred.column != key) continue;
    std::vector<bool> allowed(static_cast<size_t>(n), false);
    allowed[static_cast<size_t>(table.ShardFor(pred.value))] = true;
    intersect(allowed);
  }
  for (const NamedInList& in : scan.pruning_in_lists) {
    if (in.column != key) continue;
    std::vector<bool> allowed(static_cast<size_t>(n), false);
    for (const Value& v : in.values) {
      allowed[static_cast<size_t>(table.ShardFor(v))] = true;
    }
    intersect(allowed);
  }
  ShardFanout fanout;
  fanout.shards_total = n;
  for (int i = 0; i < n; ++i) {
    if (!candidate[static_cast<size_t>(i)]) {
      ++fanout.shards_pruned;
      continue;
    }
    const ColumnStoreTable* shard = table.shard(i);
    fanout.targets.push_back(ShardFanout::Target{shard, shard->Snapshot()});
  }
  return fanout;
}

// Registry-side pruning accounting, bumped once per scatter actually built
// (fanouts computed but abandoned — e.g. a parallel rewrite that fell back
// to the serial path — are not counted).
void RecordShardScatter(const std::string& table, int64_t scanned,
                        int64_t pruned) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("vstore_scan_shards_pruned_total", "table", table)
      ->Increment(pruned);
  registry.GetCounter("vstore_scan_shards_scanned_total", "table", table)
      ->Increment(scanned);
}

// One ForcedScanRange per fragment for a parallelizable chain bottoming at
// `scan_node`: disjoint row-group stripes of a column store (fragment 0
// carrying the delta stores), or one whole unpruned shard per fragment for
// a sharded table (every fragment carrying its shard's deltas). An empty
// `ranges` means the chain should not parallelize here (fewer than two
// fragments' worth of work); callers fall back to the serial lowering,
// where a sharded scan still becomes its own scatter exchange.
struct ChainFragments {
  std::vector<ForcedScanRange> ranges;
  bool sharded = false;
  int64_t shards_total = 0;
  int64_t shards_pruned = 0;
};

ChainFragments PlanChainFragments(const Catalog& catalog,
                                  const PhysicalPlanOptions& options,
                                  const PlanPtr& scan_node) {
  ChainFragments out;
  const Catalog::Entry* entry = catalog.Find(scan_node->table);
  if (entry->has_sharded_table()) {
    out.sharded = true;
    ShardFanout fanout = ComputeShardFanout(*entry->sharded_table, *scan_node);
    out.shards_total = fanout.shards_total;
    out.shards_pruned = fanout.shards_pruned;
    if (fanout.targets.size() < 2) return ChainFragments{};
    for (ShardFanout::Target& target : fanout.targets) {
      ForcedScanRange range;
      range.group_begin = 0;
      range.group_end = -1;  // all of the shard's groups
      range.include_deltas = options.include_deltas;
      range.snapshot = std::move(target.snapshot);
      range.shard = target.shard;
      out.ranges.push_back(std::move(range));
    }
    return out;
  }
  const ColumnStoreTable* table = entry->column_store;
  // One snapshot shared by every fragment.
  TableSnapshot snapshot = table->Snapshot();
  int64_t groups = snapshot->num_row_groups();
  int dop = static_cast<int>(std::min<int64_t>(options.dop, groups));
  if (dop < 2) return out;
  int64_t per = (groups + dop - 1) / dop;
  for (int f = 0; f < dop; ++f) {
    ForcedScanRange range;
    range.group_begin = f * per;
    range.group_end = std::min<int64_t>(range.group_begin + per, groups);
    range.include_deltas = options.include_deltas && f == 0;
    range.snapshot = snapshot;
    out.ranges.push_back(std::move(range));
  }
  return out;
}

// Shared build state for joins inside a parallelized plan region, keyed by
// the logical join node. Fragment lowerings consult this to wrap probe
// sides in HashJoinProbeOperators instead of full hash joins.
using SharedJoinMap =
    std::map<const LogicalPlan*, std::shared_ptr<SharedHashJoinBuild>>;

class Lowering {
 public:
  Lowering(const Catalog& catalog, ExecContext* ctx,
           const PhysicalPlanOptions& options, PhysicalPlan* out)
      : catalog_(catalog), ctx_(ctx), options_(options), out_(out) {}

  Result<BatchOperatorPtr> BuildBatch(const PlanPtr& plan,
                                      std::vector<PendingBloom> blooms);
  Result<RowOperatorPtr> BuildRow(const PlanPtr& plan);

  void set_forced_scan_range(const ForcedScanRange* range) {
    forced_scan_range_ = range;
  }
  void set_shared_joins(const SharedJoinMap* joins, int fragment) {
    shared_joins_ = joins;
    fragment_id_ = fragment;
  }

 private:
  Result<BatchOperatorPtr> BuildBatchScan(const PlanPtr& plan,
                                          std::vector<PendingBloom> blooms);
  // Scatter-gather scan of a sharded table: one fragment per unpruned
  // shard under an Exchange, each scanning its shard's pinned snapshot
  // (compressed groups and delta stores both — shards are disjoint, so
  // there is no "fragment 0 owns the deltas" special case).
  Result<BatchOperatorPtr> BuildShardedScan(const PlanPtr& plan,
                                            const ShardedTable* sharded,
                                            std::vector<PendingBloom> blooms);
  // Parallel aggregation: partial aggregates in scan fragments, exchange,
  // final aggregate. Returns nullptr when the pattern does not apply.
  Result<BatchOperatorPtr> TryParallelAggregate(const PlanPtr& plan);
  // Parallel join: shared multi-threaded build, probe fragments striped
  // over the probe-side scan. Returns nullptr when the pattern does not
  // apply.
  Result<BatchOperatorPtr> TryParallelJoin(const PlanPtr& plan,
                                           std::vector<PendingBloom> blooms);
  // Creates the shared build (factory + Bloom filter) for one chain join.
  Result<std::shared_ptr<SharedHashJoinBuild>> PrepareSharedJoin(
      const PlanPtr& plan, int probe_dop);
  // Creates the shared builds for every join in a parallelized chain.
  Result<std::shared_ptr<SharedJoinMap>> PrepareSharedJoins(
      const std::vector<PlanPtr>& joins, int probe_dop);

  const Catalog& catalog_;
  ExecContext* ctx_;
  const PhysicalPlanOptions& options_;
  PhysicalPlan* out_;
  const ForcedScanRange* forced_scan_range_ = nullptr;
  const SharedJoinMap* shared_joins_ = nullptr;
  int fragment_id_ = 0;
};

// True when the subtree is scan/filter/project only with a column store at
// the bottom — the shape that parallelizes as independent fragments.
bool IsFragmentableChain(const Catalog& catalog, const PlanPtr& plan,
                         std::string* table_out) {
  PlanPtr cursor = plan;
  for (;;) {
    switch (cursor->kind) {
      case PlanKind::kScan: {
        const Catalog::Entry* entry = catalog.Find(cursor->table);
        if (entry == nullptr || !entry->has_column_store()) return false;
        *table_out = cursor->table;
        return true;
      }
      case PlanKind::kFilter:
      case PlanKind::kProject:
        cursor = cursor->children[0];
        break;
      default:
        return false;
    }
  }
}

// Like IsFragmentableChain, but the probe spine may pass through hash
// joins: scan/filter/project/join nodes descending the probe (left) side,
// with a column store — or a sharded table, whose fragments become
// per-shard scans — at the bottom. Outputs the bottom scan node (pruning
// reads its predicates) and collects the join nodes (outermost first);
// build sides may be arbitrary subtrees — they are lowered once into
// shared builds, not per fragment.
bool IsParallelJoinChain(const Catalog& catalog, const PlanPtr& plan,
                         PlanPtr* scan_out,
                         std::vector<PlanPtr>* joins_out) {
  PlanPtr cursor = plan;
  for (;;) {
    switch (cursor->kind) {
      case PlanKind::kScan: {
        const Catalog::Entry* entry = catalog.Find(cursor->table);
        if (entry == nullptr ||
            (!entry->has_column_store() && !entry->has_sharded_table())) {
          return false;
        }
        *scan_out = cursor;
        return true;
      }
      case PlanKind::kFilter:
      case PlanKind::kProject:
        cursor = cursor->children[0];
        break;
      case PlanKind::kJoin:
        joins_out->push_back(cursor);
        cursor = cursor->children[0];
        break;
      default:
        return false;
    }
  }
}

Result<std::vector<int>> ResolveColumns(const Schema& schema,
                                        const std::vector<std::string>& names) {
  std::vector<int> out;
  out.reserve(names.size());
  for (const std::string& name : names) {
    int idx = schema.IndexOf(name);
    if (idx < 0) return Status::InvalidArgument("unknown column: " + name);
    out.push_back(idx);
  }
  return out;
}

Result<std::vector<AggSpec>> ResolveAggs(
    const Schema& schema, const std::vector<NamedAggSpec>& named) {
  std::vector<AggSpec> out;
  out.reserve(named.size());
  for (const NamedAggSpec& spec : named) {
    int idx = -1;
    if (spec.fn != AggFn::kCountStar) {
      idx = schema.IndexOf(spec.column);
      if (idx < 0) {
        return Status::InvalidArgument("unknown aggregate column: " +
                                       spec.column);
      }
    }
    out.push_back(AggSpec{spec.fn, idx, spec.name});
  }
  return out;
}

// Rebuilds a pushed predicate as an expression (row-mode scans evaluate
// pushdowns as ordinary filters).
ExprPtr PredicateToExpr(const Schema& schema, const NamedScanPredicate& pred) {
  return expr::Cmp(pred.op, expr::Column(schema, pred.column),
                   expr::Lit(pred.value));
}

// Tuple-at-a-time LIMIT for row-mode plans.
class RowLimitOperator final : public RowOperator {
 public:
  RowLimitOperator(RowOperatorPtr input, int64_t limit)
      : input_(std::move(input)), limit_(limit) {}

  Status Open() override {
    remaining_ = limit_;
    return input_->Open();
  }
  Result<bool> Next(std::vector<Value>* row) override {
    if (remaining_ <= 0) return false;
    VSTORE_ASSIGN_OR_RETURN(bool more, input_->Next(row));
    if (!more) return false;
    --remaining_;
    return true;
  }
  void Close() override { input_->Close(); }
  const Schema& output_schema() const override {
    return input_->output_schema();
  }
  std::string name() const override { return "RowLimit"; }

 private:
  RowOperatorPtr input_;
  int64_t limit_;
  int64_t remaining_ = 0;
};

Result<BatchOperatorPtr> Lowering::BuildBatchScan(
    const PlanPtr& plan, std::vector<PendingBloom> blooms) {
  const Catalog::Entry* entry = catalog_.Find(plan->table);
  if (entry == nullptr) return Status::NotFound("unknown table " + plan->table);

  if (entry->has_system_view()) {
    // Virtual table: materialize the view now (it pins its own storage
    // snapshots) and scan the result in memory. Pushed predicates become
    // batch filters; pending blooms cannot be pushed into a materialized
    // scan — drop them, the join still filters exactly.
    VSTORE_ASSIGN_OR_RETURN(TableData materialized,
                            entry->system_view->Materialize(catalog_));
    auto data = std::make_shared<const TableData>(std::move(materialized));
    BatchOperatorPtr batch = std::make_unique<MemTableScanOperator>(
        std::move(data), plan->table, ctx_);
    for (const NamedScanPredicate& pred : plan->pushed_predicates) {
      batch = std::make_unique<FilterOperator>(
          std::move(batch), PredicateToExpr(entry->schema(), pred), ctx_);
    }
    if (!plan->scan_columns.empty()) {
      std::vector<ExprPtr> exprs;
      for (const std::string& name : plan->scan_columns) {
        exprs.push_back(expr::Column(entry->schema(), name));
      }
      batch = std::make_unique<ProjectOperator>(
          std::move(batch), std::move(exprs), plan->scan_columns, ctx_);
    }
    return batch;
  }

  const bool is_shard_fragment =
      forced_scan_range_ != nullptr && forced_scan_range_->shard != nullptr;
  if (entry->has_sharded_table() && !is_shard_fragment) {
    return BuildShardedScan(plan, entry->sharded_table, std::move(blooms));
  }

  if (!entry->has_column_store() && !is_shard_fragment) {
    // Batch plan over a row store: adapt a row scan, predicates become a
    // batch filter (pending blooms cannot be pushed; drop them — the join
    // still filters exactly).
    RowOperatorPtr scan =
        std::make_unique<RowStoreScanOperator>(entry->row_store);
    BatchOperatorPtr batch =
        std::make_unique<RowToBatchAdapter>(std::move(scan), ctx_);
    for (const NamedScanPredicate& pred : plan->pushed_predicates) {
      batch = std::make_unique<FilterOperator>(
          std::move(batch), PredicateToExpr(entry->schema(), pred), ctx_);
    }
    if (!plan->scan_columns.empty()) {
      std::vector<ExprPtr> exprs;
      for (const std::string& name : plan->scan_columns) {
        exprs.push_back(expr::Column(entry->schema(), name));
      }
      batch = std::make_unique<ProjectOperator>(
          std::move(batch), std::move(exprs), plan->scan_columns, ctx_);
    }
    return batch;
  }

  // Inside a scatter fragment the scan targets the injected shard; the
  // shard's schema is the logical table's, so name resolution is unchanged.
  const ColumnStoreTable* table =
      is_shard_fragment ? forced_scan_range_->shard : entry->column_store;
  ColumnStoreScanOperator::Options scan_options;
  scan_options.include_deltas = options_.include_deltas;
  scan_options.label = plan->table;
  for (const std::string& name : plan->scan_columns) {
    int idx = table->schema().IndexOf(name);
    if (idx < 0) return Status::InvalidArgument("unknown scan column " + name);
    scan_options.projection.push_back(idx);
  }
  for (const NamedScanPredicate& pred : plan->pushed_predicates) {
    int idx = table->schema().IndexOf(pred.column);
    if (idx < 0) {
      return Status::InvalidArgument("unknown pushdown column " + pred.column);
    }
    scan_options.predicates.push_back(ScanPredicate{idx, pred.op, pred.value});
  }
  for (const PendingBloom& pb : blooms) {
    int idx = table->schema().IndexOf(pb.column);
    if (idx < 0) continue;  // column renamed away; join still filters
    scan_options.bloom_filters.push_back(BloomFilterSpec{idx, pb.filter});
  }

  if (forced_scan_range_ != nullptr) {
    scan_options.group_begin = forced_scan_range_->group_begin;
    scan_options.group_end = forced_scan_range_->group_end;
    scan_options.include_deltas =
        scan_options.include_deltas && forced_scan_range_->include_deltas;
    scan_options.snapshot = forced_scan_range_->snapshot;
    return BatchOperatorPtr(
        std::make_unique<ColumnStoreScanOperator>(table, scan_options, ctx_));
  }

  // One snapshot per scan lowering: the striping below and every fragment
  // read this version, regardless of concurrent DML or tuple-mover passes.
  TableSnapshot snapshot = table->Snapshot();
  scan_options.snapshot = snapshot;
  int dop = options_.dop;
  int64_t groups = snapshot->num_row_groups();
  if (dop <= 1 || groups < 2) {
    return BatchOperatorPtr(
        std::make_unique<ColumnStoreScanOperator>(table, scan_options, ctx_));
  }

  // Parallel scan: stripe row groups across fragments; fragment 0 also
  // covers delta stores.
  dop = static_cast<int>(std::min<int64_t>(dop, groups));
  Schema out_schema = table->schema().Project(
      scan_options.projection.empty()
          ? [&] {
              std::vector<int> all;
              for (int c = 0; c < table->schema().num_columns(); ++c) {
                all.push_back(c);
              }
              return all;
            }()
          : scan_options.projection);
  auto factory = [table, scan_options, groups, dop](
                     int fragment,
                     ExecContext* fctx) -> Result<BatchOperatorPtr> {
    ColumnStoreScanOperator::Options frag = scan_options;
    int64_t per = (groups + dop - 1) / dop;
    frag.group_begin = fragment * per;
    frag.group_end = std::min<int64_t>(frag.group_begin + per, groups);
    frag.include_deltas = scan_options.include_deltas && fragment == 0;
    return BatchOperatorPtr(
        std::make_unique<ColumnStoreScanOperator>(table, frag, fctx));
  };
  return BatchOperatorPtr(std::make_unique<ExchangeOperator>(
      out_schema, std::move(factory), dop, ctx_));
}

Result<BatchOperatorPtr> Lowering::BuildShardedScan(
    const PlanPtr& plan, const ShardedTable* sharded,
    std::vector<PendingBloom> blooms) {
  // Projection, pushdowns, and Bloom specs resolve once against the
  // logical schema; every shard shares them.
  ColumnStoreScanOperator::Options scan_options;
  scan_options.include_deltas = options_.include_deltas;
  scan_options.label = plan->table;
  for (const std::string& name : plan->scan_columns) {
    int idx = sharded->schema().IndexOf(name);
    if (idx < 0) return Status::InvalidArgument("unknown scan column " + name);
    scan_options.projection.push_back(idx);
  }
  for (const NamedScanPredicate& pred : plan->pushed_predicates) {
    int idx = sharded->schema().IndexOf(pred.column);
    if (idx < 0) {
      return Status::InvalidArgument("unknown pushdown column " + pred.column);
    }
    scan_options.predicates.push_back(ScanPredicate{idx, pred.op, pred.value});
  }
  for (const PendingBloom& pb : blooms) {
    int idx = sharded->schema().IndexOf(pb.column);
    if (idx < 0) continue;  // column renamed away; join still filters
    scan_options.bloom_filters.push_back(BloomFilterSpec{idx, pb.filter});
  }

  Schema out_schema = scan_options.projection.empty()
                          ? sharded->schema()
                          : sharded->schema().Project(scan_options.projection);

  ShardFanout fanout = ComputeShardFanout(*sharded, *plan);
  RecordShardScatter(plan->table,
                     static_cast<int64_t>(fanout.targets.size()),
                     fanout.shards_pruned);
  if (fanout.targets.empty()) {
    // Every shard pruned: the predicates prove no row can match. An empty
    // in-memory scan keeps the operator contract (and the profile shape
    // cheap) without spawning fragments.
    return BatchOperatorPtr(std::make_unique<MemTableScanOperator>(
        std::make_shared<const TableData>(out_schema), plan->table, ctx_));
  }

  auto targets = std::make_shared<std::vector<ShardFanout::Target>>(
      std::move(fanout.targets));
  auto factory = [targets, scan_options](
                     int fragment, ExecContext* fctx) -> Result<BatchOperatorPtr> {
    const ShardFanout::Target& target =
        (*targets)[static_cast<size_t>(fragment)];
    ColumnStoreScanOperator::Options frag = scan_options;
    frag.snapshot = target.snapshot;
    return BatchOperatorPtr(std::make_unique<ColumnStoreScanOperator>(
        target.shard, frag, fctx));
  };
  auto exchange = std::make_unique<ExchangeOperator>(
      std::move(out_schema), std::move(factory),
      static_cast<int>(targets->size()), ctx_, "Scatter " + plan->table);
  exchange->AddStaticCounter("shards_total", fanout.shards_total);
  exchange->AddStaticCounter("shards_pruned", fanout.shards_pruned);
  return BatchOperatorPtr(std::move(exchange));
}

Result<std::shared_ptr<SharedHashJoinBuild>> Lowering::PrepareSharedJoin(
    const PlanPtr& plan, int probe_dop) {
  SharedHashJoinBuild::Options join_options;
  join_options.join_type = plan->join_type;
  VSTORE_ASSIGN_OR_RETURN(
      join_options.probe_keys,
      ResolveColumns(plan->children[0]->schema, plan->left_keys));
  VSTORE_ASSIGN_OR_RETURN(
      join_options.build_keys,
      ResolveColumns(plan->children[1]->schema, plan->right_keys));
  if (plan->use_bloom && plan->left_keys.size() == 1) {
    // Same single-key restriction as the serial join lowering: multi-key
    // combined hashes differ between scan-side and joint key hashing.
    auto filter = std::make_unique<BloomFilter>();
    join_options.bloom_target = filter.get();
    out_->bloom_filters.push_back(std::move(filter));
  }

  // The build parallelizes only when the build side is itself a plain
  // scan/filter/project chain over enough row groups; anything else (nested
  // joins, aggregates) is lowered and drained by a single build fragment.
  PlanPtr build_plan = plan->children[1];
  std::string build_table;
  int64_t build_groups = 0;
  int build_dop = 1;
  TableSnapshot build_snapshot;
  if (IsFragmentableChain(catalog_, build_plan, &build_table)) {
    const ColumnStoreTable* table = catalog_.GetColumnStore(build_table);
    build_snapshot = table->Snapshot();
    build_groups = build_snapshot->num_row_groups();
    build_dop =
        static_cast<int>(std::max<int64_t>(
            1, std::min<int64_t>(probe_dop, build_groups)));
  }

  const Catalog* catalog = &catalog_;
  PhysicalPlanOptions options = options_;
  options.dop = 1;  // build fragments must not nest exchanges
  bool include_deltas = options_.include_deltas;
  int64_t groups = build_groups;
  int dop = build_dop;
  SharedHashJoinBuild::BuildFactory factory =
      [catalog, options, build_plan, groups, dop, include_deltas,
       build_snapshot](
          int fragment, ExecContext* fctx,
          std::shared_ptr<void>* resources) -> Result<BatchOperatorPtr> {
    auto scratch = std::make_shared<PhysicalPlan>();
    Lowering sub(*catalog, fctx, options, scratch.get());
    ForcedScanRange range;
    if (dop > 1) {
      int64_t per = (groups + dop - 1) / dop;
      range.group_begin = fragment * per;
      range.group_end = std::min<int64_t>(range.group_begin + per, groups);
      range.include_deltas = include_deltas && fragment == 0;
      range.snapshot = build_snapshot;
      sub.set_forced_scan_range(&range);
    }
    VSTORE_ASSIGN_OR_RETURN(BatchOperatorPtr op,
                            sub.BuildBatch(build_plan, {}));
    // Joins nested inside the build subtree own Bloom filters through the
    // scratch plan; keep it alive for the fragment's lifetime.
    *resources = std::move(scratch);
    return op;
  };
  return std::make_shared<SharedHashJoinBuild>(
      plan->children[1]->schema, plan->children[0]->schema,
      std::move(join_options), std::move(factory), build_dop, probe_dop,
      ctx_->operator_memory_budget);
}

Result<std::shared_ptr<SharedJoinMap>> Lowering::PrepareSharedJoins(
    const std::vector<PlanPtr>& joins, int probe_dop) {
  auto map = std::make_shared<SharedJoinMap>();
  for (const PlanPtr& join_plan : joins) {
    VSTORE_ASSIGN_OR_RETURN(std::shared_ptr<SharedHashJoinBuild> shared,
                            PrepareSharedJoin(join_plan, probe_dop));
    (*map)[join_plan.get()] = shared;
    out_->shared_builds.push_back(std::move(shared));
  }
  return map;
}

Result<BatchOperatorPtr> Lowering::TryParallelJoin(
    const PlanPtr& plan, std::vector<PendingBloom> blooms) {
  PlanPtr scan_node;
  std::vector<PlanPtr> joins;
  if (!IsParallelJoinChain(catalog_, plan, &scan_node, &joins)) {
    return BatchOperatorPtr(nullptr);
  }
  ChainFragments frags = PlanChainFragments(catalog_, options_, scan_node);
  const int dop = static_cast<int>(frags.ranges.size());
  if (dop < 2) return BatchOperatorPtr(nullptr);

  VSTORE_ASSIGN_OR_RETURN(std::shared_ptr<SharedJoinMap> shared_map,
                          PrepareSharedJoins(joins, dop));

  // Fragments lower the whole probe spine over their stripe or shard; the
  // join nodes resolve to probe operators over the shared builds.
  const Catalog* catalog = &catalog_;
  PhysicalPlanOptions options = options_;
  PlanPtr chain_plan = plan;
  auto ranges = std::make_shared<std::vector<ForcedScanRange>>(
      std::move(frags.ranges));
  auto factory = [catalog, options, chain_plan, shared_map, ranges, blooms](
                     int fragment,
                     ExecContext* fctx) -> Result<BatchOperatorPtr> {
    PhysicalPlan scratch;
    Lowering sub(*catalog, fctx, options, &scratch);
    sub.set_forced_scan_range(&(*ranges)[static_cast<size_t>(fragment)]);
    sub.set_shared_joins(shared_map.get(), fragment);
    VSTORE_ASSIGN_OR_RETURN(BatchOperatorPtr chain,
                            sub.BuildBatch(chain_plan, blooms));
    // Fragment lowerings attach no resources of their own: chain joins use
    // the shared builds, whose filters live in the outer plan.
    VSTORE_CHECK(scratch.bloom_filters.empty() &&
                 scratch.shared_builds.empty());
    return chain;
  };
  Schema out_schema =
      HashJoinOutputSchema(plan->children[0]->schema,
                           plan->children[1]->schema, plan->join_type);
  auto exchange = std::make_unique<ExchangeOperator>(
      std::move(out_schema), std::move(factory), dop, ctx_, "HashJoin");
  if (frags.sharded) {
    exchange->AddStaticCounter("shards_total", frags.shards_total);
    exchange->AddStaticCounter("shards_pruned", frags.shards_pruned);
    RecordShardScatter(scan_node->table, dop, frags.shards_pruned);
  }
  return BatchOperatorPtr(std::move(exchange));
}

Result<BatchOperatorPtr> Lowering::TryParallelAggregate(const PlanPtr& plan) {
  PlanPtr scan_node;
  std::vector<PlanPtr> joins;
  if (!IsParallelJoinChain(catalog_, plan->children[0], &scan_node, &joins)) {
    return BatchOperatorPtr(nullptr);
  }
  ChainFragments frags = PlanChainFragments(catalog_, options_, scan_node);
  const int dop = static_cast<int>(frags.ranges.size());
  if (dop < 2) return BatchOperatorPtr(nullptr);

  const Schema& child_schema = plan->children[0]->schema;
  VSTORE_ASSIGN_OR_RETURN(std::vector<AggSpec> aggs,
                          ResolveAggs(child_schema, plan->aggregates));
  VSTORE_ASSIGN_OR_RETURN(std::vector<int> group_by,
                          ResolveColumns(child_schema, plan->group_by));
  Schema partial_schema =
      HashAggregateOperator::PartialSchema(child_schema, group_by, aggs);

  // Joins on the probe spine share one build across all fragments, so
  // scan → join → partial agg parallelizes as a single fragment tree.
  VSTORE_ASSIGN_OR_RETURN(std::shared_ptr<SharedJoinMap> shared_map,
                          PrepareSharedJoins(joins, dop));

  // Fragments: chain + partial aggregation over a stripe or shard.
  const Catalog* catalog = &catalog_;
  PhysicalPlanOptions options = options_;
  PlanPtr child_plan = plan->children[0];
  auto ranges = std::make_shared<std::vector<ForcedScanRange>>(
      std::move(frags.ranges));
  auto factory = [catalog, options, child_plan, shared_map, aggs, group_by,
                  ranges](int fragment, ExecContext* fctx)
      -> Result<BatchOperatorPtr> {
    PhysicalPlan scratch;  // fragments create no shared resources
    Lowering sub(*catalog, fctx, options, &scratch);
    sub.set_forced_scan_range(&(*ranges)[static_cast<size_t>(fragment)]);
    sub.set_shared_joins(shared_map.get(), fragment);
    VSTORE_ASSIGN_OR_RETURN(BatchOperatorPtr chain,
                            sub.BuildBatch(child_plan, {}));
    VSTORE_CHECK(scratch.bloom_filters.empty() &&
                 scratch.shared_builds.empty());
    HashAggregateOperator::Options partial;
    partial.group_by = group_by;
    partial.aggregates = aggs;
    partial.phase = AggPhase::kPartial;
    return BatchOperatorPtr(std::make_unique<HashAggregateOperator>(
        std::move(chain), std::move(partial), fctx));
  };
  auto exchange_op = std::make_unique<ExchangeOperator>(
      partial_schema, std::move(factory), dop, ctx_);
  if (frags.sharded) {
    exchange_op->AddStaticCounter("shards_total", frags.shards_total);
    exchange_op->AddStaticCounter("shards_pruned", frags.shards_pruned);
    RecordShardScatter(scan_node->table, dop, frags.shards_pruned);
  }
  BatchOperatorPtr exchange = std::move(exchange_op);

  // Final aggregation over the partial rows.
  HashAggregateOperator::Options final_options;
  final_options.phase = AggPhase::kFinal;
  for (size_t k = 0; k < group_by.size(); ++k) {
    final_options.group_by.push_back(static_cast<int>(k));
  }
  for (size_t a = 0; a < aggs.size(); ++a) {
    AggSpec spec = aggs[a];
    spec.column = static_cast<int>(group_by.size() + 2 * a);
    final_options.aggregates.push_back(std::move(spec));
  }
  return BatchOperatorPtr(std::make_unique<HashAggregateOperator>(
      std::move(exchange), std::move(final_options), ctx_));
}

Result<BatchOperatorPtr> Lowering::BuildBatch(
    const PlanPtr& plan, std::vector<PendingBloom> blooms) {
  switch (plan->kind) {
    case PlanKind::kScan:
      return BuildBatchScan(plan, std::move(blooms));

    case PlanKind::kFilter: {
      VSTORE_ASSIGN_OR_RETURN(
          BatchOperatorPtr child,
          BuildBatch(plan->children[0], std::move(blooms)));
      return BatchOperatorPtr(std::make_unique<FilterOperator>(
          std::move(child), plan->predicate, ctx_));
    }

    case PlanKind::kProject: {
      // Bloom columns do not propagate through projections (names/exprs
      // change); attach nothing below.
      VSTORE_ASSIGN_OR_RETURN(BatchOperatorPtr child,
                              BuildBatch(plan->children[0], {}));
      return BatchOperatorPtr(std::make_unique<ProjectOperator>(
          std::move(child), plan->exprs, plan->names, ctx_));
    }

    case PlanKind::kJoin: {
      // Inside a parallel fragment: a chain join becomes a probe operator
      // over the shared build (the Bloom filter, if any, was created when
      // the shared build was prepared and is populated by it).
      if (shared_joins_ != nullptr) {
        auto it = shared_joins_->find(plan.get());
        if (it != shared_joins_->end()) {
          const std::shared_ptr<SharedHashJoinBuild>& shared = it->second;
          if (shared->bloom_target() != nullptr) {
            blooms.push_back(
                PendingBloom{plan->left_keys[0], shared->bloom_target()});
          }
          VSTORE_ASSIGN_OR_RETURN(
              BatchOperatorPtr probe,
              BuildBatch(plan->children[0], std::move(blooms)));
          return BatchOperatorPtr(std::make_unique<HashJoinProbeOperator>(
              std::move(probe), shared, fragment_id_, ctx_));
        }
      } else if (options_.dop > 1 && forced_scan_range_ == nullptr) {
        VSTORE_ASSIGN_OR_RETURN(BatchOperatorPtr parallel,
                                TryParallelJoin(plan, blooms));
        if (parallel != nullptr) return parallel;
      }
      VSTORE_ASSIGN_OR_RETURN(BatchOperatorPtr build,
                              BuildBatch(plan->children[1], {}));
      HashJoinOperator::Options join_options;
      join_options.join_type = plan->join_type;
      VSTORE_ASSIGN_OR_RETURN(
          join_options.probe_keys,
          ResolveColumns(plan->children[0]->schema, plan->left_keys));
      VSTORE_ASSIGN_OR_RETURN(
          join_options.build_keys,
          ResolveColumns(plan->children[1]->schema, plan->right_keys));

      if (plan->use_bloom) {
        auto filter = std::make_unique<BloomFilter>();
        // Single-key blooms only: multi-key combined hashes differ between
        // the per-column scan hash and the joint key hash, so push the
        // filter only when there is exactly one key.
        if (plan->left_keys.size() == 1) {
          blooms.push_back(PendingBloom{plan->left_keys[0], filter.get()});
          join_options.bloom_target = filter.get();
          out_->bloom_filters.push_back(std::move(filter));
        }
      }
      VSTORE_ASSIGN_OR_RETURN(
          BatchOperatorPtr probe,
          BuildBatch(plan->children[0], std::move(blooms)));
      return BatchOperatorPtr(std::make_unique<HashJoinOperator>(
          std::move(probe), std::move(build), std::move(join_options), ctx_));
    }

    case PlanKind::kAggregate: {
      if (options_.dop > 1 && forced_scan_range_ == nullptr) {
        VSTORE_ASSIGN_OR_RETURN(BatchOperatorPtr parallel,
                                TryParallelAggregate(plan));
        if (parallel != nullptr) return parallel;
      }
      VSTORE_ASSIGN_OR_RETURN(BatchOperatorPtr child,
                              BuildBatch(plan->children[0], {}));
      VSTORE_ASSIGN_OR_RETURN(
          std::vector<AggSpec> aggs,
          ResolveAggs(plan->children[0]->schema, plan->aggregates));
      if (plan->group_by.empty()) {
        return BatchOperatorPtr(std::make_unique<ScalarAggregateOperator>(
            std::move(child), std::move(aggs), ctx_));
      }
      HashAggregateOperator::Options agg_options;
      VSTORE_ASSIGN_OR_RETURN(
          agg_options.group_by,
          ResolveColumns(plan->children[0]->schema, plan->group_by));
      agg_options.aggregates = std::move(aggs);
      return BatchOperatorPtr(std::make_unique<HashAggregateOperator>(
          std::move(child), std::move(agg_options), ctx_));
    }

    case PlanKind::kSort: {
      VSTORE_ASSIGN_OR_RETURN(BatchOperatorPtr child,
                              BuildBatch(plan->children[0], {}));
      std::vector<SortKey> keys;
      for (const SortSpec& spec : plan->sort_keys) {
        int idx = plan->children[0]->schema.IndexOf(spec.column);
        if (idx < 0) {
          return Status::InvalidArgument("unknown sort column " + spec.column);
        }
        keys.push_back(SortKey{idx, spec.ascending});
      }
      return BatchOperatorPtr(std::make_unique<SortOperator>(
          std::move(child), std::move(keys), plan->limit, ctx_));
    }

    case PlanKind::kLimit: {
      VSTORE_ASSIGN_OR_RETURN(
          BatchOperatorPtr child,
          BuildBatch(plan->children[0], std::move(blooms)));
      return BatchOperatorPtr(
          std::make_unique<LimitOperator>(std::move(child), plan->limit, ctx_));
    }

    case PlanKind::kUnionAll: {
      std::vector<BatchOperatorPtr> children;
      for (const PlanPtr& c : plan->children) {
        VSTORE_ASSIGN_OR_RETURN(BatchOperatorPtr child, BuildBatch(c, {}));
        children.push_back(std::move(child));
      }
      return BatchOperatorPtr(
          std::make_unique<UnionAllOperator>(std::move(children), ctx_));
    }
  }
  return Status::Internal("unknown plan kind");
}

// Row-mode scan of a sharded table: drains each shard's row scan in shard
// order (row mode is the serial baseline, so there is no scatter here —
// just concatenation; shard pruning is a batch-mode optimization).
class RowConcatOperator final : public RowOperator {
 public:
  explicit RowConcatOperator(std::vector<RowOperatorPtr> children)
      : children_(std::move(children)) {
    VSTORE_CHECK(!children_.empty());
  }

  Status Open() override {
    current_ = 0;
    for (auto& child : children_) {
      VSTORE_RETURN_IF_ERROR(child->Open());
    }
    return Status::OK();
  }

  Result<bool> Next(std::vector<Value>* row) override {
    while (current_ < children_.size()) {
      VSTORE_ASSIGN_OR_RETURN(bool has_row, children_[current_]->Next(row));
      if (has_row) return true;
      ++current_;
    }
    return false;
  }

  void Close() override {
    for (auto& child : children_) child->Close();
  }

  const Schema& output_schema() const override {
    return children_.front()->output_schema();
  }
  std::string name() const override { return "RowConcat"; }

 private:
  std::vector<RowOperatorPtr> children_;
  size_t current_ = 0;
};

Result<RowOperatorPtr> Lowering::BuildRow(const PlanPtr& plan) {
  switch (plan->kind) {
    case PlanKind::kScan: {
      const Catalog::Entry* entry = catalog_.Find(plan->table);
      if (entry == nullptr) {
        return Status::NotFound("unknown table " + plan->table);
      }
      RowOperatorPtr scan;
      if (entry->has_sharded_table()) {
        std::vector<RowOperatorPtr> shard_scans;
        const ShardedTable* sharded = entry->sharded_table;
        for (int i = 0; i < sharded->num_shards(); ++i) {
          shard_scans.push_back(
              std::make_unique<ColumnStoreRowScanOperator>(sharded->shard(i)));
        }
        scan = std::make_unique<RowConcatOperator>(std::move(shard_scans));
      } else if (entry->has_system_view()) {
        VSTORE_ASSIGN_OR_RETURN(TableData materialized,
                                entry->system_view->Materialize(catalog_));
        scan = std::make_unique<MemTableRowScanOperator>(
            std::make_shared<const TableData>(std::move(materialized)),
            plan->table);
      } else if (entry->has_row_store()) {
        scan = std::make_unique<RowStoreScanOperator>(entry->row_store);
      } else {
        scan =
            std::make_unique<ColumnStoreRowScanOperator>(entry->column_store);
      }
      // Pushed predicates run as row filters (row mode has no segment
      // elimination — that asymmetry is the point of experiment E3).
      for (const NamedScanPredicate& pred : plan->pushed_predicates) {
        scan = std::make_unique<RowFilterOperator>(
            std::move(scan), PredicateToExpr(entry->schema(), pred));
      }
      if (!plan->scan_columns.empty()) {
        // Column pruning only narrows the schema here: a row store still
        // materializes whole rows first (the asymmetry columnar storage
        // exploits).
        std::vector<ExprPtr> exprs;
        for (const std::string& name : plan->scan_columns) {
          exprs.push_back(expr::Column(entry->schema(), name));
        }
        scan = std::make_unique<RowProjectOperator>(
            std::move(scan), std::move(exprs), plan->scan_columns);
      }
      return scan;
    }

    case PlanKind::kFilter: {
      VSTORE_ASSIGN_OR_RETURN(RowOperatorPtr child,
                              BuildRow(plan->children[0]));
      return RowOperatorPtr(std::make_unique<RowFilterOperator>(
          std::move(child), plan->predicate));
    }

    case PlanKind::kProject: {
      VSTORE_ASSIGN_OR_RETURN(RowOperatorPtr child,
                              BuildRow(plan->children[0]));
      return RowOperatorPtr(std::make_unique<RowProjectOperator>(
          std::move(child), plan->exprs, plan->names));
    }

    case PlanKind::kJoin: {
      VSTORE_ASSIGN_OR_RETURN(RowOperatorPtr probe,
                              BuildRow(plan->children[0]));
      VSTORE_ASSIGN_OR_RETURN(RowOperatorPtr build,
                              BuildRow(plan->children[1]));
      RowHashJoinOperator::Options join_options;
      join_options.join_type = plan->join_type;
      VSTORE_ASSIGN_OR_RETURN(
          join_options.probe_keys,
          ResolveColumns(plan->children[0]->schema, plan->left_keys));
      VSTORE_ASSIGN_OR_RETURN(
          join_options.build_keys,
          ResolveColumns(plan->children[1]->schema, plan->right_keys));
      return RowOperatorPtr(std::make_unique<RowHashJoinOperator>(
          std::move(probe), std::move(build), std::move(join_options)));
    }

    case PlanKind::kAggregate: {
      VSTORE_ASSIGN_OR_RETURN(RowOperatorPtr child,
                              BuildRow(plan->children[0]));
      RowHashAggregateOperator::Options agg_options;
      VSTORE_ASSIGN_OR_RETURN(
          agg_options.group_by,
          ResolveColumns(plan->children[0]->schema, plan->group_by));
      VSTORE_ASSIGN_OR_RETURN(
          agg_options.aggregates,
          ResolveAggs(plan->children[0]->schema, plan->aggregates));
      return RowOperatorPtr(std::make_unique<RowHashAggregateOperator>(
          std::move(child), std::move(agg_options)));
    }

    case PlanKind::kSort: {
      VSTORE_ASSIGN_OR_RETURN(RowOperatorPtr child,
                              BuildRow(plan->children[0]));
      std::vector<SortKey> keys;
      for (const SortSpec& spec : plan->sort_keys) {
        int idx = plan->children[0]->schema.IndexOf(spec.column);
        if (idx < 0) {
          return Status::InvalidArgument("unknown sort column " + spec.column);
        }
        keys.push_back(SortKey{idx, spec.ascending});
      }
      return RowOperatorPtr(std::make_unique<RowSortOperator>(
          std::move(child), std::move(keys), plan->limit));
    }

    case PlanKind::kLimit: {
      VSTORE_ASSIGN_OR_RETURN(RowOperatorPtr child,
                              BuildRow(plan->children[0]));
      return RowOperatorPtr(
          std::make_unique<RowLimitOperator>(std::move(child), plan->limit));
    }

    case PlanKind::kUnionAll:
      return Status::Unimplemented("row-mode UNION ALL");
  }
  return Status::Internal("unknown plan kind");
}

bool AllScansHaveColumnStores(const Catalog& catalog, const PlanPtr& plan) {
  if (plan->kind == PlanKind::kScan) {
    const Catalog::Entry* entry = catalog.Find(plan->table);
    // System views are batch-capable: their materialized scan is columnar.
    return entry != nullptr &&
           (entry->has_column_store() || entry->has_sharded_table() ||
            entry->has_system_view());
  }
  for (const PlanPtr& child : plan->children) {
    if (!AllScansHaveColumnStores(catalog, child)) return false;
  }
  return true;
}

}  // namespace

Result<PhysicalPlan> CreatePhysicalPlan(const Catalog& catalog,
                                        const PlanPtr& plan, ExecContext* ctx,
                                        const PhysicalPlanOptions& options) {
  PhysicalPlan physical;
  Lowering lowering(catalog, ctx, options, &physical);

  bool batch = options.mode == ExecutionMode::kBatch ||
               (options.mode == ExecutionMode::kAuto &&
                AllScansHaveColumnStores(catalog, plan));
  if (batch) {
    VSTORE_ASSIGN_OR_RETURN(physical.root, lowering.BuildBatch(plan, {}));
  } else {
    VSTORE_ASSIGN_OR_RETURN(RowOperatorPtr root, lowering.BuildRow(plan));
    physical.root = std::make_unique<RowToBatchAdapter>(std::move(root), ctx);
  }
  return physical;
}

}  // namespace vstore
