#include "query/optimizer.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <set>

#include "common/macros.h"

namespace vstore {

namespace {

// --- Expression utilities -------------------------------------------------

void CollectColumnIndices(const ExprPtr& expr, std::set<int>* out) {
  switch (expr->kind()) {
    case ExprKind::kColumn:
      out->insert(static_cast<const ColumnRefExpr*>(expr.get())->index());
      return;
    case ExprKind::kLiteral:
      return;
    case ExprKind::kCompare: {
      const auto* e = static_cast<const CompareExpr*>(expr.get());
      CollectColumnIndices(e->left(), out);
      CollectColumnIndices(e->right(), out);
      return;
    }
    case ExprKind::kArith: {
      const auto* e = static_cast<const ArithExpr*>(expr.get());
      CollectColumnIndices(e->left(), out);
      CollectColumnIndices(e->right(), out);
      return;
    }
    case ExprKind::kBool: {
      const auto* e = static_cast<const BoolExpr*>(expr.get());
      CollectColumnIndices(e->left(), out);
      CollectColumnIndices(e->right(), out);
      return;
    }
    case ExprKind::kNot:
      CollectColumnIndices(static_cast<const NotExpr*>(expr.get())->input(),
                           out);
      return;
    case ExprKind::kIsNull:
      CollectColumnIndices(
          static_cast<const IsNullExpr*>(expr.get())->input(), out);
      return;
    case ExprKind::kYear:
      CollectColumnIndices(static_cast<const YearExpr*>(expr.get())->input(),
                           out);
      return;
    case ExprKind::kStartsWith:
      CollectColumnIndices(
          static_cast<const StartsWithExpr*>(expr.get())->input(), out);
      return;
    case ExprKind::kIn:
      CollectColumnIndices(static_cast<const InExpr*>(expr.get())->input(),
                           out);
      return;
  }
}

// Rebuilds an expression with every column index rewritten through `map`.
ExprPtr MapColumns(const ExprPtr& expr, const std::function<int(int)>& map) {
  switch (expr->kind()) {
    case ExprKind::kColumn: {
      const auto* e = static_cast<const ColumnRefExpr*>(expr.get());
      int idx = map(e->index());
      VSTORE_CHECK(idx >= 0);
      return std::make_shared<ColumnRefExpr>(idx, e->output_type(), e->name());
    }
    case ExprKind::kLiteral:
      return expr;
    case ExprKind::kCompare: {
      const auto* e = static_cast<const CompareExpr*>(expr.get());
      return std::make_shared<CompareExpr>(e->op(), MapColumns(e->left(), map),
                                           MapColumns(e->right(), map));
    }
    case ExprKind::kArith: {
      const auto* e = static_cast<const ArithExpr*>(expr.get());
      return std::make_shared<ArithExpr>(e->op(), MapColumns(e->left(), map),
                                         MapColumns(e->right(), map),
                                         e->output_type());
    }
    case ExprKind::kBool: {
      const auto* e = static_cast<const BoolExpr*>(expr.get());
      return std::make_shared<BoolExpr>(e->op(), MapColumns(e->left(), map),
                                        MapColumns(e->right(), map));
    }
    case ExprKind::kNot:
      return std::make_shared<NotExpr>(MapColumns(
          static_cast<const NotExpr*>(expr.get())->input(), map));
    case ExprKind::kIsNull:
      return std::make_shared<IsNullExpr>(MapColumns(
          static_cast<const IsNullExpr*>(expr.get())->input(), map));
    case ExprKind::kYear:
      return std::make_shared<YearExpr>(MapColumns(
          static_cast<const YearExpr*>(expr.get())->input(), map));
    case ExprKind::kStartsWith: {
      const auto* e = static_cast<const StartsWithExpr*>(expr.get());
      return std::make_shared<StartsWithExpr>(MapColumns(e->input(), map),
                                              e->prefix());
    }
    case ExprKind::kIn: {
      const auto* e = static_cast<const InExpr*>(expr.get());
      return std::make_shared<InExpr>(MapColumns(e->input(), map),
                                      e->values());
    }
  }
  return expr;
}

ExprPtr ShiftColumns(const ExprPtr& expr, int delta) {
  return MapColumns(expr, [delta](int i) { return i + delta; });
}

// Recognizes `column OP literal` (either orientation); returns true and
// fills the pushdown form.
bool AsSargable(const ExprPtr& expr, const Schema& schema,
                NamedScanPredicate* out) {
  if (expr->kind() != ExprKind::kCompare) return false;
  const auto* cmp = static_cast<const CompareExpr*>(expr.get());
  const Expr* l = cmp->left().get();
  const Expr* r = cmp->right().get();
  CompareOp op = cmp->op();
  if (l->kind() == ExprKind::kLiteral && r->kind() == ExprKind::kColumn) {
    std::swap(l, r);
    // Flip the comparison when operands swap sides.
    switch (op) {
      case CompareOp::kLt:
        op = CompareOp::kGt;
        break;
      case CompareOp::kLe:
        op = CompareOp::kGe;
        break;
      case CompareOp::kGt:
        op = CompareOp::kLt;
        break;
      case CompareOp::kGe:
        op = CompareOp::kLe;
        break;
      default:
        break;
    }
  }
  if (l->kind() != ExprKind::kColumn || r->kind() != ExprKind::kLiteral) {
    return false;
  }
  const auto* col = static_cast<const ColumnRefExpr*>(l);
  const auto* lit = static_cast<const LiteralExpr*>(r);
  if (lit->value().is_null()) return false;
  out->column = col->name();
  out->op = op;
  out->value = lit->value();
  return true;
}

ExprPtr ConjunctionOf(const std::vector<ExprPtr>& conjuncts) {
  VSTORE_DCHECK(!conjuncts.empty());
  ExprPtr result = conjuncts[0];
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    result = expr::And(result, conjuncts[i]);
  }
  return result;
}

// --- Rules ------------------------------------------------------------------

// Sinks a filter's conjuncts into scans and through joins. Returns the
// replacement for `node` (a Filter whose child changed, a bare child, etc.).
PlanPtr PushDownFilters(PlanPtr node) {
  // Bottom-up.
  for (auto& child : node->children) {
    child = PushDownFilters(child);
  }
  if (node->kind != PlanKind::kFilter) return node;

  PlanPtr child = node->children[0];
  std::vector<ExprPtr> conjuncts;
  expr::CollectConjuncts(node->predicate, &conjuncts);
  std::vector<ExprPtr> residual;

  if (child->kind == PlanKind::kScan) {
    for (const ExprPtr& c : conjuncts) {
      NamedScanPredicate pred;
      if (AsSargable(c, child->schema, &pred)) {
        child->pushed_predicates.push_back(std::move(pred));
        continue;
      }
      // `column IN (literals)` is noted on the scan for shard pruning but
      // stays in the filter: the note only narrows which shards are
      // scanned, never what the filter accepts.
      if (c->kind() == ExprKind::kIn) {
        const auto* in = static_cast<const InExpr*>(c.get());
        if (in->input()->kind() == ExprKind::kColumn) {
          const auto* col =
              static_cast<const ColumnRefExpr*>(in->input().get());
          child->pruning_in_lists.push_back(
              NamedInList{col->name(), in->values()});
        }
      }
      residual.push_back(c);
    }
  } else if (child->kind == PlanKind::kJoin &&
             (child->join_type == JoinType::kInner ||
              child->join_type == JoinType::kLeftSemi ||
              child->join_type == JoinType::kLeftAnti)) {
    const int probe_cols = child->children[0]->schema.num_columns();
    std::vector<ExprPtr> to_probe, to_build;
    const bool has_build_cols = child->join_type == JoinType::kInner;
    for (const ExprPtr& c : conjuncts) {
      std::set<int> refs;
      CollectColumnIndices(c, &refs);
      bool probe_only = true, build_only = has_build_cols && !refs.empty();
      for (int idx : refs) {
        if (idx >= probe_cols) probe_only = false;
        if (idx < probe_cols) build_only = false;
      }
      if (probe_only && !refs.empty()) {
        to_probe.push_back(c);
      } else if (build_only) {
        to_build.push_back(ShiftColumns(c, -probe_cols));
      } else {
        residual.push_back(c);
      }
    }
    if (!to_probe.empty()) {
      auto f = std::make_shared<LogicalPlan>();
      f->kind = PlanKind::kFilter;
      f->schema = child->children[0]->schema;
      f->predicate = ConjunctionOf(to_probe);
      f->children.push_back(child->children[0]);
      child->children[0] = PushDownFilters(f);
    }
    if (!to_build.empty()) {
      auto f = std::make_shared<LogicalPlan>();
      f->kind = PlanKind::kFilter;
      f->schema = child->children[1]->schema;
      f->predicate = ConjunctionOf(to_build);
      f->children.push_back(child->children[1]);
      child->children[1] = PushDownFilters(f);
    }
  } else {
    residual = conjuncts;
  }

  if (residual.empty()) return child;
  node->predicate = ConjunctionOf(residual);
  node->children[0] = child;
  return node;
}

// Reorders left-deep chains of inner joins: joins whose probe keys resolve
// against the chain's bottom input can run in any order, so run them
// smallest-build-first (classic star-join ordering). Returns the node's
// replacement — a Project restoring the original column order is added on
// top when the reordered chain's schema permuted (parents bind columns by
// index).
PlanPtr ReorderJoins(const Catalog& catalog, PlanPtr node,
                     bool in_chain = false) {
  const bool is_inner_join =
      node->kind == PlanKind::kJoin && node->join_type == JoinType::kInner;
  // Recurse; the probe child of an inner join is part of this node's chain,
  // so reordering is deferred to the chain's top (this node or above).
  for (size_t i = 0; i < node->children.size(); ++i) {
    node->children[i] = ReorderJoins(catalog, node->children[i],
                                     is_inner_join && i == 0);
  }
  if (!is_inner_join || in_chain) return node;
  const Schema original_schema = node->schema;
  // Reordering relies on name-unique columns for the restore projection.
  {
    std::set<std::string> names;
    for (const Field& f : original_schema.fields()) {
      if (!names.insert(f.name).second) return node;
    }
  }

  // Collect the chain J_n(..J_1(bottom, b_1).., b_n) ending at this node.
  struct Level {
    PlanPtr build;
    std::vector<std::string> left_keys;
    std::vector<std::string> right_keys;
    bool use_bloom;
  };
  std::vector<Level> levels;  // bottom-most first
  PlanPtr cursor = node;
  PlanPtr bottom;
  for (;;) {
    if (cursor->kind == PlanKind::kJoin &&
        cursor->join_type == JoinType::kInner) {
      levels.push_back(Level{cursor->children[1], cursor->left_keys,
                             cursor->right_keys, cursor->use_bloom});
      cursor = cursor->children[0];
    } else {
      bottom = cursor;
      break;
    }
  }
  std::reverse(levels.begin(), levels.end());
  if (levels.size() < 2) return node;

  // Only levels whose probe keys all come from the bottom input commute.
  const Schema& bottom_schema = bottom->schema;
  std::vector<size_t> free_levels;
  for (size_t i = 0; i < levels.size(); ++i) {
    bool free = true;
    for (const std::string& key : levels[i].left_keys) {
      if (bottom_schema.IndexOf(key) < 0) {
        free = false;
        break;
      }
    }
    if (free) free_levels.push_back(i);
  }
  if (free_levels.size() < 2) return node;

  // Sort the free levels' contents by estimated build size; dependent
  // levels stay in place.
  std::vector<Level> free_sorted;
  free_sorted.reserve(free_levels.size());
  for (size_t i : free_levels) free_sorted.push_back(levels[i]);
  std::stable_sort(free_sorted.begin(), free_sorted.end(),
                   [&](const Level& a, const Level& b) {
                     return EstimateRows(catalog, a.build) <
                            EstimateRows(catalog, b.build);
                   });
  for (size_t k = 0; k < free_levels.size(); ++k) {
    levels[free_levels[k]] = free_sorted[k];
  }

  // Rebuild the chain in place. Join output schemas must be recomputed
  // because build column blocks moved.
  PlanPtr probe = bottom;
  std::vector<PlanPtr> chain_nodes;
  cursor = node;
  for (size_t i = 0; i < levels.size(); ++i) {
    chain_nodes.push_back(cursor);
    cursor = cursor->children[0];
  }
  std::reverse(chain_nodes.begin(), chain_nodes.end());
  for (size_t i = 0; i < levels.size(); ++i) {
    PlanPtr join = chain_nodes[i];
    join->children[0] = probe;
    join->children[1] = levels[i].build;
    join->left_keys = levels[i].left_keys;
    join->right_keys = levels[i].right_keys;
    join->use_bloom = levels[i].use_bloom;
    std::vector<Field> fields = probe->schema.fields();
    for (const Field& f : levels[i].build->schema.fields()) {
      Field nf = f;
      nf.nullable = true;
      fields.push_back(nf);
    }
    join->schema = Schema(std::move(fields));
    probe = join;
  }

  // Restore the original column order for index-bound parent expressions.
  if (probe->schema.Equals(original_schema)) return probe;
  auto project = std::make_shared<LogicalPlan>();
  project->kind = PlanKind::kProject;
  project->schema = original_schema;
  for (const Field& f : original_schema.fields()) {
    project->exprs.push_back(expr::Column(probe->schema, f.name));
    project->names.push_back(f.name);
  }
  project->children.push_back(probe);
  return project;
}

// Finds the column store scan feeding the probe side and checks that
// `column` survives untouched from the scan to the join input.
bool ProbeKeyReachesScan(const PlanPtr& probe, const std::string& column) {
  PlanPtr cursor = probe;
  for (;;) {
    switch (cursor->kind) {
      case PlanKind::kScan:
        return cursor->schema.IndexOf(column) >= 0;
      case PlanKind::kFilter:
      case PlanKind::kLimit:
        cursor = cursor->children[0];
        break;
      case PlanKind::kJoin:
        // Probe columns pass through the join's probe side by name.
        if (cursor->children[0]->schema.IndexOf(column) >= 0) {
          cursor = cursor->children[0];
          break;
        }
        return false;
      default:
        return false;
    }
  }
}

// --- Column pruning ----------------------------------------------------------

// Resolves `names` in `schema` and inserts the indices into `out`.
void RequireNames(const Schema& schema, const std::vector<std::string>& names,
                  std::set<int>* out) {
  for (const std::string& name : names) {
    int idx = schema.IndexOf(name);
    VSTORE_CHECK(idx >= 0);
    out->insert(idx);
  }
}

// Rewrites `node` so it produces (at least) the original-schema columns in
// `required`. On return, `mapping` has one entry per original output
// column: its index in the new schema, or -1 if dropped. The new schema
// may contain extra columns (e.g. ones a residual filter reads); parents
// rebind through `mapping`.
PlanPtr PruneColumns(PlanPtr node, std::set<int> required,
                     std::vector<int>* mapping) {
  const int old_width = node->schema.num_columns();
  auto identity = [&] {
    mapping->resize(static_cast<size_t>(old_width));
    for (int i = 0; i < old_width; ++i) (*mapping)[static_cast<size_t>(i)] = i;
  };

  switch (node->kind) {
    case PlanKind::kScan: {
      if (required.empty() && old_width > 0) required.insert(0);
      std::vector<int> keep(required.begin(), required.end());
      mapping->assign(static_cast<size_t>(old_width), -1);
      node->scan_columns.clear();
      for (size_t k = 0; k < keep.size(); ++k) {
        (*mapping)[static_cast<size_t>(keep[k])] = static_cast<int>(k);
        node->scan_columns.push_back(node->schema.field(keep[k]).name);
      }
      node->schema = node->schema.Project(keep);
      return node;
    }

    case PlanKind::kFilter: {
      std::set<int> child_required = required;
      CollectColumnIndices(node->predicate, &child_required);
      std::vector<int> child_map;
      node->children[0] =
          PruneColumns(node->children[0], std::move(child_required),
                       &child_map);
      node->predicate = MapColumns(node->predicate, [&](int i) {
        return child_map[static_cast<size_t>(i)];
      });
      node->schema = node->children[0]->schema;
      *mapping = child_map;
      return node;
    }

    case PlanKind::kProject: {
      if (required.empty() && old_width > 0) required.insert(0);
      std::vector<int> keep(required.begin(), required.end());
      std::set<int> child_required;
      for (int k : keep) {
        CollectColumnIndices(node->exprs[static_cast<size_t>(k)],
                             &child_required);
      }
      std::vector<int> child_map;
      node->children[0] =
          PruneColumns(node->children[0], std::move(child_required),
                       &child_map);
      std::vector<ExprPtr> new_exprs;
      std::vector<std::string> new_names;
      std::vector<Field> fields;
      mapping->assign(static_cast<size_t>(old_width), -1);
      for (size_t k = 0; k < keep.size(); ++k) {
        int old_idx = keep[k];
        (*mapping)[static_cast<size_t>(old_idx)] = static_cast<int>(k);
        new_exprs.push_back(
            MapColumns(node->exprs[static_cast<size_t>(old_idx)], [&](int i) {
              return child_map[static_cast<size_t>(i)];
            }));
        new_names.push_back(node->names[static_cast<size_t>(old_idx)]);
        fields.push_back(node->schema.field(old_idx));
      }
      node->exprs = std::move(new_exprs);
      node->names = std::move(new_names);
      node->schema = Schema(std::move(fields));
      return node;
    }

    case PlanKind::kJoin: {
      const bool emit_build = node->join_type == JoinType::kInner ||
                              node->join_type == JoinType::kLeftOuter;
      const int probe_width = node->children[0]->schema.num_columns();
      std::set<int> probe_required, build_required;
      for (int i : required) {
        if (i < probe_width) {
          probe_required.insert(i);
        } else {
          build_required.insert(i - probe_width);
        }
      }
      RequireNames(node->children[0]->schema, node->left_keys,
                   &probe_required);
      RequireNames(node->children[1]->schema, node->right_keys,
                   &build_required);
      std::vector<int> probe_map, build_map;
      node->children[0] = PruneColumns(node->children[0],
                                       std::move(probe_required), &probe_map);
      node->children[1] = PruneColumns(node->children[1],
                                       std::move(build_required), &build_map);

      const int new_probe_width = node->children[0]->schema.num_columns();
      std::vector<Field> fields = node->children[0]->schema.fields();
      if (emit_build) {
        for (const Field& f : node->children[1]->schema.fields()) {
          Field nf = f;
          nf.nullable = true;
          fields.push_back(nf);
        }
      }
      node->schema = Schema(std::move(fields));
      mapping->assign(static_cast<size_t>(old_width), -1);
      for (int i = 0; i < old_width; ++i) {
        if (i < probe_width) {
          (*mapping)[static_cast<size_t>(i)] =
              probe_map[static_cast<size_t>(i)];
        } else if (emit_build) {
          int b = build_map[static_cast<size_t>(i - probe_width)];
          (*mapping)[static_cast<size_t>(i)] =
              b < 0 ? -1 : new_probe_width + b;
        }
      }
      return node;
    }

    case PlanKind::kAggregate: {
      // Output schema is determined by group/agg names; only the child is
      // prunable.
      std::set<int> child_required;
      RequireNames(node->children[0]->schema, node->group_by, &child_required);
      for (const NamedAggSpec& spec : node->aggregates) {
        if (!spec.column.empty()) {
          RequireNames(node->children[0]->schema, {spec.column},
                       &child_required);
        }
      }
      std::vector<int> child_map;
      node->children[0] =
          PruneColumns(node->children[0], std::move(child_required),
                       &child_map);
      identity();
      return node;
    }

    case PlanKind::kSort: {
      std::set<int> child_required = required;
      std::vector<std::string> key_names;
      for (const SortSpec& spec : node->sort_keys) key_names.push_back(spec.column);
      RequireNames(node->children[0]->schema, key_names, &child_required);
      std::vector<int> child_map;
      node->children[0] =
          PruneColumns(node->children[0], std::move(child_required),
                       &child_map);
      node->schema = node->children[0]->schema;
      *mapping = child_map;
      return node;
    }

    case PlanKind::kLimit: {
      std::vector<int> child_map;
      node->children[0] =
          PruneColumns(node->children[0], std::move(required), &child_map);
      node->schema = node->children[0]->schema;
      *mapping = child_map;
      return node;
    }

    case PlanKind::kUnionAll:
      // Children must keep identical schemas; no pruning through unions.
      identity();
      return node;
  }
  identity();
  return node;
}

void PlaceBloomFilters(const Catalog& catalog, const PlanPtr& node,
                       const OptimizerOptions& options) {
  for (const auto& child : node->children) {
    PlaceBloomFilters(catalog, child, options);
  }
  if (node->kind != PlanKind::kJoin) return;
  if (node->join_type != JoinType::kInner &&
      node->join_type != JoinType::kLeftSemi) {
    return;
  }
  const double build_rows = EstimateRows(catalog, node->children[1]);
  if (build_rows > options.bloom_max_build_rows) return;
  // An unselective build passes nearly every probe row through the filter,
  // making the per-row probe pure overhead. Require either a filtered
  // build (estimated selectivity vs its base table <= 50%) or a build that
  // is tiny relative to the probe side (classic star dimension).
  PlanPtr base = node->children[1];
  while (!base->children.empty()) base = base->children[0];
  double raw_rows = build_rows;
  if (base->kind == PlanKind::kScan) {
    const Catalog::Entry* entry = catalog.Find(base->table);
    if (entry != nullptr && entry->has_column_store()) {
      raw_rows = std::max(
          1.0, static_cast<double>(entry->column_store->num_rows()));
    } else if (entry != nullptr && entry->has_sharded_table()) {
      raw_rows = std::max(
          1.0, static_cast<double>(entry->sharded_table->num_rows()));
    } else if (entry != nullptr && entry->has_row_store()) {
      raw_rows =
          std::max(1.0, static_cast<double>(entry->row_store->num_rows()));
    }
  }
  const double probe_rows = EstimateRows(catalog, node->children[0]);
  const bool filtered_build = build_rows <= raw_rows * 0.5;
  const bool tiny_dimension = build_rows * 100 <= probe_rows;
  if (!filtered_build && !tiny_dimension) return;
  // Every probe key must map down to a column store scan column.
  for (const std::string& key : node->left_keys) {
    if (!ProbeKeyReachesScan(node->children[0], key)) return;
  }
  node->use_bloom = true;
}

}  // namespace

double EstimateRows(const Catalog& catalog, const PlanPtr& plan) {
  switch (plan->kind) {
    case PlanKind::kScan: {
      const Catalog::Entry* entry = catalog.Find(plan->table);
      // System views have no backing store; keep the default guess.
      double rows = 1000.0;
      if (entry != nullptr && entry->has_column_store()) {
        rows = static_cast<double>(entry->column_store->num_rows());
      } else if (entry != nullptr && entry->has_sharded_table()) {
        rows = static_cast<double>(entry->sharded_table->num_rows());
      } else if (entry != nullptr && entry->has_row_store()) {
        rows = static_cast<double>(entry->row_store->num_rows());
      }
      // Each pushed predicate is assumed ~25% selective (equality tighter).
      for (const NamedScanPredicate& p : plan->pushed_predicates) {
        rows *= p.op == CompareOp::kEq ? 0.05 : 0.25;
      }
      return std::max(rows, 1.0);
    }
    case PlanKind::kFilter:
      return std::max(EstimateRows(catalog, plan->children[0]) * 0.25, 1.0);
    case PlanKind::kProject:
    case PlanKind::kSort:
      return EstimateRows(catalog, plan->children[0]);
    case PlanKind::kLimit:
      return std::min(EstimateRows(catalog, plan->children[0]),
                      static_cast<double>(plan->limit));
    case PlanKind::kJoin: {
      double probe = EstimateRows(catalog, plan->children[0]);
      // FK joins keep probe cardinality; filtered builds reduce it.
      double build = EstimateRows(catalog, plan->children[1]);
      double raw_build = 1.0;
      if (plan->children[1]->kind == PlanKind::kScan &&
          plan->children[1]->pushed_predicates.empty()) {
        return probe;
      }
      // Selectivity of the build side relative to its base table, bounded.
      PlanPtr base = plan->children[1];
      while (!base->children.empty()) base = base->children[0];
      if (base->kind == PlanKind::kScan) {
        const Catalog::Entry* entry = catalog.Find(base->table);
        if (entry != nullptr && entry->has_column_store()) {
          raw_build = std::max(
              1.0, static_cast<double>(entry->column_store->num_rows()));
        } else if (entry != nullptr && entry->has_sharded_table()) {
          raw_build = std::max(
              1.0, static_cast<double>(entry->sharded_table->num_rows()));
        } else if (entry != nullptr && entry->has_row_store()) {
          raw_build =
              std::max(1.0, static_cast<double>(entry->row_store->num_rows()));
        }
      }
      double selectivity = std::min(1.0, build / raw_build);
      return std::max(probe * selectivity, 1.0);
    }
    case PlanKind::kAggregate:
      return plan->group_by.empty()
                 ? 1.0
                 : std::max(
                       std::sqrt(EstimateRows(catalog, plan->children[0])),
                       1.0);
    case PlanKind::kUnionAll: {
      double total = 0;
      for (const auto& child : plan->children) {
        total += EstimateRows(catalog, child);
      }
      return total;
    }
  }
  return 1.0;
}

PlanPtr ClonePlan(const PlanPtr& plan) {
  auto copy = std::make_shared<LogicalPlan>(*plan);
  for (auto& child : copy->children) {
    child = ClonePlan(child);
  }
  return copy;
}

PlanPtr Optimize(const Catalog& catalog, const PlanPtr& plan,
                 const OptimizerOptions& options) {
  PlanPtr optimized = ClonePlan(plan);
  if (options.pushdown) {
    optimized = PushDownFilters(optimized);
  }
  if (options.join_reorder) {
    optimized = ReorderJoins(catalog, optimized);
  }
  if (options.column_pruning) {
    const Schema original = optimized->schema;
    std::set<int> all;
    for (int i = 0; i < original.num_columns(); ++i) all.insert(i);
    std::vector<int> mapping;
    optimized = PruneColumns(optimized, std::move(all), &mapping);
    // Residual columns (e.g. filter inputs) may remain in the pruned root;
    // restore the user-visible schema exactly.
    if (!optimized->schema.Equals(original)) {
      auto project = std::make_shared<LogicalPlan>();
      project->kind = PlanKind::kProject;
      project->schema = original;
      for (int i = 0; i < original.num_columns(); ++i) {
        VSTORE_CHECK(mapping[static_cast<size_t>(i)] >= 0);
        project->exprs.push_back(
            expr::ColumnAt(optimized->schema, mapping[static_cast<size_t>(i)]));
        project->names.push_back(original.field(i).name);
      }
      project->children.push_back(optimized);
      optimized = project;
    }
  }
  if (options.bloom_filters) {
    PlaceBloomFilters(catalog, optimized, options);
  }
  return optimized;
}

}  // namespace vstore
