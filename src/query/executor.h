#ifndef VSTORE_QUERY_EXECUTOR_H_
#define VSTORE_QUERY_EXECUTOR_H_

#include <string>

#include "common/span_trace.h"
#include "query/optimizer.h"
#include "query/physical_planner.h"
#include "types/table_data.h"

namespace vstore {

// Per-query knobs the benchmarks sweep.
struct QueryOptions {
  ExecutionMode mode = ExecutionMode::kAuto;
  int dop = 1;
  int64_t batch_size = kDefaultBatchSize;
  // Per-operator memory budget before spilling; 0 = unlimited.
  int64_t operator_memory_budget = 0;
  // Compile Filter/Project expressions to bytecode; off forces the
  // tree-interpreter path (the differential oracle).
  bool compile_expressions = true;
  bool optimize = true;
  OptimizerOptions optimizer;
  // Materialize result rows into QueryResult::data (turn off for
  // scan-throughput measurements where only counts matter).
  bool materialize = true;
  bool include_deltas = true;
  // Record a structured span trace (phase/operator/wait spans), register
  // the query in sys.active_queries, and feed the slow-query log. On by
  // default — the cost is one span per operator execution plus a
  // thread-local pointer swap per protocol call; benchmarks gate the
  // overhead at <3%. Turn off for the tightest micro-measurements.
  bool trace = true;
  // Hierarchical memory accounting: a per-query MemoryTracker under the
  // process root, with per-operator / per-fragment children charged by
  // arenas, hash tables, sort runs, exchange queues and expression
  // scratch. Feeds EXPLAIN ANALYZE memory columns, sys.active_queries,
  // sys.query_stats and sys.memory. On by default; the bench gates the
  // overhead at <3%.
  bool track_memory = true;
  // Soft per-query memory budget in bytes (0 = unlimited). The charge that
  // crosses it fires pressure listeners, turning budget excess into
  // policy-driven spill in hash join/aggregate — results are unchanged,
  // only spill placement moves. Requires track_memory.
  int64_t query_memory_budget = 0;
};

struct QueryResult {
  Schema schema;
  TableData data;  // empty when materialize was false
  int64_t rows_returned = 0;
  ExecStats stats;
  double elapsed_ms = 0;
  PlanPtr optimized_plan;  // after rewrite, for EXPLAIN-style inspection
  // Per-operator profile tree mirroring the physical plan (EXPLAIN
  // ANALYZE): render with FormatProfile() or ProfileToJson().
  OperatorProfile profile;
  // Registry id this execution ran under (0 when tracing was off).
  uint64_t query_id = 0;
  // Per-query tracker high-water mark / spill volume (0 when track_memory
  // was off; spill bytes are summed from the operator profiles).
  int64_t peak_memory_bytes = 0;
  int64_t spill_bytes = 0;
  // Span tree + exact wait totals (trace.valid only when tracing was on):
  // render with TraceToChromeJson().
  QueryTrace trace;
};

// Front door of the query layer: optimize, lower, drive to completion.
class QueryExecutor {
 public:
  explicit QueryExecutor(const Catalog* catalog)
      : QueryExecutor(catalog, QueryOptions()) {}
  QueryExecutor(const Catalog* catalog, QueryOptions options)
      : catalog_(catalog), options_(options) {}

  Result<QueryResult> Execute(const PlanPtr& plan) const;

  const QueryOptions& options() const { return options_; }
  QueryOptions* mutable_options() { return &options_; }

 private:
  const Catalog* catalog_;
  QueryOptions options_;
};

// Renders a result as an aligned text table (examples and debugging).
std::string FormatResult(const QueryResult& result, int64_t max_rows = 20);

}  // namespace vstore

#endif  // VSTORE_QUERY_EXECUTOR_H_
