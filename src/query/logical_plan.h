#ifndef VSTORE_QUERY_LOGICAL_PLAN_H_
#define VSTORE_QUERY_LOGICAL_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/aggregate.h"
#include "exec/expression.h"
#include "exec/hash_join.h"
#include "query/catalog.h"
#include "types/compare_op.h"

namespace vstore {

enum class PlanKind {
  kScan,
  kFilter,
  kProject,
  kJoin,
  kAggregate,  // group_by empty => scalar aggregation
  kSort,       // with optional limit (Top-N)
  kLimit,
  kUnionAll,
};

// A sargable predicate recorded on a scan node by the optimizer's pushdown
// rule; resolved to a column index at physical planning.
struct NamedScanPredicate {
  std::string column;
  CompareOp op;
  Value value;
};

// A `column IN (literals)` predicate noted on a scan node by the pushdown
// rule. Unlike pushed_predicates this is advisory: the originating filter
// stays in the plan (results never depend on the note), but the sharded
// planner reads it to prune shards whose hash no listed value routes to.
struct NamedInList {
  std::string column;
  std::vector<Value> values;
};

struct NamedAggSpec {
  AggFn fn;
  std::string column;  // empty for COUNT(*)
  std::string name;    // output column name
};

struct SortSpec {
  std::string column;
  bool ascending = true;
};

// Logical relational operator tree. Column references inside expressions
// are bound to the child schema at build time (PlanBuilder does this);
// names elsewhere (keys, group-by, sort) are resolved during physical
// planning.
struct LogicalPlan {
  PlanKind kind;
  Schema schema;  // output schema
  std::vector<std::shared_ptr<LogicalPlan>> children;

  // kScan
  std::string table;
  std::vector<NamedScanPredicate> pushed_predicates;  // set by the optimizer
  std::vector<NamedInList> pruning_in_lists;          // set by the optimizer
  // Column-pruned projection (names, in output order); empty = all columns.
  // Set by the optimizer; predicate columns need not appear here (the scan
  // decodes them into scratch space).
  std::vector<std::string> scan_columns;

  // kFilter
  ExprPtr predicate;

  // kProject
  std::vector<ExprPtr> exprs;
  std::vector<std::string> names;

  // kJoin — children[0] = probe (left), children[1] = build (right)
  JoinType join_type = JoinType::kInner;
  std::vector<std::string> left_keys;
  std::vector<std::string> right_keys;
  bool use_bloom = false;  // set by the optimizer

  // kAggregate
  std::vector<std::string> group_by;
  std::vector<NamedAggSpec> aggregates;

  // kSort / kLimit
  std::vector<SortSpec> sort_keys;
  int64_t limit = -1;

  std::string ToString(int indent = 0) const;
};

using PlanPtr = std::shared_ptr<LogicalPlan>;

// Fluent builder for logical plans. Expressions passed to Filter/Project
// must be built against the builder's current schema() — e.g.
//
//   PlanBuilder b = PlanBuilder::Scan(catalog, "lineitem");
//   b.Filter(expr::Le(expr::Column(b.schema(), "l_shipdate"),
//                     expr::Lit(Value::Date("1998-09-02"))));
//   b.Aggregate({"l_returnflag"}, {{AggFn::kSum, "l_quantity", "sum_qty"}});
//   PlanPtr plan = b.Build();
class PlanBuilder {
 public:
  static PlanBuilder Scan(const Catalog& catalog, const std::string& table);
  // A plan rooted at an existing node (for subplans in joins/unions).
  static PlanBuilder From(PlanPtr plan);

  PlanBuilder& Filter(ExprPtr predicate);
  PlanBuilder& Project(std::vector<ExprPtr> exprs,
                       std::vector<std::string> names);
  // Convenience: project a subset of columns by name.
  PlanBuilder& Select(const std::vector<std::string>& columns);
  PlanBuilder& Join(JoinType type, PlanPtr build,
                    std::vector<std::string> left_keys,
                    std::vector<std::string> right_keys);
  PlanBuilder& Aggregate(std::vector<std::string> group_by,
                         std::vector<NamedAggSpec> aggregates);
  PlanBuilder& OrderBy(std::vector<SortSpec> keys, int64_t limit = -1);
  PlanBuilder& Limit(int64_t n);
  PlanBuilder& UnionAll(PlanPtr other);

  const Schema& schema() const { return plan_->schema; }
  PlanPtr Build() { return plan_; }

 private:
  explicit PlanBuilder(PlanPtr plan) : plan_(std::move(plan)) {}
  PlanPtr plan_;
};

}  // namespace vstore

#endif  // VSTORE_QUERY_LOGICAL_PLAN_H_
