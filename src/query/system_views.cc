#include "query/system_views.h"

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/memory_tracker.h"
#include "common/metrics.h"
#include "common/span_trace.h"
#include "query/catalog.h"
#include "query/query_store.h"
#include "storage/column_store.h"
#include "storage/sharded_table.h"

namespace vstore {

bool IsSystemViewName(const std::string& name) {
  return name.rfind(kSystemViewPrefix, 0) == 0;
}

namespace {

// Common plumbing: a view's name and schema are fixed; subclasses supply
// Materialize only.
class BuiltinView : public SystemViewProvider {
 public:
  BuiltinView(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}
  const std::string& name() const override { return name_; }
  const Schema& schema() const override { return schema_; }

 private:
  std::string name_;
  Schema schema_;
};

Value I(int64_t v) { return Value::Int64(v); }
Value S(std::string v) { return Value::String(std::move(v)); }
Value NullI() { return Value::Null(DataType::kInt64); }
Value NullS() { return Value::Null(DataType::kString); }

std::string FormatDouble(double d) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%g", d);
  return buf;
}

// Renders a segment's min or max as a display string, honoring the
// column's logical type (dates print as ISO, doubles as %g).
Value RenderSegmentBound(DataType type, const SegmentStats& stats,
                         bool want_min) {
  if (!stats.has_values) return NullS();
  switch (PhysicalTypeOf(type)) {
    case PhysicalType::kInt64: {
      int64_t v = want_min ? stats.min_i64 : stats.max_i64;
      if (type == DataType::kDate32) {
        return S(Date32ToString(static_cast<int32_t>(v)));
      }
      return S(std::to_string(v));
    }
    case PhysicalType::kDouble:
      return S(FormatDouble(want_min ? stats.min_d : stats.max_d));
    case PhysicalType::kString:
      return S(want_min ? stats.min_s : stats.max_s);
  }
  return NullS();
}

const char* EncodingName(EncodingKind kind) {
  switch (kind) {
    case EncodingKind::kBitPack:
      return "BITPACK";
    case EncodingKind::kRle:
      return "RLE";
  }
  return "UNKNOWN";
}

// The physical column stores behind a catalog entry: the table itself, or
// its shards (display-named "table#i") for sharded tables. Storage-level
// views (row groups, segments, dictionaries, delta stores) iterate these so
// shard internals are inspectable under the same queries as plain tables.
std::vector<std::pair<std::string, const ColumnStoreTable*>> PhysicalStores(
    const std::string& name, const Catalog::Entry& entry) {
  std::vector<std::pair<std::string, const ColumnStoreTable*>> out;
  if (entry.has_column_store()) out.emplace_back(name, entry.column_store);
  if (entry.has_sharded_table()) {
    const ShardedTable* sharded = entry.sharded_table;
    for (int i = 0; i < sharded->num_shards(); ++i) {
      out.emplace_back(name + "#" + std::to_string(i), sharded->shard(i));
    }
  }
  return out;
}

const char* CodeKindName(CodeKind kind) {
  switch (kind) {
    case CodeKind::kValueOffset:
      return "VALUE_OFFSET";
    case CodeKind::kValueScaled:
      return "VALUE_SCALED";
    case CodeKind::kRawDouble:
      return "RAW_DOUBLE";
    case CodeKind::kDictionary:
      return "DICTIONARY";
  }
  return "UNKNOWN";
}

// --- sys.tables ----------------------------------------------------------

class TablesView final : public BuiltinView {
 public:
  TablesView()
      : BuiltinView("sys.tables",
                    Schema({{"table_name", DataType::kString, false},
                            {"storage", DataType::kString, false},
                            {"num_columns", DataType::kInt64, false},
                            {"rows", DataType::kInt64, false},
                            {"delta_rows", DataType::kInt64, true},
                            {"deleted_rows", DataType::kInt64, true},
                            {"row_groups", DataType::kInt64, true},
                            {"delta_stores", DataType::kInt64, true},
                            {"segment_bytes", DataType::kInt64, true},
                            {"dictionary_bytes", DataType::kInt64, true},
                            {"delta_store_bytes", DataType::kInt64, true},
                            {"delete_bitmap_bytes", DataType::kInt64, true},
                            {"total_bytes", DataType::kInt64, true}})) {}

  Result<TableData> Materialize(const Catalog& catalog) const override {
    TableData data(schema());
    for (const auto& [name, entry] : catalog.entries()) {
      std::string storage;
      if (entry.has_column_store()) storage = "column_store";
      if (entry.has_row_store()) {
        storage += storage.empty() ? "row_store" : "+row_store";
      }
      if (entry.has_sharded_table()) {
        // Logical totals summed over per-shard pinned snapshots (one
        // consistent version per shard, not one cut across shards).
        const ShardedTable* sharded = entry.sharded_table;
        storage = "sharded(" + std::to_string(sharded->num_shards()) + ")";
        int64_t rows = 0, delta_rows = 0, deleted = 0, groups = 0, stores = 0;
        for (const TableSnapshot& snap : sharded->SnapshotAll()) {
          rows += snap->num_rows();
          delta_rows += snap->num_delta_rows();
          deleted += snap->num_deleted_rows();
          groups += snap->num_row_groups();
          stores += snap->num_delta_stores();
        }
        ColumnStoreTable::SizeBreakdown sizes = sharded->Sizes();
        data.AppendRow({S(name), S(storage),
                        I(sharded->schema().num_columns()), I(rows),
                        I(delta_rows), I(deleted), I(groups), I(stores),
                        I(sizes.segment_bytes), I(sizes.dictionary_bytes),
                        I(sizes.delta_store_bytes),
                        I(sizes.delete_bitmap_bytes), I(sizes.Total())});
      } else if (entry.has_column_store()) {
        const ColumnStoreTable* cs = entry.column_store;
        TableSnapshot snap = cs->Snapshot();
        ColumnStoreTable::SizeBreakdown sizes = cs->Sizes();
        data.AppendRow({S(name), S(storage), I(cs->schema().num_columns()),
                        I(snap->num_rows()), I(snap->num_delta_rows()),
                        I(snap->num_deleted_rows()), I(snap->num_row_groups()),
                        I(snap->num_delta_stores()), I(sizes.segment_bytes),
                        I(sizes.dictionary_bytes), I(sizes.delta_store_bytes),
                        I(sizes.delete_bitmap_bytes), I(sizes.Total())});
      } else {
        data.AppendRow({S(name), S(storage),
                        I(entry.row_store->schema().num_columns()),
                        I(entry.row_store->num_rows()), NullI(), NullI(),
                        NullI(), NullI(), NullI(), NullI(), NullI(), NullI(),
                        NullI()});
      }
    }
    return data;
  }
};

// --- sys.row_groups ------------------------------------------------------

class RowGroupsView final : public BuiltinView {
 public:
  RowGroupsView()
      : BuiltinView("sys.row_groups",
                    Schema({{"table_name", DataType::kString, false},
                            {"group_id", DataType::kInt64, false},
                            {"generation", DataType::kInt64, false},
                            {"state", DataType::kString, false},
                            {"rows", DataType::kInt64, false},
                            {"deleted_rows", DataType::kInt64, false},
                            {"encoded_bytes", DataType::kInt64, false}})) {}

  Result<TableData> Materialize(const Catalog& catalog) const override {
    TableData data(schema());
    for (const auto& [name, entry] : catalog.entries()) {
      for (const auto& [store_name, cs] : PhysicalStores(name, entry)) {
        TableSnapshot snap = cs->Snapshot();
        for (int64_t g = 0; g < snap->num_row_groups(); ++g) {
          const RowGroup& rg = snap->row_group(g);
          bool archived = rg.num_columns() > 0 && rg.column(0).is_archived();
          data.AppendRow({S(store_name), I(rg.id()),
                          I(static_cast<int64_t>(snap->generation(g))),
                          S(archived ? "ARCHIVED" : "COMPRESSED"),
                          I(rg.num_rows()),
                          I(snap->delete_bitmap(g).deleted_count()),
                          I(rg.EncodedBytes())});
        }
      }
    }
    return data;
  }
};

// --- sys.segments --------------------------------------------------------

class SegmentsView final : public BuiltinView {
 public:
  SegmentsView()
      : BuiltinView("sys.segments",
                    Schema({{"table_name", DataType::kString, false},
                            {"group_id", DataType::kInt64, false},
                            {"column_id", DataType::kInt64, false},
                            {"column_name", DataType::kString, false},
                            {"data_type", DataType::kString, false},
                            {"encoding", DataType::kString, false},
                            {"code_kind", DataType::kString, false},
                            {"bit_width", DataType::kInt64, false},
                            {"rows", DataType::kInt64, false},
                            {"null_count", DataType::kInt64, false},
                            {"min_value", DataType::kString, true},
                            {"max_value", DataType::kString, true},
                            {"encoded_bytes", DataType::kInt64, false},
                            {"archived", DataType::kBool, false}})) {}

  Result<TableData> Materialize(const Catalog& catalog) const override {
    TableData data(schema());
    for (const auto& [name, entry] : catalog.entries()) {
      for (const auto& [store_name, cs] : PhysicalStores(name, entry)) {
        const Schema& table_schema = cs->schema();
        TableSnapshot snap = cs->Snapshot();
        for (int64_t g = 0; g < snap->num_row_groups(); ++g) {
          const RowGroup& rg = snap->row_group(g);
          for (int c = 0; c < rg.num_columns(); ++c) {
            const ColumnSegment& seg = rg.column(c);
            const SegmentStats& stats = seg.stats();
            data.AppendRow(
                {S(store_name), I(rg.id()), I(c),
                 S(table_schema.field(c).name), S(DataTypeName(seg.type())),
                 S(EncodingName(seg.encoding())),
                 S(CodeKindName(seg.code_kind())), I(seg.bit_width()),
                 I(stats.num_rows), I(stats.null_count),
                 RenderSegmentBound(seg.type(), stats, /*want_min=*/true),
                 RenderSegmentBound(seg.type(), stats, /*want_min=*/false),
                 I(seg.EncodedBytes()), Value::Bool(seg.is_archived())});
          }
        }
      }
    }
    return data;
  }
};

// --- sys.dictionaries ----------------------------------------------------

class DictionariesView final : public BuiltinView {
 public:
  DictionariesView()
      : BuiltinView("sys.dictionaries",
                    Schema({{"table_name", DataType::kString, false},
                            {"column_id", DataType::kInt64, false},
                            {"column_name", DataType::kString, false},
                            {"scope", DataType::kString, false},
                            {"group_id", DataType::kInt64, true},
                            {"entries", DataType::kInt64, false},
                            {"bytes", DataType::kInt64, false}})) {}

  Result<TableData> Materialize(const Catalog& catalog) const override {
    TableData data(schema());
    for (const auto& [name, entry] : catalog.entries()) {
      for (const auto& [store_name, cs] : PhysicalStores(name, entry)) {
        const Schema& table_schema = cs->schema();
        for (int c = 0; c < table_schema.num_columns(); ++c) {
          std::shared_ptr<const StringDictionary> dict =
              cs->primary_dictionary(c);
          if (dict == nullptr) continue;
          data.AppendRow({S(store_name), I(c), S(table_schema.field(c).name),
                          S("PRIMARY"), NullI(), I(dict->size()),
                          I(dict->MemoryBytes())});
        }
        TableSnapshot snap = cs->Snapshot();
        for (int64_t g = 0; g < snap->num_row_groups(); ++g) {
          const RowGroup& rg = snap->row_group(g);
          for (int c = 0; c < rg.num_columns(); ++c) {
            const StringDictionary* local = rg.column(c).local_dictionary();
            if (local == nullptr) continue;
            data.AppendRow({S(store_name), I(c), S(table_schema.field(c).name),
                            S("LOCAL"), I(rg.id()), I(local->size()),
                            I(local->MemoryBytes())});
          }
        }
      }
    }
    return data;
  }
};

// --- sys.delta_stores ----------------------------------------------------

class DeltaStoresView final : public BuiltinView {
 public:
  DeltaStoresView()
      : BuiltinView("sys.delta_stores",
                    Schema({{"table_name", DataType::kString, false},
                            {"store_id", DataType::kInt64, false},
                            {"state", DataType::kString, false},
                            {"rows", DataType::kInt64, false},
                            {"bytes", DataType::kInt64, false}})) {}

  Result<TableData> Materialize(const Catalog& catalog) const override {
    TableData data(schema());
    for (const auto& [name, entry] : catalog.entries()) {
      for (const auto& [store_name, cs] : PhysicalStores(name, entry)) {
        TableSnapshot snap = cs->Snapshot();
        for (int64_t i = 0; i < snap->num_delta_stores(); ++i) {
          const DeltaStore& ds = snap->delta_store(i);
          data.AppendRow({S(store_name), I(ds.id()),
                          S(ds.closed() ? "CLOSED" : "OPEN"), I(ds.num_rows()),
                          I(ds.MemoryBytes())});
        }
      }
    }
    return data;
  }
};

// --- sys.storage_files ---------------------------------------------------

class StorageFilesView final : public BuiltinView {
 public:
  StorageFilesView()
      : BuiltinView("sys.storage_files",
                    Schema({{"table_name", DataType::kString, false},
                            {"shard_id", DataType::kInt64, true},
                            {"kind", DataType::kString, false},
                            {"epoch", DataType::kInt64, false},
                            {"bytes", DataType::kInt64, false},
                            {"path", DataType::kString, false}})) {}

  Result<TableData> Materialize(const Catalog& catalog) const override {
    TableData data(schema());
    auto append = [&](const std::string& table, Value shard,
                      const DurableTable::FileInfo& f) {
      data.AppendRow({S(table), shard, S(f.kind),
                      I(static_cast<int64_t>(f.epoch)), I(f.bytes),
                      S(f.path)});
    };
    for (const auto& [name, entry] : catalog.entries()) {
      if (entry.durable != nullptr) {
        for (const DurableTable::FileInfo& f : entry.durable->Files()) {
          append(name, NullI(), f);
        }
      }
      if (entry.durable_sharded != nullptr) {
        DurableShardedTable* sharded = entry.durable_sharded;
        for (int i = 0; i < sharded->num_shards(); ++i) {
          for (const DurableTable::FileInfo& f :
               sharded->shard_durability(i)->Files()) {
            append(name, I(i), f);
          }
        }
      }
    }
    return data;
  }
};

// --- sys.shards ----------------------------------------------------------

class ShardsView final : public BuiltinView {
 public:
  ShardsView()
      : BuiltinView("sys.shards",
                    Schema({{"table_name", DataType::kString, false},
                            {"shard_id", DataType::kInt64, false},
                            {"partition_key", DataType::kString, false},
                            {"rows", DataType::kInt64, false},
                            {"delta_rows", DataType::kInt64, false},
                            {"deleted_rows", DataType::kInt64, false},
                            {"row_groups", DataType::kInt64, false},
                            {"delta_stores", DataType::kInt64, false},
                            {"segment_bytes", DataType::kInt64, false},
                            {"delta_store_bytes", DataType::kInt64, false},
                            {"total_bytes", DataType::kInt64, false},
                            {"mover_passes", DataType::kInt64, false},
                            {"mover_rows_moved", DataType::kInt64, false}})) {}

  Result<TableData> Materialize(const Catalog& catalog) const override {
    TableData data(schema());
    // Mover pass counts come from the two-level {table=,shard=} families
    // the per-shard movers publish; a shard whose mover never ran (or was
    // never constructed) reports zero.
    std::map<std::pair<std::string, std::string>,
             std::pair<int64_t, int64_t>>
        mover_stats;  // (table, shard) -> (passes, rows moved)
    for (const MetricsRegistry::Sample& s :
         MetricsRegistry::Global().Samples()) {
      if (s.label_key != "table" || s.label_key2 != "shard") continue;
      auto& slot = mover_stats[{s.label_value, s.label_value2}];
      if (s.name == "vstore_mover_passes_total") slot.first = s.value;
      if (s.name == "vstore_mover_rows_moved_total") slot.second = s.value;
    }
    for (const auto& [name, entry] : catalog.entries()) {
      if (!entry.has_sharded_table()) continue;
      const ShardedTable* sharded = entry.sharded_table;
      std::vector<TableSnapshot> snaps = sharded->SnapshotAll();
      for (int i = 0; i < sharded->num_shards(); ++i) {
        const TableSnapshot& snap = snaps[static_cast<size_t>(i)];
        ColumnStoreTable::SizeBreakdown sizes = sharded->shard(i)->Sizes();
        auto it = mover_stats.find({name, std::to_string(i)});
        int64_t passes = it == mover_stats.end() ? 0 : it->second.first;
        int64_t moved = it == mover_stats.end() ? 0 : it->second.second;
        data.AppendRow({S(name), I(i), S(sharded->partition_key()),
                        I(snap->num_rows()), I(snap->num_delta_rows()),
                        I(snap->num_deleted_rows()), I(snap->num_row_groups()),
                        I(snap->num_delta_stores()), I(sizes.segment_bytes),
                        I(sizes.delta_store_bytes), I(sizes.Total()),
                        I(passes), I(moved)});
      }
    }
    return data;
  }
};

// --- sys.metrics ---------------------------------------------------------

class MetricsView final : public BuiltinView {
 public:
  MetricsView()
      : BuiltinView("sys.metrics",
                    Schema({{"name", DataType::kString, false},
                            {"label_key", DataType::kString, true},
                            {"label_value", DataType::kString, true},
                            {"label_key2", DataType::kString, true},
                            {"label_value2", DataType::kString, true},
                            {"kind", DataType::kString, false},
                            {"value", DataType::kInt64, false},
                            {"sum", DataType::kInt64, true}})) {}

  Result<TableData> Materialize(const Catalog& catalog) const override {
    TableData data(schema());
    for (const MetricsRegistry::Sample& s :
         MetricsRegistry::Global().Samples()) {
      data.AppendRow({S(s.name),
                      s.label_key.empty() ? NullS() : S(s.label_key),
                      s.label_key.empty() ? NullS() : S(s.label_value),
                      s.label_key2.empty() ? NullS() : S(s.label_key2),
                      s.label_key2.empty() ? NullS() : S(s.label_value2),
                      S(s.kind), I(s.value),
                      s.has_sum ? I(s.sum) : NullI()});
    }
    return data;
  }
};

// --- sys.traces ----------------------------------------------------------

class TracesView final : public BuiltinView {
 public:
  TracesView()
      : BuiltinView("sys.traces",
                    Schema({{"name", DataType::kString, false},
                            {"category", DataType::kString, false},
                            {"start_us", DataType::kInt64, false},
                            {"duration_us", DataType::kInt64, false},
                            {"thread_id", DataType::kInt64, false}})) {}

  Result<TableData> Materialize(const Catalog& catalog) const override {
    TableData data(schema());
    for (const TraceEvent& e : TraceRing::Global().Snapshot()) {
      data.AppendRow({S(e.name), S(e.category), I(e.start_us),
                      I(e.duration_us),
                      I(static_cast<int64_t>(e.thread_id % 100000))});
    }
    return data;
  }
};

// --- sys.query_stats -----------------------------------------------------

class QueryStatsView final : public BuiltinView {
 public:
  QueryStatsView()
      : BuiltinView("sys.query_stats",
                    Schema({{"fingerprint", DataType::kString, false},
                            {"plan_summary", DataType::kString, false},
                            {"executions", DataType::kInt64, false},
                            {"total_us", DataType::kInt64, false},
                            {"min_us", DataType::kInt64, false},
                            {"max_us", DataType::kInt64, false},
                            {"last_us", DataType::kInt64, false},
                            {"p50_us", DataType::kInt64, false},
                            {"p95_us", DataType::kInt64, false},
                            {"p99_us", DataType::kInt64, false},
                            {"rows_returned", DataType::kInt64, false},
                            {"segments_scanned", DataType::kInt64, false},
                            {"segments_eliminated", DataType::kInt64, false},
                            {"bloom_rows_dropped", DataType::kInt64, false},
                            {"spill_partitions", DataType::kInt64, false},
                            {"rows_spilled", DataType::kInt64, false},
                            {"peak_mem_bytes", DataType::kInt64, false},
                            {"spill_bytes", DataType::kInt64, false},
                            {"wait_queue_us", DataType::kInt64, false},
                            {"wait_fsync_us", DataType::kInt64, false},
                            {"wait_lock_us", DataType::kInt64, false},
                            {"wait_reorg_us", DataType::kInt64, false}})) {}

  Result<TableData> Materialize(const Catalog& catalog) const override {
    TableData data(schema());
    for (const QueryStore::FingerprintStats& fs :
         QueryStore::Global().Snapshot()) {
      char fp[24];
      std::snprintf(fp, sizeof(fp), "%016llx",
                    static_cast<unsigned long long>(fs.fingerprint));
      data.AppendRow({S(fp), S(fs.plan_summary), I(fs.executions),
                      I(fs.total_us), I(fs.min_us), I(fs.max_us),
                      I(fs.last_us), I(fs.p50_us), I(fs.p95_us), I(fs.p99_us),
                      I(fs.counters.rows_returned),
                      I(fs.counters.segments_scanned),
                      I(fs.counters.segments_eliminated),
                      I(fs.counters.bloom_rows_dropped),
                      I(fs.counters.spill_partitions),
                      I(fs.counters.rows_spilled),
                      I(fs.counters.peak_mem_bytes),
                      I(fs.counters.spill_bytes),
                      I(fs.counters.wait_queue_us),
                      I(fs.counters.wait_fsync_us),
                      I(fs.counters.wait_lock_us),
                      I(fs.counters.wait_reorg_us)});
    }
    return data;
  }
};

// --- sys.active_queries --------------------------------------------------

// Live queries from the ActiveQueryRegistry. A query observing this view
// sees (at least) itself, in phase "compile" — the view materializes
// during physical planning.
class ActiveQueriesView final : public BuiltinView {
 public:
  ActiveQueriesView()
      : BuiltinView("sys.active_queries",
                    Schema({{"query_id", DataType::kInt64, false},
                            {"fingerprint", DataType::kString, true},
                            {"phase", DataType::kString, false},
                            {"plan_summary", DataType::kString, true},
                            {"elapsed_us", DataType::kInt64, false},
                            {"rows_produced", DataType::kInt64, false},
                            {"rows_scanned", DataType::kInt64, false},
                            {"mem_current_bytes", DataType::kInt64, false},
                            {"mem_peak_bytes", DataType::kInt64, false},
                            {"mem_budget_bytes", DataType::kInt64, false},
                            {"wait_point", DataType::kString, true},
                            {"wait_queue_us", DataType::kInt64, false},
                            {"wait_fsync_us", DataType::kInt64, false},
                            {"wait_lock_us", DataType::kInt64, false},
                            {"wait_reorg_us", DataType::kInt64, false}})) {}

  Result<TableData> Materialize(const Catalog& catalog) const override {
    TableData data(schema());
    for (const ActiveQueryRegistry::Snapshot& q :
         ActiveQueryRegistry::Global().List()) {
      char fp[24];
      std::snprintf(fp, sizeof(fp), "%016llx",
                    static_cast<unsigned long long>(q.fingerprint));
      data.AppendRow(
          {I(static_cast<int64_t>(q.query_id)),
           q.fingerprint == 0 ? NullS() : S(fp), S(q.phase),
           q.plan_summary.empty() ? NullS() : S(q.plan_summary),
           I(q.elapsed_us), I(q.rows_produced), I(q.rows_scanned),
           I(q.mem_current_bytes), I(q.mem_peak_bytes), I(q.mem_budget_bytes),
           q.wait_point.empty() ? NullS() : S(q.wait_point),
           I(q.wait_us[static_cast<size_t>(WaitPoint::kQueue)]),
           I(q.wait_us[static_cast<size_t>(WaitPoint::kFsync)]),
           I(q.wait_us[static_cast<size_t>(WaitPoint::kLock)]),
           I(q.wait_us[static_cast<size_t>(WaitPoint::kReorgConflict)])});
    }
    return data;
  }
};

// --- sys.memory ----------------------------------------------------------

// One row per MemoryTracker node (preorder walk of the process tree), plus
// a synthetic "process"-category RSS row. `bytes` is the node's *local*
// (exclusive) count, so SUM(bytes) over the tracker rows equals the
// process root's inclusive total — the reconciliation invariant the tests
// assert. `current_bytes` is the inclusive subtree total.
class MemoryView final : public BuiltinView {
 public:
  MemoryView()
      : BuiltinView("sys.memory",
                    Schema({{"name", DataType::kString, false},
                            {"category", DataType::kString, false},
                            {"table_name", DataType::kString, true},
                            {"shard", DataType::kString, true},
                            {"depth", DataType::kInt64, false},
                            {"bytes", DataType::kInt64, false},
                            {"current_bytes", DataType::kInt64, false},
                            {"peak_bytes", DataType::kInt64, false}})) {}

  Result<TableData> Materialize(const Catalog& catalog) const override {
    // Refresh the gauges on the same cadence as a scrape: reading
    // sys.memory is the SQL-side scrape.
    PublishMemoryGauges();
    TableData data(schema());
    std::vector<MemoryTracker::NodeStats> nodes;
    MemoryTracker::Process()->Collect(&nodes);
    for (const MemoryTracker::NodeStats& node : nodes) {
      data.AppendRow({S(node.name), S(node.category),
                      node.table.empty() ? NullS() : S(node.table),
                      node.shard.empty() ? NullS() : S(node.shard),
                      I(node.depth), I(node.local_bytes),
                      I(node.current_bytes), I(node.peak_bytes)});
    }
    // RSS as seen by the kernel — category "process", excluded from the
    // tracker-sum reconciliation (it counts code, stacks, allocator slack).
    int64_t rss = ReadProcessRssBytes();
    data.AppendRow({S("rss"), S("process"), NullS(), NullS(), I(0), I(rss),
                    I(rss), I(rss)});
    return data;
  }
};

// --- sys.slow_queries ----------------------------------------------------

class SlowQueriesView final : public BuiltinView {
 public:
  SlowQueriesView()
      : BuiltinView("sys.slow_queries",
                    Schema({{"query_id", DataType::kInt64, false},
                            {"fingerprint", DataType::kString, false},
                            {"plan_summary", DataType::kString, false},
                            {"start_us", DataType::kInt64, false},
                            {"elapsed_us", DataType::kInt64, false},
                            {"rows_returned", DataType::kInt64, false},
                            {"wait_queue_us", DataType::kInt64, false},
                            {"wait_fsync_us", DataType::kInt64, false},
                            {"wait_lock_us", DataType::kInt64, false},
                            {"wait_reorg_us", DataType::kInt64, false},
                            {"trace_json", DataType::kString, false},
                            {"profile_json", DataType::kString, false}})) {}

  Result<TableData> Materialize(const Catalog& catalog) const override {
    TableData data(schema());
    for (const SlowQueryLog::Entry& e : SlowQueryLog::Global().Snapshot()) {
      char fp[24];
      std::snprintf(fp, sizeof(fp), "%016llx",
                    static_cast<unsigned long long>(e.fingerprint));
      data.AppendRow(
          {I(static_cast<int64_t>(e.query_id)), S(fp), S(e.plan_summary),
           I(e.start_us), I(e.elapsed_us), I(e.rows_returned),
           I(e.wait_us[static_cast<size_t>(WaitPoint::kQueue)]),
           I(e.wait_us[static_cast<size_t>(WaitPoint::kFsync)]),
           I(e.wait_us[static_cast<size_t>(WaitPoint::kLock)]),
           I(e.wait_us[static_cast<size_t>(WaitPoint::kReorgConflict)]),
           S(e.trace_json), S(e.profile_json)});
    }
    return data;
  }
};

}  // namespace

void RegisterBuiltinSystemViews(Catalog* catalog) {
  // Registration cannot fail for the built-in set (names are unique and
  // prefixed); assert via VSTORE_CHECK-free OK drops.
  (void)catalog->RegisterSystemView(std::make_unique<TablesView>());
  (void)catalog->RegisterSystemView(std::make_unique<RowGroupsView>());
  (void)catalog->RegisterSystemView(std::make_unique<SegmentsView>());
  (void)catalog->RegisterSystemView(std::make_unique<DictionariesView>());
  (void)catalog->RegisterSystemView(std::make_unique<DeltaStoresView>());
  (void)catalog->RegisterSystemView(std::make_unique<StorageFilesView>());
  (void)catalog->RegisterSystemView(std::make_unique<ShardsView>());
  (void)catalog->RegisterSystemView(std::make_unique<MetricsView>());
  (void)catalog->RegisterSystemView(std::make_unique<TracesView>());
  (void)catalog->RegisterSystemView(std::make_unique<QueryStatsView>());
  (void)catalog->RegisterSystemView(std::make_unique<ActiveQueriesView>());
  (void)catalog->RegisterSystemView(std::make_unique<MemoryView>());
  (void)catalog->RegisterSystemView(std::make_unique<SlowQueriesView>());
}

}  // namespace vstore
