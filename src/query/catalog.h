#ifndef VSTORE_QUERY_CATALOG_H_
#define VSTORE_QUERY_CATALOG_H_

#include <map>
#include <memory>
#include <string>

#include "common/macros.h"
#include "common/status.h"
#include "storage/column_store.h"
#include "storage/row_store.h"

namespace vstore {

// Name -> table mapping. A logical table may have a column store
// representation, a row store representation, or both (benchmarks register
// both to compare access paths; the planner picks by execution mode).
class Catalog {
 public:
  Catalog() = default;
  VSTORE_DISALLOW_COPY_AND_ASSIGN(Catalog);

  struct Entry {
    ColumnStoreTable* column_store = nullptr;  // owned by the catalog
    RowStoreTable* row_store = nullptr;

    const Schema& schema() const {
      return column_store != nullptr ? column_store->schema()
                                     : row_store->schema();
    }
    bool has_column_store() const { return column_store != nullptr; }
    bool has_row_store() const { return row_store != nullptr; }
  };

  Status AddColumnStore(std::unique_ptr<ColumnStoreTable> table);
  Status AddRowStore(std::unique_ptr<RowStoreTable> table);

  // Returns nullptr when the table is unknown.
  const Entry* Find(const std::string& name) const;
  Result<const Entry*> FindOrError(const std::string& name) const;

  ColumnStoreTable* GetColumnStore(const std::string& name) const;
  RowStoreTable* GetRowStore(const std::string& name) const;

  // Operator-facing engine health report: refreshes every column store's
  // storage gauges, renders a per-table breakdown (live/delta/deleted row
  // counts, row-group and delta-store counts, size components), then
  // appends the full Prometheus-style text exposition of the global
  // metrics registry (query latency histogram, tuple-mover pass stats,
  // reorg conflicts, cumulative operator roll-ups, ...). Deterministic
  // ordering (catalog map + sorted registry) keeps diffs stable.
  std::string StatsReport() const;

 private:
  std::map<std::string, Entry> entries_;
  std::vector<std::unique_ptr<ColumnStoreTable>> column_stores_;
  std::vector<std::unique_ptr<RowStoreTable>> row_stores_;
};

}  // namespace vstore

#endif  // VSTORE_QUERY_CATALOG_H_
