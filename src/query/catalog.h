#ifndef VSTORE_QUERY_CATALOG_H_
#define VSTORE_QUERY_CATALOG_H_

#include <map>
#include <memory>
#include <string>

#include "common/macros.h"
#include "common/status.h"
#include "storage/column_store.h"
#include "storage/durable_table.h"
#include "storage/row_store.h"
#include "storage/sharded_table.h"

namespace vstore {

class SystemViewProvider;

// Name -> table mapping. A logical table may have a column store
// representation, a row store representation, or both (benchmarks register
// both to compare access paths; the planner picks by execution mode) — or
// be a hash-partitioned ShardedTable, which the planner lowers into a
// scatter-gather exchange over per-shard scans. The
// "sys." prefix is a reserved namespace of virtual system views (DMVs):
// every catalog carries the built-in set (sys.tables, sys.segments,
// sys.query_stats, ...), resolved by Find like ordinary tables but
// materialized on demand from live engine state.
class Catalog {
 public:
  Catalog();
  ~Catalog();
  VSTORE_DISALLOW_COPY_AND_ASSIGN(Catalog);

  struct Entry {
    ColumnStoreTable* column_store = nullptr;  // owned by the catalog
    RowStoreTable* row_store = nullptr;
    ShardedTable* sharded_table = nullptr;  // owned by the catalog
    const SystemViewProvider* system_view = nullptr;  // owned by the catalog
    // Durability attachments (owned by the catalog; non-null only for
    // tables registered via the AddDurable* entry points). sys.storage_files
    // enumerates their WAL/checkpoint files.
    DurableTable* durable = nullptr;
    DurableShardedTable* durable_sharded = nullptr;

    const Schema& schema() const;
    bool has_column_store() const { return column_store != nullptr; }
    bool has_row_store() const { return row_store != nullptr; }
    bool has_sharded_table() const { return sharded_table != nullptr; }
    bool has_system_view() const { return system_view != nullptr; }
    bool has_durability() const {
      return durable != nullptr || durable_sharded != nullptr;
    }
  };

  Status AddColumnStore(std::unique_ptr<ColumnStoreTable> table);
  Status AddRowStore(std::unique_ptr<RowStoreTable> table);
  // A sharded table is a logical table's only representation: it cannot
  // share its name with a column- or row-store entry.
  Status AddShardedTable(std::unique_ptr<ShardedTable> table);
  // Registers a column store together with its durability attachment (the
  // caller opened the DurableTable against this table). The catalog owns
  // both and destroys the attachment first (it detaches its hook).
  Status AddDurableColumnStore(std::unique_ptr<ColumnStoreTable> table,
                               std::unique_ptr<DurableTable> durable);
  // Registers a durable sharded table (which owns its ShardedTable).
  Status AddDurableShardedTable(std::unique_ptr<DurableShardedTable> table);
  // Registers a virtual table under the reserved "sys." namespace.
  Status RegisterSystemView(std::unique_ptr<SystemViewProvider> view);

  // Returns nullptr when the table is unknown. System views resolve here
  // too, so plans reference them like any other table.
  const Entry* Find(const std::string& name) const;
  Result<const Entry*> FindOrError(const std::string& name) const;

  ColumnStoreTable* GetColumnStore(const std::string& name) const;
  RowStoreTable* GetRowStore(const std::string& name) const;
  ShardedTable* GetShardedTable(const std::string& name) const;

  // User tables only (system views excluded) — what sys.tables et al.
  // enumerate, so views never recurse into themselves.
  const std::map<std::string, Entry>& entries() const { return entries_; }

  // Operator-facing engine health report: refreshes every column store's
  // storage gauges, renders a per-table breakdown (live/delta/deleted row
  // counts, row-group and delta-store counts, size components), then
  // appends the full Prometheus-style text exposition of the global
  // metrics registry (query latency histogram, tuple-mover pass stats,
  // reorg conflicts, cumulative operator roll-ups, ...). Deterministic
  // ordering (catalog map + sorted registry) keeps diffs stable.
  std::string StatsReport() const;

 private:
  std::map<std::string, Entry> entries_;
  // System views live in their own map so entries_ iteration (StatsReport,
  // the sys.* materializers) sees user tables only.
  std::map<std::string, Entry> system_entries_;
  std::vector<std::unique_ptr<ColumnStoreTable>> column_stores_;
  std::vector<std::unique_ptr<RowStoreTable>> row_stores_;
  std::vector<std::unique_ptr<ShardedTable>> sharded_tables_;
  std::vector<std::unique_ptr<SystemViewProvider>> system_views_;
  // Declared after the table vectors so attachments are destroyed first —
  // a DurableTable detaches its WAL hook from a still-live table.
  std::vector<std::unique_ptr<DurableTable>> durable_tables_;
  std::vector<std::unique_ptr<DurableShardedTable>> durable_sharded_tables_;
};

}  // namespace vstore

#endif  // VSTORE_QUERY_CATALOG_H_
