#ifndef VSTORE_QUERY_QUERY_STORE_H_
#define VSTORE_QUERY_QUERY_STORE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/metrics.h"
#include "query/logical_plan.h"

namespace vstore {

// Plan-shape fingerprinting and per-shape execution statistics — the
// engine's Query Store. QueryExecutor::Execute hashes the optimized
// logical plan's *shape* (operator kinds, tables, key/column names,
// aggregate functions; literals excluded), so "the same query with
// different constants" folds into one fingerprint. Per-fingerprint
// aggregates (executions, latency extrema, a log2 latency histogram for
// approximate quantiles, rows and per-operator counters) are queryable as
// sys.query_stats and renderable with TopQueriesReport().

// Canonical structural hash of a plan. Stable across runs (built on
// Hash64/HashInt64, which are deterministic) and invariant to literal
// values: predicate constants, IN lists, LIKE prefixes, and LIMIT counts
// do not contribute.
uint64_t PlanFingerprint(const LogicalPlan& plan);

// Compact one-line rendering of the plan shape, e.g.
// "Aggregate(Filter(Scan(lineitem)))" — the human-readable companion of
// the fingerprint.
std::string PlanShapeSummary(const LogicalPlan& plan);

// True when any scan in the tree targets a sys.* view. Such queries are
// excluded from Query Store recording: observing the store must not grow
// the store.
bool PlanReferencesSystemView(const LogicalPlan& plan);

class QueryStore {
 public:
  // One recorded execution (the bounded ring's element).
  struct Execution {
    uint64_t fingerprint = 0;
    int64_t elapsed_us = 0;
    int64_t rows_returned = 0;
  };

  // Per-execution operator counters folded into the fingerprint entry.
  struct ExecutionCounters {
    int64_t rows_returned = 0;
    int64_t segments_scanned = 0;
    int64_t segments_eliminated = 0;
    int64_t bloom_rows_dropped = 0;
    int64_t spill_partitions = 0;
    int64_t rows_spilled = 0;  // build + probe rows spilled
    // Memory attribution from the per-query tracker. Folding takes the max
    // of peak_mem_bytes (a fingerprint's high-water mark across runs) and
    // sums spill_bytes.
    int64_t peak_mem_bytes = 0;
    int64_t spill_bytes = 0;
    // Wait-time breakdown from the span tracer (stall composition per
    // plan shape, not just latency): time blocked at each of the four
    // instrumented contention points.
    int64_t wait_queue_us = 0;  // exchange bounded-queue blocking
    int64_t wait_fsync_us = 0;  // WAL group-commit fsync waits
    int64_t wait_lock_us = 0;   // table/shard mutex acquisition
    int64_t wait_reorg_us = 0;  // reorg-install conflicts
  };

  // Snapshot of one fingerprint's aggregates. Quantiles come from
  // Histogram::ApproxQuantile over the entry's latency histogram.
  struct FingerprintStats {
    uint64_t fingerprint = 0;
    std::string plan_summary;
    int64_t executions = 0;
    int64_t total_us = 0;
    int64_t min_us = 0;
    int64_t max_us = 0;
    int64_t last_us = 0;
    int64_t p50_us = 0;
    int64_t p95_us = 0;
    int64_t p99_us = 0;
    ExecutionCounters counters;
  };

  explicit QueryStore(int64_t ring_capacity = 4096,
                      int64_t max_fingerprints = 1024);
  VSTORE_DISALLOW_COPY_AND_ASSIGN(QueryStore);

  // The process-global store every QueryExecutor records into.
  static QueryStore& Global();

  // Fingerprints `plan` and folds one execution in. New fingerprints past
  // the cap are dropped (counted, never resized — the store must stay
  // bounded under plan-shape churn).
  void Record(const LogicalPlan& plan, int64_t elapsed_us,
              const ExecutionCounters& counters);

  // All fingerprint aggregates, sorted by total latency descending.
  std::vector<FingerprintStats> Snapshot() const;

  // The most recent executions, oldest first (bounded by ring capacity).
  std::vector<Execution> RecentExecutions() const;

  // Fingerprints discarded because the store was full.
  int64_t dropped_fingerprints() const;

  // Human-readable top-N by total latency.
  std::string TopQueriesReport(int64_t top_n = 10) const;

  // JSON array of the top-N fingerprints by total latency (bench export).
  std::string TopFingerprintsJson(int64_t top_n = 5) const;

  void ResetForTesting();

 private:
  struct Entry {
    std::string plan_summary;
    int64_t executions = 0;
    int64_t total_us = 0;
    int64_t min_us = 0;
    int64_t max_us = 0;
    int64_t last_us = 0;
    ExecutionCounters counters;
    // Latency distribution in microseconds; private (not in the registry —
    // fingerprints are unbounded-cardinality labels).
    std::unique_ptr<Histogram> latency_us;
  };

  mutable std::mutex mu_;
  const int64_t ring_capacity_;
  const int64_t max_fingerprints_;
  std::deque<Execution> ring_;
  std::map<uint64_t, Entry> entries_;
  int64_t dropped_fingerprints_ = 0;
};

}  // namespace vstore

#endif  // VSTORE_QUERY_QUERY_STORE_H_
