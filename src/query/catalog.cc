#include "query/catalog.h"

#include <cstdio>

#include "common/memory_tracker.h"
#include "common/metrics.h"
#include "query/system_views.h"

namespace vstore {

namespace {

void AppendLine(std::string* out, const char* key, int64_t value) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "  %-22s %lld\n", key,
                static_cast<long long>(value));
  *out += buf;
}

}  // namespace

Catalog::Catalog() { RegisterBuiltinSystemViews(this); }

Catalog::~Catalog() = default;

const Schema& Catalog::Entry::schema() const {
  if (column_store != nullptr) return column_store->schema();
  if (row_store != nullptr) return row_store->schema();
  if (sharded_table != nullptr) return sharded_table->schema();
  return system_view->schema();
}

Status Catalog::AddColumnStore(std::unique_ptr<ColumnStoreTable> table) {
  if (IsSystemViewName(table->name())) {
    return Status::InvalidArgument("the sys. namespace is reserved: " +
                                   table->name());
  }
  Entry& entry = entries_[table->name()];
  if (entry.sharded_table != nullptr) {
    return Status::AlreadyExists("sharded table already registered: " +
                                 table->name());
  }
  if (entry.column_store != nullptr) {
    return Status::AlreadyExists("column store already registered: " +
                                 table->name());
  }
  if (entry.row_store != nullptr &&
      !entry.row_store->schema().Equals(table->schema())) {
    return Status::InvalidArgument(
        "schema mismatch between representations of " + table->name());
  }
  entry.column_store = table.get();
  column_stores_.push_back(std::move(table));
  return Status::OK();
}

Status Catalog::AddRowStore(std::unique_ptr<RowStoreTable> table) {
  if (IsSystemViewName(table->name())) {
    return Status::InvalidArgument("the sys. namespace is reserved: " +
                                   table->name());
  }
  Entry& entry = entries_[table->name()];
  if (entry.sharded_table != nullptr) {
    return Status::AlreadyExists("sharded table already registered: " +
                                 table->name());
  }
  if (entry.row_store != nullptr) {
    return Status::AlreadyExists("row store already registered: " +
                                 table->name());
  }
  if (entry.column_store != nullptr &&
      !entry.column_store->schema().Equals(table->schema())) {
    return Status::InvalidArgument(
        "schema mismatch between representations of " + table->name());
  }
  entry.row_store = table.get();
  row_stores_.push_back(std::move(table));
  return Status::OK();
}

Status Catalog::AddShardedTable(std::unique_ptr<ShardedTable> table) {
  if (IsSystemViewName(table->name())) {
    return Status::InvalidArgument("the sys. namespace is reserved: " +
                                   table->name());
  }
  auto it = entries_.find(table->name());
  if (it != entries_.end()) {
    return Status::AlreadyExists("table already registered: " + table->name());
  }
  entries_[table->name()].sharded_table = table.get();
  sharded_tables_.push_back(std::move(table));
  return Status::OK();
}

Status Catalog::AddDurableColumnStore(std::unique_ptr<ColumnStoreTable> table,
                                      std::unique_ptr<DurableTable> durable) {
  if (durable->table() != table.get()) {
    return Status::InvalidArgument(
        "durability attachment belongs to a different table: " +
        table->name());
  }
  const std::string name = table->name();
  VSTORE_RETURN_IF_ERROR(AddColumnStore(std::move(table)));
  entries_[name].durable = durable.get();
  durable_tables_.push_back(std::move(durable));
  return Status::OK();
}

Status Catalog::AddDurableShardedTable(
    std::unique_ptr<DurableShardedTable> table) {
  ShardedTable* sharded = table->table();
  if (IsSystemViewName(sharded->name())) {
    return Status::InvalidArgument("the sys. namespace is reserved: " +
                                   sharded->name());
  }
  auto it = entries_.find(sharded->name());
  if (it != entries_.end()) {
    return Status::AlreadyExists("table already registered: " +
                                 sharded->name());
  }
  Entry& entry = entries_[sharded->name()];
  entry.sharded_table = sharded;
  entry.durable_sharded = table.get();
  durable_sharded_tables_.push_back(std::move(table));
  return Status::OK();
}

Status Catalog::RegisterSystemView(std::unique_ptr<SystemViewProvider> view) {
  const std::string& name = view->name();
  if (!IsSystemViewName(name)) {
    return Status::InvalidArgument("system view names must start with sys.: " +
                                   name);
  }
  Entry& entry = system_entries_[name];
  if (entry.system_view != nullptr) {
    return Status::AlreadyExists("system view already registered: " + name);
  }
  entry.system_view = view.get();
  system_views_.push_back(std::move(view));
  return Status::OK();
}

const Catalog::Entry* Catalog::Find(const std::string& name) const {
  auto it = entries_.find(name);
  if (it != entries_.end()) return &it->second;
  auto sys_it = system_entries_.find(name);
  return sys_it == system_entries_.end() ? nullptr : &sys_it->second;
}

Result<const Catalog::Entry*> Catalog::FindOrError(
    const std::string& name) const {
  const Entry* entry = Find(name);
  if (entry == nullptr) return Status::NotFound("unknown table: " + name);
  return entry;
}

ColumnStoreTable* Catalog::GetColumnStore(const std::string& name) const {
  const Entry* entry = Find(name);
  return entry == nullptr ? nullptr : entry->column_store;
}

RowStoreTable* Catalog::GetRowStore(const std::string& name) const {
  const Entry* entry = Find(name);
  return entry == nullptr ? nullptr : entry->row_store;
}

ShardedTable* Catalog::GetShardedTable(const std::string& name) const {
  const Entry* entry = Find(name);
  return entry == nullptr ? nullptr : entry->sharded_table;
}

std::string Catalog::StatsReport() const {
  std::string out = "== tables ==\n";
  for (const auto& [name, entry] : entries_) {
    out += name + ":\n";
    if (entry.column_store != nullptr) {
      const ColumnStoreTable* cs = entry.column_store;
      cs->RefreshStorageGauges();
      TableSnapshot snap = cs->Snapshot();
      ColumnStoreTable::SizeBreakdown sizes = cs->Sizes();
      AppendLine(&out, "rows", snap->num_rows());
      AppendLine(&out, "delta_rows", snap->num_delta_rows());
      AppendLine(&out, "deleted_rows", snap->num_deleted_rows());
      AppendLine(&out, "row_groups", snap->num_row_groups());
      AppendLine(&out, "delta_stores", snap->num_delta_stores());
      AppendLine(&out, "segment_bytes", sizes.segment_bytes);
      AppendLine(&out, "dictionary_bytes", sizes.dictionary_bytes);
      AppendLine(&out, "delete_bitmap_bytes", sizes.delete_bitmap_bytes);
      AppendLine(&out, "delta_store_bytes", sizes.delta_store_bytes);
      AppendLine(&out, "total_bytes", sizes.Total());
    }
    if (entry.row_store != nullptr) {
      AppendLine(&out, "row_store_rows", entry.row_store->num_rows());
    }
    if (entry.sharded_table != nullptr) {
      // Aggregate across all shards (each shard's numbers are also
      // published per shard under {table=,shard=} metric labels). Reads
      // one pinned snapshot per shard so row counts are internally
      // consistent per shard, like the unsharded branch above.
      const ShardedTable* st = entry.sharded_table;
      st->RefreshStorageGauges();
      std::vector<TableSnapshot> snaps = st->SnapshotAll();
      int64_t rows = 0, delta_rows = 0, deleted_rows = 0;
      int64_t row_groups = 0, delta_stores = 0;
      for (const TableSnapshot& snap : snaps) {
        rows += snap->num_rows();
        delta_rows += snap->num_delta_rows();
        deleted_rows += snap->num_deleted_rows();
        row_groups += snap->num_row_groups();
        delta_stores += snap->num_delta_stores();
      }
      ColumnStoreTable::SizeBreakdown sizes = st->Sizes();
      AppendLine(&out, "shards", st->num_shards());
      AppendLine(&out, "rows", rows);
      AppendLine(&out, "delta_rows", delta_rows);
      AppendLine(&out, "deleted_rows", deleted_rows);
      AppendLine(&out, "row_groups", row_groups);
      AppendLine(&out, "delta_stores", delta_stores);
      AppendLine(&out, "segment_bytes", sizes.segment_bytes);
      AppendLine(&out, "dictionary_bytes", sizes.dictionary_bytes);
      AppendLine(&out, "delete_bitmap_bytes", sizes.delete_bitmap_bytes);
      AppendLine(&out, "delta_store_bytes", sizes.delta_store_bytes);
      AppendLine(&out, "total_bytes", sizes.Total());
    }
  }
  // Publish tracker/RSS/mapped gauges so the metrics dump below carries
  // fresh vstore_mem_bytes{category=...} values.
  PublishMemoryGauges();
  out += "\n== metrics ==\n";
  out += MetricsToText();
  return out;
}

}  // namespace vstore
