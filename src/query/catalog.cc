#include "query/catalog.h"

namespace vstore {

Status Catalog::AddColumnStore(std::unique_ptr<ColumnStoreTable> table) {
  Entry& entry = entries_[table->name()];
  if (entry.column_store != nullptr) {
    return Status::AlreadyExists("column store already registered: " +
                                 table->name());
  }
  if (entry.row_store != nullptr &&
      !entry.row_store->schema().Equals(table->schema())) {
    return Status::InvalidArgument(
        "schema mismatch between representations of " + table->name());
  }
  entry.column_store = table.get();
  column_stores_.push_back(std::move(table));
  return Status::OK();
}

Status Catalog::AddRowStore(std::unique_ptr<RowStoreTable> table) {
  Entry& entry = entries_[table->name()];
  if (entry.row_store != nullptr) {
    return Status::AlreadyExists("row store already registered: " +
                                 table->name());
  }
  if (entry.column_store != nullptr &&
      !entry.column_store->schema().Equals(table->schema())) {
    return Status::InvalidArgument(
        "schema mismatch between representations of " + table->name());
  }
  entry.row_store = table.get();
  row_stores_.push_back(std::move(table));
  return Status::OK();
}

const Catalog::Entry* Catalog::Find(const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

Result<const Catalog::Entry*> Catalog::FindOrError(
    const std::string& name) const {
  const Entry* entry = Find(name);
  if (entry == nullptr) return Status::NotFound("unknown table: " + name);
  return entry;
}

ColumnStoreTable* Catalog::GetColumnStore(const std::string& name) const {
  const Entry* entry = Find(name);
  return entry == nullptr ? nullptr : entry->column_store;
}

RowStoreTable* Catalog::GetRowStore(const std::string& name) const {
  const Entry* entry = Find(name);
  return entry == nullptr ? nullptr : entry->row_store;
}

}  // namespace vstore
