#ifndef VSTORE_QUERY_OPTIMIZER_H_
#define VSTORE_QUERY_OPTIMIZER_H_

#include "query/logical_plan.h"

namespace vstore {

// Rule-based optimizer implementing the paper's batch-plan rewrites (§6):
//   1. Predicate pushdown — sargable conjuncts (column op literal) move
//      into column store scans where they drive segment elimination;
//      single-side conjuncts sink below joins.
//   2. Star-join reordering — chains of inner joins over one fact input
//      are reordered so the smallest (post-filter) build side joins first.
//   3. Bitmap (Bloom) filter placement — selective inner/semi builds push
//      a Bloom filter onto the probe-side scan column.
struct OptimizerOptions {
  bool pushdown = true;
  bool join_reorder = true;
  bool bloom_filters = true;
  // Column pruning: scans decode only the columns the plan above them
  // consumes — the core advantage of columnar storage.
  bool column_pruning = true;
  // Builds estimated larger than this do not get a Bloom filter (the filter
  // would pass nearly everything).
  double bloom_max_build_rows = 4e6;
};

// Returns an optimized copy; the input plan is not modified.
PlanPtr Optimize(const Catalog& catalog, const PlanPtr& plan,
                 const OptimizerOptions& options);

// Crude cardinality estimate used by reordering and bloom placement.
double EstimateRows(const Catalog& catalog, const PlanPtr& plan);

// Deep-copies plan nodes (expressions are shared, they are immutable).
PlanPtr ClonePlan(const PlanPtr& plan);

}  // namespace vstore

#endif  // VSTORE_QUERY_OPTIMIZER_H_
