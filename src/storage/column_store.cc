#include "storage/column_store.h"

#include <algorithm>

namespace vstore {

ColumnStoreTable::ColumnStoreTable(std::string name, Schema schema,
                                   Options options)
    : name_(std::move(name)), schema_(std::move(schema)), options_(options) {
  primary_dicts_.resize(static_cast<size_t>(schema_.num_columns()));
  for (int c = 0; c < schema_.num_columns(); ++c) {
    if (PhysicalTypeOf(schema_.field(c).type) == PhysicalType::kString) {
      primary_dicts_[static_cast<size_t>(c)] =
          std::make_shared<StringDictionary>();
    }
  }
}

Status ColumnStoreTable::AppendRowGroup(const TableData& data, int64_t begin,
                                        int64_t end) {
  RowGroupBuilder::Options rg_options;
  rg_options.primary_dict_capacity = options_.primary_dict_capacity;
  rg_options.optimize_row_order = options_.optimize_row_order;
  rg_options.archival = options_.archival;
  int64_t id = static_cast<int64_t>(row_groups_.size());
  auto group =
      RowGroupBuilder::Build(data, begin, end, id, primary_dicts_, rg_options);
  delete_bitmaps_.emplace_back(group->num_rows());
  row_groups_.push_back(std::move(group));
  return Status::OK();
}

Status ColumnStoreTable::BulkLoad(const TableData& data) {
  if (!data.schema().Equals(schema_)) {
    return Status::InvalidArgument("bulk load schema mismatch for table " +
                                   name_);
  }
  std::unique_lock lock(mutex_);
  const int64_t n = data.num_rows();
  int64_t pos = 0;
  while (n - pos >= options_.row_group_size) {
    VSTORE_RETURN_IF_ERROR(
        AppendRowGroup(data, pos, pos + options_.row_group_size));
    pos += options_.row_group_size;
  }
  int64_t tail = n - pos;
  if (tail == 0) return Status::OK();
  if (tail >= options_.min_compress_rows) {
    return AppendRowGroup(data, pos, n);
  }
  // Small tail: trickle into the delta store, as the paper's bulk insert
  // does for undersized batches.
  for (int64_t i = pos; i < n; ++i) {
    RowId unused;
    VSTORE_RETURN_IF_ERROR(InsertLocked(data.GetRow(i), &unused));
  }
  return Status::OK();
}

DeltaStore* ColumnStoreTable::OpenDeltaStore() {
  if (!delta_stores_.empty() && !delta_stores_.back()->closed() &&
      delta_stores_.back()->num_rows() < options_.row_group_size) {
    return delta_stores_.back().get();
  }
  if (!delta_stores_.empty() && !delta_stores_.back()->closed()) {
    delta_stores_.back()->Close();
  }
  delta_stores_.push_back(
      std::make_unique<DeltaStore>(&schema_, next_delta_id_++));
  return delta_stores_.back().get();
}

Status ColumnStoreTable::InsertLocked(const std::vector<Value>& row,
                                      RowId* id) {
  DeltaStore* store = OpenDeltaStore();
  RowId rowid = MakeDeltaRowId(next_delta_seq_++);
  VSTORE_RETURN_IF_ERROR(store->Insert(rowid, row));
  if (store->num_rows() >= options_.row_group_size) store->Close();
  *id = rowid;
  return Status::OK();
}

Result<RowId> ColumnStoreTable::Insert(const std::vector<Value>& row) {
  std::unique_lock lock(mutex_);
  RowId id;
  VSTORE_RETURN_IF_ERROR(InsertLocked(row, &id));
  return id;
}

Status ColumnStoreTable::Delete(RowId id) {
  std::unique_lock lock(mutex_);
  if (IsDeltaRowId(id)) {
    for (auto& store : delta_stores_) {
      if (id < store->min_rowid() || id > store->max_rowid()) continue;
      if (store->Delete(id)) return Status::OK();
    }
    return Status::NotFound("delta rowid not found");
  }
  int64_t group = RowIdGroup(id);
  int64_t offset = RowIdOffset(id);
  if (group >= num_row_groups() ||
      offset >= row_groups_[static_cast<size_t>(group)]->num_rows()) {
    return Status::NotFound("rowid out of range");
  }
  if (!delete_bitmaps_[static_cast<size_t>(group)].MarkDeleted(offset)) {
    return Status::NotFound("row already deleted");
  }
  return Status::OK();
}

Result<RowId> ColumnStoreTable::Update(RowId id, const std::vector<Value>& row) {
  // Updates are modeled as delete + insert, exactly as the paper describes.
  VSTORE_RETURN_IF_ERROR(Delete(id));
  return Insert(row);
}

Status ColumnStoreTable::GetRow(RowId id, std::vector<Value>* row) const {
  std::shared_lock lock(mutex_);
  if (IsDeltaRowId(id)) {
    for (const auto& store : delta_stores_) {
      if (id < store->min_rowid() || id > store->max_rowid()) continue;
      if (store->Get(id, row).ok()) return Status::OK();
    }
    return Status::NotFound("delta rowid not found");
  }
  int64_t group = RowIdGroup(id);
  int64_t offset = RowIdOffset(id);
  if (group >= num_row_groups() ||
      offset >= row_groups_[static_cast<size_t>(group)]->num_rows()) {
    return Status::NotFound("rowid out of range");
  }
  if (delete_bitmaps_[static_cast<size_t>(group)].IsDeleted(offset)) {
    return Status::NotFound("row deleted");
  }
  const RowGroup& rg = *row_groups_[static_cast<size_t>(group)];
  row->clear();
  row->reserve(static_cast<size_t>(rg.num_columns()));
  for (int c = 0; c < rg.num_columns(); ++c) {
    row->push_back(rg.column(c).GetValue(offset));
  }
  return Status::OK();
}

int64_t ColumnStoreTable::num_rows() const {
  std::shared_lock lock(mutex_);
  int64_t total = 0;
  for (const auto& rg : row_groups_) total += rg->num_rows();
  for (const auto& bm : delete_bitmaps_) total -= bm.deleted_count();
  for (const auto& ds : delta_stores_) total += ds->num_rows();
  return total;
}

int64_t ColumnStoreTable::num_deleted_rows() const {
  std::shared_lock lock(mutex_);
  int64_t total = 0;
  for (const auto& bm : delete_bitmaps_) total += bm.deleted_count();
  return total;
}

int64_t ColumnStoreTable::num_delta_rows() const {
  std::shared_lock lock(mutex_);
  int64_t total = 0;
  for (const auto& ds : delta_stores_) total += ds->num_rows();
  return total;
}

Status ColumnStoreTable::CompressOneDeltaStore(size_t index) {
  DeltaStore& store = *delta_stores_[index];
  TableData staged(schema_);
  VSTORE_RETURN_IF_ERROR(store.ForEach(
      [&](uint64_t /*rowid*/, const std::vector<Value>& row) {
        staged.AppendRow(row);
      }));
  if (staged.num_rows() > 0) {
    VSTORE_RETURN_IF_ERROR(AppendRowGroup(staged, 0, staged.num_rows()));
  }
  delta_stores_.erase(delta_stores_.begin() + static_cast<long>(index));
  return Status::OK();
}

Result<int64_t> ColumnStoreTable::CompressDeltaStores(bool include_open) {
  std::unique_lock lock(mutex_);
  int64_t moved = 0;
  for (size_t i = 0; i < delta_stores_.size();) {
    bool eligible = delta_stores_[i]->closed() ||
                    (include_open && delta_stores_[i]->num_rows() > 0);
    if (!eligible) {
      ++i;
      continue;
    }
    VSTORE_RETURN_IF_ERROR(CompressOneDeltaStore(i));
    ++moved;
  }
  return moved;
}

Result<int64_t> ColumnStoreTable::RemoveDeletedRows(double threshold) {
  std::unique_lock lock(mutex_);
  int64_t rebuilt = 0;
  for (size_t g = 0; g < row_groups_.size(); ++g) {
    const RowGroup& rg = *row_groups_[g];
    DeleteBitmap& bm = delete_bitmaps_[g];
    if (rg.num_rows() == 0) continue;
    double fraction =
        static_cast<double>(bm.deleted_count()) / static_cast<double>(rg.num_rows());
    if (fraction < threshold || bm.deleted_count() == 0) continue;

    // Materialize live rows and rebuild the group in place.
    TableData staged(schema_);
    for (int64_t r = 0; r < rg.num_rows(); ++r) {
      if (bm.IsDeleted(r)) continue;
      std::vector<Value> row;
      row.reserve(static_cast<size_t>(rg.num_columns()));
      for (int c = 0; c < rg.num_columns(); ++c) {
        row.push_back(rg.column(c).GetValue(r));
      }
      staged.AppendRow(row);
    }
    RowGroupBuilder::Options rg_options;
    rg_options.primary_dict_capacity = options_.primary_dict_capacity;
    rg_options.optimize_row_order = options_.optimize_row_order;
    rg_options.archival = options_.archival;
    auto rebuilt_group =
        RowGroupBuilder::Build(staged, 0, staged.num_rows(),
                               static_cast<int64_t>(g), primary_dicts_,
                               rg_options);
    delete_bitmaps_[g] = DeleteBitmap(rebuilt_group->num_rows());
    row_groups_[g] = std::move(rebuilt_group);
    ++rebuilt;
  }
  return rebuilt;
}

Status ColumnStoreTable::Archive() {
  std::unique_lock lock(mutex_);
  for (auto& rg : row_groups_) {
    VSTORE_RETURN_IF_ERROR(rg->Archive());
  }
  return Status::OK();
}

void ColumnStoreTable::EvictAll() const {
  std::shared_lock lock(mutex_);
  for (const auto& rg : row_groups_) rg->Evict();
}

ColumnStoreTable::SizeBreakdown ColumnStoreTable::Sizes() const {
  std::shared_lock lock(mutex_);
  SizeBreakdown sizes;
  for (const auto& rg : row_groups_) {
    sizes.segment_bytes += rg->EncodedBytes();
    sizes.archived_segment_bytes += rg->ArchivedBytes();
  }
  for (const auto& dict : primary_dicts_) {
    if (dict == nullptr) continue;
    sizes.dictionary_bytes += dict->MemoryBytes();
    // Dictionaries stay resident for reads; their archived size reflects
    // the stored (compressed) representation.
    sizes.archived_dictionary_bytes +=
        sizes.archived_segment_bytes > 0 ? dict->ArchivedBytes()
                                         : dict->MemoryBytes();
  }
  for (const auto& bm : delete_bitmaps_) {
    sizes.delete_bitmap_bytes += bm.MemoryBytes();
  }
  for (const auto& ds : delta_stores_) {
    sizes.delta_store_bytes += ds->MemoryBytes();
  }
  return sizes;
}

}  // namespace vstore
