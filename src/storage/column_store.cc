#include "storage/column_store.h"

#include <algorithm>

namespace vstore {

// --- TableVersion -------------------------------------------------------

int64_t TableVersion::num_rows() const {
  int64_t total = 0;
  for (const auto& rg : row_groups_) total += rg->num_rows();
  for (const auto& bm : delete_bitmaps_) total -= bm->deleted_count();
  for (const auto& ds : delta_stores_) total += ds->num_rows();
  return total;
}

int64_t TableVersion::num_deleted_rows() const {
  int64_t total = 0;
  for (const auto& bm : delete_bitmaps_) total += bm->deleted_count();
  return total;
}

int64_t TableVersion::num_delta_rows() const {
  int64_t total = 0;
  for (const auto& ds : delta_stores_) total += ds->num_rows();
  return total;
}

// --- ColumnStoreTable ---------------------------------------------------

namespace {

ColumnStoreTable::TableMetrics ResolveTableMetrics(const std::string& table,
                                                   const std::string& shard) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  // Unsharded tables keep the historical one-level {table=} families;
  // shards register two-level {table=,shard=} instances.
  auto counter = [&](const char* name) {
    return shard.empty() ? registry.GetCounter(name, "table", table)
                         : registry.GetCounter(name, "table", table, "shard",
                                               shard);
  };
  auto gauge = [&](const char* name) {
    return shard.empty()
               ? registry.GetGauge(name, "table", table)
               : registry.GetGauge(name, "table", table, "shard", shard);
  };
  ColumnStoreTable::TableMetrics m;
  m.rows_inserted = counter("vstore_table_rows_inserted_total");
  m.rows_deleted = counter("vstore_table_rows_deleted_total");
  m.rows_updated = counter("vstore_table_rows_updated_total");
  m.reorg_installs = counter("vstore_table_reorg_installs_total");
  m.reorg_conflicts = counter("vstore_table_reorg_conflicts_total");
  m.delta_stores_compressed =
      counter("vstore_table_delta_stores_compressed_total");
  m.row_groups_rebuilt = counter("vstore_table_row_groups_rebuilt_total");
  m.delta_rows = gauge("vstore_table_delta_rows");
  m.delta_bytes = gauge("vstore_table_delta_bytes");
  m.delta_stores = gauge("vstore_table_delta_stores");
  m.row_groups = gauge("vstore_table_row_groups");
  m.deleted_rows = gauge("vstore_table_deleted_rows");
  m.segment_bytes = gauge("vstore_table_segment_bytes");
  m.dictionary_bytes = gauge("vstore_table_dictionary_bytes");
  m.delete_bitmap_bytes = gauge("vstore_table_delete_bitmap_bytes");
  return m;
}

}  // namespace

ColumnStoreTable::ColumnStoreTable(std::string name, Schema schema,
                                   Options options)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      options_(std::move(options)),
      metric_table_label_(options_.metric_table.empty() ? name_
                                                        : options_.metric_table),
      metrics_(
          ResolveTableMetrics(metric_table_label_, options_.metric_shard)),
      lock_waits_(GetWaitStats(metric_table_label_, WaitPoint::kLock)),
      reorg_waits_(
          GetWaitStats(metric_table_label_, WaitPoint::kReorgConflict)) {
  mem_ = std::make_unique<MemoryTracker>(
      "table:" + metric_table_label_ +
          (options_.metric_shard.empty() ? "" : ":" + options_.metric_shard),
      "table", MemoryTracker::Process(), metric_table_label_,
      options_.metric_shard);
  mem_segments_ = std::make_unique<MemoryTracker>(
      "segments", "segments", mem_.get(), metric_table_label_,
      options_.metric_shard);
  mem_dicts_ = std::make_unique<MemoryTracker>(
      "dictionaries", "dictionary", mem_.get(), metric_table_label_,
      options_.metric_shard);
  mem_bitmaps_ = std::make_unique<MemoryTracker>(
      "delete_bitmaps", "bitmap", mem_.get(), metric_table_label_,
      options_.metric_shard);
  mem_delta_ = std::make_unique<MemoryTracker>(
      "delta_stores", "delta", mem_.get(), metric_table_label_,
      options_.metric_shard);
  primary_dicts_.resize(static_cast<size_t>(schema_.num_columns()));
  for (int c = 0; c < schema_.num_columns(); ++c) {
    if (PhysicalTypeOf(schema_.field(c).type) == PhysicalType::kString) {
      primary_dicts_[static_cast<size_t>(c)] =
          std::make_shared<StringDictionary>();
    }
  }
  version_ = std::make_shared<TableVersion>();
}

std::unique_lock<std::shared_mutex> ColumnStoreTable::LockExclusive() const {
  std::unique_lock<std::shared_mutex> lock(mutex_, std::try_to_lock);
  if (!lock.owns_lock()) {
    WaitEventScope wait(lock_waits_, WaitPoint::kLock, metric_table_label_);
    lock.lock();
  }
  return lock;
}

std::shared_lock<std::shared_mutex> ColumnStoreTable::LockShared() const {
  std::shared_lock<std::shared_mutex> lock(mutex_, std::try_to_lock);
  if (!lock.owns_lock()) {
    WaitEventScope wait(lock_waits_, WaitPoint::kLock, metric_table_label_);
    lock.lock();
  }
  return lock;
}

TableSnapshot ColumnStoreTable::Snapshot() const {
  std::shared_lock<std::shared_mutex> lock = LockShared();
  version_->snapshotted_.store(true, std::memory_order_relaxed);
  return version_;
}

TableVersion* ColumnStoreTable::MutableVersion() {
  if (!version_->snapshotted_.load(std::memory_order_relaxed)) {
    return version_.get();
  }
  auto fork = std::make_shared<TableVersion>();
  fork->row_groups_ = version_->row_groups_;
  fork->generations_ = version_->generations_;
  fork->delete_bitmaps_ = version_->delete_bitmaps_;
  fork->delta_stores_ = version_->delta_stores_;
  // Everything is shared with the snapshotted predecessor until cloned.
  fork->bitmap_owned_.assign(fork->delete_bitmaps_.size(), false);
  fork->store_owned_.assign(fork->delta_stores_.size(), false);
  fork->sequence_ = version_->sequence_ + 1;
  version_ = std::move(fork);
  return version_.get();
}

DeleteBitmap* ColumnStoreTable::MutableBitmap(TableVersion* v, int64_t group) {
  size_t g = static_cast<size_t>(group);
  if (!v->bitmap_owned_[g]) {
    v->delete_bitmaps_[g] = std::make_shared<DeleteBitmap>(*v->delete_bitmaps_[g]);
    v->bitmap_owned_[g] = true;
  }
  return v->delete_bitmaps_[g].get();
}

DeltaStore* ColumnStoreTable::MutableDeltaStore(TableVersion* v,
                                                int64_t index) {
  size_t i = static_cast<size_t>(index);
  if (!v->store_owned_[i]) {
    v->delta_stores_[i] = std::shared_ptr<DeltaStore>(v->delta_stores_[i]->Clone());
    v->store_owned_[i] = true;
  }
  return v->delta_stores_[i].get();
}

std::shared_ptr<RowGroup> ColumnStoreTable::BuildRowGroup(
    const TableData& data, int64_t begin, int64_t end, int64_t id) {
  RowGroupBuilder::Options rg_options;
  rg_options.primary_dict_capacity = options_.primary_dict_capacity;
  rg_options.optimize_row_order = options_.optimize_row_order;
  rg_options.archival = options_.archival;
  return std::shared_ptr<RowGroup>(
      RowGroupBuilder::Build(data, begin, end, id, primary_dicts_, rg_options));
}

Status ColumnStoreTable::BulkLoad(const TableData& data) {
  if (!data.schema().Equals(schema_)) {
    return Status::InvalidArgument("bulk load schema mismatch for table " +
                                   name_);
  }
  std::lock_guard<std::mutex> reorg(reorg_mutex_);
  // Group count is stable here: only reorg operations (serialized by
  // reorg_mutex_) append or replace row groups.
  int64_t base;
  {
    auto lock = LockShared();
    base = version_->num_row_groups();
  }
  // Build compressed groups with no table lock held.
  const int64_t n = data.num_rows();
  std::vector<std::shared_ptr<RowGroup>> built;
  int64_t pos = 0;
  while (n - pos >= options_.row_group_size) {
    built.push_back(BuildRowGroup(data, pos, pos + options_.row_group_size,
                                  base + static_cast<int64_t>(built.size())));
    pos += options_.row_group_size;
  }
  int64_t tail = n - pos;
  if (tail >= options_.min_compress_rows) {
    built.push_back(
        BuildRowGroup(data, pos, n, base + static_cast<int64_t>(built.size())));
    pos = n;
  }

  {
    auto lock = LockExclusive();
    TableVersion* v = MutableVersion();
    for (auto& group : built) {
      metrics_.rows_inserted->Increment(group->num_rows());
      v->delete_bitmaps_.push_back(
          std::make_shared<DeleteBitmap>(group->num_rows()));
      v->bitmap_owned_.push_back(true);
      v->generations_.push_back(0);
      v->row_groups_.push_back(std::move(group));
    }
    // Small tail: trickle into the delta store, as the paper's bulk insert
    // does for undersized batches. Not WAL-logged: the whole load commits
    // via the synchronous checkpoint below, or not at all.
    for (; pos < n; ++pos) {
      RowId unused;
      VSTORE_RETURN_IF_ERROR(InsertLocked(v, data.GetRow(pos), &unused,
                                          /*log=*/false));
    }
  }
  RefreshStorageGauges();
  if (durability_ != nullptr) {
    VSTORE_RETURN_IF_ERROR(durability_->OnBulkLoad());
  }
  return Status::OK();
}

Status ColumnStoreTable::InsertLocked(TableVersion* v,
                                      const std::vector<Value>& row,
                                      RowId* id, bool log) {
  // Locate the open delta store, creating one if needed.
  size_t idx;
  if (!v->delta_stores_.empty() && !v->delta_stores_.back()->closed() &&
      v->delta_stores_.back()->num_rows() < options_.row_group_size) {
    idx = v->delta_stores_.size() - 1;
  } else {
    if (!v->delta_stores_.empty() && !v->delta_stores_.back()->closed()) {
      MutableDeltaStore(v, static_cast<int64_t>(v->delta_stores_.size() - 1))
          ->Close();
    }
    v->delta_stores_.push_back(
        std::make_shared<DeltaStore>(&schema_, next_delta_id_++));
    v->store_owned_.push_back(true);
    idx = v->delta_stores_.size() - 1;
  }
  DeltaStore* store = MutableDeltaStore(v, static_cast<int64_t>(idx));
  RowId rowid = MakeDeltaRowId(next_delta_seq_++);
  VSTORE_RETURN_IF_ERROR(store->Insert(rowid, row));
  if (store->num_rows() >= options_.row_group_size) store->Close();
  *id = rowid;
  metrics_.rows_inserted->Increment();
  if (log && durability_ != nullptr) {
    VSTORE_RETURN_IF_ERROR(durability_->LogInsert(rowid, row));
  }
  return Status::OK();
}

Result<RowId> ColumnStoreTable::Insert(const std::vector<Value>& row) {
  RowId id;
  {
    auto lock = LockExclusive();
    VSTORE_RETURN_IF_ERROR(InsertLocked(MutableVersion(), row, &id));
  }
  if (durability_ != nullptr) {
    VSTORE_RETURN_IF_ERROR(durability_->Commit());
  }
  return id;
}

Result<std::vector<RowId>> ColumnStoreTable::InsertBatch(
    const std::vector<const std::vector<Value>*>& rows) {
  for (const std::vector<Value>* row : rows) {
    if (row == nullptr ||
        static_cast<int>(row->size()) != schema_.num_columns()) {
      return Status::InvalidArgument("row arity does not match schema");
    }
  }
  std::vector<RowId> ids;
  ids.reserve(rows.size());
  {
    auto lock = LockExclusive();
    TableVersion* v = MutableVersion();
    for (const std::vector<Value>* row : rows) {
      RowId id;
      VSTORE_RETURN_IF_ERROR(InsertLocked(v, *row, &id));
      ids.push_back(id);
    }
  }
  if (durability_ != nullptr) {
    VSTORE_RETURN_IF_ERROR(durability_->Commit());
  }
  return ids;
}

Status ColumnStoreTable::DeleteLocked(TableVersion* v, RowId id, bool log) {
  if (IsDeltaRowId(id)) {
    for (size_t i = 0; i < v->delta_stores_.size(); ++i) {
      const DeltaStore& store = *v->delta_stores_[i];
      if (id < store.min_rowid() || id > store.max_rowid()) continue;
      if (!store.Contains(id)) continue;
      MutableDeltaStore(v, static_cast<int64_t>(i))->Delete(id);
      metrics_.rows_deleted->Increment();
      if (log && durability_ != nullptr) {
        VSTORE_RETURN_IF_ERROR(durability_->LogDelete(id));
      }
      return Status::OK();
    }
    return Status::NotFound("delta rowid not found");
  }
  int64_t group = RowIdGroup(id);
  int64_t offset = RowIdOffset(id);
  if (group >= v->num_row_groups()) {
    return Status::NotFound("rowid out of range");
  }
  if (RowIdGeneration(id) != v->generation(group)) {
    return Status::NotFound("stale rowid: row group was rebuilt");
  }
  if (offset >= v->row_group(group).num_rows()) {
    return Status::NotFound("rowid out of range");
  }
  if (v->delete_bitmap(group).IsDeleted(offset)) {
    return Status::NotFound("row already deleted");
  }
  MutableBitmap(v, group)->MarkDeleted(offset);
  metrics_.rows_deleted->Increment();
  if (log && durability_ != nullptr) {
    VSTORE_RETURN_IF_ERROR(durability_->LogDelete(id));
  }
  return Status::OK();
}

Status ColumnStoreTable::Delete(RowId id) {
  {
    auto lock = LockExclusive();
    VSTORE_RETURN_IF_ERROR(DeleteLocked(MutableVersion(), id));
  }
  if (durability_ != nullptr) {
    VSTORE_RETURN_IF_ERROR(durability_->Commit());
  }
  return Status::OK();
}

Result<RowId> ColumnStoreTable::Update(RowId id, const std::vector<Value>& row) {
  // Updates are modeled as delete + insert, exactly as the paper describes,
  // but applied in one critical section: concurrent readers see either the
  // old row or the new one, never neither.
  if (static_cast<int>(row.size()) != schema_.num_columns()) {
    return Status::InvalidArgument("row arity does not match schema");
  }
  RowId new_id;
  {
    auto lock = LockExclusive();
    TableVersion* v = MutableVersion();
    VSTORE_RETURN_IF_ERROR(DeleteLocked(v, id));
    VSTORE_RETURN_IF_ERROR(InsertLocked(v, row, &new_id));
    metrics_.rows_updated->Increment();
  }
  if (durability_ != nullptr) {
    VSTORE_RETURN_IF_ERROR(durability_->Commit());
  }
  return new_id;
}

Status ColumnStoreTable::GetRow(RowId id, std::vector<Value>* row) const {
  TableSnapshot snap = Snapshot();
  if (IsDeltaRowId(id)) {
    for (int64_t i = 0; i < snap->num_delta_stores(); ++i) {
      const DeltaStore& store = snap->delta_store(i);
      if (id < store.min_rowid() || id > store.max_rowid()) continue;
      if (store.Get(id, row).ok()) return Status::OK();
    }
    return Status::NotFound("delta rowid not found");
  }
  int64_t group = RowIdGroup(id);
  int64_t offset = RowIdOffset(id);
  if (group >= snap->num_row_groups()) {
    return Status::NotFound("rowid out of range");
  }
  if (RowIdGeneration(id) != snap->generation(group)) {
    return Status::NotFound("stale rowid: row group was rebuilt");
  }
  if (offset >= snap->row_group(group).num_rows()) {
    return Status::NotFound("rowid out of range");
  }
  if (snap->delete_bitmap(group).IsDeleted(offset)) {
    return Status::NotFound("row deleted");
  }
  const RowGroup& rg = snap->row_group(group);
  row->clear();
  row->reserve(static_cast<size_t>(rg.num_columns()));
  for (int c = 0; c < rg.num_columns(); ++c) {
    row->push_back(rg.column(c).GetValue(offset));
  }
  return Status::OK();
}

int64_t ColumnStoreTable::num_rows() const { return Snapshot()->num_rows(); }

int64_t ColumnStoreTable::num_deleted_rows() const {
  return Snapshot()->num_deleted_rows();
}

int64_t ColumnStoreTable::num_delta_rows() const {
  return Snapshot()->num_delta_rows();
}

Result<int64_t> ColumnStoreTable::CompressDeltaStores(bool include_open,
                                                      ReorgStats* stats) {
  ScopedTrace trace("compress_delta_stores", "reorg");
  std::lock_guard<std::mutex> reorg(reorg_mutex_);
  TableSnapshot snap = Snapshot();

  // Stage and compress eligible stores with no table lock held. The
  // snapshot pins every source object, so pointer identity at install time
  // is a reliable conflict check.
  struct Compacted {
    const DeltaStore* source;
    std::shared_ptr<RowGroup> group;  // null when the store had no live rows
    int64_t build_start_us = 0;  // per-store build interval: a conflicted
    int64_t build_end_us = 0;    // install retroactively reports it as waste
  };
  std::vector<Compacted> built;
  int64_t base = snap->num_row_groups();
  for (int64_t i = 0; i < snap->num_delta_stores(); ++i) {
    const DeltaStore& store = snap->delta_store(i);
    bool eligible =
        store.closed() || (include_open && store.num_rows() > 0);
    if (!eligible) continue;
    Compacted c;
    c.build_start_us = TraceRing::NowMicros();
    TableData staged(schema_);
    VSTORE_RETURN_IF_ERROR(store.ForEach(
        [&](uint64_t /*rowid*/, const std::vector<Value>& row) {
          staged.AppendRow(row);
        }));
    c.source = &store;
    if (staged.num_rows() > 0) {
      c.group = BuildRowGroup(staged, 0, staged.num_rows(),
                              base + static_cast<int64_t>(built.size()));
    }
    c.build_end_us = TraceRing::NowMicros();
    built.push_back(std::move(c));
  }
  if (built.empty()) return 0;
  if (reorg_hook_for_testing_) reorg_hook_for_testing_();

  int64_t moved = 0;
  int64_t rows_moved = 0;
  int64_t conflicts = 0;
  {
    auto lock = LockExclusive();
    TableVersion* v = MutableVersion();
    std::vector<int64_t> installed_ids;
    for (auto& c : built) {
      size_t idx = 0;
      while (idx < v->delta_stores_.size() &&
             v->delta_stores_[idx].get() != c.source) {
        ++idx;
      }
      if (idx == v->delta_stores_.size()) {
        // The store took writes since the snapshot (copy-on-write replaced
        // it); drop this rebuild and retry it next pass. The build time was
        // pure waste — charge it to the reorg_conflict wait point.
        RecordWaitEvent(reorg_waits_, WaitPoint::kReorgConflict,
                        metric_table_label_, c.build_start_us, c.build_end_us);
        ++conflicts;
        continue;
      }
      installed_ids.push_back(c.source->id());
      v->delta_stores_.erase(v->delta_stores_.begin() +
                             static_cast<long>(idx));
      v->store_owned_.erase(v->store_owned_.begin() + static_cast<long>(idx));
      if (c.group != nullptr) {
        rows_moved += c.group->num_rows();
        v->delete_bitmaps_.push_back(
            std::make_shared<DeleteBitmap>(c.group->num_rows()));
        v->bitmap_owned_.push_back(true);
        v->generations_.push_back(0);
        v->row_groups_.push_back(std::move(c.group));
      }
      ++moved;
    }
    // Logged inside the install critical section so log order matches the
    // serialization order of this install against concurrent DML.
    if (durability_ != nullptr && !installed_ids.empty()) {
      VSTORE_RETURN_IF_ERROR(durability_->LogCompressInstall(installed_ids));
    }
  }
  if (durability_ != nullptr && moved > 0) {
    VSTORE_RETURN_IF_ERROR(durability_->Commit());
  }
  metrics_.delta_stores_compressed->Increment(moved);
  metrics_.reorg_installs->Increment(moved);
  metrics_.reorg_conflicts->Increment(conflicts);
  if (stats != nullptr) {
    stats->installed += moved;
    stats->rows += rows_moved;
    stats->conflicts += conflicts;
  }
  RefreshStorageGauges();
  return moved;
}

Result<int64_t> ColumnStoreTable::RemoveDeletedRows(double threshold,
                                                    ReorgStats* stats) {
  ScopedTrace trace("remove_deleted_rows", "reorg");
  std::lock_guard<std::mutex> reorg(reorg_mutex_);
  TableSnapshot snap = Snapshot();

  struct Rebuilt {
    int64_t g;
    const RowGroup* old_group;
    const DeleteBitmap* old_bitmap;
    std::shared_ptr<RowGroup> group;
    int64_t build_start_us = 0;
    int64_t build_end_us = 0;
  };
  std::vector<Rebuilt> rebuilds;
  for (int64_t g = 0; g < snap->num_row_groups(); ++g) {
    const RowGroup& rg = snap->row_group(g);
    const DeleteBitmap& bm = snap->delete_bitmap(g);
    if (rg.num_rows() == 0) continue;
    double fraction = static_cast<double>(bm.deleted_count()) /
                      static_cast<double>(rg.num_rows());
    if (fraction < threshold || bm.deleted_count() == 0) continue;

    // Materialize live rows and rebuild the group, off-lock.
    int64_t build_start_us = TraceRing::NowMicros();
    TableData staged(schema_);
    for (int64_t r = 0; r < rg.num_rows(); ++r) {
      if (bm.IsDeleted(r)) continue;
      std::vector<Value> row;
      row.reserve(static_cast<size_t>(rg.num_columns()));
      for (int c = 0; c < rg.num_columns(); ++c) {
        row.push_back(rg.column(c).GetValue(r));
      }
      staged.AppendRow(row);
    }
    rebuilds.push_back({g, &rg, &bm,
                        BuildRowGroup(staged, 0, staged.num_rows(), g),
                        build_start_us, TraceRing::NowMicros()});
  }
  if (rebuilds.empty()) return 0;
  if (reorg_hook_for_testing_) reorg_hook_for_testing_();

  int64_t installed = 0;
  int64_t rows_kept = 0;
  int64_t conflicts = 0;
  {
    auto lock = LockExclusive();
    TableVersion* v = MutableVersion();
    std::vector<int64_t> installed_groups;
    for (auto& r : rebuilds) {
      size_t g = static_cast<size_t>(r.g);
      if (v->row_groups_[g].get() != r.old_group ||
          v->delete_bitmaps_[g].get() != r.old_bitmap) {
        // Deletes landed on this group during the rebuild (copy-on-write
        // replaced its bitmap); installing would resurrect them. Retry next
        // pass, charging the wasted rebuild to the reorg_conflict point.
        RecordWaitEvent(reorg_waits_, WaitPoint::kReorgConflict,
                        metric_table_label_, r.build_start_us, r.build_end_us);
        ++conflicts;
        continue;
      }
      v->row_groups_[g] = std::move(r.group);
      v->generations_[g] = (v->generations_[g] + 1) & kRowIdGenerationMask;
      v->delete_bitmaps_[g] =
          std::make_shared<DeleteBitmap>(v->row_groups_[g]->num_rows());
      v->bitmap_owned_[g] = true;
      rows_kept += v->row_groups_[g]->num_rows();
      installed_groups.push_back(r.g);
      ++installed;
    }
    if (durability_ != nullptr && !installed_groups.empty()) {
      VSTORE_RETURN_IF_ERROR(durability_->LogRebuildInstall(installed_groups));
    }
  }
  if (durability_ != nullptr && installed > 0) {
    VSTORE_RETURN_IF_ERROR(durability_->Commit());
  }
  metrics_.row_groups_rebuilt->Increment(installed);
  metrics_.reorg_installs->Increment(installed);
  metrics_.reorg_conflicts->Increment(conflicts);
  if (stats != nullptr) {
    stats->installed += installed;
    stats->rows += rows_kept;
    stats->conflicts += conflicts;
  }
  RefreshStorageGauges();
  return installed;
}

Status ColumnStoreTable::Archive() {
  std::lock_guard<std::mutex> reorg(reorg_mutex_);
  TableSnapshot snap = Snapshot();
  for (const auto& rg : snap->row_groups_) {
    VSTORE_RETURN_IF_ERROR(rg->Archive());
  }
  return Status::OK();
}

void ColumnStoreTable::EvictAll() const {
  TableSnapshot snap = Snapshot();
  for (const auto& rg : snap->row_groups_) rg->Evict();
}

ColumnStoreTable::SizeBreakdown ColumnStoreTable::Sizes() const {
  TableSnapshot snap = Snapshot();
  SizeBreakdown sizes;
  for (const auto& rg : snap->row_groups_) {
    sizes.segment_bytes += rg->EncodedBytes();
    sizes.archived_segment_bytes += rg->ArchivedBytes();
  }
  for (const auto& dict : primary_dicts_) {
    if (dict == nullptr) continue;
    sizes.dictionary_bytes += dict->MemoryBytes();
    // Dictionaries stay resident for reads; their archived size reflects
    // the stored (compressed) representation.
    sizes.archived_dictionary_bytes +=
        sizes.archived_segment_bytes > 0 ? dict->ArchivedBytes()
                                         : dict->MemoryBytes();
  }
  for (const auto& bm : snap->delete_bitmaps_) {
    sizes.delete_bitmap_bytes += bm->MemoryBytes();
  }
  for (const auto& ds : snap->delta_stores_) {
    sizes.delta_store_bytes += ds->MemoryBytes();
  }
  return sizes;
}

void ColumnStoreTable::RefreshStorageGauges() const {
  TableSnapshot snap = Snapshot();
  SizeBreakdown sizes = Sizes();
  metrics_.delta_rows->Set(snap->num_delta_rows());
  metrics_.delta_bytes->Set(sizes.delta_store_bytes);
  metrics_.delta_stores->Set(snap->num_delta_stores());
  metrics_.row_groups->Set(snap->num_row_groups());
  metrics_.deleted_rows->Set(snap->num_deleted_rows());
  metrics_.segment_bytes->Set(sizes.segment_bytes);
  metrics_.dictionary_bytes->Set(sizes.dictionary_bytes);
  metrics_.delete_bitmap_bytes->Set(sizes.delete_bitmap_bytes);
  // Reconcile the storage tracker subtree from the same SizeBreakdown the
  // gauges publish — component trackers are sync'd, never charged inline.
  mem_segments_->SyncLocal(sizes.segment_bytes);
  mem_dicts_->SyncLocal(sizes.dictionary_bytes);
  mem_bitmaps_->SyncLocal(sizes.delete_bitmap_bytes);
  mem_delta_->SyncLocal(sizes.delta_store_bytes);
}

// --- Durability and recovery ---------------------------------------------

void ColumnStoreTable::AttachDurabilityHook(TableDurabilityHook* hook) {
  auto lock = LockExclusive();
  durability_ = hook;
}

Result<ColumnStoreTable::CheckpointState>
ColumnStoreTable::CaptureCheckpointState(
    const std::function<Status()>& rotate) {
  auto lock = LockExclusive();
  // The captured version may still receive in-place mutations from later
  // writers unless it is marked snapshotted, exactly as in Snapshot().
  version_->snapshotted_.store(true, std::memory_order_relaxed);
  CheckpointState state;
  state.snapshot = version_;
  state.next_delta_seq = next_delta_seq_;
  state.next_delta_id = next_delta_id_;
  if (rotate) {
    VSTORE_RETURN_IF_ERROR(rotate());
  }
  return state;
}

Status ColumnStoreTable::RecoverInstallState(RecoveredState state) {
  if (state.row_groups.size() != state.generations.size() ||
      state.row_groups.size() != state.delete_bitmaps.size()) {
    return Status::Internal("recovery: inconsistent checkpoint state for " +
                            name_);
  }
  auto lock = LockExclusive();
  auto v = std::make_shared<TableVersion>();
  v->row_groups_ = std::move(state.row_groups);
  v->generations_ = std::move(state.generations);
  v->delete_bitmaps_ = std::move(state.delete_bitmaps);
  v->delta_stores_ = std::move(state.delta_stores);
  v->bitmap_owned_.assign(v->delete_bitmaps_.size(), true);
  v->store_owned_.assign(v->delta_stores_.size(), true);
  v->sequence_ = state.version_sequence;
  version_ = std::move(v);
  next_delta_seq_ = state.next_delta_seq;
  next_delta_id_ = state.next_delta_id;
  // Settle the DML counters to the installed checkpoint state before WAL
  // replay bumps them through the normal apply paths. The counters are
  // process-global per table name, so an in-process reopen replays the
  // same tail against counters that still hold the pre-crash values —
  // resetting the base here makes replay idempotent. Delta-store deletes
  // physically remove rows, so the checkpoint cannot distinguish them
  // from never-inserted rows; both counters undercount equally and the
  // invariant inserted - deleted == live rows still holds.
  int64_t live = version_->num_rows();
  int64_t deleted = version_->num_deleted_rows();
  metrics_.rows_inserted->Increment(live + deleted -
                                    metrics_.rows_inserted->Value());
  metrics_.rows_deleted->Increment(deleted - metrics_.rows_deleted->Value());
  return Status::OK();
}

Status ColumnStoreTable::RecoverInsert(RowId id, const std::vector<Value>& row) {
  if (!IsDeltaRowId(id)) {
    return Status::Internal("recovery: logged insert id is not a delta rowid");
  }
  auto lock = LockExclusive();
  // Restore the sequence the original assignment drew from, then run the
  // normal insert path: the store open/close layout replays exactly because
  // the log preserves commit order.
  next_delta_seq_ = id & ~kDeltaRowIdBit;
  RowId assigned = 0;
  VSTORE_RETURN_IF_ERROR(
      InsertLocked(MutableVersion(), row, &assigned, /*log=*/false));
  if (assigned != id) {
    return Status::Internal("recovery: replayed rowid diverged for " + name_);
  }
  return Status::OK();
}

Status ColumnStoreTable::RecoverDelete(RowId id) {
  auto lock = LockExclusive();
  return DeleteLocked(MutableVersion(), id, /*log=*/false);
}

Status ColumnStoreTable::RecoverCompressStores(
    const std::vector<int64_t>& store_ids) {
  std::lock_guard<std::mutex> reorg(reorg_mutex_);
  auto lock = LockExclusive();
  TableVersion* v = MutableVersion();
  for (int64_t store_id : store_ids) {
    size_t idx = 0;
    while (idx < v->delta_stores_.size() &&
           v->delta_stores_[idx]->id() != store_id) {
      ++idx;
    }
    if (idx == v->delta_stores_.size()) {
      return Status::Internal("recovery: compressed delta store missing");
    }
    const DeltaStore& store = *v->delta_stores_[idx];
    TableData staged(schema_);
    VSTORE_RETURN_IF_ERROR(store.ForEach(
        [&](uint64_t /*rowid*/, const std::vector<Value>& row) {
          staged.AppendRow(row);
        }));
    std::shared_ptr<RowGroup> group;
    if (staged.num_rows() > 0) {
      group = BuildRowGroup(staged, 0, staged.num_rows(),
                            v->num_row_groups());
    }
    v->delta_stores_.erase(v->delta_stores_.begin() + static_cast<long>(idx));
    v->store_owned_.erase(v->store_owned_.begin() + static_cast<long>(idx));
    if (group != nullptr) {
      v->delete_bitmaps_.push_back(
          std::make_shared<DeleteBitmap>(group->num_rows()));
      v->bitmap_owned_.push_back(true);
      v->generations_.push_back(0);
      v->row_groups_.push_back(std::move(group));
    }
  }
  return Status::OK();
}

Status ColumnStoreTable::RecoverRebuildGroups(
    const std::vector<int64_t>& groups) {
  std::lock_guard<std::mutex> reorg(reorg_mutex_);
  auto lock = LockExclusive();
  TableVersion* v = MutableVersion();
  for (int64_t g : groups) {
    if (g < 0 || g >= v->num_row_groups()) {
      return Status::Internal("recovery: rebuilt group index out of range");
    }
    size_t gi = static_cast<size_t>(g);
    const RowGroup& rg = *v->row_groups_[gi];
    const DeleteBitmap& bm = *v->delete_bitmaps_[gi];
    TableData staged(schema_);
    for (int64_t r = 0; r < rg.num_rows(); ++r) {
      if (bm.IsDeleted(r)) continue;
      std::vector<Value> row;
      row.reserve(static_cast<size_t>(rg.num_columns()));
      for (int c = 0; c < rg.num_columns(); ++c) {
        row.push_back(rg.column(c).GetValue(r));
      }
      staged.AppendRow(row);
    }
    v->row_groups_[gi] = BuildRowGroup(staged, 0, staged.num_rows(), g);
    v->generations_[gi] = (v->generations_[gi] + 1) & kRowIdGenerationMask;
    v->delete_bitmaps_[gi] =
        std::make_shared<DeleteBitmap>(v->row_groups_[gi]->num_rows());
    v->bitmap_owned_[gi] = true;
  }
  return Status::OK();
}

void ColumnStoreTable::ReconcileMetricsAfterRecovery() {
  // The counter base was settled in RecoverInstallState and replay bumped
  // the counters through the normal apply paths; all that remains is to
  // bring the storage gauges in line with the recovered snapshot.
  RefreshStorageGauges();
}

// --- Current-version convenience accessors ------------------------------

int64_t ColumnStoreTable::num_row_groups() const {
  auto lock = LockShared();
  return version_->num_row_groups();
}

const RowGroup& ColumnStoreTable::row_group(int64_t i) const {
  auto lock = LockShared();
  return version_->row_group(i);
}

const DeleteBitmap& ColumnStoreTable::delete_bitmap(int64_t i) const {
  auto lock = LockShared();
  return version_->delete_bitmap(i);
}

uint32_t ColumnStoreTable::generation(int64_t i) const {
  auto lock = LockShared();
  return version_->generation(i);
}

int64_t ColumnStoreTable::num_delta_stores() const {
  auto lock = LockShared();
  return version_->num_delta_stores();
}

const DeltaStore& ColumnStoreTable::delta_store(int64_t i) const {
  auto lock = LockShared();
  return version_->delta_store(i);
}

}  // namespace vstore
