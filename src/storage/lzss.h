#ifndef VSTORE_STORAGE_LZSS_H_
#define VSTORE_STORAGE_LZSS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace vstore {

// LZSS-style byte-oriented compressor standing in for the XPRESS8 codec the
// paper uses for archival compression (COLUMNSTORE_ARCHIVE). LZ77 family:
// a hash-chain match finder over a 64 KiB window emits (distance, length)
// copies or literal runs, with a greedy-lazy parse. No entropy stage —
// like XPRESS raw, speed is favoured over ratio.
//
// Format: a stream of tokens. Token byte = (literal_count << 4) | match_code.
// Counts >= 15 continue with 255-saturated extension bytes (LZ4-like).
// Matches are 2-byte little-endian distances, minimum match length 4.
class Lzss {
 public:
  static std::vector<uint8_t> Compress(const uint8_t* data, size_t len);

  // Decompresses into `out` which must be sized to the original length
  // (stored externally by the segment). Returns an error on corruption.
  static Status Decompress(const uint8_t* data, size_t len, uint8_t* out,
                           size_t out_len);
};

}  // namespace vstore

#endif  // VSTORE_STORAGE_LZSS_H_
