#ifndef VSTORE_STORAGE_DELTA_STORE_H_
#define VSTORE_STORAGE_DELTA_STORE_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "types/schema.h"
#include "types/value.h"

namespace vstore {

// --- Row serialization -----------------------------------------------
// Compact row format used by the delta store and spill files: per column a
// null byte, then the fixed-width payload (int64/double) or u32 length +
// bytes (string).
std::string EncodeRow(const Schema& schema, const std::vector<Value>& row);
Status DecodeRow(const Schema& schema, std::string_view data,
                 std::vector<Value>* row);

// --- B+-tree ----------------------------------------------------------
// In-memory B+-tree mapping uint64 keys to byte-string payloads. Leaves are
// chained for ordered scans. Deletions do not rebalance (underfull nodes
// are tolerated), but a leaf emptied by Erase is unlinked and freed so
// MemoryBytes() tracks the live tree: every node header is counted on
// allocation and released when the node dies.
class BPlusTree {
 public:
  BPlusTree();
  ~BPlusTree();
  VSTORE_DISALLOW_COPY_AND_ASSIGN(BPlusTree);

  // Returns false if the key already exists (no overwrite).
  bool Insert(uint64_t key, std::string value);
  // Returns nullptr if absent. The pointer is invalidated by any mutation.
  const std::string* Find(uint64_t key) const;
  bool Erase(uint64_t key);

  // Smallest / largest live key. Return false when the tree is empty.
  bool FirstKey(uint64_t* out) const;
  bool LastKey(uint64_t* out) const;

  int64_t size() const { return size_; }
  int64_t MemoryBytes() const { return memory_bytes_; }

  // Forward iterator over live entries in key order.
  class Iterator {
   public:
    bool Valid() const { return leaf_ != nullptr; }
    uint64_t key() const;
    const std::string& value() const;
    void Next();

   private:
    friend class BPlusTree;
    const void* leaf_ = nullptr;
    int index_ = 0;
    void SkipEmpty();
  };

  Iterator Begin() const;

 private:
  struct Node;
  struct Leaf;
  struct Internal;

  Node* root_ = nullptr;
  int64_t size_ = 0;
  int64_t memory_bytes_ = 0;
};

// --- Delta store -------------------------------------------------------
// Uncompressed staging area for trickle inserts (paper §3.1). Rows live in
// a B+-tree keyed by row id until the store is closed (reaches row-group
// size) and the tuple mover converts it into a compressed row group.
class DeltaStore {
 public:
  DeltaStore(const Schema* schema, int64_t id)
      : schema_(schema), id_(id) {}
  VSTORE_DISALLOW_COPY_AND_ASSIGN(DeltaStore);

  int64_t id() const { return id_; }
  bool closed() const { return closed_; }
  void Close() { closed_ = true; }

  Status Insert(uint64_t rowid, const std::vector<Value>& row);
  // Returns false if the rowid is not present. Tightens min_rowid()/
  // max_rowid() when an extreme row is removed so range probes stay exact.
  bool Delete(uint64_t rowid);
  bool Contains(uint64_t rowid) const { return tree_.Find(rowid) != nullptr; }
  Status Get(uint64_t rowid, std::vector<Value>* row) const;

  // Deep copy (contents, closed flag, rowid bounds). Used by the table's
  // copy-on-write versioning: a writer clones a store shared with a
  // published snapshot before mutating it.
  std::unique_ptr<DeltaStore> Clone() const;

  int64_t num_rows() const { return tree_.size(); }
  int64_t MemoryBytes() const { return tree_.MemoryBytes(); }
  uint64_t min_rowid() const { return min_rowid_; }
  uint64_t max_rowid() const { return max_rowid_; }

  // Ordered iteration; `fn(rowid, row)` is called for each live row.
  template <typename Fn>
  Status ForEach(Fn fn) const {
    std::vector<Value> row;
    for (BPlusTree::Iterator it = tree_.Begin(); it.Valid(); it.Next()) {
      VSTORE_RETURN_IF_ERROR(DecodeRow(*schema_, it.value(), &row));
      fn(it.key(), row);
    }
    return Status::OK();
  }

  BPlusTree::Iterator Begin() const { return tree_.Begin(); }
  const Schema& schema() const { return *schema_; }

 private:
  const Schema* schema_;  // owned by the table
  int64_t id_;
  bool closed_ = false;
  BPlusTree tree_;
  uint64_t min_rowid_ = std::numeric_limits<uint64_t>::max();
  uint64_t max_rowid_ = 0;
};

}  // namespace vstore

#endif  // VSTORE_STORAGE_DELTA_STORE_H_
