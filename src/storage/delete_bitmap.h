#ifndef VSTORE_STORAGE_DELETE_BITMAP_H_
#define VSTORE_STORAGE_DELETE_BITMAP_H_

#include <cstdint>
#include <cstring>

#include "common/bit_util.h"

namespace vstore {

// Records which rows of one compressed row group have been logically
// deleted (paper §3.1: "a delete bitmap indicating which rows have been
// deleted"). Deleted rows are filtered during scans and physically removed
// only when the row group is rebuilt.
class DeleteBitmap {
 public:
  DeleteBitmap() = default;
  explicit DeleteBitmap(int64_t num_rows) : bits_(num_rows) {}

  int64_t num_rows() const { return bits_.size(); }
  int64_t deleted_count() const { return deleted_; }
  bool any_deleted() const { return deleted_ > 0; }

  bool IsDeleted(int64_t row) const { return bits_.Get(row); }

  // Returns false if the row was already deleted.
  bool MarkDeleted(int64_t row) {
    if (bits_.Get(row)) return false;
    bits_.Set(row);
    ++deleted_;
    return true;
  }

  // Fills out[i] = 1 for live rows in [start, start+count).
  void DecodeLiveness(int64_t start, int64_t count, uint8_t* out) const {
    for (int64_t i = 0; i < count; ++i) {
      out[i] = bits_.Get(start + i) ? 0 : 1;
    }
  }

  int64_t MemoryBytes() const {
    return bit_util::BytesForBits(bits_.size());
  }

  // Serialization support for the checkpoint writer/reader.
  const uint8_t* bytes() const { return bits_.data(); }
  int64_t byte_size() const { return bit_util::BytesForBits(bits_.size()); }
  // Rebuilds a bitmap from its serialized bytes; the deleted count is
  // recomputed from the bits rather than trusted from the file.
  static DeleteBitmap FromBytes(int64_t num_rows, const uint8_t* data,
                                size_t len) {
    DeleteBitmap bm(num_rows);
    size_t want = static_cast<size_t>(bit_util::BytesForBits(num_rows));
    if (len > want) len = want;
    if (len > 0) std::memcpy(bm.bits_.mutable_data(), data, len);
    bm.deleted_ = bm.bits_.CountSet();
    return bm;
  }

 private:
  bit_util::Bitmap bits_;
  int64_t deleted_ = 0;
};

}  // namespace vstore

#endif  // VSTORE_STORAGE_DELETE_BITMAP_H_
