#ifndef VSTORE_STORAGE_SHARDED_TABLE_H_
#define VSTORE_STORAGE_SHARDED_TABLE_H_

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "storage/column_store.h"
#include "storage/tuple_mover.h"
#include "types/schema.h"
#include "types/table_data.h"

namespace vstore {

// --- Sharded row ids ------------------------------------------------------
// A row in a sharded table is addressed by (shard ordinal, per-shard RowId).
// The shard ordinal is permanent for a row unless an Update moves its
// partition key to a different shard; the RowId half inherits every caveat
// of ColumnStoreTable RowIds (dangles across that shard's reorganization).
struct ShardRowId {
  int shard = 0;
  RowId row = 0;
};

// --- Sharded table --------------------------------------------------------
// Hash partitioning for scale-out (ROADMAP "Sharded scale-out execution"):
// one logical table split into N independent ColumnStoreTable shards on a
// declared partition column. Each shard owns its own TableVersion chain,
// delta stores, delete bitmaps, mutex, and (via ShardedTupleMover) its own
// reorganization schedule — concurrent DML on different shards never
// contends on a lock, and reorg parallelizes per shard.
//
// Routing: shard = HashPartitionValue(row[partition_column]) % num_shards.
// The hash is deterministic across runs (Murmur3 finalizer for numerics,
// Hash64 for strings, shard 0 for NULL keys), so a table loaded twice with
// the same data shards identically — the planner relies on this to prune
// shards for equality/IN predicates on the partition column.
//
// Multi-row operations (BulkLoad, InsertBatch) split their input into
// per-shard batches and apply each batch under only that shard's lock — no
// global lock exists at this layer at all. Consequently there is no
// cross-shard atomicity: a scan overlapping a multi-shard batch may observe
// some shards' portions and not others (each shard's portion is still
// atomic, and per-shard snapshots are still immutable). Same-shard Updates
// keep ColumnStoreTable's single-critical-section atomicity; an Update
// whose new partition key hashes to a different shard becomes delete-then-
// insert across two shard locks and is likewise not atomic as a pair.
//
// Metrics: every shard publishes two-level {table=<name>,shard=<i>}
// families (DML counters, storage gauges, mover histograms); logical-table
// totals are the sum over the shard label. StatsReport and sys.shards read
// these per shard; RefreshStorageGauges() fans out to every shard.
class ShardedTable {
 public:
  struct Options {
    int num_shards = 8;
    // Declared partition column (name resolved against the schema).
    std::string partition_key;
    // Storage options applied to every shard. metric_table/metric_shard
    // are overwritten per shard; leave them empty.
    ColumnStoreTable::Options shard_options;
  };

  // REQUIRES: num_shards >= 1 and partition_key names a schema column.
  ShardedTable(std::string name, Schema schema, Options options);
  VSTORE_DISALLOW_COPY_AND_ASSIGN(ShardedTable);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  int partition_column() const { return partition_column_; }
  const std::string& partition_key() const { return options_.partition_key; }

  ColumnStoreTable* shard(int i) { return shards_[static_cast<size_t>(i)].get(); }
  const ColumnStoreTable* shard(int i) const {
    return shards_[static_cast<size_t>(i)].get();
  }

  // --- Routing -----------------------------------------------------------
  // Deterministic partition hash of a key value: HashInt64 of the integer
  // (bool/int32/int64/date widen to int64) or of the double's bit pattern
  // (-0.0 normalized to +0.0 so x == y implies same shard), Hash64 of the
  // string bytes. NULL hashes to 0.
  static uint64_t HashPartitionValue(const Value& v);
  // Shard ordinal a partition-key value routes to.
  int ShardFor(const Value& key) const {
    return static_cast<int>(HashPartitionValue(key) %
                            static_cast<uint64_t>(shards_.size()));
  }

  // --- DML ---------------------------------------------------------------
  // Splits `data` into per-shard TableData by partition hash (preserving
  // input order within each shard) and bulk-loads each shard independently.
  Status BulkLoad(const TableData& data);
  Result<ShardRowId> Insert(const std::vector<Value>& row);
  // Groups `rows` by target shard and applies each group under one
  // acquisition of that shard's lock. Returned ids are in input order.
  Result<std::vector<ShardRowId>> InsertBatch(
      const std::vector<std::vector<Value>>& rows);
  Status Delete(ShardRowId id);
  // Updates in place when the new partition key stays on the same shard
  // (atomic, single critical section); otherwise deletes from the old
  // shard then inserts into the new one (not atomic as a pair — see the
  // class comment).
  Result<ShardRowId> Update(ShardRowId id, const std::vector<Value>& row);
  Status GetRow(ShardRowId id, std::vector<Value>* row) const;

  // Aggregates over all shards (each shard read under its own lock; the
  // total is not one consistent cut during concurrent DML).
  int64_t num_rows() const;
  int64_t num_deleted_rows() const;
  int64_t num_delta_rows() const;
  ColumnStoreTable::SizeBreakdown Sizes() const;
  void RefreshStorageGauges() const;

  // One pinned snapshot per shard, in shard order (the scatter-gather
  // planner hands snapshot i to the fragment scanning shard i).
  std::vector<TableSnapshot> SnapshotAll() const;

 private:
  std::string name_;
  Schema schema_;
  Options options_;
  int partition_column_;
  std::vector<std::unique_ptr<ColumnStoreTable>> shards_;
};

// --- Sharded tuple mover --------------------------------------------------
// One TupleMover per shard, so reorganization parallelizes per shard and a
// hot shard's compaction never blocks a cold shard's. Start/Stop fan out;
// RunOnce runs every shard's pass sequentially on the calling thread
// (background mode is where the parallelism lives).
class ShardedTupleMover {
 public:
  explicit ShardedTupleMover(ShardedTable* table)
      : ShardedTupleMover(table, TupleMover::Options()) {}
  ShardedTupleMover(ShardedTable* table, TupleMover::Options options);
  VSTORE_DISALLOW_COPY_AND_ASSIGN(ShardedTupleMover);

  TupleMover* mover(int shard) {
    return movers_[static_cast<size_t>(shard)].get();
  }
  const TupleMover* mover(int shard) const {
    return movers_[static_cast<size_t>(shard)].get();
  }
  int num_shards() const { return static_cast<int>(movers_.size()); }

  // Total delta stores compressed across all shards this call.
  Result<int64_t> RunOnce();
  void Start(std::chrono::milliseconds period);
  // Stops every shard's mover; returns the first non-OK error (all movers
  // are stopped regardless).
  Status Stop();

 private:
  std::vector<std::unique_ptr<TupleMover>> movers_;
};

}  // namespace vstore

#endif  // VSTORE_STORAGE_SHARDED_TABLE_H_
