#include "storage/segment.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/bit_util.h"
#include "storage/bit_pack.h"
#include "storage/lzss.h"

namespace vstore {

namespace {

// Compresses `plain` into `blob` and returns true if worthwhile. Archival
// always keeps the compressed form even when slightly larger (the paper's
// ARCHIVE option trades CPU for size unconditionally); we only skip empty
// buffers.
bool CompressBlob(const uint8_t* plain, size_t plain_size,
                  std::vector<uint8_t>* out, size_t* original_size) {
  *original_size = plain_size;
  if (plain_size == 0) {
    out->clear();
    return false;
  }
  *out = Lzss::Compress(plain, plain_size);
  return true;
}

Status DecompressBlob(const std::vector<uint8_t>& compressed,
                      size_t original_size, std::vector<uint8_t>* out) {
  out->assign(original_size, 0);
  if (original_size == 0) return Status::OK();
  return Lzss::Decompress(compressed.data(), compressed.size(), out->data(),
                          original_size);
}

}  // namespace

int64_t ColumnSegment::EncodedBytes() const {
  int64_t bytes = 0;
  if (encoding_ == EncodingKind::kBitPack) {
    bytes += archived_ ? static_cast<int64_t>(arch_packed_.original_size)
                       : static_cast<int64_t>(packed_size());
  } else {
    if (archived_) {
      bytes += static_cast<int64_t>(arch_rle_values_.original_size +
                                    arch_rle_lengths_.original_size);
    } else {
      bytes += rle_.TotalBytes();
    }
  }
  bytes += static_cast<int64_t>(null_bitmap_size());
  if (local_dict_ != nullptr) bytes += local_dict_->MemoryBytes();
  return bytes;
}

int64_t ColumnSegment::ArchivedBytes() const {
  if (!archived_) return 0;
  int64_t bytes = static_cast<int64_t>(arch_packed_.compressed.size() +
                                       arch_rle_values_.compressed.size() +
                                       arch_rle_lengths_.compressed.size());
  bytes += static_cast<int64_t>(null_bitmap_size());
  if (local_dict_ != nullptr) bytes += local_dict_->ArchivedBytes();
  return bytes;
}

void ColumnSegment::DecodeCodes(int64_t start, int64_t count,
                                uint64_t* out) const {
  VSTORE_DCHECK(start >= 0 && start + count <= num_rows());
  EnsureResident().CheckOK();
  if (encoding_ == EncodingKind::kBitPack) {
    BitPacker::Unpack(packed_data(), bit_width_, start, count, out);
  } else {
    RleCodec::Decode(rle_, start, count, out);
  }
}

void ColumnSegment::DecodeInt64(int64_t start, int64_t count,
                                int64_t* out) const {
  VSTORE_DCHECK(PhysicalTypeOf(type_) == PhysicalType::kInt64);
  // Decode codes directly into the output buffer, then widen in place.
  uint64_t* codes = reinterpret_cast<uint64_t*>(out);
  DecodeCodes(start, count, codes);
  const int64_t base = venc_.base;
  const int64_t pow10 = venc_.int_pow10;
  if (pow10 == 1) {
    for (int64_t i = 0; i < count; ++i) {
      out[i] = static_cast<int64_t>(codes[i]) + base;
    }
  } else {
    for (int64_t i = 0; i < count; ++i) {
      out[i] = (static_cast<int64_t>(codes[i]) + base) * pow10;
    }
  }
}

void ColumnSegment::DecodeDouble(int64_t start, int64_t count,
                                 double* out) const {
  VSTORE_DCHECK(type_ == DataType::kDouble);
  uint64_t* codes = reinterpret_cast<uint64_t*>(out);
  DecodeCodes(start, count, codes);
  if (venc_.code_kind == CodeKind::kRawDouble) {
    return;  // codes are already the IEEE bit patterns, in place
  }
  const int64_t base = venc_.base;
  const double factor = venc_.dbl_pow10;
  for (int64_t i = 0; i < count; ++i) {
    out[i] = static_cast<double>(static_cast<int64_t>(codes[i]) + base) /
             factor;
  }
}

void ColumnSegment::DecodeString(int64_t start, int64_t count,
                                 std::string_view* out) const {
  VSTORE_DCHECK(type_ == DataType::kString);
  std::vector<uint64_t> codes(static_cast<size_t>(count));
  DecodeCodes(start, count, codes.data());
  for (int64_t i = 0; i < count; ++i) {
    out[i] = DictString(codes[static_cast<size_t>(i)]);
  }
}

void ColumnSegment::GatherCodes(const int64_t* rows, int64_t count,
                                uint64_t* out) const {
  if (count == 0) return;
  EnsureResident().CheckOK();
  if (encoding_ == EncodingKind::kBitPack) {
    for (int64_t i = 0; i < count; ++i) {
      out[i] = BitPacker::Get(packed_data(), bit_width_, rows[i]);
    }
    return;
  }
  // Binary-search the first run, then one merge walk; rows must ascend.
  int64_t r = static_cast<int64_t>(
                  std::upper_bound(rle_.run_starts.begin(),
                                   rle_.run_starts.end(), rows[0]) -
                  rle_.run_starts.begin()) -
              1;
  int64_t run_end = rle_.run_starts[static_cast<size_t>(r)];
  uint64_t value = 0;
  bool have_value = false;
  for (int64_t i = 0; i < count; ++i) {
    VSTORE_DCHECK(i == 0 || rows[i] >= rows[i - 1]);
    while (rows[i] >= run_end || !have_value) {
      VSTORE_DCHECK(r < rle_.num_runs);
      value = BitPacker::Get(rle_.values_data(), rle_.value_bits, r);
      run_end = (r + 1 < rle_.num_runs
                     ? rle_.run_starts[static_cast<size_t>(r + 1)]
                     : rle_.num_rows);
      ++r;
      have_value = true;
    }
    out[i] = value;
  }
}

void ColumnSegment::GatherInt64(const int64_t* rows, int64_t count,
                                int64_t* out) const {
  std::vector<uint64_t> codes(static_cast<size_t>(count));
  GatherCodes(rows, count, codes.data());
  for (int64_t i = 0; i < count; ++i) {
    out[i] = DecodeIntCode(codes[static_cast<size_t>(i)], venc_);
  }
}

void ColumnSegment::GatherDouble(const int64_t* rows, int64_t count,
                                 double* out) const {
  std::vector<uint64_t> codes(static_cast<size_t>(count));
  GatherCodes(rows, count, codes.data());
  for (int64_t i = 0; i < count; ++i) {
    out[i] = DecodeDoubleCode(codes[static_cast<size_t>(i)], venc_);
  }
}

void ColumnSegment::GatherString(const int64_t* rows, int64_t count,
                                 std::string_view* out) const {
  std::vector<uint64_t> codes(static_cast<size_t>(count));
  GatherCodes(rows, count, codes.data());
  for (int64_t i = 0; i < count; ++i) {
    out[i] = DictString(codes[static_cast<size_t>(i)]);
  }
}

void ColumnSegment::GatherValidity(const int64_t* rows, int64_t count,
                                   uint8_t* out) const {
  if (!has_null_bitmap()) {
    std::fill(out, out + count, uint8_t{1});
    return;
  }
  for (int64_t i = 0; i < count; ++i) {
    out[i] = bit_util::GetBit(null_bitmap_data(), rows[i]) ? 1 : 0;
  }
}

void ColumnSegment::DecodeValidity(int64_t start, int64_t count,
                                   uint8_t* out) const {
  if (!has_null_bitmap()) {
    std::fill(out, out + count, uint8_t{1});
    return;
  }
  for (int64_t i = 0; i < count; ++i) {
    out[i] = bit_util::GetBit(null_bitmap_data(), start + i) ? 1 : 0;
  }
}

Value ColumnSegment::GetValue(int64_t row) const {
  VSTORE_DCHECK(row >= 0 && row < num_rows());
  if (has_null_bitmap() && !bit_util::GetBit(null_bitmap_data(), row)) {
    return Value::Null(type_);
  }
  uint64_t code;
  DecodeCodes(row, 1, &code);
  switch (type_) {
    case DataType::kBool:
      return Value::Bool(DecodeIntCode(code, venc_) != 0);
    case DataType::kInt32:
      return Value::Int32(static_cast<int32_t>(DecodeIntCode(code, venc_)));
    case DataType::kInt64:
      return Value::Int64(DecodeIntCode(code, venc_));
    case DataType::kDate32:
      return Value::Date32(static_cast<int32_t>(DecodeIntCode(code, venc_)));
    case DataType::kDouble:
      return Value::Double(DecodeDoubleCode(code, venc_));
    case DataType::kString:
      return Value::String(std::string(DictString(code)));
  }
  return Value::Null(type_);
}

std::string_view ColumnSegment::DictString(uint64_t code) const {
  VSTORE_DCHECK(dict_encoded());
  int64_t c = static_cast<int64_t>(code);
  if (c < primary_dict_size_) return primary_dict_->Get(c);
  VSTORE_DCHECK(local_dict_ != nullptr);
  return local_dict_->Get(c - primary_dict_size_);
}

bool ColumnSegment::MayMatch(CompareOp op, const Value& value) const {
  if (value.is_null()) return false;  // SQL comparisons with NULL never match
  if (!stats_.has_values) return false;
  // kNe can only be eliminated when min == max == value; handle via cmp
  // bounds below.
  switch (PhysicalTypeOf(type_)) {
    case PhysicalType::kInt64: {
      int64_t v = value.int64();
      switch (op) {
        case CompareOp::kEq:
          return v >= stats_.min_i64 && v <= stats_.max_i64;
        case CompareOp::kNe:
          return !(stats_.min_i64 == v && stats_.max_i64 == v);
        case CompareOp::kLt:
          return stats_.min_i64 < v;
        case CompareOp::kLe:
          return stats_.min_i64 <= v;
        case CompareOp::kGt:
          return stats_.max_i64 > v;
        case CompareOp::kGe:
          return stats_.max_i64 >= v;
      }
      return true;
    }
    case PhysicalType::kDouble: {
      double v = value.AsDouble();
      switch (op) {
        case CompareOp::kEq:
          return v >= stats_.min_d && v <= stats_.max_d;
        case CompareOp::kNe:
          return !(stats_.min_d == v && stats_.max_d == v);
        case CompareOp::kLt:
          return stats_.min_d < v;
        case CompareOp::kLe:
          return stats_.min_d <= v;
        case CompareOp::kGt:
          return stats_.max_d > v;
        case CompareOp::kGe:
          return stats_.max_d >= v;
      }
      return true;
    }
    case PhysicalType::kString: {
      const std::string& v = value.str();
      switch (op) {
        case CompareOp::kEq:
          return v >= stats_.min_s && v <= stats_.max_s;
        case CompareOp::kNe:
          return !(stats_.min_s == v && stats_.max_s == v);
        case CompareOp::kLt:
          return stats_.min_s < v;
        case CompareOp::kLe:
          return stats_.min_s <= v;
        case CompareOp::kGt:
          return stats_.max_s > v;
        case CompareOp::kGe:
          return stats_.max_s >= v;
      }
      return true;
    }
  }
  return true;
}

void ColumnSegment::EvalPredicateOnRuns(CompareOp op, const Value& value,
                                        int64_t start, int64_t count,
                                        uint8_t* verdict) const {
  VSTORE_DCHECK(encoding_ == EncodingKind::kRle);
  VSTORE_DCHECK(start >= 0 && start + count <= num_rows());
  EnsureResident().CheckOK();
  // Position on the run containing `start`, then walk forward, deciding
  // each run once and fanning the verdict out over its row span. The sign
  // expressions mirror the scan's branchless ApplyPredicate exactly.
  int64_t r = static_cast<int64_t>(
                  std::upper_bound(rle_.run_starts.begin(),
                                   rle_.run_starts.end(), start) -
                  rle_.run_starts.begin()) -
              1;
  int64_t row = start;
  const int64_t end = start + count;
  while (row < end) {
    VSTORE_DCHECK(r < rle_.num_runs);
    const uint64_t code =
        BitPacker::Get(rle_.values_data(), rle_.value_bits, r);
    const int64_t run_end = r + 1 < rle_.num_runs
                                ? rle_.run_starts[static_cast<size_t>(r + 1)]
                                : rle_.num_rows;
    uint8_t v = 0;
    switch (PhysicalTypeOf(type_)) {
      case PhysicalType::kString: {
        int c = DictString(code).compare(std::string_view(value.str()));
        v = uint8_t{ApplyCompare(op, (c > 0) - (c < 0))};
        break;
      }
      case PhysicalType::kDouble: {
        double d = DecodeDoubleCode(code, venc_);
        double t = value.AsDouble();
        v = uint8_t{ApplyCompare(op, (d > t) - (d < t))};
        break;
      }
      case PhysicalType::kInt64: {
        // A double constant against an int column compares in double space.
        if (value.type() == DataType::kDouble) {
          double d = static_cast<double>(DecodeIntCode(code, venc_));
          double t = value.AsDouble();
          v = uint8_t{ApplyCompare(op, (d > t) - (d < t))};
        } else {
          int64_t a = DecodeIntCode(code, venc_);
          int64_t t = value.int64();
          v = uint8_t{ApplyCompare(op, (a > t) - (a < t))};
        }
        break;
      }
    }
    const int64_t span_end = std::min(run_end, end);
    std::memset(verdict + (row - start), v,
                static_cast<size_t>(span_end - row));
    row = span_end;
    ++r;
  }
}

bool ColumnSegment::ValueToCode(const Value& value, uint64_t* code) const {
  if (value.is_null()) return false;
  switch (venc_.code_kind) {
    case CodeKind::kValueOffset:
      return EncodeIntValue(value.int64(), venc_, code);
    case CodeKind::kDictionary: {
      const std::string& s = value.str();
      int64_t c = primary_dict_ != nullptr ? primary_dict_->Find(s) : -1;
      if (c >= 0 && c < primary_dict_size_) {
        *code = static_cast<uint64_t>(c);
        return true;
      }
      if (local_dict_ != nullptr) {
        int64_t lc = local_dict_->Find(s);
        if (lc >= 0) {
          *code = static_cast<uint64_t>(primary_dict_size_ + lc);
          return true;
        }
      }
      return false;
    }
    case CodeKind::kValueScaled:
    case CodeKind::kRawDouble:
      // Double equality via codes is not attempted; caller decodes.
      return false;
  }
  return false;
}

Status ColumnSegment::Archive() {
  std::lock_guard<std::mutex> lock(resident_mu_);
  if (archived_) return Status::OK();
  if (encoding_ == EncodingKind::kBitPack) {
    CompressBlob(packed_data(), packed_size(), &arch_packed_.compressed,
                 &arch_packed_.original_size);
    packed_.clear();
    packed_.shrink_to_fit();
    packed_extern_ = nullptr;
    packed_extern_size_ = 0;
  } else {
    CompressBlob(rle_.values_data(), rle_.values_size(),
                 &arch_rle_values_.compressed, &arch_rle_values_.original_size);
    CompressBlob(rle_.lengths_data(), rle_.lengths_size(),
                 &arch_rle_lengths_.compressed,
                 &arch_rle_lengths_.original_size);
    rle_.values.clear();
    rle_.values.shrink_to_fit();
    rle_.lengths.clear();
    rle_.lengths.shrink_to_fit();
    rle_.values_extern = nullptr;
    rle_.values_extern_size = 0;
    rle_.lengths_extern = nullptr;
    rle_.lengths_extern_size = 0;
  }
  archived_ = true;
  resident_ = false;
  return Status::OK();
}

Status ColumnSegment::EnsureResident() const {
  if (resident_) return Status::OK();
  std::lock_guard<std::mutex> lock(resident_mu_);
  if (resident_) return Status::OK();
  if (encoding_ == EncodingKind::kBitPack) {
    VSTORE_RETURN_IF_ERROR(DecompressBlob(
        arch_packed_.compressed, arch_packed_.original_size, &packed_));
  } else {
    VSTORE_RETURN_IF_ERROR(DecompressBlob(arch_rle_values_.compressed,
                                          arch_rle_values_.original_size,
                                          &rle_.values));
    VSTORE_RETURN_IF_ERROR(DecompressBlob(arch_rle_lengths_.compressed,
                                          arch_rle_lengths_.original_size,
                                          &rle_.lengths));
    if (static_cast<int64_t>(rle_.run_starts.size()) != rle_.num_runs) {
      RleCodec::BuildIndex(&rle_);
    }
  }
  resident_ = true;
  return Status::OK();
}

void ColumnSegment::Evict() const {
  std::lock_guard<std::mutex> lock(resident_mu_);
  if (!archived_ || !resident_) return;
  if (encoding_ == EncodingKind::kBitPack) {
    packed_.clear();
    packed_.shrink_to_fit();
  } else {
    rle_.values.clear();
    rle_.values.shrink_to_fit();
    rle_.lengths.clear();
    rle_.lengths.shrink_to_fit();
  }
  resident_ = false;
}

std::unique_ptr<ColumnSegment> SegmentBuilder::Build(
    const ColumnData& column, int64_t begin, int64_t end,
    const int64_t* row_order,
    const std::shared_ptr<StringDictionary>& primary_dict,
    const Options& options) {
  VSTORE_CHECK(begin >= 0 && begin <= end && end <= column.size());
  const int64_t n = end - begin;
  auto segment = std::unique_ptr<ColumnSegment>(new ColumnSegment());
  segment->type_ = column.type();
  segment->stats_.num_rows = n;

  auto source_row = [&](int64_t i) {
    return row_order != nullptr ? row_order[i] : begin + i;
  };

  // Validity (byte per row during build; bitmap in the segment).
  std::vector<uint8_t> validity(static_cast<size_t>(n), 1);
  int64_t null_count = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (column.IsNull(source_row(i))) {
      validity[static_cast<size_t>(i)] = 0;
      ++null_count;
    }
  }
  segment->stats_.null_count = null_count;
  segment->stats_.has_values = null_count < n;
  if (null_count > 0) {
    segment->null_bitmap_.assign(
        static_cast<size_t>(bit_util::BytesForBits(n)), 0);
    for (int64_t i = 0; i < n; ++i) {
      if (validity[static_cast<size_t>(i)]) {
        bit_util::SetBit(segment->null_bitmap_.data(), i);
      }
    }
  }

  // Stage 1: raw values -> codes (+ stats).
  CodeStream stream;
  switch (PhysicalTypeOf(column.type())) {
    case PhysicalType::kInt64: {
      std::vector<int64_t> values(static_cast<size_t>(n));
      int64_t min_v = std::numeric_limits<int64_t>::max();
      int64_t max_v = std::numeric_limits<int64_t>::min();
      for (int64_t i = 0; i < n; ++i) {
        values[static_cast<size_t>(i)] = column.GetInt64(source_row(i));
        if (validity[static_cast<size_t>(i)]) {
          min_v = std::min(min_v, values[static_cast<size_t>(i)]);
          max_v = std::max(max_v, values[static_cast<size_t>(i)]);
        }
      }
      segment->stats_.min_i64 = min_v;
      segment->stats_.max_i64 = max_v;
      stream = ValueEncodeInts(values.data(), validity.data(), n);
      break;
    }
    case PhysicalType::kDouble: {
      std::vector<double> values(static_cast<size_t>(n));
      double min_v = std::numeric_limits<double>::infinity();
      double max_v = -std::numeric_limits<double>::infinity();
      for (int64_t i = 0; i < n; ++i) {
        values[static_cast<size_t>(i)] = column.GetDouble(source_row(i));
        if (validity[static_cast<size_t>(i)]) {
          min_v = std::min(min_v, values[static_cast<size_t>(i)]);
          max_v = std::max(max_v, values[static_cast<size_t>(i)]);
        }
      }
      segment->stats_.min_d = min_v;
      segment->stats_.max_d = max_v;
      stream = ValueEncodeDoubles(values.data(), validity.data(), n);
      break;
    }
    case PhysicalType::kString: {
      VSTORE_CHECK(primary_dict != nullptr);
      stream.venc.code_kind = CodeKind::kDictionary;
      stream.codes.resize(static_cast<size_t>(n), 0);
      bool first = true;
      for (int64_t i = 0; i < n; ++i) {
        if (!validity[static_cast<size_t>(i)]) continue;
        const std::string& s = column.GetString(source_row(i));
        if (first) {
          segment->stats_.min_s = s;
          segment->stats_.max_s = s;
          first = false;
        } else {
          if (s < segment->stats_.min_s) segment->stats_.min_s = s;
          if (s > segment->stats_.max_s) segment->stats_.max_s = s;
        }
        int64_t code = const_cast<StringDictionary*>(primary_dict.get())
                           ->GetOrInsert(s, options.primary_dict_capacity);
        if (code < 0) {
          if (segment->local_dict_ == nullptr) {
            segment->local_dict_ = std::make_unique<StringDictionary>();
          }
          code = segment->local_dict_->GetOrInsert(
              s, std::numeric_limits<int64_t>::max());
          // Local codes live above the primary range. The primary range is
          // frozen per segment below, after all inserts are done.
          code += options.primary_dict_capacity;
        }
        stream.codes[static_cast<size_t>(i)] = static_cast<uint64_t>(code);
      }
      // Freeze the primary boundary at the configured capacity so local
      // codes are unambiguous even as the primary keeps growing for later
      // segments (it never exceeds the capacity).
      segment->primary_dict_size_ = options.primary_dict_capacity;
      segment->primary_dict_ = primary_dict;
      for (uint64_t c : stream.codes) {
        stream.max_code = std::max(stream.max_code, c);
      }
      break;
    }
  }
  segment->venc_ = stream.venc;

  // Stage 2: RLE vs bit packing, whichever is smaller.
  const int bit_width = bit_util::BitsRequired(stream.max_code);
  const int64_t packed_bytes = BitPacker::PackedBytes(n, bit_width);
  const int64_t runs = RleCodec::CountRuns(stream.codes.data(), n);
  const int64_t rle_bytes = RleCodec::EstimateBytes(runs, n, stream.max_code);

  segment->bit_width_ = bit_width;
  if (rle_bytes < packed_bytes) {
    segment->encoding_ = EncodingKind::kRle;
    segment->rle_ = RleCodec::Encode(stream.codes.data(), n);
  } else {
    segment->encoding_ = EncodingKind::kBitPack;
    segment->packed_ = BitPacker::Pack(stream.codes.data(), n, bit_width);
  }
  return segment;
}

}  // namespace vstore
