#include "storage/wal.h"

#include <algorithm>
#include <cstring>

#include "common/crc32.h"
#include "common/serde.h"

namespace vstore {

namespace {

constexpr size_t kWalHeaderSize = 4 + 4 + 8 + 4;
constexpr size_t kRecordFrameSize = 4 + 4;  // masked crc + body length

// A sanity bound on one record's body. Larger than any delta-store row the
// engine produces; rejects wild length fields before allocation.
constexpr uint32_t kMaxRecordBody = 64u << 20;

std::string EncodeHeader(uint64_t epoch) {
  BufWriter w;
  w.PutU32(kWalMagic);
  w.PutU32(kWalVersion);
  w.PutU64(epoch);
  w.PutU32(MaskCrc32(Crc32(w.str().data(), w.size())));
  return w.Take();
}

}  // namespace

// --- WalWriter ------------------------------------------------------------

Result<std::unique_ptr<WalWriter>> WalWriter::Create(const std::string& path,
                                                     uint64_t epoch) {
  VSTORE_ASSIGN_OR_RETURN(std::unique_ptr<File> file, File::Create(path));
  std::string header = EncodeHeader(epoch);
  VSTORE_RETURN_IF_ERROR(file->Append(header.data(), header.size()));
  VSTORE_RETURN_IF_ERROR(file->Sync());
  auto writer = std::unique_ptr<WalWriter>(new WalWriter());
  writer->file_ = std::move(file);
  writer->bytes_appended_ = static_cast<int64_t>(header.size());
  return writer;
}

Status WalWriter::Append(const WalRecord& record) {
  BufWriter body;
  body.PutU64(record.lsn);
  body.PutU8(static_cast<uint8_t>(record.type));
  body.PutRaw(record.payload.data(), record.payload.size());

  BufWriter frame;
  frame.PutU32(MaskCrc32(Crc32(body.str().data(), body.size())));
  frame.PutU32(static_cast<uint32_t>(body.size()));
  frame.PutRaw(body.str().data(), body.size());

  VSTORE_RETURN_IF_ERROR(file_->Append(frame.str().data(), frame.size()));
  last_appended_lsn_.store(record.lsn, std::memory_order_release);
  bytes_appended_.fetch_add(static_cast<int64_t>(frame.size()),
                            std::memory_order_relaxed);
  return Status::OK();
}

void WalWriter::EnableWaitAttribution(std::string table_label) {
  wait_table_label_ = std::move(table_label);
  fsync_waits_ = GetWaitStats(wait_table_label_, WaitPoint::kFsync);
}

Status WalWriter::SyncTo(uint64_t lsn) {
  std::unique_lock<std::mutex> lock(sync_mu_);
  if (!sticky_sync_error_.ok()) return sticky_sync_error_;
  // Covered by an earlier group fsync: no durability work, no wait event.
  if (synced_lsn_ >= lsn) return Status::OK();
  // Everything past here blocks — either performing the fsync or waiting
  // for the in-flight leader to cover us. One wait event spans the whole
  // stay, including the rare re-fsync retry.
  WaitEventScope wait(fsync_waits_, WaitPoint::kFsync, wait_table_label_);
  return SyncToLocked(lsn, lock);
}

Status WalWriter::SyncToLocked(uint64_t lsn,
                               std::unique_lock<std::mutex>& lock) {
  for (;;) {
    if (!sticky_sync_error_.ok()) return sticky_sync_error_;
    if (synced_lsn_ >= lsn) return Status::OK();
    if (closed_) {
      // Close() syncs everything appended, so any lsn this writer ever
      // handed out is covered above; landing here means a caller-side bug.
      return Status::Internal("wal: SyncTo past the end of a closed log");
    }
    if (!sync_in_flight_) break;
    sync_cv_.wait(lock);
  }
  // This thread performs the fsync on behalf of everyone waiting. Capture
  // the append high-water mark first: records appended before the fsync
  // starts are covered by it.
  sync_in_flight_ = true;
  uint64_t covers = last_appended_lsn_.load(std::memory_order_acquire);
  lock.unlock();
  Status st = file_->Sync();
  lock.lock();
  sync_in_flight_ = false;
  if (st.ok()) {
    if (covers > synced_lsn_) synced_lsn_ = covers;
  } else {
    sticky_sync_error_ = st;
  }
  sync_cv_.notify_all();
  if (!st.ok()) return st;
  if (synced_lsn_ >= lsn) return Status::OK();
  // Rare: `lsn` was appended after our high-water capture; retry with the
  // lock still held (the loop above re-checks every condition).
  return SyncToLocked(lsn, lock);
}

Status WalWriter::Close() {
  // A committer that grabbed this writer just before a checkpoint rotated
  // it away may still be inside SyncTo; wait it out so the fsync below is
  // the last operation on the fd.
  std::unique_lock<std::mutex> lock(sync_mu_);
  while (sync_in_flight_) sync_cv_.wait(lock);
  if (closed_) return Status::OK();
  Status st = file_->Sync();
  if (st.ok()) {
    synced_lsn_ = last_appended_lsn_.load(std::memory_order_acquire);
    st = file_->Close();
  }
  closed_ = true;
  if (!st.ok()) sticky_sync_error_ = st;
  sync_cv_.notify_all();
  return st;
}

// --- WalReader ------------------------------------------------------------

Result<uint64_t> WalReader::ReadAll(const std::string& path,
                                    bool allow_torn_tail,
                                    std::vector<WalRecord>* out,
                                    WalReadStats* stats) {
  VSTORE_ASSIGN_OR_RETURN(std::unique_ptr<File> file, File::OpenRead(path));
  VSTORE_ASSIGN_OR_RETURN(int64_t size, file->Size());

  std::string contents(static_cast<size_t>(size), '\0');
  size_t got = 0;
  if (size > 0) {
    VSTORE_RETURN_IF_ERROR(
        file->ReadAt(0, contents.data(), contents.size(), &got));
  }
  contents.resize(got);
  if (stats != nullptr) stats->bytes_read = static_cast<int64_t>(got);

  BufReader header(contents.data(), std::min(contents.size(), kWalHeaderSize));
  uint32_t magic = 0, version = 0, header_crc = 0;
  uint64_t epoch = 0;
  if (!header.GetU32(&magic).ok() || magic != kWalMagic) {
    return Status::Internal("wal: bad magic in " + path);
  }
  VSTORE_RETURN_IF_ERROR(header.GetU32(&version));
  if (version != kWalVersion) {
    return Status::Internal("wal: unsupported version in " + path);
  }
  VSTORE_RETURN_IF_ERROR(header.GetU64(&epoch));
  VSTORE_RETURN_IF_ERROR(header.GetU32(&header_crc));
  if (UnmaskCrc32(header_crc) != Crc32(contents.data(), kWalHeaderSize - 4)) {
    return Status::Internal("wal: header checksum mismatch in " + path);
  }

  size_t pos = kWalHeaderSize;
  while (pos < contents.size()) {
    bool tail_ok = false;
    do {
      if (contents.size() - pos < kRecordFrameSize) break;
      uint32_t masked = 0, body_len = 0;
      std::memcpy(&masked, contents.data() + pos, 4);
      std::memcpy(&body_len, contents.data() + pos + 4, 4);
      if (body_len > kMaxRecordBody) break;
      if (contents.size() - pos - kRecordFrameSize < body_len) break;
      const char* body = contents.data() + pos + kRecordFrameSize;
      if (UnmaskCrc32(masked) != Crc32(body, body_len)) break;

      BufReader r(body, body_len);
      WalRecord rec;
      uint8_t type = 0;
      if (!r.GetU64(&rec.lsn).ok() || !r.GetU8(&type).ok()) break;
      rec.type = static_cast<WalRecordType>(type);
      rec.payload.assign(body + 9, body_len - 9);
      out->push_back(std::move(rec));
      if (stats != nullptr) ++stats->records;
      pos += kRecordFrameSize + body_len;
      tail_ok = true;
    } while (false);

    if (!tail_ok) {
      if (!allow_torn_tail) {
        return Status::Internal("wal: corrupt record mid-log in " + path);
      }
      if (stats != nullptr) stats->truncated_tail = true;
      break;
    }
  }
  return epoch;
}

}  // namespace vstore
