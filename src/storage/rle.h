#ifndef VSTORE_STORAGE_RLE_H_
#define VSTORE_STORAGE_RLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vstore {

// Run-length encoding of a code stream, stored as two bit-packed arrays:
// run values and run lengths (the paper's RLE stage, applied when the
// column has long runs — typically after row reordering).
struct RleEncoded {
  std::vector<uint8_t> values;   // bit-packed run values
  std::vector<uint8_t> lengths;  // bit-packed run lengths
  // Non-owning alternatives to the vectors above, pointing into a
  // memory-mapped checkpoint file (the owner keeps the mapping alive via
  // the segment's keepalive). The owned vector wins when non-empty so that
  // archival decompression can rehydrate over an external span.
  const uint8_t* values_extern = nullptr;
  size_t values_extern_size = 0;
  const uint8_t* lengths_extern = nullptr;
  size_t lengths_extern_size = 0;
  int64_t num_runs = 0;
  int64_t num_rows = 0;
  int value_bits = 0;
  int length_bits = 0;
  // In-memory acceleration only (derivable from lengths, not part of the
  // stored format): run_starts[r] is the first row of run r, enabling
  // O(log runs) positioning for batched scans. Rebuild with
  // RleCodec::BuildIndex after deserializing/decompressing `lengths`.
  std::vector<int64_t> run_starts;

  const uint8_t* values_data() const {
    return values.empty() ? values_extern : values.data();
  }
  size_t values_size() const {
    return values.empty() ? values_extern_size : values.size();
  }
  const uint8_t* lengths_data() const {
    return lengths.empty() ? lengths_extern : lengths.data();
  }
  size_t lengths_size() const {
    return lengths.empty() ? lengths_extern_size : lengths.size();
  }

  // Stored size; excludes the derived run index.
  int64_t TotalBytes() const {
    return static_cast<int64_t>(values_size() + lengths_size());
  }
};

class RleCodec {
 public:
  // Counts the runs in codes[0, n) without encoding — used by the encoding
  // chooser to estimate RLE size cheaply.
  static int64_t CountRuns(const uint64_t* codes, int64_t n);

  // Estimated encoded bytes given run count and the maximum code value.
  static int64_t EstimateBytes(int64_t num_runs, int64_t n, uint64_t max_code);

  static RleEncoded Encode(const uint64_t* codes, int64_t n);

  // Recomputes run_starts from the packed lengths.
  static void BuildIndex(RleEncoded* enc);

  // Decodes rows [start, start+count) into out.
  static void Decode(const RleEncoded& enc, int64_t start, int64_t count,
                     uint64_t* out);

  // Full decode convenience.
  static std::vector<uint64_t> DecodeAll(const RleEncoded& enc);
};

}  // namespace vstore

#endif  // VSTORE_STORAGE_RLE_H_
