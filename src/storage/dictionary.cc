#include "storage/dictionary.h"

#include "storage/lzss.h"

#include <algorithm>
#include <cstring>

namespace vstore {

std::string_view StringDictionary::Intern(std::string_view value) {
  if (value.empty()) return std::string_view();
  if (chunk_used_ + value.size() > chunk_cap_) {
    size_t cap = std::max(kChunkSize, value.size());
    chunks_.push_back(std::make_unique<char[]>(cap));
    chunk_cap_ = cap;
    chunk_used_ = 0;
  }
  char* dst = chunks_.back().get() + chunk_used_;
  std::memcpy(dst, value.data(), value.size());
  chunk_used_ += value.size();
  heap_bytes_ += static_cast<int64_t>(value.size());
  return std::string_view(dst, value.size());
}

int64_t StringDictionary::GetOrInsert(std::string_view value,
                                      int64_t capacity_limit) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(value);
  if (it != index_.end()) return it->second;
  int64_t code = size_.load(std::memory_order_relaxed);
  if (code >= capacity_limit) return -1;
  std::string_view stable = Intern(value);
  int level;
  int64_t offset;
  SlotIndex(code, &level, &offset);
  auto& chunk = levels_[static_cast<size_t>(level)];
  if (chunk == nullptr) {
    chunk = std::make_unique<std::string_view[]>(
        static_cast<size_t>(kBaseSlots << level));
  }
  chunk[static_cast<size_t>(offset)] = stable;
  index_.emplace(stable, code);
  // Publish after the slot is written; readers that learn about `code`
  // through a segment installed later will see the slot contents.
  size_.store(code + 1, std::memory_order_release);
  return code;
}

int64_t StringDictionary::Find(std::string_view value) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(value);
  return it == index_.end() ? -1 : it->second;
}

int64_t StringDictionary::MemoryBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return heap_bytes_ +
         static_cast<int64_t>(static_cast<size_t>(size_.load(
                                  std::memory_order_relaxed)) *
                              sizeof(std::string_view));
}

int64_t StringDictionary::ArchivedBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t n = size_.load(std::memory_order_relaxed);
  if (archived_at_size_ == n && archived_bytes_ >= 0) {
    return archived_bytes_;
  }
  // Serialize lengths + payloads and compress.
  std::vector<uint8_t> plain;
  plain.reserve(static_cast<size_t>(heap_bytes_) +
                static_cast<size_t>(n) * 4);
  for (int64_t code = 0; code < n; ++code) {
    int level;
    int64_t offset;
    SlotIndex(code, &level, &offset);
    std::string_view s =
        levels_[static_cast<size_t>(level)][static_cast<size_t>(offset)];
    uint32_t len = static_cast<uint32_t>(s.size());
    const uint8_t* lp = reinterpret_cast<const uint8_t*>(&len);
    plain.insert(plain.end(), lp, lp + sizeof(len));
    plain.insert(plain.end(), s.begin(), s.end());
  }
  archived_bytes_ = static_cast<int64_t>(
      Lzss::Compress(plain.data(), plain.size()).size());
  archived_at_size_ = n;
  return archived_bytes_;
}

}  // namespace vstore
