#include "storage/encoding.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "common/macros.h"

namespace vstore {

namespace {

inline bool Valid(const uint8_t* validity, int64_t i) {
  return validity == nullptr || validity[i] != 0;
}

// Largest power of ten (up to 10^8) dividing every valid value.
int CommonPow10(const int64_t* values, const uint8_t* validity, int64_t n) {
  int scale = 8;
  int64_t divisor = 100000000;
  for (int64_t i = 0; i < n && scale > 0; ++i) {
    if (!Valid(validity, i)) continue;
    while (scale > 0 && values[i] % divisor != 0) {
      --scale;
      divisor /= 10;
    }
  }
  return scale;
}

}  // namespace

CodeStream ValueEncodeInts(const int64_t* values, const uint8_t* validity,
                           int64_t n) {
  CodeStream out;
  out.codes.resize(static_cast<size_t>(n), 0);
  out.venc.code_kind = CodeKind::kValueOffset;

  int64_t min_v = std::numeric_limits<int64_t>::max();
  bool any_valid = false;
  for (int64_t i = 0; i < n; ++i) {
    if (!Valid(validity, i)) continue;
    any_valid = true;
    min_v = std::min(min_v, values[i]);
  }
  if (!any_valid) {
    out.venc.base = 0;
    return out;
  }

  int scale = CommonPow10(values, validity, n);
  int64_t divisor = 1;
  for (int i = 0; i < scale; ++i) divisor *= 10;
  // Only keep the scale if it actually applies to min as well (it does by
  // construction) and the column isn't all-zero (scale meaningless then).
  if (min_v == 0 && scale > 0) {
    bool all_zero = true;
    for (int64_t i = 0; i < n && all_zero; ++i) {
      if (Valid(validity, i) && values[i] != 0) all_zero = false;
    }
    if (all_zero) {
      scale = 0;
      divisor = 1;
    }
  }

  out.venc.scale = scale;
  out.venc.int_pow10 = divisor;
  out.venc.base = min_v / divisor;
  for (int64_t i = 0; i < n; ++i) {
    if (!Valid(validity, i)) continue;
    uint64_t code =
        static_cast<uint64_t>(values[i] / divisor - out.venc.base);
    out.codes[static_cast<size_t>(i)] = code;
    out.max_code = std::max(out.max_code, code);
  }
  return out;
}

CodeStream ValueEncodeDoubles(const double* values, const uint8_t* validity,
                              int64_t n, int max_scale) {
  // Try to represent each value as value * 10^scale being integral.
  for (int scale = 0; scale <= max_scale; ++scale) {
    double factor = std::pow(10.0, scale);
    bool representable = true;
    int64_t min_v = std::numeric_limits<int64_t>::max();
    bool any_valid = false;
    std::vector<int64_t> scaled(static_cast<size_t>(n), 0);
    for (int64_t i = 0; i < n; ++i) {
      if (!Valid(validity, i)) continue;
      double s = values[i] * factor;
      double r = std::nearbyint(s);
      // 2^52 guards exact integer representability in a double. The epsilon
      // absorbs representation error (19.99 * 100 = 1998.999...98); the
      // round-trip check below guarantees exact decoding regardless.
      if (std::abs(s) > 4503599627370496.0 ||
          std::abs(s - r) > 1e-9 * std::max(1.0, std::abs(s)) ||
          r / factor != values[i]) {
        representable = false;
        break;
      }
      scaled[static_cast<size_t>(i)] = static_cast<int64_t>(r);
      min_v = std::min(min_v, scaled[static_cast<size_t>(i)]);
      any_valid = true;
    }
    if (!representable) continue;
    CodeStream out;
    out.codes.resize(static_cast<size_t>(n), 0);
    out.venc.code_kind = CodeKind::kValueScaled;
    out.venc.scale = scale;
    out.venc.dbl_pow10 = factor;
    out.venc.base = any_valid ? min_v : 0;
    for (int64_t i = 0; i < n; ++i) {
      if (!Valid(validity, i)) continue;
      uint64_t code =
          static_cast<uint64_t>(scaled[static_cast<size_t>(i)] - out.venc.base);
      out.codes[static_cast<size_t>(i)] = code;
      out.max_code = std::max(out.max_code, code);
    }
    return out;
  }

  // Incompressible doubles: store raw bit patterns.
  CodeStream out;
  out.codes.resize(static_cast<size_t>(n), 0);
  out.venc.code_kind = CodeKind::kRawDouble;
  for (int64_t i = 0; i < n; ++i) {
    if (!Valid(validity, i)) continue;
    uint64_t code = std::bit_cast<uint64_t>(values[i]);
    out.codes[static_cast<size_t>(i)] = code;
    out.max_code = std::max(out.max_code, code);
  }
  return out;
}

bool EncodeIntValue(int64_t value, const ValueEncoding& venc, uint64_t* code) {
  VSTORE_DCHECK(venc.code_kind == CodeKind::kValueOffset);
  int64_t divisor = venc.int_pow10;
  if (value % divisor != 0) return false;
  int64_t c = value / divisor - venc.base;
  if (c < 0) return false;
  *code = static_cast<uint64_t>(c);
  return true;
}

}  // namespace vstore
