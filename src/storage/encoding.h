#ifndef VSTORE_STORAGE_ENCODING_H_
#define VSTORE_STORAGE_ENCODING_H_

#include <cstdint>
#include <vector>

namespace vstore {

// How a segment's code stream is laid out (the paper's final compression
// stage choice: bit packing vs run-length encoding).
enum class EncodingKind : uint8_t {
  kBitPack = 0,
  kRle,
};

// How raw column values map to integer codes (the paper's first stage:
// value-based encoding for numerics, dictionary encoding otherwise).
enum class CodeKind : uint8_t {
  kValueOffset = 0,  // code = value - base (ints, dates, bools)
  kValueScaled,      // code = round(value * 10^scale) - base (doubles)
  kRawDouble,        // code = IEEE-754 bit pattern (incompressible doubles)
  kDictionary,       // code = dictionary id (strings)
};

// Parameters of value-based encoding.
struct ValueEncoding {
  CodeKind code_kind = CodeKind::kValueOffset;
  int64_t base = 0;
  int scale = 0;  // power of ten applied to doubles before offsetting
  // Cached 10^scale forms so per-element decode avoids pow(); kept in sync
  // by the encoders.
  int64_t int_pow10 = 1;
  double dbl_pow10 = 1.0;
};

// Result of turning a column slice into unsigned codes.
struct CodeStream {
  std::vector<uint64_t> codes;
  ValueEncoding venc;
  uint64_t max_code = 0;
};

// Value-encodes physical-int64 values: finds min over valid rows, subtracts
// it. Null rows get code 0. Also divides out a common power of ten when all
// valid values share one (the paper's exponent trick applied to integers).
CodeStream ValueEncodeInts(const int64_t* values, const uint8_t* validity,
                           int64_t n);

// Value-encodes doubles: if every valid value is exactly representable as a
// scaled integer with scale <= max_scale, uses kValueScaled; otherwise
// falls back to raw IEEE bit patterns (kRawDouble).
CodeStream ValueEncodeDoubles(const double* values, const uint8_t* validity,
                              int64_t n, int max_scale = 4);

// Reverses value encoding for one code.
inline int64_t DecodeIntCode(uint64_t code, const ValueEncoding& venc) {
  return (static_cast<int64_t>(code) + venc.base) * venc.int_pow10;
}

inline double DecodeDoubleCode(uint64_t code, const ValueEncoding& venc) {
  if (venc.code_kind == CodeKind::kRawDouble) {
    double d;
    static_assert(sizeof(d) == sizeof(code));
    __builtin_memcpy(&d, &code, sizeof(d));
    return d;
  }
  // Division (not multiplication by the inverse) keeps decoding bit-exact
  // with the representability check performed at encode time.
  return static_cast<double>(static_cast<int64_t>(code) + venc.base) /
         venc.dbl_pow10;
}

// Forward-maps a raw value to its code; returns false if the value is not
// representable under this encoding (then it cannot occur in the segment).
bool EncodeIntValue(int64_t value, const ValueEncoding& venc, uint64_t* code);

}  // namespace vstore

#endif  // VSTORE_STORAGE_ENCODING_H_
