#include "storage/sharded_table.h"

#include <cstring>
#include <utility>

#include "common/hash.h"
#include "common/macros.h"

namespace vstore {

ShardedTable::ShardedTable(std::string name, Schema schema, Options options)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      options_(std::move(options)),
      partition_column_(schema_.IndexOf(options_.partition_key)) {
  VSTORE_CHECK(options_.num_shards >= 1);
  VSTORE_CHECK(partition_column_ >= 0);
  shards_.reserve(static_cast<size_t>(options_.num_shards));
  for (int i = 0; i < options_.num_shards; ++i) {
    ColumnStoreTable::Options shard_options = options_.shard_options;
    shard_options.metric_table = name_;
    shard_options.metric_shard = std::to_string(i);
    // Shard storage names are internal ("orders#3"); user-visible metric
    // labels carry the logical name via metric_table above.
    shards_.push_back(std::make_unique<ColumnStoreTable>(
        name_ + "#" + std::to_string(i), schema_, std::move(shard_options)));
  }
}

uint64_t ShardedTable::HashPartitionValue(const Value& v) {
  if (v.is_null()) return 0;
  switch (PhysicalTypeOf(v.type())) {
    case PhysicalType::kInt64:
      return HashInt64(static_cast<uint64_t>(v.int64()));
    case PhysicalType::kDouble: {
      double d = v.dbl();
      if (d == 0.0) d = 0.0;  // collapse -0.0 onto +0.0 (they compare equal)
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      return HashInt64(bits);
    }
    case PhysicalType::kString:
      return Hash64(v.str());
  }
  return 0;
}

Status ShardedTable::BulkLoad(const TableData& data) {
  if (!data.schema().Equals(schema_)) {
    return Status::InvalidArgument("bulk load schema mismatch for table " +
                                   name_);
  }
  const int num_shards = this->num_shards();
  std::vector<TableData> parts;
  parts.reserve(static_cast<size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) parts.emplace_back(schema_);
  const ColumnData& key_col = data.column(partition_column_);
  for (int64_t r = 0; r < data.num_rows(); ++r) {
    int target = ShardFor(key_col.GetValue(r));
    parts[static_cast<size_t>(target)].AppendRow(data.GetRow(r));
  }
  for (int i = 0; i < num_shards; ++i) {
    if (parts[static_cast<size_t>(i)].num_rows() == 0) continue;
    VSTORE_RETURN_IF_ERROR(shard(i)->BulkLoad(parts[static_cast<size_t>(i)]));
  }
  return Status::OK();
}

Result<ShardRowId> ShardedTable::Insert(const std::vector<Value>& row) {
  if (static_cast<int>(row.size()) != schema_.num_columns()) {
    return Status::InvalidArgument("row arity does not match schema");
  }
  int target = ShardFor(row[static_cast<size_t>(partition_column_)]);
  VSTORE_ASSIGN_OR_RETURN(RowId id, shard(target)->Insert(row));
  return ShardRowId{target, id};
}

Result<std::vector<ShardRowId>> ShardedTable::InsertBatch(
    const std::vector<std::vector<Value>>& rows) {
  const int num_shards = this->num_shards();
  // Group input rows by target shard, remembering each row's input
  // position so ids come back in input order.
  std::vector<std::vector<const std::vector<Value>*>> batches(
      static_cast<size_t>(num_shards));
  std::vector<std::vector<size_t>> positions(static_cast<size_t>(num_shards));
  for (size_t r = 0; r < rows.size(); ++r) {
    if (static_cast<int>(rows[r].size()) != schema_.num_columns()) {
      return Status::InvalidArgument("row arity does not match schema");
    }
    size_t target = static_cast<size_t>(
        ShardFor(rows[r][static_cast<size_t>(partition_column_)]));
    batches[target].push_back(&rows[r]);
    positions[target].push_back(r);
  }
  std::vector<ShardRowId> ids(rows.size());
  for (int i = 0; i < num_shards; ++i) {
    const auto& batch = batches[static_cast<size_t>(i)];
    if (batch.empty()) continue;
    VSTORE_ASSIGN_OR_RETURN(std::vector<RowId> shard_ids,
                            shard(i)->InsertBatch(batch));
    const auto& pos = positions[static_cast<size_t>(i)];
    for (size_t k = 0; k < shard_ids.size(); ++k) {
      ids[pos[k]] = ShardRowId{i, shard_ids[k]};
    }
  }
  return ids;
}

Status ShardedTable::Delete(ShardRowId id) {
  if (id.shard < 0 || id.shard >= num_shards()) {
    return Status::NotFound("shard ordinal out of range");
  }
  return shard(id.shard)->Delete(id.row);
}

Result<ShardRowId> ShardedTable::Update(ShardRowId id,
                                        const std::vector<Value>& row) {
  if (id.shard < 0 || id.shard >= num_shards()) {
    return Status::NotFound("shard ordinal out of range");
  }
  if (static_cast<int>(row.size()) != schema_.num_columns()) {
    return Status::InvalidArgument("row arity does not match schema");
  }
  int target = ShardFor(row[static_cast<size_t>(partition_column_)]);
  if (target == id.shard) {
    VSTORE_ASSIGN_OR_RETURN(RowId new_id, shard(id.shard)->Update(id.row, row));
    return ShardRowId{id.shard, new_id};
  }
  // Partition key moved: delete on the old shard, insert on the new one.
  // Deleting first keeps failure cheap (a bad id aborts before any write)
  // at the cost of a window where neither version is visible.
  VSTORE_RETURN_IF_ERROR(shard(id.shard)->Delete(id.row));
  VSTORE_ASSIGN_OR_RETURN(RowId new_id, shard(target)->Insert(row));
  shard(target)->metrics().rows_updated->Increment();
  return ShardRowId{target, new_id};
}

Status ShardedTable::GetRow(ShardRowId id, std::vector<Value>* row) const {
  if (id.shard < 0 || id.shard >= num_shards()) {
    return Status::NotFound("shard ordinal out of range");
  }
  return shard(id.shard)->GetRow(id.row, row);
}

int64_t ShardedTable::num_rows() const {
  int64_t total = 0;
  for (const auto& s : shards_) total += s->num_rows();
  return total;
}

int64_t ShardedTable::num_deleted_rows() const {
  int64_t total = 0;
  for (const auto& s : shards_) total += s->num_deleted_rows();
  return total;
}

int64_t ShardedTable::num_delta_rows() const {
  int64_t total = 0;
  for (const auto& s : shards_) total += s->num_delta_rows();
  return total;
}

ColumnStoreTable::SizeBreakdown ShardedTable::Sizes() const {
  ColumnStoreTable::SizeBreakdown total;
  for (const auto& s : shards_) {
    ColumnStoreTable::SizeBreakdown b = s->Sizes();
    total.segment_bytes += b.segment_bytes;
    total.dictionary_bytes += b.dictionary_bytes;
    total.delete_bitmap_bytes += b.delete_bitmap_bytes;
    total.delta_store_bytes += b.delta_store_bytes;
    total.archived_segment_bytes += b.archived_segment_bytes;
    total.archived_dictionary_bytes += b.archived_dictionary_bytes;
  }
  return total;
}

void ShardedTable::RefreshStorageGauges() const {
  for (const auto& s : shards_) s->RefreshStorageGauges();
}

std::vector<TableSnapshot> ShardedTable::SnapshotAll() const {
  std::vector<TableSnapshot> snapshots;
  snapshots.reserve(shards_.size());
  for (const auto& s : shards_) snapshots.push_back(s->Snapshot());
  return snapshots;
}

// --- ShardedTupleMover ----------------------------------------------------

ShardedTupleMover::ShardedTupleMover(ShardedTable* table,
                                     TupleMover::Options options) {
  movers_.reserve(static_cast<size_t>(table->num_shards()));
  for (int i = 0; i < table->num_shards(); ++i) {
    movers_.push_back(std::make_unique<TupleMover>(table->shard(i), options));
  }
}

Result<int64_t> ShardedTupleMover::RunOnce() {
  int64_t total = 0;
  for (auto& m : movers_) {
    VSTORE_ASSIGN_OR_RETURN(int64_t moved, m->RunOnce());
    total += moved;
  }
  return total;
}

void ShardedTupleMover::Start(std::chrono::milliseconds period) {
  for (auto& m : movers_) m->Start(period);
}

Status ShardedTupleMover::Stop() {
  Status first = Status::OK();
  for (auto& m : movers_) {
    Status s = m->Stop();
    if (first.ok() && !s.ok()) first = s;
  }
  return first;
}

}  // namespace vstore
