#ifndef VSTORE_STORAGE_COLUMN_STORE_H_
#define VSTORE_STORAGE_COLUMN_STORE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/memory_tracker.h"
#include "common/metrics.h"
#include "common/span_trace.h"
#include "common/status.h"
#include "storage/delete_bitmap.h"
#include "storage/delta_store.h"
#include "storage/dictionary.h"
#include "storage/row_group.h"
#include "types/schema.h"
#include "types/table_data.h"

namespace vstore {

// --- Row ids ------------------------------------------------------------
// Rows in compressed row groups are addressed as (generation, group,
// offset); rows in delta stores carry a sequence number with the top bit
// set. A row keeps its id until the tuple mover compresses its delta store
// (then it gets a compressed id) or a delete removes it. Consequently,
// RowIds held across reorganization may dangle: Delete/Update/GetRow return
// NotFound for them. The generation field makes this detectable for
// compressed ids too: RemoveDeletedRows bumps the group's rebuild
// generation, so an id minted before the rebuild can no longer alias a
// different live row at the same (group, offset) — it fails the generation
// check instead. Callers that reorganize concurrently must locate rows by
// value (scan) rather than by stored id — the same caveat SQL Server's
// tuple mover imposes on row locators.
//
// Layout: [63] delta flag | [48..62] rebuild generation | [32..47] group |
// [0..31] offset. Freshly built groups have generation 0, so
// MakeCompressedRowId(group, offset) addresses them directly.
using RowId = uint64_t;

constexpr RowId kDeltaRowIdBit = RowId{1} << 63;
constexpr int kRowIdGroupShift = 32;
constexpr int kRowIdGenerationShift = 48;
constexpr uint64_t kRowIdGroupMask = 0xFFFF;
constexpr uint64_t kRowIdGenerationMask = 0x7FFF;

inline bool IsDeltaRowId(RowId id) { return (id & kDeltaRowIdBit) != 0; }
inline RowId MakeCompressedRowId(int64_t group, int64_t offset,
                                 uint32_t generation = 0) {
  return (static_cast<RowId>(generation) << kRowIdGenerationShift) |
         (static_cast<RowId>(group) << kRowIdGroupShift) |
         static_cast<RowId>(offset);
}
inline RowId MakeDeltaRowId(uint64_t seq) { return kDeltaRowIdBit | seq; }
inline int64_t RowIdGroup(RowId id) {
  return static_cast<int64_t>((id >> kRowIdGroupShift) & kRowIdGroupMask);
}
inline int64_t RowIdOffset(RowId id) {
  return static_cast<int64_t>(id & 0xFFFFFFFFu);
}
inline uint32_t RowIdGeneration(RowId id) {
  return static_cast<uint32_t>((id >> kRowIdGenerationShift) &
                               kRowIdGenerationMask);
}

// --- Table version -------------------------------------------------------
// An immutable snapshot of a column store table's storage state: the
// row-group list, per-group delete bitmaps and rebuild generations, and the
// delta-store list. The table publishes the current version under its
// mutex; a scan grabs a shared_ptr to it at Open and then reads with no
// lock at all, while writers and the tuple mover install successor
// versions. Copy-on-write keeps this cheap: a successor shares every
// row group / bitmap / delta store it does not touch with its predecessor,
// and a version's constituents are never mutated once any snapshot
// references them. A retired version is freed when the last snapshot
// holding it is dropped.
class TableVersion {
 public:
  TableVersion() = default;
  VSTORE_DISALLOW_COPY_AND_ASSIGN(TableVersion);

  int64_t num_row_groups() const {
    return static_cast<int64_t>(row_groups_.size());
  }
  const RowGroup& row_group(int64_t i) const {
    return *row_groups_[static_cast<size_t>(i)];
  }
  // Rebuild generation of group i (encoded in compressed RowIds).
  uint32_t generation(int64_t i) const {
    return generations_[static_cast<size_t>(i)];
  }
  const DeleteBitmap& delete_bitmap(int64_t i) const {
    return *delete_bitmaps_[static_cast<size_t>(i)];
  }
  int64_t num_delta_stores() const {
    return static_cast<int64_t>(delta_stores_.size());
  }
  const DeltaStore& delta_store(int64_t i) const {
    return *delta_stores_[static_cast<size_t>(i)];
  }

  // Monotonic version number (diagnostics; bumps on every fork).
  uint64_t sequence() const { return sequence_; }

  // Live row count in this version (compressed minus deleted, plus delta).
  int64_t num_rows() const;
  int64_t num_deleted_rows() const;
  int64_t num_delta_rows() const;

 private:
  friend class ColumnStoreTable;

  std::vector<std::shared_ptr<RowGroup>> row_groups_;
  std::vector<uint32_t> generations_;
  std::vector<std::shared_ptr<DeleteBitmap>> delete_bitmaps_;
  std::vector<std::shared_ptr<DeltaStore>> delta_stores_;
  // Copy-on-write bookkeeping (touched only by the owning table under its
  // exclusive lock): owned_[i] means this version's object is not shared
  // with any earlier version, so it may be mutated in place.
  std::vector<bool> bitmap_owned_;
  std::vector<bool> store_owned_;
  uint64_t sequence_ = 0;
  // Set (under the shared lock) the first time a snapshot of this version
  // is handed out; a writer seeing it set forks a successor instead of
  // mutating in place.
  std::atomic<bool> snapshotted_{false};
};

using TableSnapshot = std::shared_ptr<const TableVersion>;

// --- Durability hook ------------------------------------------------------
// A ColumnStoreTable with a hook attached logs every committed mutation so
// the durable layer (storage/durable_table.h) can write it ahead to a WAL.
// The Log* methods are invoked under the table's exclusive lock immediately
// after the in-memory mutation succeeded, so log order equals serialization
// order; Commit() is invoked by the DML entry points after the lock is
// released and must not return until the records logged so far are durable
// (the WAL writer group-commits concurrent callers into one fsync).
//
// Reorganizations are logged logically: the install intent (which delta
// stores were compressed / which groups were rebuilt, in install order) is
// recorded inside the install critical section, and recovery re-executes
// the reorganization deterministically from the replayed table state.
class TableDurabilityHook {
 public:
  virtual ~TableDurabilityHook() = default;
  virtual Status LogInsert(RowId id, const std::vector<Value>& row) = 0;
  virtual Status LogDelete(RowId id) = 0;
  virtual Status LogCompressInstall(const std::vector<int64_t>& store_ids) = 0;
  virtual Status LogRebuildInstall(const std::vector<int64_t>& groups) = 0;
  virtual Status Commit() = 0;
  // Bulk loads are not row-logged (their rows go straight into compressed
  // groups); the hook persists them with a synchronous checkpoint instead.
  virtual Status OnBulkLoad() = 0;
};

// --- Column store table ---------------------------------------------------
// The paper's clustered (updatable) column store index used as base table
// storage: compressed row groups + delete bitmaps + delta stores, fed by
// bulk loads and trickle inserts, reorganized by the tuple mover.
//
// Concurrency: the table keeps its state in an immutable TableVersion
// published under `mutex_`. Readers call Snapshot() (brief shared lock) and
// then scan with no lock held; writers (Insert/Delete/Update) take the
// mutex exclusively, fork the version if it has been snapshotted, apply
// copy-on-write to the bitmap/delta store they touch, and publish — so a
// DML statement is a single version install and a scan's snapshot is never
// affected. Reorganization (BulkLoad/CompressDeltaStores/RemoveDeletedRows,
// i.e. everything that builds row groups and appends to the shared primary
// dictionaries) is serialized by `reorg_mutex_`, builds new groups with no
// table lock held, and installs them under the exclusive lock with
// pointer-identity conflict checks: a bitmap or delta store modified since
// the reorganizer's snapshot was cloned by copy-on-write, so its pointer
// changed, and the reorganizer skips it (retried next pass) rather than
// losing the concurrent write. Archive()/EvictAll() mutate segment
// residency in place and still require quiescent readers (they are
// single-threaded experiment paths).
class ColumnStoreTable {
 public:
  struct Options {
    // Max rows per compressed row group (paper: ~2^20).
    int64_t row_group_size = 1 << 20;
    // Bulk loads produce compressed row groups directly when a chunk has at
    // least this many rows; smaller tails go through a delta store
    // (matches the paper's bulk-insert behaviour).
    int64_t min_compress_rows = 102400;
    // Capacity of the shared per-column primary dictionaries.
    int64_t primary_dict_capacity = 1 << 20;
    // Row-reordering compression optimization (DESIGN.md E8).
    bool optimize_row_order = false;
    // Apply archival (LZSS) compression to every new row group (E7).
    bool archival = false;
    // Metric labeling. By default every table publishes one-level
    // {table="<name>"} families. A shard of a ShardedTable overrides both:
    // metric_table carries the logical (user-visible) table name and
    // metric_shard the shard ordinal, so its families are the two-level
    // {table="<logical>",shard="<i>"} — per-shard instances never clobber
    // each other's gauges and roll up by summing over the shard label.
    std::string metric_table;  // "" -> use the table name
    std::string metric_shard;  // "" -> one-level family
  };

  ColumnStoreTable(std::string name, Schema schema, Options options);
  ColumnStoreTable(std::string name, Schema schema)
      : ColumnStoreTable(std::move(name), std::move(schema), Options()) {}
  VSTORE_DISALLOW_COPY_AND_ASSIGN(ColumnStoreTable);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  const Options& options() const { return options_; }

  // --- DML -------------------------------------------------------------
  Status BulkLoad(const TableData& data);
  Result<RowId> Insert(const std::vector<Value>& row);
  // Inserts every row under one lock acquisition / one version install
  // (sharded routing batches the rows bound for one shard and applies them
  // here). Rows are validated for arity up front; on error nothing is
  // applied. Returned ids are in input order.
  Result<std::vector<RowId>> InsertBatch(
      const std::vector<const std::vector<Value>*>& rows);
  Status Delete(RowId id);
  // Deletes the old row and inserts the new version atomically (one
  // critical section, one version install); returns the new id. On error
  // nothing is applied.
  Result<RowId> Update(RowId id, const std::vector<Value>& row);
  // Point lookup (bookmark support): fetches the live row with this id.
  Status GetRow(RowId id, std::vector<Value>* row) const;

  // Live row count (compressed minus deleted, plus delta rows).
  int64_t num_rows() const;
  int64_t num_deleted_rows() const;
  int64_t num_delta_rows() const;

  // --- Reorganization (tuple mover entry points) ------------------------
  // Per-operation accounting handed back to the caller (the tuple mover
  // folds it into its pass stats and the metrics registry).
  struct ReorgStats {
    int64_t installed = 0;  // stores compressed / groups rebuilt
    int64_t rows = 0;       // rows moved into new compressed groups
    // Items built off-lock but not installed because a concurrent write
    // copy-on-write-replaced the source (retried next pass).
    int64_t conflicts = 0;
  };
  // Compresses closed delta stores into row groups; with `include_open`
  // also compresses the open store (paper: REORGANIZE ... FORCE). Returns
  // the number of delta stores compressed. Runs concurrently with scans
  // and DML; a store that takes writes mid-compaction is left in place
  // (counted in stats->conflicts).
  Result<int64_t> CompressDeltaStores(bool include_open = false,
                                      ReorgStats* stats = nullptr);
  // Rebuilds row groups whose deleted fraction exceeds `threshold`,
  // physically removing deleted rows and bumping the group's rebuild
  // generation. A group that takes deletes mid-rebuild is left in place
  // (counted in stats->conflicts).
  Result<int64_t> RemoveDeletedRows(double threshold = 0.1,
                                    ReorgStats* stats = nullptr);

  // Testing seam: invoked by both reorg operations after they have built
  // replacement structures off-lock but before taking the install lock —
  // the window in which a concurrent write causes an install conflict.
  void set_reorg_hook_for_testing(std::function<void()> hook) {
    reorg_hook_for_testing_ = std::move(hook);
  }

  // --- Durability ---------------------------------------------------------
  // Attaches the write-ahead logging hook. Must be called while no DML is
  // running (the durable layer attaches it after recovery, before handing
  // the table out). The hook is borrowed, not owned, and must outlive the
  // table. Pass nullptr to detach.
  void AttachDurabilityHook(TableDurabilityHook* hook);

  // State a checkpoint must capture atomically with the WAL rotation: the
  // current version plus the delta id/sequence counters that make replayed
  // RowId assignment deterministic.
  struct CheckpointState {
    TableSnapshot snapshot;
    uint64_t next_delta_seq = 0;
    int64_t next_delta_id = 0;
  };
  // Captures the state and runs `rotate` (the durable layer's WAL swap)
  // inside one exclusive critical section, so no mutation can fall between
  // the captured snapshot and the first record of the new log.
  Result<CheckpointState> CaptureCheckpointState(
      const std::function<Status()>& rotate);

  // Everything persisted in a checkpoint, in table-installable form; the
  // segment-file reader produces one of these from disk.
  struct RecoveredState {
    std::vector<std::shared_ptr<RowGroup>> row_groups;
    std::vector<uint32_t> generations;
    std::vector<std::shared_ptr<DeleteBitmap>> delete_bitmaps;
    std::vector<std::shared_ptr<DeltaStore>> delta_stores;
    uint64_t next_delta_seq = 0;
    int64_t next_delta_id = 0;
    uint64_t version_sequence = 0;
  };

  // --- Recovery apply paths ----------------------------------------------
  // Used only by the durable layer while replaying, before the hook is
  // attached and before the table is handed to anyone else. They are
  // metric-silent: DML counters are reconciled once at the end so replaying
  // a log tail twice across restarts never double-counts.
  Status RecoverInstallState(RecoveredState state);
  // Re-applies a logged insert; verifies the deterministically re-assigned
  // RowId matches the logged one.
  Status RecoverInsert(RowId id, const std::vector<Value>& row);
  Status RecoverDelete(RowId id);
  // Re-executes a logged reorganization install: compresses exactly the
  // listed delta stores (by id, in order) / rebuilds the listed groups.
  Status RecoverCompressStores(const std::vector<int64_t>& store_ids);
  Status RecoverRebuildGroups(const std::vector<int64_t>& groups);
  // Sets the DML counters to values consistent with the recovered snapshot
  // (inserted - deleted == live rows) and refreshes the storage gauges.
  void ReconcileMetricsAfterRecovery();

  // --- Archival ----------------------------------------------------------
  // Both require quiescent readers (no concurrent scans/GetRow).
  Status Archive();      // compress all row groups (COLUMNSTORE_ARCHIVE)
  void EvictAll() const; // drop resident copies of archived segments

  // --- Size accounting (compression experiments) -------------------------
  struct SizeBreakdown {
    int64_t segment_bytes = 0;      // packed codes + null bitmaps + local dicts
    int64_t dictionary_bytes = 0;   // shared primary dictionaries
    int64_t delete_bitmap_bytes = 0;
    int64_t delta_store_bytes = 0;
    int64_t archived_segment_bytes = 0;     // compressed sizes (if archived)
    int64_t archived_dictionary_bytes = 0;  // primary dicts, compressed
    int64_t Total() const {
      return segment_bytes + dictionary_bytes + delete_bitmap_bytes +
             delta_store_bytes;
    }
    int64_t TotalArchived() const {
      return archived_segment_bytes + archived_dictionary_bytes +
             delete_bitmap_bytes + delta_store_bytes;
    }
  };
  SizeBreakdown Sizes() const;

  // --- Metrics ------------------------------------------------------------
  // Handles into the global registry, labeled {table="<name>"} — or
  // {table="<logical>",shard="<i>"} when Options::metric_shard is set — and
  // resolved once at construction (two tables with the same labels share a
  // family — the registry is keyed by name, not instance). DML paths bump
  // the counters inline; the storage gauges (delta rows/bytes, group
  // counts, SizeBreakdown components) are refreshed on every reorg publish
  // and on demand via RefreshStorageGauges() (StatsReport does this), so
  // DML stays a pure counter increment.
  struct TableMetrics {
    Counter* rows_inserted = nullptr;  // includes bulk-loaded rows
    Counter* rows_deleted = nullptr;
    Counter* rows_updated = nullptr;
    Counter* reorg_installs = nullptr;
    Counter* reorg_conflicts = nullptr;
    Counter* delta_stores_compressed = nullptr;
    Counter* row_groups_rebuilt = nullptr;
    Gauge* delta_rows = nullptr;
    Gauge* delta_bytes = nullptr;
    Gauge* delta_stores = nullptr;
    Gauge* row_groups = nullptr;
    Gauge* deleted_rows = nullptr;
    Gauge* segment_bytes = nullptr;
    Gauge* dictionary_bytes = nullptr;
    Gauge* delete_bitmap_bytes = nullptr;
  };
  const TableMetrics& metrics() const { return metrics_; }
  // Label values the metric families above were resolved with; the tuple
  // mover labels its per-table metrics identically so a shard's mover
  // passes land in the same {table=,shard=} family set.
  const std::string& metric_table_label() const { return metric_table_label_; }
  const std::string& metric_shard_label() const {
    return options_.metric_shard;
  }
  // Recomputes the storage gauges from the current version + Sizes().
  void RefreshStorageGauges() const;

  // --- Read access --------------------------------------------------------
  // The current version, pinned: scans hold one and read entirely
  // lock-free while writers install successors. Must not outlive the table.
  TableSnapshot Snapshot() const;

  // Convenience accessors over the current version. The returned references
  // are stable only while nothing can retire their version (single-threaded
  // tests/benchmarks); concurrent readers must hold a Snapshot().
  int64_t num_row_groups() const;
  const RowGroup& row_group(int64_t i) const;
  const DeleteBitmap& delete_bitmap(int64_t i) const;
  uint32_t generation(int64_t i) const;
  int64_t num_delta_stores() const;
  const DeltaStore& delta_store(int64_t i) const;

  // The shared primary dictionary for string column `col`, nullptr for
  // non-string columns. The pointers are fixed at construction; concurrent
  // reads of size()/MemoryBytes() while the tuple mover appends are safe
  // (see StringDictionary's concurrency contract).
  std::shared_ptr<const StringDictionary> primary_dictionary(int col) const {
    return primary_dicts_[static_cast<size_t>(col)];
  }

 private:
  // Builds rows [begin, end) of `data` as one compressed row group with the
  // given group id. Appends to the shared primary dictionaries; callers
  // must hold reorg_mutex_. No table lock is required.
  std::shared_ptr<RowGroup> BuildRowGroup(const TableData& data, int64_t begin,
                                          int64_t end, int64_t id);

  // The remaining helpers require mutex_ held exclusively.
  // Returns the version to mutate, forking a successor (and publishing it
  // as the current version) if the current one has been snapshotted.
  TableVersion* MutableVersion();
  // Copy-on-write accessors: clone the object into `v` if it is still
  // shared with an earlier version.
  DeleteBitmap* MutableBitmap(TableVersion* v, int64_t group);
  DeltaStore* MutableDeltaStore(TableVersion* v, int64_t index);
  // `log` suppresses WAL logging for rows persisted another way (bulk-load
  // tails ride the synchronous checkpoint; recovery must not re-log).
  Status InsertLocked(TableVersion* v, const std::vector<Value>& row,
                      RowId* id, bool log = true);
  Status DeleteLocked(TableVersion* v, RowId id, bool log = true);

  // mutex_ acquisition with wait attribution: try-lock first (the
  // uncontended path pays nothing), and only a genuinely blocked acquire
  // records a {table=,point=lock} wait event.
  std::unique_lock<std::shared_mutex> LockExclusive() const;
  std::shared_lock<std::shared_mutex> LockShared() const;

  std::string name_;
  Schema schema_;
  Options options_;
  std::string metric_table_label_;  // options_.metric_table or name_

  // Guards version_ (publish/acquire) and the delta id counters.
  mutable std::shared_mutex mutex_;
  // Serializes row-group construction (and thus primary-dictionary
  // appends). Always acquired before mutex_; never held while blocking on
  // anything else.
  std::mutex reorg_mutex_;

  std::shared_ptr<TableVersion> version_;
  std::vector<std::shared_ptr<StringDictionary>> primary_dicts_;
  uint64_t next_delta_seq_ = 0;
  int64_t next_delta_id_ = 0;

  // Storage-side memory accounting: one node per table under the process
  // root, with a child per component class, synced from Sizes() at every
  // RefreshStorageGauges(). The table node is declared before its
  // component children (children unregister from their parent on
  // destruction).
  std::unique_ptr<MemoryTracker> mem_;
  std::unique_ptr<MemoryTracker> mem_segments_;
  std::unique_ptr<MemoryTracker> mem_dicts_;
  std::unique_ptr<MemoryTracker> mem_bitmaps_;
  std::unique_ptr<MemoryTracker> mem_delta_;

  TableMetrics metrics_;
  // Wait-metric handles for this table, resolved once at construction:
  // lock_waits_ feeds blocked mutex_ acquisitions, reorg_waits_ feeds the
  // build time wasted by a reorg-install conflict.
  WaitStats lock_waits_;
  WaitStats reorg_waits_;
  std::function<void()> reorg_hook_for_testing_;

  // Durable layer wiring (see TableDurabilityHook).
  TableDurabilityHook* durability_ = nullptr;
};

}  // namespace vstore

#endif  // VSTORE_STORAGE_COLUMN_STORE_H_
