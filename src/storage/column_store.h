#ifndef VSTORE_STORAGE_COLUMN_STORE_H_
#define VSTORE_STORAGE_COLUMN_STORE_H_

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "storage/delete_bitmap.h"
#include "storage/delta_store.h"
#include "storage/dictionary.h"
#include "storage/row_group.h"
#include "types/schema.h"
#include "types/table_data.h"

namespace vstore {

// --- Row ids ------------------------------------------------------------
// Rows in compressed row groups are addressed as (group, offset); rows in
// delta stores carry a sequence number with the top bit set. A row keeps
// its id until the tuple mover compresses its delta store (then it gets a
// compressed id) or a delete removes it. Consequently, RowIds held across
// reorganization may dangle: Delete/Update/GetRow return NotFound for
// them. Callers that reorganize concurrently must locate rows by value
// (scan) rather than by stored id — the same caveat SQL Server's tuple
// mover imposes on row locators.
using RowId = uint64_t;

constexpr RowId kDeltaRowIdBit = RowId{1} << 63;

inline bool IsDeltaRowId(RowId id) { return (id & kDeltaRowIdBit) != 0; }
inline RowId MakeCompressedRowId(int64_t group, int64_t offset) {
  return (static_cast<RowId>(group) << 32) | static_cast<RowId>(offset);
}
inline RowId MakeDeltaRowId(uint64_t seq) { return kDeltaRowIdBit | seq; }
inline int64_t RowIdGroup(RowId id) {
  return static_cast<int64_t>((id & ~kDeltaRowIdBit) >> 32);
}
inline int64_t RowIdOffset(RowId id) {
  return static_cast<int64_t>(id & 0xFFFFFFFFu);
}

// --- Column store table ---------------------------------------------------
// The paper's clustered (updatable) column store index used as base table
// storage: compressed row groups + delete bitmaps + delta stores, fed by
// bulk loads and trickle inserts, reorganized by the tuple mover.
//
// Concurrency: writers (Insert/Delete/Update/BulkLoad/Reorganize/Archive)
// take the table's mutex exclusively; scans take it shared for the duration
// of the scan (see ColumnStoreScan).
class ColumnStoreTable {
 public:
  struct Options {
    // Max rows per compressed row group (paper: ~2^20).
    int64_t row_group_size = 1 << 20;
    // Bulk loads produce compressed row groups directly when a chunk has at
    // least this many rows; smaller tails go through a delta store
    // (matches the paper's bulk-insert behaviour).
    int64_t min_compress_rows = 102400;
    // Capacity of the shared per-column primary dictionaries.
    int64_t primary_dict_capacity = 1 << 20;
    // Row-reordering compression optimization (DESIGN.md E8).
    bool optimize_row_order = false;
    // Apply archival (LZSS) compression to every new row group (E7).
    bool archival = false;
  };

  ColumnStoreTable(std::string name, Schema schema, Options options);
  ColumnStoreTable(std::string name, Schema schema)
      : ColumnStoreTable(std::move(name), std::move(schema), Options()) {}
  VSTORE_DISALLOW_COPY_AND_ASSIGN(ColumnStoreTable);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  const Options& options() const { return options_; }

  // --- DML -------------------------------------------------------------
  Status BulkLoad(const TableData& data);
  Result<RowId> Insert(const std::vector<Value>& row);
  Status Delete(RowId id);
  // Deletes the old row and inserts the new version; returns the new id.
  Result<RowId> Update(RowId id, const std::vector<Value>& row);
  // Point lookup (bookmark support): fetches the live row with this id.
  Status GetRow(RowId id, std::vector<Value>* row) const;

  // Live row count (compressed minus deleted, plus delta rows).
  int64_t num_rows() const;
  int64_t num_deleted_rows() const;
  int64_t num_delta_rows() const;

  // --- Reorganization (tuple mover entry points) ------------------------
  // Compresses closed delta stores into row groups; with `include_open`
  // also compresses the open store (paper: REORGANIZE ... FORCE). Returns
  // the number of delta stores compressed.
  Result<int64_t> CompressDeltaStores(bool include_open = false);
  // Rebuilds row groups whose deleted fraction exceeds `threshold`,
  // physically removing deleted rows.
  Result<int64_t> RemoveDeletedRows(double threshold = 0.1);

  // --- Archival ----------------------------------------------------------
  Status Archive();      // compress all row groups (COLUMNSTORE_ARCHIVE)
  void EvictAll() const; // drop resident copies of archived segments

  // --- Size accounting (compression experiments) -------------------------
  struct SizeBreakdown {
    int64_t segment_bytes = 0;      // packed codes + null bitmaps + local dicts
    int64_t dictionary_bytes = 0;   // shared primary dictionaries
    int64_t delete_bitmap_bytes = 0;
    int64_t delta_store_bytes = 0;
    int64_t archived_segment_bytes = 0;     // compressed sizes (if archived)
    int64_t archived_dictionary_bytes = 0;  // primary dicts, compressed
    int64_t Total() const {
      return segment_bytes + dictionary_bytes + delete_bitmap_bytes +
             delta_store_bytes;
    }
    int64_t TotalArchived() const {
      return archived_segment_bytes + archived_dictionary_bytes +
             delete_bitmap_bytes + delta_store_bytes;
    }
  };
  SizeBreakdown Sizes() const;

  // --- Read access (used by scans holding the shared lock) ---------------
  std::shared_mutex& mutex() const { return mutex_; }
  int64_t num_row_groups() const {
    return static_cast<int64_t>(row_groups_.size());
  }
  const RowGroup& row_group(int64_t i) const {
    return *row_groups_[static_cast<size_t>(i)];
  }
  const DeleteBitmap& delete_bitmap(int64_t i) const {
    return delete_bitmaps_[static_cast<size_t>(i)];
  }
  int64_t num_delta_stores() const {
    return static_cast<int64_t>(delta_stores_.size());
  }
  const DeltaStore& delta_store(int64_t i) const {
    return *delta_stores_[static_cast<size_t>(i)];
  }

 private:
  // Appends rows [begin, end) of `data` as one compressed row group.
  Status AppendRowGroup(const TableData& data, int64_t begin, int64_t end);
  // Returns the open delta store, creating one if needed.
  DeltaStore* OpenDeltaStore();
  Status InsertLocked(const std::vector<Value>& row, RowId* id);
  Status CompressOneDeltaStore(size_t index);

  std::string name_;
  Schema schema_;
  Options options_;

  mutable std::shared_mutex mutex_;
  std::vector<std::unique_ptr<RowGroup>> row_groups_;
  std::vector<DeleteBitmap> delete_bitmaps_;
  std::vector<std::unique_ptr<DeltaStore>> delta_stores_;
  std::vector<std::shared_ptr<StringDictionary>> primary_dicts_;
  uint64_t next_delta_seq_ = 0;
  int64_t next_delta_id_ = 0;
};

}  // namespace vstore

#endif  // VSTORE_STORAGE_COLUMN_STORE_H_
