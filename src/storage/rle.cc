#include "storage/rle.h"

#include <algorithm>

#include "common/bit_util.h"
#include "common/macros.h"
#include "storage/bit_pack.h"

namespace vstore {

int64_t RleCodec::CountRuns(const uint64_t* codes, int64_t n) {
  if (n == 0) return 0;
  int64_t runs = 1;
  for (int64_t i = 1; i < n; ++i) {
    runs += codes[i] != codes[i - 1];
  }
  return runs;
}

int64_t RleCodec::EstimateBytes(int64_t num_runs, int64_t n,
                                uint64_t max_code) {
  int value_bits = bit_util::BitsRequired(max_code);
  // Run lengths are bounded by n; assume the worst-case width since the
  // chooser only needs a close upper bound.
  int length_bits = bit_util::BitsRequired(static_cast<uint64_t>(n));
  return BitPacker::PackedBytes(num_runs, value_bits) +
         BitPacker::PackedBytes(num_runs, length_bits);
}

RleEncoded RleCodec::Encode(const uint64_t* codes, int64_t n) {
  RleEncoded enc;
  enc.num_rows = n;
  if (n == 0) return enc;

  std::vector<uint64_t> run_values;
  std::vector<uint64_t> run_lengths;
  uint64_t current = codes[0];
  uint64_t length = 1;
  uint64_t max_value = 0;
  uint64_t max_length = 0;
  for (int64_t i = 1; i <= n; ++i) {
    if (i < n && codes[i] == current) {
      ++length;
      continue;
    }
    run_values.push_back(current);
    run_lengths.push_back(length);
    max_value = std::max(max_value, current);
    max_length = std::max(max_length, length);
    if (i < n) {
      current = codes[i];
      length = 1;
    }
  }

  enc.num_runs = static_cast<int64_t>(run_values.size());
  enc.value_bits = bit_util::BitsRequired(max_value);
  enc.length_bits = bit_util::BitsRequired(max_length);
  enc.values = BitPacker::Pack(run_values.data(), enc.num_runs, enc.value_bits);
  enc.lengths =
      BitPacker::Pack(run_lengths.data(), enc.num_runs, enc.length_bits);
  BuildIndex(&enc);
  return enc;
}

void RleCodec::BuildIndex(RleEncoded* enc) {
  enc->run_starts.resize(static_cast<size_t>(enc->num_runs));
  int64_t row = 0;
  for (int64_t r = 0; r < enc->num_runs; ++r) {
    enc->run_starts[static_cast<size_t>(r)] = row;
    row += static_cast<int64_t>(
        BitPacker::Get(enc->lengths_data(), enc->length_bits, r));
  }
}

void RleCodec::Decode(const RleEncoded& enc, int64_t start, int64_t count,
                      uint64_t* out) {
  VSTORE_DCHECK(start + count <= enc.num_rows);
  if (count == 0) return;
  VSTORE_DCHECK(static_cast<int64_t>(enc.run_starts.size()) == enc.num_runs);
  // Binary-search the first run covering `start`, then walk forward.
  int64_t r = static_cast<int64_t>(
                  std::upper_bound(enc.run_starts.begin(),
                                   enc.run_starts.end(), start) -
                  enc.run_starts.begin()) -
              1;
  int64_t row = enc.run_starts[static_cast<size_t>(r)];
  int64_t produced = 0;
  for (; r < enc.num_runs && produced < count; ++r) {
    uint64_t value = BitPacker::Get(enc.values_data(), enc.value_bits, r);
    int64_t length = static_cast<int64_t>(
        BitPacker::Get(enc.lengths_data(), enc.length_bits, r));
    int64_t run_end = row + length;
    int64_t from = std::max(row, start);
    int64_t to = std::min(run_end, start + count);
    for (int64_t i = from; i < to; ++i) {
      out[produced++] = value;
    }
    row = run_end;
  }
  VSTORE_DCHECK(produced == count);
}

std::vector<uint64_t> RleCodec::DecodeAll(const RleEncoded& enc) {
  std::vector<uint64_t> out(static_cast<size_t>(enc.num_rows));
  Decode(enc, 0, enc.num_rows, out.data());
  return out;
}

}  // namespace vstore
