#include "storage/lzss.h"

#include <algorithm>
#include <cstring>

namespace vstore {

namespace {

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxDistance = 65535;
constexpr int kHashBits = 16;
constexpr uint32_t kHashSize = 1u << kHashBits;

inline uint32_t HashAt(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return (v * 2654435761u) >> (32 - kHashBits);
}

void PutCount(std::vector<uint8_t>* out, size_t count) {
  while (count >= 255) {
    out->push_back(255);
    count -= 255;
  }
  out->push_back(static_cast<uint8_t>(count));
}

// Emits one token: `lit_len` literals from `lit_start`, then a match of
// `match_len` at `distance` (match_len == 0 means literals only, used for
// the final token).
void EmitToken(std::vector<uint8_t>* out, const uint8_t* lit_start,
               size_t lit_len, size_t match_len, size_t distance) {
  uint8_t lit_nibble = static_cast<uint8_t>(std::min<size_t>(lit_len, 15));
  size_t match_extra = match_len >= kMinMatch ? match_len - kMinMatch : 0;
  uint8_t match_nibble = static_cast<uint8_t>(
      match_len == 0 ? 0 : std::min<size_t>(match_extra + 1, 15));
  out->push_back(static_cast<uint8_t>((lit_nibble << 4) | match_nibble));
  if (lit_nibble == 15) PutCount(out, lit_len - 15);
  out->insert(out->end(), lit_start, lit_start + lit_len);
  if (match_len == 0) return;
  out->push_back(static_cast<uint8_t>(distance & 0xFF));
  out->push_back(static_cast<uint8_t>(distance >> 8));
  if (match_nibble == 15) PutCount(out, match_extra + 1 - 15);
}

}  // namespace

std::vector<uint8_t> Lzss::Compress(const uint8_t* data, size_t len) {
  std::vector<uint8_t> out;
  out.reserve(len / 2 + 16);
  if (len < kMinMatch + 4) {
    EmitToken(&out, data, len, 0, 0);
    return out;
  }

  // head[h] = most recent position with hash h; prev chains older ones.
  std::vector<int64_t> head(kHashSize, -1);
  std::vector<int64_t> prev(len, -1);

  const size_t last_hashable = len - 4;
  size_t anchor = 0;  // start of pending literal run
  size_t pos = 0;
  while (pos <= last_hashable) {
    uint32_t h = HashAt(data + pos);
    int64_t candidate = head[h];
    prev[pos] = candidate;
    head[h] = static_cast<int64_t>(pos);

    size_t best_len = 0;
    size_t best_dist = 0;
    int chain = 32;  // bounded chain walk keeps compression O(n)
    while (candidate >= 0 && chain-- > 0) {
      size_t dist = pos - static_cast<size_t>(candidate);
      if (dist > kMaxDistance) break;
      const uint8_t* a = data + pos;
      const uint8_t* b = data + candidate;
      size_t limit = len - pos;
      size_t match = 0;
      while (match < limit && a[match] == b[match]) ++match;
      if (match > best_len) {
        best_len = match;
        best_dist = dist;
      }
      candidate = prev[static_cast<size_t>(candidate)];
    }

    if (best_len >= kMinMatch) {
      EmitToken(&out, data + anchor, pos - anchor, best_len, best_dist);
      // Insert hash entries inside the match so later data can reference it.
      size_t end = pos + best_len;
      for (size_t i = pos + 1; i < end && i <= last_hashable; ++i) {
        uint32_t hh = HashAt(data + i);
        prev[i] = head[hh];
        head[hh] = static_cast<int64_t>(i);
      }
      pos = end;
      anchor = pos;
    } else {
      ++pos;
    }
  }
  EmitToken(&out, data + anchor, len - anchor, 0, 0);
  return out;
}

namespace {

// Reads a 255-saturated extension count; returns false on truncation or if
// the accumulated count would wrap size_t (only reachable on hostile input —
// a legitimate stream never encodes counts near SIZE_MAX).
bool GetCount(const uint8_t*& p, const uint8_t* end, size_t* count) {
  for (;;) {
    if (p >= end) return false;
    uint8_t b = *p++;
    if (*count > SIZE_MAX - b) return false;
    *count += b;
    if (b != 255) return true;
  }
}

}  // namespace

Status Lzss::Decompress(const uint8_t* data, size_t len, uint8_t* out,
                        size_t out_len) {
  const uint8_t* p = data;
  const uint8_t* end = data + len;
  uint8_t* dst = out;
  uint8_t* dst_end = out + out_len;

  while (p < end) {
    uint8_t token = *p++;
    size_t lit_len = token >> 4;
    if (lit_len == 15 && !GetCount(p, end, &lit_len)) {
      return Status::Internal("lzss: truncated literal count");
    }
    // Compare remaining lengths, not advanced pointers: lit_len comes from
    // untrusted input and can be large enough that `p + lit_len` overflows
    // the address space, which is UB before the comparison ever happens.
    if (lit_len > static_cast<size_t>(end - p) ||
        lit_len > static_cast<size_t>(dst_end - dst)) {
      return Status::Internal("lzss: literal overrun");
    }
    // lit_len can be 0 (match-only token) while dst is null for an empty
    // output buffer; memcpy's arguments are annotated nonnull even then.
    if (lit_len > 0) std::memcpy(dst, p, lit_len);
    p += lit_len;
    dst += lit_len;

    size_t match_code = token & 0x0F;
    if (match_code == 0) continue;  // literals-only token
    if (end - p < 2) return Status::Internal("lzss: truncated match");
    size_t distance = static_cast<size_t>(p[0]) | (static_cast<size_t>(p[1]) << 8);
    p += 2;
    size_t match_len = match_code - 1;
    if (match_code == 15 && !GetCount(p, end, &match_len)) {
      return Status::Internal("lzss: truncated match count");
    }
    // Guard the += against wrapping: GetCount can return up to SIZE_MAX from
    // a long run of 0xFF extension bytes.
    if (match_len > SIZE_MAX - kMinMatch) {
      return Status::Internal("lzss: match length overflow");
    }
    match_len += kMinMatch;
    if (distance == 0 || static_cast<size_t>(dst - out) < distance) {
      return Status::Internal("lzss: bad match distance");
    }
    if (match_len > static_cast<size_t>(dst_end - dst)) {
      return Status::Internal("lzss: match overrun");
    }
    // Byte-by-byte copy: overlapping matches (distance < length) are legal
    // and encode runs.
    const uint8_t* src = dst - distance;
    for (size_t i = 0; i < match_len; ++i) dst[i] = src[i];
    dst += match_len;
  }
  if (dst != dst_end) {
    return Status::Internal("lzss: output length mismatch");
  }
  return Status::OK();
}

}  // namespace vstore
