#include "storage/delete_bitmap.h"

// Header-only; this translation unit anchors the target in the build.
