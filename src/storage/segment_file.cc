#include "storage/segment_file.h"

#include <cstring>
#include <utility>
#include <vector>

#include "common/bit_util.h"
#include "common/crc32.h"
#include "common/serde.h"
#include "storage/bit_pack.h"
#include "storage/delta_store.h"
#include "storage/dictionary.h"
#include "storage/rle.h"
#include "storage/segment.h"

namespace vstore {

namespace {

constexpr size_t kFooterSize = 24;   // dir_offset, count, dir_crc, crc, magic
constexpr size_t kDirEntrySize = 20;  // offset, size, masked crc

struct SectionEntry {
  uint64_t offset = 0;
  uint64_t size = 0;
  uint32_t masked_crc = 0;
};

// Appends sections to an open file, keeping every payload 4096-aligned.
class SectionWriter {
 public:
  SectionWriter(File* file, int64_t offset) : file_(file), offset_(offset) {}

  // Appends one section; returns its directory index.
  Result<uint32_t> Add(const void* data, size_t len) {
    VSTORE_RETURN_IF_ERROR(PadToAlign());
    SectionEntry e;
    e.offset = static_cast<uint64_t>(offset_);
    e.size = len;
    e.masked_crc = MaskCrc32(Crc32(data, len));
    if (len > 0) {
      VSTORE_RETURN_IF_ERROR(file_->Append(data, len));
      offset_ += static_cast<int64_t>(len);
    }
    entries_.push_back(e);
    return static_cast<uint32_t>(entries_.size() - 1);
  }

  Result<uint32_t> Add(const std::string& s) { return Add(s.data(), s.size()); }

  // Writes the directory and footer after the last section.
  Status Finish() {
    BufWriter dir;
    for (const SectionEntry& e : entries_) {
      dir.PutU64(e.offset);
      dir.PutU64(e.size);
      dir.PutU32(e.masked_crc);
    }
    uint64_t dir_offset = static_cast<uint64_t>(offset_);
    VSTORE_RETURN_IF_ERROR(file_->Append(dir.str().data(), dir.size()));
    offset_ += static_cast<int64_t>(dir.size());

    BufWriter footer;
    footer.PutU64(dir_offset);
    footer.PutU32(static_cast<uint32_t>(entries_.size()));
    footer.PutU32(MaskCrc32(Crc32(dir.str().data(), dir.size())));
    footer.PutU32(MaskCrc32(Crc32(footer.str().data(), footer.size())));
    footer.PutU32(kCheckpointMagic);
    VSTORE_RETURN_IF_ERROR(file_->Append(footer.str().data(), footer.size()));
    offset_ += static_cast<int64_t>(footer.size());
    return Status::OK();
  }

  int64_t offset() const { return offset_; }

 private:
  Status PadToAlign() {
    int64_t rem = offset_ % kCheckpointAlign;
    if (rem == 0) return Status::OK();
    static const char kZeros[512] = {0};
    int64_t need = kCheckpointAlign - rem;
    while (need > 0) {
      int64_t n = need < 512 ? need : 512;
      VSTORE_RETURN_IF_ERROR(file_->Append(kZeros, static_cast<size_t>(n)));
      need -= n;
      offset_ += n;
    }
    return Status::OK();
  }

  File* file_;
  int64_t offset_;
  std::vector<SectionEntry> entries_;
};

// Serializes a dictionary (primary or local) as length-prefixed strings in
// code order.
std::string DictBlob(const StringDictionary& dict) {
  BufWriter w;
  int64_t n = dict.size();
  for (int64_t i = 0; i < n; ++i) {
    w.PutBytes(dict.Get(i));
  }
  return w.Take();
}

Status LoadDictBlob(std::string_view blob, int64_t count,
                    StringDictionary* dict) {
  if (dict->size() != 0) {
    return Status::Internal("checkpoint: dictionary not empty before load");
  }
  BufReader r(blob);
  for (int64_t i = 0; i < count; ++i) {
    std::string_view value;
    VSTORE_RETURN_IF_ERROR(r.GetBytes(&value));
    int64_t code = dict->GetOrInsert(value, count);
    if (code != i) {
      return Status::Internal("checkpoint: dictionary code mismatch");
    }
  }
  if (!r.done()) {
    return Status::Internal("checkpoint: trailing bytes in dictionary blob");
  }
  return Status::OK();
}

void PutStats(BufWriter* w, const SegmentStats& s) {
  w->PutI64(s.num_rows);
  w->PutI64(s.null_count);
  w->PutU8(s.has_values ? 1 : 0);
  w->PutI64(s.min_i64);
  w->PutI64(s.max_i64);
  w->PutDouble(s.min_d);
  w->PutDouble(s.max_d);
  w->PutBytes(s.min_s);
  w->PutBytes(s.max_s);
}

Status GetStats(BufReader* r, SegmentStats* s) {
  uint8_t has_values;
  std::string_view min_s, max_s;
  VSTORE_RETURN_IF_ERROR(r->GetI64(&s->num_rows));
  VSTORE_RETURN_IF_ERROR(r->GetI64(&s->null_count));
  VSTORE_RETURN_IF_ERROR(r->GetU8(&has_values));
  VSTORE_RETURN_IF_ERROR(r->GetI64(&s->min_i64));
  VSTORE_RETURN_IF_ERROR(r->GetI64(&s->max_i64));
  VSTORE_RETURN_IF_ERROR(r->GetDouble(&s->min_d));
  VSTORE_RETURN_IF_ERROR(r->GetDouble(&s->max_d));
  VSTORE_RETURN_IF_ERROR(r->GetBytes(&min_s));
  VSTORE_RETURN_IF_ERROR(r->GetBytes(&max_s));
  s->has_values = has_values != 0;
  s->min_s.assign(min_s.data(), min_s.size());
  s->max_s.assign(max_s.data(), max_s.size());
  if (s->num_rows < 0 || s->null_count < 0 || s->null_count > s->num_rows) {
    return Status::Internal("checkpoint: corrupt segment stats");
  }
  return Status::OK();
}

// A section span validated against the directory.
struct Section {
  const uint8_t* data = nullptr;
  size_t size = 0;
  std::string_view view() const {
    return std::string_view(reinterpret_cast<const char*>(data), size);
  }
};

}  // namespace

// --- Writer ---------------------------------------------------------------

Status SegmentFileWriter::Write(const std::string& path,
                                const ColumnStoreTable& table,
                                const ColumnStoreTable::CheckpointState& state,
                                uint64_t epoch, uint64_t checkpoint_lsn,
                                int64_t* file_bytes) {
  const Schema& schema = table.schema();
  const TableVersion& v = *state.snapshot;
  int num_columns = schema.num_columns();

  auto file_or = File::Create(path);
  VSTORE_RETURN_IF_ERROR(file_or.status());
  std::unique_ptr<File> file = std::move(file_or).value();

  // Header page.
  BufWriter header;
  header.PutU32(kCheckpointMagic);
  header.PutU32(kCheckpointVersion);
  header.PutU64(epoch);
  header.PutU64(checkpoint_lsn);
  header.PutU64(state.next_delta_seq);
  header.PutI64(state.next_delta_id);
  header.PutU64(v.sequence());
  header.PutU32(static_cast<uint32_t>(num_columns));
  for (int c = 0; c < num_columns; ++c) {
    header.PutU8(static_cast<uint8_t>(schema.field(c).type));
  }
  header.PutU32(MaskCrc32(Crc32(header.str().data(), header.size())));
  if (header.size() > static_cast<size_t>(kCheckpointAlign)) {
    return Status::Internal("checkpoint: header exceeds one page");
  }
  std::string page(static_cast<size_t>(kCheckpointAlign), '\0');
  std::memcpy(page.data(), header.str().data(), header.size());
  VSTORE_RETURN_IF_ERROR(file->Append(page.data(), page.size()));

  SectionWriter sections(file.get(), kCheckpointAlign);
  BufWriter meta;

  // Row groups.
  int64_t num_groups = v.num_row_groups();
  meta.PutU32(static_cast<uint32_t>(num_groups));
  for (int64_t g = 0; g < num_groups; ++g) {
    const RowGroup& group = v.row_group(g);
    meta.PutI64(group.id());
    meta.PutI64(group.num_rows());
    meta.PutU32(v.generation(g));
    for (int c = 0; c < num_columns; ++c) {
      const ColumnSegment& seg = group.column(c);
      meta.PutU8(static_cast<uint8_t>(seg.type_));
      meta.PutU8(static_cast<uint8_t>(seg.encoding_));
      meta.PutU8(static_cast<uint8_t>(seg.venc_.code_kind));
      meta.PutI64(seg.venc_.base);
      meta.PutI64(seg.venc_.scale);
      meta.PutI64(seg.venc_.int_pow10);
      meta.PutDouble(seg.venc_.dbl_pow10);
      meta.PutU32(static_cast<uint32_t>(seg.bit_width_));
      PutStats(&meta, seg.stats_);
      meta.PutI64(seg.primary_dict_size_);
      meta.PutU8(seg.archived_ ? 1 : 0);
      if (seg.encoding_ == EncodingKind::kRle) {
        meta.PutI64(seg.rle_.num_runs);
        meta.PutI64(seg.rle_.num_rows);
        meta.PutU32(static_cast<uint32_t>(seg.rle_.value_bits));
        meta.PutU32(static_cast<uint32_t>(seg.rle_.length_bits));
      }
      if (!seg.archived_) {
        if (seg.encoding_ == EncodingKind::kBitPack) {
          auto idx = sections.Add(seg.packed_data(), seg.packed_size());
          VSTORE_RETURN_IF_ERROR(idx.status());
          meta.PutU32(idx.value());
        } else {
          auto vi =
              sections.Add(seg.rle_.values_data(), seg.rle_.values_size());
          VSTORE_RETURN_IF_ERROR(vi.status());
          auto li =
              sections.Add(seg.rle_.lengths_data(), seg.rle_.lengths_size());
          VSTORE_RETURN_IF_ERROR(li.status());
          meta.PutU32(vi.value());
          meta.PutU32(li.value());
        }
      } else {
        // Archived segments persist the compressed blobs; the reader
        // rehydrates on first touch via EnsureResident.
        if (seg.encoding_ == EncodingKind::kBitPack) {
          meta.PutU64(seg.arch_packed_.original_size);
          auto idx = sections.Add(seg.arch_packed_.compressed.data(),
                                  seg.arch_packed_.compressed.size());
          VSTORE_RETURN_IF_ERROR(idx.status());
          meta.PutU32(idx.value());
        } else {
          meta.PutU64(seg.arch_rle_values_.original_size);
          auto vi = sections.Add(seg.arch_rle_values_.compressed.data(),
                                 seg.arch_rle_values_.compressed.size());
          VSTORE_RETURN_IF_ERROR(vi.status());
          meta.PutU32(vi.value());
          meta.PutU64(seg.arch_rle_lengths_.original_size);
          auto li = sections.Add(seg.arch_rle_lengths_.compressed.data(),
                                 seg.arch_rle_lengths_.compressed.size());
          VSTORE_RETURN_IF_ERROR(li.status());
          meta.PutU32(li.value());
        }
      }
      if (seg.has_null_bitmap()) {
        meta.PutU8(1);
        auto idx = sections.Add(seg.null_bitmap_data(), seg.null_bitmap_size());
        VSTORE_RETURN_IF_ERROR(idx.status());
        meta.PutU32(idx.value());
      } else {
        meta.PutU8(0);
      }
      if (seg.local_dict_ != nullptr && seg.local_dict_->size() > 0) {
        meta.PutU8(1);
        meta.PutI64(seg.local_dict_->size());
        auto idx = sections.Add(DictBlob(*seg.local_dict_));
        VSTORE_RETURN_IF_ERROR(idx.status());
        meta.PutU32(idx.value());
      } else {
        meta.PutU8(0);
      }
    }
  }

  // Delete bitmaps (one per group).
  for (int64_t g = 0; g < num_groups; ++g) {
    const DeleteBitmap& bm = v.delete_bitmap(g);
    meta.PutI64(bm.num_rows());
    auto idx =
        sections.Add(bm.bytes(), static_cast<size_t>(bm.byte_size()));
    VSTORE_RETURN_IF_ERROR(idx.status());
    meta.PutU32(idx.value());
  }

  // Delta stores: raw tree entries (rowid + encoded row bytes).
  int64_t num_stores = v.num_delta_stores();
  meta.PutU32(static_cast<uint32_t>(num_stores));
  for (int64_t s = 0; s < num_stores; ++s) {
    const DeltaStore& store = v.delta_store(s);
    meta.PutI64(store.id());
    meta.PutU8(store.closed() ? 1 : 0);
    meta.PutI64(store.num_rows());
    BufWriter rows;
    for (BPlusTree::Iterator it = store.Begin(); it.Valid(); it.Next()) {
      rows.PutU64(it.key());
      rows.PutBytes(it.value());
    }
    auto idx = sections.Add(rows.str());
    VSTORE_RETURN_IF_ERROR(idx.status());
    meta.PutU32(idx.value());
  }

  // Primary dictionaries.
  for (int c = 0; c < num_columns; ++c) {
    std::shared_ptr<const StringDictionary> dict = table.primary_dictionary(c);
    if (dict == nullptr || dict->size() == 0) {
      meta.PutU8(0);
      continue;
    }
    meta.PutU8(1);
    meta.PutI64(dict->size());
    auto idx = sections.Add(DictBlob(*dict));
    VSTORE_RETURN_IF_ERROR(idx.status());
    meta.PutU32(idx.value());
  }

  // Metadata stream is always the last section.
  auto meta_idx = sections.Add(meta.str());
  VSTORE_RETURN_IF_ERROR(meta_idx.status());
  VSTORE_RETURN_IF_ERROR(sections.Finish());
  VSTORE_RETURN_IF_ERROR(file->Sync());
  VSTORE_RETURN_IF_ERROR(file->Close());
  if (file_bytes != nullptr) *file_bytes = sections.offset();
  return Status::OK();
}

// --- Reader ---------------------------------------------------------------

Result<SegmentFileReader::Loaded> SegmentFileReader::Load(
    const std::string& path, ColumnStoreTable* table) {
  const Schema& schema = table->schema();
  int num_columns = schema.num_columns();

  auto map_or = MappedFile::Open(path);
  VSTORE_RETURN_IF_ERROR(map_or.status());
  std::shared_ptr<MappedFile> map = std::move(map_or).value();
  const uint8_t* base = map->data();
  int64_t size = map->size();
  if (size < kCheckpointAlign + static_cast<int64_t>(kFooterSize)) {
    return Status::Internal("checkpoint: file too small");
  }

  // Header.
  BufReader hdr(base, static_cast<size_t>(kCheckpointAlign));
  uint32_t magic, version, ncols;
  uint64_t epoch, ckpt_lsn, next_seq, vseq;
  int64_t next_id;
  VSTORE_RETURN_IF_ERROR(hdr.GetU32(&magic));
  VSTORE_RETURN_IF_ERROR(hdr.GetU32(&version));
  VSTORE_RETURN_IF_ERROR(hdr.GetU64(&epoch));
  VSTORE_RETURN_IF_ERROR(hdr.GetU64(&ckpt_lsn));
  VSTORE_RETURN_IF_ERROR(hdr.GetU64(&next_seq));
  VSTORE_RETURN_IF_ERROR(hdr.GetI64(&next_id));
  VSTORE_RETURN_IF_ERROR(hdr.GetU64(&vseq));
  VSTORE_RETURN_IF_ERROR(hdr.GetU32(&ncols));
  if (magic != kCheckpointMagic) {
    return Status::Internal("checkpoint: bad magic");
  }
  if (version != kCheckpointVersion) {
    return Status::Internal("checkpoint: unsupported format version");
  }
  if (ncols != static_cast<uint32_t>(num_columns)) {
    return Status::Internal("checkpoint: column count mismatch");
  }
  size_t header_len = 52 + ncols;  // fixed fields + one type byte per column
  for (uint32_t c = 0; c < ncols; ++c) {
    uint8_t type_id;
    VSTORE_RETURN_IF_ERROR(hdr.GetU8(&type_id));
    if (type_id != static_cast<uint8_t>(schema.field(static_cast<int>(c)).type)) {
      return Status::Internal("checkpoint: column type mismatch");
    }
  }
  uint32_t header_crc;
  VSTORE_RETURN_IF_ERROR(hdr.GetU32(&header_crc));
  if (UnmaskCrc32(header_crc) != Crc32(base, header_len)) {
    return Status::Internal("checkpoint: header checksum mismatch");
  }

  // Footer and directory.
  const uint8_t* footer = base + size - static_cast<int64_t>(kFooterSize);
  BufReader fr(footer, kFooterSize);
  uint64_t dir_offset;
  uint32_t section_count, dir_crc, footer_crc, footer_magic;
  VSTORE_RETURN_IF_ERROR(fr.GetU64(&dir_offset));
  VSTORE_RETURN_IF_ERROR(fr.GetU32(&section_count));
  VSTORE_RETURN_IF_ERROR(fr.GetU32(&dir_crc));
  VSTORE_RETURN_IF_ERROR(fr.GetU32(&footer_crc));
  VSTORE_RETURN_IF_ERROR(fr.GetU32(&footer_magic));
  if (footer_magic != kCheckpointMagic) {
    return Status::Internal("checkpoint: bad footer magic");
  }
  if (UnmaskCrc32(footer_crc) != Crc32(footer, 16)) {
    return Status::Internal("checkpoint: footer checksum mismatch");
  }
  uint64_t dir_size = static_cast<uint64_t>(section_count) * kDirEntrySize;
  if (section_count == 0 ||
      dir_offset < static_cast<uint64_t>(kCheckpointAlign) ||
      dir_offset + dir_size + kFooterSize != static_cast<uint64_t>(size)) {
    return Status::Internal("checkpoint: corrupt directory bounds");
  }
  const uint8_t* dir = base + dir_offset;
  if (UnmaskCrc32(dir_crc) != Crc32(dir, static_cast<size_t>(dir_size))) {
    return Status::Internal("checkpoint: directory checksum mismatch");
  }

  std::vector<Section> secs(section_count);
  {
    BufReader dr(dir, static_cast<size_t>(dir_size));
    for (uint32_t i = 0; i < section_count; ++i) {
      uint64_t off, len;
      uint32_t crc;
      VSTORE_RETURN_IF_ERROR(dr.GetU64(&off));
      VSTORE_RETURN_IF_ERROR(dr.GetU64(&len));
      VSTORE_RETURN_IF_ERROR(dr.GetU32(&crc));
      if (off < static_cast<uint64_t>(kCheckpointAlign) || off > dir_offset ||
          len > dir_offset - off) {
        return Status::Internal("checkpoint: section out of bounds");
      }
      if (UnmaskCrc32(crc) != Crc32(base + off, static_cast<size_t>(len))) {
        return Status::Internal("checkpoint: section checksum mismatch");
      }
      secs[i] = Section{base + off, static_cast<size_t>(len)};
    }
  }

  // The metadata stream is the last section; payload sections may only be
  // referenced from it by smaller indices.
  BufReader meta(secs[section_count - 1].view());
  auto get_section = [&](uint32_t* idx_out,
                         const Section** out) -> Status {
    VSTORE_RETURN_IF_ERROR(meta.GetU32(idx_out));
    if (*idx_out >= section_count - 1) {  // the last section is the metadata
      return Status::Internal("checkpoint: bad section reference");
    }
    *out = &secs[*idx_out];
    return Status::OK();
  };

  Loaded loaded;
  loaded.epoch = epoch;
  loaded.checkpoint_lsn = ckpt_lsn;
  loaded.file_bytes = size;
  ColumnStoreTable::RecoveredState& state = loaded.state;
  state.next_delta_seq = next_seq;
  state.next_delta_id = next_id;
  state.version_sequence = vseq;

  uint32_t num_groups;
  VSTORE_RETURN_IF_ERROR(meta.GetU32(&num_groups));

  // Stage per-segment dictionary demands: primary dictionaries are loaded
  // after the group metadata is parsed (their sections come later in the
  // meta stream), so segment wiring happens in two passes.
  struct PendingSegment {
    ColumnSegment* seg;
    int column;
  };
  std::vector<PendingSegment> pending;

  for (uint32_t g = 0; g < num_groups; ++g) {
    int64_t group_id, group_rows;
    uint32_t generation;
    VSTORE_RETURN_IF_ERROR(meta.GetI64(&group_id));
    VSTORE_RETURN_IF_ERROR(meta.GetI64(&group_rows));
    VSTORE_RETURN_IF_ERROR(meta.GetU32(&generation));
    if (group_rows < 0 || generation > kRowIdGenerationMask) {
      return Status::Internal("checkpoint: corrupt row group header");
    }
    auto group = std::shared_ptr<RowGroup>(new RowGroup());
    group->id_ = group_id;
    group->num_rows_ = group_rows;
    for (int c = 0; c < num_columns; ++c) {
      uint8_t type_id, encoding_id, code_kind_id, archived;
      VSTORE_RETURN_IF_ERROR(meta.GetU8(&type_id));
      VSTORE_RETURN_IF_ERROR(meta.GetU8(&encoding_id));
      VSTORE_RETURN_IF_ERROR(meta.GetU8(&code_kind_id));
      if (type_id != static_cast<uint8_t>(schema.field(c).type)) {
        return Status::Internal("checkpoint: segment type mismatch");
      }
      if (encoding_id > static_cast<uint8_t>(EncodingKind::kRle) ||
          code_kind_id > static_cast<uint8_t>(CodeKind::kDictionary)) {
        return Status::Internal("checkpoint: corrupt segment encoding");
      }
      auto seg = std::unique_ptr<ColumnSegment>(new ColumnSegment());
      seg->type_ = static_cast<DataType>(type_id);
      seg->encoding_ = static_cast<EncodingKind>(encoding_id);
      seg->venc_.code_kind = static_cast<CodeKind>(code_kind_id);
      int64_t scale;
      uint32_t bit_width;
      VSTORE_RETURN_IF_ERROR(meta.GetI64(&seg->venc_.base));
      VSTORE_RETURN_IF_ERROR(meta.GetI64(&scale));
      VSTORE_RETURN_IF_ERROR(meta.GetI64(&seg->venc_.int_pow10));
      VSTORE_RETURN_IF_ERROR(meta.GetDouble(&seg->venc_.dbl_pow10));
      VSTORE_RETURN_IF_ERROR(meta.GetU32(&bit_width));
      seg->venc_.scale = static_cast<int>(scale);
      if (bit_width > 64) {
        return Status::Internal("checkpoint: corrupt bit width");
      }
      seg->bit_width_ = static_cast<int>(bit_width);
      VSTORE_RETURN_IF_ERROR(GetStats(&meta, &seg->stats_));
      if (seg->stats_.num_rows != group_rows) {
        return Status::Internal("checkpoint: segment row count mismatch");
      }
      VSTORE_RETURN_IF_ERROR(meta.GetI64(&seg->primary_dict_size_));
      if (seg->primary_dict_size_ < 0) {
        return Status::Internal("checkpoint: corrupt primary dict boundary");
      }
      VSTORE_RETURN_IF_ERROR(meta.GetU8(&archived));
      seg->archived_ = archived != 0;
      if (seg->encoding_ == EncodingKind::kRle) {
        int64_t value_bits, length_bits;
        uint32_t vb, lb;
        VSTORE_RETURN_IF_ERROR(meta.GetI64(&seg->rle_.num_runs));
        VSTORE_RETURN_IF_ERROR(meta.GetI64(&seg->rle_.num_rows));
        VSTORE_RETURN_IF_ERROR(meta.GetU32(&vb));
        VSTORE_RETURN_IF_ERROR(meta.GetU32(&lb));
        value_bits = vb;
        length_bits = lb;
        if (seg->rle_.num_runs < 0 || seg->rle_.num_runs > group_rows ||
            seg->rle_.num_rows != group_rows || value_bits > 64 ||
            length_bits > 64) {
          return Status::Internal("checkpoint: corrupt rle header");
        }
        seg->rle_.value_bits = static_cast<int>(value_bits);
        seg->rle_.length_bits = static_cast<int>(length_bits);
      }
      if (!seg->archived_) {
        if (seg->encoding_ == EncodingKind::kBitPack) {
          uint32_t idx;
          const Section* sec;
          VSTORE_RETURN_IF_ERROR(get_section(&idx, &sec));
          // The packed span must cover every random 8-byte read the
          // decoder can issue for num_rows codes.
          if (static_cast<int64_t>(sec->size) <
              BitPacker::PackedBytes(group_rows, seg->bit_width_)) {
            return Status::Internal("checkpoint: packed section too small");
          }
          seg->packed_extern_ = sec->data;
          seg->packed_extern_size_ = sec->size;
        } else {
          uint32_t vi, li;
          const Section* vsec;
          const Section* lsec;
          VSTORE_RETURN_IF_ERROR(get_section(&vi, &vsec));
          VSTORE_RETURN_IF_ERROR(get_section(&li, &lsec));
          if (static_cast<int64_t>(vsec->size) <
                  BitPacker::PackedBytes(seg->rle_.num_runs,
                                         seg->rle_.value_bits) ||
              static_cast<int64_t>(lsec->size) <
                  BitPacker::PackedBytes(seg->rle_.num_runs,
                                         seg->rle_.length_bits)) {
            return Status::Internal("checkpoint: rle section too small");
          }
          seg->rle_.values_extern = vsec->data;
          seg->rle_.values_extern_size = vsec->size;
          seg->rle_.lengths_extern = lsec->data;
          seg->rle_.lengths_extern_size = lsec->size;
          // Validate the run lengths (each >= 1, summing exactly to the
          // row count) before building the index, so a corrupt file can
          // never produce a non-monotonic or overflowing run index.
          uint64_t total = 0;
          for (int64_t r = 0; r < seg->rle_.num_runs; ++r) {
            uint64_t len =
                BitPacker::Get(lsec->data, seg->rle_.length_bits, r);
            if (len == 0 ||
                len > static_cast<uint64_t>(group_rows) - total) {
              return Status::Internal("checkpoint: corrupt rle run lengths");
            }
            total += len;
          }
          if (total != static_cast<uint64_t>(group_rows)) {
            return Status::Internal("checkpoint: corrupt rle run lengths");
          }
          RleCodec::BuildIndex(&seg->rle_);
        }
        seg->resident_ = true;
      } else {
        // Archived: copy the (small) compressed blobs; rehydration
        // re-validates sizes via the LZSS decoder's bounds checks.
        auto load_blob = [&](ColumnSegment::Blob* blob) -> Status {
          uint64_t original;
          uint32_t idx;
          const Section* sec;
          VSTORE_RETURN_IF_ERROR(meta.GetU64(&original));
          VSTORE_RETURN_IF_ERROR(get_section(&idx, &sec));
          blob->original_size = static_cast<size_t>(original);
          blob->compressed.assign(sec->data, sec->data + sec->size);
          return Status::OK();
        };
        if (seg->encoding_ == EncodingKind::kBitPack) {
          VSTORE_RETURN_IF_ERROR(load_blob(&seg->arch_packed_));
        } else {
          VSTORE_RETURN_IF_ERROR(load_blob(&seg->arch_rle_values_));
          VSTORE_RETURN_IF_ERROR(load_blob(&seg->arch_rle_lengths_));
        }
        seg->resident_ = false;
      }
      uint8_t has_nulls;
      VSTORE_RETURN_IF_ERROR(meta.GetU8(&has_nulls));
      if (has_nulls != 0) {
        uint32_t idx;
        const Section* sec;
        VSTORE_RETURN_IF_ERROR(get_section(&idx, &sec));
        if (static_cast<int64_t>(sec->size) <
            bit_util::BytesForBits(group_rows)) {
          return Status::Internal("checkpoint: null bitmap too small");
        }
        seg->null_bitmap_extern_ = sec->data;
        seg->null_bitmap_extern_size_ = sec->size;
      }
      uint8_t has_local;
      VSTORE_RETURN_IF_ERROR(meta.GetU8(&has_local));
      if (has_local != 0) {
        int64_t count;
        uint32_t idx;
        const Section* sec;
        VSTORE_RETURN_IF_ERROR(meta.GetI64(&count));
        VSTORE_RETURN_IF_ERROR(get_section(&idx, &sec));
        if (count < 0) {
          return Status::Internal("checkpoint: corrupt local dictionary");
        }
        seg->local_dict_ = std::make_unique<StringDictionary>();
        VSTORE_RETURN_IF_ERROR(
            LoadDictBlob(sec->view(), count, seg->local_dict_.get()));
      }
      seg->keepalive_ = map;
      pending.push_back(PendingSegment{seg.get(), c});
      group->columns_.push_back(std::move(seg));
    }
    state.row_groups.push_back(std::move(group));
    state.generations.push_back(generation);
  }

  // Delete bitmaps.
  for (uint32_t g = 0; g < num_groups; ++g) {
    int64_t rows;
    uint32_t idx;
    const Section* sec;
    VSTORE_RETURN_IF_ERROR(meta.GetI64(&rows));
    VSTORE_RETURN_IF_ERROR(get_section(&idx, &sec));
    if (rows != state.row_groups[g]->num_rows()) {
      return Status::Internal("checkpoint: delete bitmap size mismatch");
    }
    state.delete_bitmaps.push_back(std::make_shared<DeleteBitmap>(
        DeleteBitmap::FromBytes(rows, sec->data, sec->size)));
  }

  // Delta stores.
  uint32_t num_stores;
  VSTORE_RETURN_IF_ERROR(meta.GetU32(&num_stores));
  for (uint32_t s = 0; s < num_stores; ++s) {
    int64_t store_id, num_rows;
    uint8_t closed;
    uint32_t idx;
    const Section* sec;
    VSTORE_RETURN_IF_ERROR(meta.GetI64(&store_id));
    VSTORE_RETURN_IF_ERROR(meta.GetU8(&closed));
    VSTORE_RETURN_IF_ERROR(meta.GetI64(&num_rows));
    VSTORE_RETURN_IF_ERROR(get_section(&idx, &sec));
    auto store = std::make_shared<DeltaStore>(&table->schema(), store_id);
    BufReader rows(sec->view());
    std::vector<Value> row;
    for (int64_t i = 0; i < num_rows; ++i) {
      uint64_t rowid;
      std::string_view bytes;
      VSTORE_RETURN_IF_ERROR(rows.GetU64(&rowid));
      VSTORE_RETURN_IF_ERROR(rows.GetBytes(&bytes));
      VSTORE_RETURN_IF_ERROR(DecodeRow(table->schema(), bytes, &row));
      VSTORE_RETURN_IF_ERROR(store->Insert(rowid, row));
    }
    if (!rows.done()) {
      return Status::Internal("checkpoint: trailing bytes in delta store");
    }
    if (closed != 0) store->Close();
    state.delta_stores.push_back(std::move(store));
  }

  // Primary dictionaries, straight into the (empty) table dictionaries.
  for (int c = 0; c < num_columns; ++c) {
    uint8_t present;
    VSTORE_RETURN_IF_ERROR(meta.GetU8(&present));
    if (present == 0) continue;
    int64_t count;
    uint32_t idx;
    const Section* sec;
    VSTORE_RETURN_IF_ERROR(meta.GetI64(&count));
    VSTORE_RETURN_IF_ERROR(get_section(&idx, &sec));
    std::shared_ptr<const StringDictionary> dict = table->primary_dictionary(c);
    if (dict == nullptr || count < 0) {
      return Status::Internal("checkpoint: primary dictionary mismatch");
    }
    VSTORE_RETURN_IF_ERROR(LoadDictBlob(
        sec->view(), count, const_cast<StringDictionary*>(dict.get())));
  }
  if (!meta.done()) {
    return Status::Internal("checkpoint: trailing metadata bytes");
  }

  // Wire the shared dictionaries into the loaded segments and sanity-check
  // the primary-resolved code range.
  for (const PendingSegment& p : pending) {
    std::shared_ptr<const StringDictionary> dict =
        table->primary_dictionary(p.column);
    if (p.seg->venc_.code_kind == CodeKind::kDictionary) {
      // primary_dict_size_ is the code-space boundary where local codes
      // begin (the primary dictionary's capacity at encode time), so it
      // normally exceeds the entry count — but the entry count must never
      // exceed the boundary, or primary and local code ranges would
      // overlap and codes would resolve against the wrong dictionary.
      if (dict == nullptr || dict->size() > p.seg->primary_dict_size_) {
        return Status::Internal("checkpoint: segment dictionary mismatch");
      }
      p.seg->primary_dict_ = dict;
    }
  }
  return loaded;
}

}  // namespace vstore
