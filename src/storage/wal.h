#ifndef VSTORE_STORAGE_WAL_H_
#define VSTORE_STORAGE_WAL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/io.h"
#include "common/macros.h"
#include "common/span_trace.h"
#include "common/status.h"

namespace vstore {

// Write-ahead log for delta-store DML, one log per table (per shard for
// sharded tables). The log is logical: row mutations carry the exact RowId
// the in-memory table assigned, and reorganizations (delta compression,
// group rebuild) are logged as intents that recovery re-executes
// deterministically. Records are framed with a masked CRC-32C so a torn
// tail — the normal result of a crash mid-append — is detected and cleanly
// dropped rather than replayed as garbage.
//
// On-disk layout:
//   file   := header record*
//   header := magic(u32) version(u32) epoch(u64) masked_crc(u32)
//   record := masked_crc(u32) body_len(u32) body
//   body   := lsn(u64) type(u8) payload
// The record CRC covers the body only; body_len is implicitly validated by
// the CRC plus the remaining-file bound.

enum class WalRecordType : uint8_t {
  kInsert = 1,          // rowid(u64) row-bytes
  kDelete = 2,          // rowid(u64)
  kUpdate = 3,          // old_rowid(u64) new_rowid(u64) row-bytes
  kCompressStores = 4,  // count(u32) store_id(i64)* in install order
  kRebuildGroups = 5,   // count(u32) group_index(i64)* in install order
};

struct WalRecord {
  uint64_t lsn = 0;
  WalRecordType type = WalRecordType::kInsert;
  std::string payload;
};

constexpr uint32_t kWalMagic = 0x4C415756;  // "VWAL"
constexpr uint32_t kWalVersion = 1;

// Appender. Append() is not internally synchronized — the owning table
// serializes appends under its write lock — but SyncTo() implements group
// commit: concurrent committers of the same table batch into one fsync.
class WalWriter {
 public:
  VSTORE_DISALLOW_COPY_AND_ASSIGN(WalWriter);

  // Creates a fresh log file (truncates any leftover) and writes the header.
  static Result<std::unique_ptr<WalWriter>> Create(const std::string& path,
                                                   uint64_t epoch);

  // Appends one framed record. The caller provides the LSN (monotonically
  // increasing across the table's whole log sequence, not per file).
  Status Append(const WalRecord& record);

  // Group commit: returns once every record with lsn <= `lsn` is fsynced.
  // One caller performs the fsync for all concurrently waiting committers.
  Status SyncTo(uint64_t lsn);

  // Attributes SyncTo blocking to the {table=,point=fsync} wait family (and
  // to the traced query on the committing thread, if any). A committer whose
  // lsn was already covered by an earlier group fsync records nothing.
  void EnableWaitAttribution(std::string table_label);

  // Fsyncs everything appended so far and closes the file.
  Status Close();

  // Safe to read concurrently with Append (relaxed; a committer reading
  // after releasing the table lock sees at least its own records).
  uint64_t last_appended_lsn() const {
    return last_appended_lsn_.load(std::memory_order_acquire);
  }
  int64_t bytes_appended() const {
    return bytes_appended_.load(std::memory_order_relaxed);
  }
  const std::string& path() const { return file_->path(); }

 private:
  WalWriter() = default;

  // SyncTo body once the fast path (already synced) has been ruled out;
  // `lock` holds sync_mu_ on entry and on return.
  Status SyncToLocked(uint64_t lsn, std::unique_lock<std::mutex>& lock);

  std::unique_ptr<File> file_;
  std::string wait_table_label_;
  WaitStats fsync_waits_;
  std::atomic<uint64_t> last_appended_lsn_{0};
  std::atomic<int64_t> bytes_appended_{0};

  std::mutex sync_mu_;
  std::condition_variable sync_cv_;
  uint64_t synced_lsn_ = 0;
  bool sync_in_flight_ = false;
  bool closed_ = false;
  Status sticky_sync_error_;
};

struct WalReadStats {
  size_t records = 0;
  bool truncated_tail = false;  // torn/short record dropped at file end
  int64_t bytes_read = 0;
};

class WalReader {
 public:
  // Reads every valid record of the file in order. A corrupt or short
  // record at the tail is tolerated when `allow_torn_tail` is true (the
  // newest log file after a crash legitimately ends mid-record) and fatal
  // otherwise — corruption in the middle of a synced log is real damage.
  // Returns the file's epoch from the header.
  static Result<uint64_t> ReadAll(const std::string& path,
                                  bool allow_torn_tail,
                                  std::vector<WalRecord>* out,
                                  WalReadStats* stats);
};

}  // namespace vstore

#endif  // VSTORE_STORAGE_WAL_H_
