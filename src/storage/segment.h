#ifndef VSTORE_STORAGE_SEGMENT_H_
#define VSTORE_STORAGE_SEGMENT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "storage/dictionary.h"
#include "storage/encoding.h"
#include "storage/rle.h"
#include "types/compare_op.h"
#include "types/data_type.h"
#include "types/table_data.h"
#include "types/value.h"

namespace vstore {

// Per-segment metadata used for segment elimination: min/max over non-null
// rows plus the null count (the paper stores these in the segment directory).
struct SegmentStats {
  int64_t num_rows = 0;
  int64_t null_count = 0;
  bool has_values = false;  // at least one non-null row
  int64_t min_i64 = 0;
  int64_t max_i64 = 0;
  double min_d = 0;
  double max_d = 0;
  std::string min_s;
  std::string max_s;
};

// One column's slice of a row group, fully encoded: value/dictionary codes,
// then RLE or bit packing, optionally archival-compressed (LZSS). Immutable
// after construction except for archival state transitions.
class ColumnSegment {
 public:
  VSTORE_DISALLOW_COPY_AND_ASSIGN(ColumnSegment);

  DataType type() const { return type_; }
  int64_t num_rows() const { return stats_.num_rows; }
  const SegmentStats& stats() const { return stats_; }
  EncodingKind encoding() const { return encoding_; }
  CodeKind code_kind() const { return venc_.code_kind; }
  const ValueEncoding& value_encoding() const { return venc_; }
  int bit_width() const { return bit_width_; }
  bool has_nulls() const { return stats_.null_count > 0; }

  // In-memory encoded size: packed codes + null bitmap + local dictionary.
  // The shared primary dictionary is accounted once at the table level.
  int64_t EncodedBytes() const;

  // Size when archival-compressed (0 if not archived).
  int64_t ArchivedBytes() const;

  // --- Decoding ------------------------------------------------------
  // All decoders require start+count <= num_rows(). Null rows receive an
  // unspecified value; callers consult DecodeValidity.

  void DecodeCodes(int64_t start, int64_t count, uint64_t* out) const;
  void DecodeInt64(int64_t start, int64_t count, int64_t* out) const;
  void DecodeDouble(int64_t start, int64_t count, double* out) const;
  void DecodeString(int64_t start, int64_t count, std::string_view* out) const;
  // out[i] = 1 if row start+i is non-null.
  void DecodeValidity(int64_t start, int64_t count, uint8_t* out) const;

  // Sparse decode for lazy materialization: fetches only rows[0..count)
  // (ascending segment row indices) into out[0..count). Bit-packed
  // segments use random access; RLE segments use one merge walk over the
  // runs. The scan uses this to decode payload columns only for rows that
  // survived predicates and bitmap filters.
  void GatherCodes(const int64_t* rows, int64_t count, uint64_t* out) const;
  void GatherInt64(const int64_t* rows, int64_t count, int64_t* out) const;
  void GatherDouble(const int64_t* rows, int64_t count, double* out) const;
  void GatherString(const int64_t* rows, int64_t count,
                    std::string_view* out) const;
  void GatherValidity(const int64_t* rows, int64_t count, uint8_t* out) const;

  Value GetValue(int64_t row) const;

  // --- Predicate support ----------------------------------------------
  // Conservative check from stats only: can any row match `op value`?
  bool MayMatch(CompareOp op, const Value& value) const;

  // Evaluates `op value` once per RLE run over rows [start, start+count),
  // writing per-row 0/1 verdicts without decompressing the run bodies —
  // cost is O(runs touched), not O(rows). Null rows receive an unspecified
  // verdict; callers AND with DecodeValidity. Only valid for kRle segments.
  void EvalPredicateOnRuns(CompareOp op, const Value& value, int64_t start,
                           int64_t count, uint8_t* verdict) const;

  // Maps an equality-comparable raw value to its code within this segment.
  // Returns false when the value provably does not occur (wrong scale,
  // below base, absent from dictionary) — the caller can skip all rows.
  bool ValueToCode(const Value& value, uint64_t* code) const;

  // Resolves a dictionary code to its string.
  std::string_view DictString(uint64_t code) const;

  // The per-segment local dictionary, or nullptr when every code resolves
  // through the shared primary dictionary. Introspection only
  // (sys.dictionaries); never mutated after the segment is built.
  const StringDictionary* local_dictionary() const { return local_dict_.get(); }

  // --- Archival compression (paper §4.3) -------------------------------
  // Compresses the packed buffers with LZSS and drops the plain copies.
  Status Archive();
  // Decompresses the packed buffers back into memory if needed. Thread-safe.
  Status EnsureResident() const;
  // Drops the resident plain copies (keeps the archive blob), so the next
  // scan pays decompression again — models reading a cold archived segment.
  void Evict() const;
  bool is_archived() const { return archived_; }
  bool is_resident() const { return resident_; }

 private:
  friend class SegmentBuilder;
  friend class SegmentFileWriter;  // serializes the encoded buffers
  friend class SegmentFileReader;  // reconstructs segments over mmap spans
  ColumnSegment() = default;

  // True if codes are dictionary ids.
  bool dict_encoded() const { return venc_.code_kind == CodeKind::kDictionary; }

  // Encoded-buffer accessors: the owned vector wins when non-empty,
  // otherwise the external (memory-mapped checkpoint) span is used. All
  // decode paths go through these so a segment can be backed either way.
  const uint8_t* packed_data() const {
    return packed_.empty() ? packed_extern_ : packed_.data();
  }
  size_t packed_size() const {
    return packed_.empty() ? packed_extern_size_ : packed_.size();
  }
  const uint8_t* null_bitmap_data() const {
    return null_bitmap_.empty() ? null_bitmap_extern_ : null_bitmap_.data();
  }
  size_t null_bitmap_size() const {
    return null_bitmap_.empty() ? null_bitmap_extern_size_
                                : null_bitmap_.size();
  }
  bool has_null_bitmap() const { return null_bitmap_size() > 0; }

  DataType type_ = DataType::kInt64;
  EncodingKind encoding_ = EncodingKind::kBitPack;
  ValueEncoding venc_;
  int bit_width_ = 0;
  SegmentStats stats_;

  // Resident (plain) encoded form. Guarded by resident_mu_ when archival
  // is in play; plain segments never mutate these after construction.
  mutable std::vector<uint8_t> packed_;  // bit-packed codes (kBitPack)
  mutable RleEncoded rle_;               // run-length form (kRle)
  std::vector<uint8_t> null_bitmap_;     // empty when no nulls

  // Non-owning spans into a memory-mapped checkpoint file, used instead of
  // the vectors above for segments opened from disk; keepalive_ pins the
  // mapping for the segment's lifetime.
  mutable const uint8_t* packed_extern_ = nullptr;
  mutable size_t packed_extern_size_ = 0;
  const uint8_t* null_bitmap_extern_ = nullptr;
  size_t null_bitmap_extern_size_ = 0;
  std::shared_ptr<const void> keepalive_;

  // Dictionaries: primary shared across row groups, local per segment.
  std::shared_ptr<const StringDictionary> primary_dict_;
  std::unique_ptr<StringDictionary> local_dict_;
  int64_t primary_dict_size_ = 0;  // codes below this resolve via primary

  // Archival state.
  bool archived_ = false;
  mutable bool resident_ = true;
  mutable std::mutex resident_mu_;
  struct Blob {
    std::vector<uint8_t> compressed;
    size_t original_size = 0;
  };
  Blob arch_packed_;
  Blob arch_rle_values_;
  Blob arch_rle_lengths_;
};

// Builds a ColumnSegment from a slice of a ColumnData.
class SegmentBuilder {
 public:
  struct Options {
    // Max entries in the shared primary dictionary before overflowing to
    // per-segment local dictionaries.
    int64_t primary_dict_capacity = 1 << 20;
  };

  // Encodes rows [begin, end) of `column`. If `row_order` is non-null it
  // holds end-begin absolute row indices giving the storage order (used by
  // the row-reordering optimization). `primary_dict` must be non-null for
  // string columns and is shared with other segments of the same column.
  static std::unique_ptr<ColumnSegment> Build(
      const ColumnData& column, int64_t begin, int64_t end,
      const int64_t* row_order,
      const std::shared_ptr<StringDictionary>& primary_dict,
      const Options& options);
};

}  // namespace vstore

#endif  // VSTORE_STORAGE_SEGMENT_H_
