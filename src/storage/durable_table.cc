#include "storage/durable_table.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "common/io.h"
#include "common/serde.h"
#include "storage/delta_store.h"
#include "storage/segment_file.h"

namespace vstore {

namespace {

// Parses "<stem>.<kind>.<epoch>" file names; returns false for anything
// else (including ".tmp" leftovers).
bool ParseEpochFile(const std::string& file, const std::string& stem,
                    const std::string& kind, uint64_t* epoch) {
  std::string prefix = stem + "." + kind + ".";
  if (file.size() <= prefix.size() || file.compare(0, prefix.size(), prefix)) {
    return false;
  }
  const char* digits = file.c_str() + prefix.size();
  char* end = nullptr;
  unsigned long long value = std::strtoull(digits, &end, 10);
  if (end == digits || *end != '\0' || value == 0) return false;
  *epoch = value;
  return true;
}

Result<int64_t> FileBytes(const std::string& path) {
  VSTORE_ASSIGN_OR_RETURN(std::unique_ptr<File> f, File::OpenRead(path));
  return f->Size();
}

}  // namespace

// --- DurableTable ---------------------------------------------------------

DurableTable::DurableTable(std::string dir, ColumnStoreTable* table,
                           Options options)
    : dir_(std::move(dir)), table_(table), options_(options) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  const std::string& t = table_->metric_table_label();
  const std::string& s = table_->metric_shard_label();
  auto counter = [&](const std::string& name) {
    return s.empty() ? registry.GetCounter(name, "table", t)
                     : registry.GetCounter(name, "table", t, "shard", s);
  };
  auto gauge = [&](const std::string& name) {
    return s.empty() ? registry.GetGauge(name, "table", t)
                     : registry.GetGauge(name, "table", t, "shard", s);
  };
  metrics_.wal_records = counter("vstore_wal_records");
  metrics_.wal_bytes = counter("vstore_wal_bytes");
  metrics_.wal_syncs = counter("vstore_wal_syncs");
  metrics_.checkpoints = counter("vstore_checkpoints");
  metrics_.recovery_replayed_records =
      counter("vstore_recovery_replayed_records");
  metrics_.wal_file_bytes = gauge("vstore_wal_file_bytes");
  metrics_.checkpoint_file_bytes = gauge("vstore_checkpoint_file_bytes");
}

DurableTable::~DurableTable() {
  table_->AttachDurabilityHook(nullptr);
  std::shared_ptr<WalWriter> wal;
  {
    std::lock_guard<std::mutex> lock(wal_mu_);
    wal = wal_;
  }
  if (wal != nullptr) {
    Status st = wal->Close();  // best effort; commits were already synced
    (void)st;
  }
}

std::string DurableTable::WalPath(uint64_t epoch) const {
  return dir_ + "/" + table_->name() + ".wal." + std::to_string(epoch);
}

std::string DurableTable::CkptPath(uint64_t epoch) const {
  return dir_ + "/" + table_->name() + ".ckpt." + std::to_string(epoch);
}

Result<std::unique_ptr<DurableTable>> DurableTable::Open(
    const std::string& dir, ColumnStoreTable* table, Options options) {
  if (table->num_row_groups() != 0 || table->num_delta_stores() != 0) {
    return Status::InvalidArgument(
        "DurableTable::Open requires a freshly constructed empty table");
  }
  VSTORE_RETURN_IF_ERROR(CreateDirs(dir));
  auto durable =
      std::unique_ptr<DurableTable>(new DurableTable(dir, table, options));
  VSTORE_RETURN_IF_ERROR(durable->Recover());
  table->AttachDurabilityHook(durable.get());
  return durable;
}

Status DurableTable::Recover() {
  ScopedTrace trace("recover:" + table_->name(), "durability");
  VSTORE_ASSIGN_OR_RETURN(std::vector<std::string> files, ListDir(dir_));
  const std::string stem = table_->name();
  std::vector<uint64_t> ckpt_epochs;
  std::vector<uint64_t> wal_epochs;
  for (const std::string& f : files) {
    uint64_t epoch;
    if (ParseEpochFile(f, stem, "ckpt", &epoch)) ckpt_epochs.push_back(epoch);
    if (ParseEpochFile(f, stem, "wal", &epoch)) wal_epochs.push_back(epoch);
  }
  std::sort(ckpt_epochs.rbegin(), ckpt_epochs.rend());
  std::sort(wal_epochs.begin(), wal_epochs.end());

  // Load the newest checkpoint that validates; fall back on corruption so a
  // damaged newest checkpoint degrades to (older checkpoint + longer WAL
  // replay) instead of data loss.
  ColumnStoreTable::RecoveredState state;
  Status last_error;
  for (uint64_t epoch : ckpt_epochs) {
    auto loaded = SegmentFileReader::Load(CkptPath(epoch), table_);
    if (!loaded.ok()) {
      last_error = loaded.status();
      ++recovery_.checkpoint_fallbacks;
      continue;
    }
    if (loaded.value().epoch != epoch) {
      last_error = Status::Internal("checkpoint: epoch/file name mismatch");
      ++recovery_.checkpoint_fallbacks;
      continue;
    }
    recovery_.checkpoint_epoch = epoch;
    recovery_.checkpoint_lsn = loaded.value().checkpoint_lsn;
    ckpt_bytes_ = loaded.value().file_bytes;
    state = std::move(loaded.value().state);
    break;
  }
  if (recovery_.checkpoint_epoch == 0 && !ckpt_epochs.empty()) {
    // Every checkpoint failed to validate. A WAL tail alone cannot
    // reconstruct the table (bulk loads are not row-logged), so surface
    // the corruption instead of silently replaying onto an empty table.
    return last_error;
  }
  ckpt_epoch_ = recovery_.checkpoint_epoch;
  VSTORE_RETURN_IF_ERROR(table_->RecoverInstallState(std::move(state)));

  // Replay WAL epochs newer than the checkpoint, in epoch order. Only the
  // newest file may end mid-record (torn tail); any other anomaly — a gap
  // in the epoch chain, corruption mid-file — is real damage.
  uint64_t max_lsn = recovery_.checkpoint_lsn;
  uint64_t last_epoch = ckpt_epoch_;
  std::vector<uint64_t> replay;
  for (uint64_t e : wal_epochs) {
    if (e > ckpt_epoch_) replay.push_back(e);
  }
  for (size_t i = 0; i < replay.size(); ++i) {
    if (replay[i] != ckpt_epoch_ + 1 + i) {
      return Status::Internal("wal: epoch gap: missing " +
                              WalPath(ckpt_epoch_ + 1 + i));
    }
  }
  for (size_t i = 0; i < replay.size(); ++i) {
    bool newest = i + 1 == replay.size();
    std::vector<WalRecord> records;
    WalReadStats stats;
    auto epoch_or =
        WalReader::ReadAll(WalPath(replay[i]), newest, &records, &stats);
    if (!epoch_or.ok()) {
      if (newest) {
        // A crash between WAL rotation and the header fsync completing can
        // leave the newest file unreadable from the first byte; nothing in
        // it was ever acknowledged.
        recovery_.torn_tail = true;
        break;
      }
      return epoch_or.status();
    }
    if (epoch_or.value() != replay[i]) {
      return Status::Internal("wal: header epoch does not match file name");
    }
    if (stats.truncated_tail) recovery_.torn_tail = true;
    for (const WalRecord& rec : records) {
      if (rec.lsn <= recovery_.checkpoint_lsn) continue;  // already in ckpt
      BufReader r(rec.payload);
      switch (rec.type) {
        case WalRecordType::kInsert: {
          uint64_t id;
          std::string_view bytes;
          std::vector<Value> row;
          VSTORE_RETURN_IF_ERROR(r.GetU64(&id));
          VSTORE_RETURN_IF_ERROR(r.GetBytes(&bytes));
          VSTORE_RETURN_IF_ERROR(DecodeRow(table_->schema(), bytes, &row));
          VSTORE_RETURN_IF_ERROR(table_->RecoverInsert(id, row));
          break;
        }
        case WalRecordType::kDelete: {
          uint64_t id;
          VSTORE_RETURN_IF_ERROR(r.GetU64(&id));
          VSTORE_RETURN_IF_ERROR(table_->RecoverDelete(id));
          break;
        }
        case WalRecordType::kCompressStores: {
          uint32_t count;
          VSTORE_RETURN_IF_ERROR(r.GetU32(&count));
          std::vector<int64_t> ids(count);
          for (uint32_t k = 0; k < count; ++k) {
            VSTORE_RETURN_IF_ERROR(r.GetI64(&ids[k]));
          }
          VSTORE_RETURN_IF_ERROR(table_->RecoverCompressStores(ids));
          break;
        }
        case WalRecordType::kRebuildGroups: {
          uint32_t count;
          VSTORE_RETURN_IF_ERROR(r.GetU32(&count));
          std::vector<int64_t> groups(count);
          for (uint32_t k = 0; k < count; ++k) {
            VSTORE_RETURN_IF_ERROR(r.GetI64(&groups[k]));
          }
          VSTORE_RETURN_IF_ERROR(table_->RecoverRebuildGroups(groups));
          break;
        }
        default:
          return Status::Internal("wal: unexpected record type");
      }
      if (!r.done()) {
        return Status::Internal("wal: trailing bytes in record payload");
      }
      if (rec.lsn > max_lsn) max_lsn = rec.lsn;
      ++recovery_.wal_records_replayed;
      metrics_.recovery_replayed_records->Increment();
    }
    ++recovery_.wal_epochs_replayed;
    last_epoch = replay[i];
  }

  // Open a fresh WAL epoch for new commits and make it durable before any
  // commit can be acknowledged against it.
  wal_epoch_ = last_epoch + 1;
  next_lsn_ = max_lsn + 1;
  VSTORE_ASSIGN_OR_RETURN(std::unique_ptr<WalWriter> wal,
                          WalWriter::Create(WalPath(wal_epoch_), wal_epoch_));
  wal->EnableWaitAttribution(table_->metric_table_label());
  VSTORE_RETURN_IF_ERROR(SyncDir(dir_));
  {
    std::lock_guard<std::mutex> lock(wal_mu_);
    wal_ = std::move(wal);
  }

  table_->ReconcileMetricsAfterRecovery();
  if (ckpt_epoch_ > 0) {
    RetireBefore(ckpt_epoch_);
  }
  RefreshFileGauges();
  return Status::OK();
}

Status DurableTable::AppendRecord(WalRecordType type, std::string payload) {
  WalRecord rec;
  rec.lsn = next_lsn_++;
  rec.type = type;
  rec.payload = std::move(payload);
  VSTORE_RETURN_IF_ERROR(wal_->Append(rec));
  metrics_.wal_records->Increment();
  metrics_.wal_bytes->Increment(static_cast<int64_t>(rec.payload.size()) + 17);
  return Status::OK();
}

Status DurableTable::LogInsert(RowId id, const std::vector<Value>& row) {
  BufWriter w;
  w.PutU64(id);
  w.PutBytes(EncodeRow(table_->schema(), row));
  return AppendRecord(WalRecordType::kInsert, w.Take());
}

Status DurableTable::LogDelete(RowId id) {
  BufWriter w;
  w.PutU64(id);
  return AppendRecord(WalRecordType::kDelete, w.Take());
}

Status DurableTable::LogCompressInstall(const std::vector<int64_t>& store_ids) {
  BufWriter w;
  w.PutU32(static_cast<uint32_t>(store_ids.size()));
  for (int64_t id : store_ids) w.PutI64(id);
  return AppendRecord(WalRecordType::kCompressStores, w.Take());
}

Status DurableTable::LogRebuildInstall(const std::vector<int64_t>& groups) {
  BufWriter w;
  w.PutU32(static_cast<uint32_t>(groups.size()));
  for (int64_t g : groups) w.PutI64(g);
  return AppendRecord(WalRecordType::kRebuildGroups, w.Take());
}

Status DurableTable::Commit() {
  std::shared_ptr<WalWriter> wal;
  {
    std::lock_guard<std::mutex> lock(wal_mu_);
    wal = wal_;
  }
  metrics_.wal_file_bytes->Set(wal->bytes_appended());
  if (!options_.sync_commits) return Status::OK();
  metrics_.wal_syncs->Increment();
  return wal->SyncTo(wal->last_appended_lsn());
}

Status DurableTable::OnBulkLoad() { return Checkpoint(); }

Status DurableTable::Checkpoint() {
  std::lock_guard<std::mutex> ckpt_lock(ckpt_mu_);
  ScopedTrace trace("checkpoint:" + table_->name(), "durability");

  uint64_t old_epoch = 0;
  uint64_t ckpt_lsn = 0;
  std::shared_ptr<WalWriter> old_wal;
  // Runs under the table's exclusive lock: the snapshot, the LSN
  // high-water mark, and the WAL swap are one atomic cut — no record can
  // land between the captured state and the first record of the new epoch.
  auto rotate = [&]() -> Status {
    old_epoch = wal_epoch_;
    VSTORE_ASSIGN_OR_RETURN(
        std::unique_ptr<WalWriter> fresh,
        WalWriter::Create(WalPath(old_epoch + 1), old_epoch + 1));
    fresh->EnableWaitAttribution(table_->metric_table_label());
    VSTORE_RETURN_IF_ERROR(SyncDir(dir_));
    {
      std::lock_guard<std::mutex> lock(wal_mu_);
      old_wal = std::move(wal_);
      wal_ = std::move(fresh);
    }
    wal_epoch_ = old_epoch + 1;
    ckpt_lsn = next_lsn_ - 1;
    // Seals the old epoch: everything logged before this cut is durable
    // before the checkpoint that supersedes it is written.
    return old_wal->Close();
  };
  auto state_or = table_->CaptureCheckpointState(rotate);
  VSTORE_RETURN_IF_ERROR(state_or.status());

  std::string path = CkptPath(old_epoch);
  std::string tmp = path + ".tmp";
  int64_t bytes = 0;
  Status st = SegmentFileWriter::Write(tmp, *table_, state_or.value(),
                                       old_epoch, ckpt_lsn, &bytes);
  if (!st.ok()) {
    Status cleanup = RemoveFile(tmp);
    (void)cleanup;
    return st;
  }
  VSTORE_RETURN_IF_ERROR(RenameFile(tmp, path));
  VSTORE_RETURN_IF_ERROR(SyncDir(dir_));
  ckpt_epoch_ = old_epoch;
  ckpt_bytes_ = bytes;
  metrics_.checkpoints->Increment();

  RetireBefore(old_epoch);
  RefreshFileGauges();
  return Status::OK();
}

Status DurableTable::RetireBefore(uint64_t checkpoint_epoch) {
  // Checkpoint `checkpoint_epoch` covers wal epochs <= checkpoint_epoch and
  // supersedes older checkpoints. Unlinking is safe even while scans still
  // decode from an older checkpoint's mapping — the mapping outlives the
  // directory entry.
  VSTORE_ASSIGN_OR_RETURN(std::vector<std::string> files, ListDir(dir_));
  const std::string stem = table_->name();
  Status first_error;
  for (const std::string& f : files) {
    uint64_t epoch;
    bool remove = false;
    if (ParseEpochFile(f, stem, "wal", &epoch)) {
      remove = epoch <= checkpoint_epoch;
    } else if (ParseEpochFile(f, stem, "ckpt", &epoch)) {
      remove = epoch < checkpoint_epoch;
    }
    if (remove) {
      Status st = RemoveFile(dir_ + "/" + f);
      if (!st.ok() && first_error.ok()) first_error = st;
    }
  }
  return first_error;
}

void DurableTable::RefreshFileGauges() const {
  std::shared_ptr<WalWriter> wal;
  {
    std::lock_guard<std::mutex> lock(wal_mu_);
    wal = wal_;
  }
  if (wal != nullptr) metrics_.wal_file_bytes->Set(wal->bytes_appended());
  metrics_.checkpoint_file_bytes->Set(ckpt_bytes_);
}

std::vector<DurableTable::FileInfo> DurableTable::Files() const {
  std::vector<FileInfo> out;
  auto files_or = ListDir(dir_);
  if (!files_or.ok()) return out;
  const std::string stem = table_->name();
  for (const std::string& f : files_or.value()) {
    FileInfo info;
    if (ParseEpochFile(f, stem, "wal", &info.epoch)) {
      info.kind = "wal";
    } else if (ParseEpochFile(f, stem, "ckpt", &info.epoch)) {
      info.kind = "checkpoint";
    } else {
      continue;
    }
    info.path = dir_ + "/" + f;
    auto bytes = FileBytes(info.path);
    info.bytes = bytes.ok() ? bytes.value() : -1;
    out.push_back(std::move(info));
  }
  std::sort(out.begin(), out.end(), [](const FileInfo& a, const FileInfo& b) {
    return a.epoch != b.epoch ? a.epoch < b.epoch : a.kind < b.kind;
  });
  return out;
}

// --- DurableShardedTable --------------------------------------------------

Result<std::unique_ptr<DurableShardedTable>> DurableShardedTable::Open(
    const std::string& dir, std::string name, Schema schema,
    ShardedTable::Options options, DurableTable::Options durable_options) {
  VSTORE_RETURN_IF_ERROR(CreateDirs(dir));
  auto durable = std::unique_ptr<DurableShardedTable>(new DurableShardedTable());
  durable->sharded_ = std::make_unique<ShardedTable>(
      std::move(name), std::move(schema), std::move(options));
  int shards = durable->sharded_->num_shards();
  durable->shards_.reserve(static_cast<size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    std::string shard_dir = dir + "/shard" + std::to_string(i);
    VSTORE_ASSIGN_OR_RETURN(
        std::unique_ptr<DurableTable> shard,
        DurableTable::Open(shard_dir, durable->sharded_->shard(i),
                           durable_options));
    durable->shards_.push_back(std::move(shard));
  }
  return durable;
}

Status DurableShardedTable::Checkpoint() {
  Status first_error;
  for (auto& shard : shards_) {
    Status st = shard->Checkpoint();
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  return first_error;
}

std::vector<DurableTable::FileInfo> DurableShardedTable::Files() const {
  std::vector<DurableTable::FileInfo> out;
  for (const auto& shard : shards_) {
    std::vector<DurableTable::FileInfo> files = shard->Files();
    out.insert(out.end(), files.begin(), files.end());
  }
  return out;
}

}  // namespace vstore
