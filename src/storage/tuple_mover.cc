#include "storage/tuple_mover.h"

namespace vstore {

Result<int64_t> TupleMover::RunOnce() {
  VSTORE_ASSIGN_OR_RETURN(
      int64_t moved, table_->CompressDeltaStores(options_.include_open_stores));
  if (options_.rebuild_deleted_fraction > 0) {
    VSTORE_ASSIGN_OR_RETURN(
        int64_t rebuilt,
        table_->RemoveDeletedRows(options_.rebuild_deleted_fraction));
    (void)rebuilt;
  }
  total_moved_.fetch_add(moved);
  return moved;
}

void TupleMover::Start(std::chrono::milliseconds period) {
  VSTORE_CHECK(!running_.load());
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = false;
  }
  running_.store(true);
  worker_ = std::thread([this, period] { Loop(period); });
}

void TupleMover::Stop() {
  if (!running_.load()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
  }
  wake_.notify_all();
  worker_.join();
  running_.store(false);
}

void TupleMover::Loop(std::chrono::milliseconds period) {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    lock.unlock();
    RunOnce().status().CheckOK();
    lock.lock();
    wake_.wait_for(lock, period, [this] { return stop_requested_; });
  }
}

}  // namespace vstore
