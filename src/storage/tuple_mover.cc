#include "storage/tuple_mover.h"

namespace vstore {

Result<int64_t> TupleMover::RunOnce() {
  VSTORE_ASSIGN_OR_RETURN(
      int64_t moved, table_->CompressDeltaStores(options_.include_open_stores));
  if (options_.rebuild_deleted_fraction > 0) {
    VSTORE_ASSIGN_OR_RETURN(
        int64_t rebuilt,
        table_->RemoveDeletedRows(options_.rebuild_deleted_fraction));
    (void)rebuilt;
  }
  total_moved_.fetch_add(moved);
  return moved;
}

void TupleMover::Start(std::chrono::milliseconds period) {
  std::lock_guard<std::mutex> lock(mu_);
  VSTORE_CHECK(!running_ && !worker_.joinable());
  running_ = true;
  stop_requested_ = false;
  last_error_ = Status::OK();
  worker_ = std::thread([this, period] { Loop(period); });
}

Status TupleMover::Stop() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (worker_.joinable()) {
      stop_requested_ = true;
      to_join = std::move(worker_);
    }
  }
  wake_.notify_all();
  if (to_join.joinable()) to_join.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
  Status err = last_error_;
  last_error_ = Status::OK();
  return err;
}

bool TupleMover::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

Status TupleMover::last_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_error_;
}

void TupleMover::Loop(std::chrono::milliseconds period) {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    lock.unlock();
    Status pass = options_.fault_injector_for_testing
                      ? options_.fault_injector_for_testing()
                      : Status::OK();
    if (pass.ok()) pass = RunOnce().status();
    lock.lock();
    // A failed pass must not take down the process (it runs on a
    // background thread); record it and retry next period.
    if (!pass.ok()) last_error_ = pass;
    wake_.wait_for(lock, period, [this] { return stop_requested_; });
  }
}

}  // namespace vstore
