#include "storage/tuple_mover.h"

#include <chrono>

namespace vstore {

TupleMover::TupleMover(ColumnStoreTable* table, Options options)
    : table_(table), options_(std::move(options)) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  // Label exactly as the table labels its own metrics, so a shard's mover
  // metrics land in the same {table=,shard=} family set as its DML
  // counters (unsharded tables keep the one-level {table=} families).
  const std::string& t = table_->metric_table_label();
  const std::string& s = table_->metric_shard_label();
  auto counter = [&](const char* name) {
    return s.empty() ? registry.GetCounter(name, "table", t)
                     : registry.GetCounter(name, "table", t, "shard", s);
  };
  auto gauge = [&](const char* name) {
    return s.empty() ? registry.GetGauge(name, "table", t)
                     : registry.GetGauge(name, "table", t, "shard", s);
  };
  passes_total_ = counter("vstore_mover_passes_total");
  failed_passes_total_ = counter("vstore_mover_failed_passes_total");
  rows_moved_total_ = counter("vstore_mover_rows_moved_total");
  stores_compressed_total_ = counter("vstore_mover_stores_compressed_total");
  groups_rebuilt_total_ = counter("vstore_mover_groups_rebuilt_total");
  conflicts_total_ = counter("vstore_mover_conflicts_total");
  running_gauge_ = gauge("vstore_mover_running");
  last_error_gauge_ = gauge("vstore_mover_last_error");
  pass_duration_ns_ =
      s.empty()
          ? registry.GetHistogram("vstore_mover_pass_duration_ns", "table", t)
          : registry.GetHistogram("vstore_mover_pass_duration_ns", "table", t,
                                  "shard", s);
}

Result<int64_t> TupleMover::RunOnce() {
  // Per-table trace name: merged onto a query's Chrome-trace timeline
  // (TraceToChromeJson with include_trace_ring), the pass that stalled a
  // scan is identifiable by table.
  ScopedTrace trace("mover_pass:" + table_->metric_table_label(), "mover");
  auto start = std::chrono::steady_clock::now();

  ColumnStoreTable::ReorgStats compress_stats;
  ColumnStoreTable::ReorgStats rebuild_stats;
  auto result = [&]() -> Result<int64_t> {
    VSTORE_ASSIGN_OR_RETURN(
        int64_t moved, table_->CompressDeltaStores(options_.include_open_stores,
                                                   &compress_stats));
    if (options_.rebuild_deleted_fraction > 0) {
      VSTORE_ASSIGN_OR_RETURN(
          int64_t rebuilt,
          table_->RemoveDeletedRows(options_.rebuild_deleted_fraction,
                                    &rebuild_stats));
      (void)rebuilt;
    }
    return moved;
  }();

  if (result.ok() &&
      (compress_stats.installed > 0 || rebuild_stats.installed > 0) &&
      options_.checkpoint_hook) {
    Status ckpt = options_.checkpoint_hook();
    if (!ckpt.ok()) result = ckpt;
  }

  PassStats pass;
  pass.stores_compressed = compress_stats.installed;
  pass.groups_rebuilt = rebuild_stats.installed;
  pass.rows_moved = compress_stats.rows;
  pass.conflicts = compress_stats.conflicts + rebuild_stats.conflicts;
  pass.duration_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now() - start)
                         .count();

  passes_total_->Increment();
  pass_duration_ns_->Observe(pass.duration_ns);
  rows_moved_total_->Increment(pass.rows_moved);
  stores_compressed_total_->Increment(pass.stores_compressed);
  groups_rebuilt_total_->Increment(pass.groups_rebuilt);
  conflicts_total_->Increment(pass.conflicts);
  if (!result.ok()) failed_passes_total_->Increment();

  total_conflicts_.fetch_add(pass.conflicts);
  if (result.ok()) total_moved_.fetch_add(result.value());
  {
    std::lock_guard<std::mutex> lock(mu_);
    last_pass_ = pass;
  }
  return result;
}

void TupleMover::Start(std::chrono::milliseconds period) {
  std::lock_guard<std::mutex> lock(mu_);
  VSTORE_CHECK(!running_ && !worker_.joinable());
  running_ = true;
  stop_requested_ = false;
  last_error_ = Status::OK();
  last_error_gauge_->Set(0);
  running_gauge_->Set(1);
  worker_ = std::thread([this, period] { Loop(period); });
}

Status TupleMover::Stop() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (worker_.joinable()) {
      stop_requested_ = true;
      to_join = std::move(worker_);
    }
  }
  wake_.notify_all();
  if (to_join.joinable()) to_join.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
  running_gauge_->Set(0);
  last_error_gauge_->Set(0);
  Status err = last_error_;
  last_error_ = Status::OK();
  return err;
}

bool TupleMover::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

Status TupleMover::last_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_error_;
}

TupleMover::PassStats TupleMover::last_pass() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_pass_;
}

void TupleMover::Loop(std::chrono::milliseconds period) {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    lock.unlock();
    Status pass = options_.fault_injector_for_testing
                      ? options_.fault_injector_for_testing()
                      : Status::OK();
    if (pass.ok()) {
      pass = RunOnce().status();  // RunOnce counts its own failures
    } else {
      failed_passes_total_->Increment();
    }
    lock.lock();
    // A failed pass must not take down the process (it runs on a
    // background thread); record it and retry next period.
    if (!pass.ok()) {
      last_error_ = pass;
      last_error_gauge_->Set(1);
    }
    wake_.wait_for(lock, period, [this] { return stop_requested_; });
  }
}

}  // namespace vstore
