#ifndef VSTORE_STORAGE_ROW_GROUP_H_
#define VSTORE_STORAGE_ROW_GROUP_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "storage/dictionary.h"
#include "storage/segment.h"
#include "types/schema.h"
#include "types/table_data.h"

namespace vstore {

// A horizontal partition of roughly one million rows, stored as one
// ColumnSegment per column (paper §2). Immutable once built; deletions are
// recorded in the table's delete bitmap, never here.
class RowGroup {
 public:
  VSTORE_DISALLOW_COPY_AND_ASSIGN(RowGroup);

  int64_t id() const { return id_; }
  int64_t num_rows() const { return num_rows_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }
  const ColumnSegment& column(int i) const {
    return *columns_[static_cast<size_t>(i)];
  }

  // Sum of segment sizes (excluding shared primary dictionaries).
  int64_t EncodedBytes() const;
  int64_t ArchivedBytes() const;

  Status Archive();
  void Evict() const;

 private:
  friend class RowGroupBuilder;
  friend class SegmentFileReader;  // reassembles groups from a checkpoint
  RowGroup() = default;

  int64_t id_ = 0;
  int64_t num_rows_ = 0;
  std::vector<std::unique_ptr<ColumnSegment>> columns_;
};

class RowGroupBuilder {
 public:
  struct Options {
    int64_t primary_dict_capacity = 1 << 20;
    // Apply the row-reordering compression optimization (DESIGN.md E8).
    bool optimize_row_order = false;
    // Archival-compress segments immediately after building.
    bool archival = false;
  };

  // Encodes rows [begin, end) of `data`. `primary_dicts` has one entry per
  // column (null for non-string columns) and is shared across row groups.
  static std::unique_ptr<RowGroup> Build(
      const TableData& data, int64_t begin, int64_t end, int64_t id,
      const std::vector<std::shared_ptr<StringDictionary>>& primary_dicts,
      const Options& options);
};

}  // namespace vstore

#endif  // VSTORE_STORAGE_ROW_GROUP_H_
