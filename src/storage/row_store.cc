#include "storage/row_store.h"

#include <algorithm>
#include <string_view>
#include <unordered_set>

#include "common/bit_util.h"
#include "storage/delta_store.h"  // row codec

namespace vstore {

Status RowStoreTable::Insert(const std::vector<Value>& row) {
  if (static_cast<int>(row.size()) != schema_.num_columns()) {
    return Status::InvalidArgument("row arity does not match schema");
  }
  offsets_.push_back(log_.size());
  log_ += EncodeRow(schema_, row);
  return Status::OK();
}

Status RowStoreTable::Append(const TableData& data) {
  if (!data.schema().Equals(schema_)) {
    return Status::InvalidArgument("table data schema mismatch");
  }
  for (int64_t i = 0; i < data.num_rows(); ++i) {
    VSTORE_RETURN_IF_ERROR(Insert(data.GetRow(i)));
  }
  return Status::OK();
}

Status RowStoreTable::GetRow(int64_t i, std::vector<Value>* row) const {
  if (i < 0 || i >= num_rows()) return Status::OutOfRange("row index");
  size_t begin = offsets_[static_cast<size_t>(i)];
  size_t end = static_cast<size_t>(i) + 1 < offsets_.size()
                   ? offsets_[static_cast<size_t>(i) + 1]
                   : log_.size();
  return DecodeRow(schema_, std::string_view(log_).substr(begin, end - begin),
                   row);
}

namespace {

// Serialized byte size of one value under a variable-width row format.
int64_t ValueBytes(const Value& v) {
  if (v.is_null()) return 0;
  switch (PhysicalTypeOf(v.type())) {
    case PhysicalType::kInt64: {
      uint64_t m = static_cast<uint64_t>(v.int64() < 0 ? -v.int64() : v.int64());
      return std::max<int64_t>(1, bit_util::CeilDiv(bit_util::BitsRequired(m) + 1, 8));
    }
    case PhysicalType::kDouble:
      return 8;
    case PhysicalType::kString:
      return static_cast<int64_t>(v.str().size());
  }
  return 8;
}

}  // namespace

int64_t RowStoreTable::PageCompressedBytes(int rows_per_page) const {
  const int64_t n = num_rows();
  int64_t total = 0;
  std::vector<Value> row;
  std::vector<Value> page_rows;

  for (int64_t page_start = 0; page_start < n; page_start += rows_per_page) {
    int64_t page_end = std::min<int64_t>(page_start + rows_per_page, n);
    int64_t page_rows_count = page_end - page_start;

    // Gather the page once.
    std::vector<std::vector<Value>> rows;
    rows.reserve(static_cast<size_t>(page_rows_count));
    for (int64_t i = page_start; i < page_end; ++i) {
      GetRow(i, &row).CheckOK();
      rows.push_back(row);
    }

    for (int c = 0; c < schema_.num_columns(); ++c) {
      // Distinct values on this page (dictionary part of PAGE compression).
      std::unordered_set<std::string> distinct;
      int64_t dict_bytes = 0;
      for (const auto& r : rows) {
        const Value& v = r[static_cast<size_t>(c)];
        std::string key = v.is_null() ? std::string("\0N", 2) : v.ToString();
        if (distinct.insert(std::move(key)).second) {
          dict_bytes += ValueBytes(v) + 1;  // +1 length/terminator byte
        }
      }
      // Per-row minimal-width code referencing the page dictionary.
      int code_bits =
          bit_util::BitsRequired(distinct.empty() ? 0 : distinct.size() - 1);
      int64_t code_bytes =
          bit_util::CeilDiv(page_rows_count * std::max(code_bits, 1), 8);
      total += dict_bytes + code_bytes;
    }
    total += page_rows_count * 2;  // per-row record header
    total += 96;                   // page header
  }
  return total;
}

}  // namespace vstore
