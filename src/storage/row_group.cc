#include "storage/row_group.h"

#include "storage/reorder.h"

namespace vstore {

int64_t RowGroup::EncodedBytes() const {
  int64_t total = 0;
  for (const auto& seg : columns_) total += seg->EncodedBytes();
  return total;
}

int64_t RowGroup::ArchivedBytes() const {
  int64_t total = 0;
  for (const auto& seg : columns_) total += seg->ArchivedBytes();
  return total;
}

Status RowGroup::Archive() {
  for (auto& seg : columns_) {
    VSTORE_RETURN_IF_ERROR(seg->Archive());
  }
  return Status::OK();
}

void RowGroup::Evict() const {
  for (const auto& seg : columns_) seg->Evict();
}

std::unique_ptr<RowGroup> RowGroupBuilder::Build(
    const TableData& data, int64_t begin, int64_t end, int64_t id,
    const std::vector<std::shared_ptr<StringDictionary>>& primary_dicts,
    const Options& options) {
  VSTORE_CHECK(static_cast<int>(primary_dicts.size()) == data.num_columns());
  auto group = std::unique_ptr<RowGroup>(new RowGroup());
  group->id_ = id;
  group->num_rows_ = end - begin;

  std::vector<int64_t> order;
  if (options.optimize_row_order) {
    order = ChooseRowOrder(data, begin, end);
  }
  const int64_t* order_ptr = order.empty() ? nullptr : order.data();

  SegmentBuilder::Options seg_options;
  seg_options.primary_dict_capacity = options.primary_dict_capacity;

  group->columns_.reserve(static_cast<size_t>(data.num_columns()));
  for (int c = 0; c < data.num_columns(); ++c) {
    auto segment =
        SegmentBuilder::Build(data.column(c), begin, end, order_ptr,
                              primary_dicts[static_cast<size_t>(c)],
                              seg_options);
    if (options.archival) segment->Archive().CheckOK();
    group->columns_.push_back(std::move(segment));
  }
  return group;
}

}  // namespace vstore
