#ifndef VSTORE_STORAGE_SEGMENT_FILE_H_
#define VSTORE_STORAGE_SEGMENT_FILE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/io.h"
#include "common/status.h"
#include "storage/column_store.h"

namespace vstore {

// --- Checkpoint segment files --------------------------------------------
// On-disk representation of one table checkpoint: every compressed row
// group (all column segments, fully encoded), delete bitmaps, delta-store
// contents, the shared primary dictionaries, and the counters that make WAL
// replay deterministic. The layout is mmap-friendly: bulk buffers (packed
// codes, RLE arrays, null bitmaps, dictionary heaps) live in page-aligned
// sections that the reader hands to segments as external spans, so scans
// against a reopened table decode straight out of the mapping with no copy.
//
//   [header page, 4096 bytes]   magic / format version / epoch /
//                               checkpoint LSN / replay counters / schema
//                               column type ids / CRC
//   [section 0..n-1]            raw payload bytes, each 4096-aligned,
//                               zero-padded; last section is the metadata
//                               stream that stitches the rest together
//   [directory]                 per section: offset, size, masked CRC-32C
//   [footer, 24 bytes]          directory offset/count + CRCs + magic
//
// Every section (and the header, directory and footer) carries a masked
// CRC-32C; the reader verifies all of them before exposing any data, so a
// torn write or bit flip surfaces as a clean Status, never as UB in a
// decoder. Files are written to a temporary name and published by rename.

inline constexpr uint32_t kCheckpointMagic = 0x504B4356;  // "VCKP"
inline constexpr uint32_t kCheckpointVersion = 1;
inline constexpr int64_t kCheckpointAlign = 4096;

class SegmentFileWriter {
 public:
  // Serializes `state` (a snapshot captured by CaptureCheckpointState) plus
  // the table's primary dictionaries to `path`. The file is synced before
  // returning; the caller renames it into place and syncs the directory.
  static Status Write(const std::string& path, const ColumnStoreTable& table,
                      const ColumnStoreTable::CheckpointState& state,
                      uint64_t epoch, uint64_t checkpoint_lsn,
                      int64_t* file_bytes);
};

class SegmentFileReader {
 public:
  struct Loaded {
    ColumnStoreTable::RecoveredState state;
    uint64_t epoch = 0;
    uint64_t checkpoint_lsn = 0;
    int64_t file_bytes = 0;
  };

  // Memory-maps `path`, verifies all CRCs, and reconstructs the table state
  // recorded in it. `table` must be freshly constructed (empty primary
  // dictionaries): the reader repopulates its dictionaries in code order
  // and points the rebuilt segments at them. Loaded segments keep the
  // mapping alive via their keepalive references, so the returned state
  // stays valid after the reader goes away (and even after the file is
  // later unlinked by checkpoint retirement).
  static Result<Loaded> Load(const std::string& path, ColumnStoreTable* table);
};

}  // namespace vstore

#endif  // VSTORE_STORAGE_SEGMENT_FILE_H_
