#ifndef VSTORE_STORAGE_ROW_STORE_H_
#define VSTORE_STORAGE_ROW_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "types/schema.h"
#include "types/table_data.h"
#include "types/value.h"

namespace vstore {

// Row-oriented baseline table: rows serialized back to back in an
// append-only log. Plays the role SQL Server's B-tree/heap row store plays
// in the paper — the thing the column store is compared against, and the
// storage behind row-mode plans.
class RowStoreTable {
 public:
  RowStoreTable(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}
  VSTORE_DISALLOW_COPY_AND_ASSIGN(RowStoreTable);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  int64_t num_rows() const { return static_cast<int64_t>(offsets_.size()); }

  Status Insert(const std::vector<Value>& row);
  Status Append(const TableData& data);

  Status GetRow(int64_t i, std::vector<Value>* row) const;

  // Bytes of serialized row payloads — the "uncompressed" size used as the
  // numerator of compression ratios (DESIGN.md E1).
  int64_t UncompressedBytes() const { return static_cast<int64_t>(log_.size()); }

  // Size of this table under a PAGE-compression-style scheme: per page of
  // rows, per-column dictionaries of the page's distinct values plus
  // minimal-width codes. Models SQL Server's PAGE compression baseline;
  // computed analytically without rewriting storage.
  int64_t PageCompressedBytes(int rows_per_page = 128) const;

 private:
  std::string name_;
  Schema schema_;
  std::string log_;                // serialized rows, concatenated
  std::vector<uint64_t> offsets_;  // start of each row; end = next offset
};

}  // namespace vstore

#endif  // VSTORE_STORAGE_ROW_STORE_H_
