#include "storage/bit_pack.h"

#include <cstring>

#include "common/bit_util.h"
#include "common/macros.h"
#include "common/metrics.h"
#include "common/simd.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define VSTORE_BITPACK_X86 1
#endif

namespace vstore {

namespace {

// Records the SIMD-vs-scalar dispatch decision (shared metric with the
// expression kernels) and returns the active level.
simd::Level UnpackDispatchLevel() {
  static Counter* scalar = MetricsRegistry::Global().GetCounter(
      "vstore_simd_dispatch_total", "level", "scalar");
  static Counter* avx2 = MetricsRegistry::Global().GetCounter(
      "vstore_simd_dispatch_total", "level", "avx2");
  simd::Level level = simd::Active();
  (level == simd::Level::kAVX2 ? avx2 : scalar)->Increment();
  return level;
}

#ifdef VSTORE_BITPACK_X86

// Four values per iteration: gather the 64-bit word containing each value's
// first bit, then shift/mask per lane. Requires shift(<=7) + bit_width <= 64
// so one word covers the whole value (bit_width <= 57); the buffer's +7
// byte slack (PackedBytes) makes the 8-byte gather at the last value safe.
__attribute__((target("avx2"))) void UnpackAvx2(const uint8_t* data,
                                                int bit_width, int64_t start,
                                                int64_t n, uint64_t* out) {
  const uint64_t mask = (uint64_t{1} << bit_width) - 1;
  const __m256i vmask = _mm256_set1_epi64x(static_cast<long long>(mask));
  const __m256i vseven = _mm256_set1_epi64x(7);
  const int64_t bw = bit_width;
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const int64_t b0 = (start + i) * bw;
    const __m256i bits =
        _mm256_set_epi64x(b0 + 3 * bw, b0 + 2 * bw, b0 + bw, b0);
    const __m256i bytes = _mm256_srli_epi64(bits, 3);
    const __m256i shift = _mm256_and_si256(bits, vseven);
    const __m256i words = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(data), bytes, 1);
    const __m256i vals =
        _mm256_and_si256(_mm256_srlv_epi64(words, shift), vmask);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), vals);
  }
  for (; i < n; ++i) {
    const int64_t bit_pos = (start + i) * bw;
    uint64_t word;
    std::memcpy(&word, data + (bit_pos >> 3), sizeof(word));
    out[i] = (word >> (bit_pos & 7)) & mask;
  }
}

#endif  // VSTORE_BITPACK_X86

}  // namespace

int64_t BitPacker::PackedBytes(int64_t n, int bit_width) {
  // +7 bytes of slack lets the unpacker read whole 64-bit words safely.
  if (bit_width == 0) return 0;
  return bit_util::CeilDiv(n * bit_width, 8) + 7;
}

std::vector<uint8_t> BitPacker::Pack(const uint64_t* values, int64_t n,
                                     int bit_width) {
  VSTORE_DCHECK(bit_width >= 0 && bit_width <= 64);
  std::vector<uint8_t> out(static_cast<size_t>(PackedBytes(n, bit_width)), 0);
  if (bit_width == 0) return out;
  uint8_t* data = out.data();
  for (int64_t i = 0; i < n; ++i) {
    uint64_t v = values[i];
    VSTORE_DCHECK(bit_width == 64 || (v >> bit_width) == 0);
    int64_t bit_pos = i * bit_width;
    int64_t byte_pos = bit_pos >> 3;
    int shift = static_cast<int>(bit_pos & 7);
    // Write up to 64+7 bits via two word stores.
    uint64_t word;
    std::memcpy(&word, data + byte_pos, sizeof(word));
    word |= v << shift;
    std::memcpy(data + byte_pos, &word, sizeof(word));
    if (shift + bit_width > 64) {
      uint64_t hi = v >> (64 - shift);
      std::memcpy(&word, data + byte_pos + 8, sizeof(word));
      word |= hi;
      std::memcpy(data + byte_pos + 8, &word, sizeof(word));
    }
  }
  return out;
}

uint64_t BitPacker::Get(const uint8_t* data, int bit_width, int64_t index) {
  if (bit_width == 0) return 0;
  int64_t bit_pos = index * bit_width;
  int64_t byte_pos = bit_pos >> 3;
  int shift = static_cast<int>(bit_pos & 7);
  uint64_t word;
  std::memcpy(&word, data + byte_pos, sizeof(word));
  uint64_t v = word >> shift;
  if (shift + bit_width > 64) {
    uint64_t hi;
    std::memcpy(&hi, data + byte_pos + 8, sizeof(hi));
    v |= hi << (64 - shift);
  }
  if (bit_width < 64) v &= (uint64_t{1} << bit_width) - 1;
  return v;
}

void BitPacker::Unpack(const uint8_t* data, int bit_width, int64_t start,
                       int64_t n, uint64_t* out) {
  if (bit_width == 0) {
    std::memset(out, 0, static_cast<size_t>(n) * sizeof(uint64_t));
    return;
  }
#ifdef VSTORE_BITPACK_X86
  // Widths up to 57 fit entirely in one gathered word per value (see
  // UnpackAvx2); wider values need the two-word scalar path below.
  if (bit_width <= 57 && n >= 8 &&
      UnpackDispatchLevel() == simd::Level::kAVX2) {
    UnpackAvx2(data, bit_width, start, n, out);
    return;
  }
#endif
  // Streaming decode: advance a byte pointer + bit offset instead of
  // recomputing positions; each value is one or two unaligned word loads.
  const uint64_t mask =
      bit_width == 64 ? ~uint64_t{0} : (uint64_t{1} << bit_width) - 1;
  int64_t bit_pos = start * bit_width;
  const uint8_t* p = data + (bit_pos >> 3);
  int shift = static_cast<int>(bit_pos & 7);
  for (int64_t i = 0; i < n; ++i) {
    uint64_t word;
    std::memcpy(&word, p, sizeof(word));
    uint64_t v = word >> shift;
    if (shift + bit_width > 64) {
      uint64_t hi;
      std::memcpy(&hi, p + 8, sizeof(hi));
      v |= hi << (64 - shift);
    }
    out[i] = v & mask;
    shift += bit_width;
    p += shift >> 3;
    shift &= 7;
  }
}

}  // namespace vstore
