#include "storage/bit_pack.h"

#include <cstring>

#include "common/bit_util.h"
#include "common/macros.h"

namespace vstore {

int64_t BitPacker::PackedBytes(int64_t n, int bit_width) {
  // +7 bytes of slack lets the unpacker read whole 64-bit words safely.
  if (bit_width == 0) return 0;
  return bit_util::CeilDiv(n * bit_width, 8) + 7;
}

std::vector<uint8_t> BitPacker::Pack(const uint64_t* values, int64_t n,
                                     int bit_width) {
  VSTORE_DCHECK(bit_width >= 0 && bit_width <= 64);
  std::vector<uint8_t> out(static_cast<size_t>(PackedBytes(n, bit_width)), 0);
  if (bit_width == 0) return out;
  uint8_t* data = out.data();
  for (int64_t i = 0; i < n; ++i) {
    uint64_t v = values[i];
    VSTORE_DCHECK(bit_width == 64 || (v >> bit_width) == 0);
    int64_t bit_pos = i * bit_width;
    int64_t byte_pos = bit_pos >> 3;
    int shift = static_cast<int>(bit_pos & 7);
    // Write up to 64+7 bits via two word stores.
    uint64_t word;
    std::memcpy(&word, data + byte_pos, sizeof(word));
    word |= v << shift;
    std::memcpy(data + byte_pos, &word, sizeof(word));
    if (shift + bit_width > 64) {
      uint64_t hi = v >> (64 - shift);
      std::memcpy(&word, data + byte_pos + 8, sizeof(word));
      word |= hi;
      std::memcpy(data + byte_pos + 8, &word, sizeof(word));
    }
  }
  return out;
}

uint64_t BitPacker::Get(const uint8_t* data, int bit_width, int64_t index) {
  if (bit_width == 0) return 0;
  int64_t bit_pos = index * bit_width;
  int64_t byte_pos = bit_pos >> 3;
  int shift = static_cast<int>(bit_pos & 7);
  uint64_t word;
  std::memcpy(&word, data + byte_pos, sizeof(word));
  uint64_t v = word >> shift;
  if (shift + bit_width > 64) {
    uint64_t hi;
    std::memcpy(&hi, data + byte_pos + 8, sizeof(hi));
    v |= hi << (64 - shift);
  }
  if (bit_width < 64) v &= (uint64_t{1} << bit_width) - 1;
  return v;
}

void BitPacker::Unpack(const uint8_t* data, int bit_width, int64_t start,
                       int64_t n, uint64_t* out) {
  if (bit_width == 0) {
    std::memset(out, 0, static_cast<size_t>(n) * sizeof(uint64_t));
    return;
  }
  // Streaming decode: advance a byte pointer + bit offset instead of
  // recomputing positions; each value is one or two unaligned word loads.
  const uint64_t mask =
      bit_width == 64 ? ~uint64_t{0} : (uint64_t{1} << bit_width) - 1;
  int64_t bit_pos = start * bit_width;
  const uint8_t* p = data + (bit_pos >> 3);
  int shift = static_cast<int>(bit_pos & 7);
  for (int64_t i = 0; i < n; ++i) {
    uint64_t word;
    std::memcpy(&word, p, sizeof(word));
    uint64_t v = word >> shift;
    if (shift + bit_width > 64) {
      uint64_t hi;
      std::memcpy(&hi, p + 8, sizeof(hi));
      v |= hi << (64 - shift);
    }
    out[i] = v & mask;
    shift += bit_width;
    p += shift >> 3;
    shift &= 7;
  }
}

}  // namespace vstore
