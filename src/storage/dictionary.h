#ifndef VSTORE_STORAGE_DICTIONARY_H_
#define VSTORE_STORAGE_DICTIONARY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/macros.h"

namespace vstore {

// Dictionary of distinct string values with stable integer codes.
//
// Mirrors the paper's two-level scheme: each string column of a column
// store has one *primary* (global) dictionary shared by all row groups,
// holding values up to a size cap, plus per-row-group *local* dictionaries
// for values that arrive after the primary fills up. A segment's code c
// resolves to primary[c] when c < primary_size, else local[c - primary_size].
//
// Payload storage is chunked so string_views handed out by Get() remain
// valid across later inserts. Concurrent reads are safe only against a
// quiescent dictionary; the column store serializes DML against scans.
class StringDictionary {
 public:
  StringDictionary() = default;
  VSTORE_DISALLOW_COPY_AND_ASSIGN(StringDictionary);

  // Returns the code for `value`, inserting it if absent. Returns -1 if
  // inserting would exceed `capacity_limit` entries (caller falls back to a
  // local dictionary).
  int64_t GetOrInsert(std::string_view value, int64_t capacity_limit);

  // Returns the code for `value` or -1 if absent. Used to map equality
  // predicates onto encoded data without decoding.
  int64_t Find(std::string_view value) const;

  std::string_view Get(int64_t code) const {
    VSTORE_DCHECK(code >= 0 && code < size());
    return slots_[static_cast<size_t>(code)];
  }

  int64_t size() const { return static_cast<int64_t>(slots_.size()); }

  // Bytes used by payloads plus per-entry overhead — the dictionary's
  // contribution to a column's compressed size.
  int64_t MemoryBytes() const {
    return heap_bytes_ +
           static_cast<int64_t>(slots_.size() * sizeof(std::string_view));
  }

  // On-disk size under archival compression: the payload heap (with entry
  // lengths) run through the LZSS codec. Dictionaries stay resident in
  // plain form for reads — this models the stored representation the
  // paper's COLUMNSTORE_ARCHIVE compresses. Cached; recomputed after
  // inserts.
  int64_t ArchivedBytes() const;

 private:
  static constexpr size_t kChunkSize = 256 * 1024;

  // Copies `value` into chunked stable storage.
  std::string_view Intern(std::string_view value);

  std::vector<std::unique_ptr<char[]>> chunks_;
  size_t chunk_used_ = 0;   // bytes used in the last chunk
  size_t chunk_cap_ = 0;    // capacity of the last chunk
  int64_t heap_bytes_ = 0;  // total payload bytes

  std::vector<std::string_view> slots_;  // code -> stable payload view
  std::unordered_map<std::string_view, int64_t> index_;

  mutable int64_t archived_bytes_ = -1;   // cache; -1 = stale
  mutable int64_t archived_at_size_ = -1;  // dictionary size when cached
};

}  // namespace vstore

#endif  // VSTORE_STORAGE_DICTIONARY_H_
