#ifndef VSTORE_STORAGE_DICTIONARY_H_
#define VSTORE_STORAGE_DICTIONARY_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/macros.h"

namespace vstore {

// Dictionary of distinct string values with stable integer codes.
//
// Mirrors the paper's two-level scheme: each string column of a column
// store has one *primary* (global) dictionary shared by all row groups,
// holding values up to a size cap, plus per-row-group *local* dictionaries
// for values that arrive after the primary fills up. A segment's code c
// resolves to primary[c] when c < primary_size, else local[c - primary_size].
//
// Concurrency: the primary dictionary is shared by scans running lock-free
// against a table snapshot while the tuple mover appends new entries for a
// row group it is building off to the side. Get() is therefore wait-free:
// codes map into a ladder of fixed-size slot chunks whose addresses never
// move once allocated, and a reader only ever passes codes that were
// published (via the table's version install) before its snapshot was
// taken, so the slot contents are already visible to it. All mutation and
// hash lookups (GetOrInsert / Find) take an internal mutex; the column
// store additionally serializes all row-group-building operations, so at
// most one appender is active per dictionary at a time.
//
// Payload storage is chunked so string_views handed out by Get() remain
// valid across later inserts.
class StringDictionary {
 public:
  StringDictionary() = default;
  VSTORE_DISALLOW_COPY_AND_ASSIGN(StringDictionary);

  // Returns the code for `value`, inserting it if absent. Returns -1 if
  // inserting would exceed `capacity_limit` entries (caller falls back to a
  // local dictionary).
  int64_t GetOrInsert(std::string_view value, int64_t capacity_limit);

  // Returns the code for `value` or -1 if absent. Used to map equality
  // predicates onto encoded data without decoding.
  int64_t Find(std::string_view value) const;

  // Wait-free; safe against concurrent GetOrInsert as long as `code` was
  // assigned before the caller observed the segment referencing it.
  std::string_view Get(int64_t code) const {
    VSTORE_DCHECK(code >= 0 && code < size());
    int level;
    int64_t offset;
    SlotIndex(code, &level, &offset);
    return levels_[static_cast<size_t>(level)][static_cast<size_t>(offset)];
  }

  int64_t size() const { return size_.load(std::memory_order_acquire); }

  // Bytes used by payloads plus per-entry overhead — the dictionary's
  // contribution to a column's compressed size.
  int64_t MemoryBytes() const;

  // On-disk size under archival compression: the payload heap (with entry
  // lengths) run through the LZSS codec. Dictionaries stay resident in
  // plain form for reads — this models the stored representation the
  // paper's COLUMNSTORE_ARCHIVE compresses. Cached; recomputed after
  // inserts.
  int64_t ArchivedBytes() const;

 private:
  static constexpr size_t kChunkSize = 256 * 1024;
  // Slot level k holds (kBaseSlots << k) codes starting at
  // kBaseSlots * ((1 << k) - 1); chunk addresses are stable forever, which
  // is what makes Get() safe without a lock.
  static constexpr int64_t kBaseSlots = 1024;
  static constexpr int kMaxLevels = 44;

  static void SlotIndex(int64_t code, int* level, int64_t* offset) {
    uint64_t q = static_cast<uint64_t>(code) / kBaseSlots + 1;
    int lv = 63 - std::countl_zero(q);
    *level = lv;
    *offset = code - kBaseSlots * ((int64_t{1} << lv) - 1);
  }

  // Copies `value` into chunked stable storage. Requires mu_.
  std::string_view Intern(std::string_view value);

  mutable std::mutex mu_;

  std::vector<std::unique_ptr<char[]>> chunks_;
  size_t chunk_used_ = 0;   // bytes used in the last chunk
  size_t chunk_cap_ = 0;    // capacity of the last chunk
  int64_t heap_bytes_ = 0;  // total payload bytes

  // code -> stable payload view, in leveled chunks (see kBaseSlots).
  std::array<std::unique_ptr<std::string_view[]>, kMaxLevels> levels_;
  std::atomic<int64_t> size_{0};

  std::unordered_map<std::string_view, int64_t> index_;

  mutable int64_t archived_bytes_ = -1;    // cache; -1 = stale
  mutable int64_t archived_at_size_ = -1;  // dictionary size when cached
};

}  // namespace vstore

#endif  // VSTORE_STORAGE_DICTIONARY_H_
