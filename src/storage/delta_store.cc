#include "storage/delta_store.h"

#include <algorithm>
#include <cstring>

namespace vstore {

// --- Row serialization -----------------------------------------------

std::string EncodeRow(const Schema& schema, const std::vector<Value>& row) {
  VSTORE_DCHECK(static_cast<int>(row.size()) == schema.num_columns());
  std::string out;
  for (int c = 0; c < schema.num_columns(); ++c) {
    const Value& v = row[static_cast<size_t>(c)];
    if (v.is_null()) {
      out.push_back(0);
      continue;
    }
    out.push_back(1);
    switch (PhysicalTypeOf(schema.field(c).type)) {
      case PhysicalType::kInt64: {
        int64_t x = v.int64();
        out.append(reinterpret_cast<const char*>(&x), sizeof(x));
        break;
      }
      case PhysicalType::kDouble: {
        double x = v.dbl();
        out.append(reinterpret_cast<const char*>(&x), sizeof(x));
        break;
      }
      case PhysicalType::kString: {
        uint32_t len = static_cast<uint32_t>(v.str().size());
        out.append(reinterpret_cast<const char*>(&len), sizeof(len));
        out.append(v.str());
        break;
      }
    }
  }
  return out;
}

Status DecodeRow(const Schema& schema, std::string_view data,
                 std::vector<Value>* row) {
  row->clear();
  row->reserve(static_cast<size_t>(schema.num_columns()));
  size_t pos = 0;
  auto need = [&](size_t n) { return pos + n <= data.size(); };
  for (int c = 0; c < schema.num_columns(); ++c) {
    if (!need(1)) return Status::Internal("row decode: truncated null byte");
    bool present = data[pos++] != 0;
    DataType type = schema.field(c).type;
    if (!present) {
      row->push_back(Value::Null(type));
      continue;
    }
    switch (PhysicalTypeOf(type)) {
      case PhysicalType::kInt64: {
        if (!need(8)) return Status::Internal("row decode: truncated int64");
        int64_t x;
        std::memcpy(&x, data.data() + pos, sizeof(x));
        pos += sizeof(x);
        switch (type) {
          case DataType::kBool:
            row->push_back(Value::Bool(x != 0));
            break;
          case DataType::kInt32:
            row->push_back(Value::Int32(static_cast<int32_t>(x)));
            break;
          case DataType::kDate32:
            row->push_back(Value::Date32(static_cast<int32_t>(x)));
            break;
          default:
            row->push_back(Value::Int64(x));
        }
        break;
      }
      case PhysicalType::kDouble: {
        if (!need(8)) return Status::Internal("row decode: truncated double");
        double x;
        std::memcpy(&x, data.data() + pos, sizeof(x));
        pos += sizeof(x);
        row->push_back(Value::Double(x));
        break;
      }
      case PhysicalType::kString: {
        if (!need(4)) return Status::Internal("row decode: truncated length");
        uint32_t len;
        std::memcpy(&len, data.data() + pos, sizeof(len));
        pos += sizeof(len);
        if (!need(len)) return Status::Internal("row decode: truncated string");
        row->push_back(Value::String(std::string(data.substr(pos, len))));
        pos += len;
        break;
      }
    }
  }
  if (pos != data.size()) return Status::Internal("row decode: trailing bytes");
  return Status::OK();
}

// --- B+-tree ----------------------------------------------------------

namespace {
constexpr int kMaxKeys = 64;
}  // namespace

struct BPlusTree::Node {
  bool is_leaf;
  std::vector<uint64_t> keys;
  explicit Node(bool leaf) : is_leaf(leaf) {}
  virtual ~Node() = default;
};

struct BPlusTree::Leaf : BPlusTree::Node {
  std::vector<std::string> values;
  Leaf* next = nullptr;
  Leaf() : Node(true) {}
};

struct BPlusTree::Internal : BPlusTree::Node {
  // children.size() == keys.size() + 1; keys[i] is the smallest key
  // reachable under children[i+1].
  std::vector<Node*> children;
  Internal() : Node(false) {}
  ~Internal() override {
    for (Node* child : children) delete child;
  }
};

BPlusTree::BPlusTree() {
  root_ = new Leaf();
  memory_bytes_ = static_cast<int64_t>(sizeof(Leaf));
}

BPlusTree::~BPlusTree() { delete root_; }

namespace {

// Index of the child to descend into for `key`, given an internal node's
// separator keys (keys[i] is the smallest key under child i+1).
int ChildIndex(const std::vector<uint64_t>& keys, uint64_t key) {
  return static_cast<int>(
      std::upper_bound(keys.begin(), keys.end(), key) - keys.begin());
}

}  // namespace

bool BPlusTree::Insert(uint64_t key, std::string value) {
  // Descend, remembering the path for splits.
  std::vector<Internal*> path;
  Node* node = root_;
  while (!node->is_leaf) {
    Internal* internal = static_cast<Internal*>(node);
    path.push_back(internal);
    node = internal->children[static_cast<size_t>(ChildIndex(internal->keys, key))];
  }
  Leaf* leaf = static_cast<Leaf*>(node);

  auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  size_t pos = static_cast<size_t>(it - leaf->keys.begin());
  if (it != leaf->keys.end() && *it == key) return false;

  memory_bytes_ += static_cast<int64_t>(value.size() + sizeof(uint64_t) +
                                        sizeof(std::string));
  leaf->keys.insert(it, key);
  leaf->values.insert(leaf->values.begin() + static_cast<long>(pos),
                      std::move(value));
  ++size_;

  if (static_cast<int>(leaf->keys.size()) <= kMaxKeys) return true;

  // Split the leaf.
  Leaf* right = new Leaf();
  memory_bytes_ += static_cast<int64_t>(sizeof(Leaf));
  size_t mid = leaf->keys.size() / 2;
  right->keys.assign(leaf->keys.begin() + static_cast<long>(mid),
                     leaf->keys.end());
  right->values.assign(std::make_move_iterator(leaf->values.begin() +
                                               static_cast<long>(mid)),
                       std::make_move_iterator(leaf->values.end()));
  leaf->keys.resize(mid);
  leaf->values.resize(mid);
  right->next = leaf->next;
  leaf->next = right;

  uint64_t separator = right->keys.front();
  Node* new_child = right;

  // Propagate splits up the path.
  for (auto rit = path.rbegin(); rit != path.rend(); ++rit) {
    Internal* parent = *rit;
    int idx = ChildIndex(parent->keys, separator);
    parent->keys.insert(parent->keys.begin() + idx, separator);
    parent->children.insert(parent->children.begin() + idx + 1, new_child);
    if (static_cast<int>(parent->keys.size()) <= kMaxKeys) return true;

    Internal* right_internal = new Internal();
    memory_bytes_ += static_cast<int64_t>(sizeof(Internal));
    size_t m = parent->keys.size() / 2;
    uint64_t up_key = parent->keys[m];
    right_internal->keys.assign(parent->keys.begin() + static_cast<long>(m) + 1,
                                parent->keys.end());
    right_internal->children.assign(
        parent->children.begin() + static_cast<long>(m) + 1,
        parent->children.end());
    parent->keys.resize(m);
    parent->children.resize(m + 1);
    separator = up_key;
    new_child = right_internal;
  }

  // Root split.
  Internal* new_root = new Internal();
  memory_bytes_ += static_cast<int64_t>(sizeof(Internal));
  new_root->keys.push_back(separator);
  new_root->children.push_back(root_);
  new_root->children.push_back(new_child);
  root_ = new_root;
  return true;
}

const std::string* BPlusTree::Find(uint64_t key) const {
  const Node* node = root_;
  while (!node->is_leaf) {
    const Internal* internal = static_cast<const Internal*>(node);
    node = internal->children[static_cast<size_t>(ChildIndex(internal->keys, key))];
  }
  const Leaf* leaf = static_cast<const Leaf*>(node);
  auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  if (it == leaf->keys.end() || *it != key) return nullptr;
  return &leaf->values[static_cast<size_t>(it - leaf->keys.begin())];
}

bool BPlusTree::Erase(uint64_t key) {
  // Descend, remembering the path so an emptied leaf can be detached.
  std::vector<Internal*> path;
  std::vector<int> path_idx;
  Node* node = root_;
  while (!node->is_leaf) {
    Internal* internal = static_cast<Internal*>(node);
    int idx = ChildIndex(internal->keys, key);
    path.push_back(internal);
    path_idx.push_back(idx);
    node = internal->children[static_cast<size_t>(idx)];
  }
  Leaf* leaf = static_cast<Leaf*>(node);
  auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  if (it == leaf->keys.end() || *it != key) return false;
  size_t pos = static_cast<size_t>(it - leaf->keys.begin());
  memory_bytes_ -= static_cast<int64_t>(leaf->values[pos].size() +
                                        sizeof(uint64_t) + sizeof(std::string));
  leaf->keys.erase(it);
  leaf->values.erase(leaf->values.begin() + static_cast<long>(pos));
  --size_;
  if (!leaf->keys.empty() || path.empty()) return true;

  // The leaf is empty and is not the root: unlink it from the leaf chain,
  // then detach it (and any internal node this empties) from its parent.
  Leaf* pred = nullptr;
  for (int level = static_cast<int>(path.size()) - 1; level >= 0; --level) {
    if (path_idx[static_cast<size_t>(level)] > 0) {
      Node* n = path[static_cast<size_t>(level)]
                    ->children[static_cast<size_t>(
                        path_idx[static_cast<size_t>(level)] - 1)];
      while (!n->is_leaf) n = static_cast<Internal*>(n)->children.back();
      pred = static_cast<Leaf*>(n);
      break;
    }
  }
  if (pred != nullptr) pred->next = leaf->next;

  Node* dead = leaf;
  int level = static_cast<int>(path.size()) - 1;
  while (level >= 0) {
    Internal* parent = path[static_cast<size_t>(level)];
    int idx = path_idx[static_cast<size_t>(level)];
    parent->children.erase(parent->children.begin() + idx);
    if (!parent->keys.empty()) {
      // Removing children[idx] drops separator keys[idx-1] (or keys[0] when
      // the leftmost child goes: the old keys[0] becomes the new subtree's
      // lower bound and must no longer be a separator).
      parent->keys.erase(parent->keys.begin() + std::max(0, idx - 1));
    }
    memory_bytes_ -= static_cast<int64_t>(
        dead->is_leaf ? sizeof(Leaf) : sizeof(Internal));
    delete dead;  // dead internals are childless by construction
    if (!parent->children.empty()) break;
    dead = parent;
    --level;
  }
  if (level < 0) {
    // Every node on the path emptied out, root included: start over with a
    // fresh empty leaf (the tree now holds zero entries).
    root_ = new Leaf();
    memory_bytes_ += static_cast<int64_t>(sizeof(Leaf));
  } else {
    // Collapse a root left with a single child so height shrinks with size.
    while (!root_->is_leaf) {
      Internal* r = static_cast<Internal*>(root_);
      if (r->children.size() != 1) break;
      root_ = r->children[0];
      r->children.clear();
      delete r;
      memory_bytes_ -= static_cast<int64_t>(sizeof(Internal));
    }
  }
  return true;
}

bool BPlusTree::FirstKey(uint64_t* out) const {
  const Node* node = root_;
  while (!node->is_leaf) {
    node = static_cast<const Internal*>(node)->children.front();
  }
  const Leaf* leaf = static_cast<const Leaf*>(node);
  // Erase frees emptied non-root leaves, so an empty leftmost leaf means an
  // empty tree.
  if (leaf->keys.empty()) return false;
  *out = leaf->keys.front();
  return true;
}

bool BPlusTree::LastKey(uint64_t* out) const {
  const Node* node = root_;
  while (!node->is_leaf) {
    node = static_cast<const Internal*>(node)->children.back();
  }
  const Leaf* leaf = static_cast<const Leaf*>(node);
  if (leaf->keys.empty()) return false;
  *out = leaf->keys.back();
  return true;
}

// --- Iterator -----------------------------------------------------------

uint64_t BPlusTree::Iterator::key() const {
  return static_cast<const Leaf*>(leaf_)->keys[static_cast<size_t>(index_)];
}

const std::string& BPlusTree::Iterator::value() const {
  return static_cast<const Leaf*>(leaf_)->values[static_cast<size_t>(index_)];
}

void BPlusTree::Iterator::SkipEmpty() {
  const Leaf* leaf = static_cast<const Leaf*>(leaf_);
  while (leaf != nullptr && index_ >= static_cast<int>(leaf->keys.size())) {
    leaf = leaf->next;
    index_ = 0;
  }
  leaf_ = leaf;
}

void BPlusTree::Iterator::Next() {
  ++index_;
  SkipEmpty();
}

BPlusTree::Iterator BPlusTree::Begin() const {
  const Node* node = root_;
  while (!node->is_leaf) {
    node = static_cast<const Internal*>(node)->children.front();
  }
  Iterator it;
  it.leaf_ = static_cast<const Leaf*>(node);
  it.index_ = 0;
  it.SkipEmpty();
  return it;
}

// --- DeltaStore ---------------------------------------------------------

Status DeltaStore::Insert(uint64_t rowid, const std::vector<Value>& row) {
  if (closed_) return Status::Aborted("delta store is closed");
  if (static_cast<int>(row.size()) != schema_->num_columns()) {
    return Status::InvalidArgument("row arity does not match schema");
  }
  if (!tree_.Insert(rowid, EncodeRow(*schema_, row))) {
    return Status::AlreadyExists("duplicate rowid in delta store");
  }
  min_rowid_ = std::min(min_rowid_, rowid);
  max_rowid_ = std::max(max_rowid_, rowid);
  return Status::OK();
}

bool DeltaStore::Delete(uint64_t rowid) {
  if (!tree_.Erase(rowid)) return false;
  if (tree_.size() == 0) {
    min_rowid_ = std::numeric_limits<uint64_t>::max();
    max_rowid_ = 0;
  } else {
    if (rowid == min_rowid_) tree_.FirstKey(&min_rowid_);
    if (rowid == max_rowid_) tree_.LastKey(&max_rowid_);
  }
  return true;
}

std::unique_ptr<DeltaStore> DeltaStore::Clone() const {
  auto copy = std::make_unique<DeltaStore>(schema_, id_);
  for (BPlusTree::Iterator it = tree_.Begin(); it.Valid(); it.Next()) {
    copy->tree_.Insert(it.key(), it.value());
  }
  copy->closed_ = closed_;
  copy->min_rowid_ = min_rowid_;
  copy->max_rowid_ = max_rowid_;
  return copy;
}

Status DeltaStore::Get(uint64_t rowid, std::vector<Value>* row) const {
  const std::string* data = tree_.Find(rowid);
  if (data == nullptr) return Status::NotFound("rowid not in delta store");
  return DecodeRow(*schema_, *data, row);
}

}  // namespace vstore
