#include "storage/reorder.h"

#include <algorithm>
#include <string_view>
#include <unordered_set>

#include "common/hash.h"

namespace vstore {

namespace {

// Approximate distinct count from a sample of the slice.
int64_t SampleDistinct(const ColumnData& col, int64_t begin, int64_t end) {
  const int64_t n = end - begin;
  const int64_t sample = std::min<int64_t>(n, 16384);
  const int64_t stride = std::max<int64_t>(1, n / sample);
  std::unordered_set<uint64_t> seen;
  seen.reserve(static_cast<size_t>(sample));
  for (int64_t i = begin; i < end; i += stride) {
    uint64_t h;
    if (col.IsNull(i)) {
      h = 0;
    } else {
      switch (PhysicalTypeOf(col.type())) {
        case PhysicalType::kInt64:
          h = HashInt64(static_cast<uint64_t>(col.GetInt64(i))) | 1;
          break;
        case PhysicalType::kDouble:
          h = HashInt64(static_cast<uint64_t>(col.GetDouble(i) * 1e6)) | 1;
          break;
        case PhysicalType::kString:
          h = Hash64(col.GetString(i)) | 1;
          break;
        default:
          h = 1;
      }
    }
    seen.insert(h);
  }
  // Scale the sampled distinct count back up, capped at n.
  int64_t scaled = static_cast<int64_t>(seen.size()) * stride;
  return std::min(scaled, n);
}

// Three-way comparison of two rows on one column; nulls sort first.
int CompareRows(const ColumnData& col, int64_t a, int64_t b) {
  bool na = col.IsNull(a), nb = col.IsNull(b);
  if (na || nb) return static_cast<int>(nb) - static_cast<int>(na);
  switch (PhysicalTypeOf(col.type())) {
    case PhysicalType::kInt64: {
      int64_t va = col.GetInt64(a), vb = col.GetInt64(b);
      return va < vb ? -1 : (va > vb ? 1 : 0);
    }
    case PhysicalType::kDouble: {
      double va = col.GetDouble(a), vb = col.GetDouble(b);
      return va < vb ? -1 : (va > vb ? 1 : 0);
    }
    case PhysicalType::kString: {
      return col.GetString(a).compare(col.GetString(b)) < 0
                 ? -1
                 : (col.GetString(a) == col.GetString(b) ? 0 : 1);
    }
  }
  return 0;
}

}  // namespace

std::vector<int64_t> ChooseRowOrder(const TableData& data, int64_t begin,
                                    int64_t end, int max_sort_columns) {
  const int64_t n = end - begin;
  if (n <= 1) return {};

  // Rank columns by estimated cardinality; ignore near-unique columns —
  // sorting on them shuffles without creating runs elsewhere.
  struct Candidate {
    int column;
    int64_t distinct;
  };
  std::vector<Candidate> candidates;
  for (int c = 0; c < data.num_columns(); ++c) {
    int64_t d = SampleDistinct(data.column(c), begin, end);
    if (d <= n / 4) candidates.push_back({c, d});
  }
  if (candidates.empty()) return {};
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.distinct < b.distinct;
            });
  if (static_cast<int>(candidates.size()) > max_sort_columns) {
    candidates.resize(static_cast<size_t>(max_sort_columns));
  }

  std::vector<int64_t> order(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) order[static_cast<size_t>(i)] = begin + i;

  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    for (const Candidate& cand : candidates) {
      int cmp = CompareRows(data.column(cand.column), a, b);
      if (cmp != 0) return cmp < 0;
    }
    return a < b;  // stable tiebreak keeps the sort deterministic
  });
  return order;
}

}  // namespace vstore
