#ifndef VSTORE_STORAGE_TUPLE_MOVER_H_
#define VSTORE_STORAGE_TUPLE_MOVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/macros.h"
#include "common/status.h"
#include "storage/column_store.h"

namespace vstore {

// Background reorganizer (paper §3.2): converts closed delta stores into
// compressed row groups and rebuilds row groups with many deleted rows.
// Can run on demand (RunOnce) or on a timer thread (Start/Stop).
class TupleMover {
 public:
  struct Options {
    // Also compress a non-empty open delta store (REORGANIZE ... FORCE).
    bool include_open_stores = false;
    // Rebuild row groups whose deleted fraction exceeds this; <= 0 disables.
    double rebuild_deleted_fraction = 0.2;
  };

  explicit TupleMover(ColumnStoreTable* table)
      : TupleMover(table, Options()) {}
  TupleMover(ColumnStoreTable* table, Options options)
      : table_(table), options_(options) {}
  ~TupleMover() { Stop(); }
  VSTORE_DISALLOW_COPY_AND_ASSIGN(TupleMover);

  // One reorganization pass. Returns the number of delta stores compressed.
  Result<int64_t> RunOnce();

  // Starts a background thread running RunOnce every `period`.
  void Start(std::chrono::milliseconds period);
  void Stop();
  bool running() const { return running_.load(); }

  int64_t total_stores_moved() const { return total_moved_.load(); }

 private:
  void Loop(std::chrono::milliseconds period);

  ColumnStoreTable* table_;
  Options options_;
  std::thread worker_;
  std::mutex mu_;
  std::condition_variable wake_;
  std::atomic<bool> running_{false};
  bool stop_requested_ = false;
  std::atomic<int64_t> total_moved_{0};
};

}  // namespace vstore

#endif  // VSTORE_STORAGE_TUPLE_MOVER_H_
