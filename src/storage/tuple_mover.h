#ifndef VSTORE_STORAGE_TUPLE_MOVER_H_
#define VSTORE_STORAGE_TUPLE_MOVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>

#include "common/macros.h"
#include "common/status.h"
#include "storage/column_store.h"

namespace vstore {

// Background reorganizer (paper §3.2): converts closed delta stores into
// compressed row groups and rebuilds row groups with many deleted rows.
// Can run on demand (RunOnce) or on a timer thread (Start/Stop).
//
// A failed background pass does not kill the process: the error is
// recorded (last_error()), the loop skips the rest of the pass and retries
// next period, and Stop() surfaces the most recent error to the caller.
class TupleMover {
 public:
  struct Options {
    // Also compress a non-empty open delta store (REORGANIZE ... FORCE).
    bool include_open_stores = false;
    // Rebuild row groups whose deleted fraction exceeds this; <= 0 disables.
    double rebuild_deleted_fraction = 0.2;
    // Testing seam: invoked at the start of every background pass; a
    // non-OK status is treated as a pass failure (natural compaction
    // errors are nearly impossible to provoke in-process).
    std::function<Status()> fault_injector_for_testing;
  };

  explicit TupleMover(ColumnStoreTable* table)
      : TupleMover(table, Options()) {}
  TupleMover(ColumnStoreTable* table, Options options)
      : table_(table), options_(std::move(options)) {}
  ~TupleMover() { (void)Stop(); }
  VSTORE_DISALLOW_COPY_AND_ASSIGN(TupleMover);

  // One reorganization pass. Returns the number of delta stores compressed.
  Result<int64_t> RunOnce();

  // Starts a background thread running RunOnce every `period`. It is an
  // error to call Start while the mover is running (Stop() must have
  // returned); alternating Start/Stop is safe from any one thread.
  void Start(std::chrono::milliseconds period);
  // Idempotent. Joins the background thread (if any) and returns the most
  // recent error a background pass recorded, clearing it; OK if every pass
  // succeeded.
  Status Stop();
  bool running() const;

  // Most recent background-pass error (OK if none since the last Stop).
  Status last_error() const;

  int64_t total_stores_moved() const { return total_moved_.load(); }

 private:
  void Loop(std::chrono::milliseconds period);

  ColumnStoreTable* table_;
  Options options_;

  mutable std::mutex mu_;
  std::condition_variable wake_;
  std::thread worker_;             // guarded by mu_ (joined outside it)
  bool running_ = false;           // guarded by mu_
  bool stop_requested_ = false;    // guarded by mu_
  Status last_error_;              // guarded by mu_
  std::atomic<int64_t> total_moved_{0};
};

}  // namespace vstore

#endif  // VSTORE_STORAGE_TUPLE_MOVER_H_
