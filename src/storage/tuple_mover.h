#ifndef VSTORE_STORAGE_TUPLE_MOVER_H_
#define VSTORE_STORAGE_TUPLE_MOVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>

#include "common/macros.h"
#include "common/metrics.h"
#include "common/status.h"
#include "storage/column_store.h"

namespace vstore {

// Background reorganizer (paper §3.2): converts closed delta stores into
// compressed row groups and rebuilds row groups with many deleted rows.
// Can run on demand (RunOnce) or on a timer thread (Start/Stop).
//
// A failed background pass does not kill the process: the error is
// recorded (last_error()), the loop skips the rest of the pass and retries
// next period, and Stop() surfaces the most recent error to the caller.
//
// Observability: every pass records its duration into a per-table
// histogram (vstore_mover_pass_duration_ns), bumps pass/rows-moved/
// compression/rebuild counters, and counts installs skipped because a
// concurrent write copy-on-write-replaced the source (reorg conflicts —
// the contention signal cost-based compaction policies read). Each pass
// also emits a "mover_pass" span into the global TraceRing, nested around
// the per-operation "reorg" spans the table records. last_error is
// mirrored as a 0/1 gauge so a wedged mover is visible from the metrics
// endpoint alone.
class TupleMover {
 public:
  struct Options {
    // Also compress a non-empty open delta store (REORGANIZE ... FORCE).
    bool include_open_stores = false;
    // Rebuild row groups whose deleted fraction exceeds this; <= 0 disables.
    double rebuild_deleted_fraction = 0.2;
    // Testing seam: invoked at the start of every background pass; a
    // non-OK status is treated as a pass failure (natural compaction
    // errors are nearly impossible to provoke in-process).
    std::function<Status()> fault_injector_for_testing;
    // Invoked after any pass that installed a reorganization (durable
    // tables plug DurableTable::Checkpoint here so compacted state reaches
    // disk and the WAL is truncated). A non-OK status fails the pass.
    std::function<Status()> checkpoint_hook;
  };

  // What one pass did. Conflicts are per pass: stores/groups whose install
  // was skipped because the source changed under the rebuild (silently
  // retried next pass before this was counted).
  struct PassStats {
    int64_t stores_compressed = 0;
    int64_t groups_rebuilt = 0;
    int64_t rows_moved = 0;
    int64_t conflicts = 0;
    int64_t duration_ns = 0;
  };

  explicit TupleMover(ColumnStoreTable* table)
      : TupleMover(table, Options()) {}
  TupleMover(ColumnStoreTable* table, Options options);
  ~TupleMover() { (void)Stop(); }
  VSTORE_DISALLOW_COPY_AND_ASSIGN(TupleMover);

  // One reorganization pass. Returns the number of delta stores compressed.
  Result<int64_t> RunOnce();

  // Starts a background thread running RunOnce every `period`. It is an
  // error to call Start while the mover is running (Stop() must have
  // returned); alternating Start/Stop is safe from any one thread.
  void Start(std::chrono::milliseconds period);
  // Idempotent. Joins the background thread (if any) and returns the most
  // recent error a background pass recorded, clearing it; OK if every pass
  // succeeded.
  Status Stop();
  bool running() const;

  // Most recent background-pass error (OK if none since the last Stop).
  Status last_error() const;

  int64_t total_stores_moved() const { return total_moved_.load(); }
  // Cumulative reorg-conflict count across all passes (also exported as
  // vstore_mover_conflicts_total).
  int64_t total_conflicts() const { return total_conflicts_.load(); }
  // Stats of the most recently completed pass.
  PassStats last_pass() const;

 private:
  void Loop(std::chrono::milliseconds period);

  ColumnStoreTable* table_;
  Options options_;

  // Registry handles, labeled {table="<name>"}; resolved at construction.
  Counter* passes_total_;
  Counter* failed_passes_total_;
  Counter* rows_moved_total_;
  Counter* stores_compressed_total_;
  Counter* groups_rebuilt_total_;
  Counter* conflicts_total_;
  Gauge* running_gauge_;
  Gauge* last_error_gauge_;  // 1 while last_error() is non-OK
  Histogram* pass_duration_ns_;

  mutable std::mutex mu_;
  std::condition_variable wake_;
  std::thread worker_;             // guarded by mu_ (joined outside it)
  bool running_ = false;           // guarded by mu_
  bool stop_requested_ = false;    // guarded by mu_
  Status last_error_;              // guarded by mu_
  PassStats last_pass_;            // guarded by mu_
  std::atomic<int64_t> total_moved_{0};
  std::atomic<int64_t> total_conflicts_{0};
};

}  // namespace vstore

#endif  // VSTORE_STORAGE_TUPLE_MOVER_H_
