#ifndef VSTORE_STORAGE_REORDER_H_
#define VSTORE_STORAGE_REORDER_H_

#include <cstdint>
#include <vector>

#include "types/table_data.h"

namespace vstore {

// Row-reordering optimization (paper §4.2, the VertiPaq-style step): within
// a row group, rows may be stored in any order, so we pick one that
// maximizes run lengths for RLE. Greedy heuristic: sort rows
// lexicographically by columns in ascending distinct-count order, so the
// lowest-cardinality columns form the longest runs.
//
// Returns a permutation of absolute row indices [begin, end) giving the
// storage order, or an empty vector when no reordering is beneficial
// (e.g. all columns near-unique).
std::vector<int64_t> ChooseRowOrder(const TableData& data, int64_t begin,
                                    int64_t end, int max_sort_columns = 4);

}  // namespace vstore

#endif  // VSTORE_STORAGE_REORDER_H_
