#ifndef VSTORE_STORAGE_DURABLE_TABLE_H_
#define VSTORE_STORAGE_DURABLE_TABLE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/metrics.h"
#include "common/status.h"
#include "storage/column_store.h"
#include "storage/sharded_table.h"
#include "storage/wal.h"

namespace vstore {

// --- Durable table --------------------------------------------------------
// Attaches durability to a ColumnStoreTable: delta-store DML is written
// ahead to a per-table WAL (group-committed fsync), and checkpoints persist
// the whole published table state — encoded segments, dictionaries, delete
// bitmaps, delta stores — into a segment file that reopen memory-maps so
// scans decode directly from the mapping.
//
// File layout under the table's directory (epoch N starts at 1):
//   <name>.ckpt.<N>   checkpoint of everything up to the WAL rotation N
//   <name>.wal.<N>    records committed after checkpoint N-1
// Checkpoint N captures the table snapshot and rotates wal.N -> wal.N+1
// inside one exclusive critical section, then writes ckpt.N off-lock
// (tmp + rename + directory fsync) and finally retires wal.<=N and
// ckpt.<N. Recovery loads the newest checkpoint that validates (falling
// back to older ones if a newer is corrupt), replays every later WAL epoch
// in order — tolerating a torn record only at the tail of the newest — and
// opens a fresh WAL epoch. Replay is idempotent: the DML metric counters
// are settled to the loaded checkpoint state before replay, so replaying
// the same tail twice in one process bumps them to the same values.
class DurableTable : public TableDurabilityHook {
 public:
  struct Options {
    // Fsync the WAL on every DML commit. Disabling trades durability of
    // the last few records for throughput (still crash-consistent: the
    // replayed prefix is always a committed prefix).
    bool sync_commits = true;
  };

  struct RecoveryStats {
    uint64_t checkpoint_epoch = 0;  // 0 = started from an empty table
    uint64_t checkpoint_lsn = 0;
    uint64_t wal_epochs_replayed = 0;
    uint64_t wal_records_replayed = 0;
    uint64_t checkpoint_fallbacks = 0;  // corrupt checkpoints skipped
    bool torn_tail = false;             // newest WAL ended mid-record
  };

  // Recovers the durable state rooted at `dir` into `table` — which must be
  // freshly constructed and empty — and attaches the WAL hook to it. On
  // return the table serves reads/writes as usual, with every committed
  // mutation logged. `table` must outlive the returned DurableTable; the
  // hook is detached in the destructor.
  static Result<std::unique_ptr<DurableTable>> Open(const std::string& dir,
                                                    ColumnStoreTable* table,
                                                    Options options);
  static Result<std::unique_ptr<DurableTable>> Open(const std::string& dir,
                                                    ColumnStoreTable* table) {
    return Open(dir, table, Options());
  }

  ~DurableTable() override;
  VSTORE_DISALLOW_COPY_AND_ASSIGN(DurableTable);

  ColumnStoreTable* table() { return table_; }
  const RecoveryStats& recovery_stats() const { return recovery_; }
  const std::string& dir() const { return dir_; }

  // Writes a checkpoint of the current published state and retires older
  // epochs. Serialized internally; safe to call concurrently with DML.
  Status Checkpoint();

  // Current on-disk files (sys.storage_files).
  struct FileInfo {
    std::string path;
    std::string kind;  // "wal" | "checkpoint"
    uint64_t epoch = 0;
    int64_t bytes = 0;
  };
  std::vector<FileInfo> Files() const;

  // --- TableDurabilityHook -----------------------------------------------
  Status LogInsert(RowId id, const std::vector<Value>& row) override;
  Status LogDelete(RowId id) override;
  Status LogCompressInstall(const std::vector<int64_t>& store_ids) override;
  Status LogRebuildInstall(const std::vector<int64_t>& groups) override;
  Status Commit() override;
  Status OnBulkLoad() override;

 private:
  DurableTable(std::string dir, ColumnStoreTable* table, Options options);

  std::string WalPath(uint64_t epoch) const;
  std::string CkptPath(uint64_t epoch) const;
  Status AppendRecord(WalRecordType type, std::string payload);
  Status Recover();
  Status RetireBefore(uint64_t checkpoint_epoch);
  void RefreshFileGauges() const;

  std::string dir_;
  ColumnStoreTable* table_;
  Options options_;
  RecoveryStats recovery_;

  // Guards wal_ replacement; Append runs under the table's exclusive lock
  // (which also serializes rotation), Commit only copies the pointer.
  mutable std::mutex wal_mu_;
  std::shared_ptr<WalWriter> wal_;
  uint64_t wal_epoch_ = 0;       // epoch of wal_
  uint64_t next_lsn_ = 1;        // next record lsn (monotonic across epochs)
  uint64_t ckpt_epoch_ = 0;      // newest durable checkpoint (0 = none)
  int64_t ckpt_bytes_ = 0;

  // Serializes Checkpoint() calls.
  std::mutex ckpt_mu_;

  struct Metrics {
    Counter* wal_records = nullptr;
    Counter* wal_bytes = nullptr;
    Counter* wal_syncs = nullptr;
    Counter* checkpoints = nullptr;
    Counter* recovery_replayed_records = nullptr;
    Gauge* wal_file_bytes = nullptr;
    Gauge* checkpoint_file_bytes = nullptr;
  };
  Metrics metrics_;
};

// --- Durable sharded table ------------------------------------------------
// One DurableTable per shard, each with its own subdirectory, WAL, and
// checkpoint chain — shards recover independently and commit without any
// cross-shard coordination (matching ShardedTable's no-global-lock design).
class DurableShardedTable {
 public:
  // Opens (or creates) `dir`, recovering every shard into a freshly built
  // ShardedTable. Shard i's files live under dir/shard<i>/.
  static Result<std::unique_ptr<DurableShardedTable>> Open(
      const std::string& dir, std::string name, Schema schema,
      ShardedTable::Options options, DurableTable::Options durable_options);

  VSTORE_DISALLOW_COPY_AND_ASSIGN(DurableShardedTable);

  ShardedTable* table() { return sharded_.get(); }
  DurableTable* shard_durability(int i) {
    return shards_[static_cast<size_t>(i)].get();
  }
  int num_shards() const { return static_cast<int>(shards_.size()); }

  // Checkpoints every shard; returns the first error (all shards are
  // still attempted).
  Status Checkpoint();
  std::vector<DurableTable::FileInfo> Files() const;

 private:
  DurableShardedTable() = default;

  std::unique_ptr<ShardedTable> sharded_;
  std::vector<std::unique_ptr<DurableTable>> shards_;
};

}  // namespace vstore

#endif  // VSTORE_STORAGE_DURABLE_TABLE_H_
