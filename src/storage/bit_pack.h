#ifndef VSTORE_STORAGE_BIT_PACK_H_
#define VSTORE_STORAGE_BIT_PACK_H_

#include <cstdint>
#include <vector>

namespace vstore {

// Fixed-width bit packing of unsigned codes — the innermost compression
// stage of every column segment (the paper's "bit packing"). Values are
// packed little-endian into a byte buffer, `bit_width` bits each.
// bit_width == 0 encodes the all-zero sequence in zero bytes.
class BitPacker {
 public:
  // Packs values[0, n) at the given width. Caller guarantees every value
  // fits in bit_width bits.
  static std::vector<uint8_t> Pack(const uint64_t* values, int64_t n,
                                   int bit_width);

  // Unpacks n values starting at logical index `start`.
  static void Unpack(const uint8_t* data, int bit_width, int64_t start,
                     int64_t n, uint64_t* out);

  // Random access to a single value.
  static uint64_t Get(const uint8_t* data, int bit_width, int64_t index);

  static int64_t PackedBytes(int64_t n, int bit_width);
};

}  // namespace vstore

#endif  // VSTORE_STORAGE_BIT_PACK_H_
