// Experiment E3 — segment elimination (paper §2): scans with range
// predicates on a date-clustered fact table skip whole row groups using
// per-segment min/max metadata. Sweeps predicate selectivity and compares
// against the same scan with elimination unavailable (predicate evaluated
// above the scan).

#include <cstdio>

#include "bench_util.h"
#include "tpch/dbgen.h"

int main() {
  using namespace vstore;
  const int64_t rows =
      static_cast<int64_t>(bench::EnvDouble("VSTORE_BENCH_ROWS", 2000000));

  // Date-clustered fact table, 2 years of data, ~16 row groups.
  TableData data = bench::SortedFactTable(rows, 42);
  Catalog catalog;
  ColumnStoreTable::Options options;
  options.row_group_size = 1 << 17;
  options.min_compress_rows = 1;
  auto table = std::make_unique<ColumnStoreTable>("facts", data.schema(),
                                                  options);
  table->BulkLoad(data).CheckOK();
  table->CompressDeltaStores(true).status().CheckOK();
  int64_t groups = table->num_row_groups();
  catalog.AddColumnStore(std::move(table)).CheckOK();

  std::printf("E3: segment elimination, %lld rows in %lld row groups\n\n",
              static_cast<long long>(rows), static_cast<long long>(groups));
  std::printf("%-12s %10s %12s %12s %12s %12s | %8s\n", "selectivity",
              "rows out", "groups hit", "groups skip", "elim ms", "noelim ms",
              "speedup");

  // event_date spans [8000, 8730); cut at increasing fractions.
  for (double fraction : {0.01, 0.05, 0.10, 0.25, 0.50, 1.00}) {
    int64_t cutoff = 8000 + static_cast<int64_t>(730 * fraction);

    auto build_plan = [&](bool pushdown) {
      PlanBuilder b = PlanBuilder::Scan(catalog, "facts");
      b.Filter(expr::Lt(expr::Column(b.schema(), "event_date"),
                        expr::Lit(Value::Date32(static_cast<int32_t>(cutoff)))));
      b.Aggregate({}, {{AggFn::kSum, "units", "total_units"},
                       {AggFn::kCountStar, "", "cnt"}});
      QueryOptions qopts;
      qopts.optimizer.pushdown = pushdown;
      return std::make_pair(b.Build(), qopts);
    };

    auto [plan_on, opts_on] = build_plan(true);
    QueryExecutor exec_on(&catalog, opts_on);
    QueryResult probe = exec_on.Execute(plan_on).ValueOrDie();
    if (bench::ProfileJsonEnabled()) {
      char tag[48];
      std::snprintf(tag, sizeof(tag), "segment-elim/%.0f%%", fraction * 100);
      bench::EmitProfileJson(tag, probe);
    }
    double elim_ms = bench::TimeMs(
        [&] { exec_on.Execute(plan_on).status().CheckOK(); });

    auto [plan_off, opts_off] = build_plan(false);
    QueryExecutor exec_off(&catalog, opts_off);
    double noelim_ms = bench::TimeMs(
        [&] { exec_off.Execute(plan_off).status().CheckOK(); });

    std::printf("%10.0f%% %10lld %12lld %12lld %12.2f %12.2f | %7.1fx\n",
                fraction * 100,
                static_cast<long long>(probe.data.column(1).GetInt64(0)),
                static_cast<long long>(probe.stats.row_groups_scanned),
                static_cast<long long>(probe.stats.row_groups_eliminated),
                elim_ms, noelim_ms, noelim_ms / elim_ms);
  }

  std::printf(
      "\nExpected shape: groups skipped ~ (1 - selectivity) * total and\n"
      "elapsed time proportional to groups actually scanned.\n");
  return 0;
}
